module dhsort

go 1.24
