// Command bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	bench -exp fig2a            # one experiment (see -list)
//	bench -exp all -full -reps 10
//
// Each experiment prints the corresponding table or figure series; see
// EXPERIMENTS.md for the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dhsort/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment name, or 'all'")
		list = flag.Bool("list", false, "list experiments and exit")
		full = flag.Bool("full", false, "paper-scale parameter sweep (slow)")
		reps = flag.Int("reps", 3, "repetitions per point (the paper uses 10)")
		seed = flag.Uint64("seed", 42, "base workload seed")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("  %-10s %s\n", e.Name, e.Description)
		}
		return
	}

	opts := bench.Options{Out: os.Stdout, Reps: *reps, Full: *full, Seed: *seed}
	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s\n", e.Name, e.Description)
		start := time.Now()
		if err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments {
			run(e)
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
