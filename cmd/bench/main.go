// Command bench regenerates the paper's evaluation artifacts and the
// machine-readable benchmark trajectory.
//
// Text experiments (tables matching the paper's figures):
//
//	bench -exp fig2a            # one experiment (see -list)
//	bench -exp all -full -reps 10
//
// Machine-readable metrics suite (BENCH_*.json, schema dhsort-bench/v1):
//
//	bench -json BENCH_full.json              # run the suite, write JSON
//	bench -json BENCH_ci.json -smoke         # tiny CI grid
//	bench -compare old.json -json new.json   # run, write, diff vs old
//	bench -compare old.json -with new.json   # diff two existing files
//	bench -compare BENCH_full.json -with BENCH_ci.json -subset
//	                                         # gate only the grid points both cover
//
// -compare exits with status 3 when any tracked metric regressed by more
// than -threshold (default 10%) or a record disappeared (-subset waives
// the disappearance check so a smoke document can gate against the full
// baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dhsort/internal/bench"
	"dhsort/internal/fault"
	"dhsort/internal/metrics"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment name, or 'all'")
		list      = flag.Bool("list", false, "list experiments and exit")
		full      = flag.Bool("full", false, "paper-scale parameter sweep (slow)")
		reps      = flag.Int("reps", 3, "repetitions per point (the paper uses 10)")
		seed      = flag.Uint64("seed", 42, "base workload seed")
		threads   = flag.Int("threads", 1, "intra-rank worker budget for the dhsort/hss compute kernels (1 keeps modelled times machine-independent)")
		jsonOut   = flag.String("json", "", "run the metrics suite and write the JSON document to this path")
		smoke     = flag.Bool("smoke", false, "with -json/-compare: tiny grid for CI smoke runs")
		compare   = flag.String("compare", "", "baseline JSON document to diff against (regression gate)")
		with      = flag.String("with", "", "with -compare: diff this existing document instead of running the suite")
		subset    = flag.Bool("subset", false, "with -compare: gate only the baseline records the new document covers (smoke vs full)")
		threshold = flag.Float64("threshold", metrics.DefaultThreshold, "relative growth counting as a regression")
		fspec     = flag.String("fault", "", "seeded fault schedule applied to the metrics suite (and as an extra row of the fault experiment), e.g. drop=0.01,seed=7")
		recovery  = flag.String("recovery", "respawn", "permanent-death (die=) recovery mode for the metrics suite: respawn|shrink")
	)
	flag.Parse()

	plan, err := fault.Parse(*fspec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("  %-10s %s\n", e.Name, e.Description)
		}
		return
	}

	if *jsonOut != "" || *compare != "" {
		os.Exit(metricsMode(*jsonOut, *compare, *with, *smoke, *subset, *reps, *seed, *threads, *threshold, plan, *recovery))
	}

	opts := bench.Options{Out: os.Stdout, Reps: *reps, Full: *full, Seed: *seed, Threads: *threads, Fault: plan}
	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s\n", e.Name, e.Description)
		start := time.Now()
		if err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments {
			run(e)
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}

// metricsMode runs the JSON suite and/or the regression gate; the return
// value is the process exit status (0 ok, 1 error, 3 regression).
func metricsMode(jsonOut, compare, with string, smoke, subset bool, reps int, seed uint64, threads int, threshold float64, plan fault.Plan, recovery string) int {
	var doc metrics.Document
	switch {
	case with != "":
		if compare == "" {
			fmt.Fprintln(os.Stderr, "bench: -with requires -compare")
			return 2
		}
		d, err := readDocument(with)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		doc = d
	default:
		fmt.Printf("=== metrics suite (%s grid)\n", map[bool]string{true: "smoke", false: "full"}[smoke])
		start := time.Now()
		d, err := bench.RunSuite(bench.SuiteOptions{Smoke: smoke, Reps: reps, Seed: seed, Threads: threads, Progress: os.Stdout, Fault: plan, Recovery: recovery})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		doc = d
		fmt.Printf("--- suite done in %v (%d records)\n", time.Since(start).Round(time.Millisecond), len(doc.Records))
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		err = metrics.Encode(f, doc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}

	if compare == "" {
		return 0
	}
	old, err := readDocument(compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	cmp := metrics.Compare
	if subset {
		cmp = metrics.CompareSubset
	}
	res, err := cmp(old, doc, threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	res.Report(os.Stdout)
	if res.Regressed() {
		fmt.Fprintln(os.Stderr, "bench: REGRESSION against", compare)
		return 3
	}
	return 0
}

func readDocument(path string) (metrics.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return metrics.Document{}, err
	}
	defer f.Close()
	return metrics.Decode(f)
}
