// Command dhsort sorts a generated workload with the distributed histogram
// sort and prints timing, phase breakdown and verification results.
//
// Usage:
//
//	dhsort -p 64 -n 1000000 -dist uniform
//	dhsort -p 2048 -n 4194304 -model pgas -scale 1024   # virtual SuperMUC time
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"dhsort"
	"dhsort/internal/bitonic"
	"dhsort/internal/comm"
	"dhsort/internal/fault"
	"dhsort/internal/hss"
	"dhsort/internal/hyksort"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/samplesort"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

func main() {
	// Service-client subcommands (submit/status/result/health/stats) talk to
	// a dhsortd server; everything else is the original local runner.
	if len(os.Args) > 1 {
		if code, ok := runClientCommand(os.Args[1], os.Args[2:]); ok {
			os.Exit(code)
		}
	}
	var (
		p      = flag.Int("p", 8, "number of ranks")
		n      = flag.Int("n", 1<<20, "total number of keys")
		dist   = flag.String("dist", "uniform", "distribution: uniform|normal|zipf|nearly-sorted|duplicate-heavy|all-equal")
		span   = flag.Uint64("span", 1e9, "key span (0 = full uint64 range)")
		seed   = flag.Uint64("seed", 1, "workload seed")
		eps    = flag.Float64("eps", 0, "load-balance threshold (0 = perfect partitioning)")
		probes = flag.Int("probes", 1, "histogram probes per unfinished splitter per round for dhsort/hss (1 = bisection)")
		merge  = flag.String("merge", "resort", "local merge: resort|binary-tree|loser-tree|overlap")
		exch   = flag.String("exchange", "auto", "data exchange: auto|pairwise|one-factor|bruck|hierarchical|rma-put")
		alg    = flag.String("alg", "dhsort", "algorithm: dhsort|hss|samplesort|hyksort|bitonic")
		model  = flag.String("model", "none", "cost model: none (real time) | pgas | mpi")
		rpn    = flag.Int("ranks-per-node", 16, "ranks per node for the cost model")
		scale  = flag.Float64("scale", 1, "virtual data-scale multiplier (with a cost model)")
		thr    = flag.Int("threads", 0, "intra-rank worker budget for dhsort/hss compute kernels (0 = GOMAXPROCS; set 1 for reproducible virtual clocks)")
		kern   = flag.String("kernel", "", "force the dhsort Local Sort kernel: radix|task-merge|introsort (empty = dispatch by key type)")
		fspec  = flag.String("fault", "", "seeded fault schedule, e.g. drop=0.01,dup=0.005,delay=0.02:50us,seed=7,crash=3@2,stall=1@1:200us,die=5@1 (empty = fault-free)")
		rcv    = flag.String("recovery", "respawn", "permanent-death (die=) recovery: respawn (death is fatal) | shrink (continue on the survivors)")
		budget = flag.Int64("mem-budget", 0, "per-rank in-memory budget in bytes; above it local sort spills sorted runs to the scratch store and the exchange merges from disk (0 = fully resident; dhsort/hss only)")
		spillD = flag.String("spill-dir", "", "scratch directory for spilled runs and durable checkpoint shards (empty = run-private in-memory store)")
		fanIn  = flag.Int("spill-fan-in", 0, "k-way merge fan-in for spilled runs (0 = default 8)")
		dump   = flag.String("dump", "", "write the sorted output keys, one decimal per line in world-rank order, to this file")
	)
	flag.Parse()

	var m *simnet.CostModel
	switch *model {
	case "none":
	case "pgas":
		m = simnet.SuperMUC(*rpn, true)
	case "mpi":
		m = simnet.SuperMUC(*rpn, false)
	default:
		fmt.Fprintf(os.Stderr, "dhsort: unknown model %q\n", *model)
		os.Exit(2)
	}
	var ms dhsort.MergeStrategy
	switch *merge {
	case "resort":
		ms = dhsort.MergeResort
	case "binary-tree":
		ms = dhsort.MergeBinaryTree
	case "loser-tree":
		ms = dhsort.MergeLoserTree
	case "overlap":
		ms = dhsort.MergeOverlap
	default:
		fmt.Fprintf(os.Stderr, "dhsort: unknown merge strategy %q\n", *merge)
		os.Exit(2)
	}
	var ex dhsort.ExchangeAlgorithm
	switch *exch {
	case "auto":
		ex = dhsort.ExchangeAuto
	case "pairwise":
		ex = dhsort.ExchangePairwise
	case "one-factor":
		ex = dhsort.ExchangeOneFactor
	case "bruck":
		ex = dhsort.ExchangeBruck
	case "hierarchical":
		ex = dhsort.ExchangeHierarchical
	case "rma-put":
		ex = dhsort.ExchangeRMAPut
	default:
		fmt.Fprintf(os.Stderr, "dhsort: unknown exchange algorithm %q\n", *exch)
		os.Exit(2)
	}

	if *probes < 0 || *probes > dhsort.MaxProbes {
		fmt.Fprintf(os.Stderr, "dhsort: -probes %d outside the accepted range [0, %d]\n", *probes, dhsort.MaxProbes)
		os.Exit(2)
	}

	plan, err := fault.Parse(*fspec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhsort:", err)
		os.Exit(2)
	}
	switch *rcv {
	case dhsort.RecoveryRespawn, dhsort.RecoveryShrink:
	default:
		fmt.Fprintf(os.Stderr, "dhsort: unknown recovery mode %q (want respawn|shrink)\n", *rcv)
		os.Exit(2)
	}
	if *rcv == dhsort.RecoveryShrink && *alg != "dhsort" && *alg != "hss" {
		fmt.Fprintf(os.Stderr, "dhsort: -recovery shrink is only supported by alg dhsort and hss, not %q\n", *alg)
		os.Exit(2)
	}
	if *budget < 0 {
		fmt.Fprintln(os.Stderr, "dhsort: -mem-budget must be non-negative")
		os.Exit(2)
	}
	if (*budget > 0 || *spillD != "" || *fanIn != 0) && *alg != "dhsort" && *alg != "hss" {
		fmt.Fprintf(os.Stderr, "dhsort: the out-of-core flags are only supported by alg dhsort and hss, not %q\n", *alg)
		os.Exit(2)
	}
	w, err := comm.NewWorldWithFaults(*p, m, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhsort:", err)
		os.Exit(1)
	}
	recs := make([]*metrics.Recorder, *p)
	outs := make([][]uint64, *p)
	verified := true
	var mu sync.Mutex
	wall := time.Now()
	err = w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Distribution(*dist), Seed: *seed, Span: *span}
		local, err := spec.Rank(c.Rank(), workload.LocalSize(*n, *p, c.Rank()))
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		// Register the recorder before sorting: a rank scheduled to die
		// never returns from Sort, but its fault tallies must survive.
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		eff := c
		var out []uint64
		switch *alg {
		case "dhsort":
			out, eff, err = dhsort.SortResilient(c, local, dhsort.Uint64Ops, dhsort.Config{
				Epsilon: *eps, Probes: *probes, Merge: ms, Exchange: ex, VirtualScale: *scale, Threads: *thr, Kernel: *kern,
				Recorder: rec, Recovery: *rcv,
				MemBudget: *budget, SpillDir: *spillD, SpillFanIn: *fanIn,
			})
		case "hss":
			out, eff, err = hss.SortResilient(c, local, keys.Uint64{}, hss.Config{
				Epsilon: *eps, Probes: *probes, Exchange: ex, VirtualScale: *scale, Threads: *thr, Recorder: rec,
				Seed: *seed, Recovery: *rcv,
				MemBudget: *budget, SpillDir: *spillD, SpillFanIn: *fanIn,
			})
		case "samplesort":
			out, err = samplesort.Sort(c, local, keys.Uint64{}, samplesort.Config{
				VirtualScale: *scale, Recorder: rec, Seed: *seed,
			})
		case "hyksort":
			out, err = hyksort.Sort(c, local, keys.Uint64{}, hyksort.Config{
				VirtualScale: *scale, Recorder: rec,
			})
		case "bitonic":
			out, err = bitonic.Sort(c, local, keys.Uint64{}, bitonic.Config{
				VirtualScale: *scale, Recorder: rec,
			})
		default:
			return fmt.Errorf("unknown algorithm %q", *alg)
		}
		if err != nil {
			return err
		}
		rec.Finish()
		rec.SetElements(len(local), len(out))
		// After a shrink recovery the result lives on the survivor
		// communicator; adoption makes partition sizes imperfect by design.
		ok := dhsort.IsGloballySorted(eff, out, dhsort.Uint64Ops)
		perfect := (*alg == "dhsort" || *alg == "hss") && eff.Size() == *p
		mu.Lock()
		verified = verified && ok && (!perfect || *eps > 0 || len(out) == len(local))
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhsort:", err)
		os.Exit(1)
	}

	elapsed := time.Since(wall)
	s := metrics.Summarize(recs)
	fmt.Printf("sorted %d %s keys on %d ranks (alg=%s, eps=%v, merge=%s)\n", *n, *dist, *p, *alg, *eps, *merge)
	if s.ExchangeAlg != "" {
		fmt.Printf("data exchange: %s (effective)\n", s.ExchangeAlg)
	}
	if s.LocalSortKernel != "" {
		fmt.Printf("local sort kernel: %s (%d threads)\n", s.LocalSortKernel, s.Threads)
	}
	if s.SpilledRuns > 0 {
		fmt.Printf("out-of-core: %d spilled runs, %.2f MiB scratch traffic (budget %d B/rank)\n",
			s.SpilledRuns, float64(s.SpillBytes)/(1<<20), *budget)
	}
	if m != nil {
		fmt.Printf("virtual makespan: %v (SuperMUC model, %d ranks/node, scale x%g; wall %v)\n",
			w.Makespan().Round(time.Microsecond), *rpn, *scale, elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("wall time: %v\n", elapsed.Round(time.Millisecond))
	}
	fmt.Printf("histogram iterations: %d\n", s.MaxIterations)
	fmt.Printf("load imbalance: time %.3f, output %.3f (1.000 = balanced)\n", s.TimeImbalance, s.OutputImbalance)
	fmt.Println("phase breakdown (mean across ranks; messages/bytes are totals):")
	for ph := metrics.Phase(0); ph < metrics.NumPhases; ph++ {
		var msgs, bytes int64
		for _, lt := range s.Links[ph] {
			msgs += lt.Messages
			bytes += lt.Bytes
		}
		fmt.Printf("  %-10s %8v  %5.1f%%  %8d msgs  %8.2f MiB\n",
			ph, s.Times[ph].Round(time.Microsecond), 100*s.Fraction(ph), msgs, float64(bytes)/(1<<20))
	}
	st := w.TotalStats()
	fmt.Printf("communication by link class (%d messages, %.2f MiB total):\n",
		st.TotalMessages(), float64(st.TotalBytes())/(1<<20))
	for _, lc := range simnet.LinkClasses {
		if st.Messages[lc] == 0 && st.Puts[lc] == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d msgs  %8.2f MiB\n", lc, st.Messages[lc], float64(st.Bytes[lc])/(1<<20))
	}
	if st.TotalPuts() > 0 {
		fmt.Printf("one-sided traffic (%d puts, %.2f MiB, %d notifies):\n",
			st.TotalPuts(), float64(st.TotalPutBytes())/(1<<20), st.TotalNotifies())
		for _, lc := range simnet.LinkClasses {
			if st.Puts[lc] == 0 {
				continue
			}
			fmt.Printf("  %-10s %8d puts  %8.2f MiB  %8d notifies\n",
				lc, st.Puts[lc], float64(st.PutBytes[lc])/(1<<20), st.Notifies[lc])
		}
	}
	if plan.Enabled() {
		f := st.Fault
		fmt.Printf("fault plane (%s):\n", plan)
		fmt.Printf("  injected:   %d drops, %d dups, %d delays, %d reorders\n",
			f.Drops, f.Dups, f.Delays, f.Reorders)
		fmt.Printf("  resilience: %d retries (%v waited), %d dedup hits\n",
			f.Retries, time.Duration(f.RetryNS).Round(time.Microsecond), f.Dedup)
		fmt.Printf("  checkpoint: %d checkpoints (%.2f MiB), %d recoveries (%v), %d stalls (%v)\n",
			s.Fault.Checkpoints, float64(s.Fault.CheckpointBytes)/(1<<20),
			s.Fault.Recoveries, time.Duration(s.Fault.RecoveryNS).Round(time.Microsecond),
			s.Fault.Stalls, time.Duration(s.Fault.StallNS).Round(time.Microsecond))
		if s.Fault.Deaths > 0 {
			fmt.Printf("  shrink:     %d deaths (recovery=%s), %d agree rounds, %d shrinks (%v), %d survivors\n",
				s.Fault.Deaths, *rcv, s.Fault.AgreeRounds, s.Fault.Shrinks,
				time.Duration(s.Fault.ShrinkNS).Round(time.Microsecond), s.Survivors)
		}
	}
	if *dump != "" {
		if err := writeDump(*dump, outs); err != nil {
			fmt.Fprintln(os.Stderr, "dhsort: dump:", err)
			os.Exit(1)
		}
	}
	if verified {
		fmt.Println("verification: globally sorted, partition sizes OK")
	} else {
		fmt.Println("verification: FAILED")
		os.Exit(1)
	}
}

// writeDump writes the output keys in world-rank order, one decimal per
// line — the format readKeys and the CI multiset checks consume.
func writeDump(path string, outs [][]uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf []byte
	for _, ks := range outs {
		for _, k := range ks {
			buf = strconv.AppendUint(buf[:0], k, 10)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
