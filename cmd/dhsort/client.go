// Service-client subcommands: dhsort doubles as the CLI client of a
// dhsortd sort server.
//
//	dhsort submit -server http://host:8080 -n 100000 -dist zipf -wait
//	dhsort submit -keys-file data.txt          # inline keys, one per line
//	dhsort status j-000001
//	dhsort result j-000001 > sorted.txt
//	dhsort health
//	dhsort stats
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"flag"

	"dhsort/internal/server"
)

// defaultServer resolves the server base URL: -server flag, DHSORT_SERVER
// env, then localhost.
func defaultServer() string {
	if s := os.Getenv("DHSORT_SERVER"); s != "" {
		return s
	}
	return "http://127.0.0.1:8080"
}

// runClientCommand dispatches a service subcommand; ok=false means cmd is
// not a subcommand and the caller should run the local sorter.
func runClientCommand(cmd string, args []string) (code int, ok bool) {
	switch cmd {
	case "submit":
		return clientSubmit(args), true
	case "status":
		return clientStatus(args), true
	case "result":
		return clientResult(args), true
	case "health":
		return clientGetJSON(args, "/healthz"), true
	case "stats":
		return clientGetJSON(args, "/v1/metrics"), true
	}
	return 0, false
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "dhsort:", err)
	return 1
}

// decodeErr turns a non-2xx response into a readable error.
func decodeErr(resp *http.Response) error {
	var rej server.Reject
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &rej) == nil && rej.Reason != "" {
		return fmt.Errorf("HTTP %d: %s: %s", resp.StatusCode, rej.Reason, rej.Detail)
	}
	return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func clientSubmit(args []string) int {
	fs := flag.NewFlagSet("dhsort submit", flag.ExitOnError)
	var (
		srv    = fs.String("server", defaultServer(), "server base URL")
		tenant = fs.String("tenant", "", "tenant name (X-Tenant header)")
		n      = fs.Int("n", 0, "generated workload size (exclusive with -keys-file)")
		dist   = fs.String("dist", "", "workload distribution")
		seed   = fs.Uint64("seed", 0, "workload seed")
		span   = fs.Uint64("span", 0, "workload key span")
		p      = fs.Int("p", 0, "world size (0 = server default)")
		exch   = fs.String("exchange", "", "data exchange algorithm")
		merge  = fs.String("merge", "", "local merge strategy")
		model  = fs.String("model", "", "cost model: none|pgas|mpi")
		thr    = fs.Int("threads", 0, "intra-rank worker budget")
		kern   = fs.String("kernel", "", "local sort kernel")
		eps    = fs.Float64("eps", 0, "load-balance threshold")
		probes = fs.Int("probes", 0, "histogram probes per unfinished splitter per round (0/1 = bisection)")
		fspec  = fs.String("fault", "", "seeded fault schedule")
		rcv    = fs.String("recovery", "", "die= recovery: respawn|shrink")
		noB    = fs.Bool("no-batch", false, "opt out of job batching")
		noW    = fs.Bool("no-warm", false, "opt out of the warm-start splitter cache")
		spill  = fs.Bool("spill", false, "run the job out-of-core against a per-job scratch store")
		budget = fs.Int64("mem-budget", 0, "per-rank in-memory budget in bytes (implies -spill; 0 with -spill = an eighth of the per-rank input)")
		keysF  = fs.String("keys-file", "", "inline keys, one decimal per line (\"-\" = stdin)")
		wait   = fs.Bool("wait", false, "poll until the job finishes; exit nonzero unless done and verified")
		tmo    = fs.Duration("timeout", 5*time.Minute, "poll deadline with -wait")
		retry  = fs.Int("retries", 0, "resubmit attempts after a retryable rejection (429 queue_full/quota_exceeded, 503 draining); 0 = fail immediately")
		maxBk  = fs.Duration("max-wait", 30*time.Second, "cap on a single retry backoff")
	)
	fs.Parse(args)

	spec := server.JobSpec{
		N: *n, Dist: *dist, Seed: *seed, Span: *span, P: *p,
		Exchange: *exch, Merge: *merge, Model: *model, Threads: *thr,
		Kernel: *kern, Epsilon: *eps, Probes: *probes, Fault: *fspec,
		Recovery: *rcv, NoBatch: *noB, NoWarm: *noW,
		Spill: *spill, MemBudget: *budget,
	}
	if *keysF != "" {
		ks, err := readKeys(*keysF)
		if err != nil {
			return fail(err)
		}
		spec.Keys = ks
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return fail(err)
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("POST", *srv+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return fail(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if *tenant != "" {
			req.Header.Set("X-Tenant", *tenant)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			return fail(err)
		}
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		// 429 (queue_full / quota_exceeded) and 503 (draining) are
		// backpressure, not failure: back off and resubmit, preferring the
		// server's own Retry-After over the exponential schedule.
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		rerr := decodeErr(resp)
		ra := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if !retryable || attempt >= *retry {
			return fail(rerr)
		}
		d := submitBackoff(attempt, ra, *maxBk)
		fmt.Fprintf(os.Stderr, "dhsort: %v; retry %d/%d in %v\n",
			rerr, attempt+1, *retry, d.Round(time.Millisecond))
		time.Sleep(d)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fail(err)
	}
	// The job id goes to stdout alone so scripts can capture it.
	fmt.Println(st.ID)
	if !*wait {
		return 0
	}

	deadline := time.Now().Add(*tmo)
	for time.Now().Before(deadline) {
		st, err = fetchStatus(*srv, st.ID)
		if err != nil {
			return fail(err)
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	switch {
	case st.State == server.StateDone && st.Verified:
		fmt.Fprintf(os.Stderr, "dhsort: job %s done: n=%d p=%d alg=%s batched=%v pool_hit=%v warm_start=%v spilled=%v verified=%v makespan=%v\n",
			st.ID, st.N, st.P, st.Algorithm, st.Batched, st.PoolHit, st.WarmStart, st.Spilled, st.Verified,
			time.Duration(st.MakespanNS).Round(time.Microsecond))
		return 0
	case st.State == server.StateDone:
		fmt.Fprintf(os.Stderr, "dhsort: job %s done but NOT verified\n", st.ID)
		return 1
	case st.State == server.StateFailed:
		fmt.Fprintf(os.Stderr, "dhsort: job %s failed: %s\n", st.ID, st.Error)
		return 1
	default:
		fmt.Fprintf(os.Stderr, "dhsort: job %s still %s after %v\n", st.ID, st.State, *tmo)
		return 1
	}
}

// submitBackoff computes one retry delay: the server's Retry-After when it
// sent one, otherwise exponential from 200ms — either way capped at max and
// spread with ±25% jitter so a herd of rejected clients desynchronizes
// instead of hammering the queue in lockstep.
func submitBackoff(attempt int, retryAfter string, max time.Duration) time.Duration {
	if attempt > 20 {
		attempt = 20 // the shift below would overflow
	}
	d := 200 * time.Millisecond << uint(attempt)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > max {
		d = max
	}
	d += time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

func readKeys(path string) ([]uint64, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var keys []uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		k, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("keys file %s: %w", path, err)
		}
		keys = append(keys, k)
	}
	return keys, sc.Err()
}

func fetchStatus(srv, id string) (server.JobStatus, error) {
	var st server.JobStatus
	resp, err := http.Get(srv + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, decodeErr(resp)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func clientStatus(args []string) int {
	fs := flag.NewFlagSet("dhsort status", flag.ExitOnError)
	srv := fs.String("server", defaultServer(), "server base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dhsort status [-server URL] <job-id>")
		return 2
	}
	resp, err := http.Get(*srv + "/v1/jobs/" + fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(decodeErr(resp))
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	if err != nil {
		return fail(err)
	}
	return 0
}

func clientResult(args []string) int {
	fs := flag.NewFlagSet("dhsort result", flag.ExitOnError)
	srv := fs.String("server", defaultServer(), "server base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dhsort result [-server URL] <job-id>")
		return 2
	}
	resp, err := http.Get(*srv + "/v1/jobs/" + fs.Arg(0) + "/result")
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(decodeErr(resp))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return fail(err)
	}
	return 0
}

func clientGetJSON(args []string, path string) int {
	fs := flag.NewFlagSet("dhsort "+strings.TrimLeft(path, "/"), flag.ExitOnError)
	srv := fs.String("server", defaultServer(), "server base URL")
	fs.Parse(args)
	resp, err := http.Get(*srv + path)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(decodeErr(resp))
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return fail(err)
	}
	return 0
}
