// Command chaos runs the seeded chaos oracle: deterministic corpora of
// composed skew × fault × recovery × backend scenarios, each verified
// against sortedness, multiset identity, imbalance and replay determinism.
//
// Usage:
//
//	chaos -seed 20260807 -count 64         # run a pinned corpus (the CI tier)
//	chaos -seed 20260807 -scenario 17 -v   # replay one scenario exactly
//	chaos -list -seed 20260807 -count 64   # print the corpus without running
//
// On failure it prints each failing scenario's oracle violations and the
// exact single-scenario repro command, optionally appending them to a file
// (-failures) for CI artifact upload, and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"dhsort/internal/chaos"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 20260807, "corpus seed (scenarios are a pure function of seed and index)")
		count    = flag.Int("count", 64, "number of scenarios to generate and run")
		scenario = flag.Int("scenario", -1, "run only this scenario index (repro mode)")
		list     = flag.Bool("list", false, "print the corpus without running it")
		failures = flag.String("failures", "", "append failing seeds + repro commands to this file")
		verbose  = flag.Bool("v", false, "print every scenario as it runs")
	)
	flag.Parse()

	if *scenario >= 0 {
		sc := chaos.Generate(*seed, *scenario)
		fmt.Println(sc)
		res := chaos.Run(sc)
		if res.Pass() {
			fmt.Printf("PASS  makespan=%v digest=%016x\n", res.Makespan, res.Digest)
			return
		}
		for _, f := range res.Failures {
			fmt.Printf("FAIL  %s\n", f)
		}
		os.Exit(1)
	}

	corpus := chaos.Corpus(*seed, *count)
	if *list {
		for _, sc := range corpus {
			fmt.Println(sc)
		}
		return
	}

	var failed []chaos.Result
	for _, sc := range corpus {
		if *verbose {
			fmt.Println(sc)
		}
		res := chaos.Run(sc)
		if !res.Pass() {
			failed = append(failed, res)
			fmt.Printf("FAIL %s\n", sc)
			for _, f := range res.Failures {
				fmt.Printf("     %s\n", f)
			}
			fmt.Printf("     repro: %s\n", chaos.ReproCommand(sc))
		}
	}
	fmt.Printf("chaos: %d/%d scenarios passed (seed %d)\n", len(corpus)-len(failed), len(corpus), *seed)
	if len(failed) == 0 {
		return
	}
	if *failures != "" {
		f, err := os.OpenFile(*failures, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: writing failures file: %v\n", err)
		} else {
			for _, r := range failed {
				fmt.Fprintf(f, "seed=%d scenario=%d: %s\n  repro: %s\n",
					r.Scenario.Seed, r.Scenario.Index, r.Scenario, chaos.ReproCommand(r.Scenario))
				for _, msg := range r.Failures {
					fmt.Fprintf(f, "  %s\n", msg)
				}
			}
			f.Close()
		}
	}
	os.Exit(1)
}
