// Command dhsortd serves the distributed histogram sort as a multi-tenant
// job service: a JSON HTTP API over a bounded admission queue, per-tenant
// token-bucket quotas, and a pool of warm persistent worlds that are reused
// — and shared, via job batching — across jobs.  With -autoscale the
// default world size follows load: sustained queue pressure grows pooled
// worlds in place (rank join + grow collective), idleness shrinks them back.
//
//	dhsortd -addr :8080 -p 8 -workers 2
//	dhsortd -autoscale -autoscale-max-p 16 -idle-ttl 1m
//	dhsort submit -server http://127.0.0.1:8080 -n 100000 -wait
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/result,
// GET /v1/metrics, GET /healthz.  On SIGTERM the server drains: new
// submissions get 503 + Retry-After while admitted work finishes, bounded
// by -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dhsort/internal/api"
	"dhsort/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts binding port 0)")
		p        = flag.Int("p", 8, "default world size for jobs that don't request one")
		maxP     = flag.Int("max-p", 64, "largest accepted per-job world size")
		workers  = flag.Int("workers", 2, "concurrent job executors")
		queue    = flag.Int("queue", 64, "admission queue depth (full = 429)")
		poolIdle = flag.Int("pool-idle", 2, "warm worlds kept idle per (p, model) shape")
		qRate    = flag.Float64("quota-rate", 5, "per-tenant refill rate, jobs/second")
		qBurst   = flag.Float64("quota-burst", 10, "per-tenant burst")
		maxN     = flag.Int("max-n", 1<<22, "largest accepted job in keys (413 above)")
		batchKey = flag.Int("batch-keys", 4096, "batch-eligibility threshold in keys")
		batchMax = flag.Int("batch-max", 8, "most jobs per shared world run")
		batchW   = flag.Duration("batch-wait", 2*time.Millisecond, "linger for batch stragglers")
		ring     = flag.Int("metrics-ring", 64, "per-job metrics documents retained on /v1/metrics")
		scratch  = flag.String("scratch", "", "root directory for spilled jobs' per-job run stores (empty = system temp dir)")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain: how long to let admitted jobs finish before exiting")

		autoscale = flag.Bool("autoscale", false, "scale the default world size with load (grow/shrink pooled worlds in place)")
		asMinP    = flag.Int("autoscale-min-p", 0, "autoscaler floor (0 = -p)")
		asMaxP    = flag.Int("autoscale-max-p", 0, "autoscaler ceiling (0 = twice the floor, capped at -max-p)")
		asStep    = flag.Int("autoscale-step", 4, "ranks joined/removed per scale action")
		asQueue   = flag.Int("grow-queue", 2, "queued jobs counted as admission pressure")
		asImb     = flag.Float64("grow-imbalance", 1.5, "time-imbalance factor counted as pressure")
		asSustain = flag.Int("sustain", 3, "consecutive pressured samples before a grow")
		asIdle    = flag.Duration("idle-ttl", 30*time.Second, "continuous idle before a shrink")
		asCool    = flag.Duration("cooldown", 10*time.Second, "minimum spacing between scale actions")
		asInt     = flag.Duration("scale-interval", 500*time.Millisecond, "autoscaler sampling period")
	)
	flag.Parse()

	eng := server.New(server.Config{
		P: *p, MaxP: *maxP, Workers: *workers, QueueDepth: *queue,
		PoolIdle: *poolIdle, QuotaRate: *qRate, QuotaBurst: *qBurst,
		MaxN: *maxN, BatchMaxKeys: *batchKey, BatchMax: *batchMax,
		BatchWait: *batchW, MetricsRing: *ring, ScratchDir: *scratch,
		Autoscale: server.AutoscaleConfig{
			Enabled: *autoscale, MinP: *asMinP, MaxP: *asMaxP, Step: *asStep,
			GrowQueue: *asQueue, GrowImbalance: *asImb, Sustain: *asSustain,
			IdleTTL: *asIdle, Cooldown: *asCool, Interval: *asInt,
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dhsortd: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("dhsortd: write -addr-file: %v", err)
		}
	}
	log.Printf("dhsortd: serving on %s (p=%d workers=%d queue=%d autoscale=%v)", ln.Addr(), *p, *workers, *queue, *autoscale)

	httpSrv := &http.Server{Handler: api.Handler(eng)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("dhsortd: %v, draining (timeout %v)", sig, *drainT)
	case err := <-errc:
		log.Fatalf("dhsortd: %v", err)
	}

	// Graceful drain: stop admitting (submissions now get 503 +
	// Retry-After) but keep serving status/result polls while queued and
	// in-flight jobs run to completion, bounded by -drain-timeout.
	eng.Drain()
	if eng.Quiesce(*drainT) {
		log.Printf("dhsortd: drained, shutting down")
	} else {
		log.Printf("dhsortd: drain timeout after %v, abandoning queued work", *drainT)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dhsortd: shutdown:", err)
	}
	eng.Close()
}
