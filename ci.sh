#!/usr/bin/env sh
# ci.sh — the repo's single-command quality gate, run locally and by
# .github/workflows/ci.yml:
#
#   ./ci.sh          # fmt + vet + build + test + race
#   ./ci.sh bench    # additionally run the bench smoke and emit BENCH_ci.json
#
# Fails (non-zero exit) on any gofmt diff, vet finding, build error, test
# failure, or data race in the race-sensitive packages.
set -eu

# Race-sensitive packages: the message-passing substrate, the one-sided RMA
# windows (cross-goroutine direct memory writes), the shared-memory parallel
# sort, and the core algorithm that drives them.
RACE_PKGS="./internal/comm ./internal/rma ./internal/psort ./internal/core"

echo "== gofmt"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt_out" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race ($RACE_PKGS)"
go test -race $RACE_PKGS

if [ "${1:-}" = "bench" ]; then
    echo "== bench smoke (BENCH_ci.json)"
    go run ./cmd/bench -json BENCH_ci.json -smoke
fi

echo "== ci OK"
