#!/usr/bin/env sh
# ci.sh — the repo's tiered quality gate, run locally and by
# .github/workflows/ci.yml:
#
#   ./ci.sh          # tier 1: fmt + vet + lint + build + test + race (fast)
#   ./ci.sh bench    # tier 1 + bench smoke, BENCH_ci.json + compare gate
#   ./ci.sh chaos    # tier 2: the pinned-seed chaos corpus (64 scenarios)
#   ./ci.sh serve    # tier 1 + sort-service smoke: dhsortd + client round trip
#
# Fails (non-zero exit) on any gofmt diff, vet finding, lint finding, build
# error, test failure, data race in the race-sensitive packages, benchmark
# regression beyond the threshold, or chaos-oracle violation.
set -eu

# Race-sensitive packages: the message-passing substrate, the one-sided RMA
# windows (cross-goroutine direct memory writes), the shared-memory parallel
# sort, the intra-rank kernels (fork-join merges, radix scratch reuse), the
# fault-injection plane (adjudicated on sender goroutines, deduplicated on
# receiver goroutines), the algorithms that drive them, the out-of-core store
# (one shared run store appended and merged by every rank of a spilled
# collective), the sort service (pooled persistent worlds shared across
# concurrent HTTP-driven jobs, now grown and shrunk in place by the
# autoscaler), and the chaos harness (grow collectives racing seeded
# message faults).
RACE_PKGS="./internal/comm ./internal/rma ./internal/psort ./internal/sortutil ./internal/core ./internal/hss ./internal/fault ./internal/store ./internal/server ./internal/api ./internal/chaos"

echo "== gofmt"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$fmt_out" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

# Static analysis beyond vet: run when the tools are on PATH (the workflow
# installs pinned versions; local sandboxes without network skip with a note).
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck"
    staticcheck ./...
else
    echo "== staticcheck (skipped: not installed)"
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck"
    govulncheck ./...
else
    echo "== govulncheck (skipped: not installed)"
fi

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race ($RACE_PKGS)"
go test -race $RACE_PKGS

if [ "${1:-}" = "bench" ]; then
    echo "== fault smoke (seeded drop schedule must still sort correctly)"
    go run ./cmd/dhsort -p 16 -n 65536 -model pgas -fault drop=0.01,seed=7 > /dev/null

    echo "== shrink smoke (permanent rank death must complete on the survivors)"
    go run ./cmd/dhsort -p 16 -n 65536 -model pgas -threads 1 -fault die=3@1,seed=7 -recovery shrink > /dev/null
    go run ./cmd/dhsort -p 16 -n 65536 -model pgas -threads 1 -alg hss -fault die=3@1,seed=7 -recovery shrink > /dev/null

    echo "== probes smoke (k-ary splitter refinement must verify end to end)"
    go run ./cmd/dhsort -p 16 -n 65536 -model pgas -threads 1 -probes 8 > /dev/null
    go run ./cmd/dhsort -p 16 -n 65536 -model pgas -threads 1 -alg hss -probes 8 > /dev/null

    # Out-of-core smoke: the spilled run (1/8 budget, filesystem scratch)
    # must produce byte-for-byte the resident run's output.
    echo "== ooc smoke (spilled output must equal the resident output)"
    ooc_tmp=$(mktemp -d)
    go run ./cmd/dhsort -p 8 -n 16384 -model pgas -threads 1 \
        -dump "$ooc_tmp/resident.txt" > /dev/null
    go run ./cmd/dhsort -p 8 -n 16384 -model pgas -threads 1 \
        -mem-budget 2048 -spill-dir "$ooc_tmp/scratch" \
        -dump "$ooc_tmp/spilled.txt" > /dev/null
    cmp "$ooc_tmp/resident.txt" "$ooc_tmp/spilled.txt"
    sort -c -n "$ooc_tmp/spilled.txt"
    rm -rf "$ooc_tmp"

    echo "== bench smoke (BENCH_ci.json)"
    go run ./cmd/bench -json BENCH_ci.json -smoke
    # Same grid with the parallel intra-rank kernels engaged: exercises the
    # threaded supersteps end to end.  Threads only speed the modelled
    # compute phases up, so the default-threads baseline above stays the
    # conservative one the compare gate tracks.
    echo "== bench smoke, threaded kernels (BENCH_ci_t2.json)"
    go run ./cmd/bench -json BENCH_ci_t2.json -smoke -threads 2

    # Regression gate: hold the smoke run against the committed full
    # baseline on the grid points both cover (exit 3 on regression).
    echo "== bench compare gate (BENCH_ci.json vs committed BENCH_full.json)"
    go run ./cmd/bench -compare BENCH_full.json -with BENCH_ci.json -subset
fi

if [ "${1:-}" = "serve" ]; then
    # Sort-service smoke: boot dhsortd on a random port, push a job through
    # the real client, and check the streamed result is sorted and complete.
    echo "== serve smoke (dhsortd + dhsort client round trip)"
    tmp=$(mktemp -d)
    trap 'kill $srv_pid 2>/dev/null || true; rm -rf "$tmp"' EXIT
    go build -o "$tmp/" ./cmd/dhsort ./cmd/dhsortd
    "$tmp/dhsortd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -p 4 -workers 2 \
        > "$tmp/dhsortd.log" 2>&1 &
    srv_pid=$!
    for i in 1 2 3 4 5 6 7 8 9 10; do
        [ -s "$tmp/addr" ] && break
        sleep 0.3
    done
    [ -s "$tmp/addr" ] || { echo "dhsortd never wrote its address" >&2; cat "$tmp/dhsortd.log" >&2; exit 1; }
    DHSORT_SERVER="http://$(cat "$tmp/addr" | tr -d '\n')"
    export DHSORT_SERVER

    "$tmp/dhsort" health > /dev/null
    job=$("$tmp/dhsort" submit -tenant ci -n 50000 -dist zipf -wait)
    "$tmp/dhsort" result "$job" > "$tmp/out.txt"
    sort -c -n "$tmp/out.txt"
    lines=$(wc -l < "$tmp/out.txt")
    [ "$lines" -eq 50000 ] || { echo "serve smoke: got $lines keys, want 50000" >&2; exit 1; }
    # Second job of the same shape must hit the warm world pool.
    job2=$("$tmp/dhsort" submit -tenant ci -n 10000 -wait 2> "$tmp/wait2.log")
    grep -q 'pool_hit=true' "$tmp/wait2.log" || { echo "serve smoke: second job missed the world pool" >&2; cat "$tmp/wait2.log" >&2; exit 1; }
    "$tmp/dhsort" stats | grep -q '"hits": ' || { echo "serve smoke: /v1/metrics has no pool counters" >&2; exit 1; }
    # k-ary probing end to end: an 8-probe job must stream a sorted result.
    job3=$("$tmp/dhsort" submit -tenant ci -n 50000 -dist zipf -probes 8 -wait)
    "$tmp/dhsort" result "$job3" > "$tmp/out3.txt"
    sort -c -n "$tmp/out3.txt"
    lines3=$(wc -l < "$tmp/out3.txt")
    [ "$lines3" -eq 50000 ] || { echo "serve smoke: probes job got $lines3 keys, want 50000" >&2; exit 1; }
    # Same tenant + distribution again: the splitter warm-start cache must
    # seed this repeat (job1 and job3 populated the zipf entry).
    job4=$("$tmp/dhsort" submit -tenant ci -n 50000 -dist zipf -wait 2> "$tmp/wait4.log")
    grep -q 'warm_start=true' "$tmp/wait4.log" || { echo "serve smoke: repeat job missed the warm-start cache" >&2; cat "$tmp/wait4.log" >&2; exit 1; }
    "$tmp/dhsort" stats | grep -q '"warm_hits": ' || { echo "serve smoke: /v1/metrics has no warm-start counters" >&2; exit 1; }
    kill $srv_pid
    wait $srv_pid 2>/dev/null || true
    trap - EXIT
    rm -rf "$tmp"
    echo "== serve smoke OK"
fi

if [ "${1:-}" = "elastic" ]; then
    # Elasticity smoke: dhsortd with the autoscaler on hot thresholds.  A
    # flood of queued jobs must grow the default world size (and reshape the
    # warm pool in place); a subsequent idle stretch must shrink it back.
    # Both transitions are asserted from the public /v1/metrics counters.
    echo "== elastic smoke (autoscaler grow under flood, shrink when idle)"
    tmp=$(mktemp -d)
    trap 'kill $srv_pid 2>/dev/null || true; rm -rf "$tmp"' EXIT
    go build -o "$tmp/" ./cmd/dhsort ./cmd/dhsortd
    "$tmp/dhsortd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -p 4 -workers 1 \
        -queue 64 -quota-rate 1000 -quota-burst 1000 \
        -autoscale -autoscale-max-p 8 -autoscale-step 4 \
        -grow-queue 1 -sustain 2 -scale-interval 50ms \
        -idle-ttl 1s -cooldown 200ms \
        > "$tmp/dhsortd.log" 2>&1 &
    srv_pid=$!
    for i in 1 2 3 4 5 6 7 8 9 10; do
        [ -s "$tmp/addr" ] && break
        sleep 0.3
    done
    [ -s "$tmp/addr" ] || { echo "dhsortd never wrote its address" >&2; cat "$tmp/dhsortd.log" >&2; exit 1; }
    DHSORT_SERVER="http://$(cat "$tmp/addr" | tr -d '\n')"
    export DHSORT_SERVER

    # Flood: enough concurrent queued work that the sampler sees sustained
    # pressure.  The retrying client rides out any transient queue_full
    # rejections.
    sub_pids=""
    for i in $(seq 1 24); do
        "$tmp/dhsort" submit -tenant ci -n 400000 -dist zipf -seed "$i" \
            -retries 5 > /dev/null &
        sub_pids="$sub_pids $!"
    done
    wait $sub_pids
    grew=""
    for i in $(seq 1 100); do
        if "$tmp/dhsort" stats | grep -Eq '"grows": [1-9]'; then grew=1; break; fi
        sleep 0.2
    done
    [ -n "$grew" ] || { echo "elastic smoke: no grow under flood" >&2; "$tmp/dhsort" stats >&2; exit 1; }

    # Idle: wait out the queue, then the idle TTL; the target must return
    # to the floor.
    shrank=""
    for i in $(seq 1 300); do
        if "$tmp/dhsort" stats | grep -Eq '"shrinks": [1-9]'; then shrank=1; break; fi
        sleep 0.2
    done
    [ -n "$shrank" ] || { echo "elastic smoke: no shrink when idle" >&2; "$tmp/dhsort" stats >&2; exit 1; }
    "$tmp/dhsort" stats | grep -q '"target_p": 4' || { echo "elastic smoke: target did not return to the floor" >&2; "$tmp/dhsort" stats >&2; exit 1; }

    # Graceful drain: with a job still in flight, SIGTERM flips health to
    # draining, submissions bounce typed, and the server finishes the
    # admitted work before exiting inside its drain budget.
    "$tmp/dhsort" submit -tenant ci -n 4000000 -dist zipf > /dev/null
    kill -TERM $srv_pid
    sleep 0.2
    "$tmp/dhsort" health | grep -q draining || { echo "elastic smoke: no draining health state" >&2; exit 1; }
    if "$tmp/dhsort" submit -tenant ci -n 1000 > /dev/null 2> "$tmp/drain.log"; then
        echo "elastic smoke: submission accepted while draining" >&2; exit 1
    fi
    grep -q draining "$tmp/drain.log" || { echo "elastic smoke: drain rejection untyped" >&2; cat "$tmp/drain.log" >&2; exit 1; }
    wait $srv_pid 2>/dev/null || true
    grep -q 'drained, shutting down' "$tmp/dhsortd.log" || { echo "elastic smoke: drain did not complete cleanly" >&2; cat "$tmp/dhsortd.log" >&2; exit 1; }
    trap - EXIT
    rm -rf "$tmp"
    echo "== elastic smoke OK"
fi

if [ "${1:-}" = "chaos" ]; then
    # Tier 2: the pinned-seed chaos corpus — 64 composed skew × fault ×
    # recovery × backend × storage scenarios, each checked for sortedness,
    # multiset identity, imbalance, bit-identical replay and (when spilled)
    # storage-backing independence.  A failure prints the exact
    # single-scenario repro command (also: make chaos-repro).
    echo "== chaos corpus (pinned seed 20260807, 64 scenarios)"
    go run ./cmd/chaos -seed 20260807 -count 64
fi

echo "== ci OK"
