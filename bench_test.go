package dhsort

// Benchmarks regenerating the paper's evaluation artifacts in testing.B
// form.  Scaling benchmarks execute under the simnet virtual clock and
// report the modelled SuperMUC makespan as the custom metric "vsec/op"
// (virtual seconds per sort); wall-clock ns/op measures the simulation
// itself, not the modelled machine.  The cmd/bench tool prints the full
// tables; see EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"dhsort/internal/bitonic"
	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/hss"
	"dhsort/internal/hyksort"
	"dhsort/internal/keys"
	"dhsort/internal/prng"
	"dhsort/internal/psort"
	"dhsort/internal/samplesort"
	"dhsort/internal/simnet"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
)

// virtualSort runs one modelled sort and returns the virtual makespan in
// seconds.
func virtualSort(b *testing.B, p, perRank int, scale float64, model *simnet.CostModel,
	run func(c *comm.Comm, local []uint64, scale float64) ([]uint64, error)) float64 {
	b.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		b.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 42, Span: 1e9}
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		_, err = run(c, local, scale)
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	return w.Makespan().Seconds()
}

// BenchmarkStrongScaling is the Fig. 2(a) series: fixed total volume
// (2^31 keys virtual), growing rank count.
func BenchmarkStrongScaling(b *testing.B) {
	const realTotal = 1 << 18
	scale := float64(int64(1)<<31) / float64(realTotal)
	model := simnet.SuperMUC(16, true)
	for _, p := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				vsec = virtualSort(b, p, realTotal/p, scale, model,
					func(c *comm.Comm, local []uint64, s float64) ([]uint64, error) {
						return core.Sort(c, local, keys.Uint64{}, core.Config{VirtualScale: s})
					})
			}
			b.ReportMetric(vsec, "vsec/op")
		})
	}
}

// BenchmarkWeakScaling is the Fig. 3(a) series: 128 MiB per rank (virtual).
func BenchmarkWeakScaling(b *testing.B) {
	const perRankReal = 1024
	scale := float64(int64(1)<<24) / float64(perRankReal)
	model := simnet.SuperMUC(16, true)
	for _, nodes := range []int{1, 4, 16} {
		p := nodes * 16
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				vsec = virtualSort(b, p, perRankReal, scale, model,
					func(c *comm.Comm, local []uint64, s float64) ([]uint64, error) {
						return core.Sort(c, local, keys.Uint64{}, core.Config{VirtualScale: s})
					})
			}
			b.ReportMetric(vsec, "vsec/op")
		})
	}
}

// BenchmarkSharedMemory is the Fig. 4 series: one node, 1-4 NUMA domains.
func BenchmarkSharedMemory(b *testing.B) {
	const realTotal = 1 << 16
	scale := float64(int64(5)<<30/8) / float64(realTotal)
	model := simnet.SuperMUC(28, true)
	for _, domains := range []int{1, 2, 4} {
		p := 7 * domains
		b.Run(fmt.Sprintf("domains=%d", domains), func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				vsec = virtualSort(b, p, realTotal/p, scale, model,
					func(c *comm.Comm, local []uint64, s float64) ([]uint64, error) {
						return core.Sort(c, local, keys.Uint64{}, core.Config{VirtualScale: s})
					})
			}
			b.ReportMetric(vsec, "vsec/op")
		})
	}
}

// BenchmarkBaselines compares all five distributed sorters on one
// configuration (the §III comparison).
func BenchmarkBaselines(b *testing.B) {
	const p, perRank = 32, 2048
	model := simnet.SuperMUC(16, true)
	algs := map[string]func(c *comm.Comm, local []uint64, s float64) ([]uint64, error){
		"dhsort": func(c *comm.Comm, l []uint64, s float64) ([]uint64, error) {
			return core.Sort(c, l, keys.Uint64{}, core.Config{VirtualScale: s})
		},
		"hss": func(c *comm.Comm, l []uint64, s float64) ([]uint64, error) {
			return hss.Sort(c, l, keys.Uint64{}, hss.Config{VirtualScale: s, Seed: 7})
		},
		"samplesort": func(c *comm.Comm, l []uint64, s float64) ([]uint64, error) {
			return samplesort.Sort(c, l, keys.Uint64{}, samplesort.Config{VirtualScale: s, Variant: samplesort.RegularSampling})
		},
		"hyksort": func(c *comm.Comm, l []uint64, s float64) ([]uint64, error) {
			return hyksort.Sort(c, l, keys.Uint64{}, hyksort.Config{VirtualScale: s})
		},
		"bitonic": func(c *comm.Comm, l []uint64, s float64) ([]uint64, error) {
			return bitonic.Sort(c, l, keys.Uint64{}, bitonic.Config{VirtualScale: s})
		},
	}
	for _, name := range []string{"dhsort", "hss", "samplesort", "hyksort", "bitonic"} {
		run := algs[name]
		b.Run(name, func(b *testing.B) {
			var vsec float64
			for i := 0; i < b.N; i++ {
				vsec = virtualSort(b, p, perRank, 1024, model, run)
			}
			b.ReportMetric(vsec, "vsec/op")
		})
	}
}

// BenchmarkDSelect measures the distributed selection building block
// (Algorithm 1) at several rank counts.
func BenchmarkDSelect(b *testing.B) {
	model := simnet.SuperMUC(16, true)
	for _, p := range []int{8, 64} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			const perRank = 4096
			w, err := comm.NewWorld(1, nil)
			_ = w
			if err != nil {
				b.Fatal(err)
			}
			var vsec float64
			for i := 0; i < b.N; i++ {
				w, _ := comm.NewWorld(p, model)
				err := w.Run(func(c *comm.Comm) error {
					spec := workload.Spec{Dist: workload.Uniform, Seed: 9, Span: 1e9}
					local, _ := spec.Rank(c.Rank(), perRank)
					_, err := core.DSelect(c, local, int64(p*perRank/2), keys.Uint64{}, core.Config{})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				vsec = w.Makespan().Seconds()
			}
			b.ReportMetric(vsec, "vsec/op")
		})
	}
}

// BenchmarkKWayMerge is the §VI-E study in testing.B form: real wall-clock
// k-way merging, by algorithm and chunk count.
func BenchmarkKWayMerge(b *testing.B) {
	const total = 1 << 20
	less := func(a, x uint32) bool { return a < x }
	for _, k := range []int{2, 32, 512} {
		src := prng.NewXoshiro256(uint64(k))
		runs := make([][]uint32, k)
		for i := range runs {
			r := make([]uint32, total/k)
			for j := range r {
				r[j] = uint32(src.Uint64())
			}
			sortutil.Sort(r, less)
			runs[i] = r
		}
		for _, alg := range psort.MergeAlgorithms {
			b.Run(fmt.Sprintf("k=%d/%s", k, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out := psort.MergeK(alg, runs, less, 2)
					if len(out) != total {
						b.Fatal("merge lost elements")
					}
				}
				b.SetBytes(int64(total * 4))
			})
		}
	}
}

// BenchmarkLocalSort measures the sequential introsort kernel used by the
// Local Sort superstep.
func BenchmarkLocalSort(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := prng.NewXoshiro256(uint64(n))
			data := make([]uint64, n)
			for i := range data {
				data[i] = src.Uint64()
			}
			buf := make([]uint64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				sortutil.Sort(buf, func(a, x uint64) bool { return a < x })
			}
			b.SetBytes(int64(n * 8))
		})
	}
}

// BenchmarkCollectives measures the runtime's allreduce and alltoall, the
// two operations the splitter search and data exchange are built on.
func BenchmarkCollectives(b *testing.B) {
	for _, p := range []int{16, 64} {
		b.Run(fmt.Sprintf("allreduce/ranks=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, _ := comm.NewWorld(p, nil)
				err := w.Run(func(c *comm.Comm) error {
					vec := make([]int64, 2*p)
					for r := 0; r < 10; r++ {
						comm.Allreduce(c, vec, func(a, x int64) int64 { return a + x })
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("alltoallv/ranks=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, _ := comm.NewWorld(p, nil)
				err := w.Run(func(c *comm.Comm) error {
					counts := make([]int, p)
					for d := range counts {
						counts[d] = 64
					}
					buf := make([]uint64, 64*p)
					comm.Alltoallv(c, buf, counts, 1)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
