package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/rma"
)

// rmaPutExchangeMerge is the one-sided data exchange (comm.ExchangeRMAPut):
// every rank puts its partitions directly into symmetric rma windows at
// exscan-computed target offsets and merges its own incoming runs as the
// put-notifications arrive — the paper's §VI overlap with the DASH/DART
// put+notify substrate instead of two-sided sendrecv rounds.
//
// The offsets come from a one-sided bootstrap rather than a two-sided
// collective: a P×P counts window of static capacity receives every rank's
// send-count row, after which each rank locally computes the exclusive
// column prefix (the exscan) that places origin r's run at
// sum_{s<r} count(s→d) in destination d's window, plus the column sum that
// sizes its own data window.  Under PGAS pricing this costs P-1 tiny
// memcpys instead of log-P latency-bound rounds, which is exactly why the
// put path wins intra-node.
//
// Determinism: data puts and notification consumption follow the same
// 1-factor schedule as the fused two-sided path, so the virtual clock's
// Arrive/Advance interleaving — and with it the emitted metrics — is
// byte-identical across runs.  No trailing fence is needed: each origin
// puts exactly once per target and every put is consumed through its
// notification, which already orders the target's reads after the origin's
// writes.
func rmaPutExchangeMerge[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], sendCounts []int, cfg Config) []K {
	p := c.Size()
	model := c.Model()
	scale := cfg.scale()

	offsets := make([]int, p+1)
	for d := 0; d < p; d++ {
		offsets[d+1] = offsets[d] + sendCounts[d]
	}

	// Counts bootstrap: row r of the matrix is rank r's send counts.
	cw := rma.New[int64](c, p*p)
	row := make([]int64, p)
	for d := 0; d < p; d++ {
		row[d] = int64(sendCounts[d])
	}
	copy(cw.Local()[c.Rank()*p:(c.Rank()+1)*p], row)
	for i := 1; i < p; i++ {
		cw.PutNotify((c.Rank()+i)%p, c.Rank()*p, row, 0)
	}
	for src := 0; src < p; src++ {
		if src != c.Rank() {
			cw.WaitNotify(src)
		}
	}
	counts := cw.Local()

	// Column c.Rank() sums to my window size; the exclusive prefix of
	// column d is where my run starts in d's window.
	recvTotal := 0
	for s := 0; s < p; s++ {
		recvTotal += int(counts[s*p+c.Rank()])
	}
	myOff := make([]int, p)
	for d := 0; d < p; d++ {
		off := 0
		for s := 0; s < c.Rank(); s++ {
			off += int(counts[s*p+d])
		}
		myOff[d] = off
	}
	if model != nil {
		c.Clock().Advance(model.ScanCost(p * p))
	}

	// Fused put/notify/merge over the 1-factor schedule.  Received runs
	// are merged straight out of the window — the zero-copy consumption a
	// shared-memory window affords.
	dw := rma.New[K](c, recvTotal)
	stack := newRunStack(c, ops, cfg)
	self := make([]K, sendCounts[c.Rank()])
	copy(self, sorted[offsets[c.Rank()]:offsets[c.Rank()+1]])
	stack.push(self)

	rounds := comm.OneFactorRounds(p)
	for r := 0; r < rounds; r++ {
		partner := comm.OneFactorPartner(p, r, c.Rank())
		if partner < 0 {
			continue
		}
		dw.PutNotifyScaled(partner, myOff[partner], sorted[offsets[partner]:offsets[partner+1]], r, scale)
		n := dw.WaitNotify(partner)
		stack.push(dw.Local()[n.Off : n.Off+n.N])
	}
	return stack.finish()
}
