package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
)

// rebalanceTagBase is the tag band of the post-merge rebalance rounds,
// drawn from the library-reserved space: above the fused-exchange band
// [comm.UserTagLimit, comm.UserTagLimit+P) and below the dynamically
// reserved protocol tags at comm.UserTagLimit + 1<<20.  Boundary b of the
// rank line uses tag rebalanceTagBase + b.
const rebalanceTagBase = comm.UserTagLimit + 1<<16

// RebalanceOutput is the bounded rebalance step of the skew-proofing path
// (PGX.D-style): called collectively after the Local Merge with each rank's
// final partition, it checks the output against the imbalance bound of
// Definition 1 and, if any bucket exceeds it, sheds surplus to line
// neighbors until the partition is balanced — rank r's tail flows to r+1's
// head (and heads flow left), so the global order is preserved by
// construction.
//
// The flow schedule is derived deterministically from the allgathered
// bucket sizes, so every rank executes the same rounds without further
// coordination; rounds are capped at P (elements travel two boundaries per
// round, so every schedule settles within the cap).  All traffic is priced
// on the virtual clock through the protocol send path and the pass is
// recorded in metrics (rebalances / rounds / bytes / ns).
func RebalanceOutput[K any](c *comm.Comm, out []K, ops keys.Ops[K], cfg Config) []K {
	p := c.Size()
	if p <= 1 {
		return out
	}
	rec := cfg.Recorder
	model := c.Model()
	scale := cfg.scale()
	start := c.Clock().Now()

	sizes := comm.AllgatherOne(c, int64(len(out)))
	var total, maxSz int64
	for _, n := range sizes {
		total += n
		if n > maxSz {
			maxSz = n
		}
	}
	if total == 0 {
		return out
	}
	// Definition 1: no rank may hold more than N(1+ε)/P elements.  The
	// bound can never sit below a perfectly balanced (front-loaded) share.
	bound := int64(float64(total) * (1 + cfg.Epsilon) / float64(p))
	if ceil := (total + int64(p) - 1) / int64(p); bound < ceil {
		bound = ceil
	}
	if maxSz <= bound {
		return out // within the bound: nothing to shed
	}

	// Target: the balanced front-loaded partition (every desired size is
	// ≤ ⌈N/P⌉ ≤ bound).  flow[b] > 0 means elements must cross boundary
	// (b, b+1) rightward, < 0 leftward; the per-boundary flow is the
	// difference of the current and desired prefix sums, which any
	// order-preserving redistribution must realize exactly.
	base, extra := total/int64(p), total%int64(p)
	desired := func(r int) int64 {
		if int64(r) < extra {
			return base + 1
		}
		return base
	}
	flow := make([]int64, p-1)
	var curPre, desPre int64
	for b := 0; b < p-1; b++ {
		curPre += sizes[b]
		desPre += desired(b)
		flow[b] = curPre - desPre
	}

	me := c.Rank()
	sim := append([]int64(nil), sizes...)
	var movedBytes int64
	rounds := 0
	for rounds < p {
		settled := true
		for _, f := range flow {
			if f != 0 {
				settled = false
				break
			}
		}
		if settled {
			break
		}
		rounds++
		// Even boundaries, then odd: each rank touches at most one boundary
		// per half-round, and the half-round order is part of the
		// deterministic schedule every rank simulates identically.
		for parity := 0; parity < 2; parity++ {
			for b := parity; b < p-1; b += 2 {
				f := flow[b]
				src, dst := b, b+1
				var m int64
				if f > 0 {
					m = min(f, sim[src])
				} else if f < 0 {
					src, dst = b+1, b
					m = min(-f, sim[src])
				}
				if m == 0 {
					continue
				}
				sim[src] -= m
				sim[dst] += m
				if f > 0 {
					flow[b] -= m
				} else {
					flow[b] += m
				}
				tag := rebalanceTagBase + b
				switch me {
				case src:
					var shed []K
					if src < dst { // tail flows rightward
						cut := len(out) - int(m)
						shed, out = out[cut:], out[:cut]
					} else { // head flows leftward
						shed, out = out[:m], out[m:]
					}
					comm.SendProtocol(c, dst, tag, shed, scale)
					movedBytes += int64(float64(int(m)*ops.Bytes()) * scale)
				case dst:
					got := comm.RecvProtocol[K](c, src, tag)
					if src < dst { // rightward flow arrives at the head
						joined := make([]K, 0, len(got)+len(out))
						joined = append(joined, got...)
						out = append(joined, out...)
					} else { // leftward flow arrives at the tail
						out = append(out, got...)
					}
					if model != nil {
						c.Clock().Advance(model.ScanCost(int(float64(len(got)) * scale)))
					}
					movedBytes += int64(float64(len(got)*ops.Bytes()) * scale)
				}
			}
		}
	}
	rec.AddRebalance(rounds, movedBytes, c.Clock().Now()-start)
	return out
}
