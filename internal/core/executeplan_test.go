package core

import (
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
)

func TestExecutePlanCarriesSatelliteData(t *testing.T) {
	const p, perRank = 5, 300
	w, _ := comm.NewWorld(p, nil)
	type got struct {
		keys []uint64
		vals []uint64
	}
	results := make([]got, p)
	var mu sync.Mutex
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 95, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		// Satellite value encodes its key so transport is checkable.
		vals := make([]uint64, len(local))
		for i, k := range local {
			vals[i] = k*31 + 7
		}
		plan, err := MakePlan(c, local, u64, Config{})
		if err != nil {
			return err
		}
		outKeys, err := ExecutePlan(c, plan, local, Config{})
		if err != nil {
			return err
		}
		outVals, err := ExecutePlan(c, plan, vals, Config{})
		if err != nil {
			return err
		}
		if len(outKeys) != perRank || len(outVals) != perRank {
			t.Errorf("rank %d: sizes %d/%d", c.Rank(), len(outKeys), len(outVals))
		}
		mu.Lock()
		results[c.Rank()] = got{outKeys, outVals}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, g := range results {
		for i := range g.keys {
			if g.vals[i] != g.keys[i]*31+7 {
				t.Fatalf("rank %d: value detached from key at %d", r, i)
			}
		}
		// Arrival order merges to the sorted partition.
		sortutil.Sort(g.keys, u64.Less)
		if !sortutil.IsSorted(g.keys, u64.Less) {
			t.Fatalf("rank %d: keys not sortable", r)
		}
	}
}

func TestExecutePlanValidation(t *testing.T) {
	w, _ := comm.NewWorld(2, nil)
	err := w.Run(func(c *comm.Comm) error {
		plan, err := MakePlan(c, []uint64{3, 1, 2}, u64, Config{})
		if err != nil {
			return err
		}
		if _, err := ExecutePlan(c, plan, []int{1}, Config{}); err == nil {
			t.Error("length mismatch must be rejected")
		}
		// Matching call so the collective completes consistently.
		_, err = ExecutePlan(c, plan, []int{7, 8, 9}, Config{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
