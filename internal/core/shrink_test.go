package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/fault"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// runSortShrink runs SortResilient on a fault-injecting world and returns
// the per-world-rank inputs and outputs (nil for ranks that died), the
// world, the per-rank recorders (registered before the sort so a victim's
// partial tallies survive its exit), and the per-rank effective
// communicator sizes.  The w.Run error is returned, not fataled, so tests
// can assert on typed failure modes.
func runSortShrink(t *testing.T, p int, spec workload.Spec, perRank int, cfg Config, model *simnet.CostModel, plan fault.Plan) (ins, outs [][]uint64, w *comm.World, recs []*metrics.Recorder, effSizes []int, runErr error) {
	t.Helper()
	w, err := comm.NewWorldWithFaults(p, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	recs = make([]*metrics.Recorder, p)
	effSizes = make([]int, p)
	var mu sync.Mutex
	runErr = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		mu.Lock()
		ins[c.Rank()] = local
		recs[c.Rank()] = rec
		mu.Unlock()
		runCfg := cfg
		runCfg.Recorder = rec
		out, eff, err := SortResilient(c, local, u64, runCfg)
		if err != nil {
			return err
		}
		if !IsGloballySorted(eff, out, u64) {
			t.Errorf("rank %d: output not globally sorted on the effective communicator", c.Rank())
		}
		rec.Finish()
		mu.Lock()
		outs[c.Rank()] = out
		effSizes[c.Rank()] = eff.Size()
		mu.Unlock()
		return nil
	})
	return ins, outs, w, recs, effSizes, runErr
}

// TestSortShrinkRecovery is the graceful-degradation acceptance test: a
// P=16 sort with rank 3 dying permanently at the first boundary and
// Recovery == "shrink" must complete on the 15 survivors with a globally
// sorted, loss-free (multiset-identical) output — the dead rank's elements
// adopted from its ring-mirrored checkpoint shard.
func TestSortShrinkRecovery(t *testing.T) {
	const p, perRank = 16, 2048
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}
	plan := fault.Plan{Seed: 7, Deaths: []fault.Death{{Rank: 3, Step: StepLocalSort}}}
	cfg := Config{Threads: 1, Recovery: RecoveryShrink}

	ins, outs, _, recs, effSizes, err := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	if outs[3] != nil {
		t.Error("dead rank 3 produced output")
	}
	for r, sz := range effSizes {
		if r == 3 {
			continue
		}
		if sz != p-1 {
			t.Errorf("rank %d finished on a communicator of size %d, want %d", r, sz, p-1)
		}
	}
	checkSorted(t, ins, outs, false, 0)

	s := metrics.Summarize(recs)
	if s.Fault.Deaths != 1 {
		t.Errorf("1 death scheduled, %d recorded", s.Fault.Deaths)
	}
	if s.Fault.Shrinks != int64(p-1) {
		t.Errorf("every survivor should record one shrink: got %d, want %d", s.Fault.Shrinks, p-1)
	}
	if s.Survivors != p-1 {
		t.Errorf("survivor count %d, want %d", s.Survivors, p-1)
	}
	if s.Fault.AgreeRounds == 0 {
		t.Error("no agreement rounds recorded")
	}
	if s.Fault.ShrinkNS <= 0 {
		t.Error("shrink recovery must cost virtual time")
	}
}

// TestSortShrinkUnderDrops composes the two fault planes: a permanent death
// at the splitting boundary while every message is exposed to a seeded 3%
// drop rate.  Recovery must still be loss-free, including the redo epoch on
// the shrunken communicator.
func TestSortShrinkUnderDrops(t *testing.T) {
	const p, perRank = 16, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Zipf, Seed: 11, Span: 1e9}
	plan := fault.Plan{Seed: 9, DropRate: 0.03,
		Deaths: []fault.Death{{Rank: 5, Step: StepSplitting}}}
	cfg := Config{Threads: 1, Recovery: RecoveryShrink}

	ins, outs, w, _, _, err := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, ins, outs, false, 0)
	if f := w.TotalStats().Fault; f.Drops == 0 || f.Retries != f.Drops {
		t.Errorf("drop schedule did not exercise the retry path: %+v", f)
	}
}

// TestSortShrinkDeterminism pins bit-reproducibility of a shrink recovery:
// identical runs produce identical outputs, identical fault counters and an
// identical virtual makespan.
func TestSortShrinkDeterminism(t *testing.T) {
	const p, perRank = 8, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 2, Span: 1e9}
	plan := fault.Plan{Seed: 5, Deaths: []fault.Death{{Rank: 2, Step: StepSplitting}}}
	cfg := Config{Threads: 1, Recovery: RecoveryShrink}

	_, out1, w1, _, _, err1 := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	_, out2, w2, _, _, err2 := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Error("outputs differ between identical shrink-recovery runs")
	}
	if s1, s2 := w1.TotalStats(), w2.TotalStats(); s1 != s2 {
		t.Errorf("fault counters differ:\n%+v\n%+v", s1.Fault, s2.Fault)
	}
	if w1.Makespan() != w2.Makespan() {
		t.Errorf("virtual makespan differs: %v vs %v", w1.Makespan(), w2.Makespan())
	}
}

// TestSortShrinkTwoDeaths degrades twice: a death at the first boundary
// shrinks P=16 to 15, then a second (non-adjacent) rank dies at the
// splitting boundary of the redo epoch and the survivors shrink to 14.
func TestSortShrinkTwoDeaths(t *testing.T) {
	const p, perRank = 16, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 4, Span: 1e9}
	plan := fault.Plan{Seed: 3, Deaths: []fault.Death{
		{Rank: 3, Step: StepLocalSort},
		{Rank: 9, Step: StepSplitting},
	}}
	cfg := Config{Threads: 1, Recovery: RecoveryShrink}

	ins, outs, _, recs, effSizes, err := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	if outs[3] != nil || outs[9] != nil {
		t.Error("a dead rank produced output")
	}
	for r, sz := range effSizes {
		if r == 3 || r == 9 {
			continue
		}
		if sz != p-2 {
			t.Errorf("rank %d finished on a communicator of size %d, want %d", r, sz, p-2)
		}
	}
	checkSorted(t, ins, outs, false, 0)
	s := metrics.Summarize(recs)
	if s.Fault.Deaths != 2 {
		t.Errorf("2 deaths scheduled, %d recorded", s.Fault.Deaths)
	}
	if s.Survivors != p-2 {
		t.Errorf("survivor count %d, want %d", s.Survivors, p-2)
	}
}

// TestSortShrinkForceUnique runs the shrink recovery under the uniqueness
// transformation: adoption happens on (key, rank, index) triples, and the
// stripped output must still be loss-free.
func TestSortShrinkForceUnique(t *testing.T) {
	const p, perRank = 8, 512
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Zipf, Seed: 6, Span: 1e3} // heavy duplicates
	plan := fault.Plan{Seed: 2, Deaths: []fault.Death{{Rank: 1, Step: StepLocalSort}}}
	cfg := Config{Threads: 1, Recovery: RecoveryShrink, ForceUnique: true}

	ins, outs, _, _, _, err := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, ins, outs, false, 0)
}

// TestSortShrinkAdjacentDeathsLoseShard pins the loss audit: when a rank
// and its ring successor — the holder of its mirrored shard — die at the
// same boundary, the sort cannot be loss-free and must fail with the typed
// ErrShardLost rather than return silently incomplete output.
func TestSortShrinkAdjacentDeathsLoseShard(t *testing.T) {
	const p, perRank = 8, 512
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 8, Span: 1e9}
	plan := fault.Plan{Seed: 1, Deaths: []fault.Death{
		{Rank: 3, Step: StepLocalSort},
		{Rank: 4, Step: StepLocalSort},
	}}
	cfg := Config{Threads: 1, Recovery: RecoveryShrink}

	_, _, _, _, _, err := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if !errors.Is(err, ErrShardLost) {
		t.Fatalf("adjacent deaths must surface ErrShardLost, got: %v", err)
	}
}

// TestSortRespawnModeDeathIsFatal pins the default mode's contract: without
// Recovery == "shrink", a permanent death surfaces as the typed
// comm.ErrRankDead instead of hanging or panicking the process.
func TestSortRespawnModeDeathIsFatal(t *testing.T) {
	const p, perRank = 8, 512
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 5, Span: 1e9}
	plan := fault.Plan{Seed: 4, Deaths: []fault.Death{{Rank: 2, Step: StepLocalSort}}}

	_, _, _, _, _, err := runSortShrink(t, p, spec, perRank, Config{Threads: 1}, model, plan)
	if !errors.Is(err, comm.ErrRankDead) {
		t.Fatalf("death without shrink recovery must surface comm.ErrRankDead, got: %v", err)
	}
}

// TestSortDoubleCrashAdjacent pins the respawn path's behaviour when a rank
// AND its ring successor crash at the same superstep boundary: unlike a
// double death, both ranks keep their own stable-storage snapshots, respawn
// independently, and the run completes bit-identical to the fault-free run.
func TestSortDoubleCrashAdjacent(t *testing.T) {
	const p, perRank = 16, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}
	plan := fault.Plan{Seed: 7, Crashes: []fault.Crash{
		{Rank: 5, Step: StepSplitting},
		{Rank: 6, Step: StepSplitting},
	}}

	_, want := runSort(t, p, spec, perRank, Config{Threads: 1}, model)
	ins, got, _, recs := runSortFaults(t, p, spec, perRank, Config{Threads: 1}, model, plan)
	checkSorted(t, ins, got, true, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("adjacent double crash changed the output")
	}
	if s := metrics.Summarize(recs); s.Fault.Recoveries != 2 {
		t.Errorf("2 crashes scheduled, %d recoveries recorded", s.Fault.Recoveries)
	}
}

// TestCheckpointCorruptFallsBackToMirror pins satellite (a): a snapshot that
// fails its checksum audit is transparently re-restored from the ring
// mirror's retained send image; only when that replica is rotten too does
// the restore fail, with the typed ErrCheckpointCorrupt.
func TestCheckpointCorruptFallsBackToMirror(t *testing.T) {
	w, err := comm.NewWorld(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		mk := func() *Checkpoint[uint64] {
			ck := &Checkpoint[uint64]{step: StepLocalSort}
			ck.sorted = []uint64{1, 1, 2, 3, 5, 8}
			ck.sum = ck.checksum(u64)
			ck.sent = ckptShard[uint64]{
				Desc:   ckptDesc{Step: StepLocalSort, Elems: 6, Sum: ck.sum},
				Sorted: append([]uint64(nil), ck.sorted...),
			}
			ck.sentValid = true
			return ck
		}

		// Corrupt primary, intact mirror: the restore must fall back and
		// deliver the original data.
		ck := mk()
		ck.sorted[2] ^= 1
		var sorted []uint64
		if err := ck.restoreFromStableStorage(c, u64, Config{}, &sorted, nil, nil); err != nil {
			t.Fatalf("mirror fallback failed: %v", err)
		}
		if !reflect.DeepEqual(sorted, []uint64{1, 1, 2, 3, 5, 8}) {
			t.Fatalf("mirror fallback restored %v", sorted)
		}

		// Both replicas corrupt: typed error, no silent wrong data.
		ck = mk()
		ck.sorted[2] ^= 1
		ck.sent.Sorted[4] ^= 1
		if err := ck.restoreFromStableStorage(c, u64, Config{}, &sorted, nil, nil); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("double corruption must surface ErrCheckpointCorrupt, got: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSortShrinkRMAExchange runs the shrink recovery with the one-sided
// put+notify exchange backend: the redo epoch re-creates windows on the
// shrunken communicator and the result is still loss-free.
func TestSortShrinkRMAExchange(t *testing.T) {
	const p, perRank = 8, 512
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 12, Span: 1e9}
	plan := fault.Plan{Seed: 6, Deaths: []fault.Death{{Rank: 4, Step: StepCuts}}}
	cfg := Config{Threads: 1, Recovery: RecoveryShrink, Exchange: comm.ExchangeRMAPut}

	ins, outs, _, _, _, err := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, ins, outs, false, 0)
}

// TestSortRMAUnderDrops is satellite (d): the one-sided exchange must ride
// the reliable transport under a seeded drop schedule at P=16 — output
// bit-identical to the fault-free one-sided run, with retries recorded.
func TestSortRMAUnderDrops(t *testing.T) {
	const p, perRank = 16, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 9, Span: 1e9}
	cfg := Config{Threads: 1, Exchange: comm.ExchangeRMAPut}
	plan := fault.Plan{Seed: 5, DropRate: 0.05}

	_, want := runSort(t, p, spec, perRank, cfg, model)
	ins, got, w, _ := runSortFaults(t, p, spec, perRank, cfg, model, plan)
	checkSorted(t, ins, got, true, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("one-sided exchange under drops differs from the fault-free run")
	}
	if f := w.TotalStats().Fault; f.Drops == 0 || f.Retries != f.Drops {
		t.Errorf("drop schedule did not exercise the retry path: %+v", f)
	}
}
