package core

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/selection"
)

// dselectSeqCutoff is the residual problem size below which the remaining
// candidates are gathered and solved sequentially (§IV-B: "If the size
// becomes too small the communication overhead is larger compared to the
// remaining compute overhead").
const dselectSeqCutoff = 2048

// DSelect returns the k-th smallest element (0-based) of the distributed
// sequence whose local share is local — Algorithm 1 of the paper, the
// building block the splitter search generalizes and the operation DASH
// exposes as dash::nth_element.  All ranks receive the result.
//
// Each iteration reduces the working set by at least one quarter (the
// weighted-median guarantee of Definition 2), giving O(log P) rounds of a
// single small ALLGATHER/ALLREDUCE each and O(n/P) local work per round,
// with no data movement at all.
//
// It must be called collectively; local is not modified.
func DSelect[K any](c *comm.Comm, local []K, k int64, ops keys.Ops[K], cfg Config) (K, error) {
	var zero K
	if err := cfg.validate(); err != nil {
		return zero, err
	}
	model := c.Model()
	work := make([]K, len(local))
	copy(work, local)

	totalN := comm.AllreduceOne(c, int64(len(work)), func(a, b int64) int64 { return a + b })
	if k < 0 || k >= totalN {
		return zero, fmt.Errorf("core: DSelect rank %d out of range [0, %d)", k, totalN)
	}

	for {
		// Small residue: solve sequentially on rank 0 (§IV-B).
		if totalN <= dselectSeqCutoff {
			all := comm.Gather(c, 0, work)
			var result K
			if c.Rank() == 0 {
				var flat []K
				for _, b := range all {
					flat = append(flat, b...)
				}
				result = selection.Select(flat, int(k), ops.Less)
				if model != nil {
					c.Clock().Advance(model.SelectCost(len(flat)))
				}
			}
			return comm.BcastOne(c, 0, result), nil
		}

		// Line 4-7: local medians, weighted by partition sizes, reduced
		// to the weighted median M.
		type wmed struct {
			Has    bool
			Median K
			Weight int64
		}
		var mine wmed
		if len(work) > 0 {
			mine = wmed{Has: true, Weight: int64(len(work))}
			mine.Median = selection.Select(work, len(work)/2, ops.Less)
			if model != nil {
				c.Clock().Advance(model.SelectCost(len(work)))
			}
		}
		all := comm.AllgatherOne(c, mine)
		items := make([]selection.Weighted[K], 0, len(all))
		for _, w := range all {
			if w.Has {
				items = append(items, selection.Weighted[K]{Value: w.Median, Weight: float64(w.Weight)})
			}
		}
		m := selection.WeightedMedian(items, ops.Less)

		// Line 8-9: 3-way partition around M, then the global (L, E)
		// histogram in one ALLREDUCE.
		lo, eq := partition3(work, m, ops)
		if model != nil {
			c.Clock().Advance(model.ScanCost(len(work)))
		}
		counts := comm.Allreduce(c, []int64{int64(lo), int64(eq)}, func(a, b int64) int64 { return a + b })
		L, E := counts[0], counts[1]

		switch {
		case k >= L && k < L+E:
			// Line 10-11: the k-th order statistic equals the pivot.
			return m, nil
		case k < L:
			// Line 12-14: recurse on the lower parts.
			work = work[:lo]
			totalN = L
		default:
			// Line 15-18: recurse on the upper parts.
			work = work[lo+eq:]
			k -= L + E
			totalN -= L + E
		}
	}
}

// partition3 rearranges a around pivot m into [<m | ==m | >m] and returns
// the sizes of the first two regions.
func partition3[K any](a []K, m K, ops keys.Ops[K]) (lo, eq int) {
	lt, i, gt := 0, 0, len(a)
	for i < gt {
		switch {
		case ops.Less(a[i], m):
			a[i], a[lt] = a[lt], a[i]
			lt++
			i++
		case ops.Less(m, a[i]):
			gt--
			a[i], a[gt] = a[gt], a[i]
		default:
			i++
		}
	}
	return lt, gt - lt
}
