package core

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
)

// Superstep checkpointing — the resilience half of the fault plane
// (internal/fault).  At each superstep boundary a rank snapshots the state
// the next superstep depends on (the locally sorted partition, the splitter
// vector, the exchange cut offsets), checksums it, and mirrors a small
// descriptor around a ring so neighbouring ranks audit superstep agreement.
// A rank the schedule crashes at that boundary loses its live state, pays
// the respawn + restore cost on the virtual clock, re-enters from the
// snapshot, and verifies the checksum before continuing; a stalled rank
// just burns the scheduled time.  Checkpointing only runs in
// fault-injecting worlds, so fault-free runs are byte-identical to before.

// The fault plane's superstep schedule, shared by core and hss: crash/stall
// coordinates in fault.Plan address these boundary indices.
const (
	// StepLocalSort is the boundary after the Local Sort superstep.
	StepLocalSort = 1
	// StepSplitting is the boundary after splitter determination.
	StepSplitting = 2
	// StepCuts is the boundary after the permutation-matrix construction,
	// immediately before the data exchange.
	StepCuts = 3
)

// Checkpoint is one rank's snapshot store: the last completed superstep's
// state, its checksum, and reusable buffers.  The zero value is ready; a
// nil pointer (fault-free run) makes Boundary a no-op.
type Checkpoint[K any] struct {
	step      int
	sorted    []K
	splitters []K
	cuts      []int
	sum       uint64
}

// ckptDesc is the descriptor mirrored around the ring at every boundary:
// enough for a neighbour to audit superstep agreement and for diagnostics,
// not a replica of the data (the snapshot itself is rank-local "stable
// storage" surviving the modelled process crash).
type ckptDesc struct {
	Step  int32
	Elems int64
	Sum   uint64
}

// Boundary runs the checkpoint protocol at superstep boundary `step` for
// the state (*sorted, *splitters, *cuts); nil slice pointers mean the state
// does not exist yet at this boundary.  In fault-free worlds it does
// nothing.  Under fault injection it (1) snapshots + checksums the state
// and prices the checkpoint write, (2) mirrors the descriptor to the next
// ring neighbour and audits the predecessor's, (3) applies a scheduled
// stall, and (4) applies a scheduled crash: wipes the live state, pays
// respawn + restore, re-installs the snapshot and verifies its checksum.
func (ck *Checkpoint[K]) Boundary(c *comm.Comm, ops keys.Ops[K], cfg Config, step int, sorted, splitters *[]K, cuts *[]int) {
	if ck == nil {
		return
	}
	inj := c.FaultInjector()
	if inj == nil {
		return
	}
	rec := cfg.Recorder
	model := c.Model()
	p := c.Size()

	// (1) Snapshot into the checkpoint store and checksum it.  The write
	// is priced at the scaled volume, like the data it protects.
	ck.step = step
	ck.sorted = snapshot(ck.sorted, sorted)
	ck.splitters = snapshot(ck.splitters, splitters)
	ck.cuts = snapshot(ck.cuts, cuts)
	ck.sum = ck.checksum(ops)
	velems := int(float64(len(ck.sorted)) * cfg.scale())
	vbytes := int64(float64(ck.bytes(ops)) * cfg.scale())
	if model != nil {
		c.Clock().Advance(model.ScanCost(velems) + model.CheckpointCost(int(vbytes)))
	}
	rec.AddCheckpoint(vbytes)

	// (2) Descriptor ring: audit that the neighbourhood is at the same
	// superstep.  Divergence means the checkpoint schedule itself broke —
	// abort loudly rather than sort wrong data.
	if p > 1 {
		tag := c.FaultControlTag()
		next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
		comm.SendProtocol(c, next, tag, []ckptDesc{{Step: int32(step), Elems: int64(len(ck.sorted)), Sum: ck.sum}}, 1)
		got := comm.RecvProtocol[ckptDesc](c, prev, tag)
		if len(got) != 1 || int(got[0].Step) != step {
			panic(fmt.Sprintf("core: checkpoint divergence at rank %d: boundary %d but predecessor %d mirrored %+v", c.Rank(), step, prev, got))
		}
	}

	// (3) Scheduled stall: the rank freezes for the scheduled time.  Its
	// neighbours keep running; they only feel it through later arrivals.
	if d := inj.StallAt(c.WorldRank(), step); d > 0 {
		c.Clock().Advance(d)
		rec.AddStall(d)
		rec.AddFaultSpan("inject", fmt.Sprintf("stall %v at step %d", d, step), d)
	}

	// (4) Scheduled crash: live state dies with the rank; the respawned
	// process restores the snapshot and re-enters this superstep.
	if inj.CrashAt(c.WorldRank(), step) {
		rec.AddFaultSpan("inject", fmt.Sprintf("crash at step %d", step), 0)
		wipe(sorted)
		wipe(splitters)
		wipe(cuts)
		start := c.Clock().Now()
		if model != nil {
			c.Clock().Advance(model.RespawnCost() + model.RestoreCost(int(vbytes)) + model.ScanCost(velems))
		}
		restore(sorted, ck.sorted)
		restore(splitters, ck.splitters)
		restore(cuts, ck.cuts)
		if ck.checksum(ops) != ck.sum {
			panic(fmt.Sprintf("core: checkpoint checksum mismatch restoring rank %d at step %d", c.Rank(), step))
		}
		d := c.Clock().Now() - start
		rec.AddRecovery(d)
		rec.AddFaultSpan("recover", fmt.Sprintf("restored step %d (%d elems)", step, len(ck.sorted)), d)
	}
}

// snapshot copies *src into dst's storage (reused across boundaries).
func snapshot[T any](dst []T, src *[]T) []T {
	if src == nil {
		return dst[:0]
	}
	return append(dst[:0], *src...)
}

// wipe models the loss of a crashed rank's volatile memory.
func wipe[T any](s *[]T) {
	if s != nil {
		*s = nil
	}
}

// restore re-installs a snapshot into the live state.
func restore[T any](dst *[]T, src []T) {
	if dst != nil {
		*dst = append([]T(nil), src...)
	}
}

// bytes is the snapshot's stored volume: 16 bytes per key image plus the
// cut offsets.
func (ck *Checkpoint[K]) bytes(ops keys.Ops[K]) int {
	return (len(ck.sorted)+len(ck.splitters))*ops.Bytes() + len(ck.cuts)*8
}

// checksum folds the snapshot's key images and cuts through FNV-1a; the
// 128-bit embedding gives every key type a stable fixed-width image.
func (ck *Checkpoint[K]) checksum(ops keys.Ops[K]) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	word(uint64(ck.step))
	word(uint64(len(ck.sorted)))
	word(uint64(len(ck.splitters)))
	word(uint64(len(ck.cuts)))
	for _, k := range ck.sorted {
		b := ops.ToBits(k)
		word(b.Hi)
		word(b.Lo)
	}
	for _, k := range ck.splitters {
		b := ops.ToBits(k)
		word(b.Hi)
		word(b.Lo)
	}
	for _, c := range ck.cuts {
		word(uint64(int64(c)))
	}
	return h
}
