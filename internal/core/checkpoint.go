package core

import (
	"errors"
	"fmt"
	"reflect"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/store"
)

// Superstep checkpointing — the resilience half of the fault plane
// (internal/fault).  At each superstep boundary a rank snapshots the state
// the next superstep depends on (the locally sorted partition, the splitter
// vector, the exchange cut offsets), checksums it, and mirrors the full
// snapshot around a ring: the successor holds a replica it can audit for
// superstep agreement, adopt if the predecessor dies permanently
// (Config.Recovery == "shrink"), or serve back if the predecessor's own
// snapshot rots.  A rank the schedule crashes at that boundary loses its
// live state, pays the respawn + restore cost on the virtual clock,
// re-enters from the snapshot, and verifies the checksum before continuing;
// a corrupt snapshot falls back to the ring mirror before failing with
// ErrCheckpointCorrupt.  A rank the schedule kills (die=RANK@STEP) leaves
// for good after mirroring.  Checkpointing only runs in fault-injecting
// worlds, so fault-free runs are byte-identical to before.

// The fault plane's superstep schedule, shared by core and hss: crash/stall
// coordinates in fault.Plan address these boundary indices.
const (
	// StepLocalSort is the boundary after the Local Sort superstep.
	StepLocalSort = 1
	// StepSplitting is the boundary after splitter determination.
	StepSplitting = 2
	// StepCuts is the boundary after the permutation-matrix construction,
	// immediately before the data exchange.
	StepCuts = 3
)

// ErrCheckpointCorrupt is the typed checkpoint-integrity error: a restored
// snapshot failed its checksum audit and the ring mirror could not cover
// for it either.  It replaces the former checksum panic; callers receive it
// through Sort's error return.
var ErrCheckpointCorrupt = errors.New("core: checkpoint corrupt")

// ErrShardLost is returned when shrink recovery cannot be loss-free: a dead
// rank's ring successor — the holder of its mirrored shard — died at the
// same boundary, so the victim's data has no surviving replica.
var ErrShardLost = errors.New("core: checkpoint mirror lost: a rank and its ring successor died at the same boundary")

// ckptShard is the full snapshot mirrored to the ring successor at every
// boundary: the audit descriptor plus deep copies of the state, so the
// replica stays valid after the owner's buffers are reused (or the owner is
// gone).
type ckptShard[K any] struct {
	Desc      ckptDesc
	Sorted    []K
	Splitters []K
	Cuts      []int
}

// Checkpoint is one rank's snapshot store: the last completed superstep's
// state, its checksum, and the ring-mirror replicas.  The zero value is
// ready; a nil pointer (fault-free run) makes Boundary a no-op.
type Checkpoint[K any] struct {
	step      int
	sorted    []K
	splitters []K
	cuts      []int
	sum       uint64

	// sent is the deep copy of this rank's latest snapshot as mirrored to
	// the ring successor — retained because it doubles as the local image
	// of the remote replica when the primary snapshot fails its checksum.
	sent      ckptShard[K]
	sentValid bool

	// mirror is the ring predecessor's latest mirrored snapshot, adopted by
	// the shrink recovery when the predecessor dies.
	mirror      ckptShard[K]
	mirrorFrom  int // predecessor's communicator rank at mirror time
	mirrorWorld int // predecessor's world rank at mirror time
	mirrorValid bool

	// Durable mode (a shared store is configured and the key embedding is
	// lossless): shards persist as primary + replica store runs, the ring
	// message carries only the descriptor, and restore/adoption read the
	// store back instead of resident deep copies.
	durable bool
	st      store.Store
	ops     keys.Ops[K] // retained for decode in adopt (ShrinkRecover has no ops)
	world   int         // this rank's world rank (shard run naming)
	elems   int64       // snapshot sorted-element count
}

// ckptDesc is the audit descriptor carried with every mirrored snapshot:
// enough for a neighbour to verify superstep agreement.
type ckptDesc struct {
	Step  int32
	Elems int64
	Sum   uint64
}

// Boundary runs the checkpoint protocol at superstep boundary `step` for
// the state (*sorted, *splitters, *cuts); nil slice pointers mean the state
// does not exist yet at this boundary.  In fault-free worlds it does
// nothing.  Under fault injection it (1) snapshots + checksums the state
// and prices the checkpoint write, (2) mirrors the snapshot to the next
// ring neighbour and audits the predecessor's, (3) applies a scheduled
// permanent death — the rank mirrors first, then leaves for good —,
// (4) applies a scheduled stall, and (5) applies a scheduled crash: wipes
// the live state, pays respawn + restore, re-installs the snapshot
// (falling back to the ring mirror on checksum failure) and only then
// errors with ErrCheckpointCorrupt.
func (ck *Checkpoint[K]) Boundary(c *comm.Comm, ops keys.Ops[K], cfg Config, step int, sorted, splitters *[]K, cuts *[]int) error {
	return ck.boundary(c, ops, cfg, step, sorted, nil, nil, splitters, cuts)
}

// boundary is the protocol shared by the resident path (sorted points at the
// live slice, part is nil) and the external-memory path (sorted is nil, part
// is the live disk-resident partition and plan carries its store).  With a
// shared store and a lossless key embedding the checkpoint turns durable:
// shards persist as primary + replica store runs and the ring carries only
// descriptors; the collective pattern, payload pricing, and fault handling
// are otherwise identical.
func (ck *Checkpoint[K]) boundary(c *comm.Comm, ops keys.Ops[K], cfg Config, step int, sorted *[]K, part *extPartition[K], plan *spillPlan[K], splitters *[]K, cuts *[]int) error {
	if ck == nil {
		return nil
	}
	inj := c.FaultInjector()
	if inj == nil {
		return nil
	}
	rec := cfg.Recorder
	model := c.Model()
	p := c.Size()

	// Durable shard storage: the spill plan's store on the external path,
	// the configured shared store on the resident path (when present).
	var durableSt store.Store
	if part != nil {
		durableSt = plan.st
	} else if keys.Lossless(ops) {
		durableSt = cfg.durableStore()
	}
	durable := durableSt != nil

	// (1) Snapshot into the checkpoint store and checksum it.  The write
	// is priced at the scaled volume, like the data it protects.  On the
	// external path the sorted partition is already a sealed run; the
	// checksum streams its images (auditing the run's own integrity on the
	// way) instead of copying it resident.
	ck.step = step
	ck.splitters = snapshot(ck.splitters, splitters)
	ck.cuts = snapshot(ck.cuts, cuts)
	if part != nil {
		ck.sorted = ck.sorted[:0]
		ck.elems = part.count
		sum, err := foldRunChecksum(durableSt, part.name, step, imagesOf(ops, ck.splitters), ck.cuts)
		if err != nil {
			return fmt.Errorf("%w: rank %d at step %d: partition run %q failed its audit at checkpoint time: %v", ErrCheckpointCorrupt, c.Rank(), step, part.name, err)
		}
		ck.sum = sum
	} else {
		ck.sorted = snapshot(ck.sorted, sorted)
		ck.elems = int64(len(ck.sorted))
		ck.sum = ck.checksum(ops)
	}
	velems := int(float64(ck.elems) * cfg.scale())
	vbytes := int64(float64(ck.bytes(ops)) * cfg.scale())
	if model != nil {
		c.Clock().Advance(model.ScanCost(velems) + model.CheckpointCost(int(vbytes)))
	}
	rec.AddCheckpoint(vbytes)

	if durable {
		ck.durable, ck.st, ck.ops, ck.world = true, durableSt, ops, c.WorldRank()
		if err := ck.writeDurableShards(ops, part); err != nil {
			return err
		}
	} else {
		ck.durable = false
	}

	// (2) Snapshot-mirror ring: ship a deep copy of the snapshot to the
	// next neighbour and hold the predecessor's, auditing superstep
	// agreement on the way.  Divergence means the checkpoint schedule
	// itself broke — abort loudly rather than sort wrong data.  The
	// message is priced at the snapshot's scaled volume (the struct's
	// nominal wire size is inflated to vbytes), durable or not: durable
	// mode ships only the descriptor, but the checkpoint traffic it models
	// is the same shard.
	if p > 1 {
		tag := c.FaultControlTag()
		next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
		shard := ckptShard[K]{
			Desc: ckptDesc{Step: int32(step), Elems: ck.elems, Sum: ck.sum},
		}
		if !durable {
			shard.Sorted = append([]K(nil), ck.sorted...)
			shard.Splitters = append([]K(nil), ck.splitters...)
			shard.Cuts = append([]int(nil), ck.cuts...)
		}
		scale := shardByteScale[K](vbytes)
		comm.SendProtocol(c, next, tag, []ckptShard[K]{shard}, scale)
		ck.sent, ck.sentValid = shard, !durable
		got := comm.RecvProtocol[ckptShard[K]](c, prev, tag)
		if len(got) != 1 || int(got[0].Desc.Step) != step {
			panic(fmt.Sprintf("core: checkpoint divergence at rank %d: boundary %d but predecessor %d mirrored %+v", c.Rank(), step, prev, got))
		}
		ck.mirror, ck.mirrorFrom, ck.mirrorWorld, ck.mirrorValid = got[0], prev, c.WorldRankOf(prev), true
	}

	// (3) Scheduled permanent deaths, detected synchronously.  The death
	// schedule is static, so the boundary doubles as a perfect failure
	// detector: a victim has mirrored everything it owes the survivors and
	// leaves for good (Die never returns); every survivor raises an
	// identical typed failure at an identical virtual time, rather than
	// discovering the absence asynchronously mid-collective — the lynchpin
	// of bit-reproducible recovery, since the unwind point (and hence every
	// clock) is then a function of virtual state only.  Deaths preempt any
	// stall or crash scheduled at the same boundary: the epoch is being
	// abandoned, and those faults re-fire at the redo epoch's boundaries.
	if inj.Deaths() {
		firstVictim := -1
		for r := 0; r < p; r++ {
			if !inj.DieAt(c.WorldRankOf(r), step) {
				continue
			}
			if r == c.Rank() {
				rec.AddDeath()
				rec.AddFaultSpan("inject", fmt.Sprintf("permanent death at step %d", step), 0)
				c.Die()
			}
			if firstVictim < 0 {
				firstVictim = r
			}
		}
		if firstVictim >= 0 {
			rec.AddFaultSpan("detect", fmt.Sprintf("rank %d dead at step %d boundary", firstVictim, step), 0)
			return c.DeadRankFailure(c.WorldRankOf(firstVictim), step,
				fmt.Sprintf("scheduled death of rank %d detected at the step-%d boundary", firstVictim, step))
		}
	}

	// (4) Scheduled stall: the rank freezes for the scheduled time.  Its
	// neighbours keep running; they only feel it through later arrivals.
	if d := inj.StallAt(c.WorldRank(), step); d > 0 {
		c.Clock().Advance(d)
		rec.AddStall(d)
		rec.AddFaultSpan("inject", fmt.Sprintf("stall %v at step %d", d, step), d)
	}

	// (5) Scheduled crash: live state dies with the rank; the respawned
	// process restores the snapshot and re-enters this superstep.
	if inj.CrashAt(c.WorldRank(), step) {
		rec.AddFaultSpan("inject", fmt.Sprintf("crash at step %d", step), 0)
		wipe(sorted)
		wipe(splitters)
		wipe(cuts)
		if part != nil {
			// The partition run survives on the store, but the crashed
			// process's cache and open handles do not.
			part.dropCache()
		}
		start := c.Clock().Now()
		if model != nil {
			c.Clock().Advance(model.RespawnCost() + model.RestoreCost(int(vbytes)) + model.ScanCost(velems))
		}
		var err error
		if ck.durable {
			err = ck.restoreDurable(c, ops, cfg, sorted, part, splitters, cuts)
		} else {
			err = ck.restoreFromStableStorage(c, ops, cfg, sorted, splitters, cuts)
		}
		if err != nil {
			return err
		}
		d := c.Clock().Now() - start
		rec.AddRecovery(d)
		rec.AddFaultSpan("recover", fmt.Sprintf("restored step %d (%d elems)", step, ck.elems), d)
	}
	return nil
}

// restoreFromStableStorage re-installs the snapshot into the live state and
// audits its checksum.  A corrupt primary falls back to the ring mirror:
// the successor holds a bit-identical replica of this rank's snapshot, so
// the restore is re-run from the retained send image, priced as the remote
// fetch it models.  Only when that replica fails the audit too does the
// restore give up, with ErrCheckpointCorrupt.
func (ck *Checkpoint[K]) restoreFromStableStorage(c *comm.Comm, ops keys.Ops[K], cfg Config, sorted, splitters *[]K, cuts *[]int) error {
	restore(sorted, ck.sorted)
	restore(splitters, ck.splitters)
	restore(cuts, ck.cuts)
	if ck.checksum(ops) == ck.sum {
		return nil
	}
	rec := cfg.Recorder
	rec.AddFaultSpan("detect", fmt.Sprintf("checkpoint checksum mismatch at step %d", ck.step), 0)
	if ck.sentValid && shardChecksum(ops, ck.sent) == ck.sum {
		// The replica at the ring successor is intact: fetch it back.
		// Its content is by construction the retained send image, so the
		// simulator restores from that and prices the fetch.
		if m := c.Model(); m != nil {
			vbytes := int(float64(shardBytes(ops, ck.sent)) * cfg.scale())
			c.Clock().Advance(m.RestoreCost(vbytes))
		}
		ck.sorted = append(ck.sorted[:0], ck.sent.Sorted...)
		ck.splitters = append(ck.splitters[:0], ck.sent.Splitters...)
		ck.cuts = append(ck.cuts[:0], ck.sent.Cuts...)
		restore(sorted, ck.sorted)
		restore(splitters, ck.splitters)
		restore(cuts, ck.cuts)
		rec.AddFaultSpan("recover", fmt.Sprintf("restored step %d from the ring mirror", ck.step), 0)
		return nil
	}
	return fmt.Errorf("%w: rank %d at step %d (primary and ring mirror both failed the audit)", ErrCheckpointCorrupt, c.Rank(), ck.step)
}

// adoptable reports whether this rank holds an intact mirror of commRank's
// snapshot on the failed communicator (the predecessor at mirror time).
func (ck *Checkpoint[K]) adoptable(commRank int) bool {
	return ck != nil && ck.mirrorValid && ck.mirrorFrom == commRank
}

// shardByteScale inflates a one-element ckptShard message to the snapshot's
// scaled byte volume (the struct's nominal wire size is just slice
// headers plus the descriptor).
func shardByteScale[K any](vbytes int64) float64 {
	structBytes := int64(reflect.TypeOf(ckptShard[K]{}).Size())
	if structBytes <= 0 || vbytes <= 0 {
		return 1
	}
	s := float64(vbytes) / float64(structBytes)
	if s < 1 {
		return 1
	}
	return s
}

// snapshot copies *src into dst's storage (reused across boundaries).
func snapshot[T any](dst []T, src *[]T) []T {
	if src == nil {
		return dst[:0]
	}
	return append(dst[:0], *src...)
}

// wipe models the loss of a crashed rank's volatile memory.
func wipe[T any](s *[]T) {
	if s != nil {
		*s = nil
	}
}

// restore re-installs a snapshot into the live state.
func restore[T any](dst *[]T, src []T) {
	if dst != nil {
		*dst = append([]T(nil), src...)
	}
}

// bytes is the snapshot's stored volume: the key images plus the cut
// offsets.  ck.elems covers both backings (resident slice or sealed run).
func (ck *Checkpoint[K]) bytes(ops keys.Ops[K]) int {
	return (int(ck.elems)+len(ck.splitters))*ops.Bytes() + len(ck.cuts)*8
}

// shardBytes is bytes for a mirrored shard.
func shardBytes[K any](ops keys.Ops[K], s ckptShard[K]) int {
	return (len(s.Sorted)+len(s.Splitters))*ops.Bytes() + len(s.Cuts)*8
}

// checksum folds the snapshot's key images and cuts through FNV-1a; the
// 128-bit embedding gives every key type a stable fixed-width image.
func (ck *Checkpoint[K]) checksum(ops keys.Ops[K]) uint64 {
	return foldChecksum(ops, ck.step, ck.sorted, ck.splitters, ck.cuts)
}

// shardChecksum is checksum over a mirrored shard.
func shardChecksum[K any](ops keys.Ops[K], s ckptShard[K]) uint64 {
	return foldChecksum(ops, int(s.Desc.Step), s.Sorted, s.Splitters, s.Cuts)
}

func foldChecksum[K any](ops keys.Ops[K], step int, sorted, splitters []K, cuts []int) uint64 {
	f := newFold()
	f.header(step, int64(len(sorted)), len(splitters), len(cuts))
	for _, k := range sorted {
		f.image(ops.ToBits(k))
	}
	f.trailer(imagesOf(ops, splitters), cuts)
	return f.h
}
