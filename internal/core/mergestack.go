package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/psort"
)

// runStack buffers sorted runs on a size-balanced stack for the fused
// exchange+merge paths: two runs are merged whenever the top is at least
// half the size of the one below, so every element is merged O(log P) times
// in total, yet merging still happens between communication rounds and
// overlaps in-flight transfers.  Merge time is charged to the Merge phase
// and advances the virtual clock, which is what models the overlap: a chunk
// whose arrival precedes the clock costs no wait.  The merges themselves
// run on the configured intra-rank thread budget via the psort co-rank
// pairwise merge.
type runStack[K any] struct {
	c       *comm.Comm
	ops     keys.Ops[K]
	cfg     Config
	threads int
	stack   [][]K
}

func newRunStack[K any](c *comm.Comm, ops keys.Ops[K], cfg Config) *runStack[K] {
	return &runStack[K]{c: c, ops: ops, cfg: cfg, threads: cfg.threads()}
}

// push adds one sorted run and collapses the stack while it is unbalanced.
// The run must stay valid until finish (it is not copied).
func (s *runStack[K]) push(run []K) {
	if len(run) == 0 {
		return
	}
	model := s.c.Model()
	scale := s.cfg.scale()
	s.stack = append(s.stack, run)
	for len(s.stack) >= 2 && len(s.stack[len(s.stack)-1])*2 >= len(s.stack[len(s.stack)-2]) {
		a, b := s.stack[len(s.stack)-2], s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-2]
		s.cfg.Recorder.Enter(metrics.Merge)
		merged := make([]K, len(a)+len(b))
		psort.ParallelMerge(merged, a, b, s.ops.Less, s.threads)
		if model != nil {
			s.c.Clock().Advance(model.Threaded(model.MergeCost(int(float64(len(merged))*scale), 2), s.threads))
		}
		s.cfg.Recorder.Enter(metrics.Exchange)
		s.stack = append(s.stack, merged)
	}
}

// finish merges the remaining runs through the parallel binary merge tree
// and returns the fully merged result.
func (s *runStack[K]) finish() []K {
	s.cfg.Recorder.Enter(metrics.Merge)
	acc := psort.MergeK(psort.BinaryTreeMerge, s.stack, s.ops.Less, s.threads)
	if model := s.c.Model(); model != nil && len(s.stack) > 1 {
		s.c.Clock().Advance(model.Threaded(model.MergeCost(int(float64(len(acc))*s.cfg.scale()), len(s.stack)), s.threads))
	}
	s.stack = nil
	return acc
}
