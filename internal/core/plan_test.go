package core

import (
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/workload"
)

func TestMakePlanMatchesSort(t *testing.T) {
	// Applying the plan manually must reproduce Sort's partitioning.
	p, perRank := 7, 400
	w, _ := comm.NewWorld(p, nil)
	outs := make([][]uint64, p)
	var mu sync.Mutex
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Zipf, Seed: 91, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		plan, err := MakePlan(c, local, u64, Config{})
		if err != nil {
			return err
		}
		if plan.Iterations <= 0 {
			t.Errorf("rank %d: no iterations recorded", c.Rank())
		}
		if len(plan.Cuts) != p+1 || plan.Cuts[0] != 0 || plan.Cuts[p] != len(local) {
			t.Errorf("rank %d: malformed cuts %v", c.Rank(), plan.Cuts)
		}
		// Perm must be a valid permutation producing Sorted.
		seen := make([]bool, len(local))
		for i, j := range plan.Perm {
			if seen[j] {
				t.Errorf("rank %d: perm reuses index %d", c.Rank(), j)
			}
			seen[j] = true
			if plan.Sorted[i] != local[j] {
				t.Errorf("rank %d: Sorted[%d] != local[Perm[%d]]", c.Rank(), i, i)
			}
		}
		// Execute the plan with a plain alltoallv.
		recv, _ := comm.Alltoallv(c, plan.Sorted, plan.SendCounts, 1)
		mu.Lock()
		outs[c.Rank()] = recv
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Perfect partitioning: every rank receives exactly perRank keys, and
	// ranges are ordered across ranks.
	var prevMax uint64
	for r, out := range outs {
		if len(out) != perRank {
			t.Fatalf("rank %d received %d keys", r, len(out))
		}
		var mn, mx uint64 = ^uint64(0), 0
		for _, v := range out {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if r > 0 && mn < prevMax {
			t.Fatalf("rank %d range overlaps predecessor: %d < %d", r, mn, prevMax)
		}
		prevMax = mx
	}
}

func TestPlanDestination(t *testing.T) {
	pl := Plan[uint64]{Cuts: []int{0, 3, 3, 7, 10}}
	want := []int{0, 0, 0, 2, 2, 2, 2, 3, 3, 3}
	for i, d := range want {
		if got := pl.Destination(i); got != d {
			t.Errorf("Destination(%d) = %d, want %d", i, got, d)
		}
	}
}

func TestMakePlanInvalidConfig(t *testing.T) {
	w, _ := comm.NewWorld(1, nil)
	err := w.Run(func(c *comm.Comm) error {
		_, err := MakePlan(c, []uint64{1}, u64, Config{Epsilon: -2})
		if err == nil {
			t.Error("expected config error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
