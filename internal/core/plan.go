package core

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/sortutil"
)

// Plan is the partitioning decision of a distributed sort, computed without
// moving any data: applications that manage their own payloads (e.g. large
// particles, matrix blocks) can compute a plan over keys alone and relocate
// the heavy objects themselves.
type Plan[K any] struct {
	// Splitters are the P-1 global splitter values (identical on every
	// rank); destination d owns keys in [Splitters[d-1], Splitters[d]).
	Splitters []K
	// Cuts partition this rank's locally sorted keys: the segment
	// [Cuts[d], Cuts[d+1]) goes to rank d.  len(Cuts) == P+1.
	Cuts []int
	// SendCounts[d] == Cuts[d+1]-Cuts[d], the ALLTOALLV send counts.
	SendCounts []int
	// Sorted is this rank's keys in local sort order — the order Cuts
	// refers to.
	Sorted []K
	// Perm maps positions of Sorted back to positions in the original
	// local slice, so satellite data can follow: Sorted[i] came from
	// local[Perm[i]].
	Perm []int
	// Iterations is the number of histogramming iterations used.
	Iterations int
}

// MakePlan computes the splitter determination and boundary refinement of a
// distributed sort (supersteps 1-2 plus the permutation matrix of §V-B) and
// returns the exchange plan, leaving all data in place.  Collective.
func MakePlan[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) (Plan[K], error) {
	if err := cfg.validate(); err != nil {
		return Plan[K]{}, err
	}
	p := c.Size()
	model := c.Model()

	// Indirect local sort so the caller can relocate satellite data.
	perm := make([]int, len(local))
	for i := range perm {
		perm[i] = i
	}
	sortutil.Sort(perm, func(a, b int) bool { return ops.Less(local[a], local[b]) })
	sorted := make([]K, len(local))
	for i, j := range perm {
		sorted[i] = local[j]
	}
	if model != nil {
		c.Clock().Advance(model.SortCost(int(float64(len(local)) * cfg.scale())))
	}

	capacities := comm.AllgatherOne(c, int64(len(local)))
	targets := make([]int64, p-1)
	var totalN, acc int64
	for _, n := range capacities {
		totalN += n
	}
	for i := 0; i < p-1; i++ {
		acc += capacities[i]
		targets[i] = acc
	}
	tol := int64(cfg.Epsilon * float64(totalN) / (2 * float64(p)))

	splitters, iters := FindSplitters(c, sorted, ops, targets, tol, cfg)
	cuts := ComputeCuts(c, sorted, ops, splitters, targets, cfg)
	counts := make([]int, p)
	for d := 0; d < p; d++ {
		counts[d] = cuts[d+1] - cuts[d]
	}
	return Plan[K]{
		Splitters:  splitters,
		Cuts:       cuts,
		SendCounts: counts,
		Sorted:     sorted,
		Perm:       perm,
		Iterations: iters,
	}, nil
}

// Destination returns the rank that position i of Sorted is assigned to.
func (pl Plan[K]) Destination(i int) int {
	return sortutil.UpperBound(pl.Cuts[1:len(pl.Cuts)-1], i, func(a, b int) bool { return a < b })
}

// ExecutePlan relocates a satellite slice according to a plan computed by
// MakePlan on the same communicator: values[i] must correspond to the
// original local[i].  The returned slice holds the values assigned to this
// rank in *arrival order* — grouped by source rank ascending, each group in
// that source's key order.  Multiple satellite arrays exchanged with the
// same plan and config share this order, and applying ExecutePlan to the
// original keys yields the matching key sequence (merge locally for a fully
// sorted partition).  Collective.
func ExecutePlan[K, V any](c *comm.Comm, pl Plan[K], values []V, cfg Config) ([]V, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(values) != len(pl.Perm) {
		return nil, fmt.Errorf("core: plan covers %d elements, got %d values", len(pl.Perm), len(values))
	}
	// Rearrange into local key order, then ship segments to their owners.
	arranged := make([]V, len(values))
	for i, j := range pl.Perm {
		arranged[i] = values[j]
	}
	if m := c.Model(); m != nil {
		c.Clock().Advance(m.ScanCost(int(float64(len(values)) * cfg.scale())))
	}
	out, _ := comm.AlltoallvWith(c, arranged, pl.SendCounts, cfg.Exchange, cfg.scale())
	return out, nil
}
