package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
)

// FindSplittersViaSelection determines the same splitter values as
// FindSplitters by running the distributed selection of Algorithm 1 once
// per target — the direct "k-way selection" framing of §II before the
// paper's histogramming optimization.
//
// The splitter for target T is the element of global rank T-1: its
// histogram bounds satisfy L < T <= U by construction.  Each selection
// costs O(log P) collective rounds, so the whole determination is
// O(P log P) rounds versus histogramming's O(key width) — the trade-off
// the ablation benchmark quantifies.  It exists as a correctness oracle
// and baseline; Sort always uses FindSplitters.
func FindSplittersViaSelection[K any](c *comm.Comm, local []K, ops keys.Ops[K], targets []int64, cfg Config) ([]K, error) {
	out := make([]K, len(targets))
	totalN := comm.AllreduceOne(c, int64(len(local)), func(a, b int64) int64 { return a + b })
	for i, T := range targets {
		k := T - 1
		if k < 0 {
			k = 0
		}
		if k >= totalN {
			k = totalN - 1
		}
		if totalN == 0 {
			continue
		}
		v, err := DSelect(c, local, k, ops, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
