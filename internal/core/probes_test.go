package core

import (
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
	"dhsort/internal/xmath"
)

// refineSetup runs the splitter phase once under cfg and returns the
// splitter values, the iteration count, and whether every target satisfied
// Definition 4 (L < T <= U globally, tol = 0).
func refineSetup(t *testing.T, p, perRank int, spec workload.Spec, cfg Config) ([]uint64, int, bool) {
	t.Helper()
	w, _ := comm.NewWorld(p, nil)
	var mu sync.Mutex
	var splitters []uint64
	iters := -1
	hit := true
	ops := keys.Uint64{}
	err := w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		sortutil.Sort(local, ops.Less)
		targets := make([]int64, p-1)
		for i := range targets {
			targets[i] = int64((i + 1) * perRank)
		}
		sp, n := FindSplitters(c, local, ops, targets, 0, cfg)
		hist := make([]int64, 0, 2*len(sp))
		for _, s := range sp {
			hist = append(hist,
				int64(sortutil.LowerBound(local, s, ops.Less)),
				int64(sortutil.UpperBound(local, s, ops.Less)))
		}
		global := comm.Allreduce(c, hist, func(a, b int64) int64 { return a + b })
		mu.Lock()
		defer mu.Unlock()
		if iters == -1 {
			splitters, iters = sp, n
		}
		for i, T := range targets {
			if L, U := global[2*i], global[2*i+1]; !(L < T && T <= U) {
				hit = false
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return splitters, iters, hit
}

func TestSortCorrectAcrossProbeCounts(t *testing.T) {
	// End-to-end: every probe count must produce the identical perfect
	// partition the bisection produces.
	for _, probes := range []int{0, 2, 4, 8, 16, 64} {
		spec := workload.Spec{Dist: workload.Zipf, Seed: 77, Span: 1e9}
		p, perRank := 7, 300
		w, _ := comm.NewWorld(p, nil)
		err := w.Run(func(c *comm.Comm) error {
			local, err := spec.Rank(c.Rank(), perRank)
			if err != nil {
				return err
			}
			out, err := Sort(c, local, keys.Uint64{}, Config{Probes: probes})
			if err != nil {
				return err
			}
			if len(out) != perRank {
				t.Errorf("probes=%d: rank %d holds %d elements, want %d", probes, c.Rank(), len(out), perRank)
			}
			if !IsGloballySorted(c, out, keys.Uint64{}) {
				t.Errorf("probes=%d: output not globally sorted", probes)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("probes=%d: %v", probes, err)
		}
	}
}

func TestWarmStartConvergesInFewRounds(t *testing.T) {
	// Cold run captures its converged splitters through the sink; a repeat
	// of the same distribution seeded with tight intervals around them must
	// converge in a handful of rounds and still satisfy Definition 4.
	spec := workload.Spec{Dist: workload.Uniform, Seed: 91, Span: 0} // full range
	p, perRank := 8, 512

	var mu sync.Mutex
	var coldBits []xmath.U128
	sink := func(bits []xmath.U128, iters int) {
		mu.Lock()
		if coldBits == nil {
			coldBits = append([]xmath.U128(nil), bits...)
		}
		mu.Unlock()
	}
	_, coldIters, coldHit := refineSetup(t, p, perRank, spec, Config{SplitterSink: sink})
	if !coldHit {
		t.Fatal("cold run missed Definition 4")
	}
	if coldBits == nil {
		t.Fatal("SplitterSink was never called")
	}

	warm := make([]WarmInterval, len(coldBits))
	slack := xmath.U128FromParts(1<<16, 0) // ±2^16 in key space
	for i, b := range coldBits {
		warm[i] = WarmInterval{Lo: b.Sub(slack), Hi: b.Add(slack)}
	}
	_, warmIters, warmHit := refineSetup(t, p, perRank, spec, Config{Warm: warm})
	if !warmHit {
		t.Error("warm run missed Definition 4")
	}
	if warmIters >= coldIters {
		t.Errorf("warm run took %d rounds, cold %d — no savings", warmIters, coldIters)
	}
	if warmIters > 8 {
		t.Errorf("warm run took %d rounds, want a handful", warmIters)
	}
}

func TestWarmStartStaleIntervalsStayCorrect(t *testing.T) {
	// Adversarial drift: warm intervals pointing at entirely the wrong
	// region must degrade gracefully to the cold path — the result still
	// satisfies Definition 4, correctness is never traded for speed.
	spec := workload.Spec{Dist: workload.Uniform, Seed: 13, Span: 1e9}
	p := 8
	stale := make([]WarmInterval, p-1)
	for i := range stale {
		// Far above the [0, 1e9] span: every interval collapses.
		lo := xmath.U128FromParts(uint64(i+1)<<40, 0)
		stale[i] = WarmInterval{Lo: lo, Hi: lo.Add(xmath.U128FromParts(4, 0))}
	}
	_, _, hit := refineSetup(t, p, 400, spec, Config{Warm: stale})
	if !hit {
		t.Error("stale warm intervals broke Definition 4")
	}

	// Inverted and empty intervals are ignored outright.
	broken := make([]WarmInterval, p-1)
	for i := range broken {
		broken[i] = WarmInterval{Lo: xmath.U128FromParts(9, 0), Hi: xmath.U128FromParts(3, 0)}
	}
	_, _, hit = refineSetup(t, p, 400, spec, Config{Warm: broken, Probes: 4})
	if !hit {
		t.Error("inverted warm intervals broke Definition 4")
	}
}

func TestWarmIgnoredOnLengthMismatch(t *testing.T) {
	// A warm vector from a differently-sized world (e.g. a shrink-recovery
	// rerun) must be ignored, not misapplied: same rounds as a cold run.
	spec := workload.Spec{Dist: workload.Uniform, Seed: 29, Span: 1e9}
	p := 8
	_, cold, _ := refineSetup(t, p, 300, spec, Config{})
	mismatched := make([]WarmInterval, p) // p, not p-1
	for i := range mismatched {
		mismatched[i] = WarmInterval{Lo: xmath.U128FromParts(1, 0), Hi: xmath.U128FromParts(2, 0)}
	}
	_, got, hit := refineSetup(t, p, 300, spec, Config{Warm: mismatched})
	if got != cold {
		t.Errorf("mismatched warm vector changed rounds: %d vs cold %d", got, cold)
	}
	if !hit {
		t.Error("mismatched warm vector broke Definition 4")
	}
}

func TestPlaceProbes(t *testing.T) {
	lo := xmath.U128From64(100)
	hi := xmath.U128From64(1000)

	// k = 1: the bisection midpoint.
	got := placeProbes(lo, hi, 1, nil)
	if len(got) != 1 || got[0] != lo.Avg(hi) {
		t.Errorf("k=1: %v", got)
	}

	// General case: k evenly spaced interior points, ascending, within
	// [lo, hi).
	got = placeProbes(lo, hi, 8, nil)
	if len(got) != 8 {
		t.Fatalf("k=8: %d probes", len(got))
	}
	for i, b := range got {
		if b.Less(lo) || !b.Less(hi) {
			t.Errorf("probe %d = %v outside [%v, %v)", i, b, lo, hi)
		}
		if i > 0 && !got[i-1].Less(b) {
			t.Errorf("probes not ascending at %d", i)
		}
	}

	// Narrow interval: every candidate in [lo, hi).
	got = placeProbes(xmath.U128From64(5), xmath.U128From64(8), 8, nil)
	want := []xmath.U128{xmath.U128From64(5), xmath.U128From64(6), xmath.U128From64(7)}
	if len(got) != len(want) {
		t.Fatalf("narrow: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("narrow: %v", got)
		}
	}

	// Collapsed interval: the single point.
	got = placeProbes(lo, lo, 8, nil)
	if len(got) != 1 || got[0] != lo {
		t.Errorf("collapsed: %v", got)
	}

	// Full-range interval: no overflow, still ascending and interior.
	got = placeProbes(xmath.U128{}, xmath.MaxU128, 16, nil)
	if len(got) != 16 {
		t.Fatalf("full range: %d probes", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Errorf("full range: probes not ascending at %d", i)
		}
	}
}

func TestRefinementLoopAllocationFree(t *testing.T) {
	// The per-round helpers must not allocate when given capacity...
	dst := make([]xmath.U128, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		dst = placeProbes(xmath.U128{}, xmath.MaxU128, 16, dst[:0])
	})
	if allocs != 0 {
		t.Errorf("placeProbes allocates %.1f times per call", allocs)
	}

	// ...and the whole refinement must allocate a small constant
	// independent of the round count: on a single-rank world with
	// full-range keys (~60 bisection rounds), the pre-reuse loop allocated
	// 2+ slices per round.  The bound here is far below that.
	w, _ := comm.NewWorld(1, nil)
	err := w.Run(func(c *comm.Comm) error {
		local := make([]uint64, 4096)
		for i := range local {
			x := uint64(i+1) * 0x9e3779b97f4a7c15
			x ^= x >> 33
			local[i] = x * 0xff51afd7ed558ccd
		}
		sortutil.Sort(local, keys.Uint64{}.Less)
		targets := []int64{1024, 2048, 3072}
		var iters int
		allocs := testing.AllocsPerRun(10, func() {
			_, iters = FindSplitters(c, local, keys.Uint64{}, targets, 0, Config{Threads: 1})
		})
		if iters < 20 {
			t.Fatalf("expected a long refinement, got %d rounds", iters)
		}
		if allocs > 30 {
			t.Errorf("FindSplitters allocates %.0f times across %d rounds — the loop is not allocation-free", allocs, iters)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
