package core

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"dhsort/internal/comm"
	"dhsort/internal/prng"
)

// TestSortPropertyRandomConfigs drives the full pipeline with randomized
// rank counts, skewed per-rank sizes (including empty ranks), duplicate
// densities and configuration knobs, checking the complete contract
// against a sequential oracle every time.
func TestSortPropertyRandomConfigs(t *testing.T) {
	f := func(seed uint64, pRaw, spanRaw uint8, mergeRaw, exchRaw uint8, eps bool) bool {
		p := int(pRaw%12) + 1
		span := uint64(spanRaw)%1000 + 1 // small spans force heavy duplication
		cfg := Config{
			Merge:    MergeStrategy(int(mergeRaw) % 4),
			Exchange: comm.AlltoallAlgorithm(int(exchRaw) % 4),
		}
		if eps {
			cfg.Epsilon = 0.25
		}
		src := prng.NewSplitMix64(seed)
		locals := make([][]uint64, p)
		var all []uint64
		for r := 0; r < p; r++ {
			n := int(prng.Uint64n(src, 200)) // uneven, possibly zero
			locals[r] = make([]uint64, n)
			for i := range locals[r] {
				locals[r][i] = prng.Uint64n(src, span)
			}
			all = append(all, locals[r]...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

		outs := make([][]uint64, p)
		var mu sync.Mutex
		w, err := comm.NewWorld(p, nil)
		if err != nil {
			return false
		}
		err = w.Run(func(c *comm.Comm) error {
			out, err := Sort(c, locals[c.Rank()], u64, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			outs[c.Rank()] = out
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Logf("seed=%d p=%d: %v", seed, p, err)
			return false
		}
		// Oracle comparison: concatenation equals the sorted input.
		var got []uint64
		for r, out := range outs {
			if cfg.Epsilon == 0 && len(out) != len(locals[r]) {
				t.Logf("seed=%d p=%d rank=%d: size %d != %d", seed, p, r, len(out), len(locals[r]))
				return false
			}
			got = append(got, out...)
		}
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				t.Logf("seed=%d p=%d: mismatch at %d", seed, p, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDSelectPropertyRandom cross-checks distributed selection against the
// oracle under random shapes.
func TestDSelectPropertyRandom(t *testing.T) {
	f := func(seed uint64, pRaw, kRaw uint8) bool {
		p := int(pRaw%8) + 1
		src := prng.NewSplitMix64(seed ^ 0xabcdef)
		locals := make([][]uint64, p)
		var all []uint64
		for r := 0; r < p; r++ {
			n := int(prng.Uint64n(src, 300))
			locals[r] = make([]uint64, n)
			for i := range locals[r] {
				locals[r][i] = prng.Uint64n(src, 500)
			}
			all = append(all, locals[r]...)
		}
		if len(all) == 0 {
			return true
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		k := int64(kRaw) % int64(len(all))
		want := all[k]

		ok := true
		w, _ := comm.NewWorld(p, nil)
		err := w.Run(func(c *comm.Comm) error {
			got, err := DSelect(c, locals[c.Rank()], k, u64, Config{})
			if err != nil {
				return err
			}
			if got != want {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
