package core

import (
	"sort"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// runDSelect executes DSelect for rank k over the workload and checks every
// rank receives the oracle value.
func runDSelect(t *testing.T, p, perRank int, spec workload.Spec, ks []int64) {
	t.Helper()
	// Build the oracle.
	var all []uint64
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		l, err := spec.Rank(r, perRank)
		if err != nil {
			t.Fatal(err)
		}
		locals[r] = l
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	for _, k := range ks {
		if k < 0 || k >= int64(len(all)) {
			continue
		}
		want := all[k]
		w, _ := comm.NewWorld(p, nil)
		err := w.Run(func(c *comm.Comm) error {
			got, err := DSelect(c, locals[c.Rank()], k, u64, Config{})
			if err != nil {
				return err
			}
			if got != want {
				t.Errorf("p=%d k=%d rank=%d: got %d, want %d", p, k, c.Rank(), got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDSelectBasic(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 17, Span: 1e9}
	runDSelect(t, 4, 500, spec, []int64{0, 1, 999, 1000, 1999})
}

func TestDSelectMedian(t *testing.T) {
	// The k-way selection use case of §II: find the global median.
	spec := workload.Spec{Dist: workload.Normal, Seed: 18, Span: 1e9}
	runDSelect(t, 7, 300, spec, []int64{7 * 300 / 2})
}

func TestDSelectLargeEnoughToIterate(t *testing.T) {
	// Total must exceed the sequential cutoff so the weighted-median loop
	// actually runs several rounds.
	spec := workload.Spec{Dist: workload.Zipf, Seed: 19, Span: 1e9}
	runDSelect(t, 8, 2000, spec, []int64{0, 4000, 8000, 15999})
}

func TestDSelectSparse(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 20, Span: 1e9, Sparse: 2}
	runDSelect(t, 6, 1500, spec, []int64{0, 2000, 4499})
}

func TestDSelectDuplicates(t *testing.T) {
	spec := workload.Spec{Dist: workload.DuplicateHeavy, Seed: 21, Span: 1e9}
	runDSelect(t, 5, 1000, spec, []int64{0, 2500, 4999})
}

func TestDSelectAllEqual(t *testing.T) {
	spec := workload.Spec{Dist: workload.AllEqual, Seed: 22, Span: 1e9}
	runDSelect(t, 4, 800, spec, []int64{0, 1600, 3199})
}

func TestDSelectSingleRank(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 23, Span: 1e9}
	runDSelect(t, 1, 3000, spec, []int64{0, 1500, 2999})
}

func TestDSelectOutOfRange(t *testing.T) {
	w, _ := comm.NewWorld(2, nil)
	err := w.Run(func(c *comm.Comm) error {
		_, err := DSelect(c, []uint64{1, 2}, 4, u64, Config{})
		if err == nil {
			t.Error("expected out-of-range error")
		}
		_, err = DSelect(c, []uint64{1, 2}, -1, u64, Config{})
		if err == nil {
			t.Error("expected out-of-range error for negative k")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDSelectDoesNotModifyInput(t *testing.T) {
	w, _ := comm.NewWorld(3, nil)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 9, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), 1200)
		snapshot := append([]uint64(nil), local...)
		if _, err := DSelect(c, local, 1800, u64, Config{}); err != nil {
			return err
		}
		for i := range local {
			if local[i] != snapshot[i] {
				t.Errorf("input modified at %d", i)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDSelectUnderCostModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 29, Span: 1e9}
	locals := make([][]uint64, 8)
	var all []uint64
	for r := range locals {
		locals[r], _ = spec.Rank(r, 1000)
		all = append(all, locals[r]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	w, _ := comm.NewWorld(8, model)
	err := w.Run(func(c *comm.Comm) error {
		got, err := DSelect(c, locals[c.Rank()], 4000, u64, Config{})
		if err != nil {
			return err
		}
		if got != all[4000] {
			t.Errorf("got %d, want %d", got, all[4000])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Makespan() <= 0 {
		t.Fatal("virtual time must advance")
	}
}

func TestDSelectFloatKeys(t *testing.T) {
	p := 4
	locals := make([][]float64, p)
	var all []float64
	for r := 0; r < p; r++ {
		spec := workload.Spec{Dist: workload.Normal, Seed: 31, Span: 1e9}
		raw, _ := spec.Rank(r, 900)
		locals[r] = workload.Floats(raw)
		all = append(all, locals[r]...)
	}
	sort.Float64s(all)
	w, _ := comm.NewWorld(p, nil)
	err := w.Run(func(c *comm.Comm) error {
		got, err := DSelect(c, locals[c.Rank()], 1800, keys.Float64{}, Config{})
		if err != nil {
			return err
		}
		if got != all[1800] {
			t.Errorf("got %v, want %v", got, all[1800])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
