package core

import (
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
)

// runRebalance feeds each rank its slice of parts (which must already be
// globally ordered rank-major) through RebalanceOutput and returns the
// resulting partitions plus the per-rank recorders.
func runRebalance(t *testing.T, parts [][]uint64, cfg Config, model *simnet.CostModel) ([][]uint64, []*metrics.Recorder) {
	t.Helper()
	p := len(parts)
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]uint64, p)
	recs := make([]*metrics.Recorder, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		rc := cfg
		rec := metrics.ForComm(c)
		rc.Recorder = rec
		out := RebalanceOutput(c, append([]uint64(nil), parts[c.Rank()]...), keys.Uint64{}, rc)
		mu.Lock()
		outs[c.Rank()] = out
		recs[c.Rank()] = rec
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs, recs
}

func checkOrderAndContent(t *testing.T, parts, outs [][]uint64) {
	t.Helper()
	var want, got []uint64
	for _, s := range parts {
		want = append(want, s...)
	}
	for _, s := range outs {
		got = append(got, s...)
	}
	if len(got) != len(want) {
		t.Fatalf("element count changed: %d -> %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order or content changed at global index %d: %d != %d", i, got[i], want[i])
		}
	}
}

func seq(lo, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(lo + i)
	}
	return out
}

// All elements on rank 0 must diffuse to a balanced partition, preserving
// the global order exactly, and the pass must be recorded in metrics.
func TestRebalanceAllOnOneRank(t *testing.T) {
	parts := [][]uint64{seq(0, 800), {}, {}, {}}
	outs, recs := runRebalance(t, parts, Config{}, nil)
	for r, o := range outs {
		if len(o) != 200 {
			t.Fatalf("rank %d holds %d elements, want 200", r, len(o))
		}
	}
	checkOrderAndContent(t, parts, outs)
	s := metrics.Summarize(recs)
	if s.Rebalances != 1 || s.RebalanceRounds == 0 || s.RebalanceBytes == 0 {
		t.Fatalf("rebalance not recorded: %+v", s)
	}
}

// Surplus in the middle of the line sheds both ways.
func TestRebalanceMiddleSurplus(t *testing.T) {
	parts := [][]uint64{seq(0, 10), seq(10, 10), seq(20, 580), seq(600, 0), seq(600, 0)}
	outs, recs := runRebalance(t, parts, Config{}, nil)
	for r, o := range outs {
		if len(o) != 120 {
			t.Fatalf("rank %d holds %d elements, want 120", r, len(o))
		}
	}
	checkOrderAndContent(t, parts, outs)
	if s := metrics.Summarize(recs); s.Rebalances != 1 {
		t.Fatalf("expected one recorded pass, got %+v", s)
	}
}

// A partition already within the Epsilon bound is returned untouched and
// records nothing.
func TestRebalanceWithinBoundIsNoop(t *testing.T) {
	parts := [][]uint64{seq(0, 100), seq(100, 110), seq(210, 95), seq(305, 100)}
	outs, recs := runRebalance(t, parts, Config{Epsilon: 0.5}, nil)
	for r := range parts {
		if len(outs[r]) != len(parts[r]) {
			t.Fatalf("rank %d size changed %d -> %d under the bound", r, len(parts[r]), len(outs[r]))
		}
	}
	checkOrderAndContent(t, parts, outs)
	if s := metrics.Summarize(recs); s.Rebalances != 0 || s.RebalanceBytes != 0 {
		t.Fatalf("no-op pass recorded activity: %+v", s)
	}
}

// Under a cost model the pass advances the virtual clock and the recorded
// time is positive.
func TestRebalancePricedOnVirtualClock(t *testing.T) {
	parts := [][]uint64{seq(0, 600), {}, {}}
	_, recs := runRebalance(t, parts, Config{}, simnet.SuperMUC(4, true))
	s := metrics.Summarize(recs)
	if s.RebalanceNS <= 0 {
		t.Fatalf("rebalance time not priced: %+v", s)
	}
}

// The rebalance is deterministic: two identical runs produce identical
// partitions and identical recorded volumes.
func TestRebalanceDeterministic(t *testing.T) {
	parts := [][]uint64{seq(0, 5), seq(5, 700), {}, seq(705, 20), {}, {}}
	a, ra := runRebalance(t, parts, Config{}, simnet.SuperMUC(4, true))
	b, rb := runRebalance(t, parts, Config{}, simnet.SuperMUC(4, true))
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("rank %d: non-deterministic sizes %d vs %d", r, len(a[r]), len(b[r]))
		}
	}
	sa, sb := metrics.Summarize(ra), metrics.Summarize(rb)
	if sa.RebalanceBytes != sb.RebalanceBytes || sa.RebalanceNS != sb.RebalanceNS {
		t.Fatalf("non-deterministic accounting: %+v vs %+v", sa, sb)
	}
}
