package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/fault"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// runSortFaults is runSort on a fault-injecting world; it additionally
// returns the world for counter assertions and the per-rank recorders.
func runSortFaults(t *testing.T, p int, spec workload.Spec, perRank int, cfg Config, model *simnet.CostModel, plan fault.Plan) (ins, outs [][]uint64, w *comm.World, recs []*metrics.Recorder) {
	t.Helper()
	w, err := comm.NewWorldWithFaults(p, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	recs = make([]*metrics.Recorder, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		runCfg := cfg
		runCfg.Recorder = rec
		out, err := Sort(c, local, u64, runCfg)
		if err != nil {
			return err
		}
		rec.Finish()
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		recs[c.Rank()] = rec
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins, outs, w, recs
}

// acceptancePlan is the resilience acceptance schedule: 5% drop rate plus
// two injected crashes at distinct superstep boundaries.
func acceptancePlan(p int) fault.Plan {
	return fault.Plan{
		Seed:     7,
		DropRate: 0.05,
		Crashes: []fault.Crash{
			{Rank: p / 3, Step: StepSplitting},
			{Rank: 2 * p / 3, Step: StepCuts},
		},
	}
}

// TestSortSurvivesFaultSchedule is the acceptance test of the fault plane:
// at a 5% seeded drop rate with two injected crashes, a P=16 sort must
// produce output bit-identical to the fault-free run of the same workload.
func TestSortSurvivesFaultSchedule(t *testing.T) {
	const p, perRank = 16, 2048
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}

	_, want := runSort(t, p, spec, perRank, Config{Threads: 1}, model)
	ins, got, w, recs := runSortFaults(t, p, spec, perRank, Config{Threads: 1}, model, acceptancePlan(p))
	checkSorted(t, ins, got, true, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("faulty run's output differs from the fault-free run")
	}

	f := w.TotalStats().Fault
	if f.Drops == 0 || f.Retries != f.Drops {
		t.Errorf("drop schedule did not exercise the retry path: %+v", f)
	}
	s := metrics.Summarize(recs)
	if s.Fault.Recoveries != 2 {
		t.Errorf("2 crashes scheduled, %d recoveries recorded", s.Fault.Recoveries)
	}
	if s.Fault.Checkpoints == 0 || s.Fault.CheckpointBytes == 0 {
		t.Errorf("no checkpoints recorded: %+v", s.Fault)
	}
	if s.Fault.RecoveryNS <= 0 {
		t.Errorf("recovery must cost virtual time: %+v", s.Fault)
	}
}

// TestSortFaultDeterminism pins bit-reproducibility of a failure run: same
// plan, same workload — same output, same fault counters, same makespan.
func TestSortFaultDeterminism(t *testing.T) {
	const p, perRank = 8, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Zipf, Seed: 11, Span: 1e9}
	plan := fault.Plan{Seed: 5, DropRate: 0.03, DupRate: 0.02, DelayRate: 0.05, ReorderRate: 0.02,
		Stalls: []fault.Stall{{Rank: 1, Step: StepLocalSort, D: 100 * time.Microsecond}}}

	_, out1, w1, _ := runSortFaults(t, p, spec, perRank, Config{Threads: 1}, model, plan)
	_, out2, w2, _ := runSortFaults(t, p, spec, perRank, Config{Threads: 1}, model, plan)
	if !reflect.DeepEqual(out1, out2) {
		t.Error("outputs differ between identical failure runs")
	}
	if s1, s2 := w1.TotalStats(), w2.TotalStats(); s1 != s2 {
		t.Errorf("fault counters differ:\n%+v\n%+v", s1.Fault, s2.Fault)
	}
	if w1.Makespan() != w2.Makespan() {
		t.Errorf("virtual makespan differs: %v vs %v", w1.Makespan(), w2.Makespan())
	}
}

// TestSortFaultFreeZeroOverhead pins the fast-path guarantee: a fault-free
// world runs exactly as before the fault plane existed — same output, same
// makespan, no fault counters, no checkpoints.
func TestSortFaultFreeZeroOverhead(t *testing.T) {
	const p, perRank = 8, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 2, Span: 1e9}

	_, out1, w2, recs := runSortFaults(t, p, spec, perRank, Config{Threads: 1}, model, fault.Plan{})
	_, out2 := runSort(t, p, spec, perRank, Config{Threads: 1}, model)
	if !reflect.DeepEqual(out1, out2) {
		t.Error("zero plan changed the output")
	}
	if f := w2.TotalStats().Fault; f.Any() {
		t.Errorf("zero plan produced fault counters: %+v", f)
	}
	if s := metrics.Summarize(recs); s.Fault.Any() || s.FaultEvents != 0 {
		t.Errorf("zero plan produced fault metrics: %+v", s.Fault)
	}
}

// TestExchangeBackendsUnderDelayInjection sweeps the exchange backends —
// including the hierarchical leader aggregation and its one-factor fallback
// — under delay and reorder injection, with a stall pinned on rank 0 (the
// node leader of the hierarchical exchange) at the cuts boundary.  Every
// backend must still produce the perfect partitioning.
func TestExchangeBackendsUnderDelayInjection(t *testing.T) {
	const p, perRank = 8, 512
	plan := fault.Plan{
		Seed: 9, DelayRate: 0.2, MaxDelay: 30 * time.Microsecond, ReorderRate: 0.1,
		Stalls: []fault.Stall{{Rank: 0, Step: StepCuts, D: 150 * time.Microsecond}},
	}
	spec := workload.Spec{Dist: workload.Uniform, Seed: 4, Span: 1e9}
	backends := []comm.AlltoallAlgorithm{
		comm.AlltoallPairwise, comm.AlltoallOneFactor, comm.AlltoallBruck, comm.AlltoallHierarchical,
	}
	for _, model := range []*simnet.CostModel{simnet.SuperMUC(4, true), nil} {
		for _, ex := range backends {
			cfg := Config{Threads: 1, Exchange: ex}
			ins, outs, _, _ := runSortFaults(t, p, spec, perRank, cfg, model, plan)
			checkSorted(t, ins, outs, true, 0)
		}
	}
}

// TestHierarchicalFallbackUnderDelay pins the topology edge case: without
// node topology (nil model) the hierarchical exchange silently degrades to
// the one-factor schedule; delay injection must not break the fallback, and
// the recorder must still name what actually ran.
func TestHierarchicalFallbackUnderDelay(t *testing.T) {
	const p, perRank = 8, 512
	plan := fault.Plan{Seed: 13, DelayRate: 0.3, MaxDelay: 20 * time.Microsecond}
	spec := workload.Spec{Dist: workload.Uniform, Seed: 6, Span: 1e9}
	cfg := Config{Threads: 1, Exchange: comm.AlltoallHierarchical}

	// Modelled world: real node topology, the hierarchical path proper.
	ins, outs, _, recs := runSortFaults(t, p, spec, perRank, cfg, simnet.SuperMUC(4, true), plan)
	checkSorted(t, ins, outs, true, 0)
	if alg := metrics.Summarize(recs).ExchangeAlg; alg != comm.AlltoallHierarchical.String() {
		t.Errorf("modelled world ran %q, want %q", alg, comm.AlltoallHierarchical)
	}

	// Real-time world: no topology, must fall back to one-factor.
	ins, outs, _, recs = runSortFaults(t, p, spec, perRank, cfg, nil, plan)
	checkSorted(t, ins, outs, true, 0)
	if alg := metrics.Summarize(recs).ExchangeAlg; alg != comm.AlltoallOneFactor.String() {
		t.Errorf("topology-free world ran %q, want one-factor fallback", alg)
	}
}

// TestCheckpointChecksumDetectsCorruption pins the restore audit: a snapshot
// whose checksum no longer matches must abort loudly, not sort wrong data.
func TestCheckpointChecksumDetectsCorruption(t *testing.T) {
	ck := &Checkpoint[uint64]{}
	sorted := []uint64{3, 1, 4, 1, 5}
	ck.step = StepLocalSort
	ck.sorted = append(ck.sorted[:0], sorted...)
	ck.sum = ck.checksum(u64)
	ck.sorted[2] ^= 1 // bit flip in "stable storage"
	if ck.checksum(u64) == ck.sum {
		t.Fatal("checksum did not notice a corrupted snapshot")
	}
}
