package core

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/psort"
	"dhsort/internal/sortutil"
)

// ComputeCuts turns the splitter values into per-rank cut positions such
// that destination d receives exactly its target share — the permutation
// matrix construction with boundary refinement of §V-B (Algorithm 4).
//
// Communication: two ALLTOALL rounds of O(P) elements per rank, as in the
// paper.  Round 1 sends each rank's (l_d, u_d) bounds to rank d, which is
// responsible for row d of the matrix; rank d assigns the T_d - L_d excess
// elements greedily from the u_d - l_d contingents; round 2 returns the
// refined cuts.
//
// The returned cuts have length P+1 with cuts[0] = 0 and cuts[P] = n; the
// segment [cuts[d], cuts[d+1]) of the locally sorted partition goes to
// rank d.
func ComputeCuts[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], splitters []K, targets []int64, cfg Config) []int {
	return computeCutsOn[K](c, memSource[K]{s: sorted, ops: ops}, ops, splitters, targets, cfg)
}

// computeCutsOn is ComputeCuts over a sortedSource, shared by the resident
// and external-memory paths; communication and pricing depend only on
// element counts, never on the backing.
func computeCutsOn[K any](c *comm.Comm, src sortedSource[K], ops keys.Ops[K], splitters []K, targets []int64, cfg Config) []int {
	p := c.Size()
	n := src.Len()
	model := c.Model()
	cuts := make([]int, p+1)
	cuts[p] = n
	if p == 1 {
		return cuts
	}

	// Local bounds of every splitter: l_d keys are strictly below splitter
	// d, u_d at or below it.  The P-1 searches are independent reads of
	// the sorted partition, so they fork across the thread budget.
	sendBounds := make([][]int64, p)
	sendBounds[0] = []int64{0, 0} // rank 0 has no lower boundary splitter
	workers := searchWorkers(cfg.threads(), p-1, n)
	psort.ParallelFor(p-1, workers, func(i int) {
		d := i + 1
		s := splitters[d-1]
		l := int64(src.LowerBound(s))
		u := int64(src.UpperBound(s))
		sendBounds[d] = []int64{l, u}
	})
	if model != nil {
		c.Clock().Advance(model.Threaded(model.SearchCost(n, 2*(p-1)), workers))
	}

	// Round 1: rank d collects every rank's bounds for splitter d.
	bounds := comm.Alltoall(c, sendBounds)

	// Row d of the permutation matrix: choose c_d^r in [l^r, u^r] with
	// sum_r c_d^r = G_d (Algorithm 4's refinement loop).
	replies := make([][]int64, p)
	if c.Rank() == 0 {
		for r := 0; r < p; r++ {
			replies[r] = []int64{0}
		}
	} else {
		var L, U int64
		for r := 0; r < p; r++ {
			L += bounds[r][0]
			U += bounds[r][1]
		}
		// Realized split point: the target when reachable, else the
		// closest histogram bound (only short with duplicate keys and
		// the uniqueness transformation disabled).
		G := targets[c.Rank()-1]
		if G < L {
			G = L
		}
		if G > U {
			G = U
		}
		excess := G - L // elements to fill up beyond the lower bounds
		for r := 0; r < p; r++ {
			slack := bounds[r][1] - bounds[r][0]
			take := excess
			if take > slack {
				take = slack
			}
			replies[r] = []int64{bounds[r][0] + take}
			excess -= take
		}
	}
	if model != nil {
		c.Clock().Advance(model.ScanCost(2 * p))
	}

	// Round 2: every rank learns its cut for each destination boundary.
	myCuts := comm.Alltoall(c, replies)
	for d := 1; d < p; d++ {
		cuts[d] = int(myCuts[d][0])
	}
	// Defensive clamping: monotone within [0, n].  (Exact by construction
	// with unique keys.)
	for d := 1; d <= p; d++ {
		if cuts[d] < cuts[d-1] {
			cuts[d] = cuts[d-1]
		}
		if cuts[d] > n {
			cuts[d] = n
		}
	}
	return cuts
}

// ExchangeAndMerge performs the single ALLTOALLV data exchange (§V-B) and
// the Local Merge superstep (§V-C), returning the rank's final sorted
// partition.
func ExchangeAndMerge[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], cuts []int, cfg Config) []K {
	return ExchangeAndMergeArena(c, sorted, ops, cuts, cfg, nil)
}

// ExchangeAndMergeArena is ExchangeAndMerge drawing Local Merge scratch
// from ar, the per-rank arena the Local Sort superstep already paid for
// (nil means allocate).
func ExchangeAndMergeArena[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], cuts []int, cfg Config, ar *sortutil.Arena[K]) []K {
	p := c.Size()
	model := c.Model()
	scale := cfg.scale()
	threads := cfg.threads()

	sendCounts := make([]int, p)
	var outBytes int64
	for d := 0; d < p; d++ {
		sendCounts[d] = cuts[d+1] - cuts[d]
		if d != c.Rank() {
			outBytes += int64(sendCounts[d]) * int64(ops.Bytes())
		}
	}
	cfg.Recorder.AddExchangedBytes(int64(float64(outBytes) * scale))

	// Budgeted configurations run the fused 1-factor schedule with receive
	// chunks spilled to store runs, so the exchange buffers never accumulate
	// beyond one chunk.  The caller holds sorted resident (the external
	// local-sort path issues the identical wire pattern via its own driver);
	// the schedule must be uniform across the collective, and spillActive is
	// a function of the shared Config and Ops only.
	if spillActive(cfg, ops) {
		cfg.Recorder.SetExchangeAlg("fused-1factor")
		plan := newSpillPlan(c, ops, cfg)
		seg := func(lo, hi int) []K { return sorted[lo:hi] }
		out, err := spilledExchangeMerge[K](c, seg, ops, sendCounts, cfg, plan)
		if err != nil {
			// Store failures here are host I/O faults (disk full, scratch
			// dir removed), not simulated faults the resilience layer
			// understands; surface them loudly.
			panic(fmt.Errorf("core: spilled exchange: %w", err))
		}
		return out
	}

	// The one-sided path subsumes MergeOverlap: its notify-driven merge is
	// inherently fused, so it takes precedence over the merge strategy.
	if cfg.Exchange == comm.ExchangeRMAPut {
		cfg.Recorder.SetExchangeAlg(comm.ExchangeRMAPut.String())
		return rmaPutExchangeMerge(c, sorted, ops, sendCounts, cfg)
	}
	if cfg.Merge == MergeOverlap {
		cfg.Recorder.SetExchangeAlg("fused-1factor")
		return overlapExchangeMerge(c, sorted, ops, sendCounts, cfg)
	}
	var recv []K
	var recvCounts []int
	if cfg.Exchange == comm.AlltoallHierarchical {
		rpn := 1
		if model != nil {
			rpn = model.Topo.RanksPerNode
		}
		if rpn > 1 {
			cfg.Recorder.SetExchangeAlg(comm.AlltoallHierarchical.String())
			recv, recvCounts = comm.AlltoallvHier(c, sorted, sendCounts, rpn, scale)
		} else {
			// Hierarchical aggregation needs node topology; without it the
			// exchange runs the 1-factor schedule.  Record the algorithm
			// that actually ran, not the requested one, so the metrics
			// document never claims an aggregation that did not happen.
			cfg.Recorder.SetExchangeAlg(comm.AlltoallOneFactor.String())
			recv, recvCounts = comm.AlltoallvWith(c, sorted, sendCounts, comm.AlltoallOneFactor, scale)
		}
	} else {
		cfg.Recorder.SetExchangeAlg(cfg.Exchange.String())
		recv, recvCounts = comm.AlltoallvWith(c, sorted, sendCounts, cfg.Exchange, scale)
	}

	cfg.Recorder.Enter(metrics.Merge)
	runs := make([][]K, 0, p)
	off := 0
	for _, n := range recvCounts {
		if n > 0 {
			runs = append(runs, recv[off:off+n])
		}
		off += n
	}
	var out []K
	switch cfg.Merge {
	case MergeBinaryTree:
		out = psort.ParallelMergeKBinary(runs, ops.Less, threads)
		if model != nil {
			c.Clock().Advance(model.Threaded(model.MergeCost(int(float64(len(recv))*scale), len(runs)), threads))
		}
	case MergeLoserTree:
		// Sequential by design: the tournament tree's cache behaviour is
		// the §VI-E point of comparison.
		out = sortutil.MergeKLoser(runs, ops.Less)
		if model != nil {
			c.Clock().Advance(model.MergeCost(int(float64(len(recv))*scale), len(runs)))
		}
	default: // MergeResort — the paper's evaluated strategy.
		// recv is this rank's own copy, so the re-sort runs in place
		// through the same kernel dispatch as Local Sort, reusing the
		// rank's scratch arena.
		kernel, passes := LocalSortKernel(recv, ops, cfg.Kernel, threads, ar)
		out = recv
		if model != nil {
			c.Clock().Advance(LocalSortCost(model, kernel, int(float64(len(recv))*scale), passes, threads))
		}
	}
	return out
}

// overlapExchangeMerge is the §VI-E1 fused exchange: explicit sendrecv
// rounds over a 1-factorization of the communication graph, merging each
// received chunk into the accumulated output immediately.  Under the
// virtual clock this models overlap naturally: merge time advances the
// local clock, so a chunk whose arrival precedes the clock costs no wait.
func overlapExchangeMerge[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], sendCounts []int, cfg Config) []K {
	p := c.Size()
	scale := cfg.scale()

	// Segment offsets into the locally sorted run.
	offsets := make([]int, p+1)
	for d := 0; d < p; d++ {
		offsets[d+1] = offsets[d] + sendCounts[d]
	}
	stack := newRunStack(c, ops, cfg)
	self := make([]K, sendCounts[c.Rank()])
	copy(self, sorted[offsets[c.Rank()]:offsets[c.Rank()+1]])
	stack.push(self)

	rounds := comm.OneFactorRounds(p)
	for r := 0; r < rounds; r++ {
		partner := comm.OneFactorPartner(p, r, c.Rank())
		if partner < 0 {
			continue
		}
		stack.push(comm.SendrecvProtocol(c, partner, overlapTag+r, sorted[offsets[partner]:offsets[partner+1]], scale))
	}
	return stack.finish()
}

// overlapTag is the tag base of the fused exchange rounds, drawn from the
// library-reserved space [comm.UserTagLimit, ∞): the rounds occupy
// [overlapTag, overlapTag+P), application tags cannot reach it (the
// Send/Recv family panics above comm.UserTagLimit — see checkUserTag), and
// SendrecvProtocol enforces the inverse bound here.
const overlapTag = comm.UserTagLimit
