package core

import (
	"fmt"
	"io"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/store"
	"dhsort/internal/xmath"
)

// Durable checkpoint shards.  When a shared store is configured (Config.Store
// or Config.SpillDir) and the key embedding is lossless, every boundary seals
// each rank's snapshot as primary + replica store runs instead of mirroring a
// resident deep copy: the ring message shrinks to the audit descriptor, crash
// restore reads the store back (primary first, replica on a failed audit,
// ErrCheckpointCorrupt when both fail), and shrink recovery adopts a dead
// rank's shard straight from the store by its world rank.  Run names carry
// the world rank and boundary step, so a restored partition can keep pointing
// at a checkpoint run while the next boundary seals fresh names.

// shardRuns names the three runs of one shard copy.
type shardRuns struct {
	sorted    string
	splitters string
	cuts      string
}

// ckptRuns is the durable shard layout: ckpt/w<world>/s<step>.<p|r>.<part>.
func ckptRuns(world, step int, replica bool) shardRuns {
	side := "p"
	if replica {
		side = "r"
	}
	pre := fmt.Sprintf("ckpt/w%d/s%d.%s", world, step, side)
	return shardRuns{sorted: pre + ".sorted", splitters: pre + ".splitters", cuts: pre + ".cuts"}
}

// writeDurableShards seals the current snapshot as primary and replica runs.
// Each copy is written independently from the live source (the partition run
// on the external path, ck.sorted on the resident path), never from the
// other copy — a primary that rots at seal time must not poison the replica.
func (ck *Checkpoint[K]) writeDurableShards(ops keys.Ops[K], part *extPartition[K]) error {
	for _, replica := range []bool{false, true} {
		names := ckptRuns(ck.world, ck.step, replica)
		if part != nil {
			if err := copyRun(ck.st, part.name, names.sorted); err != nil {
				return err
			}
		} else {
			if err := writeRunKeys(ck.st, names.sorted, ck.sorted, ops); err != nil {
				return err
			}
		}
		if err := writeRunKeys(ck.st, names.splitters, ck.splitters, ops); err != nil {
			return err
		}
		if err := writeCutsRun(ck.st, names.cuts, ck.cuts); err != nil {
			return err
		}
	}
	return nil
}

// restoreDurable re-establishes the post-crash live state from the durable
// shards: audit the primary copy against the snapshot checksum, fall back to
// the replica (priced as the extra fetch it models), and give up with
// ErrCheckpointCorrupt only when both fail.  On the external path the
// partition is repointed at the intact checkpoint run; resident state is
// decoded back into the live slices.
func (ck *Checkpoint[K]) restoreDurable(c *comm.Comm, ops keys.Ops[K], cfg Config, sorted *[]K, part *extPartition[K], splitters *[]K, cuts *[]int) error {
	rec := cfg.Recorder
	for i, cand := range []shardRuns{ckptRuns(ck.world, ck.step, false), ckptRuns(ck.world, ck.step, true)} {
		spl, cts, err := readAux(ck.st, cand)
		if err == nil {
			var sum uint64
			var imgs []xmath.U128
			if part != nil {
				sum, err = foldRunChecksum(ck.st, cand.sorted, ck.step, spl, cts)
			} else {
				imgs, err = readImages(ck.st, cand.sorted)
				if err == nil {
					sum = foldImagesChecksum(ck.step, imgs, spl, cts)
				}
			}
			if err == nil && sum == ck.sum {
				ck.splitters = decodeImages(ck.splitters[:0], spl, ops)
				ck.cuts = append(ck.cuts[:0], cts...)
				restore(splitters, ck.splitters)
				restore(cuts, ck.cuts)
				if part != nil {
					part.reset(cand.sorted, ck.elems)
				} else {
					ck.sorted = decodeImages(ck.sorted[:0], imgs, ops)
					restore(sorted, ck.sorted)
				}
				if i > 0 {
					if m := c.Model(); m != nil {
						vbytes := int(float64(ck.bytes(ops)) * cfg.scale())
						c.Clock().Advance(m.RestoreCost(vbytes))
					}
					rec.AddFaultSpan("recover", fmt.Sprintf("restored step %d from the replica shard", ck.step), 0)
				}
				return nil
			}
		}
		side := "primary"
		if i > 0 {
			side = "replica"
		}
		rec.AddFaultSpan("detect", fmt.Sprintf("durable %s shard failed its audit at step %d", side, ck.step), 0)
	}
	return fmt.Errorf("%w: rank %d at step %d (primary and replica durable shards both failed the audit)", ErrCheckpointCorrupt, c.Rank(), ck.step)
}

// adopt returns the dead ring predecessor's pre-exchange partition for the
// shrink recovery: the resident mirrored copy in legacy mode, or the decoded
// durable shard (audited against the mirrored descriptor, primary first,
// replica fallback) in durable mode.
func (ck *Checkpoint[K]) adopt() ([]K, error) {
	if !ck.durable {
		return ck.mirror.Sorted, nil
	}
	step := int(ck.mirror.Desc.Step)
	for _, cand := range []shardRuns{ckptRuns(ck.mirrorWorld, step, false), ckptRuns(ck.mirrorWorld, step, true)} {
		spl, cts, err := readAux(ck.st, cand)
		if err != nil {
			continue
		}
		imgs, err := readImages(ck.st, cand.sorted)
		if err != nil {
			continue
		}
		if foldImagesChecksum(step, imgs, spl, cts) != ck.mirror.Desc.Sum {
			continue
		}
		return decodeImages(nil, imgs, ck.ops), nil
	}
	return nil, fmt.Errorf("%w: world rank %d at step %d (primary and replica durable shards both failed the adoption audit)", ErrCheckpointCorrupt, ck.mirrorWorld, step)
}

// readAux reads a shard copy's splitter images and cuts.
func readAux(st store.Store, cand shardRuns) ([]xmath.U128, []int, error) {
	spl, err := readImages(st, cand.splitters)
	if err != nil {
		return nil, nil, err
	}
	cts, err := readCuts(st, cand.cuts)
	if err != nil {
		return nil, nil, err
	}
	return spl, cts, nil
}

// imagesOf encodes keys to their 128-bit images.
func imagesOf[K any](ops keys.Ops[K], ks []K) []xmath.U128 {
	if len(ks) == 0 {
		return nil
	}
	out := make([]xmath.U128, len(ks))
	for i, k := range ks {
		out[i] = ops.ToBits(k)
	}
	return out
}

// decodeImages decodes images into dst via FromBits (exact for lossless key
// embeddings — the only ones durable mode accepts).
func decodeImages[K any](dst []K, imgs []xmath.U128, ops keys.Ops[K]) []K {
	for _, b := range imgs {
		dst = append(dst, ops.FromBits(b))
	}
	return dst
}

// copyRun streams run src into a fresh sealed run dst.
func copyRun(st store.Store, src, dst string) error {
	if src == dst {
		return nil
	}
	r, err := st.Open(src)
	if err != nil {
		return err
	}
	defer r.Close()
	w, err := st.Create(dst)
	if err != nil {
		return err
	}
	buf := make([]xmath.U128, 4096)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if werr := w.Append(buf[:n]); werr != nil {
				w.Close()
				return werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// writeCutsRun seals cut offsets as a run (one record per cut, value in Lo).
func writeCutsRun(st store.Store, name string, cuts []int) error {
	w, err := st.Create(name)
	if err != nil {
		return err
	}
	recs := make([]xmath.U128, len(cuts))
	for i, c := range cuts {
		recs[i] = xmath.U128{Lo: uint64(int64(c))}
	}
	if len(recs) > 0 {
		if err := w.Append(recs); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// readImages reads a whole run into memory.
func readImages(st store.Store, name string) ([]xmath.U128, error) {
	count, err := st.Len(name)
	if err != nil {
		return nil, err
	}
	out := make([]xmath.U128, 0, count)
	r, err := st.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]xmath.U128, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// readCuts reads a cuts run back.
func readCuts(st store.Store, name string) ([]int, error) {
	recs, err := readImages(st, name)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(recs))
	for i, r := range recs {
		out[i] = int(int64(r.Lo))
	}
	return out, nil
}

// fnvFold is the checkpoint checksum: FNV-1a over the step, the section
// lengths, the sorted key images, the splitter images, and the cuts — the
// one fold shared by the resident, image, and streaming variants, so a
// resident snapshot and its durable shard always agree.
type fnvFold struct{ h uint64 }

func newFold() fnvFold {
	return fnvFold{h: 14695981039346656037}
}

func (f *fnvFold) word(v uint64) {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		f.h ^= (v >> (8 * i)) & 0xff
		f.h *= prime
	}
}

func (f *fnvFold) image(b xmath.U128) {
	f.word(b.Hi)
	f.word(b.Lo)
}

func (f *fnvFold) header(step int, elems int64, nsplit, ncuts int) {
	f.word(uint64(step))
	f.word(uint64(elems))
	f.word(uint64(nsplit))
	f.word(uint64(ncuts))
}

func (f *fnvFold) trailer(splitters []xmath.U128, cuts []int) {
	for _, b := range splitters {
		f.image(b)
	}
	for _, c := range cuts {
		f.word(uint64(int64(c)))
	}
}

// foldImagesChecksum is foldChecksum over already-encoded images.
func foldImagesChecksum(step int, sorted, splitters []xmath.U128, cuts []int) uint64 {
	f := newFold()
	f.header(step, int64(len(sorted)), len(splitters), len(cuts))
	for _, b := range sorted {
		f.image(b)
	}
	f.trailer(splitters, cuts)
	return f.h
}

// foldRunChecksum is foldChecksum with the sorted section streamed from a
// sealed run, without materializing it; the sequential read also audits the
// run's own record checksum.
func foldRunChecksum(st store.Store, name string, step int, splitters []xmath.U128, cuts []int) (uint64, error) {
	count, err := st.Len(name)
	if err != nil {
		return 0, err
	}
	f := newFold()
	f.header(step, count, len(splitters), len(cuts))
	r, err := st.Open(name)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	buf := make([]xmath.U128, 4096)
	for {
		n, err := r.Read(buf)
		for _, b := range buf[:n] {
			f.image(b)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	f.trailer(splitters, cuts)
	return f.h, nil
}
