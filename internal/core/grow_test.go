package core

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/prng"
	"dhsort/internal/simnet"
)

// growInput deterministically generates rank r's share of the test stream.
func growInput(seed uint64, rank, n int) []uint64 {
	src := prng.NewSplitMix64(seed + uint64(rank)*0x9e3779b97f4a7c15)
	out := make([]uint64, n)
	for i := range out {
		out[i] = src.Uint64()
	}
	return out
}

// growRun executes the full elasticity acceptance scenario once: a P=8
// world sorts a stream, grows to P=12 mid-stream (spawn + grow collective +
// GrowRebalance of the sorted output onto the joiners), then sorts a SECOND
// stream on the grown communicator.  It returns the per-world-rank final
// partitions of the second sort plus the world makespan.
func growRun(t *testing.T, seed uint64) ([][]uint64, time.Duration) {
	t.Helper()
	const p, k, n = 8, 4, 2000
	model := simnet.SuperMUC(4, true)
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	joiners := []int{8, 9, 10, 11}
	outs := make([][]uint64, p+k)
	var mu sync.Mutex
	var spawned *comm.Spawned
	record := func(c *comm.Comm, part []uint64) {
		mu.Lock()
		outs[c.WorldRank()] = part
		mu.Unlock()
	}
	// The joiners' half: await the grow, receive a balanced share of the
	// first stream's order, then take a full share of the second stream —
	// the point of growing is that new traffic lands on the new capacity.
	joinFn := func(jc *comm.Comm) error {
		nc := comm.AwaitGrow(jc, 0)
		part := GrowRebalance(nc, nil, keys.Uint64{}, Config{})
		if len(part) == 0 {
			t.Errorf("joiner %d received no elements from the rebalance", nc.Rank())
		}
		if !IsGloballySorted(nc, part, keys.Uint64{}) {
			t.Errorf("joiner %d: rebalanced stream not globally sorted", nc.Rank())
		}
		in2 := growInput(seed+1, nc.Rank(), n)
		out2, err := Sort(nc, in2, keys.Uint64{}, Config{})
		if err != nil {
			return err
		}
		record(nc, out2)
		return nil
	}
	err = w.Run(func(c *comm.Comm) error {
		in := growInput(seed, c.Rank(), n)
		out, err := Sort(c, in, keys.Uint64{}, Config{})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			s, serr := w.Spawn(k, joinFn)
			if serr != nil {
				return serr
			}
			spawned = s
		}
		nc := c.Grow(joiners)
		part := GrowRebalance(nc, out, keys.Uint64{}, Config{})
		if !IsGloballySorted(nc, part, keys.Uint64{}) {
			t.Errorf("rank %d: rebalanced stream not globally sorted", nc.Rank())
		}
		in2 := growInput(seed+1, c.Rank(), n)
		out2, err := Sort(nc, in2, keys.Uint64{}, Config{})
		if err != nil {
			return err
		}
		record(nc, out2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := spawned.Wait(); err != nil {
		t.Fatalf("joiners failed: %v", err)
	}
	return outs, w.Makespan()
}

// TestGrowMidStreamSort is the elasticity acceptance gate: after growing
// 8 -> 12 mid-stream, the second sort's concatenated output must be sorted,
// multiset-identical to its input, spread across all 12 ranks — and
// bit-reproducible (partitions AND makespan) across replays.
func TestGrowMidStreamSort(t *testing.T) {
	const seed = 42
	outs, mk := growRun(t, seed)

	var all []uint64
	for wr, part := range outs {
		if len(part) == 0 {
			t.Errorf("world rank %d holds no partition of the grown sort", wr)
		}
		all = append(all, part...)
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("concatenated grown-sort output is not sorted")
	}
	var want []uint64
	for r := 0; r < 12; r++ {
		want = append(want, growInput(seed+1, r, 2000)...)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(all, want) {
		t.Error("grown-sort output is not multiset-identical to its input")
	}

	outs2, mk2 := growRun(t, seed)
	if !reflect.DeepEqual(outs, outs2) {
		t.Error("grown-sort partitions differ across identical replays")
	}
	if mk != mk2 {
		t.Errorf("grown-run makespan not bit-reproducible: %v vs %v", mk, mk2)
	}
}

// TestGrowRebalanceBalancesOntoJoiners pins the flow schedule's outcome:
// after GrowRebalance every rank — joiners included — holds its
// front-loaded balanced share of the unchanged global order.
func TestGrowRebalanceBalancesOntoJoiners(t *testing.T) {
	const p, k, n = 4, 2, 900
	w, err := comm.NewWorld(p, simnet.SuperMUC(2, true))
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]uint64, p+k)
	var mu sync.Mutex
	var spawned *comm.Spawned
	err = w.Run(func(c *comm.Comm) error {
		if c.Rank() == 0 {
			s, serr := w.Spawn(k, func(jc *comm.Comm) error {
				nc := comm.AwaitGrow(jc, 0)
				part := GrowRebalance(nc, nil, keys.Uint64{}, Config{})
				mu.Lock()
				parts[nc.Rank()] = part
				mu.Unlock()
				return nil
			})
			if serr != nil {
				return serr
			}
			spawned = s
		}
		// Rank r holds the r-th run of the global order.
		local := make([]uint64, n)
		for i := range local {
			local[i] = uint64(c.Rank()*n + i)
		}
		nc := c.Grow([]int{4, 5})
		part := GrowRebalance(nc, local, keys.Uint64{}, Config{})
		mu.Lock()
		parts[nc.Rank()] = part
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := spawned.Wait(); err != nil {
		t.Fatal(err)
	}
	total := p * n
	base := total / (p + k)
	var next uint64
	for r, part := range parts {
		want := base
		if r < total%(p+k) {
			want++
		}
		if len(part) != want {
			t.Errorf("rank %d holds %d elements, want the balanced share %d", r, len(part), want)
		}
		for _, v := range part {
			if v != next {
				t.Fatalf("global order broken at value %d on rank %d (want %d)", v, r, next)
			}
			next++
		}
	}
}
