package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/prng"
	"dhsort/internal/simnet"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
)

func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// checkLocalSortMatches sorts a copy of data with LocalSort and with the
// pure comparison sort and requires bit-identical results.
func checkLocalSortMatches[K any](t *testing.T, name string, data []K, ops keys.Ops[K], threads int, wantKernel string) {
	t.Helper()
	got := make([]K, len(data))
	copy(got, data)
	ar := &sortutil.Arena[K]{}
	kernel, passes := LocalSort(got, ops, threads, ar)
	if kernel != wantKernel {
		t.Fatalf("%s: dispatched to %s, want %s", name, kernel, wantKernel)
	}
	if kernel == KernelRadix && len(data) > 1 && passes < 1 {
		t.Fatalf("%s: radix kernel reported %d passes", name, passes)
	}
	want := make([]K, len(data))
	copy(want, data)
	sortutil.Sort(want, ops.Less)
	ga := make([]byte, 0, 64)
	wa := make([]byte, 0, 64)
	for i := range want {
		gb := ops.ToBits(got[i])
		wb := ops.ToBits(want[i])
		ga = binary.AppendUvarint(ga[:0], gb.Hi)
		ga = binary.AppendUvarint(ga, gb.Lo)
		wa = binary.AppendUvarint(wa[:0], wb.Hi)
		wa = binary.AppendUvarint(wa, wb.Lo)
		if !bytes.Equal(ga, wa) {
			t.Fatalf("%s: kernel %s diverges from introsort at index %d", name, kernel, i)
		}
	}
}

// TestLocalSortDispatchAndEquivalence covers every RadixOps instance, the
// float total order (NaN, ±0, ±Inf), the two-stage triple kernel, and the
// comparison fallbacks.
func TestLocalSortDispatchAndEquivalence(t *testing.T) {
	withProcs(t, 4)
	src := prng.NewXoshiro256(31337)
	n := 20000

	u := make([]uint64, n)
	i64 := make([]int64, n)
	f64 := make([]float64, n)
	u32 := make([]uint32, n)
	f32 := make([]float32, n)
	s := make([]string, n)
	for i := range u {
		v := src.Uint64()
		u[i] = v % 5000 // duplicate-heavy
		i64[i] = int64(v)
		f64[i] = math.Float64frombits(v) // includes NaNs, infinities, -0
		u32[i] = uint32(v)
		f32[i] = math.Float32frombits(uint32(v))
		s[i] = string(rune('a' + v%26))
	}
	f64[0], f64[1], f64[2] = math.NaN(), math.Copysign(0, -1), math.Inf(-1)

	checkLocalSortMatches(t, "uint64", u, keys.Uint64{}, 1, KernelRadix)
	checkLocalSortMatches(t, "int64", i64, keys.Int64{}, 1, KernelRadix)
	checkLocalSortMatches(t, "float64", f64, keys.Float64{}, 1, KernelRadix)
	checkLocalSortMatches(t, "uint32", u32, keys.Uint32{}, 1, KernelRadix)
	checkLocalSortMatches(t, "float32", f32, keys.Float32{}, 1, KernelRadix)
	checkLocalSortMatches(t, "string-seq", s, keys.String{}, 1, KernelIntrosort)
	checkLocalSortMatches(t, "string-par", s, keys.String{}, 4, KernelTaskMerge)

	// Triples: the two-stage LSD composition must reproduce the
	// (key, rank, index) comparison exactly.
	tr := keys.MakeUnique(u[:4000], 3)
	for i := range tr {
		tr[i].Rank = uint32(i % 7) // several source ranks, same keys
	}
	checkLocalSortMatches(t, "triple", tr, keys.NewTripleOps[uint64](keys.Uint64{}), 1, KernelRadix)
}

// TestLocalSortPairsKeepPayload: pairs dispatch to radix via the base key
// and the payload must travel with its key.
func TestLocalSortPairsKeepPayload(t *testing.T) {
	src := prng.NewXoshiro256(5)
	n := 8000
	pairs := make([]keys.Pair[uint64, int], n)
	for i := range pairs {
		pairs[i] = keys.Pair[uint64, int]{Key: prng.Uint64n(src, 200), Val: i}
	}
	ops := keys.NewPairOps[uint64, int](keys.Uint64{})
	kernel, _ := LocalSort(pairs, ops, 1, nil)
	if kernel != KernelRadix {
		t.Fatalf("pair dispatch = %s, want radix", kernel)
	}
	if !sortutil.IsSorted(pairs, ops.Less) {
		t.Fatal("pairs not sorted by key")
	}
	// Multiset check: every (key, value) binding must survive.
	seen := make(map[keys.Pair[uint64, int]]int, n)
	for _, p := range pairs {
		seen[p]++
	}
	if len(seen) != n {
		t.Fatalf("pair bindings lost: %d distinct, want %d", len(seen), n)
	}
}

func TestLocalSortKernelOverride(t *testing.T) {
	withProcs(t, 4)
	data := randomU64(77, 10000, 1e9)
	for _, force := range []string{KernelRadix, KernelTaskMerge, KernelIntrosort} {
		a := append([]uint64(nil), data...)
		kernel, _ := LocalSortKernel(a, keys.Uint64{}, force, 2, nil)
		if kernel != force {
			t.Errorf("forced %s, ran %s", force, kernel)
		}
		if !sortutil.IsSorted(a, keys.Uint64{}.Less) {
			t.Errorf("forced %s: not sorted", force)
		}
	}
	// Forcing radix on comparison-only keys must fall back, not crash.
	s := []string{"b", "a", "c"}
	kernel, _ := LocalSortKernel(s, keys.String{}, KernelRadix, 1, nil)
	if kernel != KernelIntrosort {
		t.Errorf("forced radix on strings ran %s, want introsort fallback", kernel)
	}
}

func TestLocalSortCostPricing(t *testing.T) {
	m := simnet.SuperMUC(16, true)
	n := 1 << 20
	radix := LocalSortCost(m, KernelRadix, n, 8, 1)
	comparison := LocalSortCost(m, KernelIntrosort, n, 0, 1)
	if radix <= 0 || comparison <= 0 {
		t.Fatal("costs must be positive")
	}
	if radix >= comparison {
		t.Errorf("radix cost %v not below comparison cost %v at n=%d", radix, comparison, n)
	}
	// Fewer executed passes must be cheaper.
	if c2 := LocalSortCost(m, KernelRadix, n, 2, 1); c2 >= radix {
		t.Errorf("2-pass cost %v not below 8-pass cost %v", c2, radix)
	}
	// The threaded comparison kernel must price below sequential but above
	// perfect scaling.
	seq := LocalSortCost(m, KernelTaskMerge, n, 0, 1)
	par := LocalSortCost(m, KernelTaskMerge, n, 0, 4)
	if par >= seq {
		t.Errorf("threaded cost %v not below sequential %v", par, seq)
	}
	if par <= seq/4 {
		t.Errorf("threaded cost %v better than perfect 4x scaling of %v", par, seq)
	}
	// Models without radix calibration fall back to the comparison price.
	plain := &simnet.CostModel{CompareNs: 1}
	if got := plain.RadixSortCost(n, 8); got != plain.SortCost(n) {
		t.Errorf("uncalibrated RadixSortCost = %v, want SortCost %v", got, plain.SortCost(n))
	}
	if d := plain.Threaded(time.Second, 4); d != time.Second {
		t.Errorf("uncalibrated Threaded = %v, want identity", d)
	}
}

func TestSearchWorkers(t *testing.T) {
	cases := []struct {
		threads, tasks, n, want int
	}{
		{1, 100, 1 << 20, 1},  // no budget
		{8, 1, 1 << 20, 1},    // single task
		{8, 100, 1000, 1},     // partition below cutoff
		{8, 100, 1 << 20, 8},  // budget-bound
		{8, 3, 1 << 20, 3},    // task-bound
		{0, 100, 1 << 20, 1},  // zero budget
		{16, 15, 1 << 20, 15}, // exact clamp
	}
	for _, c := range cases {
		if got := searchWorkers(c.threads, c.tasks, c.n); got != c.want {
			t.Errorf("searchWorkers(%d,%d,%d) = %d, want %d", c.threads, c.tasks, c.n, got, c.want)
		}
	}
}

// TestSortThreadsBitIdentical: the full distributed sort must produce
// bit-identical partitions for any thread budget, across merge strategies
// and exchanges — parallelism may never change the answer.
func TestSortThreadsBitIdentical(t *testing.T) {
	withProcs(t, 4)
	p, perRank := 8, 1500
	for _, cfgBase := range []Config{
		{},
		{Merge: MergeBinaryTree},
		{Merge: MergeOverlap},
		{Exchange: comm.ExchangeRMAPut},
		{ForceUnique: true},
	} {
		spec := workload.Spec{Dist: workload.Zipf, Seed: 99, Span: 1e6}
		cfg1 := cfgBase
		cfg1.Threads = 1
		_, base := runSort(t, p, spec, perRank, cfg1, nil)
		for _, threads := range []int{3, 8} {
			cfg := cfgBase
			cfg.Threads = threads
			_, outs := runSort(t, p, spec, perRank, cfg, nil)
			for r := range base {
				if len(outs[r]) != len(base[r]) {
					t.Fatalf("cfg %+v threads=%d: rank %d size %d != %d", cfgBase, threads, r, len(outs[r]), len(base[r]))
				}
				for i := range base[r] {
					if outs[r][i] != base[r][i] {
						t.Fatalf("cfg %+v threads=%d: rank %d diverges at %d", cfgBase, threads, r, i)
					}
				}
			}
		}
	}
}

// TestFindSplittersThreadsEquivalent: the parallel per-splitter searches
// must return exactly the sequential splitters and iteration count.
func TestFindSplittersThreadsEquivalent(t *testing.T) {
	withProcs(t, 4)
	p, perRank := 8, 5000 // above searchParallelCutoff
	run := func(threads int) ([][]uint64, []int) {
		w, err := comm.NewWorld(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		splits := make([][]uint64, p)
		iters := make([]int, p)
		err = w.Run(func(c *comm.Comm) error {
			spec := workload.Spec{Dist: workload.Normal, Seed: 3, Span: 1e9}
			local, err := spec.Rank(c.Rank(), perRank)
			if err != nil {
				return err
			}
			sortutil.Sort(local, keys.Uint64{}.Less)
			targets := make([]int64, p-1)
			for i := range targets {
				targets[i] = int64((i + 1) * perRank)
			}
			s, n := FindSplitters(c, local, keys.Uint64{}, targets, 0, Config{Threads: threads})
			splits[c.Rank()] = s
			iters[c.Rank()] = n
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return splits, iters
	}
	baseS, baseI := run(1)
	for _, threads := range []int{3, 8} {
		gotS, gotI := run(threads)
		for r := range baseS {
			if gotI[r] != baseI[r] {
				t.Fatalf("threads=%d: rank %d iterations %d != %d", threads, r, gotI[r], baseI[r])
			}
			for i := range baseS[r] {
				if gotS[r][i] != baseS[r][i] {
					t.Fatalf("threads=%d: rank %d splitter %d diverges", threads, r, i)
				}
			}
		}
	}
}

func randomU64(seed uint64, n int, span uint64) []uint64 {
	src := prng.NewXoshiro256(seed)
	a := make([]uint64, n)
	for i := range a {
		a[i] = prng.Uint64n(src, span)
	}
	return a
}

// FuzzLocalSortMatchesIntrosort drives the radix dispatch with arbitrary
// byte strings reinterpreted as uint64/float64 keys.
func FuzzLocalSortMatchesIntrosort(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f, 1}) // NaN bits
	f.Add(bytes.Repeat([]byte{0xab}, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 8
		if n == 0 {
			return
		}
		u := make([]uint64, n)
		fl := make([]float64, n)
		for i := 0; i < n; i++ {
			v := binary.LittleEndian.Uint64(raw[8*i:])
			u[i] = v
			fl[i] = math.Float64frombits(v)
		}

		gotU := append([]uint64(nil), u...)
		if kernel, _ := LocalSort(gotU, keys.Uint64{}, 1, nil); kernel != KernelRadix {
			t.Fatalf("uint64 dispatched to %s", kernel)
		}
		wantU := append([]uint64(nil), u...)
		sort.Slice(wantU, func(i, j int) bool { return wantU[i] < wantU[j] })
		for i := range wantU {
			if gotU[i] != wantU[i] {
				t.Fatalf("uint64 radix diverges at %d", i)
			}
		}

		gotF := append([]float64(nil), fl...)
		LocalSort(gotF, keys.Float64{}, 1, nil)
		wantF := append([]float64(nil), fl...)
		sortutil.Sort(wantF, keys.Float64{}.Less)
		for i := range wantF {
			if math.Float64bits(gotF[i]) != math.Float64bits(wantF[i]) {
				t.Fatalf("float64 radix diverges at %d: %x != %x", i,
					math.Float64bits(gotF[i]), math.Float64bits(wantF[i]))
			}
		}
	})
}
