package core

import (
	"errors"
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/sortutil"
)

// Sort sorts the distributed sequence whose local share on this rank is
// local, and returns this rank's partition of the globally sorted result.
// It must be called collectively by every rank of c with a consistent
// configuration.
//
// The output invariant (§I): each returned partition is sorted, no element
// on rank i orders after any element on rank i+1, and — with Epsilon == 0
// and the uniqueness transformation enabled — rank i holds exactly as many
// elements as it contributed (perfect partitioning).  The input slice is
// not modified.
//
// Duplicate keys need no special treatment: Algorithm 4's boundary
// refinement splits runs of equal keys across ranks exactly.  Set
// cfg.ForceUnique to additionally apply the (key, rank, index)
// transformation of §V-A.
func Sort[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	out, _, err := SortResilient(c, local, ops, cfg)
	return out, err
}

// SortResilient is Sort returning the effective communicator the result
// lives on.  Without shrink recovery that is c itself; with
// Config.Recovery == RecoveryShrink and a permanent rank death it is the
// shrunken survivor communicator — the one collective follow-ups
// (IsGloballySorted, further sorts) must run on.  A rank scheduled to die
// never returns at all; its goroutine exits inside the collective call.
func SortResilient[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, *comm.Comm, error) {
	if err := cfg.validate(); err != nil {
		return nil, c, err
	}
	if !cfg.ForceUnique {
		return sortResilient[K](c, local, ops, cfg)
	}
	triples := keys.MakeUnique(local, c.Rank())
	if m := c.Model(); m != nil {
		c.Clock().Advance(m.ScanCost(int(float64(len(local)) * cfg.scale())))
	}
	out, eff, err := sortResilient[keys.Triple[K]](c, triples, keys.NewTripleOps(ops), cfg)
	if err != nil {
		return nil, eff, err
	}
	return keys.StripUnique(out), eff, nil
}

// sortResilient dispatches between the plain run and the ULFM-style
// shrink-recovery loop: run the supersteps; if a typed failure (rank death
// or revocation) unwinds them, revoke → agree → shrink → adopt the dead
// predecessor's mirrored shard → redo on the survivors.
func sortResilient[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, *comm.Comm, error) {
	if c.FaultInjector() == nil || cfg.Recovery != RecoveryShrink {
		out, err := sortImpl[K](c, local, ops, cfg)
		return out, c, err
	}
	eff := c
	work := local
	for {
		var (
			out     []K
			sortErr error
			ck      *Checkpoint[K]
		)
		// A failure surfaces either as the boundary detector's error return
		// (the deterministic path) or, for asynchronous detection deep in a
		// collective, as the typed panic Try converts.
		err := comm.Try(func() {
			ck = &Checkpoint[K]{}
			out, sortErr = sortSteps[K](eff, work, ops, cfg, ck)
		})
		if err == nil {
			err = sortErr
		}
		if err == nil {
			return out, eff, nil
		}
		var fe *comm.FailureError
		if !errors.As(err, &fe) {
			return nil, eff, err
		}
		next, adopted, rerr := ShrinkRecover[K](eff, ck, fe, cfg.Recorder)
		if rerr != nil {
			return nil, eff, rerr
		}
		if len(adopted) > 0 {
			merged := make([]K, 0, len(work)+len(adopted))
			merged = append(merged, work...)
			merged = append(merged, adopted...)
			work = merged
		}
		eff = next
	}
}

// ShrinkRecover is one survivor's pass through the ULFM recipe after a
// failure unwound the supersteps: revoke the communicator so every peer
// unwinds too, agree on the survivor bitmap, audit that every victim's
// mirrored shard has a surviving holder, adopt the dead predecessor's
// shard, and shrink to the dense survivor communicator.  The whole pass is
// priced on the virtual clock and recorded as shrink time.  fe is the
// failure that unwound the supersteps; when it carries a boundary step, the
// suspicion fed to Agree is derived from the death schedule, giving every
// survivor an identical view even before the victims' registrations land.
// It returns the shrunken communicator and the elements adopted from the
// dead predecessor (nil when this rank adopted nothing).  Exported for
// sibling sorters (hss) that run their own superstep loops over core's
// checkpoints.
func ShrinkRecover[K any](eff *comm.Comm, ck *Checkpoint[K], fe *comm.FailureError, rec *metrics.Recorder) (*comm.Comm, []K, error) {
	start := eff.Clock().Now()
	eff.Revoke()
	var suspect []bool
	if fe != nil && fe.Step > 0 {
		inj := eff.FaultInjector()
		suspect = make([]bool, eff.Size())
		for r := range suspect {
			suspect[r] = inj.DieAt(eff.WorldRankOf(r), fe.Step)
		}
	}
	alive, rounds := eff.Agree(suspect)
	rec.AddAgreeRounds(rounds)

	// Loss audit: a victim's shard survives only at its immediate ring
	// successor.  If that successor died at the same boundary, the sort
	// cannot be loss-free — fail with the typed error rather than return
	// a silently incomplete result.
	p := eff.Size()
	deadCount := 0
	for r, a := range alive {
		if a {
			continue
		}
		deadCount++
		if !alive[(r+1)%p] {
			return nil, nil, fmt.Errorf("%w: ranks %d and %d", ErrShardLost, r, (r+1)%p)
		}
	}
	if deadCount == 0 {
		return nil, nil, fmt.Errorf("core: rank %d: communicator revoked but no rank is registered dead", eff.Rank())
	}

	// Adopt the dead predecessor's mirrored snapshot.  The mirrored sorted
	// partition is invariant across the boundaries of one epoch (data only
	// moves in the exchange, after the last boundary), so any boundary's
	// mirror carries the victim's full pre-exchange data — adoption is
	// loss-free.
	var adopted []K
	prev := (eff.Rank() + p - 1) % p
	if !alive[prev] {
		if !ck.adoptable(prev) {
			return nil, nil, fmt.Errorf("%w: rank %d holds no mirror of dead rank %d", ErrShardLost, eff.Rank(), prev)
		}
		var aerr error
		adopted, aerr = ck.adopt()
		if aerr != nil {
			return nil, nil, aerr
		}
		rec.AddFaultSpan("recover", fmt.Sprintf("adopted %d mirrored elements of dead rank %d", len(adopted), prev), 0)
	}

	nc := eff.Shrink(alive)
	d := eff.Clock().Now() - start
	rec.AddShrink(d, nc.Size())
	rec.AddFaultSpan("recover", fmt.Sprintf("shrunk %d -> %d survivors", p, nc.Size()), d)
	return nc, adopted, nil
}

// sortImpl runs the supersteps with a run-local checkpoint store (the
// respawn recovery path; shrink recovery owns the store so it survives the
// unwind).
func sortImpl[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	// Fault-injecting worlds checkpoint at every superstep boundary so a
	// crashed-and-respawned rank re-enters from its snapshot; ck stays nil
	// (and Boundary a no-op) on the fault-free fast path.
	var ck *Checkpoint[K]
	if c.FaultInjector() != nil {
		ck = &Checkpoint[K]{}
	}
	return sortSteps[K](c, local, ops, cfg, ck)
}

// sortSteps runs the four supersteps of §V.
func sortSteps[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config, ck *Checkpoint[K]) ([]K, error) {
	// Budgeted configurations take the external-memory path collectively:
	// spillActive depends only on the shared Config and the key type, so
	// every rank agrees, keeping the fused exchange schedule consistent.
	if spillActive(cfg, ops) {
		return sortStepsSpilled[K](c, local, ops, cfg, ck)
	}
	p := c.Size()
	model := c.Model()
	scale := cfg.scale()
	rec := cfg.Recorder
	threads := cfg.threads()

	// Superstep 1: Local Sort, through the kernel dispatch.  The arena is
	// this rank's scratch for the whole run: the Local Merge superstep
	// reuses the same buffers.
	rec.Enter(metrics.LocalSort)
	ar := &sortutil.Arena[K]{}
	sorted := make([]K, len(local))
	copy(sorted, local)
	kernel, passes := LocalSortKernel(sorted, ops, cfg.Kernel, threads, ar)
	rec.SetLocalSort(kernel, threads)
	if model != nil {
		c.Clock().Advance(LocalSortCost(model, kernel, int(float64(len(sorted))*scale), passes, threads))
	}
	if p == 1 {
		rec.Finish()
		return sorted, nil
	}
	if err := ck.Boundary(c, ops, cfg, StepLocalSort, &sorted, nil, nil); err != nil {
		return nil, err
	}

	// Superstep 2: Splitting.  Targets are the capacity prefix sums of
	// Definition 3; the tolerance comes from Definition 1.
	rec.Enter(metrics.Other)
	capacities := comm.AllgatherOne(c, int64(len(local)))
	targets := make([]int64, p-1)
	var totalN, acc int64
	for _, n := range capacities {
		totalN += n
	}
	for i := 0; i < p-1; i++ {
		acc += capacities[i]
		targets[i] = acc
	}
	tol := int64(cfg.Epsilon * float64(totalN) / (2 * float64(p)))

	rec.Enter(metrics.Histogram)
	splitters, _ := FindSplitters(c, sorted, ops, targets, tol, cfg)
	if err := ck.Boundary(c, ops, cfg, StepSplitting, &sorted, &splitters, nil); err != nil {
		return nil, err
	}

	// Superstep 3: Data Exchange (permutation matrix + ALLTOALLV).
	rec.Enter(metrics.Other)
	cuts := ComputeCuts(c, sorted, ops, splitters, targets, cfg)
	if err := ck.Boundary(c, ops, cfg, StepCuts, &sorted, &splitters, &cuts); err != nil {
		return nil, err
	}
	rec.Enter(metrics.Exchange)
	out := ExchangeAndMergeArena(c, sorted, ops, cuts, cfg, ar) // enters Merge internally
	if cfg.Rebalance {
		rec.Enter(metrics.Other)
		out = RebalanceOutput(c, out, ops, cfg)
	}
	rec.Finish()
	return out, nil
}

// IsGloballySorted verifies the output invariant collectively: every local
// partition is sorted and no element orders after the first element of the
// next non-empty rank.  The verdict is returned on every rank.  After a
// shrink recovery, run it on the effective communicator SortResilient
// returned.
func IsGloballySorted[K any](c *comm.Comm, local []K, ops keys.Ops[K]) bool {
	ok := sortutil.IsSorted(local, ops.Less)
	// Share boundary elements: every rank publishes (has, first, last).
	type boundary struct {
		Has         bool
		First, Last K
	}
	b := boundary{Has: len(local) > 0}
	if b.Has {
		b.First, b.Last = local[0], local[len(local)-1]
	}
	all := comm.AllgatherOne(c, b)
	var prev *K
	for i := range all {
		if !all[i].Has {
			continue
		}
		if prev != nil && ops.Less(all[i].First, *prev) {
			ok = false
		}
		last := all[i].Last
		prev = &last
	}
	return comm.AllreduceOne(c, ok, func(a, b bool) bool { return a && b })
}
