package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/sortutil"
)

// Sort sorts the distributed sequence whose local share on this rank is
// local, and returns this rank's partition of the globally sorted result.
// It must be called collectively by every rank of c with a consistent
// configuration.
//
// The output invariant (§I): each returned partition is sorted, no element
// on rank i orders after any element on rank i+1, and — with Epsilon == 0
// and the uniqueness transformation enabled — rank i holds exactly as many
// elements as it contributed (perfect partitioning).  The input slice is
// not modified.
//
// Duplicate keys need no special treatment: Algorithm 4's boundary
// refinement splits runs of equal keys across ranks exactly.  Set
// cfg.ForceUnique to additionally apply the (key, rank, index)
// transformation of §V-A.
func Sort[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !cfg.ForceUnique {
		return sortImpl[K](c, local, ops, cfg)
	}
	triples := keys.MakeUnique(local, c.Rank())
	if m := c.Model(); m != nil {
		c.Clock().Advance(m.ScanCost(int(float64(len(local)) * cfg.scale())))
	}
	out, err := sortImpl[keys.Triple[K]](c, triples, keys.NewTripleOps(ops), cfg)
	if err != nil {
		return nil, err
	}
	return keys.StripUnique(out), nil
}

// sortImpl runs the four supersteps of §V.
func sortImpl[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	p := c.Size()
	model := c.Model()
	scale := cfg.scale()
	rec := cfg.Recorder
	threads := cfg.threads()

	// Superstep 1: Local Sort, through the kernel dispatch.  The arena is
	// this rank's scratch for the whole run: the Local Merge superstep
	// reuses the same buffers.
	rec.Enter(metrics.LocalSort)
	ar := &sortutil.Arena[K]{}
	sorted := make([]K, len(local))
	copy(sorted, local)
	kernel, passes := LocalSortKernel(sorted, ops, cfg.Kernel, threads, ar)
	rec.SetLocalSort(kernel, threads)
	if model != nil {
		c.Clock().Advance(LocalSortCost(model, kernel, int(float64(len(sorted))*scale), passes, threads))
	}
	if p == 1 {
		rec.Finish()
		return sorted, nil
	}
	// Fault-injecting worlds checkpoint at every superstep boundary so a
	// crashed-and-respawned rank re-enters from its snapshot; ck stays nil
	// (and Boundary a no-op) on the fault-free fast path.
	var ck *Checkpoint[K]
	if c.FaultInjector() != nil {
		ck = &Checkpoint[K]{}
	}
	ck.Boundary(c, ops, cfg, StepLocalSort, &sorted, nil, nil)

	// Superstep 2: Splitting.  Targets are the capacity prefix sums of
	// Definition 3; the tolerance comes from Definition 1.
	rec.Enter(metrics.Other)
	capacities := comm.AllgatherOne(c, int64(len(local)))
	targets := make([]int64, p-1)
	var totalN, acc int64
	for _, n := range capacities {
		totalN += n
	}
	for i := 0; i < p-1; i++ {
		acc += capacities[i]
		targets[i] = acc
	}
	tol := int64(cfg.Epsilon * float64(totalN) / (2 * float64(p)))

	rec.Enter(metrics.Histogram)
	splitters, _ := FindSplitters(c, sorted, ops, targets, tol, cfg)
	ck.Boundary(c, ops, cfg, StepSplitting, &sorted, &splitters, nil)

	// Superstep 3: Data Exchange (permutation matrix + ALLTOALLV).
	rec.Enter(metrics.Other)
	cuts := ComputeCuts(c, sorted, ops, splitters, targets, cfg)
	ck.Boundary(c, ops, cfg, StepCuts, &sorted, &splitters, &cuts)
	rec.Enter(metrics.Exchange)
	out := ExchangeAndMergeArena(c, sorted, ops, cuts, cfg, ar) // enters Merge internally
	rec.Finish()
	return out, nil
}

// IsGloballySorted verifies the output invariant collectively: every local
// partition is sorted and no element orders after the first element of the
// next non-empty rank.  The verdict is returned on every rank.
func IsGloballySorted[K any](c *comm.Comm, local []K, ops keys.Ops[K]) bool {
	ok := sortutil.IsSorted(local, ops.Less)
	// Share boundary elements: every rank publishes (has, first, last).
	type boundary struct {
		Has         bool
		First, Last K
	}
	b := boundary{Has: len(local) > 0}
	if b.Has {
		b.First, b.Last = local[0], local[len(local)-1]
	}
	all := comm.AllgatherOne(c, b)
	var prev *K
	for i := range all {
		if !all[i].Has {
			continue
		}
		if prev != nil && ops.Less(all[i].First, *prev) {
			ok = false
		}
		last := all[i].Last
		prev = &last
	}
	return comm.AllreduceOne(c, ok, func(a, b bool) bool { return a && b })
}
