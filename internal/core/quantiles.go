package core

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/sortutil"
)

// Quantiles returns q-1 cut values splitting the distributed sequence into
// q equal-count buckets (an equi-depth histogram): cut i has global rank
// ~i·N/q within the tolerance of cfg.Epsilon.  It reuses the splitter
// search of the sort (Algorithms 2+3) without moving any data, costing one
// small ALLREDUCE per refinement iteration.  Collective; local need not be
// sorted and is not modified.
func Quantiles[K any](c *comm.Comm, local []K, q int, ops keys.Ops[K], cfg Config) ([]K, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if q < 1 {
		return nil, fmt.Errorf("core: need at least one bucket, got %d", q)
	}
	sorted := make([]K, len(local))
	copy(sorted, local)
	sortutil.Sort(sorted, ops.Less)
	if m := c.Model(); m != nil {
		c.Clock().Advance(m.SortCost(int(float64(len(sorted)) * cfg.scale())))
	}
	totalN := comm.AllreduceOne(c, int64(len(sorted)), func(a, b int64) int64 { return a + b })
	targets := make([]int64, q-1)
	for i := range targets {
		targets[i] = totalN * int64(i+1) / int64(q)
	}
	tol := int64(cfg.Epsilon * float64(totalN) / (2 * float64(q)))
	cuts, _ := FindSplitters(c, sorted, ops, targets, tol, cfg)
	return cuts, nil
}
