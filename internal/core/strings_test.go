package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/prng"
)

// TestSortStrings sorts variable-length strings, including runs sharing a
// 16-byte prefix (which collide in the splitter embedding and are split by
// the boundary refinement like duplicates).
func TestSortStrings(t *testing.T) {
	const p, perRank = 6, 400
	ops := keys.String{}
	w, _ := comm.NewWorld(p, nil)
	ins := make([][]string, p)
	outs := make([][]string, p)
	var mu sync.Mutex
	err := w.Run(func(c *comm.Comm) error {
		src := prng.NewXoshiro256(uint64(c.Rank()) + 17)
		local := make([]string, perRank)
		for i := range local {
			switch prng.Uint64n(src, 3) {
			case 0: // short word
				local[i] = fmt.Sprintf("w%06d", prng.Uint64n(src, 100000))
			case 1: // long shared prefix, differing beyond 16 bytes
				local[i] = fmt.Sprintf("shared-prefix-0123456789-%06d", prng.Uint64n(src, 100000))
			default: // duplicates
				local[i] = "the-same-string"
			}
		}
		out, err := Sort(c, local, ops, Config{})
		if err != nil {
			return err
		}
		// The long-prefix strings form one indivisible run (they share
		// their first 16 bytes), so per-rank sizes may deviate by up to
		// that run's size; order and permutation must still be exact.
		if len(out) > 3*perRank {
			t.Errorf("rank %d: load %d beyond the indivisible-run bound", c.Rank(), len(out))
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var all, got []string
	for _, in := range ins {
		all = append(all, in...)
	}
	prev := ""
	first := true
	for r, out := range outs {
		for i, s := range out {
			if !first && s < prev {
				t.Fatalf("order violated at rank %d index %d: %q < %q", r, i, s, prev)
			}
			prev, first = s, false
		}
		got = append(got, out...)
	}
	sort.Strings(all)
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("not a permutation at %d: %q vs %q", i, got[i], all[i])
		}
	}
}

// TestSortStringsPerfectWhenSeparable: distinct short strings (all
// differing within 16 bytes) must partition perfectly.
func TestSortStringsPerfectWhenSeparable(t *testing.T) {
	const p, perRank = 5, 300
	ops := keys.String{}
	w, _ := comm.NewWorld(p, nil)
	err := w.Run(func(c *comm.Comm) error {
		local := make([]string, perRank)
		for i := range local {
			local[i] = fmt.Sprintf("k%03d-%07d", i%97, i*p+c.Rank())
		}
		out, err := Sort(c, local, ops, Config{})
		if err != nil {
			return err
		}
		if len(out) != perRank {
			t.Errorf("rank %d: perfect partitioning violated: %d", c.Rank(), len(out))
		}
		if !IsGloballySorted(c, out, ops) {
			t.Errorf("rank %d: not globally sorted", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
