package core

import (
	"sort"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/workload"
)

func TestQuantilesEquiDepth(t *testing.T) {
	const p, perRank, q = 6, 1500, 10
	locals := make([][]uint64, p)
	var all []uint64
	for r := 0; r < p; r++ {
		spec := workload.Spec{Dist: workload.Zipf, Seed: 101, Span: 1e9}
		locals[r], _ = spec.Rank(r, perRank)
		all = append(all, locals[r]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	w, _ := comm.NewWorld(p, nil)
	var once sync.Once
	cuts := make([]uint64, 0, q-1)
	err := w.Run(func(c *comm.Comm) error {
		got, err := Quantiles(c, locals[c.Rank()], q, u64, Config{})
		if err != nil {
			return err
		}
		once.Do(func() { cuts = append(cuts, got...) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != q-1 {
		t.Fatalf("got %d cuts", len(cuts))
	}
	n := int64(len(all))
	for i, cut := range cuts {
		target := n * int64(i+1) / int64(q)
		// Rank of the cut must bracket the target (Definition 4).
		lo := int64(sort.Search(len(all), func(j int) bool { return all[j] >= cut }))
		hi := int64(sort.Search(len(all), func(j int) bool { return all[j] > cut }))
		if !(lo < target && target <= hi) {
			t.Errorf("cut %d: rank window [%d,%d] misses target %d", i, lo, hi, target)
		}
	}
}

func TestQuantilesSingleBucket(t *testing.T) {
	w, _ := comm.NewWorld(3, nil)
	err := w.Run(func(c *comm.Comm) error {
		cuts, err := Quantiles(c, []uint64{1, 2, 3}, 1, u64, Config{})
		if err != nil {
			return err
		}
		if len(cuts) != 0 {
			t.Errorf("one bucket needs no cuts, got %d", len(cuts))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesMedianMatchesDSelect(t *testing.T) {
	const p, perRank = 4, 3000
	w, _ := comm.NewWorld(p, nil)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 103, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		cuts, err := Quantiles(c, local, 2, u64, Config{})
		if err != nil {
			return err
		}
		med, err := DSelect(c, local, int64(p*perRank/2), u64, Config{})
		if err != nil {
			return err
		}
		// The 2-quantile cut has rank window containing N/2; DSelect's
		// median is the exact N/2-th element.  They agree on uniform
		// unique-ish data to within neighbouring elements.
		if cuts[0] > med+2e6 || med > cuts[0]+2e6 {
			t.Errorf("median %d and 2-quantile %d diverge", med, cuts[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesValidation(t *testing.T) {
	w, _ := comm.NewWorld(1, nil)
	err := w.Run(func(c *comm.Comm) error {
		if _, err := Quantiles(c, []uint64{1}, 0, u64, Config{}); err == nil {
			t.Error("q=0 must be rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
