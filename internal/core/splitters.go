package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/psort"
	"dhsort/internal/sortutil"
	"dhsort/internal/xmath"
)

// splitterState tracks one splitter's refinement interval in the embedded
// key space: the (S_il, S_i, S_iu) tuple of §V-A, with the bounds kept as
// bit points so that probe placement (Algorithm 3, line 6 — generalized
// from the bisection midpoint to k evenly spaced points) always makes
// progress and converges within the key width.
type splitterState[K any] struct {
	lo, hi xmath.U128
	// warm marks bounds seeded from Config.Warm: if such an interval
	// collapses without satisfying the histogram condition, the seed was
	// stale and the state falls back to the cold full-range bounds
	// instead of accepting a wrong point.
	warm  bool
	done  bool
	value K
}

// minMax carries one rank's key extrema through a reduction.
type minMax struct {
	Has      bool
	Min, Max xmath.U128
}

func mergeMinMax(a, b minMax) minMax {
	switch {
	case !a.Has:
		return b
	case !b.Has:
		return a
	}
	out := minMax{Has: true, Min: a.Min, Max: a.Max}
	if b.Min.Less(out.Min) {
		out.Min = b.Min
	}
	if out.Max.Less(b.Max) {
		out.Max = b.Max
	}
	return out
}

// placeProbes appends the probe points for one unfinished splitter interval
// [lo, hi] to dst and returns the extended slice.  k = 1 yields the paper's
// bisection midpoint; k > 1 yields k evenly spaced interior points (or, for
// intervals narrower than k, every candidate point), so one round narrows
// the interval by a factor of k+1 instead of 2.  Probe placement is a pure
// function of the bounds — every rank computes the identical list, keeping
// the ALLREDUCE payload consistent across the collective.
func placeProbes(lo, hi xmath.U128, k int, dst []xmath.U128) []xmath.U128 {
	if k <= 1 {
		return append(dst, lo.Avg(hi))
	}
	width := hi.Sub(lo)
	if width.Hi == 0 && width.Lo <= uint64(k) {
		// Narrow interval: probe every candidate in [lo, hi).
		if width.Lo == 0 {
			return append(dst, lo)
		}
		for b := lo; b.Less(hi); b = b.Inc() {
			dst = append(dst, b)
		}
		return dst
	}
	step := width.Div64(uint64(k) + 1)
	b := lo
	for j := 0; j < k; j++ {
		b = b.Add(step)
		dst = append(dst, b)
	}
	return dst
}

// clampWarm clamps a warm-start interval to the run's global key extrema
// and reports whether anything of it survives as a usable bound.
func clampWarm(w WarmInterval, min, max xmath.U128) (xmath.U128, xmath.U128, bool) {
	lo, hi := w.Lo, w.Hi
	if lo.Less(min) {
		lo = min
	}
	if max.Less(hi) {
		hi = max
	}
	return lo, hi, lo.Less(hi)
}

// refineSplitter applies one round's global histogram counts to a single
// splitter state.  probes[j] is the j-th probe (ascending), global[2j] and
// global[2j+1] its global lower/upper rank (L and U of Algorithm 2), T the
// target rank.  Acceptance takes the first probe satisfying the Definition 4
// condition; otherwise the counts' monotonicity brackets the answer between
// the largest too-low probe and the smallest too-high probe, so every failed
// probe tightens a bound and the round always makes progress.
func refineSplitter[K any](st *splitterState[K], probes []xmath.U128, mids []K, global []int64, T, tol int64) {
	newLo, newHi := st.lo, st.hi
scan:
	for j := range probes {
		L, U := global[2*j], global[2*j+1]
		switch {
		case L-tol < T && T <= U+tol:
			st.done = true
			st.value = mids[j]
			return
		case U < T:
			// Too few elements at or below the probe: the answer is
			// strictly above.  Probes ascend, so the last one wins.
			newLo = probes[j].Inc()
		default:
			// Too many strictly below (L-tol >= T): the answer is at or
			// below this probe — and every later probe only counts more.
			newHi = probes[j]
			break scan
		}
	}
	st.lo, st.hi = newLo, newHi
}

// FindSplitters determines the P-1 splitter values for the given rank
// targets over the locally sorted partition (Algorithms 2+3).  targets[i]
// is the global rank T_i that splitter i must hit: splitter i is accepted
// when its global histogram satisfies L_i - tol < T_i <= U_i + tol
// (Definition 4, relaxed by the ε tolerance of Definition 1).
//
// cfg.Probes > 1 places that many probes per unfinished boundary per round
// (k-ary refinement); cfg.Warm seeds boundaries with intervals from an
// earlier run.  Converged boundaries leave the histogram payload entirely,
// so late rounds reduce O(active) counters, and the probe/histogram buffers
// are reused across rounds — the refinement loop itself allocates nothing.
//
// Returns the splitter values (identical on every rank) and the number of
// histogramming iterations.  When the input holds fewer distinct keys than
// ranks and the uniqueness transformation is disabled, intervals can
// collapse before the condition holds; such splitters finish at their
// collapsed point and only global order — not balance — is guaranteed.
func FindSplitters[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], targets []int64, tol int64, cfg Config) ([]K, int) {
	return findSplittersOn[K](c, memSource[K]{s: sorted, ops: ops}, ops, targets, tol, cfg)
}

// findSplittersOn is FindSplitters over a sortedSource, so the same
// refinement loop serves the resident and the external-memory partition.
// Every collective payload and cost-model call depends only on element
// counts and probe bounds, never on the backing.
func findSplittersOn[K any](c *comm.Comm, src sortedSource[K], ops keys.Ops[K], targets []int64, tol int64, cfg Config) ([]K, int) {
	nsplit := len(targets)
	if nsplit == 0 {
		return nil, 0
	}
	model := c.Model()
	k := cfg.probes()

	// Global key extrema: one O(log P) reduction (§V-A).
	local := minMax{}
	if mn, mx, ok := src.Extrema(); ok {
		local = minMax{Has: true, Min: mn, Max: mx}
	}
	mm := comm.AllreduceOne(c, local, mergeMinMax)
	if !mm.Has {
		// Globally empty input: any splitter values do.
		return make([]K, nsplit), 0
	}

	totalN := comm.AllreduceOne(c, int64(src.Len()), func(a, b int64) int64 { return a + b })

	states := make([]splitterState[K], nsplit)
	for i := range states {
		states[i] = splitterState[K]{lo: mm.Min, hi: mm.Max}
		// Degenerate targets need no search.
		if targets[i] <= 0 {
			states[i].done = true
			states[i].value = ops.FromBits(mm.Min)
		} else if targets[i] >= totalN {
			states[i].done = true
			states[i].value = ops.FromBits(mm.Max)
		}
	}
	if len(cfg.Warm) == nsplit {
		warmed := false
		for i := range states {
			if states[i].done {
				continue
			}
			if lo, hi, ok := clampWarm(cfg.Warm[i], mm.Min, mm.Max); ok {
				states[i].lo, states[i].hi, states[i].warm = lo, hi, true
				warmed = true
			}
		}
		if warmed {
			cfg.Recorder.SetWarmStart()
		}
	}
	if k > 1 {
		cfg.Recorder.SetProbes(k)
	}

	// Round buffers, sized once for the worst round (every boundary
	// unfinished, k probes each) and resliced per round: the loop body is
	// allocation-free.
	iters := 0
	active := make([]int, 0, nsplit)
	offs := make([]int, nsplit+1)
	probeBits := make([]xmath.U128, 0, k*nsplit)
	mids := make([]K, k*nsplit)
	hist := make([]int64, 2*k*nsplit)
	// The search body and the reduction operator are built once: a closure
	// constructed inside the loop would put one allocation back per round.
	var (
		curMids []K
		curHist []int64
	)
	search := func(pi int) {
		m := ops.FromBits(probeBits[pi])
		curMids[pi] = m
		curHist[2*pi] = int64(src.LowerBound(m))
		curHist[2*pi+1] = int64(src.UpperBound(m))
	}
	addInt64 := func(a, b int64) int64 { return a + b }
	for iters < cfg.maxIters() {
		active = active[:0]
		for i := range states {
			if !states[i].done {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		iters++
		cfg.Recorder.AddIteration()

		// Probe placement: k points per unfinished boundary.  Converged
		// boundaries have left the payload (active-set compaction).
		probeBits = probeBits[:0]
		offs[0] = 0
		for ai, i := range active {
			probeBits = placeProbes(states[i].lo, states[i].hi, k, probeBits)
			offs[ai+1] = len(probeBits)
		}
		np := len(probeBits)
		curMids = mids[:np]
		curHist = hist[:2*np]

		// Local histogram: lower/upper bounds of each probe by binary
		// search in the locally sorted partition (Alg. 3 line 7).  The
		// searches are independent reads, so they fork across the thread
		// budget; the cost model prices every search of the round.
		workers := searchWorkers(cfg.threads(), np, src.Len())
		psort.ParallelFor(np, workers, search)
		if model != nil {
			c.Clock().Advance(model.Threaded(model.SearchCost(src.Len(), 2*np), workers))
		}

		// Global histogram: one ALLREDUCE over the active probes
		// (Alg. 3 line 8), reduced in place into the round buffer.
		global := comm.AllreduceInPlace(c, curHist, addInt64)

		// Validate each splitter against its probes (Algorithm 2).
		for ai, i := range active {
			st := &states[i]
			lo, hi := offs[ai], offs[ai+1]
			refineSplitter(st, probeBits[lo:hi], curMids[lo:hi], global[2*lo:2*hi], targets[i], tol)
			if !st.done && !st.lo.Less(st.hi) {
				if st.warm {
					// A stale warm interval collapsed without ever
					// satisfying the condition: restart this boundary
					// from the cold full-range bounds.
					st.lo, st.hi, st.warm = mm.Min, mm.Max, false
					continue
				}
				// Interval collapsed (duplicate keys without the
				// uniqueness transformation): accept the point.
				st.done = true
				st.value = ops.FromBits(st.hi)
			}
		}
	}

	out := make([]K, nsplit)
	for i, st := range states {
		if !st.done {
			// Iteration budget exhausted; accept the current interval top.
			st.value = ops.FromBits(st.hi)
		}
		out[i] = st.value
	}
	// Defensive monotonicity (valid splitter ranges for increasing targets
	// are ascending, but collapsed intervals may break ties).
	sortutil.Sort(out, ops.Less)
	if cfg.SplitterSink != nil {
		bits := make([]xmath.U128, nsplit)
		for i := range out {
			bits[i] = ops.ToBits(out[i])
		}
		cfg.SplitterSink(bits, iters)
	}
	return out, iters
}
