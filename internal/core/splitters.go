package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/psort"
	"dhsort/internal/sortutil"
	"dhsort/internal/xmath"
)

// splitterState tracks one splitter's bisection interval in the embedded
// key space: the (S_il, S_i, S_iu) tuple of §V-A, with the bounds kept as
// bit points so that S_i <- (S_il + S_iu)/2 (Algorithm 3, line 6) always
// makes progress and converges within the key width.
type splitterState[K any] struct {
	lo, hi xmath.U128
	done   bool
	value  K
}

// minMax carries one rank's key extrema through a reduction.
type minMax struct {
	Has      bool
	Min, Max xmath.U128
}

func mergeMinMax(a, b minMax) minMax {
	switch {
	case !a.Has:
		return b
	case !b.Has:
		return a
	}
	out := minMax{Has: true, Min: a.Min, Max: a.Max}
	if b.Min.Less(out.Min) {
		out.Min = b.Min
	}
	if out.Max.Less(b.Max) {
		out.Max = b.Max
	}
	return out
}

// FindSplitters determines the P-1 splitter values for the given rank
// targets over the locally sorted partition (Algorithms 2+3).  targets[i]
// is the global rank T_i that splitter i must hit: splitter i is accepted
// when its global histogram satisfies L_i - tol < T_i <= U_i + tol
// (Definition 4, relaxed by the ε tolerance of Definition 1).
//
// Returns the splitter values (identical on every rank) and the number of
// histogramming iterations.  When the input holds fewer distinct keys than
// ranks and the uniqueness transformation is disabled, intervals can
// collapse before the condition holds; such splitters finish at their
// collapsed point and only global order — not balance — is guaranteed.
func FindSplitters[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], targets []int64, tol int64, cfg Config) ([]K, int) {
	nsplit := len(targets)
	if nsplit == 0 {
		return nil, 0
	}
	model := c.Model()

	// Global key extrema: one O(log P) reduction (§V-A).
	local := minMax{}
	if len(sorted) > 0 {
		local = minMax{Has: true, Min: ops.ToBits(sorted[0]), Max: ops.ToBits(sorted[len(sorted)-1])}
	}
	mm := comm.AllreduceOne(c, local, mergeMinMax)
	if !mm.Has {
		// Globally empty input: any splitter values do.
		return make([]K, nsplit), 0
	}

	totalN := comm.AllreduceOne(c, int64(len(sorted)), func(a, b int64) int64 { return a + b })

	states := make([]splitterState[K], nsplit)
	for i := range states {
		states[i] = splitterState[K]{lo: mm.Min, hi: mm.Max}
		// Degenerate targets need no search.
		if targets[i] <= 0 {
			states[i].done = true
			states[i].value = ops.FromBits(mm.Min)
		} else if targets[i] >= totalN {
			states[i].done = true
			states[i].value = ops.FromBits(mm.Max)
		}
	}

	iters := 0
	active := make([]int, 0, nsplit)
	hist := make([]int64, 0, 2*nsplit)
	for iters < cfg.maxIters() {
		active = active[:0]
		for i := range states {
			if !states[i].done {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		iters++
		cfg.Recorder.AddIteration()

		// Local histogram: lower/upper bounds of each candidate by
		// binary search in the locally sorted partition (Alg. 3 line 7).
		// The searches are independent reads, so they fork across the
		// thread budget.
		hist = append(hist[:0], make([]int64, 2*len(active))...)
		mids := make([]K, len(active))
		workers := searchWorkers(cfg.threads(), len(active), len(sorted))
		psort.ParallelFor(len(active), workers, func(ai int) {
			st := &states[active[ai]]
			mid := ops.FromBits(st.lo.Avg(st.hi))
			mids[ai] = mid
			hist[2*ai] = int64(sortutil.LowerBound(sorted, mid, ops.Less))
			hist[2*ai+1] = int64(sortutil.UpperBound(sorted, mid, ops.Less))
		})
		if model != nil {
			c.Clock().Advance(model.Threaded(model.SearchCost(len(sorted), 2*len(active)), workers))
		}

		// Global histogram: one ALLREDUCE (Alg. 3 line 8).
		global := comm.Allreduce(c, hist, func(a, b int64) int64 { return a + b })

		// Validate each splitter (Algorithm 2).
		for ai, i := range active {
			st := &states[i]
			L, U := global[2*ai], global[2*ai+1]
			T := targets[i]
			midBits := st.lo.Avg(st.hi)
			switch {
			case L-tol < T && T <= U+tol:
				st.done = true
				st.value = mids[ai]
			case U < T:
				// Too few elements at or below the probe: move S_il up.
				st.lo = midBits.Inc()
			default:
				// Too many strictly below: move S_iu down to the probe.
				st.hi = midBits
			}
			if !st.done && !st.lo.Less(st.hi) {
				// Interval collapsed (duplicate keys without the
				// uniqueness transformation): accept the point.
				st.done = true
				st.value = ops.FromBits(st.hi)
			}
		}
	}

	out := make([]K, nsplit)
	for i, st := range states {
		if !st.done {
			// Iteration budget exhausted; accept the current interval top.
			st.value = ops.FromBits(st.hi)
		}
		out[i] = st.value
	}
	// Defensive monotonicity (valid splitter ranges for increasing targets
	// are ascending, but collapsed intervals may break ties).
	sortutil.Sort(out, ops.Less)
	return out, iters
}
