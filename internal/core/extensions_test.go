package core

import (
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
)

func TestSortMergeOverlap(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipf, workload.AllEqual} {
			spec := workload.Spec{Dist: dist, Seed: uint64(p) + 80, Span: 1e9}
			ins, outs := runSort(t, p, spec, 300, Config{Merge: MergeOverlap}, nil)
			checkSorted(t, ins, outs, true, 0)
		}
	}
}

func TestSortExchangeAlgorithms(t *testing.T) {
	for _, alg := range []comm.AlltoallAlgorithm{comm.AlltoallAuto, comm.AlltoallPairwise, comm.AlltoallOneFactor, comm.AlltoallBruck, comm.AlltoallHierarchical} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 81, Span: 1e9}
		ins, outs := runSort(t, 9, spec, 400, Config{Exchange: alg}, nil)
		checkSorted(t, ins, outs, true, 0)
	}
}

func TestSortHierarchicalExchangeUnderModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 82, Span: 1e9}
	ins, outs := runSort(t, 16, spec, 300, Config{Exchange: comm.AlltoallHierarchical}, model)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortInvalidExchange(t *testing.T) {
	w, _ := comm.NewWorld(1, nil)
	err := w.Run(func(c *comm.Comm) error {
		_, err := Sort(c, []uint64{1}, u64, Config{Exchange: comm.AlltoallAlgorithm(42)})
		return err
	})
	if err == nil {
		t.Fatal("invalid exchange algorithm must be rejected")
	}
}

func TestMergeOverlapUnderModelOverlapsCommunication(t *testing.T) {
	// The fused exchange should not be slower than exchange-then-resort
	// when merging dominates, and must produce identical results.
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 83, Span: 1e9}
	_, a := runSort(t, 8, spec, 500, Config{Merge: MergeOverlap}, model)
	_, b := runSort(t, 8, spec, 500, Config{Merge: MergeResort}, model)
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("strategies disagree on rank %d sizes", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("strategies disagree on rank %d data", r)
			}
		}
	}
}

func TestFindSplittersViaSelectionMatchesHistogram(t *testing.T) {
	// Both determination methods must yield splitters satisfying
	// Definition 4 for the same targets.
	p, perRank := 6, 700
	w, _ := comm.NewWorld(p, nil)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Normal, Seed: 84, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		sorted := append([]uint64(nil), local...)
		sortutil.Sort(sorted, u64.Less)
		targets := make([]int64, p-1)
		for i := range targets {
			targets[i] = int64((i + 1) * perRank)
		}
		bySel, err := FindSplittersViaSelection(c, local, u64, targets, Config{})
		if err != nil {
			return err
		}
		hist := make([]int64, 0, 2*len(bySel))
		for _, s := range bySel {
			hist = append(hist,
				int64(sortutil.LowerBound(sorted, s, u64.Less)),
				int64(sortutil.UpperBound(sorted, s, u64.Less)))
		}
		global := comm.Allreduce(c, hist, func(a, b int64) int64 { return a + b })
		for i, T := range targets {
			L, U := global[2*i], global[2*i+1]
			if !(L < T && T <= U) {
				t.Errorf("selection splitter %d: L=%d T=%d U=%d", i, L, T, U)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type record = keys.Pair[uint64, [2]float64]

func TestSortPairsWithSatelliteData(t *testing.T) {
	// Records sorted by key; satellite payloads must travel with their
	// keys (the std::sort-on-structs use case).
	p, perRank := 6, 300
	ops := keys.NewPairOps[uint64, [2]float64](keys.Uint64{})
	w, _ := comm.NewWorld(p, nil)
	outs := make([][]record, p)
	var mu sync.Mutex
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.DuplicateHeavy, Seed: 85, Span: 1e9}
		raw, _ := spec.Rank(c.Rank(), perRank)
		local := make([]record, len(raw))
		for i, k := range raw {
			// Payload encodes (key, origin) so transport can be checked.
			local[i] = record{Key: k, Val: [2]float64{float64(k), float64(c.Rank())}}
		}
		out, err := Sort(c, local, ops, Config{})
		if err != nil {
			return err
		}
		if len(out) != perRank {
			t.Errorf("rank %d: perfect partitioning violated: %d", c.Rank(), len(out))
		}
		mu.Lock()
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	first := true
	originCount := map[float64]int{}
	for r, out := range outs {
		for i, rec := range out {
			if rec.Val[0] != float64(rec.Key) {
				t.Fatalf("rank %d index %d: satellite data detached from key", r, i)
			}
			if !first && rec.Key < prev {
				t.Fatalf("order violated at rank %d index %d", r, i)
			}
			prev, first = rec.Key, false
			originCount[rec.Val[1]]++
		}
	}
	// Every origin's records must all still exist.
	for o := 0; o < p; o++ {
		if originCount[float64(o)] != perRank {
			t.Fatalf("records from origin %d lost: %d", o, originCount[float64(o)])
		}
	}
}

func TestPairOpsBytesIncludesPayload(t *testing.T) {
	ops := keys.NewPairOps[uint64, [2]float64](keys.Uint64{})
	if ops.Bytes() != 8+16 {
		t.Fatalf("Bytes = %d, want 24", ops.Bytes())
	}
}

func TestRadixLocalSortCompatible(t *testing.T) {
	// The radix kernel must agree with the introsort used by Sort.
	spec := workload.Spec{Dist: workload.Uniform, Seed: 86, Span: 0}
	a, _ := spec.Rank(0, 50000)
	b := append([]uint64(nil), a...)
	sortutil.RadixSortUint64(a)
	sortutil.Sort(b, u64.Less)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}
