package core

import (
	"time"

	"dhsort/internal/keys"
	"dhsort/internal/psort"
	"dhsort/internal/simnet"
	"dhsort/internal/sortutil"
)

// Local Sort kernel names, recorded per run in the metrics document
// (Record.LocalSortKernel).
const (
	// KernelRadix is the LSD radix fast path for keys with a fixed-width
	// uint64 image (keys.RadixOps).
	KernelRadix = "radix"
	// KernelTaskMerge is the fork-join task merge sort used for
	// comparison-only keys when the thread budget exceeds one.
	KernelTaskMerge = "task-merge"
	// KernelIntrosort is the sequential comparison sort fallback.
	KernelIntrosort = "introsort"
)

// LocalSort sorts a in place with the fastest applicable kernel — the
// dispatch at the heart of the Local Sort superstep (§VI-B): LSD radix when
// ops advertises a fixed-width key image, the fork-join task merge sort
// when only comparisons are available but threads > 1, and the sequential
// introsort otherwise.  Scratch comes from ar (nil means allocate).  It
// returns the kernel name for the metrics record and, for the radix
// kernel, the number of scatter passes executed (the honest input to
// simnet's RadixSortCost; 0 for the other kernels).
func LocalSort[K any](a []K, ops keys.Ops[K], threads int, ar *sortutil.Arena[K]) (kernel string, radixPasses int) {
	return LocalSortKernel(a, ops, "", threads, ar)
}

// LocalSortKernel is LocalSort with an explicit kernel override (see
// Config.Kernel); empty selects the automatic dispatch.  A forced radix
// kernel on keys without a fixed-width image falls back to the comparison
// kernels, so the returned name is always the kernel that actually ran.
func LocalSortKernel[K any](a []K, ops keys.Ops[K], force string, threads int, ar *sortutil.Arena[K]) (kernel string, radixPasses int) {
	if r, ok := keys.Radix(ops); ok && (force == "" || force == KernelRadix) {
		return KernelRadix, radixSortOps(a, ops, r, ar)
	}
	if (threads > 1 && force == "") || force == KernelTaskMerge {
		psort.ParallelTaskMergeSortScratch(a, ops.Less, threads, ar.Vals(len(a)))
		return KernelTaskMerge, 0
	}
	sortutil.Sort(a, ops.Less)
	return KernelIntrosort, 0
}

// radixSortOps runs the LSD kernel for ops.  Key types with a uniqueness
// suffix (keys.RadixSuffixOps) sort by the suffix first and the primary
// image second: both stages are stable, so the composition orders by
// (primary, suffix) — the §V-A transformed comparison.
func radixSortOps[K any](a []K, ops keys.Ops[K], r keys.RadixOps[K], ar *sortutil.Arena[K]) int {
	var zero K
	passes := 0
	if s, ok := any(ops).(keys.RadixSuffixOps[K]); ok {
		_, sw := s.RadixSuffix(zero)
		passes += sortutil.RadixSortFuncScratch(a, func(k K) uint64 { v, _ := s.RadixSuffix(k); return v }, sw, ar)
	}
	_, w := r.RadixKey(zero)
	passes += sortutil.RadixSortFuncScratch(a, func(k K) uint64 { v, _ := r.RadixKey(k); return v }, w, ar)
	return passes
}

// LocalSortCost prices the chosen kernel on the virtual clock for n
// (virtually scaled) keys.
func LocalSortCost(m *simnet.CostModel, kernel string, n, radixPasses, threads int) time.Duration {
	switch kernel {
	case KernelRadix:
		return m.RadixSortCost(n, radixPasses)
	case KernelTaskMerge:
		return m.Threaded(m.SortCost(n), threads)
	}
	return m.SortCost(n)
}

// searchParallelCutoff is the partition size below which per-splitter
// binary searches are not worth forking for.
const searchParallelCutoff = 4096

// searchWorkers returns the worker count for `tasks` independent binary
// searches over an n-element sorted partition — the Histogram superstep's
// parallelism (the searches are independent reads).  The choice feeds the
// cost model, so it depends only on the configuration and input size.
func searchWorkers(threads, tasks, n int) int {
	if threads <= 1 || tasks < 2 || n < searchParallelCutoff {
		return 1
	}
	if threads > tasks {
		return tasks
	}
	return threads
}
