package core

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/store"
	"dhsort/internal/xmath"
)

// The external-memory path (Config.MemBudget): when a rank's working set
// exceeds the budget, local sort produces budget-sized sorted runs in the
// out-of-core store, a loser-tree k-way merge combines them into the rank's
// sorted partition run, the search supersteps binary-search that run through
// a block cache, and the exchange writes received chunks to scratch runs
// instead of accumulating slices.  Everything the collective observes — the
// communication operations, their payload sizes, and every cost-model call —
// is a function of element counts only, never of the store backing, which is
// what makes a memory-backed and a filesystem-backed run of the same input
// bit-identical in output and virtual makespan.

// spillActive reports whether the configuration runs the external-memory
// path for this key type.  It must be uniform across the collective (it
// depends only on the shared Config and Ops), because it switches the
// exchange to the fused 1-factor schedule on every rank.
func spillActive[K any](cfg Config, ops keys.Ops[K]) bool {
	return cfg.MemBudget > 0 && keys.Lossless(ops)
}

// spillPlan carries one rank's external-memory execution parameters.
type spillPlan[K any] struct {
	st     store.Store
	shared bool // st is visible to the other ranks (durable checkpoints)
	prefix string
	chunk  int // records per budget-sized resident chunk
	fanIn  int
}

// newSpillPlan resolves the store and chunk geometry for this rank.  The
// store is the configured shared one when present; otherwise a run-private
// in-memory store (budget-bounded execution without a scratch directory).
func newSpillPlan[K any](c *comm.Comm, ops keys.Ops[K], cfg Config) *spillPlan[K] {
	st := cfg.durableStore()
	shared := st != nil
	if st == nil {
		st = store.NewMem()
	}
	chunk := int(cfg.MemBudget / int64(ops.Bytes()))
	if chunk < 1 {
		chunk = 1
	}
	return &spillPlan[K]{
		st:     st,
		shared: shared,
		prefix: fmt.Sprintf("spill/w%d", c.WorldRank()),
		chunk:  chunk,
		fanIn:  cfg.fanIn(),
	}
}

// sortedSource abstracts this rank's locally sorted partition for the
// search-only supersteps (Splitting, ComputeCuts), so they run unchanged
// over a resident slice or a disk-resident run.
type sortedSource[K any] interface {
	Len() int
	// Extrema returns the smallest and largest key images; ok is false for
	// an empty partition.
	Extrema() (mn, mx xmath.U128, ok bool)
	// LowerBound returns the count of elements ordering strictly before k;
	// UpperBound the count ordering at or before it.  Both must agree with
	// binary search under ops.Less (the embedding is an order isomorphism,
	// so searching images with needle ToBits(k) is exactly that).
	LowerBound(k K) int
	UpperBound(k K) int
}

// memSource is the resident sortedSource.
type memSource[K any] struct {
	s   []K
	ops keys.Ops[K]
}

func (m memSource[K]) Len() int { return len(m.s) }

func (m memSource[K]) Extrema() (xmath.U128, xmath.U128, bool) {
	if len(m.s) == 0 {
		return xmath.U128{}, xmath.U128{}, false
	}
	return m.ops.ToBits(m.s[0]), m.ops.ToBits(m.s[len(m.s)-1]), true
}

func (m memSource[K]) LowerBound(k K) int { return lowerBoundSlice(m.s, k, m.ops.Less) }
func (m memSource[K]) UpperBound(k K) int { return upperBoundSlice(m.s, k, m.ops.Less) }

// extBlock is the partition run's search block: the resident footprint of
// the block cache is one block, regardless of partition size.
const extBlock = 512

// extPartition is a sorted partition living as a sealed run in the store.
// Searches go through a one-block cache behind a mutex (the per-splitter
// searches fork across the thread budget); a store read failure mid-search
// panics — graceful degradation on corrupt runs belongs to the checkpoint
// restore path, which audits before trusting.
type extPartition[K any] struct {
	st    store.Store
	name  string
	count int64
	ops   keys.Ops[K]

	mu    sync.Mutex
	rdr   store.Reader
	blk   []xmath.U128
	blkLo int64
}

func openExtPartition[K any](st store.Store, name string, ops keys.Ops[K]) (*extPartition[K], error) {
	count, err := st.Len(name)
	if err != nil {
		return nil, err
	}
	return &extPartition[K]{st: st, name: name, count: count, ops: ops}, nil
}

// reset repoints the partition at another sealed run (checkpoint restore)
// and drops all cached state.
func (e *extPartition[K]) reset(name string, count int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rdr != nil {
		e.rdr.Close()
		e.rdr = nil
	}
	e.name, e.count, e.blk, e.blkLo = name, count, nil, 0
}

// dropCache models the loss of a crashed process's volatile state: the block
// cache and open reader go away, the sealed run on the store does not.
func (e *extPartition[K]) dropCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rdr != nil {
		e.rdr.Close()
		e.rdr = nil
	}
	e.blk, e.blkLo = nil, 0
}

func (e *extPartition[K]) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rdr == nil {
		return nil
	}
	err := e.rdr.Close()
	e.rdr = nil
	return err
}

func (e *extPartition[K]) Len() int { return int(e.count) }

func (e *extPartition[K]) Extrema() (xmath.U128, xmath.U128, bool) {
	if e.count == 0 {
		return xmath.U128{}, xmath.U128{}, false
	}
	return e.img(0), e.img(e.count - 1), true
}

// img returns the key image at record i through the block cache.
func (e *extPartition[K]) img(i int64) xmath.U128 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i >= e.blkLo && i < e.blkLo+int64(len(e.blk)) {
		return e.blk[i-e.blkLo]
	}
	lo := i - i%extBlock
	want := e.count - lo
	if want > extBlock {
		want = extBlock
	}
	if cap(e.blk) < int(want) {
		e.blk = make([]xmath.U128, want)
	}
	e.blk = e.blk[:want]
	e.readAt(lo, e.blk)
	e.blkLo = lo
	return e.blk[i-lo]
}

// readAt fills dst with the records at [rec, rec+len(dst)); the caller holds
// the mutex.
func (e *extPartition[K]) readAt(rec int64, dst []xmath.U128) {
	if e.rdr == nil {
		r, err := e.st.Open(e.name)
		if err != nil {
			panic(fmt.Errorf("core: spilled partition %q: %w", e.name, err))
		}
		e.rdr = r
	}
	if err := e.rdr.SeekRecord(rec); err != nil {
		panic(fmt.Errorf("core: spilled partition %q: %w", e.name, err))
	}
	for len(dst) > 0 {
		n, err := e.rdr.Read(dst)
		if err != nil && err != io.EOF {
			panic(fmt.Errorf("core: spilled partition %q: %w", e.name, err))
		}
		if n == 0 {
			panic(fmt.Errorf("core: spilled partition %q ended %d records early", e.name, len(dst)))
		}
		dst = dst[n:]
	}
}

func (e *extPartition[K]) LowerBound(k K) int {
	needle := e.ops.ToBits(k)
	return sort.Search(int(e.count), func(i int) bool { return !e.img(int64(i)).Less(needle) })
}

func (e *extPartition[K]) UpperBound(k K) int {
	needle := e.ops.ToBits(k)
	return sort.Search(int(e.count), func(i int) bool { return needle.Less(e.img(int64(i))) })
}

// segment decodes the record range [lo, hi) into a fresh slice.
func (e *extPartition[K]) segment(lo, hi int) []K {
	if hi <= lo {
		return nil
	}
	imgs := make([]xmath.U128, hi-lo)
	e.mu.Lock()
	e.readAt(int64(lo), imgs)
	e.mu.Unlock()
	out := make([]K, len(imgs))
	for i, b := range imgs {
		out[i] = e.ops.FromBits(b)
	}
	return out
}

// materialize decodes the whole partition.
func (e *extPartition[K]) materialize() []K {
	return e.segment(0, int(e.count))
}

// lowerBoundSlice / upperBoundSlice are the resident binary searches
// (identical to sortutil's; re-declared here to keep the source types free
// of an extra import cycle concern).
func lowerBoundSlice[K any](s []K, k K, less func(a, b K) bool) int {
	return sort.Search(len(s), func(i int) bool { return !less(s[i], k) })
}

func upperBoundSlice[K any](s []K, k K, less func(a, b K) bool) int {
	return sort.Search(len(s), func(i int) bool { return less(k, s[i]) })
}

// writeRunKeys seals ks (in order) as the named run, encoding each key to
// its 128-bit image.
func writeRunKeys[K any](st store.Store, name string, ks []K, ops keys.Ops[K]) error {
	w, err := st.Create(name)
	if err != nil {
		return err
	}
	buf := make([]xmath.U128, 0, 4096)
	for _, k := range ks {
		buf = append(buf, ops.ToBits(k))
		if len(buf) == cap(buf) {
			if err := w.Append(buf); err != nil {
				w.Close()
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if err := w.Append(buf); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// extSortLocal is the Local Sort superstep of the external-memory path:
// budget-sized chunks are sorted resident through the same kernel dispatch
// as the in-memory sort (each chunk priced on the virtual clock), sealed as
// store runs, and merged by the loser tree into the rank's sorted partition
// run.  The merge is priced as the sequential tournament it is.
func extSortLocal[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config, plan *spillPlan[K]) (*extPartition[K], error) {
	model := c.Model()
	scale := cfg.scale()
	threads := cfg.threads()
	rec := cfg.Recorder
	n := len(local)

	nRuns := (n + plan.chunk - 1) / plan.chunk
	if nRuns < 1 {
		nRuns = 1 // an empty partition still seals an empty run
	}
	buf := make([]K, 0, min(plan.chunk, n))
	spans := make([]store.Span, 0, nRuns)
	kernel := ""
	for i := 0; i < nRuns; i++ {
		lo := i * plan.chunk
		hi := lo + plan.chunk
		if hi > n {
			hi = n
		}
		buf = append(buf[:0], local[lo:hi]...)
		k, passes := LocalSortKernel(buf, ops, cfg.Kernel, threads, nil)
		kernel = k
		if model != nil {
			c.Clock().Advance(LocalSortCost(model, k, int(float64(len(buf))*scale), passes, threads))
		}
		name := fmt.Sprintf("%s/ls%d", plan.prefix, i)
		if err := writeRunKeys(plan.st, name, buf, ops); err != nil {
			return nil, err
		}
		rec.AddSpill(1, int64(len(buf))*store.RecordBytes)
		spans = append(spans, store.Span{Name: name, Lo: 0, Hi: int64(len(buf))})
	}
	rec.SetLocalSort(kernel, threads)

	partName := spans[0].Name
	if len(spans) > 1 {
		partName = plan.prefix + "/part"
		if _, err := store.MergeSpans(plan.st, spans, partName, plan.fanIn); err != nil {
			return nil, err
		}
		// A fan-in below the run count forces reduction passes: tmpRecs
		// records pass through intermediate runs before the final pass over
		// all n.  Both the pricing and the scratch-traffic counters see them;
		// the plan depends only on span lengths, so both stay
		// backing-independent.
		tmpRuns, tmpRecs := mergePassStats(spans, plan.fanIn)
		if model != nil {
			c.Clock().Advance(model.MergeCost(int(float64(int64(n)+tmpRecs)*scale), min(len(spans), plan.fanIn)))
		}
		rec.AddSpill(1+tmpRuns, (int64(n)+tmpRecs)*store.RecordBytes)
		for _, s := range spans {
			if err := plan.st.Remove(s.Name); err != nil {
				return nil, err
			}
		}
	}
	return openExtPartition(plan.st, partName, ops)
}

// mergePassStats is store.MergePlanStats over spans: the intermediate runs
// and records of the multi-pass reduction at the given fan-in.
func mergePassStats(spans []store.Span, fanIn int) (int, int64) {
	lens := make([]int64, len(spans))
	for i, s := range spans {
		lens[i] = s.Len()
	}
	return store.MergePlanStats(lens, fanIn)
}

// exchangeSegments hands the fused exchange its outgoing segments: the
// resident path slices the sorted partition, the external path decodes
// ranges of the partition run.
type exchangeSegments[K any] func(lo, hi int) []K

// spilledExchangeMerge is the data-exchange + merge superstep of the
// external-memory path: the same explicit 1-factor sendrecv rounds as the
// fused overlap exchange (so spilled and resident ranks interoperate and the
// wire pattern is backing-independent), but each received chunk is sealed
// into a scratch run instead of accumulating in memory, and the final
// partition streams out of one loser-tree merge over those runs — priced as
// the sequential tournament merge.
func spilledExchangeMerge[K any](c *comm.Comm, seg exchangeSegments[K], ops keys.Ops[K], sendCounts []int, cfg Config, plan *spillPlan[K]) ([]K, error) {
	p := c.Size()
	model := c.Model()
	scale := cfg.scale()
	rec := cfg.Recorder

	offsets := make([]int, p+1)
	for d := 0; d < p; d++ {
		offsets[d+1] = offsets[d] + sendCounts[d]
	}

	var spans []store.Span
	spill := func(idx int, chunk []K) error {
		if len(chunk) == 0 {
			return nil
		}
		name := fmt.Sprintf("%s/rx%d", plan.prefix, idx)
		if err := writeRunKeys(plan.st, name, chunk, ops); err != nil {
			return err
		}
		rec.AddSpill(1, int64(len(chunk))*store.RecordBytes)
		spans = append(spans, store.Span{Name: name, Lo: 0, Hi: int64(len(chunk))})
		return nil
	}

	if err := spill(0, seg(offsets[c.Rank()], offsets[c.Rank()+1])); err != nil {
		return nil, err
	}
	rounds := comm.OneFactorRounds(p)
	for r := 0; r < rounds; r++ {
		partner := comm.OneFactorPartner(p, r, c.Rank())
		if partner < 0 {
			continue
		}
		got := comm.SendrecvProtocol(c, partner, overlapTag+r, seg(offsets[partner], offsets[partner+1]), scale)
		if err := spill(r+1, got); err != nil {
			return nil, err
		}
	}

	rec.Enter(metrics.Merge)
	m, err := store.NewMerger(plan.st, spans, plan.fanIn, plan.prefix+"/rxm")
	if err != nil {
		return nil, err
	}
	defer m.Close()
	out := make([]K, 0, m.Total())
	for {
		b, ok, err := m.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, ops.FromBits(b))
	}
	if len(spans) > 1 {
		tmpRuns, tmpRecs := mergePassStats(spans, plan.fanIn)
		if tmpRuns > 0 {
			rec.AddSpill(tmpRuns, tmpRecs*store.RecordBytes)
		}
		if model != nil {
			c.Clock().Advance(model.MergeCost(int(float64(int64(len(out))+tmpRecs)*scale), min(len(spans), plan.fanIn)))
		}
	}
	for _, s := range spans {
		if err := plan.st.Remove(s.Name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sortStepsSpilled runs the four supersteps of §V in the external-memory
// regime.  The collective operations, their payload sizes, and the search
// pricing are identical to the resident sortSteps — the store is a host-side
// execution strategy the virtual clock never sees.
func sortStepsSpilled[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config, ck *Checkpoint[K]) ([]K, error) {
	p := c.Size()
	rec := cfg.Recorder
	plan := newSpillPlan(c, ops, cfg)

	// Superstep 1: chunked Local Sort into store runs, merged into the
	// partition run.
	rec.Enter(metrics.LocalSort)
	part, err := extSortLocal(c, local, ops, cfg, plan)
	if err != nil {
		return nil, err
	}
	defer part.Close()
	if p == 1 {
		out := part.materialize()
		rec.Finish()
		return out, nil
	}
	var splitters []K
	var cuts []int
	if err := ck.boundary(c, ops, cfg, StepLocalSort, nil, part, plan, &splitters, &cuts); err != nil {
		return nil, err
	}

	// Superstep 2: Splitting over the disk-resident partition.
	rec.Enter(metrics.Other)
	capacities := comm.AllgatherOne(c, int64(len(local)))
	targets := make([]int64, p-1)
	var totalN, acc int64
	for _, cn := range capacities {
		totalN += cn
	}
	for i := 0; i < p-1; i++ {
		acc += capacities[i]
		targets[i] = acc
	}
	tol := int64(cfg.Epsilon * float64(totalN) / (2 * float64(p)))

	rec.Enter(metrics.Histogram)
	splitters, _ = findSplittersOn[K](c, part, ops, targets, tol, cfg)
	if err := ck.boundary(c, ops, cfg, StepSplitting, nil, part, plan, &splitters, &cuts); err != nil {
		return nil, err
	}

	// Superstep 3: permutation matrix over the disk-resident partition.
	rec.Enter(metrics.Other)
	cuts = computeCutsOn[K](c, part, ops, splitters, targets, cfg)
	if err := ck.boundary(c, ops, cfg, StepCuts, nil, part, plan, &splitters, &cuts); err != nil {
		return nil, err
	}

	// Superstep 4: fused 1-factor exchange with spilled receive runs.
	rec.Enter(metrics.Exchange)
	sendCounts := make([]int, p)
	var outBytes int64
	for d := 0; d < p; d++ {
		sendCounts[d] = cuts[d+1] - cuts[d]
		if d != c.Rank() {
			outBytes += int64(sendCounts[d]) * int64(ops.Bytes())
		}
	}
	rec.AddExchangedBytes(int64(float64(outBytes) * cfg.scale()))
	rec.SetExchangeAlg("fused-1factor")
	out, err := spilledExchangeMerge[K](c, part.segment, ops, sendCounts, cfg, plan)
	if err != nil {
		return nil, err
	}
	if cfg.Rebalance {
		rec.Enter(metrics.Other)
		out = RebalanceOutput(c, out, ops, cfg)
	}
	rec.Finish()
	return out, nil
}
