package core

import (
	"math"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
)

// iterationCount runs only the splitter phase and reports the iteration
// count (identical on all ranks) — the §V-A experiment.
func iterationCount[K any](t *testing.T, p, perRank int, gen func(r, i int) K, ops keys.Ops[K]) int {
	return iterationCountCfg(t, p, perRank, gen, ops, Config{})
}

// iterationCountCfg is iterationCount under an explicit configuration, for
// the k-ary probing and warm-start ablations.
func iterationCountCfg[K any](t *testing.T, p, perRank int, gen func(r, i int) K, ops keys.Ops[K], cfg Config) int {
	t.Helper()
	w, _ := comm.NewWorld(p, nil)
	var mu sync.Mutex
	iters := -1
	err := w.Run(func(c *comm.Comm) error {
		local := make([]K, perRank)
		for i := range local {
			local[i] = gen(c.Rank(), i)
		}
		sortutil.Sort(local, ops.Less)
		capacities := comm.AllgatherOne(c, int64(len(local)))
		targets := make([]int64, p-1)
		var acc int64
		for i := 0; i < p-1; i++ {
			acc += capacities[i]
			targets[i] = acc
		}
		_, n := FindSplitters(c, local, ops, targets, 0, cfg)
		mu.Lock()
		if iters == -1 {
			iters = n
		} else if iters != n {
			t.Errorf("iteration counts diverge across ranks: %d vs %d", iters, n)
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return iters
}

func TestIterationCountsBoundedByKeyWidth(t *testing.T) {
	// §V-A: "With normally and uniformly distributed keys the number of
	// iterations is bound by the key size ... 64-bit floating point
	// numbers ... 60-64 iterations.  Sorting 32-bit floats can be
	// accomplished in 25-35 iterations."
	src := func(r, i int) uint64 {
		x := uint64(r)*2654435761 + uint64(i)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x
	}
	full64 := iterationCount(t, 8, 512, func(r, i int) uint64 { return src(r, i) }, keys.Uint64{})
	if full64 > 66 {
		t.Errorf("full-range 64-bit keys took %d iterations, want <= ~64", full64)
	}
	if full64 < 20 {
		t.Errorf("full-range 64-bit keys took only %d iterations — suspicious", full64)
	}
	narrow32 := iterationCount(t, 8, 512, func(r, i int) uint32 { return uint32(src(r, i)) }, keys.Uint32{})
	if narrow32 > 34 {
		t.Errorf("32-bit keys took %d iterations, want <= ~32", narrow32)
	}
	f32 := iterationCount(t, 8, 512, func(r, i int) float32 {
		return float32(src(r, i)%1e6) / 7.0
	}, keys.Float32{})
	if f32 > 34 {
		t.Errorf("32-bit float keys took %d iterations, want <= ~32", f32)
	}
}

func TestKaryProbingCutsRoundCount(t *testing.T) {
	// k-ary refinement drops the round count from log2(range) to
	// log_{k+1}(range): on full-range 64-bit keys, 8 probes per boundary
	// must finish in at most 45% of the bisection rounds
	// (log_9(2^64) ≈ 20 vs 60-64).
	src := func(r, i int) uint64 {
		x := uint64(r)*2654435761 + uint64(i)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return x
	}
	gen := func(r, i int) uint64 { return src(r, i) }
	bisect := iterationCountCfg(t, 8, 512, gen, keys.Uint64{}, Config{Probes: 1})
	k8 := iterationCountCfg(t, 8, 512, gen, keys.Uint64{}, Config{Probes: 8})
	if limit := (bisect*45 + 99) / 100; k8 > limit {
		t.Errorf("probes=8 took %d rounds, want <= 45%% of the %d bisection rounds (%d)", k8, bisect, limit)
	}
	k4 := iterationCountCfg(t, 8, 512, gen, keys.Uint64{}, Config{Probes: 4})
	if k4 >= bisect || k8 >= k4 {
		t.Errorf("round counts not monotone in probe count: k=1 %d, k=4 %d, k=8 %d", bisect, k4, k8)
	}
}

func TestProbesOneMatchesBisection(t *testing.T) {
	// Probes <= 1 must reproduce the original bisection exactly — same
	// rounds, same splitters — so default-configured runs are unchanged.
	gen := func(r, i int) uint64 {
		x := uint64(r)*7919 + uint64(i)*104729
		return (x * 0x9e3779b97f4a7c15) % 1000000001
	}
	base := iterationCount(t, 8, 512, gen, keys.Uint64{})
	one := iterationCountCfg(t, 8, 512, gen, keys.Uint64{}, Config{Probes: 1})
	if base != one {
		t.Errorf("Probes=1 took %d rounds, default bisection %d", one, base)
	}
}

func TestIterationCountsIndependentOfP(t *testing.T) {
	// §V-A: "The number of processors does not impact the number of
	// iterations."
	gen := func(r, i int) uint64 {
		x := uint64(r)*1000003 + uint64(i)
		x *= 0x9e3779b97f4a7c15
		return x % 1000000007 // the paper's [0, 1e9] span
	}
	var counts []int
	for _, p := range []int{2, 4, 8, 16} {
		counts = append(counts, iterationCount(t, p, 256, gen, keys.Uint64{}))
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 8 {
		t.Errorf("iteration counts vary too much with P: %v", counts)
	}
}

func TestIterationCountNarrowSpan(t *testing.T) {
	// Keys in [0, 1e9]: the splitter interval spans ~2^30, so roughly 30
	// iterations suffice (§VI-B: "takes ~30 iterations").
	gen := func(r, i int) uint64 {
		x := uint64(r)*7919 + uint64(i)*104729
		return (x * 0x9e3779b97f4a7c15) % 1000000001
	}
	n := iterationCount(t, 8, 512, gen, keys.Uint64{})
	if n > 36 {
		t.Errorf("[0,1e9] keys took %d iterations, want ~30", n)
	}
}

func TestSplittersHitTargets(t *testing.T) {
	// White-box check of Definition 4 on the splitter output.
	p, perRank := 6, 400
	w, _ := comm.NewWorld(p, nil)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 55, Span: 1e9}
		raw, _ := spec.Rank(c.Rank(), perRank)
		local := keys.MakeUnique(raw, c.Rank())
		ops := keys.NewTripleOps[uint64](keys.Uint64{})
		sortutil.Sort(local, ops.Less)
		targets := make([]int64, p-1)
		for i := range targets {
			targets[i] = int64((i + 1) * perRank)
		}
		splitters, _ := FindSplitters(c, local, ops, targets, 0, Config{})
		// Verify L_i < T_i <= U_i globally.
		hist := make([]int64, 0, 2*len(splitters))
		for _, s := range splitters {
			hist = append(hist,
				int64(sortutil.LowerBound(local, s, ops.Less)),
				int64(sortutil.UpperBound(local, s, ops.Less)))
		}
		global := comm.Allreduce(c, hist, func(a, b int64) int64 { return a + b })
		for i, T := range targets {
			L, U := global[2*i], global[2*i+1]
			if !(L < T && T <= U) {
				t.Errorf("splitter %d: L=%d T=%d U=%d violates Definition 4", i, L, T, U)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplittersMonotone(t *testing.T) {
	p := 9
	w, _ := comm.NewWorld(p, nil)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Zipf, Seed: 56, Span: 1e9}
		raw, _ := spec.Rank(c.Rank(), 300)
		local := keys.MakeUnique(raw, c.Rank())
		ops := keys.NewTripleOps[uint64](keys.Uint64{})
		sortutil.Sort(local, ops.Less)
		targets := make([]int64, p-1)
		for i := range targets {
			targets[i] = int64((i + 1) * 300)
		}
		splitters, _ := FindSplitters(c, local, ops, targets, 0, Config{})
		for i := 1; i < len(splitters); i++ {
			if ops.Less(splitters[i], splitters[i-1]) {
				t.Errorf("splitters not monotone at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplittersEmptyWorld(t *testing.T) {
	w, _ := comm.NewWorld(3, nil)
	err := w.Run(func(c *comm.Comm) error {
		splitters, iters := FindSplitters[uint64](c, nil, keys.Uint64{}, []int64{0, 0}, 0, Config{})
		if len(splitters) != 2 || iters != 0 {
			t.Errorf("empty input: %d splitters, %d iters", len(splitters), iters)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecorderCapturesPhasesAndIterations(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	w, _ := comm.NewWorld(8, model)
	recs := make([]*metrics.Recorder, 8)
	var mu sync.Mutex
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 60, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), 2000)
		rec := metrics.ForComm(c)
		_, err := Sort(c, local, u64, Config{Recorder: rec})
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.Summarize(recs)
	// With the uniqueness triples, a boundary that falls between two
	// equal keys resolves through the 64-bit suffix, so the bound is the
	// 128-bit embedding width rather than the key width.
	if s.MaxIterations < 5 || s.MaxIterations > 128 {
		t.Errorf("iterations = %d", s.MaxIterations)
	}
	for _, p := range []metrics.Phase{metrics.LocalSort, metrics.Histogram, metrics.Exchange, metrics.Merge} {
		if s.Times[p] <= 0 {
			t.Errorf("phase %v has no recorded time", p)
		}
	}
	if s.ExchangedBytes <= 0 {
		t.Error("no exchange volume recorded")
	}
	if math.Abs(1-s.Fraction(metrics.LocalSort)-s.Fraction(metrics.Histogram)-
		s.Fraction(metrics.Exchange)-s.Fraction(metrics.Merge)-s.Fraction(metrics.Other)) > 1e-9 {
		t.Error("fractions do not sum to 1")
	}
}
