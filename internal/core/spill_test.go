package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/fault"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/store"
	"dhsort/internal/workload"
)

// spillBudget returns a MemBudget of roughly 1/eighth of a rank's input
// volume, the acceptance geometry: the local sort must spill about eight
// runs per rank.
func spillBudget(perRank int) int64 {
	return int64(perRank) * 8 / 8
}

// runSortClocked is runSort additionally returning each rank's final virtual
// clock and its recorder, for cross-backing identity assertions.
func runSortClocked(t *testing.T, p int, spec workload.Spec, perRank int, cfg Config, model *simnet.CostModel) (ins, outs [][]uint64, clocks []time.Duration, recs []*metrics.Recorder) {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	clocks = make([]time.Duration, p)
	recs = make([]*metrics.Recorder, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		runCfg := cfg
		runCfg.Recorder = rec
		out, err := Sort(c, local, u64, runCfg)
		if err != nil {
			return err
		}
		rec.Finish()
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		clocks[c.Rank()] = c.Clock().Now()
		recs[c.Rank()] = rec
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins, outs, clocks, recs
}

// TestSpilledSortMatchesResident is the out-of-core acceptance test: a P=16
// sort whose MemBudget is an eighth of each rank's input must complete from
// disk runs with output bit-identical to the in-memory run at identical
// parameters.
func TestSpilledSortMatchesResident(t *testing.T) {
	const p, perRank = 16, 2048
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}

	_, want := runSort(t, p, spec, perRank, Config{Threads: 1}, model)
	cfg := Config{Threads: 1, MemBudget: spillBudget(perRank), SpillDir: t.TempDir()}
	ins, got, _, recs := runSortClocked(t, p, spec, perRank, cfg, model)
	checkSorted(t, ins, got, true, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("spilled run's output differs from the in-memory run")
	}
	s := metrics.Summarize(recs)
	if s.SpilledRuns == 0 || s.SpillBytes == 0 {
		t.Fatalf("budget of %d bytes produced no spilled runs: %+v", cfg.MemBudget, s)
	}
	// Eight-ish local-sort runs per rank, plus the merged partition and the
	// exchange runs: the counter must at least cover the local-sort runs.
	if s.SpilledRuns < int64(p*8) {
		t.Errorf("expected at least %d spilled runs across %d ranks, got %d", p*8, p, s.SpilledRuns)
	}
}

// TestSpilledSortBackingIndependence pins the storage plane's core claim:
// the same budgeted sort over a memory-backed and a filesystem-backed store
// is bit-identical in output and in every rank's virtual clock.
func TestSpilledSortBackingIndependence(t *testing.T) {
	const p, perRank = 8, 1536
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Zipf, Seed: 11, Span: 1e9}
	base := Config{Threads: 1, MemBudget: spillBudget(perRank)}

	memCfg := base
	memCfg.Store = store.NewMem()
	_, memOut, memClocks, _ := runSortClocked(t, p, spec, perRank, memCfg, model)

	fsCfg := base
	fsCfg.SpillDir = t.TempDir()
	ins, fsOut, fsClocks, _ := runSortClocked(t, p, spec, perRank, fsCfg, model)

	checkSorted(t, ins, fsOut, true, 0)
	if !reflect.DeepEqual(memOut, fsOut) {
		t.Fatal("memory- and filesystem-backed runs produced different output")
	}
	if !reflect.DeepEqual(memClocks, fsClocks) {
		t.Fatalf("virtual clocks diverged across backings:\n mem: %v\n  fs: %v", memClocks, fsClocks)
	}
}

// TestSpilledSortPrivateMemStore runs the budgeted path with no shared store
// configured: spill runs land in a run-private in-memory store and the
// output still matches the resident run.
func TestSpilledSortPrivateMemStore(t *testing.T) {
	const p, perRank = 5, 700
	spec := workload.Spec{Dist: workload.Normal, Seed: 21, Span: 1e9}
	_, want := runSort(t, p, spec, perRank, Config{}, nil)
	ins, got := runSort(t, p, spec, perRank, Config{MemBudget: spillBudget(perRank)}, nil)
	checkSorted(t, ins, got, true, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("private-store spilled run's output differs from the in-memory run")
	}
}

// TestSpilledSortFanIn exercises the multi-pass merge: fan-in 2 over eight
// runs forces reduction passes, and the output must not change.
func TestSpilledSortFanIn(t *testing.T) {
	const p, perRank = 4, 1024
	spec := workload.Spec{Dist: workload.Uniform, Seed: 8, Span: 1e9}
	_, want := runSort(t, p, spec, perRank, Config{}, nil)
	cfg := Config{MemBudget: spillBudget(perRank), SpillFanIn: 2, SpillDir: t.TempDir()}
	ins, got := runSort(t, p, spec, perRank, cfg, nil)
	checkSorted(t, ins, got, true, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("fan-in-2 spilled run's output differs from the in-memory run")
	}
}

// TestSpilledSortLossyKeysStayResident pins the eligibility rule: keys whose
// embedding is not lossless ignore the budget and sort resident.
func TestSpilledSortLossyKeysStayResident(t *testing.T) {
	const p, perRank = 3, 400
	w, err := comm.NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	sops := keys.String{}
	recs := make([]*metrics.Recorder, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: uint64(c.Rank() + 1), Span: 1e9}
		nums, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		local := make([]string, len(nums))
		for i, v := range nums {
			local[i] = fmt.Sprintf("%016x", v)
		}
		rec := metrics.ForComm(c)
		out, err := Sort(c, local, sops, Config{MemBudget: 64, Recorder: rec})
		if err != nil {
			return err
		}
		if len(out) == 0 && perRank > 0 && c.Size() == 1 {
			t.Error("empty output")
		}
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.Summarize(recs)
	if s.SpilledRuns != 0 || s.SpillBytes != 0 {
		t.Fatalf("string keys must not spill, got %d runs / %d bytes", s.SpilledRuns, s.SpillBytes)
	}
}

// TestSpillConfigValidation pins the configuration surface: negative
// budgets, degenerate fan-ins, and shrink recovery without a shared store
// are rejected before any rank runs.
func TestSpillConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"negative budget", Config{MemBudget: -1}},
		{"fan-in one", Config{SpillFanIn: 1}},
		{"shrink without shared store", Config{MemBudget: 1 << 20, Recovery: RecoveryShrink}},
	} {
		if err := tc.cfg.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, tc.cfg)
		}
	}
	ok := Config{MemBudget: 1 << 20, Recovery: RecoveryShrink, SpillDir: "/tmp/x"}
	if err := ok.validate(); err != nil {
		t.Errorf("shrink with SpillDir rejected: %v", err)
	}
}

// TestSpilledSortDieShrink is the die-shrink acceptance leg: a budgeted P=16
// sort with a permanent death must recover by adopting the victim's durable
// shard from the shared store and finish loss-free on the survivors.
func TestSpilledSortDieShrink(t *testing.T) {
	const p, perRank = 16, 2048
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}
	plan := fault.Plan{Seed: 7, Deaths: []fault.Death{{Rank: 3, Step: StepSplitting}}}
	cfg := Config{
		Threads:   1,
		Recovery:  RecoveryShrink,
		MemBudget: spillBudget(perRank),
		SpillDir:  t.TempDir(),
	}

	ins, outs, _, recs, effSizes, err := runSortShrink(t, p, spec, perRank, cfg, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	if outs[3] != nil {
		t.Error("dead rank 3 produced output")
	}
	for r, sz := range effSizes {
		if r != 3 && sz != p-1 {
			t.Errorf("rank %d finished on a communicator of size %d, want %d", r, sz, p-1)
		}
	}
	checkSorted(t, ins, outs, false, 0)
	s := metrics.Summarize(recs)
	if s.Fault.Deaths != 1 {
		t.Errorf("1 death scheduled, %d recorded", s.Fault.Deaths)
	}
	if s.SpilledRuns == 0 {
		t.Error("die-shrink run recorded no spilled runs")
	}
}

// corruptStore wraps a filesystem store and corrupts targeted runs the
// moment they seal — truncation chops the tail (caught by the size audit at
// open), a bit flip rots one record byte (caught by the footer checksum at
// sequential-read completion).
type corruptStore struct {
	store.Store
	dir     string
	targets map[string]string // run name -> "truncate" | "bitflip"
}

func (cs corruptStore) Create(name string) (store.Writer, error) {
	w, err := cs.Store.Create(name)
	if err != nil {
		return nil, err
	}
	if kind, ok := cs.targets[name]; ok {
		return corruptWriter{Writer: w, path: filepath.Join(cs.dir, filepath.FromSlash(name)+".run"), kind: kind}, nil
	}
	return w, nil
}

type corruptWriter struct {
	store.Writer
	path, kind string
}

func (cw corruptWriter) Close() error {
	if err := cw.Writer.Close(); err != nil {
		return err
	}
	switch cw.kind {
	case "truncate":
		st, err := os.Stat(cw.path)
		if err != nil {
			return err
		}
		return os.Truncate(cw.path, st.Size()-32)
	case "bitflip":
		b, err := os.ReadFile(cw.path)
		if err != nil {
			return err
		}
		b[len(b)/3] ^= 0x40
		return os.WriteFile(cw.path, b, 0o644)
	}
	return nil
}

// runSortErr is runSort returning the world error instead of fataling, for
// corruption tests that expect typed failures.
func runSortErr(t *testing.T, p int, spec workload.Spec, perRank int, cfg Config, model *simnet.CostModel, plan fault.Plan) (ins, outs [][]uint64, err error) {
	t.Helper()
	w, werr := comm.NewWorldWithFaults(p, model, plan)
	if werr != nil {
		t.Fatal(werr)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, lerr := spec.Rank(c.Rank(), perRank)
		if lerr != nil {
			return lerr
		}
		out, serr := Sort(c, local, u64, cfg)
		if serr != nil {
			return serr
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	return ins, outs, err
}

// TestDurableCheckpointCorruption drives the durable-restore audit through
// every outcome on the resident path (a shared store without a MemBudget
// still makes checkpoints durable): a truncated primary falls back to the
// replica, a bit-flipped primary falls back to the replica, and with both
// copies corrupt the sort surfaces ErrCheckpointCorrupt — never a panic or
// a mis-sort.
func TestDurableCheckpointCorruption(t *testing.T) {
	const p, perRank = 8, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}
	plan := fault.Plan{Seed: 7, Crashes: []fault.Crash{{Rank: 2, Step: StepSplitting}}}
	_, want := runSort(t, p, spec, perRank, Config{Threads: 1}, model)

	prim := ckptRuns(2, StepSplitting, false)
	repl := ckptRuns(2, StepSplitting, true)
	for _, tc := range []struct {
		name    string
		targets map[string]string
	}{
		{"truncated primary", map[string]string{prim.sorted: "truncate"}},
		{"bit-flipped primary", map[string]string{prim.sorted: "bitflip"}},
		{"bit-flipped primary splitters", map[string]string{prim.splitters: "bitflip"}},
	} {
		dir := t.TempDir()
		cfg := Config{Threads: 1, Store: corruptStore{Store: store.NewFS(dir), dir: dir, targets: tc.targets}}
		ins, got, err := runSortErr(t, p, spec, perRank, cfg, model, plan)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkSorted(t, ins, got, true, 0)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: replica-restored output differs from the fault-free run", tc.name)
		}
	}

	dir := t.TempDir()
	cfg := Config{Threads: 1, Store: corruptStore{Store: store.NewFS(dir), dir: dir,
		targets: map[string]string{prim.sorted: "truncate", repl.sorted: "bitflip"}}}
	_, _, err := runSortErr(t, p, spec, perRank, cfg, model, plan)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("both copies corrupt: want ErrCheckpointCorrupt, got %v", err)
	}
}

// TestSpilledCheckpointCorruption is the same audit on the external-memory
// path, where the primary shard is a copy of the partition run and restore
// repoints the partition at the surviving copy.
func TestSpilledCheckpointCorruption(t *testing.T) {
	const p, perRank = 8, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 5, Span: 1e9}
	plan := fault.Plan{Seed: 9, Crashes: []fault.Crash{{Rank: 3, Step: StepLocalSort}}}
	_, want := runSort(t, p, spec, perRank, Config{Threads: 1}, model)

	prim := ckptRuns(3, StepLocalSort, false)
	dir := t.TempDir()
	cfg := Config{
		Threads:   1,
		MemBudget: spillBudget(perRank),
		Store:     corruptStore{Store: store.NewFS(dir), dir: dir, targets: map[string]string{prim.sorted: "truncate"}},
		SpillDir:  dir,
	}
	ins, got, err := runSortErr(t, p, spec, perRank, cfg, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, ins, got, true, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("spilled replica-restored output differs from the in-memory fault-free run")
	}
}
