package core

import (
	"dhsort/internal/comm"
	"dhsort/internal/keys"
)

// GrowRebalance re-partitions sorted per-rank output onto a freshly grown
// communicator: called collectively on the communicator Grow/AwaitGrow
// returned, with the incumbents passing their partitions and the joiners
// empty slices.  It drives the diffusion machinery of RebalanceOutput at a
// zero imbalance tolerance, so the flow schedule — derived identically on
// every rank from the allgathered sizes — sheds tails rightward and heads
// leftward until every rank, joiners included, holds its front-loaded
// balanced share.  Order is preserved by construction (elements only cross
// adjacent boundaries), so the grown world's concatenated output is the
// same sorted sequence, now cut at P+k boundaries instead of P.  All
// traffic is priced on the virtual clock and recorded as a rebalance pass.
func GrowRebalance[K any](c *comm.Comm, out []K, ops keys.Ops[K], cfg Config) []K {
	// Zero tolerance: the incumbents exceed any bound computed over the
	// grown size, which is exactly what forces flow onto the empty joiners.
	cfg.Epsilon = 0
	return RebalanceOutput(c, out, ops, cfg)
}
