package core

import (
	"sort"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

var u64 = keys.Uint64{}

// runSort executes a distributed sort of the given workload on p ranks and
// returns the per-rank inputs and outputs.
func runSort(t *testing.T, p int, spec workload.Spec, perRank int, cfg Config, model *simnet.CostModel) (ins, outs [][]uint64) {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		out, err := Sort(c, local, u64, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins, outs
}

// checkSorted verifies the output invariant: globally sorted, a permutation
// of the input, and (when perfect is true) per-rank sizes equal to inputs.
func checkSorted(t *testing.T, ins, outs [][]uint64, perfect bool, epsilon float64) {
	t.Helper()
	var all, got []uint64
	for _, in := range ins {
		all = append(all, in...)
	}
	var prev uint64
	first := true
	for r, out := range outs {
		for i, v := range out {
			if !first && v < prev {
				t.Fatalf("global order violated at rank %d index %d: %d < %d", r, i, v, prev)
			}
			prev, first = v, false
		}
		got = append(got, out...)
	}
	if len(got) != len(all) {
		t.Fatalf("element count changed: %d -> %d", len(all), len(got))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("not a permutation: index %d has %d, want %d", i, got[i], all[i])
		}
	}
	if perfect {
		for r := range ins {
			if len(outs[r]) != len(ins[r]) {
				t.Fatalf("perfect partitioning violated: rank %d has %d, contributed %d", r, len(outs[r]), len(ins[r]))
			}
		}
	} else if epsilon > 0 {
		n := len(all)
		p := len(ins)
		bound := int(float64(n)*(1+epsilon)/float64(p)) + 1
		for r, out := range outs {
			if len(out) > bound {
				t.Fatalf("load balance violated: rank %d has %d > %d", r, len(out), bound)
			}
		}
	}
}

func TestSortAllDistributionsAndSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for _, dist := range workload.Distributions {
			spec := workload.Spec{Dist: dist, Seed: uint64(p), Span: 1e9}
			ins, outs := runSort(t, p, spec, 200, Config{}, nil)
			checkSorted(t, ins, outs, true, 0)
		}
	}
}

func TestSortLargerScale(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 99, Span: 1e9}
	ins, outs := runSort(t, 16, spec, 5000, Config{}, nil)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortNonPowerOfTwoRanks(t *testing.T) {
	// The paper stresses freedom from power-of-two constraints (§VI-B).
	for _, p := range []int{7, 11, 23} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 5, Span: 1e9}
		ins, outs := runSort(t, p, spec, 321, Config{}, nil)
		checkSorted(t, ins, outs, true, 0)
	}
}

func TestSortSparseRanks(t *testing.T) {
	// Sparse inputs: a fraction of ranks contribute nothing (§VII).
	spec := workload.Spec{Dist: workload.Uniform, Seed: 7, Span: 1e9, Sparse: 3}
	ins, outs := runSort(t, 9, spec, 500, Config{}, nil)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortTinyInputs(t *testing.T) {
	// N < P: some ranks must end up empty (capacity 0 stays 0 under
	// perfect partitioning).
	for _, perRank := range []int{0, 1} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 100}
		ins, outs := runSort(t, 6, spec, perRank, Config{}, nil)
		checkSorted(t, ins, outs, true, 0)
	}
}

func TestSortAllEmpty(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 100}
	ins, outs := runSort(t, 4, spec, 0, Config{}, nil)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortMergeStrategies(t *testing.T) {
	for _, m := range []MergeStrategy{MergeResort, MergeBinaryTree, MergeLoserTree} {
		spec := workload.Spec{Dist: workload.Normal, Seed: 11, Span: 1e9}
		ins, outs := runSort(t, 8, spec, 700, Config{Merge: m}, nil)
		checkSorted(t, ins, outs, true, 0)
	}
}

func TestSortEpsilonRelaxed(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 13, Span: 1e9}
	ins, outs := runSort(t, 8, spec, 1000, Config{Epsilon: 0.1}, nil)
	checkSorted(t, ins, outs, false, 0.1)
}

func TestSortForceUniqueTransform(t *testing.T) {
	// The §V-A transformation must preserve the full contract.
	for _, p := range []int{3, 8} {
		for _, dist := range []workload.Distribution{workload.Uniform, workload.DuplicateHeavy, workload.AllEqual} {
			spec := workload.Spec{Dist: dist, Seed: uint64(p) + 70, Span: 1e9}
			ins, outs := runSort(t, p, spec, 250, Config{ForceUnique: true}, nil)
			checkSorted(t, ins, outs, true, 0)
		}
	}
}

func TestSortRawKeysDistinct(t *testing.T) {
	// With globally distinct keys the raw-key path must give perfect
	// partitioning.
	p, perRank := 6, 400
	w, _ := comm.NewWorld(p, nil)
	ins := make([][]uint64, p)
	outs := make([][]uint64, p)
	var mu sync.Mutex
	err := w.Run(func(c *comm.Comm) error {
		local := make([]uint64, perRank)
		for i := range local {
			// Interleaved distinct keys across ranks.
			local[i] = uint64(i*p+c.Rank()) * 2654435761 % (1 << 40)
		}
		seen := map[uint64]bool{}
		for _, v := range local {
			if seen[v] {
				t.Error("test workload must be duplicate-free")
			}
			seen[v] = true
		}
		out, err := Sort(c, local, u64, Config{})
		if err != nil {
			return err
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-rank duplicates are possible due to the modulus; only check
	// global order + permutation, not perfection.
	checkSorted(t, ins, outs, false, 0)
}

func TestSortRawKeysAllEqualPerfect(t *testing.T) {
	// Degenerate duplicates on the raw-key path: Algorithm 4's boundary
	// refinement splits the equal run exactly, so perfect partitioning
	// holds without the uniqueness transformation.
	spec := workload.Spec{Dist: workload.AllEqual, Seed: 1, Span: 1e9}
	ins, outs := runSort(t, 5, spec, 100, Config{}, nil)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortUnderCostModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 21, Span: 1e9}
	ins, outs := runSort(t, 16, spec, 300, Config{}, model)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortVirtualScaleDoesNotChangeResult(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 22, Span: 1e9}
	_, base := runSort(t, 8, spec, 250, Config{}, model)
	_, scaled := runSort(t, 8, spec, 250, Config{VirtualScale: 64}, model)
	for r := range base {
		if len(base[r]) != len(scaled[r]) {
			t.Fatalf("rank %d: scale changed sizes", r)
		}
		for i := range base[r] {
			if base[r][i] != scaled[r][i] {
				t.Fatalf("rank %d: scale changed data", r)
			}
		}
	}
}

func TestSortVirtualScaleIncreasesMakespan(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 23, Span: 1e9}
	mk := func(scale float64) int64 {
		w, _ := comm.NewWorld(8, model)
		err := w.Run(func(c *comm.Comm) error {
			local, _ := spec.Rank(c.Rank(), 500)
			_, err := Sort(c, local, u64, Config{VirtualScale: scale})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(w.Makespan())
	}
	if mk(64) <= mk(1) {
		t.Fatal("virtual scale must increase the virtual makespan")
	}
}

func TestSortInvalidConfig(t *testing.T) {
	w, _ := comm.NewWorld(1, nil)
	err := w.Run(func(c *comm.Comm) error {
		_, err := Sort(c, []uint64{1}, u64, Config{Epsilon: -1})
		return err
	})
	if err == nil {
		t.Fatal("negative epsilon must be rejected")
	}
	w2, _ := comm.NewWorld(1, nil)
	err = w2.Run(func(c *comm.Comm) error {
		_, err := Sort(c, []uint64{1}, u64, Config{Merge: MergeStrategy(9)})
		return err
	})
	if err == nil {
		t.Fatal("unknown merge strategy must be rejected")
	}
}

func TestSortDoesNotModifyInput(t *testing.T) {
	w, _ := comm.NewWorld(4, nil)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 4, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), 200)
		snapshot := append([]uint64(nil), local...)
		if _, err := Sort(c, local, u64, Config{}); err != nil {
			return err
		}
		for i := range local {
			if local[i] != snapshot[i] {
				t.Errorf("rank %d: input modified at %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortFloatKeys(t *testing.T) {
	p := 6
	w, _ := comm.NewWorld(p, nil)
	outs := make([][]float64, p)
	var mu sync.Mutex
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Normal, Seed: 31, Span: 1e9}
		raw, _ := spec.Rank(c.Rank(), 500)
		local := workload.Floats(raw)
		out, err := Sort(c, local, keys.Float64{}, Config{})
		if err != nil {
			return err
		}
		if !IsGloballySorted(c, out, keys.Float64{}) {
			t.Errorf("rank %d: output not globally sorted", c.Rank())
		}
		mu.Lock()
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, out := range outs {
		if len(out) != 500 {
			t.Fatalf("rank %d: %d elements", r, len(out))
		}
	}
}

func TestSortUint32Keys(t *testing.T) {
	p := 4
	w, _ := comm.NewWorld(p, nil)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 33, Span: 1 << 30}
		raw, _ := spec.Rank(c.Rank(), 400)
		local := make([]uint32, len(raw))
		for i, v := range raw {
			local[i] = uint32(v)
		}
		out, err := Sort(c, local, keys.Uint32{}, Config{})
		if err != nil {
			return err
		}
		if len(out) != 400 {
			t.Errorf("rank %d: %d elements", c.Rank(), len(out))
		}
		if !IsGloballySorted(c, out, keys.Uint32{}) {
			t.Errorf("rank %d: not sorted", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsGloballySortedDetectsViolation(t *testing.T) {
	w, _ := comm.NewWorld(3, nil)
	err := w.Run(func(c *comm.Comm) error {
		// Rank boundaries out of order: rank 0 holds large keys.
		local := []uint64{uint64(100 - c.Rank()*10)}
		if IsGloballySorted(c, local, u64) {
			t.Error("boundary violation not detected")
		}
		// Locally unsorted.
		bad := []uint64{5, 1}
		if c.Rank() > 0 {
			bad = []uint64{1000, 1001}
		}
		if IsGloballySorted(c, bad, u64) {
			t.Error("local violation not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortDeterministicUnderModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 77, Span: 1e9}
	mk := func() int64 {
		w, _ := comm.NewWorld(12, model)
		err := w.Run(func(c *comm.Comm) error {
			local, _ := spec.Rank(c.Rank(), 400)
			_, err := Sort(c, local, u64, Config{})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(w.Makespan())
	}
	first := mk()
	for i := 0; i < 2; i++ {
		if got := mk(); got != first {
			t.Fatalf("virtual makespan not deterministic: %d vs %d", got, first)
		}
	}
}
