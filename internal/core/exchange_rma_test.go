package core

import (
	"sync"
	"testing"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// TestSortRMAPut checks the one-sided exchange end to end: global order,
// permutation, and perfect partitioning, in real time and under both
// intra-node pricings, including non-power-of-two rank counts (the 1-factor
// schedule's odd case) and empty ranks.
func TestSortRMAPut(t *testing.T) {
	cfg := Config{Exchange: comm.ExchangeRMAPut}
	for _, p := range []int{1, 2, 5, 16} {
		for _, model := range []*simnet.CostModel{nil, simnet.SuperMUC(4, true), simnet.SuperMUC(4, false)} {
			spec := workload.Spec{Dist: workload.Uniform, Seed: 11, Span: 1e9}
			ins, outs := runSort(t, p, spec, 256, cfg, model)
			checkSorted(t, ins, outs, true, 0)
		}
	}
	// Skewed keys exercise very unequal block sizes (some near-empty puts).
	ins, outs := runSort(t, 8, workload.Spec{Dist: workload.Zipf, Seed: 3, Span: 1e9}, 512, cfg, simnet.SuperMUC(4, true))
	checkSorted(t, ins, outs, true, 0)
}

// sortMakespan runs one dhsort configuration under the model and returns the
// virtual makespan.
func sortMakespan(t *testing.T, p, perRank int, model *simnet.CostModel, cfg Config) time.Duration {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{Dist: workload.Uniform, Seed: 42, Span: 1e9}
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		out, err := Sort(c, local, u64, cfg)
		if err != nil {
			return err
		}
		if !IsGloballySorted(c, out, u64) {
			t.Error("unsorted output")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.Makespan()
}

// TestRMAPutVsAlltoallvGolden pins the paper's directional claim on a fully
// deterministic configuration (16 ranks on one modelled node, 512 keys per
// rank): with shared-memory windows (PGAS pricing) the one-sided put
// exchange beats the two-sided 1-factor ALLTOALLV — puts are memcpys with no
// rendezvous — and under conventional-MPI pricing it does NOT, because every
// notification is emulated with a flush round trip (the DART-MPI overhead
// the paper measures in §VI-A1).
func TestRMAPutVsAlltoallvGolden(t *testing.T) {
	const p, perRank = 16, 512
	twoSided := Config{Exchange: comm.AlltoallOneFactor}
	oneSided := Config{Exchange: comm.ExchangeRMAPut}

	pgas := simnet.SuperMUC(16, true)
	a2av := sortMakespan(t, p, perRank, pgas, twoSided)
	rma := sortMakespan(t, p, perRank, pgas, oneSided)
	if rma > a2av {
		t.Errorf("PGAS intra-node: rma-put makespan %v exceeds alltoallv %v", rma, a2av)
	}

	mpi := simnet.SuperMUC(16, false)
	a2avMPI := sortMakespan(t, p, perRank, mpi, twoSided)
	rmaMPI := sortMakespan(t, p, perRank, mpi, oneSided)
	if rmaMPI <= a2avMPI {
		t.Errorf("pure MPI: rma-put makespan %v should not beat alltoallv %v (emulated notifies)", rmaMPI, a2avMPI)
	}

	// Determinism: the virtual makespans must be bit-identical across runs —
	// the property every golden comparison above relies on.
	if again := sortMakespan(t, p, perRank, pgas, oneSided); again != rma {
		t.Errorf("rma-put makespan not deterministic: %v then %v", rma, again)
	}
}

// effectiveExchange runs one configuration and returns the exchange
// algorithm recorded in the metrics summary.
func effectiveExchange(t *testing.T, p int, model *simnet.CostModel, cfg Config) string {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*metrics.Recorder, p)
	var mu sync.Mutex
	spec := workload.Spec{Dist: workload.Uniform, Seed: 5, Span: 1e9}
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), 128)
		if err != nil {
			return err
		}
		cc := cfg
		rec := metrics.ForComm(c)
		cc.Recorder = rec
		if _, err := Sort(c, local, u64, cc); err != nil {
			return err
		}
		rec.Finish()
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return metrics.Summarize(recs).ExchangeAlg
}

// TestEffectiveExchangeRecorded pins the honesty contract of the metrics
// document: it names the exchange that actually ran.  In particular the
// hierarchical exchange silently degrades to the 1-factor schedule without
// node topology (no cost model, or one rank per node) — the record must say
// "one-factor", not "hierarchical".
func TestEffectiveExchangeRecorded(t *testing.T) {
	pgas := simnet.SuperMUC(4, true)
	cases := []struct {
		name  string
		model *simnet.CostModel
		cfg   Config
		want  string
	}{
		{"hierarchical with node topology", pgas, Config{Exchange: comm.AlltoallHierarchical}, "hierarchical"},
		{"hierarchical without a model degrades", nil, Config{Exchange: comm.AlltoallHierarchical}, "one-factor"},
		{"hierarchical with 1 rank/node degrades", simnet.SuperMUC(1, false), Config{Exchange: comm.AlltoallHierarchical}, "one-factor"},
		{"one-factor", pgas, Config{Exchange: comm.AlltoallOneFactor}, "one-factor"},
		{"rma-put", pgas, Config{Exchange: comm.ExchangeRMAPut}, "rma-put"},
		{"rma-put takes precedence over overlap", pgas, Config{Exchange: comm.ExchangeRMAPut, Merge: MergeOverlap}, "rma-put"},
		{"fused overlap", pgas, Config{Merge: MergeOverlap}, "fused-1factor"},
	}
	for _, tc := range cases {
		if got := effectiveExchange(t, 8, tc.model, tc.cfg); got != tc.want {
			t.Errorf("%s: recorded exchange %q, want %q", tc.name, got, tc.want)
		}
	}
}
