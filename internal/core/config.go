// Package core implements the paper's contribution: a distributed histogram
// sort (§V) built on iterative splitter bisection, a single ALLTOALLV data
// exchange, and a choice of local merge strategies — together with the
// distributed k-selection (Algorithm 1) it generalizes.
//
// The algorithm works in four supersteps:
//
//  1. Local Sort — each rank sorts its partition with a fast shared-memory
//     sort.
//  2. Splitting — the splitters are determined with iterative histogramming
//     over the locally sorted partitions (Algorithms 2+3); data never moves.
//  3. Data Exchange — a permutation matrix is derived from the splitter
//     bounds with boundary refinement for perfect partitioning
//     (Algorithm 4), then a single ALLTOALLV moves every element exactly
//     once.
//  4. Local Merge — received runs are combined by re-sorting (the paper's
//     evaluated default), a binary merge tree, or a tournament tree (§V-C).
//
// No assumptions are made about the key distribution, the number of ranks
// (powers of two are not required), or the input partitioning (ranks may be
// empty — sparse inputs, §VII).
package core

import (
	"fmt"
	"runtime"

	"dhsort/internal/comm"
	"dhsort/internal/metrics"
	"dhsort/internal/store"
	"dhsort/internal/xmath"
)

// MergeStrategy selects the Local Merge algorithm (§V-C).
type MergeStrategy int

const (
	// MergeResort concatenates received runs and re-sorts — the strategy
	// the paper's evaluated implementation uses.
	MergeResort MergeStrategy = iota
	// MergeBinaryTree merges runs pairwise over log2(P) rounds.
	MergeBinaryTree
	// MergeLoserTree merges all runs at once through a tournament tree.
	MergeLoserTree
	// MergeOverlap fuses the data exchange with merging: the ALLTOALLV
	// is replaced by explicit 1-factor rounds [34] and each received
	// chunk is merged while later chunks are still in flight — the
	// communication/computation overlap sketched in §VI-E1.
	MergeOverlap
)

// String returns the strategy name.
func (m MergeStrategy) String() string {
	switch m {
	case MergeResort:
		return "resort"
	case MergeBinaryTree:
		return "binary-tree"
	case MergeLoserTree:
		return "loser-tree"
	case MergeOverlap:
		return "overlap"
	}
	return fmt.Sprintf("MergeStrategy(%d)", int(m))
}

// Config tunes a distributed sort.  The zero value is a valid configuration:
// perfect partitioning, re-sort merging, automatic exchange schedule.
type Config struct {
	// Epsilon is the load-balance threshold ε of Definition 1: after
	// sorting, every rank holds at most N(1+ε)/P elements.  Zero demands
	// perfect partitioning (every rank ends with exactly its input
	// capacity), the setting of all the paper's benchmarks.
	Epsilon float64

	// Merge selects the Local Merge strategy.
	Merge MergeStrategy

	// Exchange selects the data-exchange backend (§VI-E1): an ALLTOALLV
	// schedule (the zero value picks automatically by priced message size —
	// store-and-forward for small blocks, 1-factor otherwise), or
	// comm.ExchangeRMAPut for the one-sided put+notify exchange, which is
	// inherently fused with merging and takes precedence over Merge.
	// The ALLTOALLV schedules are ignored by MergeOverlap, which brings
	// its own 1-factor schedule.
	Exchange comm.AlltoallAlgorithm

	// ForceUnique applies the (key, rank, index) uniqueness
	// transformation of §V-A, making every key globally distinct at the
	// cost of 8 extra bytes per key during the exchange and up to 64
	// extra bisection iterations (the 128-bit embedding).
	//
	// It is off by default: the boundary refinement of Algorithm 4
	// splits runs of equal keys across ranks exactly, so perfect
	// partitioning holds for any input without the transformation, and
	// iteration counts match the paper's key-width bounds (~30 for keys
	// in [0, 1e9]).  Enable it to reproduce the transformed variant or
	// to make splitter values themselves unique.
	ForceUnique bool

	// VirtualScale prices bulk data (local sorting/merging and the
	// ALLTOALLV payload) as if each rank held VirtualScale times its real
	// element count.  It lets paper-scale volumes drive the cost model
	// while the run executes — and is verified — on reduced data.
	// Values < 1 are treated as 1.  Only meaningful under a cost model.
	VirtualScale float64

	// MaxIterations bounds splitter refinement as a safety net.  The
	// bisection converges within the key width (≤ 128 with the
	// uniqueness transformation); 0 means that bound.
	MaxIterations int

	// Kernel forces a specific Local Sort kernel instead of the automatic
	// dispatch: KernelRadix, KernelTaskMerge or KernelIntrosort.  Empty
	// means dispatch by key capability and thread budget.  Forcing
	// KernelRadix on keys without a fixed-width image falls back to the
	// comparison kernels.  Useful for ablations — e.g. reproducing the
	// paper's comparison-sort local phase (its implementation used
	// std::sort) next to the radix fast path.
	Kernel string

	// Threads is the intra-rank worker budget of the compute supersteps:
	// the Local Sort kernel, the per-splitter histogram searches, and the
	// Local Merge all fork-join across up to Threads goroutines.  Zero
	// means runtime.GOMAXPROCS(0).  Set 1 for fully sequential kernels —
	// required for cross-machine-reproducible virtual clocks, since the
	// cost model prices the thread budget.
	Threads int

	// Rebalance enables the bounded post-merge rebalance step of the
	// skew-proofing path: after the Local Merge, output bucket sizes are
	// checked against the Definition 1 bound, and any surplus is shed to
	// line neighbors in deterministic order-preserving rounds (capped at
	// P), priced on the virtual clock and recorded in metrics.  The
	// histogram sort's boundary refinement already yields exact counts, so
	// this is a safety net for bounded-iteration runs (MaxIterations set
	// low) and for callers feeding pre-partitioned skewed data; it is off
	// by default and fault-free metrics are unchanged when it never fires.
	Rebalance bool

	// Recovery selects how the sort survives a permanent rank death
	// (fault.Plan Deaths / comm.ErrRankDead):
	//
	//   - RecoveryRespawn (or ""): the PR-4 behaviour — crashed ranks
	//     respawn from their checkpoints, but a permanent death surfaces as
	//     a typed error and aborts the run.
	//   - RecoveryShrink: ULFM-style graceful degradation — survivors
	//     revoke the communicator, agree on the survivor bitmap, shrink to
	//     a dense P−1 communicator, adopt the victim's ring-mirrored
	//     checkpoint shard, and redo the sort there.
	//
	// Only meaningful in fault-injecting worlds; fault-free runs ignore it.
	Recovery string

	// Probes is the number of histogram probes placed per unfinished
	// splitter boundary per refinement round — the k of k-ary search.
	// 0 or 1 is the paper's bisection (one midpoint probe, round count
	// log2 of the key range); k > 1 places k evenly spaced probes across
	// each open interval, cutting rounds to log_{k+1} of the range at the
	// cost of a k·(P-1)-sized ALLREDUCE payload per round.  The
	// latency/bandwidth trade is priced honestly on the virtual clock:
	// more search work and larger reductions per round, far fewer rounds.
	// Capped at MaxProbes.
	Probes int

	// Warm seeds splitter refinement with per-splitter [Lo, Hi] intervals
	// in the embedded key space — typically the converged splitters of an
	// earlier run over the same distribution (see SplitterSink), widened
	// by a little slack.  Ignored unless len(Warm) equals P-1.  Intervals
	// are clamped to the run's global key extrema; a stale interval that
	// collapses without satisfying the histogram condition falls back to
	// the cold full-range bounds for that splitter, so warm starts can
	// speed refinement up but never change its result.
	Warm []WarmInterval

	// MemBudget caps this rank's resident working set in bytes.  When the
	// local partition's key volume (len(local) · ops.Bytes()) exceeds the
	// budget — and the key type round-trips its 128-bit embedding exactly
	// (keys.Lossless) — the sort runs the external-memory path: local sort
	// produces budget-sized sorted runs in the out-of-core store, a
	// loser-tree k-way merge combines them into the rank's sorted partition
	// run, the search supersteps (Splitting, ComputeCuts) binary-search the
	// run through a block cache, and exchange buffers land in per-rank
	// scratch runs instead of growing slices.  Setting any positive budget
	// also forces the fused 1-factor exchange on every rank (the collective
	// pattern must be config-consistent even when only some ranks exceed
	// the budget).  0 disables spilling.  Keys without a lossless embedding
	// (pairs, strings) stay resident regardless.
	MemBudget int64

	// SpillDir roots a filesystem store for the spill runs (and, when set,
	// durable checkpoint shards).  Empty with a nil Store means spills go
	// to a run-private in-memory store — budget-bounded execution without a
	// scratch directory, and no durable checkpoints.
	SpillDir string

	// SpillFanIn is the k of the external k-way merge: how many runs merge
	// simultaneously per pass.  0 means store.DefaultFanIn.
	SpillFanIn int

	// Store overrides the spill/checkpoint store directly (it wins over
	// SpillDir).  Sharing one Store across ranks is what makes checkpoint
	// shards durable: any survivor can read a victim's shard back.
	Store store.Store

	// SplitterSink, when non-nil, receives the converged splitter bit
	// points and the refinement iteration count at the end of the
	// Splitting superstep.  It is called by every rank of the collective
	// (the splitters are identical across ranks), so implementations must
	// be safe for concurrent use.  The sort service's warm-start cache
	// feeds on it.
	SplitterSink func(bits []xmath.U128, iters int)

	// Recorder, when non-nil, receives this rank's phase timings and
	// iteration counts.
	Recorder *metrics.Recorder
}

// WarmInterval is one splitter's warm-start bound in the embedded key
// space (see Config.Warm and keys.Ops.ToBits).
type WarmInterval struct {
	Lo, Hi xmath.U128
}

// MaxProbes bounds Config.Probes: beyond this the ALLREDUCE payload grows
// without measurably cutting rounds (log_{65}(2^64) is already ~11).
const MaxProbes = 64

// Recovery modes for Config.Recovery.
const (
	// RecoveryRespawn keeps the checkpoint/respawn semantics of the crash
	// schedule and treats a permanent death as fatal (the default).
	RecoveryRespawn = "respawn"
	// RecoveryShrink continues on the survivors after a permanent death:
	// revoke, agree, shrink, adopt the mirrored shard, redo.
	RecoveryShrink = "shrink"
)

// scale returns the effective VirtualScale.
func (cfg Config) scale() float64 {
	if cfg.VirtualScale < 1 {
		return 1
	}
	return cfg.VirtualScale
}

// threads returns the effective intra-rank worker budget.
func (cfg Config) threads() int {
	if cfg.Threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return cfg.Threads
}

// probes returns the effective probe count per unfinished boundary.
func (cfg Config) probes() int {
	if cfg.Probes <= 1 {
		return 1
	}
	return cfg.Probes
}

// fanIn returns the effective external-merge fan-in.
func (cfg Config) fanIn() int {
	if cfg.SpillFanIn < 2 {
		return store.DefaultFanIn
	}
	return cfg.SpillFanIn
}

// durableStore returns the shared store durable checkpoints (and shared
// spill runs) live in, or nil when the configuration names none — a
// run-private memory store is then used for spills, and checkpoints keep
// the legacy ring-mirror deep copies.
func (cfg Config) durableStore() store.Store {
	if cfg.Store != nil {
		return cfg.Store
	}
	if cfg.SpillDir != "" {
		return store.NewFS(cfg.SpillDir)
	}
	return nil
}

// maxIters returns the effective iteration bound.
func (cfg Config) maxIters() int {
	if cfg.MaxIterations <= 0 {
		return 130 // 128-bit embedding + slack
	}
	return cfg.MaxIterations
}

// validate rejects nonsensical configurations.
func (cfg Config) validate() error {
	if cfg.Epsilon < 0 {
		return fmt.Errorf("core: Epsilon must be non-negative, got %v", cfg.Epsilon)
	}
	if cfg.Merge < MergeResort || cfg.Merge > MergeOverlap {
		return fmt.Errorf("core: unknown merge strategy %d", int(cfg.Merge))
	}
	if cfg.Exchange < comm.AlltoallAuto || cfg.Exchange > comm.ExchangeRMAPut {
		return fmt.Errorf("core: unknown exchange algorithm %d", int(cfg.Exchange))
	}
	if cfg.Threads < 0 {
		return fmt.Errorf("core: Threads must be non-negative, got %d", cfg.Threads)
	}
	if cfg.Probes < 0 {
		return fmt.Errorf("core: Probes must be non-negative, got %d", cfg.Probes)
	}
	if cfg.Probes > MaxProbes {
		return fmt.Errorf("core: Probes must be at most %d, got %d", MaxProbes, cfg.Probes)
	}
	if cfg.MemBudget < 0 {
		return fmt.Errorf("core: MemBudget must be non-negative, got %d", cfg.MemBudget)
	}
	if cfg.SpillFanIn < 0 || cfg.SpillFanIn == 1 {
		return fmt.Errorf("core: SpillFanIn must be 0 (default) or at least 2, got %d", cfg.SpillFanIn)
	}
	if cfg.MemBudget > 0 && cfg.Recovery == RecoveryShrink && cfg.durableStore() == nil {
		return fmt.Errorf("core: MemBudget with shrink recovery needs a shared store (Store or SpillDir) so survivors can adopt durable shards")
	}
	switch cfg.Kernel {
	case "", KernelRadix, KernelTaskMerge, KernelIntrosort:
	default:
		return fmt.Errorf("core: unknown local sort kernel %q", cfg.Kernel)
	}
	switch cfg.Recovery {
	case "", RecoveryRespawn, RecoveryShrink:
	default:
		return fmt.Errorf("core: unknown recovery mode %q (want %q or %q)", cfg.Recovery, RecoveryRespawn, RecoveryShrink)
	}
	return nil
}
