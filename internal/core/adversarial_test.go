package core

import (
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

func TestSortShiftedWorstCaseExchange(t *testing.T) {
	// Every element must relocate; correctness and balance must hold.
	p := 8
	spec := workload.Spec{Dist: workload.Shifted, Seed: 97, Span: 1e9, Ranks: p}
	ins, outs := runSort(t, p, spec, 400, Config{}, nil)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortShiftedMovesAlmostEverything(t *testing.T) {
	// The shifted workload forces ~100% of the data across the wire;
	// verify through the communication accounting.
	p, perRank := 8, 512
	model := simnet.SuperMUC(1, true) // 1 rank/node: all traffic is network
	w, _ := comm.NewWorld(p, model)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Shifted, Seed: 98, Span: 1e9, Ranks: p}
		local, _ := spec.Rank(c.Rank(), perRank)
		_, err := Sort(c, local, u64, Config{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := w.TotalStats()
	dataFloor := int64(p*perRank) * 8 // every key crosses at least once
	if stats.NetworkBytes() < dataFloor {
		t.Fatalf("network volume %d below the full-relocation floor %d", stats.NetworkBytes(), dataFloor)
	}
}

func TestSortReverseSorted(t *testing.T) {
	spec := workload.Spec{Dist: workload.ReverseSorted, Seed: 99, Span: 1e9}
	ins, outs := runSort(t, 7, spec, 300, Config{}, nil)
	checkSorted(t, ins, outs, true, 0)
}

func TestSortNearlySortedMovesLittle(t *testing.T) {
	// The converse of the shifted case: nearly sorted input should keep
	// most data local (cuts fall close to rank boundaries).  The local
	// share must be large enough that histogram control traffic (fixed
	// O(iterations × P log P)) does not mask the data volume.
	p, perRank := 8, 16384
	model := simnet.SuperMUC(1, true)
	w, _ := comm.NewWorld(p, model)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.NearlySorted, Seed: 100, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		_, err := Sort(c, local, u64, Config{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := w.TotalStats()
	dataCeiling := int64(p*perRank) * 8 / 2 // far less than half relocates
	if stats.NetworkBytes() > dataCeiling {
		t.Fatalf("nearly-sorted input moved %d bytes, expected < %d", stats.NetworkBytes(), dataCeiling)
	}
}

func TestOneDataMoveInvariant(t *testing.T) {
	// §V-B: elements cross the network exactly once; total communication
	// must be the data volume plus small control traffic — a regression
	// guard against the exchange accidentally taking a multi-hop
	// schedule for bulk data.
	p, perRank, scale := 32, 2048, 1024.0
	model := simnet.SuperMUC(16, true)
	w, _ := comm.NewWorld(p, model)
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 111, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		_, err := Sort(c, local, u64, Config{VirtualScale: scale})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := w.TotalStats()
	dataBytes := float64(p*perRank) * 8 * scale
	if got := float64(stats.TotalBytes()); got > 1.15*dataBytes {
		t.Fatalf("total volume %.0f exceeds one-move budget %.0f", got, dataBytes)
	}
}
