// Package stats provides the summary statistics the paper's evaluation
// reports: medians of repeated runs with 95% confidence intervals (§VI-B:
// "We always report the median time out of 10 executions along with the
// 95% confidence interval"), plus speedup and parallel efficiency.
package stats

import (
	"math"
	"sort"
	"time"
)

// Summary describes a set of repeated measurements.
type Summary struct {
	// Median is the middle measurement.
	Median time.Duration
	// Mean is the arithmetic mean.
	Mean time.Duration
	// Stddev is the sample standard deviation.
	Stddev time.Duration
	// CILow and CIHigh bound the 95% confidence interval of the median
	// (distribution-free order-statistic interval; for fewer than 6
	// samples it degenerates to the min/max).
	CILow, CIHigh time.Duration
	// N is the number of measurements.
	N int
}

// Summarize computes a Summary of the given runs.  It returns the zero
// Summary for an empty input.
func Summarize(runs []time.Duration) Summary {
	n := len(runs)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]time.Duration(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var s Summary
	s.N = n
	s.Median = median(sorted)

	var sum float64
	for _, r := range sorted {
		sum += float64(r)
	}
	mean := sum / float64(n)
	s.Mean = time.Duration(mean)
	if n > 1 {
		var ss float64
		for _, r := range sorted {
			d := float64(r) - mean
			ss += d * d
		}
		s.Stddev = time.Duration(math.Sqrt(ss / float64(n-1)))
	}

	// Distribution-free CI for the median: ranks mean ± 1.96·sqrt(n)/2.
	half := 1.96 * math.Sqrt(float64(n)) / 2
	lo := int(math.Floor(float64(n)/2 - half))
	hi := int(math.Ceil(float64(n)/2+half)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	s.CILow, s.CIHigh = sorted[lo], sorted[hi]
	return s
}

func median(sorted []time.Duration) time.Duration {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Speedup returns base/t — how many times faster t is than the baseline.
func Speedup(base, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(base) / float64(t)
}

// Efficiency returns the parallel efficiency of a strong-scaling point:
// speedup relative to the base divided by the processor ratio.
func Efficiency(base time.Duration, baseP int, t time.Duration, p int) float64 {
	if t <= 0 || p <= 0 || baseP <= 0 {
		return 0
	}
	return Speedup(base, t) * float64(baseP) / float64(p)
}

// WeakEfficiency returns base/t for a weak-scaling point (ideal is 1.0:
// time stays flat as work and processors grow together).
func WeakEfficiency(base, t time.Duration) float64 {
	return Speedup(base, t)
}
