package stats

import (
	"testing"
	"time"
)

func ms(v ...int) []time.Duration {
	out := make([]time.Duration, len(v))
	for i, x := range v {
		out[i] = time.Duration(x) * time.Millisecond
	}
	return out
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Median != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize(ms(10))
	if s.Median != 10*time.Millisecond || s.Mean != 10*time.Millisecond || s.N != 1 {
		t.Fatalf("%+v", s)
	}
	if s.CILow != s.Median || s.CIHigh != s.Median {
		t.Fatal("single-sample CI must collapse")
	}
}

func TestSummarizeOddEven(t *testing.T) {
	odd := Summarize(ms(30, 10, 20))
	if odd.Median != 20*time.Millisecond {
		t.Fatalf("odd median = %v", odd.Median)
	}
	even := Summarize(ms(10, 20, 30, 40))
	if even.Median != 25*time.Millisecond {
		t.Fatalf("even median = %v", even.Median)
	}
}

func TestSummarizeTenRuns(t *testing.T) {
	// The paper's protocol: median of 10 with a 95% CI.
	s := Summarize(ms(11, 12, 13, 14, 15, 16, 17, 18, 19, 100))
	if s.Median != (15*time.Millisecond+16*time.Millisecond)/2 {
		t.Fatalf("median = %v", s.Median)
	}
	if s.CILow > s.Median || s.CIHigh < s.Median {
		t.Fatal("CI must bracket the median")
	}
	if s.CILow < 11*time.Millisecond || s.CIHigh > 100*time.Millisecond {
		t.Fatal("CI outside data range")
	}
	if s.Stddev <= 0 {
		t.Fatal("stddev must be positive")
	}
}

func TestSummarizeRobustToOutlier(t *testing.T) {
	s := Summarize(ms(10, 10, 10, 10, 10, 10, 10, 10, 10, 1000))
	if s.Median != 10*time.Millisecond {
		t.Fatalf("median not robust: %v", s.Median)
	}
	if s.Mean <= s.Median {
		t.Fatal("mean should exceed median with a high outlier")
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	if Speedup(100*time.Millisecond, 25*time.Millisecond) != 4 {
		t.Fatal("speedup wrong")
	}
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero time must give zero speedup")
	}
	// 4x ranks, 4x faster: perfect efficiency.
	if e := Efficiency(100*time.Millisecond, 2, 25*time.Millisecond, 8); e != 1 {
		t.Fatalf("efficiency = %v", e)
	}
	// 4x ranks, 2x faster: 0.5.
	if e := Efficiency(100*time.Millisecond, 2, 50*time.Millisecond, 8); e != 0.5 {
		t.Fatalf("efficiency = %v", e)
	}
	if Efficiency(time.Second, 0, time.Second, 4) != 0 {
		t.Fatal("degenerate efficiency must be zero")
	}
}

func TestWeakEfficiency(t *testing.T) {
	if WeakEfficiency(2*time.Second, 4*time.Second) != 0.5 {
		t.Fatal("weak efficiency wrong")
	}
}
