package comm

import (
	"fmt"
	"reflect"
)

// elemBytes returns the in-memory size of one element of type T, used for
// communication-volume accounting.
func elemBytes[T any]() int {
	var z T
	return int(reflect.TypeOf(&z).Elem().Size())
}

// checkUserTag validates an application-supplied tag: non-negative and
// below the library-reserved space (see UserTagLimit).
func checkUserTag(tag int) {
	if tag < 0 {
		panic("comm: user tags must be non-negative")
	}
	if tag >= UserTagLimit {
		panic(fmt.Sprintf("comm: tag %d is in the library-reserved space [%d, ∞): "+
			"user tags must be below comm.UserTagLimit (the fused exchange and rma "+
			"notification protocols own the tags above it)", tag, UserTagLimit))
	}
}

// Send delivers a copy of data to dst under the given tag (tag in
// [0, UserTagLimit)).  Sends are eager: they buffer at the receiver and
// never block.
func Send[T any](c *Comm, dst, tag int, data []T) {
	SendScaled(c, dst, tag, data, 1)
}

// SendScaled is Send with the payload priced at byteScale times its real
// size in the network cost model — used when experiments execute on reduced
// data that stands in for a paper-scale volume (Config.VirtualScale).
func SendScaled[T any](c *Comm, dst, tag int, data []T, byteScale float64) {
	checkUserTag(tag)
	sendSlice(c, dst, tag, data, byteScale)
}

// Recv blocks for a message from src (or AnySource) under tag and returns
// its payload.  The returned slice is owned by the caller.
func Recv[T any](c *Comm, src, tag int) []T {
	checkUserTag(tag)
	return c.recv(src, tag).payload.([]T)
}

// RecvAny blocks for a message from any source under tag and returns the
// payload together with the sender's rank.
func RecvAny[T any](c *Comm, tag int) ([]T, int) {
	checkUserTag(tag)
	e := c.recv(AnySource, tag)
	return e.payload.([]T), e.src
}

// SendOne delivers a single value to dst under tag.
func SendOne[T any](c *Comm, dst, tag int, v T) {
	checkUserTag(tag)
	c.send(dst, tag, v, elemBytes[T](), 1)
}

// RecvOne blocks for a single value from src (or AnySource) under tag.
func RecvOne[T any](c *Comm, src, tag int) T {
	checkUserTag(tag)
	return c.recv(src, tag).payload.(T)
}

// sendSlice copies data (senders may reuse their buffers immediately, and
// tree collectives may deliver one buffer to several ranks) and ships it.
func sendSlice[T any](c *Comm, dst, tag int, data []T, byteScale float64) {
	cp := make([]T, len(data))
	copy(cp, data)
	c.send(dst, tag, cp, len(data)*elemBytes[T](), byteScale)
}

// recvSlice receives a []T payload.
func recvSlice[T any](c *Comm, src, tag int) []T {
	return c.recv(src, tag).payload.([]T)
}
