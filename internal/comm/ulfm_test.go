package comm

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"dhsort/internal/fault"
	"dhsort/internal/simnet"
)

// diePlan is a minimal fault plan whose only purpose is to arm the
// injector (inj != nil) with a death schedule, enabling the failure
// registry and the liveness checks.
func diePlan(rank, step int) fault.Plan {
	return fault.Plan{Seed: 1, Deaths: []fault.Death{{Rank: rank, Step: step}}}
}

// TestTryCatchesFailureError pins the recovery boundary: Try converts a
// FailureError panic into an error carrying the sentinel, and re-raises
// anything else.
func TestTryCatchesFailureError(t *testing.T) {
	err := Try(func() {
		panic(&FailureError{err: ErrRankDead, Rank: 3, Comm: 1, Detail: "test"})
	})
	if !errors.Is(err, ErrRankDead) {
		t.Fatalf("Try must surface ErrRankDead, got: %v", err)
	}
	var fe *FailureError
	if !errors.As(err, &fe) || fe.Rank != 3 {
		t.Fatalf("Try must surface the typed failure, got: %#v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Try swallowed a foreign panic")
		}
	}()
	_ = Try(func() { panic("not a failure") })
}

// TestDieUnwindsBlockedReceiver is the asynchronous detection path: a rank
// that dies mid-computation wakes a peer blocked on a receive from it, and
// the peer's receive raises the typed ErrRankDead through Try.
func TestDieUnwindsBlockedReceiver(t *testing.T) {
	w, err := NewWorldWithFaults(2, simnet.SuperMUC(2, true), diePlan(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Die() // never returns
		}
		rerr := Try(func() { RecvOne[int](c, 1, 5) })
		if !errors.Is(rerr, ErrRankDead) {
			t.Errorf("blocked receive from a dead rank must raise ErrRankDead, got: %v", rerr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.RankDead(1) || w.RankDead(0) {
		t.Errorf("dead-rank registry wrong: %v", w.DeadRanks())
	}
}

// TestDieIsCleanExit pins the world-level contract of a scheduled death:
// the victim's exit is not an error and does not abort the others.
func TestDieIsCleanExit(t *testing.T) {
	w, err := NewWorldWithFaults(4, simnet.SuperMUC(2, true), diePlan(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	var survivors int
	var mu sync.Mutex
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			c.Die()
		}
		mu.Lock()
		survivors++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("a scheduled death must not surface as a world error: %v", err)
	}
	if survivors != 3 {
		t.Fatalf("%d survivors returned, want 3", survivors)
	}
}

// TestRevokeAgreeShrink walks the full ULFM recipe at the comm level: rank
// 2 of 8 dies, the survivors revoke, agree on the survivor bitmap (passing
// the schedule-derived suspicion), shrink, and verify the new communicator
// is densely re-ranked in the original order and fully collective-capable.
func TestRevokeAgreeShrink(t *testing.T) {
	const p = 8
	w, err := NewWorldWithFaults(p, simnet.SuperMUC(4, true), diePlan(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		Barrier(c) // everyone up
		if c.Rank() == 2 {
			c.Die()
		}
		suspect := make([]bool, p)
		suspect[2] = true
		c.Revoke()
		if !c.Revoked() {
			t.Errorf("rank %d: communicator not revoked after Revoke", c.Rank())
		}
		alive, rounds := c.Agree(suspect)
		want := make([]bool, p)
		for i := range want {
			want[i] = i != 2
		}
		if !reflect.DeepEqual(alive, want) {
			t.Errorf("rank %d agreed on %v", c.Rank(), alive)
		}
		if rounds != 3 { // ceil(log2(7))
			t.Errorf("rank %d: %d agreement rounds, want 3", c.Rank(), rounds)
		}
		nc := c.Shrink(alive)
		if nc.Size() != p-1 {
			t.Errorf("shrunken communicator has size %d", nc.Size())
		}
		wantRank := c.Rank()
		if c.Rank() > 2 {
			wantRank--
		}
		if nc.Rank() != wantRank {
			t.Errorf("world rank %d got shrunken rank %d, want %d", c.Rank(), nc.Rank(), wantRank)
		}
		// The shrunken communicator must be fully usable: a collective
		// over the original world ranks proves clean transport state.
		got := AllgatherOne(nc, c.WorldRank())
		if !reflect.DeepEqual(got, []int{0, 1, 3, 4, 5, 6, 7}) {
			t.Errorf("allgather on shrunken comm: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAgreeMergesLaggingRegistration pins the consistency property Agree is
// built for: a survivor whose local registry view lags (the victim's
// registration not yet visible) still reaches the same bitmap because the
// schedule-derived suspicion is ORed with the registry.
func TestAgreeMergesLaggingRegistration(t *testing.T) {
	const p = 4
	w, err := NewWorldWithFaults(p, simnet.SuperMUC(2, true), diePlan(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		// Rank 3 "dies" without ever running: the others agree it away
		// purely from the suspicion, as if its registration had not
		// landed yet.
		if c.Rank() == 3 {
			c.Die()
		}
		suspect := make([]bool, p)
		suspect[3] = true
		alive, _ := c.Agree(suspect)
		if alive[3] || !alive[0] || !alive[1] || !alive[2] {
			t.Errorf("rank %d agreed on %v", c.Rank(), alive)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckRevokedGuardsOneSided pins the one-sided poison: after Revoke,
// CheckRevoked raises ErrCommRevoked through Try.
func TestCheckRevokedGuardsOneSided(t *testing.T) {
	w, err := NewWorldWithFaults(2, simnet.SuperMUC(2, true), diePlan(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		Barrier(c)
		c.Revoke()
		rerr := Try(func() { c.CheckRevoked() })
		if !errors.Is(rerr, ErrCommRevoked) {
			t.Errorf("CheckRevoked on a revoked communicator must raise ErrCommRevoked, got: %v", rerr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShrinkPreservesDeterministicIdentity pins the identity derivation:
// the shrunken communicator's id is a pure function of the parent id and
// the survivor bitmap, so identical runs (and all survivors within a run)
// land on the same communicator identity.
func TestShrinkPreservesDeterministicIdentity(t *testing.T) {
	const p = 4
	run := func() []uint64 {
		w, err := NewWorldWithFaults(p, simnet.SuperMUC(2, true), diePlan(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, p)
		var mu sync.Mutex
		err = w.Run(func(c *Comm) error {
			if c.Rank() == 1 {
				c.Die()
			}
			suspect := make([]bool, p)
			suspect[1] = true
			alive, _ := c.Agree(suspect)
			nc := c.Shrink(alive)
			mu.Lock()
			ids[c.Rank()] = nc.id
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("shrunken communicator identities differ across identical runs: %v vs %v", a, b)
	}
	if a[0] == 0 || a[0] != a[2] || a[0] != a[3] {
		t.Errorf("survivors disagree on the shrunken identity: %v", a)
	}
}
