package comm

import (
	"fmt"
	"testing"

	"dhsort/internal/simnet"
)

func TestOneFactorPartnerIsMatching(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8, 9, 16, 17} {
		rounds := p
		if p%2 == 0 {
			rounds = p - 1
		}
		met := make([]map[int]bool, p)
		for i := range met {
			met[i] = map[int]bool{}
		}
		for r := 0; r < rounds; r++ {
			for rank := 0; rank < p; rank++ {
				j := OneFactorPartner(p, r, rank)
				if j == rank {
					t.Fatalf("p=%d r=%d: rank %d paired with itself", p, r, rank)
				}
				if j < 0 {
					if p%2 == 0 {
						t.Fatalf("p=%d r=%d: rank %d idle in even p", p, r, rank)
					}
					continue
				}
				// Symmetry: the partner must agree.
				if back := OneFactorPartner(p, r, j); back != rank {
					t.Fatalf("p=%d r=%d: %d->%d but %d->%d", p, r, rank, j, j, back)
				}
				if met[rank][j] {
					t.Fatalf("p=%d: pair (%d,%d) scheduled twice", p, rank, j)
				}
				met[rank][j] = true
			}
		}
		// Every pair must have met exactly once.
		for i := 0; i < p; i++ {
			if len(met[i]) != p-1 {
				t.Fatalf("p=%d: rank %d met %d partners, want %d", p, i, len(met[i]), p-1)
			}
		}
	}
}

func testAlltoallAlg(t *testing.T, alg AlltoallAlgorithm) {
	t.Helper()
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		run(t, p, func(c *Comm) error {
			blocks := make([][]int, p)
			for dst := range blocks {
				// Variable sizes incl. empty blocks.
				n := (c.Rank() + dst) % 4
				blk := make([]int, n)
				for k := range blk {
					blk[k] = c.Rank()*10000 + dst*100 + k
				}
				blocks[dst] = blk
			}
			got := AlltoallWith(c, blocks, alg, 1)
			for src := range got {
				want := (src + c.Rank()) % 4
				if len(got[src]) != want {
					t.Errorf("alg=%v p=%d rank=%d: from %d got %d elems, want %d",
						alg, p, c.Rank(), src, len(got[src]), want)
					continue
				}
				for k, v := range got[src] {
					if v != src*10000+c.Rank()*100+k {
						t.Errorf("alg=%v p=%d rank=%d: wrong value from %d", alg, p, c.Rank(), src)
					}
				}
			}
			return nil
		})
	}
}

func TestAlltoallAlgorithms(t *testing.T) {
	for _, alg := range []AlltoallAlgorithm{AlltoallAuto, AlltoallPairwise, AlltoallOneFactor, AlltoallBruck} {
		t.Run(alg.String(), func(t *testing.T) { testAlltoallAlg(t, alg) })
	}
}

func TestAlltoallAlgorithmString(t *testing.T) {
	names := map[AlltoallAlgorithm]string{
		AlltoallAuto: "auto", AlltoallPairwise: "pairwise",
		AlltoallOneFactor: "one-factor", AlltoallBruck: "bruck",
		AlltoallAlgorithm(9): "AlltoallAlgorithm(9)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
}

func TestBruckLowerLatencyForSmallBlocks(t *testing.T) {
	// Store-and-forward wins the latency game for tiny blocks: with P
	// ranks, pairwise pays P α-latencies per rank while Bruck pays
	// ceil(log2 P); the virtual makespan must reflect that.
	const p = 32
	mk := func(alg AlltoallAlgorithm) int64 {
		w, _ := NewWorld(p, simnet.SuperMUC(16, true))
		err := w.Run(func(c *Comm) error {
			blocks := make([][]int64, p)
			for i := range blocks {
				blocks[i] = []int64{int64(i)}
			}
			AlltoallWith(c, blocks, alg, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(w.Makespan())
	}
	if b, pw := mk(AlltoallBruck), mk(AlltoallPairwise); b >= pw {
		t.Errorf("bruck (%d ns) should beat pairwise (%d ns) on tiny blocks", b, pw)
	}
}

func TestPairwiseLowerVolumeForLargeBlocks(t *testing.T) {
	// For large blocks Bruck's log-hop forwarding costs extra volume; the
	// direct schedules must win.
	const p = 16
	mk := func(alg AlltoallAlgorithm) int64 {
		w, _ := NewWorld(p, simnet.SuperMUC(16, true))
		err := w.Run(func(c *Comm) error {
			blocks := make([][]int64, p)
			for i := range blocks {
				blocks[i] = make([]int64, 4096)
			}
			AlltoallWith(c, blocks, alg, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(w.Makespan())
	}
	if of, br := mk(AlltoallOneFactor), mk(AlltoallBruck); of >= br {
		t.Errorf("one-factor (%d ns) should beat bruck (%d ns) on large blocks", of, br)
	}
}

func TestAlltoallAutoMatchesManual(t *testing.T) {
	// Auto must produce the same data as any manual algorithm.
	run(t, 6, func(c *Comm) error {
		blocks := make([][]string, 6)
		for d := range blocks {
			blocks[d] = []string{fmt.Sprintf("%d->%d", c.Rank(), d)}
		}
		got := AlltoallWith(c, blocks, AlltoallAuto, 1)
		for src := range got {
			if got[src][0] != fmt.Sprintf("%d->%d", src, c.Rank()) {
				t.Errorf("wrong payload from %d: %q", src, got[src][0])
			}
		}
		return nil
	})
}

func TestSendrecv(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		partner := c.Rank() ^ 1
		got := Sendrecv(c, partner, 3, []int{c.Rank()})
		if len(got) != 1 || got[0] != partner {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestScan(t *testing.T) {
	for _, p := range []int{1, 2, 5, 9} {
		run(t, p, func(c *Comm) error {
			got := Scan(c, c.Rank()+1, func(a, b int) int { return a + b })
			want := (c.Rank() + 1) * (c.Rank() + 2) / 2
			if got != want {
				t.Errorf("p=%d rank=%d: scan = %d, want %d", p, c.Rank(), got, want)
			}
			return nil
		})
	}
}

func TestReduceScatter(t *testing.T) {
	for _, p := range []int{1, 3, 4, 7} {
		run(t, p, func(c *Comm) error {
			// counts[i] = i+1; vector length = p(p+1)/2.
			counts := make([]int, p)
			n := 0
			for i := range counts {
				counts[i] = i + 1
				n += i + 1
			}
			data := make([]int, n)
			for i := range data {
				data[i] = i + c.Rank() // sums to p*i + p(p-1)/2
			}
			got := ReduceScatter(c, data, counts, func(a, b int) int { return a + b })
			if len(got) != c.Rank()+1 {
				t.Fatalf("p=%d rank=%d: block size %d", p, c.Rank(), len(got))
			}
			off := c.Rank() * (c.Rank() + 1) / 2
			for k, v := range got {
				want := p*(off+k) + p*(p-1)/2
				if v != want {
					t.Errorf("p=%d rank=%d: got[%d] = %d, want %d", p, c.Rank(), k, v, want)
				}
			}
			return nil
		})
	}
}

func TestMinMaxLoc(t *testing.T) {
	run(t, 7, func(c *Comm) error {
		v := (c.Rank()*3 + 2) % 7 // values 2,5,1,4,0,3,6 for ranks 0..6
		less := func(a, b int) bool { return a < b }
		minV, minR := MinLoc(c, v, less)
		if minV != 0 || minR != 4 {
			t.Errorf("MinLoc = (%d,%d)", minV, minR)
		}
		maxV, maxR := MaxLoc(c, v, less)
		if maxV != 6 || maxR != 6 {
			t.Errorf("MaxLoc = (%d,%d)", maxV, maxR)
		}
		return nil
	})
}

func TestMinLocTieBreaksLowestRank(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		_, r := MinLoc(c, 7, func(a, b int) bool { return a < b })
		if r != 0 {
			t.Errorf("tie must resolve to rank 0, got %d", r)
		}
		return nil
	})
}
