package comm

import (
	"fmt"
	"sort"
)

// AlltoallvHier is the hierarchical, leader-based ALLTOALLV of §VI-E1:
// "For inter-node communication we borrow techniques from studies about
// hierarchical collectives ... A set of dedicated leader cores on a single
// node is responsible for communication while the others perform the
// merging process."
//
// Ranks are grouped into nodes of ranksPerNode consecutive *world* ranks
// (matching the cost model's topology).  Each node's first rank acts as
// the leader: members hand their data to it intra-node (cheap under PGAS
// pricing), the leaders run one aggregated exchange across the network —
// (P/ranksPerNode)² network messages instead of P² — and redistribute to
// their members.
//
// The result is identical to Alltoallv: the receive buffer is ordered by
// global source rank, with per-source counts.
func AlltoallvHier[T any](c *Comm, data []T, sendCounts []int, ranksPerNode int, byteScale float64) ([]T, []int) {
	p := c.Size()
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: AlltoallvHier needs %d counts, got %d", p, len(sendCounts)))
	}
	if ranksPerNode < 1 {
		panic("comm: ranksPerNode must be positive")
	}
	total := 0
	for _, n := range sendCounts {
		if n < 0 {
			panic("comm: negative send count")
		}
		total += n
	}
	if total != len(data) {
		panic(fmt.Sprintf("comm: send counts sum to %d, buffer has %d", total, len(data)))
	}

	// Node grouping by world rank, so groups match the topology.
	myNode := c.WorldRank() / ranksPerNode
	nodeOf := AllgatherOne(c, myNode) // comm rank -> node id
	node := c.Split(myNode, c.Rank())
	isLeader := node.Rank() == 0
	leaders := c.Split(boolToInt(isLeader), c.Rank())

	// Step 1: members hand (counts, data) to their leader.
	countBlocks := Gather(node, 0, intsToInt64(sendCounts))
	dataBlocks := Gather(node, 0, data)

	if !isLeader {
		// Step 4 (member side): receive the final partition.
		out := Scatter[T](node, 0, nil)
		counts := Scatter[int64](node, 0, nil)
		return out, int64sToInts(counts)
	}

	// Leader bookkeeping: members of every node, ascending comm rank, and
	// the leaders-communicator index of every node.
	membersOf := map[int][]int{}
	for r, nid := range nodeOf {
		membersOf[nid] = append(membersOf[nid], r)
	}
	nodeByLeader := AllgatherOne(leaders, myNode) // leaders rank -> node id
	g := leaders.Size()

	// Step 2: build one aggregated block per destination node: for each
	// local member s (ascending), for each destination rank d of that
	// node (ascending), member s's segment for d — plus the matching
	// count matrix.
	offsets := make([][]int64, node.Size())
	for s := range offsets {
		offsets[s] = make([]int64, p+1)
		for d := 0; d < p; d++ {
			offsets[s][d+1] = offsets[s][d] + countBlocks[s][d]
		}
	}
	dataOut := make([][]T, g)
	metaOut := make([][]int64, g)
	for lg := 0; lg < g; lg++ {
		destRanks := membersOf[nodeByLeader[lg]]
		var buf []T
		meta := make([]int64, 0, node.Size()*len(destRanks))
		for s := 0; s < node.Size(); s++ {
			for _, d := range destRanks {
				seg := dataBlocks[s][offsets[s][d]:offsets[s][d+1]]
				buf = append(buf, seg...)
				meta = append(meta, int64(len(seg)))
			}
		}
		dataOut[lg] = buf
		metaOut[lg] = meta
	}

	// Step 3: the aggregated network exchange among leaders.
	metaIn := Alltoall(leaders, metaOut)
	dataIn := AlltoallScaled(leaders, dataOut, byteScale)

	// Step 4 (leader side): reassemble per-member buffers ordered by
	// global source rank, then scatter within the node.
	myMembers := membersOf[myNode]
	type seg struct {
		src  int
		data []T
	}
	perMember := make(map[int][]seg, len(myMembers))
	for lg := 0; lg < g; lg++ {
		srcRanks := membersOf[nodeByLeader[lg]]
		meta, buf := metaIn[lg], dataIn[lg]
		mi, off := 0, 0
		for _, s := range srcRanks {
			for _, d := range myMembers {
				n := int(meta[mi])
				mi++
				if n > 0 {
					perMember[d] = append(perMember[d], seg{src: s, data: buf[off : off+n]})
				}
				off += n
			}
		}
	}
	outBlocks := make([][]T, node.Size())
	countOut := make([][]int64, node.Size())
	for i, d := range myMembers {
		segs := perMember[d]
		sort.Slice(segs, func(a, b int) bool { return segs[a].src < segs[b].src })
		counts := make([]int64, p)
		var buf []T
		for _, sg := range segs {
			counts[sg.src] = int64(len(sg.data))
			buf = append(buf, sg.data...)
		}
		outBlocks[i] = buf
		countOut[i] = counts
	}
	out := Scatter(node, 0, outBlocks)
	counts := Scatter(node, 0, countOut)
	return out, int64sToInts(counts)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func intsToInt64(in []int) []int64 {
	out := make([]int64, len(in))
	for i, v := range in {
		out[i] = int64(v)
	}
	return out
}

func int64sToInts(in []int64) []int {
	out := make([]int, len(in))
	for i, v := range in {
		out[i] = int(v)
	}
	return out
}
