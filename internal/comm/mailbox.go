package comm

import (
	"sync"
	"time"
)

// AnySource matches a message from any sender in Recv operations
// (MPI_ANY_SOURCE).
const AnySource = -1

// UserTagLimit bounds the application tag space: user point-to-point tags
// must lie in [0, UserTagLimit).  Tags at or above the limit are reserved
// for library-internal protocols — the fused exchange of
// core.ExchangeAndMerge uses [UserTagLimit, UserTagLimit+P) for its
// 1-factor rounds, and rma windows draw notification tags from
// Comm.ReserveProtocolTag — so a colliding user tag would silently corrupt
// those protocols.  The Send/Recv family panics on reserved tags instead.
// (Collectives use a disjoint negative tag space and cannot collide.)
const UserTagLimit = 1 << 30

// envelope is one in-flight message.
type envelope struct {
	comm    uint64        // communicator identity
	src     int           // sender's rank within that communicator
	tag     int           // matching tag
	arrival time.Duration // virtual arrival time (0 in real-time mode)
	payload any
}

// mailbox is one rank's unbounded receive queue with MPI-style
// (communicator, source, tag) matching.  Sends are eager (never block);
// receives block until a matching envelope arrives.  Messages from the same
// sender with the same tag are matched in FIFO order.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []envelope
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		return
	}
	m.queue = append(m.queue, e)
	m.cond.Broadcast()
}

// get blocks until an envelope matching (comm, src, tag) is available and
// removes it.  src may be AnySource.  It panics with errAborted if the
// world is torn down while waiting.
func (m *mailbox) get(comm uint64, src, tag int) envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			panic(errAborted)
		}
		for i := range m.queue {
			e := m.queue[i]
			if e.comm == comm && e.tag == tag && (src == AnySource || e.src == src) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return e
			}
		}
		m.cond.Wait()
	}
}

func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
