package comm

import (
	"fmt"
	"sync"
	"time"
)

// AnySource matches a message from any sender in Recv operations
// (MPI_ANY_SOURCE).
const AnySource = -1

// UserTagLimit bounds the application tag space: user point-to-point tags
// must lie in [0, UserTagLimit).  Tags at or above the limit are reserved
// for library-internal protocols — the fused exchange of
// core.ExchangeAndMerge uses [UserTagLimit, UserTagLimit+P) for its
// 1-factor rounds, and rma windows draw notification tags from
// Comm.ReserveProtocolTag — so a colliding user tag would silently corrupt
// those protocols.  The Send/Recv family panics on reserved tags instead.
// (Collectives use a disjoint negative tag space and cannot collide.)
const UserTagLimit = 1 << 30

// envelope is one in-flight message.
type envelope struct {
	comm    uint64        // communicator identity
	src     int           // sender's rank within that communicator
	tag     int           // matching tag
	arrival time.Duration // virtual arrival time (0 in real-time mode)
	payload any

	// Reliable-transport fields, used only under fault injection.  seq 0
	// marks an unsequenced envelope (the fault-free fast path and raw
	// protocol posts); sequenced flows number from 1 per (comm, src, tag).
	seq   uint64
	front bool // injected reorder: jump ahead of the queued envelopes
}

// flowKey identifies one sequenced message flow at a receiver.
type flowKey struct {
	comm uint64
	src  int
	tag  int
}

// mailbox is one rank's unbounded receive queue with MPI-style
// (communicator, source, tag) matching.  Sends are eager (never block);
// receives block until a matching envelope arrives.  Messages from the same
// sender with the same tag are matched in FIFO order.
//
// Under fault injection, envelopes carry per-flow sequence numbers and the
// mailbox becomes the resequencing/dedup stage of the reliable transport: a
// receive for a sequenced flow delivers exactly the next expected sequence
// number, discards duplicates (seq already delivered), and holds back
// envelopes that arrived ahead of order until their turn.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []envelope
	aborted bool

	// expected is the next undelivered sequence number per sequenced flow
	// (missing = 1); allocated lazily so fault-free worlds never touch it.
	expected map[flowKey]uint64

	// watchdog, when positive, bounds the wall-clock time a get may block
	// before declaring the world wedged (fault.Plan.Watchdog).
	watchdog time.Duration
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		return
	}
	m.insert(e)
	m.cond.Broadcast()
}

// putPair enqueues a message and its injected duplicate atomically, so no
// receiver can observe the original without its copy.  This keeps the
// receiver-side dedup counter deterministic: the delivery sweep (see get)
// always finds the duplicate, regardless of goroutine timing.
func (m *mailbox) putPair(e, d envelope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		return
	}
	m.insert(e)
	m.insert(d)
	m.cond.Broadcast()
}

// insert places an envelope; callers hold mu.
func (m *mailbox) insert(e envelope) {
	if e.front {
		m.queue = append([]envelope{e}, m.queue...)
	} else {
		m.queue = append(m.queue, e)
	}
}

// get blocks until an envelope matching (comm, src, tag) is deliverable and
// removes it, returning it together with the number of duplicate envelopes
// of the same flow it discarded along the way.  src may be AnySource.  It
// panics with errAborted if the world is torn down while waiting, and with
// a watchdog error if the receive exceeds the configured wall-clock bound.
// check, when non-nil, is consulted whenever no envelope is deliverable: it
// panics with a FailureError if the awaited sender is dead or the
// communicator revoked (the ULFM detection path), which unwinds through the
// deferred unlock.
func (m *mailbox) get(comm uint64, src, tag int, check func()) (envelope, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dups := 0
	var deadline time.Time
	if m.watchdog > 0 {
		deadline = time.Now().Add(m.watchdog)
	}
	for {
		if m.aborted {
			panic(errAborted)
		}
		i := 0
		for i < len(m.queue) {
			e := m.queue[i]
			if e.comm != comm || e.tag != tag || (src != AnySource && e.src != src) {
				i++
				continue
			}
			if e.seq == 0 {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return e, dups
			}
			fk := flowKey{e.comm, e.src, e.tag}
			next := m.expected[fk]
			if next == 0 {
				next = 1
			}
			switch {
			case e.seq < next:
				// Duplicate of an already-delivered message: discard and
				// keep scanning from the same position.
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				dups++
			case e.seq == next:
				if m.expected == nil {
					m.expected = make(map[flowKey]uint64)
				}
				m.expected[fk] = next + 1
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				// Delivery sweep: discard the flow's stale duplicates in the
				// rest of the queue right now.  Envelopes before i were
				// already adjudicated by this scan, and putPair guarantees a
				// duplicate is queued with its original, so the sweep (not
				// some later receive that may never come) accounts every
				// injected duplicate — deterministically.
				for j := i; j < len(m.queue); {
					q := m.queue[j]
					if q.seq != 0 && q.seq <= next && (flowKey{q.comm, q.src, q.tag}) == fk {
						m.queue = append(m.queue[:j], m.queue[j+1:]...)
						dups++
						continue
					}
					j++
				}
				return e, dups
			default:
				// Arrived ahead of order (injected reorder); hold until
				// its predecessors are delivered.
				i++
			}
		}
		if check != nil {
			check()
		}
		if m.watchdog <= 0 {
			m.cond.Wait()
			continue
		}
		// Watchdog: cond.Wait has no deadline, so a timer re-checks the
		// clock periodically.  The watchdog is a wall-clock liveness bound
		// for detecting a wedged world, not a virtual-time construct.
		t := time.AfterFunc(m.watchdog/4+time.Millisecond, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		m.cond.Wait()
		t.Stop()
		if time.Now().After(deadline) {
			panic(fmt.Errorf("comm: receive watchdog fired after %v waiting for (comm=%d, src=%d, tag=%d): sender presumed dead", m.watchdog, comm, src, tag))
		}
	}
}

func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// wake re-checks all blocked receivers (used when the failure registry
// changes: a rank died or a communicator was revoked).
func (m *mailbox) wake() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}
