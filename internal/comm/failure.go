package comm

import (
	"errors"
	"fmt"
)

// ErrRankDead is the typed link-death error: a peer rank has permanently
// left the computation (fault.Death schedule), so an operation that needs
// it can never complete.  It replaces the former "link presumed dead"
// panic; the recovery layer (core.Config.Recovery == "shrink") consumes it
// through Try.
var ErrRankDead = errors.New("comm: rank dead")

// ErrCommRevoked marks an operation attempted on a revoked communicator:
// some rank observed a failure and called Revoke, poisoning all in-flight
// and future operations so every survivor unwinds to its recovery point
// (the ULFM MPI_Comm_revoke semantics).
var ErrCommRevoked = errors.New("comm: communicator revoked")

// FailureError is the typed panic raised deep inside blocked communication
// when a failure is detected.  It unwinds collectives and point-to-point
// operations alike and is caught by Try at the recovery boundary.
type FailureError struct {
	err    error  // ErrRankDead or ErrCommRevoked
	Rank   int    // world rank presumed dead (-1 when not rank-specific)
	Comm   uint64 // communicator the failure was observed on
	Step   int    // superstep boundary of a synchronously detected death (0 = async)
	Detail string
}

func (e *FailureError) Error() string {
	return fmt.Sprintf("comm: failure on communicator %d: %v (rank %d): %s", e.Comm, e.err, e.Rank, e.Detail)
}

// Unwrap exposes the sentinel so errors.Is(err, ErrRankDead) works.
func (e *FailureError) Unwrap() error { return e.err }

// Try runs fn and converts a FailureError panic into an ordinary error —
// the controlled boundary where the recovery layer catches rank death and
// communicator revocation.  Any other panic propagates unchanged.
func Try(fn func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if fe, ok := p.(*FailureError); ok {
				err = fe
				return
			}
			panic(p)
		}
	}()
	fn()
	return nil
}

// DeadRankFailure builds the typed failure for a death detected
// synchronously at a superstep boundary: the checkpoint layer knows the
// death schedule, so every survivor raises an identical failure at an
// identical virtual time — the property the deterministic recovery (and the
// consistent Agree view) is built on.
func (c *Comm) DeadRankFailure(worldRank, step int, detail string) *FailureError {
	return &FailureError{err: ErrRankDead, Rank: worldRank, Comm: c.id, Step: step, Detail: detail}
}

// suicideExit is the panic value of a scheduled permanent death (Die): the
// rank leaves voluntarily and the world treats it as a clean exit, not a
// failure — no abort, no error, stats snapshotted.
type suicideExit struct{ c *Comm }

// Die permanently removes this rank from the computation: it registers the
// death in the world's failure registry (waking every blocked receiver so
// detection can proceed) and then unwinds the rank goroutine.  The caller
// must have finished every send it owes the survivors (checkpoint mirrors)
// first — Die never returns.
func (c *Comm) Die() {
	c.w.markDead(c.WorldRank())
	panic(suicideExit{c})
}

// markDead registers a world rank as permanently dead and wakes all blocked
// receivers.  The flag is set before the broadcast (and the registry mutex
// is released before touching any mailbox), so a woken receiver that
// re-checks the registry always observes the death.
func (w *World) markDead(rank int) {
	w.fmu.Lock()
	w.dead[rank] = true
	w.fmu.Unlock()
	// The list snapshot is taken after the flag store: a box added by a
	// concurrent grow either precedes the store (fmu orders the swap, so the
	// snapshot covers it) or its rank enters its first receive afterwards
	// and observes the flag at wait-loop entry — no wake is lost.
	for _, b := range w.boxList() {
		b.wake()
	}
}

// RankDead reports whether a world rank has been registered dead.
func (w *World) RankDead(rank int) bool {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.dead[rank]
}

// DeadRanks returns the world ranks registered dead, in ascending order.
func (w *World) DeadRanks() []int {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	var out []int
	for r, d := range w.dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// commRevoked reports whether the communicator id has been revoked.
func (w *World) commRevoked(id uint64) bool {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.revoked[id]
}

// failCheck builds the liveness predicate a blocked receive consults: it
// panics with a FailureError when the specific awaited sender is registered
// dead — that message can never come.  Revocation deliberately does NOT
// unwind a blocked receive: a survivor that is merely lagging (still inside
// a superstep boundary whose peers have already unwound) would otherwise be
// interrupted at a receive whose message is still in flight, making the
// unwind point — and with it every virtual clock — depend on real-time
// scheduling.  Two-sided traffic drains deterministically because sends are
// eager and every rank finishes its boundary sends before it unwinds or
// dies; revocation poisons one-sided operations at entry (CheckRevoked)
// instead.  Fault-free worlds return nil, keeping the hot path untouched.
func (c *Comm) failCheck(src, tag int) func() {
	if c.w.inj == nil {
		return nil
	}
	return func() {
		w := c.w
		w.fmu.Lock()
		dead := src != AnySource && w.dead[c.group[src]]
		w.fmu.Unlock()
		if dead {
			panic(&FailureError{err: ErrRankDead, Rank: c.group[src], Comm: c.id,
				Detail: fmt.Sprintf("receive (src=%d, tag=%d) from a dead rank", src, tag)})
		}
	}
}
