package comm

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"dhsort/internal/simnet"
)

// allreduceJob is a tiny collective job: every rank contributes its rank,
// all check the global sum.
func allreduceJob(p int) func(c *Comm) error {
	want := p * (p - 1) / 2
	return func(c *Comm) error {
		got := AllreduceOne(c, c.Rank(), func(a, b int) int { return a + b })
		if got != want {
			return fmt.Errorf("rank %d: allreduce sum = %d, want %d", c.Rank(), got, want)
		}
		return nil
	}
}

func TestPersistentWorldReuse(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		pw, err := NewPersistentWorld(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		for job := 0; job < 5; job++ {
			if err := pw.Execute(allreduceJob(p)); err != nil {
				t.Fatalf("p=%d job %d: %v", p, job, err)
			}
		}
		if got := pw.JobsRun(); got != 5 {
			t.Errorf("p=%d: JobsRun = %d, want 5", p, got)
		}
		if !pw.Healthy() {
			t.Errorf("p=%d: world unhealthy after clean jobs", p)
		}
		pw.Close()
		if err := pw.Execute(allreduceJob(p)); !errors.Is(err, ErrWorldClosed) {
			t.Errorf("p=%d: Execute after Close = %v, want ErrWorldClosed", p, err)
		}
	}
}

// TestPersistentWorldStatsResetBetweenJobs is the pooled-world ownership
// audit: a job's stats must not leak into the next job's accounting, even
// though the worlds, goroutines and Comm values are reused.
func TestPersistentWorldStatsResetBetweenJobs(t *testing.T) {
	const p = 4
	pw, err := NewPersistentWorld(p, simnet.SuperMUC(2, true))
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()

	// Job 1: a chatty job — P rounds of allgather.
	heavy := func(c *Comm) error {
		for i := 0; i < 8; i++ {
			AllgatherOne(c, c.Rank())
		}
		return nil
	}
	if err := pw.Execute(heavy); err != nil {
		t.Fatal(err)
	}
	heavyStats := pw.TotalStats()
	heavyMsgs := heavyStats.TotalMessages()
	heavySpan := pw.Makespan()
	if heavyMsgs == 0 || heavySpan == 0 {
		t.Fatalf("heavy job recorded no traffic (msgs=%d span=%v)", heavyMsgs, heavySpan)
	}

	// Job 2: a single barrier — far less traffic.  If stats leaked across
	// jobs, job 2 would report at least job 1's volume.
	if err := pw.Execute(func(c *Comm) error { Barrier(c); return nil }); err != nil {
		t.Fatal(err)
	}
	lightStats := pw.TotalStats()
	lightMsgs := lightStats.TotalMessages()
	lightSpan := pw.Makespan()
	if lightMsgs >= heavyMsgs {
		t.Errorf("stats leaked across jobs: light job reports %d msgs >= heavy job's %d", lightMsgs, heavyMsgs)
	}
	if lightSpan >= heavySpan {
		t.Errorf("clock leaked across jobs: light makespan %v >= heavy %v", lightSpan, heavySpan)
	}

	// Job 3: zero-communication job reports zero stats.
	if err := pw.Execute(func(c *Comm) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// The post-job quiesce barrier itself is attributed to the job that ran,
	// so a no-op job still shows the barrier's messages — but nothing else.
	noopStats := pw.TotalStats()
	if got := noopStats.TotalMessages(); got > lightMsgs {
		t.Errorf("no-op job reports %d msgs, want <= a lone barrier's %d", got, lightMsgs)
	}
}

// TestPersistentWorldDeterministicVirtualClocks pins the per-job clock
// reset: the same job repeated on a warm world yields the identical virtual
// makespan every time.
func TestPersistentWorldDeterministicVirtualClocks(t *testing.T) {
	const p = 8
	pw, err := NewPersistentWorld(p, simnet.SuperMUC(4, false))
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()
	var spans []time.Duration
	for i := 0; i < 4; i++ {
		if err := pw.Execute(allreduceJob(p)); err != nil {
			t.Fatal(err)
		}
		spans = append(spans, pw.Makespan())
	}
	for i, s := range spans {
		if s != spans[0] {
			t.Errorf("job %d makespan %v differs from job 0's %v (clock not reset?)", i, s, spans[0])
		}
	}
}

func TestPersistentWorldBrokenByFailingJob(t *testing.T) {
	const p = 4
	pw, err := NewPersistentWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()
	if err := pw.Execute(allreduceJob(p)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = pw.Execute(func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		Barrier(c) // survivors block until the abort unwinds them
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failing job returned %v, want boom", err)
	}
	if pw.Healthy() {
		t.Error("world still healthy after a failed job")
	}
	if err := pw.Execute(allreduceJob(p)); !errors.Is(err, ErrWorldBroken) {
		t.Errorf("Execute on broken world = %v, want ErrWorldBroken", err)
	}
}

// TestPersistentWorldTagIsolation runs point-to-point traffic on the same
// user tag across successive jobs: monotone transport state must keep the
// jobs' messages apart.
func TestPersistentWorldTagIsolation(t *testing.T) {
	const p = 3
	pw, err := NewPersistentWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()
	for job := 0; job < 4; job++ {
		job := job
		if err := pw.Execute(func(c *Comm) error {
			// Ring shift on a fixed tag; payload encodes the job index.
			next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
			Send(c, next, 7, []int{job*100 + c.Rank()})
			got := Recv[int](c, prev, 7)
			if want := job*100 + prev; len(got) != 1 || got[0] != want {
				return fmt.Errorf("rank %d job %d: got %v, want [%d]", c.Rank(), job, got, want)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPersistentWorldConcurrentSorts drives many rank-collective jobs with
// real shared state (exercised under -race by the CI race list): each job
// sorts a per-rank slice via allgather and checks the global order.
func TestPersistentWorldConcurrentSorts(t *testing.T) {
	const p = 8
	pw, err := NewPersistentWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()
	for job := 0; job < 6; job++ {
		job := job
		if err := pw.Execute(func(c *Comm) error {
			local := []int{c.Rank()*31 + job, c.Rank() ^ job}
			all := Allgather(c, local)
			var flat []int
			for _, b := range all {
				flat = append(flat, b...)
			}
			sort.Ints(flat)
			if len(flat) != 2*p {
				return fmt.Errorf("lost elements: %d", len(flat))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}
