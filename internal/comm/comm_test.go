package comm

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"dhsort/internal/simnet"
)

// sizes exercised by every collective test: powers of two, odd, prime, one.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31}

// run executes fn on a fresh real-time world of size p and fails on error.
func run(t *testing.T, p int, fn func(c *Comm) error) *World {
	t.Helper()
	w, err := NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, nil); err == nil {
		t.Error("size 0 must be rejected")
	}
	if _, err := NewWorld(-3, nil); err == nil {
		t.Error("negative size must be rejected")
	}
	if _, err := NewWorld(4, &simnet.CostModel{}); err == nil {
		t.Error("invalid topology must be rejected")
	}
}

func TestPointToPoint(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		// Ring: send rank to the right, receive from the left.
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		Send(c, next, 7, []int{c.Rank(), c.Rank() * 10})
		got := Recv[int](c, prev, 7)
		if len(got) != 2 || got[0] != prev || got[1] != prev*10 {
			t.Errorf("rank %d received %v from %d", c.Rank(), got, prev)
		}
		return nil
	})
}

func TestSendCopiesData(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []int{1, 2, 3}
			Send(c, 1, 0, buf)
			buf[0] = 99 // mutation after send must not be visible
			Send(c, 1, 1, buf)
		} else {
			first := Recv[int](c, 0, 0)
			second := Recv[int](c, 0, 1)
			if first[0] != 1 {
				t.Errorf("send must copy: got %v", first)
			}
			if second[0] != 99 {
				t.Errorf("second message wrong: %v", second)
			}
		}
		return nil
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 5, []byte("five"))
			Send(c, 1, 3, []byte("three"))
		} else {
			// Receive in the opposite order of sending.
			three := Recv[byte](c, 0, 3)
			five := Recv[byte](c, 0, 5)
			if string(three) != "three" || string(five) != "five" {
				t.Errorf("tag matching broken: %q %q", three, five)
			}
		}
		return nil
	})
}

func TestFIFOPerTag(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				Send(c, 1, 0, []int{i})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := Recv[int](c, 0, 0); got[0] != i {
					t.Errorf("FIFO violated: got %d want %d", got[0], i)
				}
			}
		}
		return nil
	})
}

func TestRecvAny(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := make(map[int]bool)
			for i := 1; i < 4; i++ {
				data, src := RecvAny[int](c, 9)
				if data[0] != src*100 {
					t.Errorf("payload %d does not match source %d", data[0], src)
				}
				seen[src] = true
			}
			if len(seen) != 3 {
				t.Errorf("expected 3 distinct sources, saw %v", seen)
			}
		} else {
			Send(c, 0, 9, []int{c.Rank() * 100})
		}
		return nil
	})
}

func TestSendRecvOne(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			SendOne(c, 1, 0, "hello")
		} else if got := RecvOne[string](c, 0, 0); got != "hello" {
			t.Errorf("got %q", got)
		}
		return nil
	})
}

func TestNegativeUserTagPanics(t *testing.T) {
	err := func() (err error) {
		w, _ := NewWorld(1, nil)
		return w.Run(func(c *Comm) error {
			Send(c, 0, -1, []int{1})
			return nil
		})
	}()
	if err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("expected tag panic, got %v", err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	w, _ := NewWorld(3, nil)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		// Other ranks block forever; the abort must unblock them.
		Recv[int](c, AnySource, 0)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaput")
		}
		Recv[int](c, AnySource, 0)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestBarrier(t *testing.T) {
	for _, p := range testSizes {
		var phase atomic.Int32
		run(t, p, func(c *Comm) error {
			phase.Add(1)
			Barrier(c)
			// After the barrier every rank must have incremented.
			if got := phase.Load(); got != int32(p) {
				t.Errorf("p=%d: rank %d saw phase=%d after barrier", p, c.Rank(), got)
			}
			Barrier(c)
			return nil
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root += 1 + p/3 {
			run(t, p, func(c *Comm) error {
				var data []int
				if c.Rank() == root {
					data = []int{42, root, 7}
				}
				got := Bcast(c, root, data)
				if len(got) != 3 || got[0] != 42 || got[1] != root {
					t.Errorf("p=%d root=%d rank=%d: got %v", p, root, c.Rank(), got)
				}
				// Mutating the received buffer must not affect others.
				got[0] = c.Rank()
				return nil
			})
		}
	}
}

func TestBcastOne(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		v := BcastOne(c, 2, c.Rank()*11)
		if v != 22 {
			t.Errorf("rank %d got %d", c.Rank(), v)
		}
		return nil
	})
}

func TestReduce(t *testing.T) {
	add := func(a, b int) int { return a + b }
	for _, p := range testSizes {
		for root := 0; root < p; root += 1 + p/2 {
			run(t, p, func(c *Comm) error {
				data := []int{c.Rank(), 1, -c.Rank()}
				got := Reduce(c, root, data, add)
				if c.Rank() == root {
					sum := p * (p - 1) / 2
					want := []int{sum, p, -sum}
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("p=%d root=%d: got %v, want %v", p, root, got, want)
						}
					}
				} else if got != nil {
					t.Errorf("non-root must get nil, got %v", got)
				}
				return nil
			})
		}
	}
}

func TestAllreduce(t *testing.T) {
	add := func(a, b int) int { return a + b }
	max := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	for _, p := range testSizes {
		run(t, p, func(c *Comm) error {
			sum := Allreduce(c, []int{c.Rank(), 100}, add)
			wantSum := p * (p - 1) / 2
			if sum[0] != wantSum || sum[1] != 100*p {
				t.Errorf("p=%d rank=%d: sum got %v", p, c.Rank(), sum)
			}
			m := AllreduceOne(c, c.Rank()*3, max)
			if m != 3*(p-1) {
				t.Errorf("p=%d rank=%d: max got %d", p, c.Rank(), m)
			}
			return nil
		})
	}
}

func TestAllreduceInPlace(t *testing.T) {
	add := func(a, b int) int { return a + b }
	for _, p := range testSizes {
		run(t, p, func(c *Comm) error {
			// The in-place variant must match the copying variant and
			// reduce into the caller's buffer rather than a fresh one.
			data := []int{c.Rank(), 100, c.Rank() * c.Rank()}
			want := Allreduce(c, data, add)
			got := AllreduceInPlace(c, data, add)
			if &got[0] != &data[0] {
				t.Errorf("p=%d rank=%d: result not reduced into the caller's buffer", p, c.Rank())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("p=%d rank=%d: in-place got %v, want %v", p, c.Rank(), got, want)
					break
				}
			}
			return nil
		})
	}
}

func TestAllreduceLengthMismatch(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		data := make([]int, 1+c.Rank()) // lengths differ across ranks
		Allreduce(c, data, func(a, b int) int { return a + b })
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("expected mismatch error, got %v", err)
	}
}

func TestGather(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root += 1 + 2*p/3 {
			run(t, p, func(c *Comm) error {
				// Variable-length blocks: rank r contributes r+1 values.
				mine := make([]int, c.Rank()+1)
				for i := range mine {
					mine[i] = c.Rank()*1000 + i
				}
				all := Gather(c, root, mine)
				if c.Rank() != root {
					if all != nil {
						t.Errorf("non-root got %v", all)
					}
					return nil
				}
				for r := 0; r < p; r++ {
					if len(all[r]) != r+1 {
						t.Errorf("p=%d: block %d has %d values", p, r, len(all[r]))
						continue
					}
					for i, v := range all[r] {
						if v != r*1000+i {
							t.Errorf("p=%d: all[%d][%d] = %d", p, r, i, v)
						}
					}
				}
				return nil
			})
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range testSizes {
		run(t, p, func(c *Comm) error {
			mine := make([]int, c.Rank()%3) // includes empty blocks
			for i := range mine {
				mine[i] = c.Rank() + i
			}
			all := Allgather(c, mine)
			if len(all) != p {
				t.Fatalf("got %d blocks", len(all))
			}
			for r := 0; r < p; r++ {
				if len(all[r]) != r%3 {
					t.Errorf("block %d has %d values, want %d", r, len(all[r]), r%3)
				}
				for i, v := range all[r] {
					if v != r+i {
						t.Errorf("all[%d][%d] = %d", r, i, v)
					}
				}
			}
			return nil
		})
	}
}

func TestAllgatherOne(t *testing.T) {
	for _, p := range testSizes {
		run(t, p, func(c *Comm) error {
			all := AllgatherOne(c, c.Rank()*c.Rank())
			for r := 0; r < p; r++ {
				if all[r] != r*r {
					t.Errorf("all[%d] = %d", r, all[r])
				}
			}
			return nil
		})
	}
}

func TestScatter(t *testing.T) {
	for _, p := range testSizes {
		for root := 0; root < p; root += 1 + p/2 {
			run(t, p, func(c *Comm) error {
				var blocks [][]int
				if c.Rank() == root {
					blocks = make([][]int, p)
					for r := range blocks {
						blocks[r] = []int{r * 2, r*2 + 1}
					}
				}
				mine := Scatter(c, root, blocks)
				if len(mine) != 2 || mine[0] != c.Rank()*2 || mine[1] != c.Rank()*2+1 {
					t.Errorf("p=%d root=%d rank=%d: got %v", p, root, c.Rank(), mine)
				}
				return nil
			})
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range testSizes {
		run(t, p, func(c *Comm) error {
			blocks := make([][]int, p)
			for dst := range blocks {
				blocks[dst] = []int{c.Rank()*100 + dst}
			}
			got := Alltoall(c, blocks)
			for src := range got {
				if len(got[src]) != 1 || got[src][0] != src*100+c.Rank() {
					t.Errorf("p=%d rank=%d: from %d got %v", p, c.Rank(), src, got[src])
				}
			}
			return nil
		})
	}
}

func TestAlltoallv(t *testing.T) {
	for _, p := range testSizes {
		run(t, p, func(c *Comm) error {
			// Rank r sends (r+dst)%3 elements to dst, all equal to r*1000+dst.
			counts := make([]int, p)
			var buf []int
			for dst := 0; dst < p; dst++ {
				counts[dst] = (c.Rank() + dst) % 3
				for k := 0; k < counts[dst]; k++ {
					buf = append(buf, c.Rank()*1000+dst)
				}
			}
			recv, rcounts := Alltoallv(c, buf, counts, 1)
			off := 0
			for src := 0; src < p; src++ {
				want := (src + c.Rank()) % 3
				if rcounts[src] != want {
					t.Errorf("p=%d rank=%d: count from %d = %d, want %d", p, c.Rank(), src, rcounts[src], want)
				}
				for k := 0; k < rcounts[src]; k++ {
					if recv[off] != src*1000+c.Rank() {
						t.Errorf("p=%d rank=%d: value from %d = %d", p, c.Rank(), src, recv[off])
					}
					off++
				}
			}
			if off != len(recv) {
				t.Errorf("receive buffer length mismatch")
			}
			return nil
		})
	}
}

func TestAlltoallvValidation(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		Alltoallv(c, []int{1, 2, 3}, []int{1, 1}, 1) // counts sum != len
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "sum") {
		t.Fatalf("expected count-sum panic, got %v", err)
	}
}

func TestExscan(t *testing.T) {
	add := func(a, b int) int { return a + b }
	for _, p := range testSizes {
		run(t, p, func(c *Comm) error {
			v, ok := Exscan(c, c.Rank()+1, add)
			if c.Rank() == 0 {
				if ok {
					t.Error("rank 0 must report ok=false")
				}
				return nil
			}
			want := c.Rank() * (c.Rank() + 1) / 2 // sum of 1..rank
			if !ok || v != want {
				t.Errorf("p=%d rank=%d: got %d (ok=%v), want %d", p, c.Rank(), v, ok, want)
			}
			return nil
		})
	}
}

func TestSplit(t *testing.T) {
	run(t, 12, func(c *Comm) error {
		// Two colors; order within each by descending rank via key.
		color := c.Rank() % 2
		sub := c.Split(color, -c.Rank())
		if sub.Size() != 6 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// Highest old rank gets new rank 0.
		wantRank := (10 + color - c.Rank()) / 2
		if sub.Rank() != wantRank {
			t.Errorf("old rank %d: new rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// The subcommunicator must work: allreduce of old world ranks.
		sum := AllreduceOne(sub, c.Rank(), func(a, b int) int { return a + b })
		want := 0
		for r := color; r < 12; r += 2 {
			want += r
		}
		if sum != want {
			t.Errorf("color %d: sum = %d, want %d", color, sum, want)
		}
		// Tag spaces are isolated: concurrent collectives on parent and
		// child communicators must not interfere.
		total := AllreduceOne(c, 1, func(a, b int) int { return a + b })
		if total != 12 {
			t.Errorf("parent comm broken after split: %d", total)
		}
		return nil
	})
}

func TestSplitSingleton(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		sub := c.Split(c.Rank(), 0) // every rank its own color
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("singleton split wrong: size=%d rank=%d", sub.Size(), sub.Rank())
		}
		if got := AllreduceOne(sub, 41, func(a, b int) int { return a + b }); got != 41 {
			t.Errorf("singleton allreduce = %d", got)
		}
		return nil
	})
}

func TestNestedSplit(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank())
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			t.Errorf("quarter size = %d", quarter.Size())
		}
		sum := AllreduceOne(quarter, c.Rank(), func(a, b int) int { return a + b })
		base := (c.Rank() / 2) * 2
		if sum != base+base+1 {
			t.Errorf("rank %d: quarter sum = %d", c.Rank(), sum)
		}
		return nil
	})
}

func TestStatsAccounting(t *testing.T) {
	model := simnet.SuperMUC(2, true)
	w, err := NewWorld(4, model)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, 0, make([]uint64, 100)) // same node: 800 bytes
			Send(c, 2, 0, make([]uint64, 10))  // cross node: 80 bytes
		}
		if c.Rank() == 1 || c.Rank() == 2 {
			Recv[uint64](c, 0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.TotalStats()
	if s.TotalMessages() != 2 {
		t.Errorf("messages = %d", s.TotalMessages())
	}
	if s.NetworkBytes() != 80 {
		t.Errorf("network bytes = %d", s.NetworkBytes())
	}
	if s.TotalBytes() != 880 {
		t.Errorf("total bytes = %d", s.TotalBytes())
	}
}

func TestByteScaleInflatesAccounting(t *testing.T) {
	model := simnet.SuperMUC(2, true)
	w, _ := NewWorld(2, model)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			SendScaled(c, 1, 0, make([]uint64, 10), 16) // 80 real bytes, priced 1280
		} else {
			Recv[uint64](c, 0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := w.TotalStats()
	if got := stats.TotalBytes(); got != 1280 {
		t.Errorf("scaled bytes = %d, want 1280", got)
	}
}

func TestVirtualClockDeterminism(t *testing.T) {
	// The virtual makespan of a fixed communication pattern must be
	// identical across runs regardless of goroutine scheduling.
	pattern := func() int64 {
		w, _ := NewWorld(16, simnet.SuperMUC(4, true))
		err := w.Run(func(c *Comm) error {
			for iter := 0; iter < 10; iter++ {
				Allreduce(c, []int{c.Rank(), iter}, func(a, b int) int { return a + b })
				Barrier(c)
				blocks := make([][]int, c.Size())
				for i := range blocks {
					blocks[i] = []int{c.Rank(), i}
				}
				Alltoall(c, blocks)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(w.Makespan())
	}
	first := pattern()
	if first <= 0 {
		t.Fatal("virtual makespan must be positive")
	}
	for i := 0; i < 3; i++ {
		if got := pattern(); got != first {
			t.Fatalf("nondeterministic makespan: %d vs %d", got, first)
		}
	}
}

func TestVirtualClockAdvancesOnTraffic(t *testing.T) {
	w, _ := NewWorld(8, simnet.SuperMUC(4, true))
	err := w.Run(func(c *Comm) error {
		before := c.Clock().Now()
		Allreduce(c, []int{1}, func(a, b int) int { return a + b })
		if c.Clock().Now() <= before {
			t.Errorf("rank %d: clock did not advance", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	times := w.RankTimes()
	if len(times) != 8 {
		t.Fatalf("rank times: %v", times)
	}
}

func TestWorldAccessors(t *testing.T) {
	model := simnet.SuperMUC(16, false)
	w, _ := NewWorld(3, model)
	if w.Size() != 3 || w.Model() != model {
		t.Error("accessors broken")
	}
	run(t, 2, func(c *Comm) error {
		if c.WorldRank() != c.Rank() {
			t.Error("world comm must map ranks identically")
		}
		if c.Model() != nil {
			t.Error("real-time world must have nil model")
		}
		if c.Stats() == nil {
			t.Error("stats accumulator missing")
		}
		return nil
	})
}
