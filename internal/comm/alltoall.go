package comm

import (
	"fmt"
	"math/bits"
)

// AlltoallAlgorithm selects the exchange schedule for Alltoall/Alltoallv —
// the tuning space §VI-E1 describes: "For a relatively small N/P we utilize
// store-and-forward algorithms which communicate data in intermediate steps
// in ceil(log p) rounds.  For larger messages we schedule flat handshakes
// or 1-factorization algorithms to trade off latency and bandwidth
// bottlenecks."
type AlltoallAlgorithm int

const (
	// AlltoallAuto picks Bruck for small blocks (latency-bound) and the
	// 1-factor schedule for large blocks (bandwidth-bound).
	AlltoallAuto AlltoallAlgorithm = iota
	// AlltoallPairwise is the linear shifted exchange: P rounds, rank r
	// sends to r+i and receives from r-i in round i.
	AlltoallPairwise
	// AlltoallOneFactor schedules the rounds as a 1-factorization of the
	// complete graph [34][35]: every round is a perfect matching, so no
	// rank ever has two partners in flight.
	AlltoallOneFactor
	// AlltoallBruck is the store-and-forward algorithm: ceil(log2 P)
	// rounds; each block travels up to log2 P hops, trading bandwidth
	// for latency — the small-message regime.
	AlltoallBruck
	// AlltoallHierarchical aggregates through node leaders (§VI-E1); only
	// meaningful under a cost model, whose topology defines the nodes
	// (AlltoallvHier documents the scheme).  Falls back to the 1-factor
	// schedule without a model.
	AlltoallHierarchical
	// ExchangeRMAPut selects the one-sided data exchange: every rank puts
	// its partitions directly into symmetric rma windows at
	// exscan-computed target offsets and the receiver consumes
	// notifications (the paper's DASH/DART put+notify substrate).  Only
	// core.ExchangeAndMerge implements the put path, fused with its
	// notify-driven merge; at the plain block-collective level (Alltoall,
	// ExecutePlan) it degrades to the 1-factor schedule.
	ExchangeRMAPut
)

// String returns the algorithm name.
func (a AlltoallAlgorithm) String() string {
	switch a {
	case AlltoallAuto:
		return "auto"
	case AlltoallPairwise:
		return "pairwise"
	case AlltoallOneFactor:
		return "one-factor"
	case AlltoallBruck:
		return "bruck"
	case AlltoallHierarchical:
		return "hierarchical"
	case ExchangeRMAPut:
		return "rma-put"
	}
	return fmt.Sprintf("AlltoallAlgorithm(%d)", int(a))
}

// bruckCutoffBytes is the Auto threshold: blocks at or below this size are
// latency-bound and use store-and-forward.
const bruckCutoffBytes = 2048

// AlltoallWith exchanges blocks[i] to rank i under the chosen schedule and
// returns the received blocks indexed by sender.  All ranks must pass the
// same algorithm.  byteScale prices payloads at a multiple of their size.
func AlltoallWith[T any](c *Comm, blocks [][]T, alg AlltoallAlgorithm, byteScale float64) [][]T {
	p := c.Size()
	if len(blocks) != p {
		panic(fmt.Sprintf("comm: Alltoall needs %d blocks, got %d", p, len(blocks)))
	}
	switch alg {
	case AlltoallPairwise:
		return AlltoallScaled(c, blocks, byteScale)
	case AlltoallOneFactor, AlltoallHierarchical, ExchangeRMAPut:
		// The hierarchical schedule needs a flat buffer and topology
		// (AlltoallvHier), and the put path needs the fused merge of
		// core.ExchangeAndMerge; at the block level both degrade to
		// 1-factor.
		return alltoallOneFactor(c, blocks, byteScale)
	case AlltoallBruck:
		return alltoallBruck(c, blocks, byteScale)
	}
	// Auto: decide by the average *priced* block size (the virtual volume
	// when byteScale inflates reduced-scale experiments).  The decision
	// must be identical on every rank, so use the global average in one
	// reduction.
	var myBytes int64
	for _, b := range blocks {
		myBytes += int64(len(b) * elemBytes[T]())
	}
	if byteScale > 1 {
		myBytes = int64(float64(myBytes) * byteScale)
	}
	total := AllreduceOne(c, myBytes, func(a, b int64) int64 { return a + b })
	avg := total / int64(p*p)
	if avg <= bruckCutoffBytes {
		return alltoallBruck(c, blocks, byteScale)
	}
	return alltoallOneFactor(c, blocks, byteScale)
}

// OneFactorPartner returns rank's partner in the given round of the
// 1-factorization of K_p, or -1 when the rank idles (odd p only).
// Odd p: p rounds, partner j solves rank+j ≡ round (mod p); the rank with
// 2·rank ≡ round idles.  Even p: p-1 rounds over the first p-1 ranks with
// rank p-1 pairing the round's fixed point.  OneFactorRounds gives the
// round count.
func OneFactorPartner(p, round, rank int) int {
	if p%2 == 1 {
		j := ((round-rank)%p + p) % p
		if j == rank {
			return -1
		}
		return j
	}
	// Circle method: ranks 0..p-2 pair by rank+partner ≡ round (mod p-1);
	// the rank that would pair with itself pairs the fixed player p-1
	// instead (that rank solves 2x ≡ round, unique since p-1 is odd).
	m := p - 1
	r := round % m
	if rank == p-1 {
		return r * (m + 1) / 2 % m
	}
	j := ((r-rank)%m + m) % m
	if j == rank {
		return p - 1
	}
	return j
}

// alltoallOneFactor runs the exchange as a sequence of perfect matchings.
func alltoallOneFactor[T any](c *Comm, blocks [][]T, byteScale float64) [][]T {
	base := c.nextSeq()
	p := c.Size()
	out := make([][]T, p)
	// Self block first.
	self := make([]T, len(blocks[c.Rank()]))
	copy(self, blocks[c.Rank()])
	out[c.Rank()] = self
	rounds := p
	if p%2 == 0 {
		rounds = p - 1
	}
	for r := 0; r < rounds; r++ {
		partner := OneFactorPartner(p, r, c.Rank())
		if partner < 0 {
			continue
		}
		sendSlice(c, partner, base+r, blocks[partner], byteScale)
		out[partner] = recvSlice[T](c, partner, base+r)
	}
	return out
}

// alltoallBruck is the store-and-forward exchange: in round k every rank
// forwards all buffered blocks whose remaining relative distance has bit k
// set to the rank 2^k away.  Each block is tagged with its final
// destination and travels at most ceil(log2 p) hops.
func alltoallBruck[T any](c *Comm, blocks [][]T, byteScale float64) [][]T {
	base := c.nextSeq()
	p := c.Size()
	out := make([][]T, p)

	// Buffered blocks tagged with origin and destination; a block is
	// forwarded in round k when the remaining relative distance
	// (dst - here) mod p has bit k set.
	type travelBlock struct {
		Src, Dst int
		Data     []T
	}
	pending := make([]travelBlock, 0, p)
	for dst, b := range blocks {
		cp := make([]T, len(b))
		copy(cp, b)
		if dst == c.Rank() {
			out[dst] = cp
			continue
		}
		pending = append(pending, travelBlock{Src: c.Rank(), Dst: dst, Data: cp})
	}

	rounds := bits.Len(uint(p - 1))
	for k := 0; k < rounds; k++ {
		bit := 1 << k
		var keep, forward []travelBlock
		for _, tb := range pending {
			rel := ((tb.Dst-c.Rank())%p + p) % p
			if rel&bit != 0 {
				forward = append(forward, tb)
			} else {
				keep = append(keep, tb)
			}
		}
		dst := (c.Rank() + bit) % p
		src := (c.Rank() - bit + p) % p
		nbytes := 0
		for _, tb := range forward {
			nbytes += len(tb.Data)*elemBytes[T]() + 16
		}
		c.send(dst, base+k, forward, nbytes, byteScale)
		incoming := c.recv(src, base+k).payload.([]travelBlock)
		pending = keep
		for _, tb := range incoming {
			if tb.Dst == c.Rank() {
				out[tb.Src] = tb.Data // delivered
			} else {
				pending = append(pending, tb)
			}
		}
	}
	if len(pending) != 0 {
		panic("comm: bruck exchange left undelivered blocks")
	}
	return out
}

// OneFactorRounds returns the number of matching rounds of the
// 1-factorization of K_p.
func OneFactorRounds(p int) int {
	if p%2 == 0 {
		return p - 1
	}
	return p
}

// AlltoallvWith is Alltoallv under an explicit exchange schedule.
func AlltoallvWith[T any](c *Comm, data []T, sendCounts []int, alg AlltoallAlgorithm, byteScale float64) ([]T, []int) {
	p := c.Size()
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: Alltoallv needs %d counts, got %d", p, len(sendCounts)))
	}
	blocks := make([][]T, p)
	off := 0
	for i, n := range sendCounts {
		if n < 0 {
			panic("comm: negative send count")
		}
		if off+n > len(data) {
			panic("comm: send counts exceed buffer length")
		}
		blocks[i] = data[off : off+n]
		off += n
	}
	if off != len(data) {
		panic(fmt.Sprintf("comm: send counts sum to %d, buffer has %d", off, len(data)))
	}
	recvBlocks := AlltoallWith(c, blocks, alg, byteScale)
	recvCounts := make([]int, p)
	total := 0
	for i, b := range recvBlocks {
		recvCounts[i] = len(b)
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range recvBlocks {
		out = append(out, b...)
	}
	return out, recvCounts
}

// SendrecvScaled is Sendrecv with bulk-data byte pricing.
func SendrecvScaled[T any](c *Comm, partner, tag int, send []T, byteScale float64) []T {
	checkUserTag(tag)
	sendSlice(c, partner, tag, send, byteScale)
	return recvSlice[T](c, partner, tag)
}
