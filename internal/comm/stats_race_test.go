package comm

import (
	"testing"
	"time"

	"dhsort/internal/simnet"
)

// TestStatsAggregationConcurrentFinish exercises the World-side stats
// aggregation path under the race detector: 16 ranks finish at staggered
// times while a monitor goroutine concurrently polls every World accessor
// (the pattern a live dashboard or the bench progress printer uses).  Run
// with -race; the per-rank Stats accumulators must stay goroutine-confined
// and the World-side snapshots mutex-consistent.
func TestStatsAggregationConcurrentFinish(t *testing.T) {
	const p = 16
	w, err := NewWorld(p, nil)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = w.TotalStats()
			_ = w.RankStats()
			_ = w.Makespan()
			_ = w.RankTimes()
		}
	}()

	err = w.Run(func(c *Comm) error {
		counts := make([]int, p)
		data := make([]int, 0, 4*p)
		for d := 0; d < p; d++ {
			counts[d] = 4
			for k := 0; k < 4; k++ {
				data = append(data, c.Rank()*1000+d)
			}
		}
		for round := 0; round < 4; round++ {
			out, recvCounts := Alltoallv(c, data, counts, 1)
			if len(out) != 4*p || len(recvCounts) != p {
				t.Errorf("rank %d: alltoallv returned %d elems, %d counts", c.Rank(), len(out), len(recvCounts))
			}
		}
		// Staggered completion: late ranks still record stats while early
		// ranks have already published their snapshots to the World.
		time.Sleep(time.Duration(c.Rank()) * time.Millisecond)
		return nil
	})
	close(stop)
	<-monitorDone
	if err != nil {
		t.Fatal(err)
	}

	// The aggregate must equal the sum of the per-rank snapshots.
	var want Stats
	perRank := w.RankStats()
	if len(perRank) != p {
		t.Fatalf("RankStats returned %d entries, want %d", len(perRank), p)
	}
	for i := range perRank {
		want.Add(&perRank[i])
	}
	got := w.TotalStats()
	if got != want {
		t.Errorf("TotalStats %+v != sum of RankStats %+v", got, want)
	}
	if got.TotalMessages() == 0 || got.TotalBytes() == 0 {
		t.Errorf("no traffic recorded: %+v", got)
	}
	// Real-time mode records everything on the self link class.
	if got.TotalMessages() != got.Messages[simnet.SelfLink] {
		t.Errorf("real-time traffic not on self link: %+v", got)
	}
}

// TestStatsPerLinkClassUnderModel checks that a modelled world attributes
// traffic to the topology's link classes and that Comm.Stats survives a
// communicator Split (same rank, same accumulator).
func TestStatsPerLinkClassUnderModel(t *testing.T) {
	const p = 8
	model := simnet.SuperMUC(4, true) // 2 nodes of 4 ranks, 4 NUMA domains
	w, err := NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		before := c.Stats()
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Stats() != before {
			t.Errorf("rank %d: Split must share the stats accumulator", c.Rank())
		}
		AllgatherOne(c, c.Rank())
		AllgatherOne(sub, c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := w.TotalStats()
	if total.Bytes[simnet.Network] == 0 {
		t.Errorf("expected cross-node traffic between the two modelled nodes: %+v", total)
	}
	if total.TotalMessages() == 0 {
		t.Errorf("no messages recorded: %+v", total)
	}
}
