package comm

import (
	"fmt"

	"dhsort/internal/simnet"
)

// Grow / AwaitGrow: the mirror of Shrink.  Where Shrink densely re-ranks the
// survivors of a death, Grow folds freshly spawned ranks (World.Spawn) into
// a running communicator: existing members keep their order, joiners append
// after them, and every participant derives the same communicator identity
// without negotiation.  The join runs under the same typed-failure regime as
// the rest of the ULFM layer — a rank that dies while the join is in flight
// unwinds every participant with ErrRankDead/ErrCommRevoked through Try,
// never a deadlock, and the incumbents then recover on the OLD communicator
// via the ordinary Revoke/Agree/Shrink path.

// growTagBase opens the join protocol's tag band.  It sits above the ULFM
// agreement band (ulfmTagBase + round, round < 64), so a grow racing a
// recovery on the same communicator id can never cross wires.
const growTagBase = ulfmTagBase + 1<<12

// growTicketTag carries the sponsor's join ticket to each joiner, addressed
// on the joiner's world communicator (id 1).
const growTicketTag = growTagBase

// growTicket is the sponsor's invitation: everything a joiner needs to
// construct its handle on the grown communicator.
type growTicket struct {
	ID    uint64 // derived identity of the grown communicator
	Group []int  // communicator rank -> world rank, incumbents first
	Rank  int    // the joiner's rank within the grown communicator
}

// Grow is the collective the existing members call to admit joiners: it
// returns a deterministically derived communicator where the incumbents keep
// their ranks and the joiners (given by world rank, identical on every
// caller) append in order.  Rank 0 acts as sponsor, posting each joiner its
// ticket; then everyone — incumbents and joiners alike — synchronizes
// virtual clocks at a join barrier on the new communicator.  The old
// communicator remains valid: a failed grow leaves the incumbents free to
// Revoke/Agree/Shrink on it and carry on without the joiners.
func (c *Comm) Grow(joiners []int) *Comm {
	if len(joiners) == 0 {
		panic("comm: Grow with no joiners")
	}
	// Quiesce the old communicator first: once the barrier completes, every
	// member has entered Grow, so no straggler can still be receiving
	// pre-grow traffic when the join barrier's rounds start.  A member that
	// died earlier is detected here (failCheck) before any ticket is posted.
	Barrier(c)
	c.grows++
	newGroup := make([]int, 0, len(c.group)+len(joiners))
	newGroup = append(newGroup, c.group...)
	newGroup = append(newGroup, joiners...)
	// Epoch 1<<57|grows is disjoint from Split's small epochs and Shrink's
	// bits^size<<56 form, so a grown communicator can never collide with a
	// split or shrunk sibling of the same parent.
	id := splitID(c.id, 1<<57|c.grows, len(newGroup))
	nc := &Comm{
		w:     c.w,
		id:    id,
		rank:  c.rank,
		group: newGroup,
		clock: c.clock,
		stats: c.stats,
		obs:   c.obs,
	}
	if c.rank == 0 {
		for i, wr := range joiners {
			t := growTicket{ID: id, Group: append([]int(nil), newGroup...), Rank: len(c.group) + i}
			c.postTicket(wr, t)
		}
	}
	joinBarrier(nc)
	return nc
}

// AwaitGrow is the joiner's half of the collective: block for the sponsor's
// ticket (sponsor is a world rank; the specific source means a sponsor that
// died before inviting us raises ErrRankDead instead of hanging), build the
// grown communicator from it, and synchronize at the join barrier.  c must
// be the joiner's world communicator, i.e. the handle Spawn passed to fn.
func AwaitGrow(c *Comm, sponsor int) *Comm {
	e := c.recv(sponsor, growTicketTag)
	t, ok := e.payload.(growTicket)
	if !ok {
		panic(fmt.Sprintf("comm: AwaitGrow got a %T, want a join ticket", e.payload))
	}
	nc := &Comm{
		w:     c.w,
		id:    t.ID,
		rank:  t.Rank,
		group: t.Group,
		clock: c.clock,
		stats: c.stats,
		obs:   c.obs,
	}
	joinBarrier(nc)
	return nc
}

// postTicket delivers a join ticket to the joiner's mailbox, addressed on
// the world communicator and priced exactly like a two-sided send.  The
// registration link is assumed reliable (the joiner was just spawned; there
// is no pre-existing flow to adjudicate), so the post bypasses the fault
// plane the way RMA notification posts do.
func (c *Comm) postTicket(wdst int, t growTicket) {
	wsrc := c.WorldRank()
	bytes := 8 * (len(t.Group) + 2)
	e := envelope{comm: 1, src: wsrc, tag: growTicketTag, payload: t}
	if m := c.w.model; m != nil {
		c.clock.Advance(m.SendOverhead + m.InjectCost(wsrc, wdst, bytes))
		e.arrival = c.clock.Now() + m.Latency(wsrc, wdst)
		c.stats.record(m.Topo.Link(wsrc, wdst), bytes)
	} else {
		c.stats.record(simnet.SelfLink, bytes)
	}
	c.w.box(wdst).put(e)
}

// joinBarrier runs the dissemination barrier that completes a grow: the
// same lg-round structure as Barrier, on fixed tags from the grow band (the
// joiners have no aligned sequence counters yet, so seq-derived tags are
// not available).  Its receives are failure-AND-revocation sensitive —
// unlike ordinary receives, which ignore revocation for clock determinism,
// a join participant's clock is not yet part of any deterministic flow, so
// unwinding it early is safe and necessary: the first rank to detect a
// death revokes the half-built communicator, which wakes and unwinds every
// other participant, incumbent and joiner alike.
func joinBarrier(nc *Comm) {
	defer func() {
		if p := recover(); p != nil {
			if fe, ok := p.(*FailureError); ok {
				nc.Revoke()
				panic(fe)
			}
			panic(p)
		}
	}()
	p := len(nc.group)
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		tag := growTagBase + 1 + round
		nc.send((nc.rank+k)%p, tag, struct{}{}, 0, 1)
		nc.recvJoin((nc.rank-k+p)%p, tag)
	}
}

// recvJoin is recv with the join barrier's widened liveness predicate: it
// unwinds when the awaited sender is registered dead OR the half-built
// communicator has been revoked by another participant's detection.
func (c *Comm) recvJoin(src, tag int) {
	var check func()
	if c.w.inj != nil {
		check = func() {
			w := c.w
			w.fmu.Lock()
			dead := w.dead[c.group[src]]
			revoked := w.revoked[c.id]
			w.fmu.Unlock()
			if dead {
				panic(&FailureError{err: ErrRankDead, Rank: c.group[src], Comm: c.id,
					Detail: fmt.Sprintf("join barrier receive (src=%d, tag=%d) from a dead rank", src, tag)})
			}
			if revoked {
				panic(&FailureError{err: ErrCommRevoked, Rank: -1, Comm: c.id,
					Detail: "join barrier on a revoked communicator"})
			}
		}
	}
	e, dups := c.w.box(c.group[c.rank]).get(c.id, src, tag, check)
	if dups > 0 {
		c.stats.Fault.Dedup += int64(dups)
	}
	c.clock.Arrive(e.arrival)
}

// adopt re-points this rank's persistent communicator handle at the derived
// communicator nc, resetting every piece of per-communicator transport
// state: collective sequence numbers, split/grow epochs, protocol-tag and
// fault-control reservations, and the reliable transport's per-flow
// sequence numbers all restart from zero, identically on every member —
// incumbents and joiners enter the next job with aligned counters.  clock,
// stats and observer are already shared with nc (it was derived from this
// rank's lineage), so per-job accounting is unaffected.
func (c *Comm) adopt(nc *Comm) {
	c.id = nc.id
	c.rank = nc.rank
	c.group = nc.group
	c.seq = 0
	c.splits = 0
	c.grows = 0
	c.protoTags = 0
	c.sendSeq = nil
	c.faultTag = 0
}
