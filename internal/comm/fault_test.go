package comm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dhsort/internal/fault"
	"dhsort/internal/simnet"
)

// faultyPlan is the transport-stress schedule used across these tests: every
// message fault class at a rate high enough to fire constantly.
var faultyPlan = fault.Plan{
	Seed:        7,
	DropRate:    0.1,
	DupRate:     0.1,
	DelayRate:   0.1,
	MaxDelay:    20 * time.Microsecond,
	ReorderRate: 0.1,
}

// runFaults executes fn on a fresh world under the plan and fails on error.
func runFaults(t *testing.T, p int, model *simnet.CostModel, plan fault.Plan, fn func(c *Comm) error) *World {
	t.Helper()
	w, err := NewWorldWithFaults(p, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFaultyTransportFIFO pins the reliable-transport contract: under drops,
// duplication, delay and reordering, every flow still delivers every payload
// exactly once, in send order.
func TestFaultyTransportFIFO(t *testing.T) {
	const msgs = 64
	for _, p := range []int{2, 3, 8, 16} {
		w := runFaults(t, p, simnet.SuperMUC(4, true), faultyPlan, func(c *Comm) error {
			// All-pairs: every rank streams msgs messages to every other rank
			// on two interleaved tags, then drains the same from everyone.
			for i := 0; i < msgs; i++ {
				for dst := 0; dst < c.Size(); dst++ {
					if dst == c.Rank() {
						continue
					}
					SendOne(c, dst, i%2, c.Rank()*msgs+i)
				}
			}
			for src := 0; src < c.Size(); src++ {
				if src == c.Rank() {
					continue
				}
				for i := 0; i < msgs; i++ {
					got := RecvOne[int](c, src, i%2)
					// Per-(src, tag) flows are FIFO: on tag i%2 the i-th
					// receive must be the i-th send.
					if got != src*msgs+i {
						t.Errorf("p=%d rank %d: from %d tag %d got %d, want %d", p, c.Rank(), src, i%2, got, src*msgs+i)
					}
				}
			}
			return nil
		})
		st := w.TotalStats()
		if !st.Fault.Any() {
			t.Errorf("p=%d: transport stress injected nothing: %+v", p, st.Fault)
		}
		if st.Fault.Drops != st.Fault.Retries {
			t.Errorf("p=%d: every drop must cost a retry: drops=%d retries=%d", p, st.Fault.Drops, st.Fault.Retries)
		}
		if st.Fault.Dedup != st.Fault.Dups {
			// putPair + the delivery sweep make dedup exact: every injected
			// duplicate is discarded at its flow's delivery, never later.
			t.Errorf("p=%d: %d duplicates injected but %d discarded", p, st.Fault.Dups, st.Fault.Dedup)
		}
	}
}

// TestFaultyTransportDeterminism pins the bit-reproducibility contract: two
// runs of the same program under the same plan produce identical fault
// counters, traffic totals and virtual makespans, regardless of goroutine
// interleaving.
func TestFaultyTransportDeterminism(t *testing.T) {
	once := func() (Stats, time.Duration) {
		w := runFaults(t, 8, simnet.SuperMUC(4, true), faultyPlan, func(c *Comm) error {
			for i := 0; i < 32; i++ {
				next := (c.Rank() + 1) % c.Size()
				prev := (c.Rank() + c.Size() - 1) % c.Size()
				SendOne(c, next, 3, c.Rank()+i)
				if got := RecvOne[int](c, prev, 3); got != prev+i {
					t.Errorf("rank %d: got %d want %d", c.Rank(), got, prev+i)
				}
				v := AllreduceOne(c, i, func(a, b int) int { return a + b })
				if v != i*c.Size() {
					t.Errorf("rank %d: allreduce %d want %d", c.Rank(), v, i*c.Size())
				}
			}
			return nil
		})
		return w.TotalStats(), w.Makespan()
	}
	s1, m1 := once()
	s2, m2 := once()
	if s1 != s2 {
		t.Errorf("fault schedule not deterministic:\n%+v\n%+v", s1.Fault, s2.Fault)
	}
	if m1 != m2 {
		t.Errorf("virtual makespan not deterministic: %v vs %v", m1, m2)
	}
}

// TestSelfLinksExemptFromInjection pins the zero-cost self-link rule: a
// rank's messages to itself are local memory moves and must never be
// adjudicated, even under an aggressive schedule.
func TestSelfLinksExemptFromInjection(t *testing.T) {
	plan := faultyPlan
	plan.DropRate = 0.5
	w := runFaults(t, 4, simnet.SuperMUC(4, true), plan, func(c *Comm) error {
		for i := 0; i < 100; i++ {
			SendOne(c, c.Rank(), 9, i)
			if got := RecvOne[int](c, c.Rank(), 9); got != i {
				t.Errorf("rank %d: self-delivery %d want %d", c.Rank(), got, i)
			}
		}
		return nil
	})
	if f := w.TotalStats().Fault; f.Any() {
		t.Errorf("self-only traffic hit the injector: %+v", f)
	}
}

// TestCollectivesSurviveFaults runs the collective algorithms (trees,
// recursive doubling, pairwise exchanges) over the faulty transport: results
// must match the fault-free semantics exactly.
func TestCollectivesSurviveFaults(t *testing.T) {
	for _, p := range []int{2, 5, 8, 13} {
		runFaults(t, p, simnet.SuperMUC(4, true), faultyPlan, func(c *Comm) error {
			if got := AllreduceOne(c, c.Rank()+1, func(a, b int) int { return a + b }); got != p*(p+1)/2 {
				t.Errorf("p=%d rank %d: allreduce got %d", p, c.Rank(), got)
			}
			all := AllgatherOne(c, c.Rank()*11)
			for i, v := range all {
				if v != i*11 {
					t.Errorf("p=%d rank %d: allgather[%d] = %d", p, c.Rank(), i, v)
				}
			}
			counts := make([]int, p)
			payload := make([]int, 0, p)
			for dst := 0; dst < p; dst++ {
				counts[dst] = 1
				payload = append(payload, c.Rank()*100+dst)
			}
			recv, _ := Alltoallv(c, payload, counts, 1)
			for src := 0; src < p; src++ {
				if recv[src] != src*100+c.Rank() {
					t.Errorf("p=%d rank %d: alltoallv from %d = %d", p, c.Rank(), src, recv[src])
				}
			}
			return nil
		})
	}
}

// TestWatchdogDetectsDeadSender pins the liveness-detection path: a receive
// that can never be satisfied (the peer exited without sending) must abort
// the world with a watchdog diagnostic instead of hanging forever.
func TestWatchdogDetectsDeadSender(t *testing.T) {
	w, err := NewWorldWithFaults(2, nil, fault.Plan{Watchdog: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			RecvOne[int](c, 1, 4) // rank 1 never sends
		}
		return nil
	})
	if err == nil {
		t.Fatal("dead sender went undetected")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Errorf("error %q does not name the watchdog", err)
	}
}

// TestReserveProtocolTagExhaustion is the regression test for the
// error-not-panic contract: draining the entire protocol tag budget must
// surface ErrProtocolTagsExhausted, and the returned tags must be unique.
func TestReserveProtocolTagExhaustion(t *testing.T) {
	run(t, 1, func(c *Comm) error {
		prev := -1
		for i := 0; i < protocolTagSpace; i++ {
			tag, err := c.ReserveProtocolTag()
			if err != nil {
				t.Fatalf("reservation %d failed early: %v", i, err)
			}
			if tag <= prev {
				t.Fatalf("reservation %d: tag %d not increasing past %d", i, tag, prev)
			}
			if tag < UserTagLimit {
				t.Fatalf("reservation %d: tag %d inside the user space", i, tag)
			}
			prev = tag
		}
		if _, err := c.ReserveProtocolTag(); !errors.Is(err, ErrProtocolTagsExhausted) {
			t.Fatalf("exhaustion returned %v, want ErrProtocolTagsExhausted", err)
		}
		// Still an error — not a panic — on every subsequent call.
		if _, err := c.ReserveProtocolTag(); !errors.Is(err, ErrProtocolTagsExhausted) {
			t.Fatalf("second exhaustion returned %v", err)
		}
		return nil
	})
}

// TestFaultObserverReceivesEvents wires an observer and checks the transport
// reports its injections and recoveries on the owning rank goroutine.
func TestFaultObserverReceivesEvents(t *testing.T) {
	plan := fault.Plan{Seed: 3, DropRate: 0.3}
	counts := make([]map[fault.EventKind]int, 2)
	runFaults(t, 2, simnet.SuperMUC(2, true), plan, func(c *Comm) error {
		mine := map[fault.EventKind]int{}
		counts[c.Rank()] = mine
		c.SetFaultObserver(func(e fault.Event) { mine[e.Kind]++ })
		for i := 0; i < 200; i++ {
			SendOne(c, 1-c.Rank(), 0, i)
			RecvOne[int](c, 1-c.Rank(), 0)
		}
		return nil
	})
	var injects, retries, recovers int
	for _, m := range counts {
		injects += m[fault.EventInject]
		retries += m[fault.EventRetry]
		recovers += m[fault.EventRecover]
	}
	if injects == 0 || retries == 0 || recovers == 0 {
		t.Errorf("observer missed events: inject=%d retry=%d recover=%d", injects, retries, recovers)
	}
	if injects != retries {
		t.Errorf("drop-only plan: every injection is a drop and every drop retries; inject=%d retry=%d", injects, retries)
	}
}
