package comm

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"dhsort/internal/simnet"
)

// ErrWorldBroken is returned by PersistentWorld.Execute when the world can
// no longer host jobs: a previous job failed (aborting poisons the
// mailboxes permanently) or a rank left permanently.  The caller must build
// a fresh world; pooled-world servers retire broken worlds on check-in.
var ErrWorldBroken = errors.New("comm: persistent world broken by an earlier job")

// ErrWorldClosed is returned by Execute after Close.
var ErrWorldClosed = errors.New("comm: persistent world closed")

// PersistentWorld hosts long-lived rank goroutines that execute a sequence
// of collective jobs on the same communicator.  Unlike World.Run — which is
// single-shot — the rank goroutines, their mailboxes, per-rank clocks,
// communicator sequence counters and reliable-transport state all survive
// across jobs, so a server can reuse a warm world instead of rebuilding
// goroutines and comm state per request (the world-pool substrate of the
// sort service).
//
// Per-job isolation is still guaranteed where it matters:
//
//   - Stats: each rank's accumulator is snapshotted into the world and
//     reset to zero by the rank goroutine itself at the end of every job
//     (after a quiesce barrier), so RankStats/TotalStats/Makespan report
//     the LAST job only and no communication volume leaks between jobs'
//     metrics documents.  See the ownership note on Stats.
//   - Clocks: reset to zero per job, so Makespan is per-job.
//   - Tags: collective sequence numbers and reliable-transport sequence
//     numbers keep counting monotonically across jobs, which is exactly
//     what keeps late/duplicate envelopes of job k from matching job k+1.
//
// A job that returns an error (or panics, or loses a rank permanently)
// breaks the world: the abort that unblocks the surviving ranks poisons the
// mailboxes for good, and every later Execute returns ErrWorldBroken.
// Fault-injecting plans that schedule permanent deaths therefore should run
// on dedicated single-shot worlds, not pooled ones.
type PersistentWorld struct {
	w    *World
	size int
	jobs []chan func(c *Comm) error
	// ranks maps a jobs index (== communicator rank) to its world rank.
	// Identity at construction; Grow appends fresh world ranks, Shrink
	// truncates the top, so the two stay aligned with the communicator's
	// order-preserving group mapping.
	ranks []int
	done  chan rankDone
	wg    sync.WaitGroup

	runMu sync.Mutex // serializes Execute/Grow/Shrink; jobs are sequential

	mu       sync.Mutex
	broken   bool
	closed   bool
	jobsRun  int
	baseSize int // size at construction
	joined   int // ranks admitted by Grow over the world's lifetime
	removed  int // ranks retired by Shrink over the world's lifetime
}

// rankDone is one rank's verdict on one job.
type rankDone struct {
	rank  int
	err   error
	dead  bool // the world cannot run further jobs (abort or permanent death)
	leave bool // the rank retired cleanly under Shrink; its loop exits
}

// errLeaveWorld is the sentinel a retiring rank returns under Shrink: a
// clean, coordinated exit, not a failure — runJob skips the quiesce barrier
// (the survivors run it on a communicator the victim is no longer part of)
// and rankLoop terminates.
var errLeaveWorld = errors.New("comm: rank leaves the world")

// NewPersistentWorld creates a persistent world of the given size.  model
// may be nil for real-time execution.  The rank goroutines start immediately
// and idle until Execute.
func NewPersistentWorld(size int, model *simnet.CostModel) (*PersistentWorld, error) {
	w, err := NewWorld(size, model)
	if err != nil {
		return nil, err
	}
	pw := &PersistentWorld{
		w:        w,
		size:     size,
		baseSize: size,
		jobs:     make([]chan func(c *Comm) error, size),
		ranks:    make([]int, size),
		done:     make(chan rankDone, size),
	}
	for r := 0; r < size; r++ {
		pw.ranks[r] = r
		pw.jobs[r] = make(chan func(c *Comm) error, 1)
		pw.wg.Add(1)
		go pw.rankLoop(pw.jobs[r], r, size)
	}
	return pw, nil
}

// rankLoop is one rank's lifetime: a fresh Comm over the first size world
// ranks, then one job after another until Close (or a clean leave under
// Shrink).  The Comm survives across jobs by design; Grow re-points it at
// the grown communicator in place (adopt).  The jobs channel is passed in
// rather than indexed from pw.jobs, which Grow appends to concurrently.
func (pw *PersistentWorld) rankLoop(jobs chan func(c *Comm) error, rank, size int) {
	defer pw.wg.Done()
	c := newWorldComm(pw.w, rank, size)
	for fn := range jobs {
		d := pw.runJob(c, rank, fn)
		pw.done <- d
		if d.leave {
			return
		}
	}
}

// runJob executes one job on the rank's persistent Comm, then quiesces,
// snapshots and resets the rank's per-job state.  Mirrors World.Run's
// recover clauses.
func (pw *PersistentWorld) runJob(c *Comm, rank int, fn func(c *Comm) error) (d rankDone) {
	d.rank = rank
	defer func() {
		if p := recover(); p != nil {
			d.dead = true // any unwind leaves the world unusable
			switch v := p.(type) {
			case error:
				if v == errAborted {
					// Collateral of another rank's failure.
					return
				}
				d.err = fmt.Errorf("comm: rank %d: %w", rank, v)
			case suicideExit:
				// Scheduled permanent death: a clean exit for the rank, but
				// the world has permanently lost a member.
				pw.w.mu.Lock()
				pw.w.finals[rank] = v.c.clock.Now()
				pw.w.stats[rank] = *v.c.stats
				pw.w.mu.Unlock()
				return
			case *FailureError:
				d.err = fmt.Errorf("comm: rank %d: %w", rank, v)
			default:
				d.err = fmt.Errorf("comm: rank %d panicked: %v\n%s", rank, p, debug.Stack())
			}
			pw.w.abort()
		}
	}()
	if err := fn(c); err != nil {
		if errors.Is(err, errLeaveWorld) {
			// A clean, coordinated retirement (Shrink): skip the quiesce
			// barrier — the survivors run theirs on a communicator this rank
			// is no longer part of — and let the loop exit.
			d.leave = true
			return
		}
		d.err = fmt.Errorf("comm: rank %d: %w", rank, err)
		d.dead = true
		pw.w.abort()
		return
	}
	// The job's own completion time, before the quiesce barrier below adds
	// synchronization slack.
	end := c.clock.Now()
	// Quiesce: no rank starts the next job (reusing the fused-exchange user
	// tag range and resetting stats) while a peer is still receiving this
	// job's traffic.  Collective discipline makes this safe: every rank that
	// reached this point runs the same barrier.
	Barrier(c)
	// Snapshot and reset on the owning goroutine — the same confinement
	// discipline World.Run uses, extended with a per-job reset so the next
	// job starts from zero (see the Stats ownership note).
	pw.w.mu.Lock()
	pw.w.finals[rank] = end
	pw.w.stats[rank] = *c.stats
	pw.w.mu.Unlock()
	*c.stats = Stats{}
	c.clock.Reset()
	return
}

// Execute runs fn once per rank — the reusable counterpart of World.Run —
// and waits for every rank.  Jobs are serialized: concurrent Execute calls
// queue on an internal mutex.  After a clean job, Makespan/RankStats/
// TotalStats report that job alone.  A failed job breaks the world; further
// calls return ErrWorldBroken.
func (pw *PersistentWorld) Execute(fn func(c *Comm) error) error {
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	pw.mu.Lock()
	if pw.closed {
		pw.mu.Unlock()
		return ErrWorldClosed
	}
	if pw.broken {
		pw.mu.Unlock()
		return ErrWorldBroken
	}
	pw.mu.Unlock()

	for r := 0; r < pw.size; r++ {
		pw.jobs[r] <- fn
	}
	errs := make([]error, 0, pw.size)
	dead := false
	for i := 0; i < pw.size; i++ {
		d := <-pw.done
		if d.err != nil {
			errs = append(errs, d.err)
		}
		if d.dead {
			dead = true
		}
	}
	pw.mu.Lock()
	pw.jobsRun++
	if dead {
		pw.broken = true
	}
	pw.mu.Unlock()
	return errors.Join(errs...)
}

// Grow admits k fresh ranks into the warm world between jobs: the world
// grows (mailboxes registered, registry widened), k new rank loops start,
// and a join job runs as one collective — incumbents call the Grow
// collective with rank 0 sponsoring, joiners AwaitGrow — after which every
// rank's persistent communicator is re-pointed (adopt) at the grown one.
// Warm per-rank state (clocks, mailboxes, goroutines) survives; the next
// Execute runs on size+k ranks.  Serialized with Execute; a failed join
// breaks the world like any failed job.
func (pw *PersistentWorld) Grow(k int) error {
	if k <= 0 {
		return fmt.Errorf("comm: Grow count must be positive, got %d", k)
	}
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	pw.mu.Lock()
	if pw.closed {
		pw.mu.Unlock()
		return ErrWorldClosed
	}
	if pw.broken {
		pw.mu.Unlock()
		return ErrWorldBroken
	}
	pw.mu.Unlock()

	newRanks := pw.w.grow(k)
	size := newRanks[k-1] + 1
	sponsor := pw.ranks[0]
	growFn := func(c *Comm) error {
		c.adopt(c.Grow(newRanks))
		return nil
	}
	joinFn := func(c *Comm) error {
		c.adopt(AwaitGrow(c, sponsor))
		return nil
	}
	old := len(pw.jobs)
	for _, r := range newRanks {
		ch := make(chan func(c *Comm) error, 1)
		pw.jobs = append(pw.jobs, ch)
		pw.ranks = append(pw.ranks, r)
		pw.wg.Add(1)
		go pw.rankLoop(ch, r, size)
		ch <- joinFn
	}
	for i := 0; i < old; i++ {
		pw.jobs[i] <- growFn
	}
	errs := make([]error, 0, old+k)
	dead := false
	for i := 0; i < old+k; i++ {
		d := <-pw.done
		if d.err != nil {
			errs = append(errs, d.err)
		}
		if d.dead {
			dead = true
		}
	}
	pw.mu.Lock()
	pw.jobsRun++
	if dead {
		pw.broken = true
	} else {
		pw.size += k
		pw.joined += k
	}
	pw.mu.Unlock()
	return errors.Join(errs...)
}

// Shrink retires the top k ranks gracefully between jobs, reusing the ULFM
// path: one collective job quiesces the world, the victims leave cleanly
// (their loops exit), and the survivors Revoke the old communicator, Agree
// on the structural suspect set, Shrink to the densely re-ranked survivor
// communicator and adopt it.  The next Execute runs on size-k ranks; rank
// order — and with it any warm partition order — is preserved.
func (pw *PersistentWorld) Shrink(k int) error {
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	pw.mu.Lock()
	if pw.closed {
		pw.mu.Unlock()
		return ErrWorldClosed
	}
	if pw.broken {
		pw.mu.Unlock()
		return ErrWorldBroken
	}
	size := pw.size
	pw.mu.Unlock()
	if k <= 0 || k >= size {
		return fmt.Errorf("comm: Shrink by %d ranks on a world of %d", k, size)
	}

	keep := size - k
	shrinkFn := func(c *Comm) error {
		// Quiesce: every rank enters the retirement collective together, so
		// no victim leaves while a peer still owes it traffic.
		Barrier(c)
		if c.rank >= keep {
			return errLeaveWorld
		}
		c.Revoke()
		suspect := make([]bool, len(c.group))
		for r := keep; r < len(c.group); r++ {
			suspect[r] = true
		}
		alive, _ := c.Agree(suspect)
		c.adopt(c.Shrink(alive))
		return nil
	}
	for i := 0; i < size; i++ {
		pw.jobs[i] <- shrinkFn
	}
	errs := make([]error, 0, size)
	dead := false
	for i := 0; i < size; i++ {
		d := <-pw.done
		if d.err != nil {
			errs = append(errs, d.err)
		}
		if d.dead {
			dead = true
		}
	}
	victims := append([]int(nil), pw.ranks[keep:]...)
	pw.mu.Lock()
	pw.jobsRun++
	if dead {
		pw.broken = true
	} else {
		pw.size = keep
		pw.removed += k
		pw.jobs = pw.jobs[:keep]
		pw.ranks = pw.ranks[:keep]
	}
	pw.mu.Unlock()
	if dead {
		return errors.Join(errs...)
	}
	// Register the retirements and clear the victims' last-job accounting so
	// Makespan/TotalStats of subsequent jobs never read their stale rows.
	for _, wr := range victims {
		pw.w.markDead(wr)
	}
	pw.w.mu.Lock()
	for _, wr := range victims {
		pw.w.finals[wr] = 0
		pw.w.stats[wr] = Stats{}
	}
	pw.w.mu.Unlock()
	return errors.Join(errs...)
}

// Joined returns the number of ranks admitted by Grow over the world's
// lifetime (the service's per-job elasticity marker).
func (pw *PersistentWorld) Joined() int {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.joined
}

// Removed returns the number of ranks retired by Shrink over the world's
// lifetime.
func (pw *PersistentWorld) Removed() int {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.removed
}

// BaseSize returns the world's size at construction.
func (pw *PersistentWorld) BaseSize() int {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.baseSize
}

// Healthy reports whether the world can run further jobs.
func (pw *PersistentWorld) Healthy() bool {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return !pw.broken && !pw.closed
}

// JobsRun returns the number of Execute calls that completed (including
// failed ones).
func (pw *PersistentWorld) JobsRun() int {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.jobsRun
}

// Size returns the current number of ranks (Grow and Shrink change it).
func (pw *PersistentWorld) Size() int {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.size
}

// Model returns the world's cost model (nil in real-time mode).
func (pw *PersistentWorld) Model() *simnet.CostModel { return pw.w.model }

// Makespan returns the LAST job's maximum per-rank completion time (virtual
// under a cost model, wall otherwise).
func (pw *PersistentWorld) Makespan() time.Duration { return pw.w.Makespan() }

// RankStats returns the LAST job's per-rank communication statistics.
func (pw *PersistentWorld) RankStats() []Stats { return pw.w.RankStats() }

// TotalStats sums the LAST job's per-rank communication statistics.
func (pw *PersistentWorld) TotalStats() Stats { return pw.w.TotalStats() }

// Close shuts the rank goroutines down and waits for them.  Must not be
// called concurrently with Execute.  Idempotent.
func (pw *PersistentWorld) Close() {
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	pw.mu.Lock()
	if pw.closed {
		pw.mu.Unlock()
		return
	}
	pw.closed = true
	pw.mu.Unlock()
	for _, ch := range pw.jobs {
		close(ch)
	}
	pw.wg.Wait()
}
