package comm

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"dhsort/internal/simnet"
)

// ErrWorldBroken is returned by PersistentWorld.Execute when the world can
// no longer host jobs: a previous job failed (aborting poisons the
// mailboxes permanently) or a rank left permanently.  The caller must build
// a fresh world; pooled-world servers retire broken worlds on check-in.
var ErrWorldBroken = errors.New("comm: persistent world broken by an earlier job")

// ErrWorldClosed is returned by Execute after Close.
var ErrWorldClosed = errors.New("comm: persistent world closed")

// PersistentWorld hosts long-lived rank goroutines that execute a sequence
// of collective jobs on the same communicator.  Unlike World.Run — which is
// single-shot — the rank goroutines, their mailboxes, per-rank clocks,
// communicator sequence counters and reliable-transport state all survive
// across jobs, so a server can reuse a warm world instead of rebuilding
// goroutines and comm state per request (the world-pool substrate of the
// sort service).
//
// Per-job isolation is still guaranteed where it matters:
//
//   - Stats: each rank's accumulator is snapshotted into the world and
//     reset to zero by the rank goroutine itself at the end of every job
//     (after a quiesce barrier), so RankStats/TotalStats/Makespan report
//     the LAST job only and no communication volume leaks between jobs'
//     metrics documents.  See the ownership note on Stats.
//   - Clocks: reset to zero per job, so Makespan is per-job.
//   - Tags: collective sequence numbers and reliable-transport sequence
//     numbers keep counting monotonically across jobs, which is exactly
//     what keeps late/duplicate envelopes of job k from matching job k+1.
//
// A job that returns an error (or panics, or loses a rank permanently)
// breaks the world: the abort that unblocks the surviving ranks poisons the
// mailboxes for good, and every later Execute returns ErrWorldBroken.
// Fault-injecting plans that schedule permanent deaths therefore should run
// on dedicated single-shot worlds, not pooled ones.
type PersistentWorld struct {
	w    *World
	size int
	jobs []chan func(c *Comm) error
	done chan rankDone
	wg   sync.WaitGroup

	runMu sync.Mutex // serializes Execute; jobs on one world are sequential

	mu      sync.Mutex
	broken  bool
	closed  bool
	jobsRun int
}

// rankDone is one rank's verdict on one job.
type rankDone struct {
	rank int
	err  error
	dead bool // the world cannot run further jobs (abort or permanent death)
}

// NewPersistentWorld creates a persistent world of the given size.  model
// may be nil for real-time execution.  The rank goroutines start immediately
// and idle until Execute.
func NewPersistentWorld(size int, model *simnet.CostModel) (*PersistentWorld, error) {
	w, err := NewWorld(size, model)
	if err != nil {
		return nil, err
	}
	pw := &PersistentWorld{
		w:    w,
		size: size,
		jobs: make([]chan func(c *Comm) error, size),
		done: make(chan rankDone, size),
	}
	for r := 0; r < size; r++ {
		pw.jobs[r] = make(chan func(c *Comm) error, 1)
		pw.wg.Add(1)
		go pw.rankLoop(r)
	}
	return pw, nil
}

// rankLoop is one rank's lifetime: a fresh Comm, then one job after another
// until Close.  The Comm survives across jobs by design.
func (pw *PersistentWorld) rankLoop(rank int) {
	defer pw.wg.Done()
	c := newWorldComm(pw.w, rank)
	for fn := range pw.jobs[rank] {
		pw.done <- pw.runJob(c, rank, fn)
	}
}

// runJob executes one job on the rank's persistent Comm, then quiesces,
// snapshots and resets the rank's per-job state.  Mirrors World.Run's
// recover clauses.
func (pw *PersistentWorld) runJob(c *Comm, rank int, fn func(c *Comm) error) (d rankDone) {
	d.rank = rank
	defer func() {
		if p := recover(); p != nil {
			d.dead = true // any unwind leaves the world unusable
			switch v := p.(type) {
			case error:
				if v == errAborted {
					// Collateral of another rank's failure.
					return
				}
				d.err = fmt.Errorf("comm: rank %d: %w", rank, v)
			case suicideExit:
				// Scheduled permanent death: a clean exit for the rank, but
				// the world has permanently lost a member.
				pw.w.mu.Lock()
				pw.w.finals[rank] = v.c.clock.Now()
				pw.w.stats[rank] = *v.c.stats
				pw.w.mu.Unlock()
				return
			case *FailureError:
				d.err = fmt.Errorf("comm: rank %d: %w", rank, v)
			default:
				d.err = fmt.Errorf("comm: rank %d panicked: %v\n%s", rank, p, debug.Stack())
			}
			pw.w.abort()
		}
	}()
	if err := fn(c); err != nil {
		d.err = fmt.Errorf("comm: rank %d: %w", rank, err)
		d.dead = true
		pw.w.abort()
		return
	}
	// The job's own completion time, before the quiesce barrier below adds
	// synchronization slack.
	end := c.clock.Now()
	// Quiesce: no rank starts the next job (reusing the fused-exchange user
	// tag range and resetting stats) while a peer is still receiving this
	// job's traffic.  Collective discipline makes this safe: every rank that
	// reached this point runs the same barrier.
	Barrier(c)
	// Snapshot and reset on the owning goroutine — the same confinement
	// discipline World.Run uses, extended with a per-job reset so the next
	// job starts from zero (see the Stats ownership note).
	pw.w.mu.Lock()
	pw.w.finals[rank] = end
	pw.w.stats[rank] = *c.stats
	pw.w.mu.Unlock()
	*c.stats = Stats{}
	c.clock.Reset()
	return
}

// Execute runs fn once per rank — the reusable counterpart of World.Run —
// and waits for every rank.  Jobs are serialized: concurrent Execute calls
// queue on an internal mutex.  After a clean job, Makespan/RankStats/
// TotalStats report that job alone.  A failed job breaks the world; further
// calls return ErrWorldBroken.
func (pw *PersistentWorld) Execute(fn func(c *Comm) error) error {
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	pw.mu.Lock()
	if pw.closed {
		pw.mu.Unlock()
		return ErrWorldClosed
	}
	if pw.broken {
		pw.mu.Unlock()
		return ErrWorldBroken
	}
	pw.mu.Unlock()

	for r := 0; r < pw.size; r++ {
		pw.jobs[r] <- fn
	}
	errs := make([]error, 0, pw.size)
	dead := false
	for i := 0; i < pw.size; i++ {
		d := <-pw.done
		if d.err != nil {
			errs = append(errs, d.err)
		}
		if d.dead {
			dead = true
		}
	}
	pw.mu.Lock()
	pw.jobsRun++
	if dead {
		pw.broken = true
	}
	pw.mu.Unlock()
	return errors.Join(errs...)
}

// Healthy reports whether the world can run further jobs.
func (pw *PersistentWorld) Healthy() bool {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return !pw.broken && !pw.closed
}

// JobsRun returns the number of Execute calls that completed (including
// failed ones).
func (pw *PersistentWorld) JobsRun() int {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.jobsRun
}

// Size returns the number of ranks.
func (pw *PersistentWorld) Size() int { return pw.size }

// Model returns the world's cost model (nil in real-time mode).
func (pw *PersistentWorld) Model() *simnet.CostModel { return pw.w.model }

// Makespan returns the LAST job's maximum per-rank completion time (virtual
// under a cost model, wall otherwise).
func (pw *PersistentWorld) Makespan() time.Duration { return pw.w.Makespan() }

// RankStats returns the LAST job's per-rank communication statistics.
func (pw *PersistentWorld) RankStats() []Stats { return pw.w.RankStats() }

// TotalStats sums the LAST job's per-rank communication statistics.
func (pw *PersistentWorld) TotalStats() Stats { return pw.w.TotalStats() }

// Close shuts the rank goroutines down and waits for them.  Must not be
// called concurrently with Execute.  Idempotent.
func (pw *PersistentWorld) Close() {
	pw.runMu.Lock()
	defer pw.runMu.Unlock()
	pw.mu.Lock()
	if pw.closed {
		pw.mu.Unlock()
		return
	}
	pw.closed = true
	pw.mu.Unlock()
	for _, ch := range pw.jobs {
		close(ch)
	}
	pw.wg.Wait()
}
