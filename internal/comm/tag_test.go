package comm

import (
	"strings"
	"testing"
)

// mustPanic runs f and returns the recovered panic message, failing the test
// if f returns normally.
func mustPanic(t *testing.T, what string, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
		t.Errorf("%s did not panic", what)
	}()
	return msg
}

// TestUserTagGuard pins the tag-space contract: the Send/Recv family rejects
// tags in the library-reserved space [UserTagLimit, ∞) — where the fused
// exchange rounds and the rma notification queues live — with a message that
// names the boundary, and rejects negative tags (reserved for collectives).
func TestUserTagGuard(t *testing.T) {
	w, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		for _, tag := range []int{UserTagLimit, UserTagLimit + 5, 1 << 40} {
			msg := mustPanic(t, "Send on a reserved tag", func() { Send(c, 1, tag, []int{1}) })
			if !strings.Contains(msg, "reserved") || !strings.Contains(msg, "UserTagLimit") {
				t.Errorf("tag %d: panic message %q does not explain the reserved space", tag, msg)
			}
		}
		mustPanic(t, "Send on a negative tag", func() { Send(c, 1, -1, []int{1}) })
		mustPanic(t, "SendOne on a reserved tag", func() { SendOne(c, 1, UserTagLimit, 1) })
		mustPanic(t, "Recv on a reserved tag", func() { Recv[int](c, 1, UserTagLimit) })
		mustPanic(t, "RecvAny on a reserved tag", func() { RecvAny[int](c, UserTagLimit+1) })
		mustPanic(t, "Sendrecv on a reserved tag", func() { Sendrecv(c, 1, UserTagLimit, []int{1}) })

		// The inverse guard: the protocol-side primitive refuses user tags,
		// so library plumbing cannot accidentally collide with applications.
		msg := mustPanic(t, "SendrecvProtocol on a user tag", func() { SendrecvProtocol(c, 1, 7, []int{1}, 1) })
		if !strings.Contains(msg, "protocol") {
			t.Errorf("SendrecvProtocol panic %q does not name the protocol contract", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The boundary itself: the largest user tag is accepted.
	w2, err := NewWorld(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = w2.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			Send(c, 1, UserTagLimit-1, []int{42})
		} else {
			if got := Recv[int](c, 0, UserTagLimit-1); got[0] != 42 {
				t.Errorf("boundary-tag payload %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
