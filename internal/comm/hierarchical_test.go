package comm

import (
	"testing"

	"dhsort/internal/prng"
	"dhsort/internal/simnet"
)

// hierWorkload builds a deterministic alltoallv input: rank r sends
// (r+dst)%5 values 1000r+dst to each dst.
func hierWorkload(rank, p int) ([]int, []int) {
	counts := make([]int, p)
	var buf []int
	for d := 0; d < p; d++ {
		counts[d] = (rank + d) % 5
		for k := 0; k < counts[d]; k++ {
			buf = append(buf, rank*1000+d)
		}
	}
	return buf, counts
}

func TestAlltoallvHierMatchesFlat(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6, 9, 16} {
		for _, rpn := range []int{1, 2, 4, 16} {
			run(t, p, func(c *Comm) error {
				buf, counts := hierWorkload(c.Rank(), p)
				wantData, wantCounts := Alltoallv(c, append([]int(nil), buf...), counts, 1)
				gotData, gotCounts := AlltoallvHier(c, buf, counts, rpn, 1)
				if len(gotData) != len(wantData) {
					t.Errorf("p=%d rpn=%d rank=%d: length %d want %d", p, rpn, c.Rank(), len(gotData), len(wantData))
					return nil
				}
				for i := range wantData {
					if gotData[i] != wantData[i] {
						t.Errorf("p=%d rpn=%d rank=%d: data mismatch at %d", p, rpn, c.Rank(), i)
						return nil
					}
				}
				for i := range wantCounts {
					if gotCounts[i] != wantCounts[i] {
						t.Errorf("p=%d rpn=%d rank=%d: count mismatch from %d", p, rpn, c.Rank(), i)
					}
				}
				return nil
			})
		}
	}
}

func TestAlltoallvHierRandomized(t *testing.T) {
	const p = 8
	for seed := uint64(0); seed < 5; seed++ {
		run(t, p, func(c *Comm) error {
			src := prng.NewXoshiro256(seed*100 + uint64(c.Rank()))
			counts := make([]int, p)
			var buf []uint64
			for d := range counts {
				counts[d] = int(prng.Uint64n(src, 7))
				for k := 0; k < counts[d]; k++ {
					buf = append(buf, src.Uint64())
				}
			}
			want, wantC := Alltoallv(c, append([]uint64(nil), buf...), counts, 1)
			got, gotC := AlltoallvHier(c, buf, counts, 4, 1)
			if len(got) != len(want) {
				t.Fatalf("seed=%d: length mismatch", seed)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed=%d: data mismatch at %d", seed, i)
				}
			}
			for i := range wantC {
				if gotC[i] != wantC[i] {
					t.Fatalf("seed=%d: counts mismatch", seed)
				}
			}
			return nil
		})
	}
}

func TestAlltoallvHierReducesNetworkMessages(t *testing.T) {
	const p, rpn = 16, 4
	netMsgs := func(hier bool) int64 {
		model := simnet.SuperMUC(rpn, true)
		w, _ := NewWorld(p, model)
		err := w.Run(func(c *Comm) error {
			counts := make([]int, p)
			var buf []uint64
			for d := range counts {
				counts[d] = 32
				for k := 0; k < 32; k++ {
					buf = append(buf, uint64(d))
				}
			}
			if hier {
				AlltoallvHier(c, buf, counts, rpn, 1)
			} else {
				Alltoallv(c, buf, counts, 1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		st := w.TotalStats()
		return st.Messages[simnet.Network]
	}
	flat, hier := netMsgs(false), netMsgs(true)
	// Flat: each rank sends 12 cross-node messages (to 3 other nodes x 4
	// ranks) = 192.  Hierarchical: 4 leaders exchange with 3 peers (x2
	// for data+metadata) plus small split/allgather traffic.
	if hier >= flat {
		t.Fatalf("hierarchical (%d msgs) must beat flat (%d msgs) on network messages", hier, flat)
	}
	if hier > flat/2 {
		t.Errorf("hierarchical reduction too small: %d vs %d", hier, flat)
	}
}

func TestAlltoallvHierValidation(t *testing.T) {
	w, _ := NewWorld(2, nil)
	err := w.Run(func(c *Comm) error {
		AlltoallvHier(c, []int{1}, []int{1, 1}, 2, 1) // counts sum != len
		return nil
	})
	if err == nil {
		t.Fatal("expected validation panic")
	}
	w2, _ := NewWorld(2, nil)
	err = w2.Run(func(c *Comm) error {
		AlltoallvHier(c, []int{1, 2}, []int{1, 1}, 0, 1) // bad ranksPerNode
		return nil
	})
	if err == nil {
		t.Fatal("expected ranksPerNode panic")
	}
}
