package comm

import "fmt"

// Additional collective and point-to-point conveniences used by the
// baseline algorithms and application code.

// Sendrecv exchanges slices with a partner in one step: a copy of send goes
// to partner under tag and the partner's message under the same tag is
// returned.  Both sides must call it with matching tags.  Safe against
// deadlock because sends are eager.
func Sendrecv[T any](c *Comm, partner, tag int, send []T) []T {
	checkUserTag(tag)
	sendSlice(c, partner, tag, send, 1)
	return recvSlice[T](c, partner, tag)
}

// SendrecvProtocol is Sendrecv with bulk-data byte pricing for
// library-internal protocols: tag must lie in the reserved space at or
// above UserTagLimit (the inverse of the user-tag check), so protocol
// traffic can never be intercepted by an application Recv.
func SendrecvProtocol[T any](c *Comm, partner, tag int, send []T, byteScale float64) []T {
	checkProtocolTag(tag)
	sendSlice(c, partner, tag, send, byteScale)
	return recvSlice[T](c, partner, tag)
}

// SendProtocol is the one-way half of SendrecvProtocol, for protocol
// exchanges whose send and receive partners differ (e.g. the checkpoint
// descriptor ring of the fault plane).  Priced like a normal send.
func SendProtocol[T any](c *Comm, dst, tag int, data []T, byteScale float64) {
	checkProtocolTag(tag)
	sendSlice(c, dst, tag, data, byteScale)
}

// RecvProtocol receives one SendProtocol message from src under a reserved
// protocol tag.
func RecvProtocol[T any](c *Comm, src, tag int) []T {
	checkProtocolTag(tag)
	return recvSlice[T](c, src, tag)
}

// checkProtocolTag is the inverse of checkUserTag: library-internal
// protocol traffic must stay in the reserved space so an application Recv
// can never intercept it.
func checkProtocolTag(tag int) {
	if tag < UserTagLimit {
		panic(fmt.Sprintf("comm: protocol tag %d is below the reserved space [%d, ∞)", tag, UserTagLimit))
	}
}

// Scan returns the inclusive prefix combination over ranks: rank r receives
// op(v_0, ..., v_r).
func Scan[T any](c *Comm, v T, op func(a, b T) T) T {
	prefix, ok := Exscan(c, v, op)
	if !ok {
		return v
	}
	return op(prefix, v)
}

// ReduceScatter combines the per-rank vectors elementwise and returns to
// rank r the r-th block of the result, where blocks[i] has counts[i]
// elements (MPI_Reduce_scatter).  The counts must sum to the vector length
// and be identical on every rank.
func ReduceScatter[T any](c *Comm, data []T, counts []int, op func(a, b T) T) []T {
	p := c.Size()
	if len(counts) != p {
		panic("comm: ReduceScatter needs one count per rank")
	}
	sum := 0
	for _, n := range counts {
		if n < 0 {
			panic("comm: negative count")
		}
		sum += n
	}
	if sum != len(data) {
		panic("comm: ReduceScatter counts do not sum to the vector length")
	}
	full := Reduce(c, 0, data, op)
	var blocks [][]T
	if c.Rank() == 0 {
		blocks = make([][]T, p)
		off := 0
		for i, n := range counts {
			blocks[i] = full[off : off+n]
			off += n
		}
	}
	return Scatter(c, 0, blocks)
}

// Broadcast-side helpers for single values that must originate at a
// dynamically chosen rank.

// MinLoc returns the global minimum of v and the lowest rank holding it.
func MinLoc[T any](c *Comm, v T, less func(a, b T) bool) (T, int) {
	type vr struct {
		V T
		R int
	}
	out := AllreduceOne(c, vr{v, c.Rank()}, func(a, b vr) vr {
		switch {
		case less(a.V, b.V):
			return a
		case less(b.V, a.V):
			return b
		case a.R < b.R:
			return a
		}
		return b
	})
	return out.V, out.R
}

// MaxLoc returns the global maximum of v and the lowest rank holding it.
func MaxLoc[T any](c *Comm, v T, less func(a, b T) bool) (T, int) {
	type vr struct {
		V T
		R int
	}
	out := AllreduceOne(c, vr{v, c.Rank()}, func(a, b vr) vr {
		switch {
		case less(b.V, a.V):
			return a
		case less(a.V, b.V):
			return b
		case a.R < b.R:
			return a
		}
		return b
	})
	return out.V, out.R
}
