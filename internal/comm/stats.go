package comm

import "dhsort/internal/simnet"

// Stats accumulates one rank's communication volume, broken down by link
// class.
//
// Ownership (audited for the race detector): a Stats value is confined to
// its rank goroutine for the duration of World.Run — record is only called
// from Comm.send on that goroutine, and Split shares the same pointer
// because child communicators run on the same goroutine.  The World takes a
// snapshot copy under World.mu when the rank's function returns, so
// World-side aggregation (TotalStats, RankStats) never reads a live
// accumulator.  Do not retain the pointer returned by Comm.Stats past the
// rank function's lifetime unless all ranks have finished (e.g. after
// World.Run returns, which establishes the necessary happens-before edge).
type Stats struct {
	Messages [simnet.NumLinkClasses]int64 // per simnet.LinkClass
	Bytes    [simnet.NumLinkClasses]int64

	// One-sided traffic (internal/rma), accounted separately from the
	// two-sided message counters so ablations can attribute volume to the
	// transport that carried it.
	Puts     [simnet.NumLinkClasses]int64
	PutBytes [simnet.NumLinkClasses]int64
	Notifies [simnet.NumLinkClasses]int64
}

func (s *Stats) record(lc simnet.LinkClass, bytes int) {
	s.Messages[lc]++
	s.Bytes[lc] += int64(bytes)
}

// RecordPut accounts one one-sided put of the given priced volume on the
// link class.  Called by internal/rma from the origin rank's goroutine (same
// confinement rules as record).
func (s *Stats) RecordPut(lc simnet.LinkClass, bytes int) {
	s.Puts[lc]++
	s.PutBytes[lc] += int64(bytes)
}

// RecordNotify accounts one put-notification on the link class.
func (s *Stats) RecordNotify(lc simnet.LinkClass) {
	s.Notifies[lc]++
}

// Add accumulates o into s.  The caller must own both values (the World
// calls it under its mutex on snapshot copies).
func (s *Stats) Add(o *Stats) {
	for i := range s.Messages {
		s.Messages[i] += o.Messages[i]
		s.Bytes[i] += o.Bytes[i]
		s.Puts[i] += o.Puts[i]
		s.PutBytes[i] += o.PutBytes[i]
		s.Notifies[i] += o.Notifies[i]
	}
}

// Sub returns s - o per field, for delta accounting between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	var d Stats
	for i := range s.Messages {
		d.Messages[i] = s.Messages[i] - o.Messages[i]
		d.Bytes[i] = s.Bytes[i] - o.Bytes[i]
		d.Puts[i] = s.Puts[i] - o.Puts[i]
		d.PutBytes[i] = s.PutBytes[i] - o.PutBytes[i]
		d.Notifies[i] = s.Notifies[i] - o.Notifies[i]
	}
	return d
}

// TotalMessages returns the message count across all link classes.
func (s *Stats) TotalMessages() int64 {
	var t int64
	for _, v := range s.Messages {
		t += v
	}
	return t
}

// TotalBytes returns the byte volume across all link classes.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for _, v := range s.Bytes {
		t += v
	}
	return t
}

// NetworkBytes returns the volume that crossed node boundaries.
func (s *Stats) NetworkBytes() int64 { return s.Bytes[simnet.Network] }

// TotalPuts returns the one-sided put count across all link classes.
func (s *Stats) TotalPuts() int64 {
	var t int64
	for _, v := range s.Puts {
		t += v
	}
	return t
}

// TotalPutBytes returns the one-sided put volume across all link classes.
func (s *Stats) TotalPutBytes() int64 {
	var t int64
	for _, v := range s.PutBytes {
		t += v
	}
	return t
}

// TotalNotifies returns the put-notification count across all link classes.
func (s *Stats) TotalNotifies() int64 {
	var t int64
	for _, v := range s.Notifies {
		t += v
	}
	return t
}
