package comm

import "dhsort/internal/simnet"

// Stats accumulates one rank's communication volume, broken down by link
// class.
//
// Ownership (audited for the race detector): a Stats value is confined to
// its rank goroutine for the duration of World.Run — record is only called
// from Comm.send on that goroutine, and Split shares the same pointer
// because child communicators run on the same goroutine.  The World takes a
// snapshot copy under World.mu when the rank's function returns, so
// World-side aggregation (TotalStats, RankStats) never reads a live
// accumulator.  Do not retain the pointer returned by Comm.Stats past the
// rank function's lifetime unless all ranks have finished (e.g. after
// World.Run returns, which establishes the necessary happens-before edge).
//
// Pooled persistent worlds extend the audit across jobs: at the end of
// every PersistentWorld.Execute, each rank goroutine — after the post-job
// quiesce barrier — snapshots its accumulator into the World under
// World.mu and then ZEROES it, still on the owning goroutine, before the
// next job can start.  Consequently a pooled world's stats reset between
// jobs: RankStats/TotalStats report the last job only, and a job's metrics
// document can never inherit message counts, byte volumes or fault tallies
// from an earlier tenant's job on the same warm world (tested by
// TestPersistentWorldStatsResetBetweenJobs).
type Stats struct {
	Messages [simnet.NumLinkClasses]int64 // per simnet.LinkClass
	Bytes    [simnet.NumLinkClasses]int64

	// One-sided traffic (internal/rma), accounted separately from the
	// two-sided message counters so ablations can attribute volume to the
	// transport that carried it.
	Puts     [simnet.NumLinkClasses]int64
	PutBytes [simnet.NumLinkClasses]int64
	Notifies [simnet.NumLinkClasses]int64

	// Fault tallies the fault plane's activity on this rank (zero in
	// fault-free runs).
	Fault FaultCounters
}

// FaultCounters tallies injected faults and the resilience work they caused
// on one rank.  Same ownership rules as Stats: rank-goroutine-confined,
// snapshotted by the World at rank exit.
type FaultCounters struct {
	Drops    int64 // transmission attempts lost by the injector
	Dups     int64 // duplicate deliveries injected
	Delays   int64 // messages given extra arrival jitter
	Reorders int64 // messages jumped ahead of the receive queue
	Retries  int64 // retransmissions after a modelled timeout
	RetryNS  int64 // virtual time spent waiting out retransmission timeouts
	Dedup    int64 // receiver-side duplicate discards
}

// Any reports whether any fault-plane activity was recorded.
func (f FaultCounters) Any() bool {
	return f != FaultCounters{}
}

func (f *FaultCounters) add(o FaultCounters) {
	f.Drops += o.Drops
	f.Dups += o.Dups
	f.Delays += o.Delays
	f.Reorders += o.Reorders
	f.Retries += o.Retries
	f.RetryNS += o.RetryNS
	f.Dedup += o.Dedup
}

func (f FaultCounters) sub(o FaultCounters) FaultCounters {
	return FaultCounters{
		Drops:    f.Drops - o.Drops,
		Dups:     f.Dups - o.Dups,
		Delays:   f.Delays - o.Delays,
		Reorders: f.Reorders - o.Reorders,
		Retries:  f.Retries - o.Retries,
		RetryNS:  f.RetryNS - o.RetryNS,
		Dedup:    f.Dedup - o.Dedup,
	}
}

func (s *Stats) record(lc simnet.LinkClass, bytes int) {
	s.Messages[lc]++
	s.Bytes[lc] += int64(bytes)
}

// RecordPut accounts one one-sided put of the given priced volume on the
// link class.  Called by internal/rma from the origin rank's goroutine (same
// confinement rules as record).
func (s *Stats) RecordPut(lc simnet.LinkClass, bytes int) {
	s.Puts[lc]++
	s.PutBytes[lc] += int64(bytes)
}

// RecordNotify accounts one put-notification on the link class.
func (s *Stats) RecordNotify(lc simnet.LinkClass) {
	s.Notifies[lc]++
}

// Add accumulates o into s.  The caller must own both values (the World
// calls it under its mutex on snapshot copies).
func (s *Stats) Add(o *Stats) {
	for i := range s.Messages {
		s.Messages[i] += o.Messages[i]
		s.Bytes[i] += o.Bytes[i]
		s.Puts[i] += o.Puts[i]
		s.PutBytes[i] += o.PutBytes[i]
		s.Notifies[i] += o.Notifies[i]
	}
	s.Fault.add(o.Fault)
}

// Sub returns s - o per field, for delta accounting between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	var d Stats
	for i := range s.Messages {
		d.Messages[i] = s.Messages[i] - o.Messages[i]
		d.Bytes[i] = s.Bytes[i] - o.Bytes[i]
		d.Puts[i] = s.Puts[i] - o.Puts[i]
		d.PutBytes[i] = s.PutBytes[i] - o.PutBytes[i]
		d.Notifies[i] = s.Notifies[i] - o.Notifies[i]
	}
	d.Fault = s.Fault.sub(o.Fault)
	return d
}

// TotalMessages returns the message count across all link classes.
func (s *Stats) TotalMessages() int64 {
	var t int64
	for _, v := range s.Messages {
		t += v
	}
	return t
}

// TotalBytes returns the byte volume across all link classes.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for _, v := range s.Bytes {
		t += v
	}
	return t
}

// NetworkBytes returns the volume that crossed node boundaries.
func (s *Stats) NetworkBytes() int64 { return s.Bytes[simnet.Network] }

// TotalPuts returns the one-sided put count across all link classes.
func (s *Stats) TotalPuts() int64 {
	var t int64
	for _, v := range s.Puts {
		t += v
	}
	return t
}

// TotalPutBytes returns the one-sided put volume across all link classes.
func (s *Stats) TotalPutBytes() int64 {
	var t int64
	for _, v := range s.PutBytes {
		t += v
	}
	return t
}

// TotalNotifies returns the put-notification count across all link classes.
func (s *Stats) TotalNotifies() int64 {
	var t int64
	for _, v := range s.Notifies {
		t += v
	}
	return t
}
