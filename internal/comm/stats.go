package comm

import "dhsort/internal/simnet"

// Stats accumulates one rank's communication volume, broken down by link
// class.  It is owned by the rank goroutine (no locking) and aggregated by
// the World after Run.
type Stats struct {
	Messages [4]int64 // per simnet.LinkClass
	Bytes    [4]int64
}

func (s *Stats) record(lc simnet.LinkClass, bytes int) {
	s.Messages[lc]++
	s.Bytes[lc] += int64(bytes)
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	for i := range s.Messages {
		s.Messages[i] += o.Messages[i]
		s.Bytes[i] += o.Bytes[i]
	}
}

// TotalMessages returns the message count across all link classes.
func (s *Stats) TotalMessages() int64 {
	var t int64
	for _, v := range s.Messages {
		t += v
	}
	return t
}

// TotalBytes returns the byte volume across all link classes.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for _, v := range s.Bytes {
		t += v
	}
	return t
}

// NetworkBytes returns the volume that crossed node boundaries.
func (s *Stats) NetworkBytes() int64 { return s.Bytes[simnet.Network] }
