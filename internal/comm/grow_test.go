package comm

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"dhsort/internal/simnet"
)

// TestSpawnAndGrow walks the full join protocol on a fault-free world: rank
// 0 spawns two joiners mid-run, every incumbent calls the Grow collective,
// the joiners AwaitGrow, and the grown communicator is collective-capable
// with incumbents keeping their ranks and joiners appended.
func TestSpawnAndGrow(t *testing.T) {
	const p, k = 4, 2
	w, err := NewWorld(p, simnet.SuperMUC(2, true))
	if err != nil {
		t.Fatal(err)
	}
	joiners := []int{4, 5}
	var spawned *Spawned
	err = w.Run(func(c *Comm) error {
		Barrier(c)
		if c.Rank() == 0 {
			s, serr := w.Spawn(k, func(jc *Comm) error {
				if jc.Size() != p+k {
					t.Errorf("joiner world comm has size %d, want %d", jc.Size(), p+k)
				}
				nc := AwaitGrow(jc, 0)
				if nc.Size() != p+k {
					t.Errorf("joiner: grown comm has size %d, want %d", nc.Size(), p+k)
				}
				got := AllgatherOne(nc, nc.WorldRank())
				if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
					t.Errorf("joiner %d: allgather on grown comm: %v", jc.Rank(), got)
				}
				return nil
			})
			if serr != nil {
				return serr
			}
			if !reflect.DeepEqual(s.Ranks(), joiners) {
				t.Errorf("spawned world ranks %v, want %v", s.Ranks(), joiners)
			}
			spawned = s
		}
		nc := c.Grow(joiners)
		if nc.Rank() != c.Rank() {
			t.Errorf("incumbent rank changed across Grow: %d -> %d", c.Rank(), nc.Rank())
		}
		if nc.Size() != p+k {
			t.Errorf("grown comm has size %d, want %d", nc.Size(), p+k)
		}
		got := AllgatherOne(nc, nc.WorldRank())
		if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5}) {
			t.Errorf("incumbent %d: allgather on grown comm: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := spawned.Wait(); err != nil {
		t.Fatalf("joiners failed: %v", err)
	}
	if w.Size() != p+k {
		t.Errorf("world size after grow: %d, want %d", w.Size(), p+k)
	}
}

// TestGrowDeterministicIdentity pins the grown communicator's identity
// derivation: a pure function of the parent id and the grow epoch, so all
// members of a run — and identical replays — agree on it without
// negotiation, exactly like Shrink's.
func TestGrowDeterministicIdentity(t *testing.T) {
	const p, k = 4, 2
	run := func() []uint64 {
		w, err := NewWorld(p, simnet.SuperMUC(2, true))
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, p+k)
		var mu sync.Mutex
		var spawned *Spawned
		err = w.Run(func(c *Comm) error {
			Barrier(c)
			if c.Rank() == 0 {
				s, serr := w.Spawn(k, func(jc *Comm) error {
					nc := AwaitGrow(jc, 0)
					mu.Lock()
					ids[nc.Rank()] = nc.id
					mu.Unlock()
					Barrier(nc)
					return nil
				})
				if serr != nil {
					return serr
				}
				spawned = s
			}
			nc := c.Grow([]int{4, 5})
			mu.Lock()
			ids[nc.Rank()] = nc.id
			mu.Unlock()
			Barrier(nc)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := spawned.Wait(); err != nil {
			t.Fatal(err)
		}
		return ids
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("grown communicator identities differ across identical runs: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			t.Errorf("members disagree on the grown identity: %v", a)
			break
		}
	}
	if a[0] == 0 || a[0] == 1 {
		t.Errorf("grown identity fell into the reserved range: %v", a)
	}
}

// TestGrowJoinerDeathResolves injects a death DURING the grow: one of the
// two joiners dies instead of joining.  Every participant — incumbents and
// the surviving joiner — must unwind with a typed failure (never deadlock),
// and the incumbents must then recover through the ordinary
// Revoke/Agree/Shrink path on the OLD communicator and carry on without
// the joiners.
func TestGrowJoinerDeathResolves(t *testing.T) {
	const p = 4
	w, err := NewWorldWithFaults(p, simnet.SuperMUC(2, true), diePlan(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	var spawned *Spawned
	err = w.Run(func(c *Comm) error {
		Barrier(c)
		if c.Rank() == 0 {
			s, serr := w.Spawn(2, func(jc *Comm) error {
				if jc.Rank() == 4 {
					jc.Die() // never returns
				}
				jerr := Try(func() { AwaitGrow(jc, 0) })
				if !errors.Is(jerr, ErrRankDead) && !errors.Is(jerr, ErrCommRevoked) {
					t.Errorf("surviving joiner must unwind typed, got: %v", jerr)
				}
				return jerr
			})
			if serr != nil {
				return serr
			}
			spawned = s
		}
		gerr := Try(func() { c.Grow([]int{4, 5}) })
		if gerr == nil {
			t.Errorf("rank %d: Grow with a dying joiner must fail", c.Rank())
			return nil
		}
		if !errors.Is(gerr, ErrRankDead) && !errors.Is(gerr, ErrCommRevoked) {
			t.Errorf("rank %d: Grow failure must be typed, got: %v", c.Rank(), gerr)
		}
		// The standard recovery recipe on the old communicator: all four
		// incumbents survived, so the shrink is an identity re-rank and the
		// world continues without the joiners.
		c.Revoke()
		alive, _ := c.Agree(nil)
		nc := c.Shrink(alive)
		if nc.Size() != p {
			t.Errorf("rank %d: survivor comm has size %d, want %d", c.Rank(), nc.Size(), p)
		}
		got := AllgatherOne(nc, c.WorldRank())
		if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
			t.Errorf("rank %d: allgather after recovery: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The surviving joiner's typed failure surfaces through Wait; the dead
	// joiner's scheduled exit is clean and contributes no error.
	werr := spawned.Wait()
	if !errors.Is(werr, ErrRankDead) && !errors.Is(werr, ErrCommRevoked) {
		t.Errorf("Spawned.Wait must surface the surviving joiner's typed failure, got: %v", werr)
	}
	if !w.RankDead(4) {
		t.Errorf("dead joiner not registered: %v", w.DeadRanks())
	}
}

// TestGrowIncumbentDeathResolves is the other composition: an incumbent
// (not the sponsor) dies between the quiesce barrier and the join barrier.
// The remaining incumbents and both joiners unwind typed, and the
// incumbents shrink past the victim.
func TestGrowIncumbentDeathResolves(t *testing.T) {
	const p = 4
	w, err := NewWorldWithFaults(p, simnet.SuperMUC(2, true), diePlan(2, 9))
	if err != nil {
		t.Fatal(err)
	}
	var spawned *Spawned
	err = w.Run(func(c *Comm) error {
		Barrier(c)
		if c.Rank() == 0 {
			s, serr := w.Spawn(2, func(jc *Comm) error {
				jerr := Try(func() { AwaitGrow(jc, 0) })
				if !errors.Is(jerr, ErrRankDead) && !errors.Is(jerr, ErrCommRevoked) {
					t.Errorf("joiner must unwind typed, got: %v", jerr)
				}
				return jerr
			})
			if serr != nil {
				return serr
			}
			spawned = s
		}
		if c.Rank() == 2 {
			// Participate in Grow's entry barrier so nobody is still owed
			// pre-grow traffic, then die mid-protocol.
			Barrier(c)
			c.Die()
		}
		gerr := Try(func() { c.Grow([]int{4, 5}) })
		if gerr == nil {
			t.Errorf("rank %d: Grow across a death must fail", c.Rank())
			return nil
		}
		if !errors.Is(gerr, ErrRankDead) && !errors.Is(gerr, ErrCommRevoked) {
			t.Errorf("rank %d: Grow failure must be typed, got: %v", c.Rank(), gerr)
		}
		c.Revoke()
		suspect := make([]bool, p)
		suspect[2] = true
		alive, _ := c.Agree(suspect)
		nc := c.Shrink(alive)
		if nc.Size() != p-1 {
			t.Errorf("rank %d: survivor comm has size %d, want %d", c.Rank(), nc.Size(), p-1)
		}
		got := AllgatherOne(nc, c.WorldRank())
		if !reflect.DeepEqual(got, []int{0, 1, 3}) {
			t.Errorf("rank %d: allgather after recovery: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := spawned.Wait()
	if !errors.Is(werr, ErrRankDead) && !errors.Is(werr, ErrCommRevoked) {
		t.Errorf("Spawned.Wait must surface the joiners' typed failures, got: %v", werr)
	}
}

// TestPersistentWorldGrowShrink drives the warm-world elasticity cycle the
// service pool uses: jobs on 4 ranks, Grow(2) between jobs, jobs on 6,
// Shrink(2) back to 4, then Grow(1) again — the re-grown rank gets a fresh
// world rank (retired ranks are never resurrected), and every epoch's
// collective sees exactly the current membership.
func TestPersistentWorldGrowShrink(t *testing.T) {
	model := simnet.SuperMUC(2, true)
	pw, err := NewPersistentWorld(4, model)
	if err != nil {
		t.Fatal(err)
	}
	defer pw.Close()

	gather := func(want []int) {
		t.Helper()
		var mu sync.Mutex
		var got []int
		err := pw.Execute(func(c *Comm) error {
			all := AllgatherOne(c, c.WorldRank())
			if c.Rank() == 0 {
				mu.Lock()
				got = all
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("membership %v, want %v", got, want)
		}
	}

	gather([]int{0, 1, 2, 3})
	if err := pw.Grow(2); err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if pw.Size() != 6 || pw.Joined() != 2 {
		t.Fatalf("after Grow: size=%d joined=%d", pw.Size(), pw.Joined())
	}
	gather([]int{0, 1, 2, 3, 4, 5})
	if pw.Makespan() <= 0 {
		t.Errorf("grown job has no makespan")
	}
	if err := pw.Shrink(2); err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if pw.Size() != 4 || pw.Removed() != 2 {
		t.Fatalf("after Shrink: size=%d removed=%d", pw.Size(), pw.Removed())
	}
	gather([]int{0, 1, 2, 3})
	// Re-grow after a shrink: world ranks 4 and 5 are retired for good, so
	// the new member lands on world rank 6.
	if err := pw.Grow(1); err != nil {
		t.Fatalf("re-Grow: %v", err)
	}
	gather([]int{0, 1, 2, 3, 6})
	if !pw.Healthy() {
		t.Error("world unhealthy after a clean grow/shrink cycle")
	}
	if pw.BaseSize() != 4 {
		t.Errorf("BaseSize=%d, want 4", pw.BaseSize())
	}
}

// TestPersistentWorldGrowMakespanDeterministic pins virtual-clock sync at
// the join barrier: identical grow-then-sort sequences on two worlds land
// on bit-identical makespans.
func TestPersistentWorldGrowMakespanDeterministic(t *testing.T) {
	model := simnet.SuperMUC(2, true)
	run := func() (int64, int64) {
		pw, err := NewPersistentWorld(4, model)
		if err != nil {
			t.Fatal(err)
		}
		defer pw.Close()
		if err := pw.Grow(2); err != nil {
			t.Fatal(err)
		}
		var growNS int64 = int64(pw.Makespan())
		err = pw.Execute(func(c *Comm) error {
			vals := AllgatherOne(c, c.Rank()*7)
			_ = vals
			Barrier(c)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return growNS, int64(pw.Makespan())
	}
	g1, j1 := run()
	g2, j2 := run()
	if g1 != g2 || j1 != j2 {
		t.Errorf("grow/job makespans differ across identical runs: (%d,%d) vs (%d,%d)", g1, j1, g2, j2)
	}
}
