package comm

import (
	"fmt"
	"math/bits"
)

// The collectives below are the operations the paper's algorithms are made
// of, implemented with the standard algorithms of production MPI libraries:
// binomial trees (Bcast, Reduce, Gather, Scatter), recursive doubling with
// a non-power-of-two fold (Allreduce), gather+broadcast (Allgather), a
// dissemination barrier, and a 1-factor-style pairwise exchange (Alltoall).
// None of them assumes a power-of-two communicator — the paper stresses
// that its algorithm is free of such constraints (§VI-B).
//
// All of them are collective: every rank of the communicator must call them
// in the same order with consistent arguments.

// Barrier blocks until every rank of c has entered it (dissemination
// algorithm, ceil(log2 P) rounds).
func Barrier(c *Comm) {
	base := c.nextSeq()
	p := c.Size()
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		c.send((c.rank+k)%p, base+round, struct{}{}, 0, 1)
		c.recv((c.rank-k+p)%p, base+round)
	}
}

// Bcast distributes root's data to every rank over a binomial tree and
// returns it.  Non-root ranks should pass nil.
func Bcast[T any](c *Comm, root int, data []T) []T {
	base := c.nextSeq()
	p := c.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("comm: Bcast root %d out of range", root))
	}
	if p == 1 {
		return data
	}
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (c.rank - mask + p) % p
			data = recvSlice[T](c, src, base)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (c.rank + mask) % p
			sendSlice(c, dst, base, data, 1)
		}
		mask >>= 1
	}
	return data
}

// BcastOne distributes a single value from root to every rank.
func BcastOne[T any](c *Comm, root int, v T) T {
	out := Bcast(c, root, []T{v})
	return out[0]
}

// combine folds other into acc elementwise.
func combine[T any](acc, other []T, op func(a, b T) T) {
	if len(acc) != len(other) {
		panic(fmt.Sprintf("comm: reduction length mismatch: %d vs %d", len(acc), len(other)))
	}
	for i := range acc {
		acc[i] = op(acc[i], other[i])
	}
}

// Reduce combines the data vectors of all ranks elementwise with op
// (which must be associative and commutative) over a binomial tree and
// returns the result at root; other ranks get nil.
func Reduce[T any](c *Comm, root int, data []T, op func(a, b T) T) []T {
	base := c.nextSeq()
	p := c.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("comm: Reduce root %d out of range", root))
	}
	acc := make([]T, len(data))
	copy(acc, data)
	rel := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (c.rank - mask + p) % p
			sendSlice(c, dst, base, acc, 1)
			return nil
		}
		if rel|mask < p {
			src := (c.rank + mask) % p
			other := recvSlice[T](c, src, base)
			combine(acc, other, op)
		}
	}
	return acc
}

// Allreduce combines all ranks' data vectors elementwise with op (which
// must be associative and commutative) and returns the result on every
// rank.  Recursive doubling with the standard fold for non-power-of-two
// communicators: ceil(log2 P)+2 rounds.
func Allreduce[T any](c *Comm, data []T, op func(a, b T) T) []T {
	acc := make([]T, len(data))
	copy(acc, data)
	return AllreduceInPlace(c, acc, op)
}

// AllreduceInPlace is Allreduce accumulating into data itself: on return,
// data holds the global reduction (and is also returned for convenience).
// The schedule, message counts and priced bytes are identical to Allreduce;
// only the caller-side result allocation is gone — the variant hot loops
// (splitter refinement's per-round histograms, whose payload shrinks with
// the active set) call with a buffer reused round after round.  sendSlice
// copies outgoing payloads, so mutating data between rounds is safe.
func AllreduceInPlace[T any](c *Comm, data []T, op func(a, b T) T) []T {
	base := c.nextSeq()
	p := c.Size()
	if p == 1 {
		return data
	}
	pof2 := 1 << (bits.Len(uint(p)) - 1)
	rem := p - pof2
	logp := bits.Len(uint(pof2)) - 1
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 0:
		// Fold: hand the vector to the odd neighbour and wait for the result.
		sendSlice(c, c.rank+1, base, data, 1)
		copy(data, recvSlice[T](c, c.rank+1, base+1+logp))
		return data
	case c.rank < 2*rem:
		other := recvSlice[T](c, c.rank-1, base)
		combine(data, other, op)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}
	round := 1
	for mask := 1; mask < pof2; mask <<= 1 {
		partnerNew := newRank ^ mask
		partner := partnerNew + rem
		if partnerNew < rem {
			partner = partnerNew*2 + 1
		}
		sendSlice(c, partner, base+round, data, 1)
		other := recvSlice[T](c, partner, base+round)
		combine(data, other, op)
		round++
	}
	if c.rank < 2*rem {
		sendSlice(c, c.rank-1, base+round, data, 1)
	}
	return data
}

// AllreduceOne combines a single value across all ranks.
func AllreduceOne[T any](c *Comm, v T, op func(a, b T) T) T {
	return Allreduce(c, []T{v}, op)[0]
}

// rankBlock tags a data block with its originating rank while it travels
// through gather/allgather trees.
type rankBlock[T any] struct {
	Rank int
	Data []T
}

func blocksBytes[T any](blocks []rankBlock[T]) int {
	n := 0
	for _, b := range blocks {
		n += len(b.Data)*elemBytes[T]() + 16
	}
	return n
}

// Gather collects every rank's data at root (binomial tree).  At root the
// result is indexed by rank; other ranks get nil.  Blocks may have
// different lengths (MPI_Gatherv).
func Gather[T any](c *Comm, root int, mine []T) [][]T {
	base := c.nextSeq()
	p := c.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("comm: Gather root %d out of range", root))
	}
	own := make([]T, len(mine))
	copy(own, mine)
	blocks := []rankBlock[T]{{Rank: c.rank, Data: own}}
	rel := (c.rank - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (c.rank - mask + p) % p
			c.send(dst, base, blocks, blocksBytes(blocks), 1)
			return nil
		}
		if rel|mask < p {
			src := (c.rank + mask) % p
			e := c.recv(src, base)
			blocks = append(blocks, e.payload.([]rankBlock[T])...)
		}
	}
	out := make([][]T, p)
	for _, b := range blocks {
		out[b.Rank] = b.Data
	}
	return out
}

// bcastBlocks broadcasts a block list from root (binomial tree), preserving
// per-block byte accounting.
func bcastBlocks[T any](c *Comm, root int, blocks []rankBlock[T]) []rankBlock[T] {
	base := c.nextSeq()
	p := c.Size()
	if p == 1 {
		return blocks
	}
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (c.rank - mask + p) % p
			blocks = c.recv(src, base).payload.([]rankBlock[T])
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (c.rank + mask) % p
			c.send(dst, base, blocks, blocksBytes(blocks), 1)
		}
		mask >>= 1
	}
	return blocks
}

// Allgather collects every rank's data on every rank, indexed by rank
// (gather to rank 0 + broadcast: O(log P) rounds).  Blocks may have
// different lengths (MPI_Allgatherv).
func Allgather[T any](c *Comm, mine []T) [][]T {
	p := c.Size()
	own := make([]T, len(mine))
	copy(own, mine)
	blocks := []rankBlock[T]{{Rank: c.rank, Data: own}}
	// Inline gather to 0.
	gbase := c.nextSeq()
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			c.send(c.rank-mask, gbase, blocks, blocksBytes(blocks), 1)
			blocks = nil
			break
		}
		if c.rank|mask < p {
			e := c.recv(c.rank+mask, gbase)
			blocks = append(blocks, e.payload.([]rankBlock[T])...)
		}
	}
	blocks = bcastBlocks(c, 0, blocks)
	out := make([][]T, p)
	for _, b := range blocks {
		out[b.Rank] = b.Data
	}
	return out
}

// AllgatherOne collects one value per rank on every rank, indexed by rank.
func AllgatherOne[T any](c *Comm, v T) []T {
	all := Allgather(c, []T{v})
	out := make([]T, len(all))
	for i, b := range all {
		out[i] = b[0]
	}
	return out
}

// Scatter distributes root's per-rank blocks over a binomial tree and
// returns this rank's block.  Non-root ranks pass nil.  Blocks may have
// different lengths (MPI_Scatterv).
func Scatter[T any](c *Comm, root int, all [][]T) []T {
	base := c.nextSeq()
	p := c.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("comm: Scatter root %d out of range", root))
	}
	rel := (c.rank - root + p) % p
	var blocks []rankBlock[T]
	if c.rank == root {
		if len(all) != p {
			panic(fmt.Sprintf("comm: Scatter needs %d blocks, got %d", p, len(all)))
		}
		blocks = make([]rankBlock[T], p)
		for i, b := range all {
			own := make([]T, len(b))
			copy(own, b)
			blocks[i] = rankBlock[T]{Rank: i, Data: own}
		}
	}
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (c.rank - mask + p) % p
			blocks = c.recv(src, base).payload.([]rankBlock[T])
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (c.rank + mask) % p
			// Blocks for the child's subtree: relative ranks [rel+mask, rel+2*mask).
			var mineBlocks, childBlocks []rankBlock[T]
			for _, b := range blocks {
				brel := (b.Rank - root + p) % p
				if brel >= rel+mask {
					childBlocks = append(childBlocks, b)
				} else {
					mineBlocks = append(mineBlocks, b)
				}
			}
			c.send(dst, base, childBlocks, blocksBytes(childBlocks), 1)
			blocks = mineBlocks
		}
		mask >>= 1
	}
	for _, b := range blocks {
		if b.Rank == c.rank {
			return b.Data
		}
	}
	return nil
}

// Alltoall exchanges blocks[i] to rank i and returns the blocks received,
// indexed by sender (pairwise exchange, P rounds — the large-message
// algorithm; §VI-E1 discusses the trade-off versus store-and-forward).
func Alltoall[T any](c *Comm, blocks [][]T) [][]T {
	return AlltoallScaled(c, blocks, 1)
}

// AlltoallScaled is Alltoall with payloads priced at byteScale times their
// real size (bulk-data pricing for reduced-scale experiments).
func AlltoallScaled[T any](c *Comm, blocks [][]T, byteScale float64) [][]T {
	base := c.nextSeq()
	p := c.Size()
	if len(blocks) != p {
		panic(fmt.Sprintf("comm: Alltoall needs %d blocks, got %d", p, len(blocks)))
	}
	out := make([][]T, p)
	for i := 0; i < p; i++ {
		dst := (c.rank + i) % p
		src := (c.rank - i + p) % p
		sendSlice(c, dst, base+i, blocks[dst], byteScale)
		out[src] = recvSlice[T](c, src, base+i)
	}
	return out
}

// Alltoallv exchanges a contiguous buffer partitioned by sendCounts
// (sendCounts[i] elements go to rank i) and returns the received buffer in
// rank order with its counts — MPI_Alltoallv, the single data-movement round
// of the sorting algorithms (§V-B).
func Alltoallv[T any](c *Comm, data []T, sendCounts []int, byteScale float64) ([]T, []int) {
	p := c.Size()
	if len(sendCounts) != p {
		panic(fmt.Sprintf("comm: Alltoallv needs %d counts, got %d", p, len(sendCounts)))
	}
	blocks := make([][]T, p)
	off := 0
	for i, n := range sendCounts {
		if n < 0 {
			panic("comm: negative send count")
		}
		if off+n > len(data) {
			panic("comm: send counts exceed buffer length")
		}
		blocks[i] = data[off : off+n]
		off += n
	}
	if off != len(data) {
		panic(fmt.Sprintf("comm: send counts sum to %d, buffer has %d", off, len(data)))
	}
	recvBlocks := AlltoallScaled(c, blocks, byteScale)
	recvCounts := make([]int, p)
	total := 0
	for i, b := range recvBlocks {
		recvCounts[i] = len(b)
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range recvBlocks {
		out = append(out, b...)
	}
	return out, recvCounts
}

// Exscan returns the exclusive prefix combination of v over ranks: rank r
// receives op(v_0, ..., v_{r-1}); ok is false on rank 0, whose result is
// undefined (the zero value).
func Exscan[T any](c *Comm, v T, op func(a, b T) T) (T, bool) {
	all := AllgatherOne(c, v)
	var acc T
	if c.rank == 0 {
		return acc, false
	}
	acc = all[0]
	for i := 1; i < c.rank; i++ {
		acc = op(acc, all[i])
	}
	return acc, true
}
