package comm

import (
	"fmt"
)

// ULFM-style recovery primitives: Revoke / Agree / Shrink, the canonical
// recipe for continuing a computation on the survivors of a permanent rank
// failure.  A survivor that catches ErrRankDead (or ErrCommRevoked) through
// Try first revokes the communicator so every other survivor unwinds too,
// then agrees on the survivor bitmap, then shrinks to a densely re-ranked
// survivor communicator and redoes the lost work there.

// ulfmTagBase is the tag band of the recovery protocol, above the entire
// ReserveProtocolTag budget so agreement messages can never collide with
// application or protocol traffic — essential, because Agree runs on a
// communicator whose ordinary tag space is polluted by aborted operations.
const ulfmTagBase = protocolTagBase + protocolTagSpace

// Revoked reports whether this communicator has been revoked.
func (c *Comm) Revoked() bool { return c.w.commRevoked(c.id) }

// CheckRevoked raises ErrCommRevoked (through the typed-panic channel Try
// catches) if the communicator has been revoked.  One-sided layers call it
// at operation entry, since a put has no blocked receive to detect the
// revocation for them.  Free in fault-free worlds.
func (c *Comm) CheckRevoked() {
	if c.w.inj == nil {
		return
	}
	if c.w.commRevoked(c.id) {
		panic(&FailureError{err: ErrCommRevoked, Rank: -1, Comm: c.id,
			Detail: "one-sided operation on a revoked communicator"})
	}
}

// Revoke poisons the communicator (ULFM MPI_Comm_revoke): every subsequent
// one-sided operation on it raises ErrCommRevoked at entry (CheckRevoked),
// and Revoked() reports it.  Two-sided receives are deliberately NOT
// interrupted — the boundary-synchronous failure detector already unwinds
// every survivor at the same superstep boundary, and in-flight two-sided
// traffic drains deterministically because sends are eager and every rank
// finishes its boundary sends before unwinding (see failCheck).  Idempotent;
// every survivor calls it on entering recovery, and each call prices one
// injection overhead on the caller's clock regardless of who revoked first
// (so virtual time stays deterministic).
func (c *Comm) Revoke() {
	w := c.w
	w.fmu.Lock()
	already := w.revoked[c.id]
	w.revoked[c.id] = true
	w.fmu.Unlock()
	if !already {
		for _, b := range w.boxList() {
			b.wake()
		}
	}
	if m := w.model; m != nil {
		c.clock.Advance(m.SendOverhead)
	}
}

// Agree is the fault-tolerant agreement (ULFM MPI_Comm_agree specialised to
// the survivor bitmap): survivors OR their local views of the failed ranks
// in ceil(log2 S) dissemination rounds, tolerating the dead ranks by
// excluding them from the exchange graph.  It works on a revoked
// communicator.  suspect is the caller's local failure view by communicator
// rank (nil means registry-only); the boundary-synchronous detector derives
// it from the death schedule, so every survivor passes an identical view —
// the registry alone can lag behind a victim whose registration has not
// landed yet, and a lagging view would wedge the exchange graph.  The
// registered deaths are ORed in as well (they are always a subset of any
// schedule-derived view).  It returns alive[commRank] and the number of
// message rounds executed; every survivor returns the same bitmap.
func (c *Comm) Agree(suspect []bool) (alive []bool, rounds int) {
	dead := make([]bool, len(c.group))
	c.w.fmu.Lock()
	for i, wr := range c.group {
		dead[i] = c.w.dead[wr]
	}
	c.w.fmu.Unlock()
	for i, s := range suspect {
		dead[i] = dead[i] || s
	}

	// Dense survivor indices from the local view; identical on every
	// survivor (see above), so the dissemination partners line up.
	var surv []int
	me := -1
	for r, d := range dead {
		if !d {
			if r == c.rank {
				me = len(surv)
			}
			surv = append(surv, r)
		}
	}
	if me < 0 {
		panic(&FailureError{err: ErrRankDead, Rank: c.WorldRank(), Comm: c.id,
			Detail: "Agree called by a rank registered dead"})
	}
	n := len(surv)
	for k := 1; k < n; k <<= 1 {
		to := surv[(me+n-k)%n] // dissemination: receive from me+k, send to me-k
		from := surv[(me+k)%n]
		tag := ulfmTagBase + rounds
		cp := append([]bool(nil), dead...)
		c.send(to, tag, cp, n, 1)
		got := c.recv(from, tag).payload.([]bool)
		for i, d := range got {
			dead[i] = dead[i] || d
		}
		rounds++
	}
	alive = make([]bool, len(dead))
	for i, d := range dead {
		alive[i] = !d
	}
	return alive, rounds
}

// Shrink builds the survivor communicator (ULFM MPI_Comm_shrink): the alive
// ranks of the agreed bitmap, densely re-ranked in their original order so
// the global sort order is preserved.  The new communicator has a fresh,
// deterministically derived identity — stale envelopes of the aborted epoch
// can never match it — and starts with clean transport state.  A barrier on
// the new communicator synchronizes the survivors' clocks, pricing the
// shrink against the cost model.
func (c *Comm) Shrink(alive []bool) *Comm {
	if len(alive) != len(c.group) {
		panic(fmt.Sprintf("comm: Shrink bitmap has %d entries for a communicator of size %d", len(alive), len(c.group)))
	}
	var group []int
	newRank := -1
	bits := uint64(0)
	for r, a := range alive {
		if !a {
			continue
		}
		if r == c.rank {
			newRank = len(group)
		}
		group = append(group, c.group[r])
		if r < 64 {
			bits |= 1 << uint(r)
		}
	}
	if newRank < 0 {
		panic(&FailureError{err: ErrRankDead, Rank: c.WorldRank(), Comm: c.id,
			Detail: "Shrink called by a rank outside the survivor bitmap"})
	}
	nc := &Comm{
		w:     c.w,
		id:    splitID(c.id, bits^uint64(len(c.group))<<56, len(group)),
		rank:  newRank,
		group: group,
		clock: c.clock,
		stats: c.stats,
		obs:   c.obs,
	}
	Barrier(nc)
	return nc
}
