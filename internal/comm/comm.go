package comm

import (
	"fmt"
	"sort"
	"time"

	"dhsort/internal/simnet"
)

// Comm is one rank's handle on a communicator: a group of ranks that
// exchange messages in an isolated tag space.  Every rank holds its own
// *Comm value; the values of one communicator share an id and a group
// mapping but nothing mutable, so a Comm is confined to its rank goroutine.
type Comm struct {
	w     *World
	id    uint64
	rank  int   // this rank within the communicator
	group []int // communicator rank -> world rank
	clock *simnet.Clock
	stats *Stats

	seq       uint64 // per-rank collective sequence number (tag isolation)
	splits    uint64 // number of Split calls issued on this comm
	protoTags uint64 // protocol tags handed out by ReserveProtocolTag
}

// newWorldComm builds rank's handle on the world communicator (id 1).
func newWorldComm(w *World, rank int) *Comm {
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{
		w:     w,
		id:    1,
		rank:  rank,
		group: group,
		clock: simnet.NewClock(w.model),
		stats: &Stats{},
	}
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this rank's index in the world communicator.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// Clock returns the rank's clock (virtual under a cost model).
func (c *Comm) Clock() *simnet.Clock { return c.clock }

// Model returns the world's cost model (nil in real-time mode).
func (c *Comm) Model() *simnet.CostModel { return c.w.model }

// Stats returns the rank's communication statistics accumulator (shared
// across all communicators derived from the world for this rank).
func (c *Comm) Stats() *Stats { return c.stats }

// send delivers payload to dst (communicator rank) under tag.  bytes is the
// payload's wire size; byteScale inflates it for bulk-data messages priced
// at a larger virtual volume (see Config.VirtualScale in the core package).
func (c *Comm) send(dst, tag int, payload any, bytes int, byteScale float64) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: send to rank %d outside communicator of size %d", dst, len(c.group)))
	}
	if byteScale <= 0 {
		byteScale = 1
	}
	vbytes := int(float64(bytes) * byteScale)
	wsrc, wdst := c.group[c.rank], c.group[dst]
	e := envelope{comm: c.id, src: c.rank, tag: tag, payload: payload}
	if m := c.w.model; m != nil {
		// LogGP-style: the sender is busy for o + bytes·G (injection,
		// serializing successive sends), the message then needs α more
		// to become available at the receiver.
		c.clock.Advance(m.SendOverhead + m.InjectCost(wsrc, wdst, vbytes))
		e.arrival = c.clock.Now() + m.Latency(wsrc, wdst)
		c.stats.record(m.Topo.Link(wsrc, wdst), vbytes)
	} else {
		c.stats.record(simnet.SelfLink, vbytes)
	}
	c.w.boxes[wdst].put(e)
}

// recv blocks for a message from src (or AnySource) under tag and
// synchronizes the clock with its arrival.
func (c *Comm) recv(src, tag int) envelope {
	if src != AnySource && (src < 0 || src >= len(c.group)) {
		panic(fmt.Sprintf("comm: recv from rank %d outside communicator of size %d", src, len(c.group)))
	}
	e := c.w.boxes[c.group[c.rank]].get(c.id, src, tag)
	c.clock.Arrive(e.arrival)
	return e
}

// protocolTagBase is the first tag handed out by ReserveProtocolTag.  It
// sits well above the fused-exchange rounds [UserTagLimit, UserTagLimit+P),
// so the two reserved protocols can never collide.
const protocolTagBase = UserTagLimit + 1<<20

// ReserveProtocolTag returns a fresh tag from the library-reserved space
// (>= UserTagLimit, see mailbox.go).  Like nextSeq it relies on
// collective discipline: every rank of the communicator must call it the
// same number of times in the same order (e.g. once per rma window
// creation), so all ranks agree on the tag without communication.
func (c *Comm) ReserveProtocolTag() int {
	c.protoTags++
	return protocolTagBase + int(c.protoTags) - 1
}

// PostRaw delivers payload to dst under a protocol tag with an explicit
// virtual arrival time, bypassing the two-sided send pricing (no clock
// advance, no message stats).  One-sided layers (internal/rma) price their
// own traffic against the cost model and use PostRaw for notification
// delivery; the mailbox mutex still provides the happens-before edge that
// makes preceding direct memory writes visible to the receiver.
func (c *Comm) PostRaw(dst, tag int, payload any, arrival time.Duration) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: PostRaw to rank %d outside communicator of size %d", dst, len(c.group)))
	}
	if tag < UserTagLimit {
		panic(fmt.Sprintf("comm: PostRaw tag %d is below the reserved space [%d, ∞)", tag, UserTagLimit))
	}
	e := envelope{comm: c.id, src: c.rank, tag: tag, arrival: arrival, payload: payload}
	c.w.boxes[c.group[dst]].put(e)
}

// RecvRaw blocks for a PostRaw message from src (or AnySource) under a
// protocol tag, synchronizes the clock with its arrival, and returns the
// payload together with the sender's rank.
func (c *Comm) RecvRaw(src, tag int) (any, int) {
	if tag < UserTagLimit {
		panic(fmt.Sprintf("comm: RecvRaw tag %d is below the reserved space [%d, ∞)", tag, UserTagLimit))
	}
	e := c.recv(src, tag)
	return e.payload, e.src
}

// nextSeq reserves a tag block for one collective operation.  All ranks of
// a communicator execute the same sequence of collectives, so their
// per-rank counters stay aligned without coordination.
const tagRoundSpace = 1 << 21 // rounds per collective (supports P up to 2M)

func (c *Comm) nextSeq() int {
	c.seq++
	return -int(c.seq * tagRoundSpace) // negative: user tags are >= 0
}

// Split partitions the communicator by color, ordering ranks of each new
// communicator by (key, old rank), exactly like MPI_Comm_split.  It is a
// collective call; every rank must participate.  Ranks passing different
// colors end up in disjoint communicators with isolated tag spaces.
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key, Rank int }
	all := AllgatherOne(c, ck{color, key, c.rank})
	var members []ck
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.Rank]
		if m.Rank == c.rank {
			newRank = i
		}
	}
	c.splits++
	return &Comm{
		w:     c.w,
		id:    splitID(c.id, c.splits, color),
		rank:  newRank,
		group: group,
		clock: c.clock,
		stats: c.stats,
	}
}

// splitID derives a child communicator identity deterministically, so every
// member rank computes the same id without extra communication.  FNV-1a
// over the (parent, epoch, color) triple.
func splitID(parent, epoch uint64, color int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range [3]uint64{parent, epoch, uint64(int64(color))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	if h == 0 || h == 1 {
		h = 2 // ids 0 and 1 are reserved (unused / world)
	}
	return h
}

// WorldRankOf maps a communicator rank to its world rank (used by layers
// that price direct memory access against the topology).
func (c *Comm) WorldRankOf(rank int) int {
	if rank < 0 || rank >= len(c.group) {
		panic(fmt.Sprintf("comm: rank %d outside communicator of size %d", rank, len(c.group)))
	}
	return c.group[rank]
}
