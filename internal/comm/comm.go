package comm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dhsort/internal/fault"
	"dhsort/internal/simnet"
)

// Comm is one rank's handle on a communicator: a group of ranks that
// exchange messages in an isolated tag space.  Every rank holds its own
// *Comm value; the values of one communicator share an id and a group
// mapping but nothing mutable, so a Comm is confined to its rank goroutine.
type Comm struct {
	w     *World
	id    uint64
	rank  int   // this rank within the communicator
	group []int // communicator rank -> world rank
	clock *simnet.Clock
	stats *Stats

	seq       uint64 // per-rank collective sequence number (tag isolation)
	splits    uint64 // number of Split calls issued on this comm
	grows     uint64 // number of Grow calls issued on this comm
	protoTags uint64 // protocol tags handed out by ReserveProtocolTag

	// Reliable-transport state, active only under fault injection.
	obs      fault.Observer      // fault-event sink (metrics recorder)
	sendSeq  map[sendFlow]uint64 // next sequence number per (dst, tag) flow
	faultTag int                 // lazily reserved fault-control protocol tag
}

// sendFlow identifies one outgoing sequenced flow of a communicator.
type sendFlow struct{ dst, tag int }

// newWorldComm builds rank's handle on the world communicator (id 1) over
// the first size world ranks.  size is passed explicitly (rather than read
// from the world) so all members of one cohort agree on the communicator
// extent even while the world is growing underneath them.
func newWorldComm(w *World, rank, size int) *Comm {
	group := make([]int, size)
	for i := range group {
		group[i] = i
	}
	return &Comm{
		w:     w,
		id:    1,
		rank:  rank,
		group: group,
		clock: simnet.NewClock(w.model),
		stats: &Stats{},
	}
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this rank's index in the world communicator.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// Clock returns the rank's clock (virtual under a cost model).
func (c *Comm) Clock() *simnet.Clock { return c.clock }

// Model returns the world's cost model (nil in real-time mode).
func (c *Comm) Model() *simnet.CostModel { return c.w.model }

// Stats returns the rank's communication statistics accumulator (shared
// across all communicators derived from the world for this rank).
func (c *Comm) Stats() *Stats { return c.stats }

// send delivers payload to dst (communicator rank) under tag.  bytes is the
// payload's wire size; byteScale inflates it for bulk-data messages priced
// at a larger virtual volume (see Config.VirtualScale in the core package).
func (c *Comm) send(dst, tag int, payload any, bytes int, byteScale float64) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: send to rank %d outside communicator of size %d", dst, len(c.group)))
	}
	if byteScale <= 0 {
		byteScale = 1
	}
	vbytes := int(float64(bytes) * byteScale)
	wsrc, wdst := c.group[c.rank], c.group[dst]
	if inj := c.w.inj; inj.MessageFaults() && wsrc != wdst {
		// Self-delivery is a local memory move — real transports do not
		// lose it, so the injector only adjudicates remote flows.
		c.sendFaulty(inj, dst, tag, payload, vbytes, wsrc, wdst)
		return
	}
	e := envelope{comm: c.id, src: c.rank, tag: tag, payload: payload}
	if m := c.w.model; m != nil {
		// LogGP-style: the sender is busy for o + bytes·G (injection,
		// serializing successive sends), the message then needs α more
		// to become available at the receiver.
		c.clock.Advance(m.SendOverhead + m.InjectCost(wsrc, wdst, vbytes))
		e.arrival = c.clock.Now() + m.Latency(wsrc, wdst)
		c.stats.record(m.Topo.Link(wsrc, wdst), vbytes)
	} else {
		c.stats.record(simnet.SelfLink, vbytes)
	}
	c.w.box(wdst).put(e)
}

// Retransmission policy of the reliable transport: attempts are capped so a
// pathological schedule aborts with a diagnostic instead of looping, and the
// exponential backoff stops doubling once the timeout is astronomically
// larger than any sane RTT.
const (
	maxSendAttempts = 32
	maxBackoffShift = 10
)

// sendFaulty is send's sequenced, retransmitting path, taken when the fault
// plane injects message faults.  Each transmission attempt is adjudicated by
// the injector; a dropped attempt costs the sender its injection time plus
// an exponentially backed-off retransmission timeout on the virtual clock.
// The delivered envelope carries a per-(dst, tag) sequence number, so the
// receiving mailbox restores order and discards injected duplicates.
func (c *Comm) sendFaulty(inj *fault.Injector, dst, tag int, payload any, vbytes, wsrc, wdst int) {
	seq := c.nextSendSeq(dst, tag)
	m := c.w.model
	lc := simnet.SelfLink
	if m != nil {
		lc = m.Topo.Link(wsrc, wdst)
	}
	for attempt := 0; ; attempt++ {
		v := inj.Verdict(c.id, wsrc, wdst, tag, seq, attempt)
		if v.Drop {
			if attempt+1 >= maxSendAttempts {
				// The link is dead for all practical purposes.  Typed, not a
				// panic string: the recovery layer treats it exactly like a
				// receive-side death detection and shrinks past the peer.
				panic(&FailureError{err: ErrRankDead, Rank: wdst, Comm: c.id,
					Detail: fmt.Sprintf("message (tag=%d, seq=%d) lost %d consecutive times: link presumed dead", tag, seq, maxSendAttempts)})
			}
			c.stats.Fault.Drops++
			c.stats.Fault.Retries++
			var wait time.Duration
			if m != nil {
				// The lost attempt's injection was still paid, then the
				// sender waits out the backed-off timeout before retrying.
				shift := attempt
				if shift > maxBackoffShift {
					shift = maxBackoffShift
				}
				wait = m.SendOverhead + m.InjectCost(wsrc, wdst, vbytes) + m.RetryTimeout(lc)<<shift
				c.clock.Advance(wait)
				c.stats.Fault.RetryNS += int64(wait)
			}
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("drop tag=%d seq=%d attempt=%d -> w%d", tag, seq, attempt, wdst)})
			c.observe(fault.Event{Kind: fault.EventRetry, Detail: fmt.Sprintf("timeout+retransmit tag=%d seq=%d attempt=%d", tag, seq, attempt+1), Dur: wait})
			continue
		}
		e := envelope{comm: c.id, src: c.rank, tag: tag, payload: payload, seq: seq, front: v.Reorder}
		if m != nil {
			c.clock.Advance(m.SendOverhead + m.InjectCost(wsrc, wdst, vbytes))
			e.arrival = c.clock.Now() + m.Latency(wsrc, wdst) + v.Delay
			c.stats.record(lc, vbytes)
		} else {
			c.stats.record(simnet.SelfLink, vbytes)
		}
		if v.Delay > 0 {
			c.stats.Fault.Delays++
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("delay tag=%d seq=%d -> w%d", tag, seq, wdst), Dur: v.Delay})
		}
		if v.Reorder {
			c.stats.Fault.Reorders++
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("reorder tag=%d seq=%d -> w%d", tag, seq, wdst)})
		}
		if v.Dup {
			// A retransmission racing its own ack: the sender pays a second
			// injection and the copy travels with the same sequence number,
			// so the receiver's dedup discards it.  Original and copy are
			// enqueued atomically (putPair), which keeps the receiver-side
			// dedup counter deterministic.
			c.stats.Fault.Dups++
			d := e
			if m != nil {
				c.clock.Advance(m.SendOverhead + m.InjectCost(wsrc, wdst, vbytes))
				d.arrival = c.clock.Now() + m.Latency(wsrc, wdst)
				c.stats.record(lc, vbytes)
			} else {
				c.stats.record(simnet.SelfLink, vbytes)
			}
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("dup tag=%d seq=%d -> w%d", tag, seq, wdst)})
			c.w.box(wdst).putPair(e, d)
		} else {
			c.w.box(wdst).put(e)
		}
		if attempt > 0 {
			c.observe(fault.Event{Kind: fault.EventRecover, Detail: fmt.Sprintf("delivered tag=%d seq=%d after %d retries", tag, seq, attempt)})
		}
		return
	}
}

// nextSendSeq reserves the next sequence number of the (dst, tag) flow.
func (c *Comm) nextSendSeq(dst, tag int) uint64 {
	if c.sendSeq == nil {
		c.sendSeq = make(map[sendFlow]uint64)
	}
	f := sendFlow{dst, tag}
	c.sendSeq[f]++
	return c.sendSeq[f]
}

// observe reports a fault event to the registered observer, if any.
func (c *Comm) observe(e fault.Event) {
	if c.obs != nil {
		c.obs(e)
	}
}

// SetFaultObserver registers the sink for this rank's fault events (nil
// disables).  Rank-goroutine-confined like the Comm itself; communicators
// split off afterwards inherit the observer.
func (c *Comm) SetFaultObserver(o fault.Observer) { c.obs = o }

// FaultInjector returns the world's fault injector (nil in fault-free
// worlds — the common case, which callers gate on).
func (c *Comm) FaultInjector() *fault.Injector { return c.w.inj }

// FaultControlTag returns the communicator's fault-plane control tag (the
// checkpoint descriptor ring), reserving it through ReserveProtocolTag on
// first use.  Collective discipline applies: every rank must first touch it
// at the same point relative to its other protocol-tag reservations.
func (c *Comm) FaultControlTag() int {
	if c.faultTag == 0 {
		t, err := c.ReserveProtocolTag()
		if err != nil {
			panic(err)
		}
		c.faultTag = t
	}
	return c.faultTag
}

// recv blocks for a message from src (or AnySource) under tag and
// synchronizes the clock with its arrival.  Under fault injection the
// blocked receive raises ErrRankDead (through the typed-panic channel Try
// catches) if the awaited sender is registered dead — see failCheck for why
// revocation does not interrupt it.
func (c *Comm) recv(src, tag int) envelope {
	if src != AnySource && (src < 0 || src >= len(c.group)) {
		panic(fmt.Sprintf("comm: recv from rank %d outside communicator of size %d", src, len(c.group)))
	}
	e, dups := c.w.box(c.group[c.rank]).get(c.id, src, tag, c.failCheck(src, tag))
	if dups > 0 {
		c.stats.Fault.Dedup += int64(dups)
		c.observe(fault.Event{Kind: fault.EventDetect, Detail: fmt.Sprintf("discarded %d duplicate(s) tag=%d src=%d", dups, tag, src)})
	}
	c.clock.Arrive(e.arrival)
	return e
}

// protocolTagBase is the first tag handed out by ReserveProtocolTag.  It
// sits well above the fused-exchange rounds [UserTagLimit, UserTagLimit+P),
// so the two reserved protocols can never collide.
const protocolTagBase = UserTagLimit + 1<<20

// protocolTagSpace bounds how many protocol tags one communicator can
// reserve, keeping the reservations clear of any tag range a future
// protocol might claim above them.  Far beyond any sane window count; the
// bound exists so exhaustion is an error, not a silent collision.
const protocolTagSpace = 1 << 20

// ErrProtocolTagsExhausted is returned by ReserveProtocolTag once a
// communicator has reserved its entire protocol tag budget.
var ErrProtocolTagsExhausted = errors.New("comm: protocol tag space exhausted")

// ReserveProtocolTag returns a fresh tag from the library-reserved space
// (>= UserTagLimit, see mailbox.go).  Like nextSeq it relies on
// collective discipline: every rank of the communicator must call it the
// same number of times in the same order (e.g. once per rma window
// creation), so all ranks agree on the tag without communication.  It
// errors with ErrProtocolTagsExhausted after protocolTagSpace reservations.
func (c *Comm) ReserveProtocolTag() (int, error) {
	if c.protoTags >= protocolTagSpace {
		return 0, fmt.Errorf("%w (communicator %d reserved all %d)", ErrProtocolTagsExhausted, c.id, uint64(protocolTagSpace))
	}
	c.protoTags++
	return protocolTagBase + int(c.protoTags) - 1, nil
}

// PostRaw delivers payload to dst under a protocol tag with an explicit
// virtual arrival time, bypassing the two-sided send pricing (no clock
// advance, no message stats).  One-sided layers (internal/rma) price their
// own traffic against the cost model and use PostRaw for notification
// delivery; the mailbox mutex still provides the happens-before edge that
// makes preceding direct memory writes visible to the receiver.
func (c *Comm) PostRaw(dst, tag int, payload any, arrival time.Duration) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: PostRaw to rank %d outside communicator of size %d", dst, len(c.group)))
	}
	if tag < UserTagLimit {
		panic(fmt.Sprintf("comm: PostRaw tag %d is below the reserved space [%d, ∞)", tag, UserTagLimit))
	}
	e := envelope{comm: c.id, src: c.rank, tag: tag, arrival: arrival, payload: payload}
	c.w.box(c.group[dst]).put(e)
}

// PostReliable is PostRaw through the reliable transport: under message
// fault injection the delivery is sequenced and adjudicated like a
// two-sided send — dropped attempts cost the origin the backed-off
// retransmission timeout (pushing the completion time out by the same
// amount), duplicates are enqueued for the receiver's dedup, reorders jump
// the queue — so one-sided notification protocols survive drop injection.
// The caller still owns the base pricing: arrival is the explicit
// completion time.  Without message faults it is exactly PostRaw.
func (c *Comm) PostReliable(dst, tag int, payload any, arrival time.Duration) {
	inj := c.w.inj
	wsrc, wdst := c.group[c.rank], c.group[dst]
	if !inj.MessageFaults() || wsrc == wdst {
		c.PostRaw(dst, tag, payload, arrival)
		return
	}
	if tag < UserTagLimit {
		panic(fmt.Sprintf("comm: PostReliable tag %d is below the reserved space [%d, ∞)", tag, UserTagLimit))
	}
	m := c.w.model
	lc := simnet.SelfLink
	if m != nil {
		lc = m.Topo.Link(wsrc, wdst)
	}
	seq := c.nextSendSeq(dst, tag)
	for attempt := 0; ; attempt++ {
		v := inj.Verdict(c.id, wsrc, wdst, tag, seq, attempt)
		if v.Drop {
			if attempt+1 >= maxSendAttempts {
				panic(&FailureError{err: ErrRankDead, Rank: wdst, Comm: c.id,
					Detail: fmt.Sprintf("one-sided notification (tag=%d, seq=%d) lost %d consecutive times: link presumed dead", tag, seq, maxSendAttempts)})
			}
			c.stats.Fault.Drops++
			c.stats.Fault.Retries++
			var wait time.Duration
			if m != nil {
				shift := attempt
				if shift > maxBackoffShift {
					shift = maxBackoffShift
				}
				wait = m.RetryTimeout(lc) << shift
				c.clock.Advance(wait)
				arrival += wait
				c.stats.Fault.RetryNS += int64(wait)
			}
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("drop notify tag=%d seq=%d attempt=%d -> w%d", tag, seq, attempt, wdst)})
			c.observe(fault.Event{Kind: fault.EventRetry, Detail: fmt.Sprintf("timeout+repost tag=%d seq=%d attempt=%d", tag, seq, attempt+1), Dur: wait})
			continue
		}
		e := envelope{comm: c.id, src: c.rank, tag: tag, arrival: arrival + v.Delay, payload: payload, seq: seq, front: v.Reorder}
		if v.Delay > 0 {
			c.stats.Fault.Delays++
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("delay notify tag=%d seq=%d -> w%d", tag, seq, wdst), Dur: v.Delay})
		}
		if v.Reorder {
			c.stats.Fault.Reorders++
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("reorder notify tag=%d seq=%d -> w%d", tag, seq, wdst)})
		}
		if v.Dup {
			c.stats.Fault.Dups++
			c.observe(fault.Event{Kind: fault.EventInject, Detail: fmt.Sprintf("dup notify tag=%d seq=%d -> w%d", tag, seq, wdst)})
			c.w.box(wdst).putPair(e, e)
		} else {
			c.w.box(wdst).put(e)
		}
		if attempt > 0 {
			c.observe(fault.Event{Kind: fault.EventRecover, Detail: fmt.Sprintf("notify delivered tag=%d seq=%d after %d retries", tag, seq, attempt)})
		}
		return
	}
}

// RecvRaw blocks for a PostRaw message from src (or AnySource) under a
// protocol tag, synchronizes the clock with its arrival, and returns the
// payload together with the sender's rank.
func (c *Comm) RecvRaw(src, tag int) (any, int) {
	if tag < UserTagLimit {
		panic(fmt.Sprintf("comm: RecvRaw tag %d is below the reserved space [%d, ∞)", tag, UserTagLimit))
	}
	e := c.recv(src, tag)
	return e.payload, e.src
}

// nextSeq reserves a tag block for one collective operation.  All ranks of
// a communicator execute the same sequence of collectives, so their
// per-rank counters stay aligned without coordination.
const tagRoundSpace = 1 << 21 // rounds per collective (supports P up to 2M)

func (c *Comm) nextSeq() int {
	c.seq++
	return -int(c.seq * tagRoundSpace) // negative: user tags are >= 0
}

// Split partitions the communicator by color, ordering ranks of each new
// communicator by (key, old rank), exactly like MPI_Comm_split.  It is a
// collective call; every rank must participate.  Ranks passing different
// colors end up in disjoint communicators with isolated tag spaces.
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key, Rank int }
	all := AllgatherOne(c, ck{color, key, c.rank})
	var members []ck
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.Rank]
		if m.Rank == c.rank {
			newRank = i
		}
	}
	c.splits++
	return &Comm{
		w:     c.w,
		id:    splitID(c.id, c.splits, color),
		rank:  newRank,
		group: group,
		clock: c.clock,
		stats: c.stats,
		obs:   c.obs,
	}
}

// splitID derives a child communicator identity deterministically, so every
// member rank computes the same id without extra communication.  FNV-1a
// over the (parent, epoch, color) triple.
func splitID(parent, epoch uint64, color int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range [3]uint64{parent, epoch, uint64(int64(color))} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	if h == 0 || h == 1 {
		h = 2 // ids 0 and 1 are reserved (unused / world)
	}
	return h
}

// WorldRankOf maps a communicator rank to its world rank (used by layers
// that price direct memory access against the topology).
func (c *Comm) WorldRankOf(rank int) int {
	if rank < 0 || rank >= len(c.group) {
		panic(fmt.Sprintf("comm: rank %d outside communicator of size %d", rank, len(c.group)))
	}
	return c.group[rank]
}
