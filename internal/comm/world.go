// Package comm is the message-passing substrate the distributed sorting
// algorithms run on — the MPI-3 substitute of this reproduction.
//
// A World hosts P ranks, each executing the same function in its own
// goroutine.  Ranks exchange tag-matched point-to-point messages through
// per-rank mailboxes, and the package builds the collective operations the
// paper uses (BCAST, REDUCE, ALLREDUCE, ALLGATHER, GATHER, SCATTER,
// ALLTOALL, ALLTOALLV, EXSCAN, BARRIER) from the same algorithms production
// MPI libraries use: binomial trees, recursive doubling, and pairwise /
// 1-factor exchanges.  Communicators can be split (MPI_Comm_split), which is
// how the HykSort baseline pays the split cost the paper criticizes.
//
// When the World carries a simnet.CostModel, every rank owns a virtual
// clock: message arrivals and modelled compute advance it, making
// 3584-rank scaling experiments reproducible on a single machine.  With a
// nil model the clocks read wall time and the runtime behaves like a plain
// concurrent execution.
package comm

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dhsort/internal/fault"
	"dhsort/internal/simnet"
)

// World hosts a set of ranks and their mailboxes.  The set can grow at
// runtime: Spawn brings fresh rank goroutines into a running world (see
// grow.go for the join protocol that folds them into a communicator).
type World struct {
	model    *simnet.CostModel
	inj      *fault.Injector // nil in fault-free worlds
	watchdog time.Duration   // receive watchdog inherited by spawned ranks

	// boxes is the per-world-rank mailbox list.  Senders index it lock-free
	// on the hot path, and grow publishes an extended copy atomically, so
	// the pointer is the only synchronization a send needs.  Mutations
	// happen under BOTH mu and fmu (mu orders grow against abort, fmu
	// orders it against the failure registry's wake broadcasts).
	boxes atomic.Pointer[[]*mailbox]

	mu      sync.Mutex
	size    int             // current number of world ranks
	aborted bool            // a failed rank poisoned the mailboxes
	finals  []time.Duration // per-rank clock at fn return
	stats   []Stats         // per-rank aggregated communication stats

	// Failure registry of the ULFM layer: permanently dead world ranks and
	// revoked communicator ids.  fmu is never held while a mailbox mutex is
	// (flags are set first, mailboxes woken after), so blocked receivers can
	// consult the registry from inside their mailbox wait loop.  Lock order:
	// mu before fmu when both are needed (grow).
	fmu     sync.Mutex
	dead    []bool
	revoked map[uint64]bool
}

// box returns world rank i's mailbox.
func (w *World) box(i int) *mailbox { return (*w.boxes.Load())[i] }

// boxList returns the current mailbox list (an immutable snapshot; grow
// publishes a fresh slice rather than mutating one in place).
func (w *World) boxList() []*mailbox { return *w.boxes.Load() }

// NewWorld creates a world of the given size.  model may be nil for
// real-time execution; a non-nil model prices all communication and enables
// virtual clocks.
func NewWorld(size int, model *simnet.CostModel) (*World, error) {
	return NewWorldWithFaults(size, model, fault.Plan{})
}

// NewWorldWithFaults is NewWorld under a seeded fault schedule: the plan's
// message faults are injected into every remote send, its crashes and
// stalls are consulted by the supersteps' checkpoint boundaries, and its
// watchdog bounds how long any receive may block on the wall clock.  The
// zero plan is exactly NewWorld.
func NewWorldWithFaults(size int, model *simnet.CostModel, plan fault.Plan) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", size)
	}
	if model != nil {
		if err := model.Topo.Validate(); err != nil {
			return nil, err
		}
	}
	inj, err := fault.New(plan)
	if err != nil {
		return nil, err
	}
	w := &World{
		size:     size,
		model:    model,
		inj:      inj,
		watchdog: plan.Watchdog,
		finals:   make([]time.Duration, size),
		stats:    make([]Stats, size),
		dead:     make([]bool, size),
		revoked:  make(map[uint64]bool),
	}
	boxes := make([]*mailbox, size)
	for i := range boxes {
		boxes[i] = newMailbox()
		boxes[i].watchdog = plan.Watchdog
	}
	w.boxes.Store(&boxes)
	return w, nil
}

// FaultInjector returns the world's fault injector (nil when fault-free).
func (w *World) FaultInjector() *fault.Injector { return w.inj }

// Size returns the current number of ranks (growable worlds may report a
// larger value after Spawn).
func (w *World) Size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Model returns the world's cost model (nil in real-time mode).
func (w *World) Model() *simnet.CostModel { return w.model }

// errAborted is the panic value used to unblock ranks after a failure.
var errAborted = errors.New("comm: world aborted")

// Run executes fn once per rank, each in its own goroutine, and waits for
// all of them.  If any rank returns an error or panics, the world is
// aborted: blocked receives on other ranks unblock and those ranks
// terminate.  The returned error joins all per-rank failures.
//
// A World is single-shot: create a fresh one per Run.
func (w *World) Run(fn func(c *Comm) error) error {
	var wg sync.WaitGroup
	size := w.Size()
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var c *Comm
			defer func() {
				if p := recover(); p != nil {
					if p == errAborted {
						// Collateral of another rank's failure.
						return
					}
					if s, ok := p.(suicideExit); ok {
						// Scheduled permanent death: a clean (voluntary)
						// exit, not a failure — the survivors carry on, and
						// the victim's stats up to its death still count.
						w.mu.Lock()
						w.finals[rank] = s.c.clock.Now()
						w.stats[rank] = *s.c.stats
						w.mu.Unlock()
						return
					}
					if fe, ok := p.(*FailureError); ok {
						// A failure nobody recovered (Config.Recovery unset
						// or "respawn" facing a permanent death): surface it
						// as a typed error, not a panic dump.
						errs[rank] = fmt.Errorf("comm: rank %d: %w", rank, fe)
						w.abort()
						return
					}
					errs[rank] = fmt.Errorf("comm: rank %d panicked: %v\n%s", rank, p, debug.Stack())
					w.abort()
				}
			}()
			c = newWorldComm(w, rank, size)
			if err := fn(c); err != nil {
				errs[rank] = fmt.Errorf("comm: rank %d: %w", rank, err)
				w.abort()
			}
			// Snapshot the rank's clock and stats under the world mutex:
			// ranks finish concurrently, and accessors (Makespan,
			// TotalStats, RankStats) may poll while other ranks are still
			// running.  The copy is taken on the owning goroutine, so the
			// live accumulator itself is never read cross-goroutine.
			w.mu.Lock()
			w.finals[rank] = c.clock.Now()
			w.stats[rank] = *c.stats
			w.mu.Unlock()
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// abort poisons every mailbox so blocked ranks unwind.  The aborted flag is
// set under mu before the snapshot, and grow swaps the mailbox list under
// the same mutex, so a concurrent grow either lands its boxes in this
// snapshot or observes the flag and poisons them itself — never neither.
func (w *World) abort() {
	w.mu.Lock()
	w.aborted = true
	boxes := w.boxList()
	w.mu.Unlock()
	for _, b := range boxes {
		b.abort()
	}
}

// grow extends the world by k fresh ranks — mailboxes registered for
// senders, failure registry widened, per-rank accounting extended — and
// returns their world ranks.  The new ranks have no goroutines yet; Spawn
// (or PersistentWorld.Grow) starts them.
func (w *World) grow(k int) []int {
	if k <= 0 {
		panic(fmt.Sprintf("comm: grow by %d ranks", k))
	}
	fresh := make([]*mailbox, k)
	for i := range fresh {
		fresh[i] = newMailbox()
		fresh[i].watchdog = w.watchdog
	}
	w.mu.Lock()
	w.fmu.Lock()
	old := w.size
	ranks := make([]int, k)
	for i := range ranks {
		ranks[i] = old + i
	}
	w.size += k
	w.finals = append(w.finals, make([]time.Duration, k)...)
	w.stats = append(w.stats, make([]Stats, k)...)
	w.dead = append(w.dead, make([]bool, k)...)
	list := make([]*mailbox, 0, old+k)
	list = append(list, w.boxList()...)
	list = append(list, fresh...)
	w.boxes.Store(&list)
	aborted := w.aborted
	w.fmu.Unlock()
	w.mu.Unlock()
	if aborted {
		// The world died while we were growing: poison the new boxes so the
		// joiners unwind like everyone else instead of blocking forever.
		for _, b := range fresh {
			b.abort()
		}
	}
	return ranks
}

// Spawned tracks the rank goroutines brought into a world by Spawn.
type Spawned struct {
	ranks []int
	wg    sync.WaitGroup
	mu    sync.Mutex
	errs  []error
}

// Ranks returns the world ranks assigned to the spawned goroutines, in
// spawn order (ascending).
func (s *Spawned) Ranks() []int { return append([]int(nil), s.ranks...) }

// Wait blocks until every spawned rank's fn has returned and joins their
// errors.  A joiner that unwound with a typed FailureError (its join was cut
// short by a death) reports it here rather than aborting the world — the
// surviving members own the recovery decision.
func (s *Spawned) Wait() error {
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Join(s.errs...)
}

// Spawn brings k new rank goroutines into the running world: fresh link
// registration (mailboxes visible to every sender), seeded fault
// adjudication (the joiners share the world's injector and failure
// registry), and world ranks appended after the existing ones.  Each
// goroutine runs fn on a world-spanning communicator handle; a joiner
// typically calls AwaitGrow first to fold itself into the communicator the
// existing ranks derive with Grow.
//
// Unlike Run's ranks, a joiner whose fn returns an error or unwinds with a
// typed failure does NOT abort the world: a failed join must leave the
// incumbents free to recover via Revoke/Agree/Shrink.  Only an untyped
// panic (a bug, not a protocol outcome) aborts.
func (w *World) Spawn(k int, fn func(c *Comm) error) (*Spawned, error) {
	if k <= 0 {
		return nil, fmt.Errorf("comm: Spawn count must be positive, got %d", k)
	}
	ranks := w.grow(k)
	size := ranks[k-1] + 1
	s := &Spawned{ranks: ranks, errs: make([]error, k)}
	for i, rank := range ranks {
		s.wg.Add(1)
		go func(i, rank int) {
			defer s.wg.Done()
			var c *Comm
			defer func() {
				if p := recover(); p != nil {
					if p == errAborted {
						return
					}
					if se, ok := p.(suicideExit); ok {
						w.mu.Lock()
						w.finals[rank] = se.c.clock.Now()
						w.stats[rank] = *se.c.stats
						w.mu.Unlock()
						return
					}
					if fe, ok := p.(*FailureError); ok {
						s.mu.Lock()
						s.errs[i] = fmt.Errorf("comm: joiner rank %d: %w", rank, fe)
						s.mu.Unlock()
						return
					}
					s.mu.Lock()
					s.errs[i] = fmt.Errorf("comm: joiner rank %d panicked: %v\n%s", rank, p, debug.Stack())
					s.mu.Unlock()
					w.abort()
					return
				}
			}()
			c = newWorldComm(w, rank, size)
			if err := fn(c); err != nil {
				s.mu.Lock()
				s.errs[i] = fmt.Errorf("comm: joiner rank %d: %w", rank, err)
				s.mu.Unlock()
				return
			}
			w.mu.Lock()
			w.finals[rank] = c.clock.Now()
			w.stats[rank] = *c.stats
			w.mu.Unlock()
		}(i, rank)
	}
	return s, nil
}

// Makespan returns the maximum per-rank completion time of the last Run —
// the virtual parallel execution time under the cost model (or each rank's
// wall-clock time with a nil model).
func (w *World) Makespan() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	var max time.Duration
	for _, t := range w.finals {
		if t > max {
			max = t
		}
	}
	return max
}

// RankTimes returns a copy of the per-rank completion times of the last Run.
func (w *World) RankTimes() []time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]time.Duration, len(w.finals))
	copy(out, w.finals)
	return out
}

// TotalStats sums the per-rank communication statistics of the last Run.
// Safe to call concurrently with Run; ranks still executing contribute
// their stats once they finish.
func (w *World) TotalStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total Stats
	for i := range w.stats {
		total.Add(&w.stats[i])
	}
	return total
}

// RankStats returns a copy of the per-rank communication statistics of the
// last Run.  Safe to call concurrently with Run (same contract as
// TotalStats).
func (w *World) RankStats() []Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Stats, len(w.stats))
	copy(out, w.stats)
	return out
}
