// Package comm is the message-passing substrate the distributed sorting
// algorithms run on — the MPI-3 substitute of this reproduction.
//
// A World hosts P ranks, each executing the same function in its own
// goroutine.  Ranks exchange tag-matched point-to-point messages through
// per-rank mailboxes, and the package builds the collective operations the
// paper uses (BCAST, REDUCE, ALLREDUCE, ALLGATHER, GATHER, SCATTER,
// ALLTOALL, ALLTOALLV, EXSCAN, BARRIER) from the same algorithms production
// MPI libraries use: binomial trees, recursive doubling, and pairwise /
// 1-factor exchanges.  Communicators can be split (MPI_Comm_split), which is
// how the HykSort baseline pays the split cost the paper criticizes.
//
// When the World carries a simnet.CostModel, every rank owns a virtual
// clock: message arrivals and modelled compute advance it, making
// 3584-rank scaling experiments reproducible on a single machine.  With a
// nil model the clocks read wall time and the runtime behaves like a plain
// concurrent execution.
package comm

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"dhsort/internal/fault"
	"dhsort/internal/simnet"
)

// World hosts a fixed set of ranks and their mailboxes.
type World struct {
	size  int
	model *simnet.CostModel
	boxes []*mailbox
	inj   *fault.Injector // nil in fault-free worlds

	mu     sync.Mutex
	finals []time.Duration // per-rank clock at fn return
	stats  []Stats         // per-rank aggregated communication stats

	// Failure registry of the ULFM layer: permanently dead world ranks and
	// revoked communicator ids.  fmu is never held while a mailbox mutex is
	// (flags are set first, mailboxes woken after), so blocked receivers can
	// consult the registry from inside their mailbox wait loop.
	fmu     sync.Mutex
	dead    []bool
	revoked map[uint64]bool
}

// NewWorld creates a world of the given size.  model may be nil for
// real-time execution; a non-nil model prices all communication and enables
// virtual clocks.
func NewWorld(size int, model *simnet.CostModel) (*World, error) {
	return NewWorldWithFaults(size, model, fault.Plan{})
}

// NewWorldWithFaults is NewWorld under a seeded fault schedule: the plan's
// message faults are injected into every remote send, its crashes and
// stalls are consulted by the supersteps' checkpoint boundaries, and its
// watchdog bounds how long any receive may block on the wall clock.  The
// zero plan is exactly NewWorld.
func NewWorldWithFaults(size int, model *simnet.CostModel, plan fault.Plan) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("comm: world size must be positive, got %d", size)
	}
	if model != nil {
		if err := model.Topo.Validate(); err != nil {
			return nil, err
		}
	}
	inj, err := fault.New(plan)
	if err != nil {
		return nil, err
	}
	w := &World{
		size:    size,
		model:   model,
		inj:     inj,
		boxes:   make([]*mailbox, size),
		finals:  make([]time.Duration, size),
		stats:   make([]Stats, size),
		dead:    make([]bool, size),
		revoked: make(map[uint64]bool),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		w.boxes[i].watchdog = plan.Watchdog
	}
	return w, nil
}

// FaultInjector returns the world's fault injector (nil when fault-free).
func (w *World) FaultInjector() *fault.Injector { return w.inj }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Model returns the world's cost model (nil in real-time mode).
func (w *World) Model() *simnet.CostModel { return w.model }

// errAborted is the panic value used to unblock ranks after a failure.
var errAborted = errors.New("comm: world aborted")

// Run executes fn once per rank, each in its own goroutine, and waits for
// all of them.  If any rank returns an error or panics, the world is
// aborted: blocked receives on other ranks unblock and those ranks
// terminate.  The returned error joins all per-rank failures.
//
// A World is single-shot: create a fresh one per Run.
func (w *World) Run(fn func(c *Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var c *Comm
			defer func() {
				if p := recover(); p != nil {
					if p == errAborted {
						// Collateral of another rank's failure.
						return
					}
					if s, ok := p.(suicideExit); ok {
						// Scheduled permanent death: a clean (voluntary)
						// exit, not a failure — the survivors carry on, and
						// the victim's stats up to its death still count.
						w.mu.Lock()
						w.finals[rank] = s.c.clock.Now()
						w.stats[rank] = *s.c.stats
						w.mu.Unlock()
						return
					}
					if fe, ok := p.(*FailureError); ok {
						// A failure nobody recovered (Config.Recovery unset
						// or "respawn" facing a permanent death): surface it
						// as a typed error, not a panic dump.
						errs[rank] = fmt.Errorf("comm: rank %d: %w", rank, fe)
						w.abort()
						return
					}
					errs[rank] = fmt.Errorf("comm: rank %d panicked: %v\n%s", rank, p, debug.Stack())
					w.abort()
				}
			}()
			c = newWorldComm(w, rank)
			if err := fn(c); err != nil {
				errs[rank] = fmt.Errorf("comm: rank %d: %w", rank, err)
				w.abort()
			}
			// Snapshot the rank's clock and stats under the world mutex:
			// ranks finish concurrently, and accessors (Makespan,
			// TotalStats, RankStats) may poll while other ranks are still
			// running.  The copy is taken on the owning goroutine, so the
			// live accumulator itself is never read cross-goroutine.
			w.mu.Lock()
			w.finals[rank] = c.clock.Now()
			w.stats[rank] = *c.stats
			w.mu.Unlock()
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// abort poisons every mailbox so blocked ranks unwind.
func (w *World) abort() {
	for _, b := range w.boxes {
		b.abort()
	}
}

// Makespan returns the maximum per-rank completion time of the last Run —
// the virtual parallel execution time under the cost model (or each rank's
// wall-clock time with a nil model).
func (w *World) Makespan() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	var max time.Duration
	for _, t := range w.finals {
		if t > max {
			max = t
		}
	}
	return max
}

// RankTimes returns a copy of the per-rank completion times of the last Run.
func (w *World) RankTimes() []time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]time.Duration, len(w.finals))
	copy(out, w.finals)
	return out
}

// TotalStats sums the per-rank communication statistics of the last Run.
// Safe to call concurrently with Run; ranks still executing contribute
// their stats once they finish.
func (w *World) TotalStats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total Stats
	for i := range w.stats {
		total.Add(&w.stats[i])
	}
	return total
}

// RankStats returns a copy of the per-rank communication statistics of the
// last Run.  Safe to call concurrently with Run (same contract as
// TotalStats).
func (w *World) RankStats() []Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Stats, len(w.stats))
	copy(out, w.stats)
	return out
}
