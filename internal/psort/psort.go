// Package psort provides shared-memory parallel sorting and merging — the
// stand-ins for Intel Parallel STL (TBB task-based merge sort) and the
// OpenMP task merge sort that Fig. 4 benchmarks against, plus the parallel
// k-way merge variants of the §VI-E study.
//
// The implementations are real fork-join algorithms over goroutines.  The
// Fig. 4 *scaling* numbers under NUMA come from the simnet cost model (see
// the bench package); these functions provide the correct algorithms and
// the real-time path.
package psort

import (
	"sync"

	"dhsort/internal/sortutil"
)

// ParallelFor runs f(i) for every i in [0, n) on up to workers goroutines,
// each owning a contiguous index range.  workers <= 1 (or n <= 1) runs
// inline.  It is the fork-join primitive behind the parallel Histogram
// superstep's independent per-splitter binary searches.
func ParallelFor(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelMergeSort sorts a with a fork-join merge sort using at most
// threads concurrent workers — the TBB parallel stable sort stand-in.
// threads < 1 means 1.  The sort is stable.
func ParallelMergeSort[T any](a []T, less func(a, b T) bool, threads int) {
	if threads < 1 {
		threads = 1
	}
	parallelMergeSort(a, make([]T, len(a)), less, threads)
}

// parallelMergeSort recursively splits while parallel budget remains, then
// falls back to the sequential stable sort.
func parallelMergeSort[T any](a, buf []T, less func(a, b T) bool, budget int) {
	const cutoff = 4096
	if len(a) <= cutoff || budget <= 1 {
		sortutil.StableSort(a, less)
		return
	}
	mid := len(a) / 2
	var inner sync.WaitGroup
	inner.Add(1)
	go func() {
		defer inner.Done()
		parallelMergeSort(a[:mid], buf[:mid], less, budget/2)
	}()
	parallelMergeSort(a[mid:], buf[mid:], less, budget-budget/2)
	inner.Wait()
	// Merge halves through the scratch buffer.
	copy(buf, a)
	sortutil.MergeInto(a, buf[:mid], buf[mid:], less)
}

// mergeSplitCutoff is the per-worker output size below which splitting a
// pairwise merge is not worth the goroutine and co-rank overhead.
const mergeSplitCutoff = 4096

// ParallelMerge merges sorted a and b into dst (len(dst) must equal
// len(a)+len(b)) stably (ties from a) using up to threads workers: the
// output is cut into equal segments whose source boundaries come from the
// sortutil.CoRank merge-path search, and every segment merges
// independently — the §V-C parallel pairwise merge.  dst must not overlap
// a or b.
func ParallelMerge[T any](dst, a, b []T, less func(a, b T) bool, threads int) {
	n := len(dst)
	if threads > n/mergeSplitCutoff {
		threads = n / mergeSplitCutoff
	}
	if threads <= 1 {
		sortutil.MergeInto(dst, a, b, less)
		return
	}
	var wg sync.WaitGroup
	pi, pj := 0, 0
	for t := 1; t <= threads; t++ {
		i, j := len(a), len(b)
		if t < threads {
			i, j = sortutil.CoRank(a, b, t*n/threads, less)
		}
		lo, ai, aj, bi, bj := pi+pj, pi, i, pj, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			sortutil.MergeInto(dst[lo:i+j], a[ai:aj], b[bi:bj], less)
		}()
		pi, pj = i, j
	}
	wg.Wait()
}

// ParallelTaskMergeSort sorts a in the OpenMP-task style: the array is cut
// into `threads` chunks sorted concurrently, then merged with a pairwise
// tree whose merges also run concurrently.  The sort is not stable.
func ParallelTaskMergeSort[T any](a []T, less func(a, b T) bool, threads int) {
	ParallelTaskMergeSortScratch(a, less, threads, nil)
}

// ParallelTaskMergeSortScratch is ParallelTaskMergeSort drawing its merge
// buffer from scratch when it is large enough (len >= len(a)); the merge
// rounds then ping-pong between a and the buffer with no further
// allocation, unlike the run-slice tree that previously allocated every
// intermediate run plus a final full-array copy.
func ParallelTaskMergeSortScratch[T any](a []T, less func(a, b T) bool, threads int, scratch []T) {
	if threads < 1 {
		threads = 1
	}
	n := len(a)
	if n < 2 {
		return
	}
	bounds := chunkBounds(n, threads)
	ParallelFor(len(bounds)-1, threads, func(i int) {
		sortutil.Sort(a[bounds[i]:bounds[i+1]], less)
	})
	if len(bounds) <= 2 {
		return
	}
	if len(scratch) < n {
		scratch = make([]T, n)
	}
	res := mergeRuns(a, scratch[:n], bounds, less, threads)
	if &res[0] != &a[0] {
		copy(a, res)
	}
}

// chunkBounds cuts [0, n) into at most chunks non-empty contiguous ranges,
// returning the len+1 boundary offsets.
func chunkBounds(n, chunks int) []int {
	b := make([]int, 1, chunks+1)
	for i := 1; i <= chunks; i++ {
		if c := i * n / chunks; c > b[len(b)-1] {
			b = append(b, c)
		}
	}
	return b
}

// mergeRuns merges the adjacent sorted runs of src delimited by bounds
// (run i spans src[bounds[i]:bounds[i+1]]) down to a single run,
// ping-ponging between src and dst.  Each round runs its pairwise merges
// concurrently AND gives every merge a thread share proportional to its
// output size, so the final rounds — two huge runs — still keep all
// workers busy via ParallelMerge's co-rank splitting.  Returns whichever
// buffer holds the final run.
func mergeRuns[T any](src, dst []T, bounds []int, less func(a, b T) bool, threads int) []T {
	n := len(src)
	for len(bounds) > 2 {
		nxt := make([]int, 1, (len(bounds)+2)/2)
		var wg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			share := 1
			if n > 0 {
				share = 1 + threads*(hi-lo)/n
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				ParallelMerge(dst[lo:hi], src[lo:mid], src[mid:hi], less, share)
			}()
			nxt = append(nxt, hi)
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the last run has no partner this round.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			nxt = append(nxt, hi)
		}
		wg.Wait()
		src, dst = dst, src
		bounds = nxt
	}
	return src
}

// ParallelMergeKBinary merges k sorted runs with a binary merge tree —
// "all pairwise merges can be performed in parallel" (§V-C).  The thread
// budget is spread across a round's merges in proportion to their output
// sizes, so the last rounds (few, huge merges) split internally by co-rank
// instead of leaving threads-1 workers idle.  The input runs are not
// modified.
func ParallelMergeKBinary[T any](runs [][]T, less func(a, b T) bool, threads int) []T {
	if threads < 1 {
		threads = 1
	}
	n := 0
	for _, r := range runs {
		n += len(r)
	}
	src := make([]T, n)
	bounds := make([]int, 1, len(runs)+1)
	off := 0
	for _, r := range runs {
		off += copy(src[off:], r)
		if off > bounds[len(bounds)-1] {
			bounds = append(bounds, off)
		}
	}
	if len(bounds) <= 2 {
		return src
	}
	return mergeRuns(src, make([]T, n), bounds, less, threads)
}

// MergeAlgorithm names one of the §VI-E k-way merge strategies.
type MergeAlgorithm string

// The merge algorithms compared in §VI-E.
const (
	// BinaryTreeMerge is the parallel binary merge tree ("our own k-way
	// binary merge using OpenMP tasks").
	BinaryTreeMerge MergeAlgorithm = "binary-tree"
	// TournamentMerge is the loser-tree merge ("GNU Parallel provides a
	// multi-threaded k-way merge routine using tournament trees";
	// sequential here — its cache behaviour is the point).
	TournamentMerge MergeAlgorithm = "tournament"
	// ResortMerge ignores run boundaries and re-sorts ("processing many
	// merge tasks in parallel with another parallel sort clearly
	// outperforms merging").
	ResortMerge MergeAlgorithm = "resort"
)

// MergeAlgorithms lists the §VI-E contenders.
var MergeAlgorithms = []MergeAlgorithm{BinaryTreeMerge, TournamentMerge, ResortMerge}

// MergeK dispatches to the chosen algorithm with the given worker budget.
func MergeK[T any](alg MergeAlgorithm, runs [][]T, less func(a, b T) bool, threads int) []T {
	switch alg {
	case TournamentMerge:
		return sortutil.MergeKLoser(runs, less)
	case ResortMerge:
		n := 0
		for _, r := range runs {
			n += len(r)
		}
		out := make([]T, 0, n)
		for _, r := range runs {
			out = append(out, r...)
		}
		ParallelTaskMergeSort(out, less, threads)
		return out
	default:
		return ParallelMergeKBinary(runs, less, threads)
	}
}
