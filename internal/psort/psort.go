// Package psort provides shared-memory parallel sorting and merging — the
// stand-ins for Intel Parallel STL (TBB task-based merge sort) and the
// OpenMP task merge sort that Fig. 4 benchmarks against, plus the parallel
// k-way merge variants of the §VI-E study.
//
// The implementations are real fork-join algorithms over goroutines.  The
// Fig. 4 *scaling* numbers under NUMA come from the simnet cost model (see
// the bench package); these functions provide the correct algorithms and
// the real-time path.
package psort

import (
	"sync"

	"dhsort/internal/sortutil"
)

// ParallelMergeSort sorts a with a fork-join merge sort using at most
// threads concurrent workers — the TBB parallel stable sort stand-in.
// threads < 1 means 1.  The sort is stable.
func ParallelMergeSort[T any](a []T, less func(a, b T) bool, threads int) {
	if threads < 1 {
		threads = 1
	}
	parallelMergeSort(a, make([]T, len(a)), less, threads)
}

// parallelMergeSort recursively splits while parallel budget remains, then
// falls back to the sequential stable sort.
func parallelMergeSort[T any](a, buf []T, less func(a, b T) bool, budget int) {
	const cutoff = 4096
	if len(a) <= cutoff || budget <= 1 {
		sortutil.StableSort(a, less)
		return
	}
	mid := len(a) / 2
	var inner sync.WaitGroup
	inner.Add(1)
	go func() {
		defer inner.Done()
		parallelMergeSort(a[:mid], buf[:mid], less, budget/2)
	}()
	parallelMergeSort(a[mid:], buf[mid:], less, budget-budget/2)
	inner.Wait()
	// Merge halves through the scratch buffer.
	copy(buf, a)
	mergeHalves(a, buf[:mid], buf[mid:], less)
}

func mergeHalves[T any](dst, left, right []T, less func(a, b T) bool) {
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			dst[k] = right[j]
			j++
		} else {
			dst[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		dst[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		dst[k] = right[j]
		j++
		k++
	}
}

// ParallelTaskMergeSort sorts a in the OpenMP-task style: the array is cut
// into `threads` chunks sorted concurrently, then merged with a pairwise
// tree whose merges also run concurrently.  The sort is not stable.
func ParallelTaskMergeSort[T any](a []T, less func(a, b T) bool, threads int) {
	if threads < 1 {
		threads = 1
	}
	n := len(a)
	if n < 2 {
		return
	}
	chunks := make([][]T, 0, threads)
	for i := 0; i < threads; i++ {
		lo, hi := i*n/threads, (i+1)*n/threads
		if lo < hi {
			chunks = append(chunks, a[lo:hi])
		}
	}
	var wg sync.WaitGroup
	for _, ch := range chunks {
		wg.Add(1)
		go func(ch []T) {
			defer wg.Done()
			sortutil.Sort(ch, less)
		}(ch)
	}
	wg.Wait()
	merged := ParallelMergeKBinary(chunks, less, threads)
	copy(a, merged)
}

// ParallelMergeKBinary merges k sorted runs with a binary merge tree whose
// pairwise merges of one round run concurrently on up to threads workers —
// "all pairwise merges can be performed in parallel" (§V-C).
func ParallelMergeKBinary[T any](runs [][]T, less func(a, b T) bool, threads int) []T {
	if threads < 1 {
		threads = 1
	}
	switch len(runs) {
	case 0:
		return nil
	case 1:
		out := make([]T, len(runs[0]))
		copy(out, runs[0])
		return out
	}
	cur := make([][]T, len(runs))
	copy(cur, runs)
	sem := make(chan struct{}, threads)
	for len(cur) > 1 {
		nxt := make([][]T, (len(cur)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(cur); i += 2 {
			wg.Add(1)
			sem <- struct{}{}
			go func(out *[]T, a, b []T) {
				defer wg.Done()
				defer func() { <-sem }()
				*out = sortutil.Merge(a, b, less)
			}(&nxt[i/2], cur[i], cur[i+1])
		}
		if len(cur)%2 == 1 {
			nxt[len(nxt)-1] = cur[len(cur)-1]
		}
		wg.Wait()
		cur = nxt
	}
	return cur[0]
}

// MergeAlgorithm names one of the §VI-E k-way merge strategies.
type MergeAlgorithm string

// The merge algorithms compared in §VI-E.
const (
	// BinaryTreeMerge is the parallel binary merge tree ("our own k-way
	// binary merge using OpenMP tasks").
	BinaryTreeMerge MergeAlgorithm = "binary-tree"
	// TournamentMerge is the loser-tree merge ("GNU Parallel provides a
	// multi-threaded k-way merge routine using tournament trees";
	// sequential here — its cache behaviour is the point).
	TournamentMerge MergeAlgorithm = "tournament"
	// ResortMerge ignores run boundaries and re-sorts ("processing many
	// merge tasks in parallel with another parallel sort clearly
	// outperforms merging").
	ResortMerge MergeAlgorithm = "resort"
)

// MergeAlgorithms lists the §VI-E contenders.
var MergeAlgorithms = []MergeAlgorithm{BinaryTreeMerge, TournamentMerge, ResortMerge}

// MergeK dispatches to the chosen algorithm with the given worker budget.
func MergeK[T any](alg MergeAlgorithm, runs [][]T, less func(a, b T) bool, threads int) []T {
	switch alg {
	case TournamentMerge:
		return sortutil.MergeKLoser(runs, less)
	case ResortMerge:
		n := 0
		for _, r := range runs {
			n += len(r)
		}
		out := make([]T, 0, n)
		for _, r := range runs {
			out = append(out, r...)
		}
		ParallelTaskMergeSort(out, less, threads)
		return out
	default:
		return ParallelMergeKBinary(runs, less, threads)
	}
}
