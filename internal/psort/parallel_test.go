package psort

import (
	"runtime"
	"sync/atomic"
	"testing"

	"dhsort/internal/prng"
	"dhsort/internal/sortutil"
)

// withProcs raises GOMAXPROCS so fork-join paths genuinely run concurrently
// even on single-core CI containers, restoring it afterwards.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	withProcs(t, 4)
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, workers := range []int{0, 1, 3, 8, 100} {
			counts := make([]int32, n)
			ParallelFor(n, workers, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestParallelMergeMatchesSequential(t *testing.T) {
	withProcs(t, 4)
	src := prng.NewXoshiro256(11)
	shapes := [][2]int{{0, 0}, {1, 0}, {0, 5}, {100, 100}, {10000, 10000},
		{20000, 3}, {3, 20000}, {8192, 8192}}
	for _, sh := range shapes {
		a := make([]uint64, sh[0])
		b := make([]uint64, sh[1])
		for i := range a {
			a[i] = prng.Uint64n(src, 1000) // duplicates across runs
		}
		for i := range b {
			b[i] = prng.Uint64n(src, 1000)
		}
		sortutil.Sort(a, lessU64)
		sortutil.Sort(b, lessU64)
		want := make([]uint64, len(a)+len(b))
		sortutil.MergeInto(want, a, b, lessU64)
		for _, threads := range []int{1, 3, 8} {
			got := make([]uint64, len(a)+len(b))
			ParallelMerge(got, a, b, lessU64, threads)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shape %v threads=%d: mismatch at %d", sh, threads, i)
				}
			}
		}
	}
}

// TestParallelMergeStable: with duplicate keys, segmented co-rank merging
// must preserve the same left-run-first tie order as the sequential kernel.
func TestParallelMergeStable(t *testing.T) {
	withProcs(t, 4)
	n := 30000
	a := make([]rec, n)
	b := make([]rec, n)
	for i := range a {
		a[i] = rec{k: i / 100, tag: i}     // run a: tags 0..n
		b[i] = rec{k: i / 100, tag: n + i} // run b: tags n..2n, same keys
	}
	less := func(x, y rec) bool { return x.k < y.k }
	got := make([]rec, 2*n)
	ParallelMerge(got, a, b, less, 8)
	want := make([]rec, 2*n)
	sortutil.MergeInto(want, a, b, less)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie order diverges from sequential merge at %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestParallelTaskMergeSortScratchSharedArena(t *testing.T) {
	withProcs(t, 4)
	scratch := make([]uint64, 0)
	for round := 0; round < 5; round++ {
		n := 1000 + round*7777
		if cap(scratch) < n {
			scratch = make([]uint64, n)
		}
		a := randomData(uint64(round)+77, n, 500) // duplicate-heavy
		want := append([]uint64(nil), a...)
		sortutil.Sort(want, lessU64)
		ParallelTaskMergeSortScratch(a, lessU64, 3, scratch[:n])
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("round %d: mismatch at %d with reused scratch", round, i)
			}
		}
	}
}

// TestParallelMergeKBinarySkewedRuns: the co-rank splitting must stay
// correct when one run dwarfs the others — the §V-C case where naive
// run-per-thread assignment would leave all but one thread idle.
func TestParallelMergeKBinarySkewedRuns(t *testing.T) {
	withProcs(t, 4)
	src := prng.NewXoshiro256(4242)
	big := make([]uint64, 50000)
	for i := range big {
		big[i] = prng.Uint64n(src, 1e6)
	}
	sortutil.Sort(big, lessU64)
	runs := [][]uint64{big}
	var all []uint64
	all = append(all, big...)
	for r := 0; r < 6; r++ {
		small := make([]uint64, 100)
		for i := range small {
			small[i] = prng.Uint64n(src, 1e6)
		}
		sortutil.Sort(small, lessU64)
		runs = append(runs, small)
		all = append(all, small...)
	}
	sortutil.Sort(all, lessU64)
	for _, threads := range []int{1, 3, 8} {
		got := ParallelMergeKBinary(runs, lessU64, threads)
		if len(got) != len(all) {
			t.Fatalf("threads=%d: length %d, want %d", threads, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("threads=%d: mismatch at %d", threads, i)
			}
		}
	}
}

func TestParallelMergeKBinaryEmptyAndSingleRuns(t *testing.T) {
	if out := ParallelMergeKBinary(nil, lessU64, 4); len(out) != 0 {
		t.Errorf("nil runs produced %d elements", len(out))
	}
	if out := ParallelMergeKBinary([][]uint64{{}, {}, {}}, lessU64, 4); len(out) != 0 {
		t.Errorf("all-empty runs produced %d elements", len(out))
	}
	single := []uint64{1, 2, 3}
	out := ParallelMergeKBinary([][]uint64{nil, single, nil}, lessU64, 4)
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Errorf("single-run merge got %v", out)
	}
	// The result must be a copy, never an alias of the input run.
	if len(out) > 0 && &out[0] == &single[0] {
		t.Error("merge result aliases an input run")
	}
}
