package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"dhsort/internal/prng"
	"dhsort/internal/sortutil"
)

func lessU64(a, b uint64) bool { return a < b }

func randomData(seed uint64, n int, span uint64) []uint64 {
	src := prng.NewXoshiro256(seed)
	a := make([]uint64, n)
	for i := range a {
		a[i] = prng.Uint64n(src, span)
	}
	return a
}

func TestParallelMergeSort(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4096, 4097, 50000} {
		for _, threads := range []int{0, 1, 2, 7, 16} {
			a := randomData(uint64(n+threads), n, 1e6)
			want := append([]uint64(nil), a...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			ParallelMergeSort(a, lessU64, threads)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("n=%d threads=%d: mismatch at %d", n, threads, i)
				}
			}
		}
	}
}

type rec struct{ k, tag int }

func TestParallelMergeSortStable(t *testing.T) {
	src := prng.NewSplitMix64(5)
	a := make([]rec, 30000)
	for i := range a {
		a[i] = rec{k: int(prng.Uint64n(src, 50)), tag: i}
	}
	ParallelMergeSort(a, func(x, y rec) bool { return x.k < y.k }, 8)
	for i := 1; i < len(a); i++ {
		if a[i-1].k > a[i].k || (a[i-1].k == a[i].k && a[i-1].tag > a[i].tag) {
			t.Fatal("stability violated")
		}
	}
}

func TestParallelTaskMergeSort(t *testing.T) {
	for _, n := range []int{0, 1, 3, 1000, 30000} {
		for _, threads := range []int{1, 3, 8} {
			a := randomData(uint64(n)*7+uint64(threads), n, 1e9)
			want := append([]uint64(nil), a...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			ParallelTaskMergeSort(a, lessU64, threads)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("n=%d threads=%d: mismatch at %d", n, threads, i)
				}
			}
		}
	}
}

func TestParallelMergeKBinary(t *testing.T) {
	src := prng.NewXoshiro256(9)
	for _, k := range []int{0, 1, 2, 5, 16, 31} {
		runs := make([][]uint64, k)
		var all []uint64
		for i := range runs {
			n := int(prng.Uint64n(src, 500))
			r := randomData(uint64(k*100+i), n, 1e6)
			sortutil.Sort(r, lessU64)
			runs[i] = r
			all = append(all, r...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		got := ParallelMergeKBinary(runs, lessU64, 4)
		if len(got) != len(all) {
			t.Fatalf("k=%d: length %d want %d", k, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("k=%d: mismatch at %d", k, i)
			}
		}
	}
}

func TestMergeKAllAlgorithms(t *testing.T) {
	for _, alg := range MergeAlgorithms {
		runs := make([][]uint64, 9)
		var all []uint64
		for i := range runs {
			r := randomData(uint64(i)+77, 300, 1e6)
			sortutil.Sort(r, lessU64)
			runs[i] = r
			all = append(all, r...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		got := MergeK(alg, runs, lessU64, 4)
		if len(got) != len(all) {
			t.Fatalf("%s: length mismatch", alg)
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("%s: mismatch at %d", alg, i)
			}
		}
	}
}

func TestMergeKQuick(t *testing.T) {
	f := func(seed uint64, kRaw, threadsRaw uint8) bool {
		k := int(kRaw%8) + 1
		threads := int(threadsRaw%4) + 1
		src := prng.NewXoshiro256(seed)
		runs := make([][]uint64, k)
		var all []uint64
		for i := range runs {
			n := int(prng.Uint64n(src, 200))
			r := randomData(seed+uint64(i), n, 100)
			sortutil.Sort(r, lessU64)
			runs[i] = r
			all = append(all, r...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, alg := range MergeAlgorithms {
			got := MergeK(alg, runs, lessU64, threads)
			if len(got) != len(all) {
				return false
			}
			for i := range got {
				if got[i] != all[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
