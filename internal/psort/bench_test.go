package psort

import (
	"fmt"
	"testing"

	"dhsort/internal/prng"
	"dhsort/internal/sortutil"
)

// The intra-rank kernel microbenchmarks behind the Local Sort dispatch:
//
//	go test ./internal/psort -bench 'LocalSort|MergeK' -benchtime 2x
//
// Radix beats introsort on uint64 at every size (fewer than 8 executed
// passes when the span leaves high digits constant); the fork-join merge
// sort needs GOMAXPROCS > 1 to show its speedup.

func benchData(n int) []uint64 {
	src := prng.NewXoshiro256(uint64(n))
	a := make([]uint64, n)
	for i := range a {
		a[i] = src.Uint64()
	}
	return a
}

func BenchmarkLocalSortIntrosort(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			orig := benchData(n)
			work := make([]uint64, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, orig)
				sortutil.Sort(work, lessU64)
			}
		})
	}
}

func BenchmarkLocalSortRadix(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			orig := benchData(n)
			work := make([]uint64, n)
			var ar sortutil.Arena[uint64]
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, orig)
				sortutil.RadixSortFuncScratch(work, func(v uint64) uint64 { return v }, 8, &ar)
			}
		})
	}
}

func BenchmarkLocalSortTaskMerge(b *testing.B) {
	for _, n := range []int{1 << 16, 1 << 20} {
		for _, threads := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n=%d/t=%d", n, threads), func(b *testing.B) {
				orig := benchData(n)
				work := make([]uint64, n)
				scratch := make([]uint64, n)
				b.SetBytes(int64(8 * n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(work, orig)
					ParallelTaskMergeSortScratch(work, lessU64, threads, scratch)
				}
			})
		}
	}
}

func BenchmarkMergeK(b *testing.B) {
	totalKeys := 1 << 20
	for _, k := range []int{4, 64, 512} {
		runs := make([][]uint64, k)
		for i := range runs {
			r := benchData(totalKeys / k)
			sortutil.Sort(r, lessU64)
			runs[i] = r
		}
		for _, alg := range MergeAlgorithms {
			b.Run(fmt.Sprintf("%s/k=%d", alg, k), func(b *testing.B) {
				b.SetBytes(int64(8 * totalKeys))
				for i := 0; i < b.N; i++ {
					out := MergeK(alg, runs, lessU64, 2)
					if len(out) != (totalKeys/k)*k {
						b.Fatal("merge lost elements")
					}
				}
			})
		}
	}
}
