// Package garray provides a PGAS-style distributed array — the DASH
// container abstraction the paper's implementation is built into ("DASH is
// a C++14 template library based on the partitioned global address space
// model ... we provide containers and algorithms to operate on global
// data", §VI-A1).
//
// A GlobalArray is partitioned block-wise across ranks; all partitions
// live in the world's shared process memory, so every rank can address
// every element directly — the "global address space".  Local accesses are
// free (the owner-computes model the paper stresses); accesses outside the
// local partition are one-sided and priced by the cost model like the
// MPI-3 RMA operations they stand for.
//
// Synchronization discipline, as with MPI-3 RMA epochs: remote accesses
// must be separated from conflicting accesses by a Barrier.  The Go race
// detector enforces the discipline in tests.
package garray

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
)

// GlobalArray is one rank's handle on a block-distributed array of K.
type GlobalArray[K any] struct {
	c      *comm.Comm
	parts  [][]K // partition per rank, shared storage across ranks
	starts []int64
	total  int64
	bytes  int
}

// New collectively allocates a global array with the given local partition
// size on this rank (sizes may differ per rank; zero is allowed).
// elemBytes prices one element for remote-access accounting.
func New[K any](c *comm.Comm, localSize int, elemBytes int) (*GlobalArray[K], error) {
	if localSize < 0 {
		return nil, fmt.Errorf("garray: negative local size %d", localSize)
	}
	g := &GlobalArray[K]{c: c, bytes: elemBytes}
	g.republish(make([]K, localSize))
	return g, nil
}

// republish installs local as this rank's partition and refreshes every
// rank's view of sizes and storage handles.  Collective.
func (g *GlobalArray[K]) republish(local []K) {
	p := g.c.Size()
	sizes := comm.AllgatherOne(g.c, int64(len(local)))
	g.starts = make([]int64, p+1)
	for i, n := range sizes {
		g.starts[i+1] = g.starts[i] + n
	}
	g.total = g.starts[p]
	// Exchange slice *handles*: the payload copy duplicates the header,
	// not the backing array, so all ranks address the same storage —
	// the in-process equivalent of an MPI-3 shared-memory window.
	handles := comm.AllgatherOne(g.c, &local)
	g.parts = make([][]K, p)
	for i, h := range handles {
		g.parts[i] = *h
	}
}

// Len returns the global element count.
func (g *GlobalArray[K]) Len() int64 { return g.total }

// LocalLen returns this rank's partition size.
func (g *GlobalArray[K]) LocalLen() int { return len(g.parts[g.c.Rank()]) }

// Local returns this rank's partition for direct (owner-computes) access.
func (g *GlobalArray[K]) Local() []K { return g.parts[g.c.Rank()] }

// Owner returns the rank owning global index i and the offset within its
// partition.
func (g *GlobalArray[K]) Owner(i int64) (rank, offset int) {
	if i < 0 || i >= g.total {
		panic(fmt.Sprintf("garray: index %d out of range [0,%d)", i, g.total))
	}
	lo, hi := 0, g.c.Size()
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if g.starts[mid] <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, int(i - g.starts[lo])
}

// Get reads the element at global index i (one-sided; priced as an RMA get
// when the index is remote).
func (g *GlobalArray[K]) Get(i int64) K {
	rank, off := g.Owner(i)
	g.charge(rank)
	return g.parts[rank][off]
}

// Put writes the element at global index i (one-sided; priced as an RMA
// put when the index is remote).  The caller must uphold the epoch
// discipline documented on the package.
func (g *GlobalArray[K]) Put(i int64, v K) {
	rank, off := g.Owner(i)
	g.charge(rank)
	g.parts[rank][off] = v
}

// charge advances the clock by the cost of one remote element access.
func (g *GlobalArray[K]) charge(rank int) {
	m := g.c.Model()
	if m == nil || rank == g.c.Rank() {
		return
	}
	g.c.Clock().Advance(m.MsgCost(g.c.WorldRank(), g.c.WorldRankOf(rank), g.bytes))
}

// Barrier closes an access epoch: all one-sided accesses issued before it
// are globally visible afterwards.
func (g *GlobalArray[K]) Barrier() { comm.Barrier(g.c) }

// Sort sorts the global array in place by the given key operations — the
// paper's std::sort-style entry point on the container.  Collective.
// With cfg.Epsilon == 0 the partition sizes are preserved; otherwise the
// partitions are re-homed to the sorted sizes.
func (g *GlobalArray[K]) Sort(ops keys.Ops[K], cfg core.Config) error {
	out, err := core.Sort(g.c, g.Local(), ops, cfg)
	if err != nil {
		return err
	}
	g.republish(out)
	return nil
}

// NthElement returns the k-th smallest element of the array on every rank
// without sorting (dash::nth_element).  Collective.
func (g *GlobalArray[K]) NthElement(k int64, ops keys.Ops[K]) (K, error) {
	return core.DSelect(g.c, g.Local(), k, ops, core.Config{})
}

// Quantiles returns q-1 equi-depth cut values of the array.  Collective.
func (g *GlobalArray[K]) Quantiles(q int, ops keys.Ops[K]) ([]K, error) {
	return core.Quantiles(g.c, g.Local(), q, ops, core.Config{})
}

// IsSorted collectively verifies global order.
func (g *GlobalArray[K]) IsSorted(ops keys.Ops[K]) bool {
	return core.IsGloballySorted(g.c, g.Local(), ops)
}

// Fill sets every local element using gen(globalIndex) — the
// owner-computes initialization pattern.
func (g *GlobalArray[K]) Fill(gen func(i int64) K) {
	base := g.starts[g.c.Rank()]
	local := g.Local()
	for i := range local {
		local[i] = gen(base + int64(i))
	}
}
