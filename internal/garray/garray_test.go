package garray

import (
	"sort"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/prng"
	"dhsort/internal/simnet"
)

var u64 = keys.Uint64{}

func run(t *testing.T, p int, model *simnet.CostModel, fn func(c *comm.Comm) error) {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestNewAndLayout(t *testing.T) {
	run(t, 4, nil, func(c *comm.Comm) error {
		// Variable partition sizes: rank r holds r+1 elements.
		g, err := New[uint64](c, c.Rank()+1, 8)
		if err != nil {
			return err
		}
		if g.Len() != 10 {
			t.Errorf("Len = %d", g.Len())
		}
		if g.LocalLen() != c.Rank()+1 {
			t.Errorf("LocalLen = %d", g.LocalLen())
		}
		// Owner mapping: indices 0 | 1 2 | 3 4 5 | 6 7 8 9.
		wantOwner := []int{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
		for i, w := range wantOwner {
			r, _ := g.Owner(int64(i))
			if r != w {
				t.Errorf("Owner(%d) = %d, want %d", i, r, w)
			}
		}
		return nil
	})
}

func TestOwnerPanicsOutOfRange(t *testing.T) {
	run(t, 2, nil, func(c *comm.Comm) error {
		g, _ := New[uint64](c, 3, 8)
		for _, i := range []int64{-1, 6} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("Owner(%d) must panic", i)
					}
				}()
				g.Owner(i)
			}()
		}
		return nil
	})
}

func TestGlobalReadsSeeRemoteWrites(t *testing.T) {
	run(t, 4, nil, func(c *comm.Comm) error {
		g, err := New[uint64](c, 5, 8)
		if err != nil {
			return err
		}
		// Owner-computes fill, then everyone reads everything.
		g.Fill(func(i int64) uint64 { return uint64(i * i) })
		g.Barrier()
		for i := int64(0); i < g.Len(); i++ {
			if got := g.Get(i); got != uint64(i*i) {
				t.Errorf("Get(%d) = %d", i, got)
			}
		}
		return nil
	})
}

func TestPutAcrossPartitions(t *testing.T) {
	run(t, 3, nil, func(c *comm.Comm) error {
		g, _ := New[uint64](c, 3, 8)
		// Rank 0 writes the whole array one-sidedly.
		if c.Rank() == 0 {
			for i := int64(0); i < g.Len(); i++ {
				g.Put(i, uint64(100+i))
			}
		}
		g.Barrier()
		for i, v := range g.Local() {
			want := uint64(100 + int64(i) + int64(c.Rank()*3))
			if v != want {
				t.Errorf("local[%d] = %d, want %d", i, v, want)
			}
		}
		return nil
	})
}

func TestRemoteAccessCostsVirtualTime(t *testing.T) {
	model := simnet.SuperMUC(2, true) // 2 ranks/node: rank 0 and 2 are on different nodes
	run(t, 4, model, func(c *comm.Comm) error {
		g, _ := New[uint64](c, 4, 8)
		g.Barrier()
		before := c.Clock().Now()
		g.Get(int64(4 * ((c.Rank() + 2) % 4))) // remote partition
		afterRemote := c.Clock().Now()
		if afterRemote <= before {
			t.Error("remote get must cost virtual time")
		}
		g.Get(int64(4 * c.Rank())) // local partition: free
		if c.Clock().Now() != afterRemote {
			t.Error("local get must be free")
		}
		return nil
	})
}

func TestGlobalArraySort(t *testing.T) {
	run(t, 6, nil, func(c *comm.Comm) error {
		g, err := New[uint64](c, 500, 8)
		if err != nil {
			return err
		}
		src := prng.NewXoshiro256(uint64(c.Rank()) + 5)
		g.Fill(func(i int64) uint64 { return prng.Uint64n(src, 1e9) })
		g.Barrier()
		if err := g.Sort(u64, core.Config{}); err != nil {
			return err
		}
		if g.LocalLen() != 500 {
			t.Errorf("perfect partitioning violated: %d", g.LocalLen())
		}
		if !g.IsSorted(u64) {
			t.Error("array not globally sorted")
		}
		// Global reads across the sorted array are monotone.
		var prev uint64
		for i := int64(0); i < g.Len(); i += 97 {
			v := g.Get(i)
			if v < prev {
				t.Errorf("global order violated at %d", i)
			}
			prev = v
		}
		return nil
	})
}

func TestGlobalArrayNthElementAndQuantiles(t *testing.T) {
	run(t, 4, nil, func(c *comm.Comm) error {
		g, _ := New[uint64](c, 1000, 8)
		src := prng.NewXoshiro256(uint64(c.Rank()) + 9)
		g.Fill(func(i int64) uint64 { return prng.Uint64n(src, 1e6) })
		g.Barrier()
		med, err := g.NthElement(g.Len()/2, u64)
		if err != nil {
			return err
		}
		// Oracle on rank 0 via global reads.
		if c.Rank() == 0 {
			all := make([]uint64, g.Len())
			for i := range all {
				all[i] = g.Get(int64(i))
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			if med != all[len(all)/2] {
				t.Errorf("median %d, want %d", med, all[len(all)/2])
			}
		}
		cuts, err := g.Quantiles(4, u64)
		if err != nil {
			return err
		}
		if len(cuts) != 3 || cuts[0] > cuts[1] || cuts[1] > cuts[2] {
			t.Errorf("quantiles malformed: %v", cuts)
		}
		return nil
	})
}

func TestNewValidation(t *testing.T) {
	run(t, 1, nil, func(c *comm.Comm) error {
		if _, err := New[uint64](c, -1, 8); err == nil {
			t.Error("negative size must be rejected")
		}
		return nil
	})
}

func TestSortWithEpsilonRehomes(t *testing.T) {
	run(t, 4, nil, func(c *comm.Comm) error {
		g, _ := New[uint64](c, 400, 8)
		src := prng.NewXoshiro256(uint64(c.Rank()) + 77)
		g.Fill(func(i int64) uint64 { return prng.Uint64n(src, 1e9) })
		g.Barrier()
		if err := g.Sort(u64, core.Config{Epsilon: 0.2}); err != nil {
			return err
		}
		if g.Len() != 1600 {
			t.Errorf("total changed: %d", g.Len())
		}
		if !g.IsSorted(u64) {
			t.Error("not sorted after epsilon sort")
		}
		// Global index space must stay consistent after re-homing.
		last, _ := g.Owner(g.Len() - 1)
		if last != 3 {
			t.Errorf("last element owned by %d", last)
		}
		return nil
	})
}
