package bench

import (
	"fmt"
	"text/tabwriter"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// ExchangeStudy is the exchange-backend ablation (§VI): the same sort runs
// with the two-sided 1-factor ALLTOALLV, the fused sendrecv overlap
// (§VI-E1), and the one-sided RMA put+notify exchange, under both intra-node
// pricings — PGAS (MPI-3 shared-memory windows: an intra-node put is a plain
// memcpy with no rendezvous) and pure MPI (every put completion emulated by
// a flush round-trip).  The paper's claim is directional: one-sided puts win
// exactly where the rendezvous they eliminate was being paid, i.e. with
// shared-memory windows inside the node, and lose when the RMA layer must
// synthesize completion from two-sided traffic.
func ExchangeStudy(o Options) error {
	realTotal := 1 << 17

	fmt.Fprintf(o.Out, "ablation — data-exchange backends under both intra-node pricings\n")
	fmt.Fprintf(o.Out, "(smoke-sized blocks: %d keys per rank; times are modelled, not scaled)\n\n", realTotal/16)
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "model\tcores\tnodes\talltoallv\tfused\trma-put\n")

	for _, pgas := range []bool{true, false} {
		model := simnet.SuperMUC(16, pgas)
		name := "pgas"
		if !pgas {
			name = "mpi"
		}
		for _, p := range []int{16, 64} {
			spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + uint64(p), Span: 1e9}
			row := make([]time.Duration, 0, 3)
			for _, cfg := range []core.Config{
				{Exchange: comm.AlltoallOneFactor},
				{Merge: core.MergeOverlap},
				{Exchange: comm.ExchangeRMAPut},
			} {
				pt, err := runOnceCfg(p, realTotal/p, model, spec, cfg)
				if err != nil {
					return err
				}
				row = append(row, pt.Makespan.Round(time.Microsecond))
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\t%v\n", name, p, (p+15)/16, row[0], row[1], row[2])
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected: under PGAS pricing the one-sided exchange beats the two-sided\n")
	fmt.Fprintf(o.Out, "ALLTOALLV on the intra-node configuration (puts are memcpys; no\n")
	fmt.Fprintf(o.Out, "rendezvous, no double copy); under pure-MPI pricing the emulated\n")
	fmt.Fprintf(o.Out, "notify/flush traffic costs more than the rendezvous it replaced and\n")
	fmt.Fprintf(o.Out, "rma-put falls behind both two-sided schedules.\n")
	return nil
}
