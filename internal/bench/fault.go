package bench

import (
	"fmt"
	"time"

	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/stats"
	"dhsort/internal/workload"
)

// FaultStudy is an EXTENSION, not a paper figure: the source paper assumes
// a reliable interconnect.  It measures the resilience degradation curve —
// modelled makespan overhead of the dhsort under seeded fault schedules,
// sweeping message drop rate × injected rank crashes — together with the
// fault plane's own accounting (retries, dedup hits, checkpoints,
// recovery time).  Every row still verifies the sorted-output invariant:
// faults cost time, never correctness.
func FaultStudy(o Options) error {
	p, perRank := 16, 4096
	if o.Full {
		p, perRank = 64, 16384
	}
	model := simnet.SuperMUC(suiteRanksPerNode, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed, Span: 1e9}
	s := dhsortSorter(o.threads())

	drops := []float64{0, 0.01, 0.02, 0.05}
	crashes := [][]fault.Crash{
		nil,
		{{Rank: p / 3, Step: core.StepSplitting}},
		{{Rank: p / 3, Step: core.StepSplitting}, {Rank: 2 * p / 3, Step: core.StepCuts}},
	}

	fmt.Fprintf(o.Out, "resilience degradation — dhsort, p=%d, %d keys/rank, uniform (modelled SuperMUC time; extension, no paper figure)\n", p, perRank)
	fmt.Fprintf(o.Out, "%-28s %12s %9s %8s %8s %8s %12s\n",
		"schedule", "makespan", "overhead", "retries", "dedup", "ckpts", "recovery")

	var base time.Duration
	row := func(label string, plan fault.Plan) error {
		runs := make([]time.Duration, 0, o.reps())
		var sum metrics.Summary
		for rep := 0; rep < o.reps(); rep++ {
			sp := spec
			sp.Seed = spec.Seed + uint64(rep)*1000003
			pt, err := runOnceFaults(s, p, perRank, model, 1, sp, plan)
			if err != nil {
				return fmt.Errorf("schedule %q: %w", label, err)
			}
			runs = append(runs, pt.Makespan)
			if rep == 0 {
				sum = pt.Phases
			}
		}
		m := stats.Summarize(runs)
		if base == 0 {
			base = m.Median
		}
		overhead := 100 * (float64(m.Median)/float64(base) - 1)
		f := sum.Fault
		fmt.Fprintf(o.Out, "%-28s %12v %+8.1f%% %8d %8d %8d %12v\n",
			label, m.Median.Round(time.Microsecond), overhead,
			f.Retries, f.DedupHits, f.Checkpoints,
			time.Duration(f.RecoveryNS).Round(time.Microsecond))
		return nil
	}

	for ci, cr := range crashes {
		for _, dr := range drops {
			plan := fault.Plan{Seed: o.Seed, DropRate: dr, Crashes: cr}
			label := fmt.Sprintf("drop=%g,crashes=%d", dr, ci)
			if !plan.Enabled() {
				label = "fault-free"
			}
			if err := row(label, plan); err != nil {
				return err
			}
		}
	}
	// An operator-supplied -fault schedule rides along as one extra row.
	if o.Fault.Enabled() {
		if err := row(o.Fault.String(), o.Fault); err != nil {
			return err
		}
	}
	return nil
}
