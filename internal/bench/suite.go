package bench

import (
	"fmt"
	"io"
	"time"

	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// SuiteOptions configures the machine-readable metrics suite.
type SuiteOptions struct {
	// Smoke selects the tiny CI grid (one P, one workload, one rep)
	// instead of the full grid.
	Smoke bool
	// Reps is the repetition count per point (0 means 3; smoke forces 1).
	Reps int
	// Seed is the base workload seed.
	Seed uint64
	// Threads is the intra-rank worker budget for the dhsort/hss compute
	// kernels (0 means 1).  The default keeps every tracked metric
	// machine-independent; CI additionally smokes the suite with -threads 2
	// to exercise the parallel kernels under the model.
	Threads int
	// Progress, when non-nil, receives one line per completed point.
	Progress io.Writer
	// Fault is a seeded failure schedule applied to every measured world
	// (zero = fault-free).  The schedule is recorded in the document's
	// config and the records carry the fault block, so a faulty document
	// is never silently compared against a fault-free baseline as if the
	// conditions matched.
	Fault fault.Plan
	// Recovery selects the permanent-death recovery mode.  A schedule with
	// die= entries requires core.RecoveryShrink and restricts the suite to
	// the sorters with a shrink path (dhsort, hss); the records then carry
	// the recovery mode and survivor counts.  Ignored for death-free
	// schedules.
	Recovery string
}

func (o SuiteOptions) reps() int {
	if o.Smoke {
		return 1
	}
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

func (o SuiteOptions) threads() int {
	if o.Threads <= 0 {
		return 1
	}
	return o.Threads
}

// suiteGrid is the measured parameter grid.  All runs use the SuperMUC
// PGAS cost model (virtual clocks), so every tracked metric is
// deterministic for a given binary — exactly what the compare gate needs.
type suiteGrid struct {
	ps        []int
	perRank   int
	workloads []workload.Distribution
}

func (o SuiteOptions) grid() suiteGrid {
	if o.Smoke {
		// A true subset of the full grid (same p, perRank and workload as
		// one full point) so CompareSubset can gate a smoke document
		// against the committed BENCH_full.json.
		return suiteGrid{
			ps:        []int{16},
			perRank:   4096,
			workloads: []workload.Distribution{workload.Uniform},
		}
	}
	return suiteGrid{
		// Powers of two so the bitonic baseline participates everywhere.
		ps:        []int{16, 64},
		perRank:   4096,
		workloads: []workload.Distribution{workload.Uniform, workload.Normal, workload.Zipf},
	}
}

// suiteRanksPerNode matches the paper's Charm++-comparison node width.
const suiteRanksPerNode = 16

// RunSuite measures every algorithm over the grid and returns the
// versioned document cmd/bench serializes as BENCH_*.json.
func RunSuite(o SuiteOptions) (metrics.Document, error) {
	model := simnet.SuperMUC(suiteRanksPerNode, true)
	grid := o.grid()
	reps := o.reps()
	doc := metrics.Document{
		Schema: metrics.SchemaVersion,
		Config: metrics.RunConfig{
			Suite:        suiteName(o.Smoke),
			Model:        "supermuc-pgas",
			RanksPerNode: suiteRanksPerNode,
			Reps:         reps,
			Seed:         o.Seed,
		},
	}
	if o.Fault.Enabled() {
		doc.Config.Fault = o.Fault.String()
	}
	threads := o.threads()
	if len(o.Fault.Deaths) > 0 {
		// Permanent deaths restrict the suite to the sorters with a shrink
		// recovery path; the others cannot complete the schedule at all.
		if o.Recovery != core.RecoveryShrink {
			return metrics.Document{}, fmt.Errorf("bench: fault schedule %q kills ranks permanently; pass -recovery shrink", o.Fault)
		}
		for _, alg := range []string{"dhsort", "hss"} {
			for _, p := range grid.ps {
				for _, dist := range grid.workloads {
					spec := workload.Spec{Dist: dist, Seed: o.Seed + uint64(p), Span: 1e9}
					rec, err := measurePointResilient(alg, p, grid.perRank, model, spec, reps, o.Fault, o.Recovery, threads)
					if err != nil {
						return metrics.Document{}, fmt.Errorf("bench: suite point %s/p=%d/%s: %w", alg, p, dist, err)
					}
					doc.Records = append(doc.Records, rec)
					if o.Progress != nil {
						fmt.Fprintf(o.Progress, "  %-12s p=%-4d %-8s makespan %v (recovery=%s)\n",
							alg, p, dist, time.Duration(rec.Makespan.MeanNS).Round(time.Microsecond), o.Recovery)
					}
				}
			}
		}
		return doc, nil
	}
	// dhsort-spill is the out-of-core configuration: a per-rank budget of
	// one eighth of the input, default merge fan-in.  Like dhsort-p8, its
	// records are additive — the resident rows stay byte-exact.
	spillBudget := int64(grid.perRank)
	sorters := []sorter{
		dhsortSorter(threads), dhsortFusedSorter(threads), dhsortRMASorter(threads),
		// dhsort-p8 is the k-ary probing configuration: additive records —
		// the plain dhsort rows (and their byte-exact history) are untouched.
		dhsortProbesSorter(threads, 8),
		dhsortSpillSorter(threads, spillBudget, 0),
		hssSorter(threads), samplesortSorter(), hyksortSorter(), bitonicSorter(),
	}
	for _, s := range sorters {
		for _, p := range grid.ps {
			for _, dist := range grid.workloads {
				spec := workload.Spec{Dist: dist, Seed: o.Seed + uint64(p), Span: 1e9}
				rec, err := measurePoint(s, p, grid.perRank, model, spec, reps, o.Fault)
				if err != nil {
					return metrics.Document{}, fmt.Errorf("bench: suite point %s/p=%d/%s: %w", s.name, p, dist, err)
				}
				if s.name == "dhsort-spill" {
					rec.MemBudget = spillBudget
				}
				doc.Records = append(doc.Records, rec)
				if o.Progress != nil {
					fmt.Fprintf(o.Progress, "  %-12s p=%-4d %-8s makespan %v\n",
						s.name, p, dist, time.Duration(rec.Makespan.MeanNS).Round(time.Microsecond))
				}
			}
		}
	}
	return doc, nil
}

func suiteName(smoke bool) string {
	if smoke {
		return "smoke"
	}
	return "full"
}

// measurePoint runs one configuration reps times and folds the runs into a
// schema record: makespan stats over all reps, phase/link breakdown and
// imbalance factors from the first rep (deterministic under the model).
func measurePoint(s sorter, p, perRank int, model *simnet.CostModel, spec workload.Spec, reps int, plan fault.Plan) (metrics.Record, error) {
	makespans := make([]time.Duration, 0, reps)
	var summary metrics.Summary
	for rep := 0; rep < reps; rep++ {
		sp := spec
		sp.Seed = spec.Seed + uint64(rep)*1000003
		pt, err := runOnceFaults(s, p, perRank, model, 1, sp, plan)
		if err != nil {
			return metrics.Record{}, err
		}
		makespans = append(makespans, pt.Makespan)
		if rep == 0 {
			summary = pt.Phases
		}
	}
	return metrics.NewRecord(s.name, p, perRank, string(spec.Dist), makespans, summary), nil
}
