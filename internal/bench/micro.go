package bench

import (
	"fmt"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/prng"
	"dhsort/internal/psort"
	"dhsort/internal/simnet"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
)

// Machine prints Table I: the modelled SuperMUC Phase 2 node, plus the
// calibrated cost-model constants this reproduction substitutes for the
// real hardware.
func Machine(o Options) error {
	fmt.Fprintln(o.Out, "Table I — SuperMUC Phase 2 single node (modelled)")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "CPU\t2 x E5-2697v3 (14 cores each, 4 NUMA domains/node)\n")
	fmt.Fprintf(tw, "Memory\t64 GB (56 GB usable)\n")
	fmt.Fprintf(tw, "Network\tInfiniband FDR14, non-blocking fat tree\n")
	fmt.Fprintf(tw, "Compiler\tICC 18.0.2 -> Go toolchain (this reproduction)\n")
	fmt.Fprintf(tw, "MPI library\tIntel MPI 2018.2 -> internal/comm goroutine runtime\n")
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(o.Out, "\ncalibrated cost model (per link class: latency / per-flow bandwidth):")
	for _, rpn := range []int{16, 28} {
		for _, pgas := range []bool{true, false} {
			m := simnet.SuperMUC(rpn, pgas)
			mode := "MPI "
			if pgas {
				mode = "PGAS"
			}
			fmt.Fprintf(o.Out, "  %d ranks/node %s: same-numa %v/%.1f GB/s, cross-numa %v/%.1f GB/s, network %v/%.2f GB/s\n",
				rpn, mode,
				m.Alpha[simnet.SameNUMA], m.GBps[simnet.SameNUMA],
				m.Alpha[simnet.CrossNUMA], m.GBps[simnet.CrossNUMA],
				m.Alpha[simnet.Network], m.GBps[simnet.Network])
		}
	}
	m := simnet.SuperMUC(16, true)
	fmt.Fprintf(o.Out, "compute: %.1f ns/compare (sort), %.1f ns/elem/level (merge), %.1f ns/elem (scan), %.0f GB/s memcpy\n",
		m.CompareNs, m.MergeNs, m.ScanNs, m.MemGBps)
	return nil
}

// Iters prints the §V-A iteration-count study: histogramming iterations are
// bounded by the key width (~64 for full-range 64-bit keys, ~30 for 32-bit
// or span-limited keys) and independent of the processor count.
func Iters(o Options) error {
	fmt.Fprintf(o.Out, "§V-A — histogramming iterations until all splitters are found (eps = 0)\n\n")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "keys\tdistribution\tP=4\tP=16\tP=64\n")

	type config struct {
		name string
		dist workload.Distribution
		span uint64
		bits int // key embedding width; 0 = uint64 full range
	}
	configs := []config{
		{"uint64 full range", workload.Uniform, 0, 64},
		{"uint64 in [0,1e9]", workload.Uniform, 1e9, 30},
		{"uint64 normal", workload.Normal, 0, 64},
		{"uint32", workload.Uniform, 1 << 31, 32},
		{"float32", workload.Uniform, 1 << 22, 32},
	}
	perRank := 2048
	for _, cfg := range configs {
		fmt.Fprintf(tw, "%s\t%s", cfg.name, cfg.dist)
		for _, p := range []int{4, 16, 64} {
			n, err := measureIters(cfg.dist, cfg.span, cfg.name, p, perRank, o.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%d", n)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected (paper): bounded by the key width (60-64 for 64-bit, 25-35 for\n")
	fmt.Fprintf(o.Out, "32-bit), ~30 for the [0,1e9] span, and independent of P.\n")
	return nil
}

// measureIters runs only the splitter phase on raw keys (no uniqueness
// triples, matching the paper's §V-A accounting) and returns the iteration
// count.
func measureIters(dist workload.Distribution, span uint64, kind string, p, perRank int, seed uint64) (int, error) {
	w, err := comm.NewWorld(p, nil)
	if err != nil {
		return 0, err
	}
	iters := make([]int, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: dist, Seed: seed + 7, Span: span}
		raw, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		targets := make([]int64, p-1)
		for i := range targets {
			targets[i] = int64((i + 1) * perRank)
		}
		var n int
		switch kind {
		case "uint32":
			local := make([]uint32, len(raw))
			for i, v := range raw {
				local[i] = uint32(v)
			}
			sortutil.Sort(local, keys.Uint32{}.Less)
			_, n = core.FindSplitters[uint32](c, local, keys.Uint32{}, targets, 0, core.Config{Threads: 1})
		case "float32":
			local := make([]float32, len(raw))
			for i, v := range raw {
				local[i] = float32(v) / 3.7
			}
			sortutil.Sort(local, keys.Float32{}.Less)
			_, n = core.FindSplitters[float32](c, local, keys.Float32{}, targets, 0, core.Config{Threads: 1})
		default:
			local := append([]uint64(nil), raw...)
			sortutil.Sort(local, keys.Uint64{}.Less)
			_, n = core.FindSplitters[uint64](c, local, keys.Uint64{}, targets, 0, core.Config{Threads: 1})
		}
		mu.Lock()
		iters[c.Rank()] = n
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return iters[0], nil
}

// MergeStudy prints the §VI-E k-way merge comparison: merging time per
// element for the binary merge tree, the tournament (loser) tree, and the
// parallel re-sort, over chunk counts and worker budgets.  The paper's
// finding: many small chunks degrade merging (cache misses) until re-sort
// wins.  Measurements are real wall-clock times on this machine; the
// chunk-count trend is hardware-independent.
func MergeStudy(o Options) error {
	totalKeys := 1 << 21
	if o.Full {
		totalKeys = 1 << 23
	}
	fmt.Fprintf(o.Out, "§VI-E — k-way merge study, %d uint32 keys (real measurements, GOMAXPROCS=%d)\n\n",
		totalKeys, runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "chunks\tthreads\tbinary-tree ns/elem\ttournament ns/elem\tresort ns/elem\tbest\n")

	less := func(a, b uint32) bool { return a < b }
	for _, k := range []int{2, 8, 32, 128, 512} {
		// Equal-size sorted chunks of uniform keys, as in §VI-E.
		src := prng.NewXoshiro256(o.Seed + uint64(k))
		runs := make([][]uint32, k)
		for i := range runs {
			r := make([]uint32, totalKeys/k)
			for j := range r {
				r[j] = uint32(src.Uint64())
			}
			sortutil.Sort(r, less)
			runs[i] = r
		}
		for _, threads := range []int{1, 2, 4} {
			best, bestAlg := time.Duration(1<<62), psort.MergeAlgorithm("")
			var cells [3]float64
			for i, alg := range psort.MergeAlgorithms {
				start := time.Now()
				out := psort.MergeK(alg, runs, less, threads)
				el := time.Since(start)
				if len(out) != totalKeys {
					return fmt.Errorf("merge %s lost elements", alg)
				}
				cells[i] = float64(el.Nanoseconds()) / float64(totalKeys)
				if el < best {
					best, bestAlg = el, alg
				}
			}
			fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\t%.1f\t%s\n", k, threads, cells[0], cells[1], cells[2], bestAlg)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected (paper): merging few large chunks is cheap; many small chunks\n")
	fmt.Fprintf(o.Out, "degrade tree merges until the parallel re-sort wins.\n")
	return nil
}

// NormalStudy prints the §VI-B robustness comparison: on normally
// distributed keys the Charm++ HSS histogramming became volatile (it
// failed to terminate within the 30-minute wall clock), while bisection
// refinement is distribution-oblivious.  The experiment reports iteration
// counts over several seeds.
func NormalStudy(o Options) error {
	p, perRank := 64, 1024
	model := simnet.SuperMUC(16, true)
	fmt.Fprintf(o.Out, "§VI-B — normal-distribution robustness, P=%d, %d keys/rank, %d seeds\n\n", p, perRank, o.reps())
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "seed\tdhsort iters\tdhsort s\thss iters\thss s\n")

	var dhMin, dhMax, hsMin, hsMax int
	for rep := 0; rep < o.reps(); rep++ {
		spec := workload.Spec{Dist: workload.Normal, Seed: o.Seed + uint64(rep)*97, Span: 1e9}
		dh, err := runOnce(dhsortSorter(o.threads()), p, perRank, model, 1024, spec)
		if err != nil {
			return err
		}
		hs, err := runOnce(hssSorter(o.threads()), p, perRank, model, 1024, spec)
		if err != nil {
			return err
		}
		di, hi := dh.Phases.MaxIterations, hs.Phases.MaxIterations
		if rep == 0 {
			dhMin, dhMax, hsMin, hsMax = di, di, hi, hi
		}
		dhMin, dhMax = minInt(dhMin, di), maxInt(dhMax, di)
		hsMin, hsMax = minInt(hsMin, hi), maxInt(hsMax, hi)
		fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%s\n", rep, di, seconds(dh.Makespan), hi, seconds(hs.Makespan))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\niteration spread: dhsort %d-%d (distribution-oblivious bisection), hss %d-%d\n",
		dhMin, dhMax, hsMin, hsMax)
	return nil
}

// PGAS prints the intra-node transport ablation: the same strong-scaling
// point priced with MPI-3 shared-memory windows (DASH's memcpy fast path,
// §VI-A1) versus a conventional MPI stack.
func PGAS(o Options) error {
	realTotal := 1 << 19
	scale := float64(strongVirtualTotal) / float64(realTotal)
	fmt.Fprintf(o.Out, "ablation — PGAS shared-memory windows vs pure MPI intra-node pricing\n\n")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cores\tnodes\tPGAS s\tMPI s\tPGAS gain\n")
	for _, p := range []int{16, 64, 256} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + uint64(p), Span: 1e9}
		pg, err := runOnce(dhsortSorter(o.threads()), p, realTotal/p, simnet.SuperMUC(16, true), scale, spec)
		if err != nil {
			return err
		}
		mp, err := runOnce(dhsortSorter(o.threads()), p, realTotal/p, simnet.SuperMUC(16, false), scale, spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%.1f%%\n", p, (p+15)/16,
			seconds(pg.Makespan), seconds(mp.Makespan),
			100*(1-float64(pg.Makespan)/float64(mp.Makespan)))
	}
	return tw.Flush()
}

// Baselines runs every distributed sorter of this repository on one
// mid-size configuration — the cross-algorithm summary the related-work
// discussion (§III) motivates.
func Baselines(o Options) error {
	p, perRank := 64, 2048
	model := simnet.SuperMUC(16, true)
	scale := 1024.0
	fmt.Fprintf(o.Out, "ablation — all sorters, P=%d, %d keys/rank (x%d virtual), uniform [0,1e9]\n\n", p, perRank, int(scale))
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\tmedian s\t[CI]\tnetwork GiB\timbalance\tnote\n")
	sorters := []struct {
		s    sorter
		note string
	}{
		{dhsortSorter(o.threads()), "this paper; one data move, perfect partitioning"},
		{hssSorter(o.threads()), "Charm++ comparator [1]; sampled probes"},
		{samplesortSorter(), "single-round sampling; approximate balance"},
		{hyksortSorter(), "recursive comm splits [20]"},
		{bitonicSorter(), "sorting network; moves data log P times"},
	}
	for _, entry := range sorters {
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + 5, Span: 1e9}
		sum, _, err := series(entry.s, p, perRank, model, scale, spec, o.reps())
		if err != nil {
			return err
		}
		// One representative run for volume and balance accounting.
		vol, imbalance, err := volumeAndBalance(entry.s, p, perRank, model, scale, spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t[%s,%s]\t%.2f\t%.2f\t%s\n", entry.s.name,
			seconds(sum.Median), seconds(sum.CILow), seconds(sum.CIHigh),
			float64(vol)/(1<<30), imbalance, entry.note)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nimbalance = worst rank load / ideal load; the paper's algorithm buys\n")
	fmt.Fprintf(o.Out, "perfect partitioning (1.00) at the cost of the extra merge pass, with no\n")
	fmt.Fprintf(o.Out, "constraints on P or the key distribution (bitonic requires 2^k ranks).\n")
	return nil
}

// volumeAndBalance reruns one configuration and reports the cross-node
// bytes and the worst-rank load imbalance factor.
func volumeAndBalance(s sorter, p, perRank int, model *simnet.CostModel, scale float64, spec workload.Spec) (int64, float64, error) {
	w, err := comm.NewWorld(p, model)
	if err != nil {
		return 0, 0, err
	}
	maxLoad := 0
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		var rec *metrics.Recorder
		out, err := s.run(c, local, scale, rec, spec.Seed)
		if err != nil {
			return err
		}
		mu.Lock()
		if len(out) > maxLoad {
			maxLoad = len(out)
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	st := w.TotalStats()
	return st.NetworkBytes(), float64(maxLoad) / float64(perRank), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
