package bench

import (
	"fmt"
	"math"
	"text/tabwriter"
	"time"

	"dhsort/internal/core"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// Fig. 4 (§VI-D): one SuperMUC node, 5 GB of normally distributed doubles,
// strong scaling from 7 to 28 cores across 1 to 4 NUMA domains.  dhsort
// runs for real under the NUMA-priced cost model; the Intel Parallel STL
// (TBB) and OpenMP task merge sort competitors are analytic models of the
// same machine (documented below and in DESIGN.md §1).

const (
	fig4VirtualKeys = int64(5) << 30 / 8 // 5 GB of float64 keys
	fig4CoresPerDom = 7
)

// sharedMergeSortTime models a multi-pass shared-memory merge sort (the
// TBB parallel stable sort of the Intel PSTL, or the OpenMP task variant)
// on n keys with the given thread count spread over d NUMA domains.
//
// The model follows the paper's own argument for why one-move sorting wins
// across NUMA domains (§I, §VI-D):
//
//   - compute: n·log2(n) compare-moves spread over the threads, with a
//     hyperthreading yield of 1.25 (the paper runs 2 threads/core);
//   - memory: merge levels whose runs exceed the last-level cache stream
//     the whole array (16 bytes/key read+write) from memory on every pass;
//   - NUMA: task-stealing schedulers have no domain affinity, so with d
//     domains a fraction (d-1)/d of streamed accesses cross the
//     interconnect at its lower bandwidth.
func sharedMergeSortTime(n int64, threads, domains int, m *simnet.CostModel, taskOverhead float64) time.Duration {
	if n < 2 {
		return 0
	}
	const (
		llcKeys        = 2 << 20 // runs beyond ~2M keys (16 MB) stream from memory
		localGBperDom  = 10.0    // stream bandwidth per NUMA domain, GB/s
		remoteGB       = 6.0     // effective cross-domain stream under contention, GB/s
		htYield        = 1.25    // hyperthreading throughput gain
		bytesPerForKey = 16.0    // read + write per key per pass
	)
	eff := float64(threads) * htYield / 2 // threads = 2/core: cores × yield
	compute := m.CompareNs * float64(n) * math.Log2(float64(n)) / eff * taskOverhead

	streamLevels := math.Log2(float64(n) / float64(llcKeys))
	if streamLevels < 1 {
		streamLevels = 1
	}
	// Blended streaming bandwidth: local share at d·local, remote share
	// over the shared interconnect.
	local := float64(domains) * localGBperDom
	remoteFrac := float64(domains-1) / float64(domains)
	bw := 1 / ((1-remoteFrac)/local + remoteFrac/remoteGB)
	memory := streamLevels * float64(n) * bytesPerForKey / bw // ns (GB/s == bytes/ns)

	// Partial compute/memory overlap: the dominant resource plus 30% of
	// the other (task scheduling prevents perfect overlap).
	hi, lo := compute, memory
	if memory > compute {
		hi, lo = memory, compute
	}
	return time.Duration(hi + 0.3*lo)
}

// Fig4 prints the shared-memory study: dhsort (MPI-rank style, PGAS
// pricing, one data move) against the TBB PSTL and OpenMP task merge sort
// models, from 1 to 4 NUMA domains.  Expected shape (paper): the
// shared-memory sorts win inside one domain; dhsort wins as soon as data
// crosses domain boundaries.
func Fig4(o Options) error {
	realTotal := 1 << 17
	if o.Full {
		realTotal = 1 << 19
	}
	scale := float64(fig4VirtualKeys) / float64(realTotal)
	model := simnet.SuperMUC(4*fig4CoresPerDom, true)

	fmt.Fprintf(o.Out, "Fig. 4 — shared memory, one node, 5 GB normal float64 keys (virtual), 1-4 NUMA domains\n")
	fmt.Fprintf(o.Out, "dhsort: %d ranks/domain under the PGAS cost model; PSTL/OpenMP: analytic same-machine models\n", fig4CoresPerDom)
	fmt.Fprintf(o.Out, "(dhsort column: comparison local kernel, as in the paper's std::sort implementation;\n")
	fmt.Fprintf(o.Out, "+radix column: the same run with the LSD radix local kernel)\n\n")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "domains\tcores\tdhsort s\t+radix s\tPSTL(TBB) s\tOpenMP s\twinner\n")

	for d := 1; d <= 4; d++ {
		p := d * fig4CoresPerDom
		spec := workload.Spec{Dist: workload.Normal, Seed: o.Seed + uint64(d), Span: 1e9}
		// Paper-faithful run: comparison local sort, like the std::sort the
		// paper's implementation used; the winner column reproduces the
		// published crossover.
		pt, err := runOnceCfg(p, realTotal/p, model, spec,
			core.Config{Kernel: core.KernelIntrosort, VirtualScale: scale, Threads: o.threads()})
		if err != nil {
			return err
		}
		// The same configuration with the automatic dispatch (radix on
		// uint64 workload keys) — this reproduction's fast path.
		rx, err := runOnceCfg(p, realTotal/p, model, spec,
			core.Config{VirtualScale: scale, Threads: o.threads()})
		if err != nil {
			return err
		}
		threads := 2 * p // hyperthreading, as in the paper
		tbb := sharedMergeSortTime(fig4VirtualKeys, threads, d, model, 1.0)
		omp := sharedMergeSortTime(fig4VirtualKeys, threads, d, model, 1.2)
		winner := "dhsort"
		if tbb < pt.Makespan && tbb <= omp {
			winner = "PSTL"
		} else if omp < pt.Makespan && omp < tbb {
			winner = "OpenMP"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
			d, p, seconds(pt.Makespan), seconds(rx.Makespan), seconds(tbb), seconds(omp), winner)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected shape (paper §VI-D): PSTL wins on 1 domain; dhsort wins once data\n")
	fmt.Fprintf(o.Out, "crosses NUMA boundaries, because it moves every element exactly once.  The\n")
	fmt.Fprintf(o.Out, "radix local kernel (see -exp local) closes most of the 1-domain gap.\n")
	return nil
}

// machineModel returns the cost model used by the shared-memory study
// (exposed for the model-shape tests).
func machineModel() *simnet.CostModel { return simnet.SuperMUC(28, true) }
