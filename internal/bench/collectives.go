package bench

import (
	"fmt"
	"text/tabwriter"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/hss"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/sortutil"
	"dhsort/internal/workload"
)

// Collectives prints the modelled latency of the runtime's collective
// operations versus rank count — the building-block costs behind the
// histogramming analysis of §V-A (one ALLREDUCE per iteration) and the
// exchange analysis of §V-B (two ALLTOALLs plus the ALLTOALLV).
func Collectives(o Options) error {
	fmt.Fprintf(o.Out, "runtime collectives — modelled latency per operation (16 ranks/node, PGAS)\n")
	fmt.Fprintf(o.Out, "payload: 2(P-1) int64 histogram vector for allreduce (the splitter-search\n")
	fmt.Fprintf(o.Out, "message); 16 bytes/peer for alltoall (the bounds exchange)\n\n")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "ranks\tbarrier\tbcast\tallreduce\tallgather\talltoall\n")

	points := []int{16, 64, 256}
	if o.Full {
		points = append(points, 1024, 2048)
	}
	for _, p := range points {
		model := simnet.SuperMUC(16, true)
		timings := make([]time.Duration, 5)
		w, err := comm.NewWorld(p, model)
		if err != nil {
			return err
		}
		err = w.Run(func(c *comm.Comm) error {
			vec := make([]int64, 2*(p-1))
			mark := func(slot int) {
				comm.Barrier(c) // isolate the operation
				if c.Rank() == 0 {
					timings[slot] -= c.Clock().Now()
				}
			}
			done := func(slot int) {
				comm.Barrier(c)
				if c.Rank() == 0 {
					timings[slot] += c.Clock().Now()
				}
			}

			mark(0)
			comm.Barrier(c)
			done(0)

			mark(1)
			comm.Bcast(c, 0, vec)
			done(1)

			mark(2)
			comm.Allreduce(c, vec, func(a, b int64) int64 { return a + b })
			done(2)

			mark(3)
			comm.AllgatherOne(c, int64(c.Rank()))
			done(3)

			mark(4)
			blocks := make([][]int64, p)
			for i := range blocks {
				blocks[i] = []int64{1, 2}
			}
			comm.Alltoall(c, blocks)
			done(4)
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\t%v\n", p,
			timings[0].Round(time.Microsecond), timings[1].Round(time.Microsecond),
			timings[2].Round(time.Microsecond), timings[3].Round(time.Microsecond),
			timings[4].Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected: log-P growth for barrier/bcast/allreduce/allgather; linear-in-P\n")
	fmt.Fprintf(o.Out, "for the pairwise alltoall — why histogramming amortizes until P is large.\n")
	return nil
}

// Splitters compares the three splitter-determination strategies on the
// same workload: the paper's bit-bisection histogramming, the sampled
// interpolation of HSS [1], and repeated distributed selection (the direct
// k-way-selection framing of §II) — quantifying why the paper's method
// wins.
func Splitters(o Options) error {
	p, perRank := 64, 2048
	model := simnet.SuperMUC(16, true)
	fmt.Fprintf(o.Out, "ablation — splitter determination strategies, P=%d, %d keys/rank\n\n", p, perRank)
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "distribution\thistogram s\tsampled (HSS) s\tselection s\n")

	for _, dist := range []workload.Distribution{workload.Uniform, workload.Normal, workload.Zipf} {
		spec := workload.Spec{Dist: dist, Seed: o.Seed + 11, Span: 1e9}
		row := make([]time.Duration, 3)
		for slot, method := range []string{"histogram", "sampled", "selection"} {
			w, err := comm.NewWorld(p, model)
			if err != nil {
				return err
			}
			err = w.Run(func(c *comm.Comm) error {
				local, err := spec.Rank(c.Rank(), perRank)
				if err != nil {
					return err
				}
				sorted := append([]uint64(nil), local...)
				sortutil.Sort(sorted, keys.Uint64{}.Less)
				targets := make([]int64, p-1)
				for i := range targets {
					targets[i] = int64((i + 1) * perRank)
				}
				start := c.Clock().Now()
				switch method {
				case "histogram":
					core.FindSplitters(c, sorted, keys.Uint64{}, targets, 0, core.Config{Threads: 1})
				case "sampled":
					hss.FindSplittersSampled(c, sorted, keys.Uint64{}, targets, 0,
						hss.Config{Seed: o.Seed, Threads: 1})
				case "selection":
					if _, err := core.FindSplittersViaSelection(c, local, keys.Uint64{}, targets, core.Config{Threads: 1}); err != nil {
						return err
					}
				}
				if c.Rank() == 0 {
					row[slot] = c.Clock().Now() - start
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", dist, seconds(row[0]), seconds(row[1]), seconds(row[2]))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected: histogramming and sampling are close (sampling converges in\n")
	fmt.Fprintf(o.Out, "fewer rounds on friendly data); repeated selection pays O(P) selections\n")
	fmt.Fprintf(o.Out, "of O(log P) rounds each and loses by orders of magnitude.\n")
	return nil
}
