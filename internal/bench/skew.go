package bench

import (
	"fmt"

	"dhsort/internal/samplesort"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
)

// samplesortTieBreakSorter is samplesort with the (key, rank, index)
// tie-break engaged: duplicate runs become globally unique triples, so
// splitters can land inside a run and the PGX.D-style flood collapse
// disappears at the price of 8 extra wire bytes per key.
func samplesortTieBreakSorter() sorter {
	return sorter{"samplesort+tb", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, seed uint64) ([]uint64, error) {
		return samplesort.Sort(c, local, keys.Uint64{}, samplesort.Config{
			Variant: samplesort.RegularSampling, VirtualScale: scale, Recorder: rec, Seed: seed, TieBreak: true})
	}}
}

// SkewStudy measures output imbalance against duplicate-flood intensity —
// the PGX.D failure mode: a value holding a constant fraction of the input
// defeats value-only splitters, because every copy compares equal and lands
// on one rank.  Three partitioning strategies are compared:
//
//   - samplesort: value-only sampled splitters — collapses as the flood grows
//   - samplesort+tb: the same splitters over (key, rank, index) triples —
//     splitters cut inside the duplicate run, imbalance stays bounded
//   - dhsort: histogram splitting with Algorithm-4 boundary refinement —
//     count-exact by construction, the flood never shows
func SkewStudy(o Options) error {
	const p, perRank = 16, 2048
	model := simnet.SuperMUC(suiteRanksPerNode, true)
	sorters := []sorter{samplesortSorter(), samplesortTieBreakSorter(), dhsortSorter(o.threads())}
	fracs := []float64{0, 0.25, 0.5, 0.75, 0.9}

	fmt.Fprintf(o.Out, "output imbalance (max/mean) vs duplicate-flood fraction, p=%d n/p=%d\n", p, perRank)
	fmt.Fprintf(o.Out, "%-8s", "flood")
	for _, s := range sorters {
		fmt.Fprintf(o.Out, " %14s", s.name)
	}
	fmt.Fprintln(o.Out)
	for _, frac := range fracs {
		spec := workload.Spec{Dist: workload.DuplicateFlood, Seed: o.Seed, Span: 1e9, FloodFrac: frac}
		if frac == 0 {
			// FloodFrac zero means "default fraction", so the flood-free
			// baseline row uses the uniform workload instead.
			spec = workload.Spec{Dist: workload.Uniform, Seed: o.Seed, Span: 1e9}
		}
		fmt.Fprintf(o.Out, "%-8.2f", frac)
		for _, s := range sorters {
			pt, err := runOnce(s, p, perRank, model, 1, spec)
			if err != nil {
				return fmt.Errorf("skew %s flood=%.2f: %w", s.name, frac, err)
			}
			fmt.Fprintf(o.Out, " %14.2f", pt.Phases.OutputImbalance)
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintf(o.Out, "\nexpected shape: samplesort rises toward p·frac as the flood value\n")
	fmt.Fprintf(o.Out, "collapses onto one rank; samplesort+tb and dhsort stay near 1.\n")
	return nil
}
