package bench

import (
	"fmt"
	"text/tabwriter"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// Overlap is the §VI-E1 ablation: the paper sketches replacing the
// monolithic ALLTOALLV + merge with explicit exchange rounds that merge
// received chunks while later transfers are in flight, and with schedule
// choices (store-and-forward for small N/P, 1-factor for large).  This
// experiment compares the merge strategies and exchange schedules under
// the cost model.
func Overlap(o Options) error {
	model := simnet.SuperMUC(16, true)
	realTotal := 1 << 19
	scale := float64(strongVirtualTotal) / float64(realTotal)

	fmt.Fprintf(o.Out, "ablation — exchange/merge strategies (§V-C, §VI-E1), N = 2^31 keys (virtual)\n\n")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cores\tresort s\tbinary-tree s\tloser-tree s\toverlap s\tbruck-exchange s\thierarchical s\n")

	for _, p := range []int{64, 256} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + uint64(p), Span: 1e9}
		row := make([]string, 0, 6)
		for _, cfg := range []core.Config{
			{Merge: core.MergeResort, VirtualScale: scale},
			{Merge: core.MergeBinaryTree, VirtualScale: scale},
			{Merge: core.MergeLoserTree, VirtualScale: scale},
			{Merge: core.MergeOverlap, VirtualScale: scale},
			{Merge: core.MergeLoserTree, Exchange: comm.AlltoallBruck, VirtualScale: scale},
			{Merge: core.MergeLoserTree, Exchange: comm.AlltoallHierarchical, VirtualScale: scale},
		} {
			pt, err := runOnceCfg(p, realTotal/p, model, spec, cfg)
			if err != nil {
				return err
			}
			row = append(row, seconds(pt.Makespan))
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n", p, row[0], row[1], row[2], row[3], row[4], row[5])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected: tree merges beat re-sort on modelled time; the fused overlap\n")
	fmt.Fprintf(o.Out, "exchange hides transfer latency behind merging; Bruck pays log-P extra\n")
	fmt.Fprintf(o.Out, "volume and leader-based aggregation serializes the node's bulk volume\n")
	fmt.Fprintf(o.Out, "through one NIC flow — both lose on large blocks and pay off only in\n")
	fmt.Fprintf(o.Out, "the message-dominated regime (see -exp collectives).\n")
	return nil
}

// runOnceCfg runs a single dhsort configuration under the model.  An
// unset thread budget is pinned to 1 so modelled times never depend on
// the host's GOMAXPROCS.
func runOnceCfg(p, perRank int, model *simnet.CostModel, spec workload.Spec, cfg core.Config) (point, error) {
	s := sorter{"dhsort", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		cc := cfg
		cc.Recorder = rec
		if cc.Threads <= 0 {
			cc.Threads = 1
		}
		return core.Sort(c, local, keys.Uint64{}, cc)
	}}
	return runOnce(s, p, perRank, model, cfg.VirtualScale, spec)
}
