package bench

import (
	"fmt"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// dhsortSpillSorter is dhsort under a per-rank memory budget: local sort
// seals sorted runs into a run-private store when the working set exceeds
// the budget, the exchange stages incoming segments through spill files and
// the final merge streams k-way from the runs.  The store is in-memory, so
// the suite stays hermetic (no scratch files) while exercising the exact
// external-memory schedule; cost-model pricing depends only on element
// counts, so the makespan isolates the spilled schedule, not host I/O.
func dhsortSpillSorter(threads int, budget int64, fanIn int) sorter {
	name := "dhsort-spill"
	if fanIn > 0 {
		name = fmt.Sprintf("dhsort-spill-f%d", fanIn)
	}
	return sorter{name, func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		return core.Sort(c, local, keys.Uint64{}, core.Config{
			VirtualScale: scale, Threads: threads, Recorder: rec,
			MemBudget: budget, SpillFanIn: fanIn,
		})
	}}
}

// OOCStudy is the out-of-core ablation: dhsort with a per-rank memory
// budget of one eighth of the input against the fully resident run, with
// the merge fan-in swept over the spilled configurations.  A smaller fan-in
// means more merge passes over the same records (more scratch traffic); the
// virtual makespan moves only through the merge's comparison costs because
// store I/O itself is unpriced — the table isolates the schedule change.
func OOCStudy(o Options) error {
	const perRank = 4096
	budget := int64(perRank) // perRank keys x 8 B, divided by 8
	model := simnet.SuperMUC(suiteRanksPerNode, true)

	for _, p := range []int{16, 64} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed, Span: 1e9}
		fmt.Fprintf(o.Out, "out-of-core spill vs fan-in, p=%d n/p=%d budget=%dB/rank (1/8 of input)\n", p, perRank, budget)
		fmt.Fprintf(o.Out, "%-18s %14s %14s %12s %12s\n", "config", "merge", "makespan", "runs", "scratchMiB")

		base, err := runOnce(dhsortSorter(o.threads()), p, perRank, model, 1, spec)
		if err != nil {
			return fmt.Errorf("ooc p=%d resident: %w", p, err)
		}
		fmt.Fprintf(o.Out, "%-18s %12dns %12dns %12d %12.2f\n", "resident",
			base.Phases.Times[metrics.Merge].Nanoseconds(), base.Makespan.Nanoseconds(), int64(0), 0.0)

		for _, fanIn := range []int{2, 4, 8, 16} {
			pt, err := runOnce(dhsortSpillSorter(o.threads(), budget, fanIn), p, perRank, model, 1, spec)
			if err != nil {
				return fmt.Errorf("ooc p=%d fan-in=%d: %w", p, fanIn, err)
			}
			fmt.Fprintf(o.Out, "%-18s %12dns %12dns %12d %12.2f  (%.2fx makespan vs resident)\n",
				fmt.Sprintf("spill fan-in=%d", fanIn),
				pt.Phases.Times[metrics.Merge].Nanoseconds(), pt.Makespan.Nanoseconds(),
				pt.Phases.SpilledRuns, float64(pt.Phases.SpillBytes)/(1<<20),
				float64(pt.Makespan)/float64(base.Makespan))
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintf(o.Out, "expected shape: output stays bit-identical to the resident run at every\n")
	fmt.Fprintf(o.Out, "fan-in; scratch traffic falls monotonically as the fan-in widens (fewer\n")
	fmt.Fprintf(o.Out, "reduction passes), while the modelled merge time trades pass count\n")
	fmt.Fprintf(o.Out, "against tournament width around a few percent over the resident run.\n")
	return nil
}
