package bench

import (
	"fmt"
	"sync"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/hss"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/stats"
	"dhsort/internal/workload"
)

// runOnceResilient is runOnceFaults for schedules with permanent rank
// deaths: the sort runs through SortResilient under the given recovery
// mode, recorders are registered before sorting (a victim never returns,
// but its fault tallies must survive), and the output invariant is
// verified on the effective communicator the result lives on.  alg selects
// the resilient sorter ("dhsort" or "hss" — the only ones with a shrink
// path).
func runOnceResilient(alg string, p, perRank int, model *simnet.CostModel, scale float64, spec workload.Spec, plan fault.Plan, recovery string, threads int) (point, error) {
	w, err := comm.NewWorldWithFaults(p, model, plan)
	if err != nil {
		return point{}, err
	}
	recs := make([]*metrics.Recorder, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		var out []uint64
		eff := c
		switch alg {
		case "dhsort":
			out, eff, err = core.SortResilient(c, local, keys.Uint64{}, core.Config{
				VirtualScale: scale, Threads: threads, Recorder: rec, Recovery: recovery,
			})
		case "hss":
			out, eff, err = hss.SortResilient(c, local, keys.Uint64{}, hss.Config{
				VirtualScale: scale, Threads: threads, Recorder: rec, Recovery: recovery, Seed: spec.Seed,
			})
		default:
			return fmt.Errorf("no resilient path for algorithm %q", alg)
		}
		if err != nil {
			return err
		}
		rec.Finish()
		rec.SetElements(len(local), len(out))
		if !core.IsGloballySorted(eff, out, keys.Uint64{}) {
			return fmt.Errorf("%s produced an unsorted result", alg)
		}
		return nil
	})
	if err != nil {
		return point{}, err
	}
	return point{Makespan: w.Makespan(), Phases: metrics.Summarize(recs)}, nil
}

// measurePointResilient is measurePoint through the resilient runner; the
// record carries the recovery mode it ran under.
func measurePointResilient(alg string, p, perRank int, model *simnet.CostModel, spec workload.Spec, reps int, plan fault.Plan, recovery string, threads int) (metrics.Record, error) {
	makespans := make([]time.Duration, 0, reps)
	var summary metrics.Summary
	for rep := 0; rep < reps; rep++ {
		sp := spec
		sp.Seed = spec.Seed + uint64(rep)*1000003
		pt, err := runOnceResilient(alg, p, perRank, model, 1, sp, plan, recovery, threads)
		if err != nil {
			return metrics.Record{}, err
		}
		makespans = append(makespans, pt.Makespan)
		if rep == 0 {
			summary = pt.Phases
		}
	}
	rec := metrics.NewRecord(alg, p, perRank, string(spec.Dist), makespans, summary)
	rec.Recovery = recovery
	return rec, nil
}

// ShrinkStudy is an EXTENSION, not a paper figure: the graceful-degradation
// comparison of the two recovery mechanisms.  Crash schedules respawn from
// superstep checkpoints and finish on all P ranks; death schedules revoke,
// agree, adopt the victim's ring-mirrored shard and finish on the
// survivors.  Every row verifies the sorted-output invariant on the
// communicator the result lives on — degradation costs time and (for
// shrink) ranks, never correctness.
func ShrinkStudy(o Options) error {
	p, perRank := 16, 4096
	if o.Full {
		p, perRank = 64, 16384
	}
	model := simnet.SuperMUC(suiteRanksPerNode, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed, Span: 1e9}

	type cfgRow struct {
		label    string
		recovery string
		plan     fault.Plan
	}
	rows := []cfgRow{
		{"fault-free", core.RecoveryRespawn, fault.Plan{}},
		{"crash x1 (respawn)", core.RecoveryRespawn, fault.Plan{Seed: o.Seed,
			Crashes: []fault.Crash{{Rank: p / 3, Step: core.StepSplitting}}}},
		{"crash x2 (respawn)", core.RecoveryRespawn, fault.Plan{Seed: o.Seed,
			Crashes: []fault.Crash{{Rank: p / 3, Step: core.StepSplitting}, {Rank: 2 * p / 3, Step: core.StepCuts}}}},
		{"die x1 (shrink)", core.RecoveryShrink, fault.Plan{Seed: o.Seed,
			Deaths: []fault.Death{{Rank: p / 3, Step: core.StepLocalSort}}}},
		{"die x2 (shrink)", core.RecoveryShrink, fault.Plan{Seed: o.Seed,
			Deaths: []fault.Death{{Rank: p / 3, Step: core.StepLocalSort}, {Rank: 2 * p / 3, Step: core.StepSplitting}}}},
		{"die x1 + drop=0.02 (shrink)", core.RecoveryShrink, fault.Plan{Seed: o.Seed, DropRate: 0.02,
			Deaths: []fault.Death{{Rank: p / 3, Step: core.StepLocalSort}}}},
	}

	fmt.Fprintf(o.Out, "graceful degradation — dhsort, p=%d, %d keys/rank, uniform (modelled SuperMUC time; extension, no paper figure)\n", p, perRank)
	fmt.Fprintf(o.Out, "%-28s %12s %9s %7s %7s %10s %10s\n",
		"schedule", "makespan", "overhead", "deaths", "agree", "shrink", "survivors")

	var base time.Duration
	for _, r := range rows {
		runs := make([]time.Duration, 0, o.reps())
		var sum metrics.Summary
		for rep := 0; rep < o.reps(); rep++ {
			sp := spec
			sp.Seed = spec.Seed + uint64(rep)*1000003
			pt, err := runOnceResilient("dhsort", p, perRank, model, 1, sp, r.plan, r.recovery, o.threads())
			if err != nil {
				return fmt.Errorf("schedule %q: %w", r.label, err)
			}
			runs = append(runs, pt.Makespan)
			if rep == 0 {
				sum = pt.Phases
			}
		}
		m := stats.Summarize(runs)
		if base == 0 {
			base = m.Median
		}
		overhead := 100 * (float64(m.Median)/float64(base) - 1)
		survivors := p
		if sum.Survivors > 0 {
			survivors = sum.Survivors
		}
		fmt.Fprintf(o.Out, "%-28s %12v %+8.1f%% %7d %7d %10v %10d\n",
			r.label, m.Median.Round(time.Microsecond), overhead,
			sum.Fault.Deaths, sum.Fault.AgreeRounds,
			time.Duration(sum.Fault.ShrinkNS).Round(time.Microsecond), survivors)
	}
	return nil
}
