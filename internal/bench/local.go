package bench

import (
	"fmt"
	"runtime"
	"text/tabwriter"
	"time"

	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/prng"
	"dhsort/internal/psort"
	"dhsort/internal/sortutil"
)

// LocalKernels is the intra-rank kernel ablation behind the Local Sort
// superstep: the same block of keys is sorted by the comparison introsort,
// the LSD radix fast path, and the fork-join task merge sort over a thread
// budget.  It is the microbenchmark companion to Fig. 4 (§VI-D): the paper's
// shared-memory competitors win or lose on exactly these intra-node
// kernel costs, and the radix path is what makes the one-move distributed
// sort competitive inside a single NUMA domain.
//
// Measurements are real wall-clock times on this machine; thread speedups
// require GOMAXPROCS > 1 to show.
func LocalKernels(o Options) error {
	sizes := []int{1 << 16, 1 << 20}
	if o.Full {
		sizes = append(sizes, 1<<22)
	}
	fmt.Fprintf(o.Out, "ablation — local sort kernels (real measurements, GOMAXPROCS=%d)\n\n", runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "keys\tintrosort ns/elem\tradix ns/elem\ttask-merge t=1\tt=2\tt=4\tbest\n")

	for _, n := range sizes {
		src := prng.NewXoshiro256(o.Seed + uint64(n))
		orig := make([]uint64, n)
		for i := range orig {
			orig[i] = src.Uint64()
		}
		work := make([]uint64, n)
		measure := func(sort func([]uint64)) float64 {
			copy(work, orig)
			start := time.Now()
			sort(work)
			el := time.Since(start)
			if !sortutil.IsSorted(work, keys.Uint64{}.Less) {
				panic("bench: local kernel produced an unsorted result")
			}
			return float64(el.Nanoseconds()) / float64(n)
		}

		intro := measure(func(a []uint64) { sortutil.Sort(a, keys.Uint64{}.Less) })
		radix := measure(sortutil.RadixSortUint64)
		var tm [3]float64
		for i, threads := range []int{1, 2, 4} {
			t := threads
			tm[i] = measure(func(a []uint64) { psort.ParallelTaskMergeSort(a, keys.Uint64{}.Less, t) })
		}
		best, bestNs := "introsort", intro
		for _, cand := range []struct {
			name string
			ns   float64
		}{{"radix", radix}, {"task-merge", tm[0]}, {"task-merge t=2", tm[1]}, {"task-merge t=4", tm[2]}} {
			if cand.ns < bestNs {
				best, bestNs = cand.name, cand.ns
			}
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%s\n", n, intro, radix, tm[0], tm[1], tm[2], best)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "\nkernel dispatch (core.LocalSort, threads=%d):\n", o.threads())
	tw = tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "key type\tkernel\tradix passes\n")
	n := 1 << 12
	src := prng.NewXoshiro256(o.Seed + 31)
	u := make([]uint64, n)
	f := make([]float64, n)
	s := make([]string, n)
	for i := range u {
		v := src.Uint64()
		u[i] = v
		f[i] = float64(int64(v)) / 3.7
		s[i] = fmt.Sprintf("%016x", v)
	}
	report := func(name, kernel string, passes int) {
		fmt.Fprintf(tw, "%s\t%s\t%d\n", name, kernel, passes)
	}
	k, passes := core.LocalSort(u, keys.Uint64{}, o.threads(), nil)
	report("uint64", k, passes)
	k, passes = core.LocalSort(f, keys.Float64{}, o.threads(), nil)
	report("float64", k, passes)
	k, passes = core.LocalSort(keys.MakeUnique(u, 3), keys.NewTripleOps[uint64](keys.Uint64{}), o.threads(), nil)
	report("triple[uint64]", k, passes)
	k, passes = core.LocalSort(s, keys.String{}, o.threads(), nil)
	report("string", k, passes)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\nexpected: radix wins on fixed-width keys (the executed pass count drops\n")
	fmt.Fprintf(o.Out, "further when the key span leaves high digits constant); variable-width\n")
	fmt.Fprintf(o.Out, "keys fall back to comparison sorting, fork-join when threads > 1.\n")
	return nil
}
