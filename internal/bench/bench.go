// Package bench regenerates every table and figure of the paper's
// evaluation (§VI).  Each experiment prints the same rows or series the
// paper reports; EXPERIMENTS.md records the expected shapes and the
// paper-vs-measured comparison.
//
// Scaling experiments run under the simnet virtual clock: the algorithms
// execute for real (data moves, histograms iterate, results are verified)
// on reduced element counts, while Config.VirtualScale prices the bulk
// phases at the paper's data volumes.  Reported times are therefore modeled
// SuperMUC times, expected to match the paper in *shape*, not in absolute
// microseconds.
package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dhsort/internal/bitonic"
	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/hss"
	"dhsort/internal/hyksort"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/samplesort"
	"dhsort/internal/simnet"
	"dhsort/internal/stats"
	"dhsort/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Out receives the experiment's table.
	Out io.Writer
	// Reps is the number of repetitions per point (different workload
	// seeds); 0 means 3.  The paper uses 10.
	Reps int
	// Full selects the paper-scale parameter sweep; the default is a
	// reduced sweep that finishes in a few minutes.
	Full bool
	// Seed is the base workload seed.
	Seed uint64
	// Threads is the intra-rank worker budget handed to the dhsort/hss
	// compute kernels (core.Config.Threads).  0 means 1: experiments pin
	// the budget rather than inherit GOMAXPROCS so virtual-clock tables
	// are identical on every machine.
	Threads int
	// Fault is a seeded failure schedule (zero = fault-free).  The fault
	// experiment runs it as an extra measured row on top of its built-in
	// degradation grid; other text experiments ignore it.
	Fault fault.Plan
}

func (o Options) reps() int {
	if o.Reps <= 0 {
		return 3
	}
	return o.Reps
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return 1
	}
	return o.Threads
}

// Experiment is a runnable evaluation artifact.
type Experiment struct {
	Name        string
	Description string
	Run         func(Options) error
}

// Experiments lists every artifact, in the paper's order.
var Experiments = []Experiment{
	{"machine", "Table I — modelled SuperMUC Phase 2 node and network", Machine},
	{"fig2a", "Fig. 2(a) — strong scaling, dhsort vs HSS (Charm++)", Fig2a},
	{"fig2b", "Fig. 2(b) — strong-scaling phase fractions", Fig2b},
	{"fig3a", "Fig. 3(a) — weak scaling, dhsort vs HSS (Charm++)", Fig3a},
	{"fig3b", "Fig. 3(b) — weak-scaling phase fractions", Fig3b},
	{"fig4", "Fig. 4 — shared-memory NUMA study vs PSTL/OpenMP stand-ins", Fig4},
	{"iters", "§V-A — histogramming iteration counts by key width and P", Iters},
	{"merge", "§VI-E — k-way merge study (threads × chunks)", MergeStudy},
	{"local", "ablation — intra-rank kernels: introsort vs LSD radix vs fork-join merge sort", LocalKernels},
	{"normal", "§VI-B — normal-distribution robustness, dhsort vs HSS", NormalStudy},
	{"pgas", "ablation — PGAS shared-memory windows vs pure MPI intra-node", PGAS},
	{"baselines", "ablation — all five sorters on one configuration", Baselines},
	{"overlap", "ablation — exchange/merge strategies incl. fused overlap (§VI-E1)", Overlap},
	{"exchange", "ablation — two-sided ALLTOALLV vs fused overlap vs one-sided RMA put", ExchangeStudy},
	{"collectives", "micro — modelled collective latencies vs rank count", Collectives},
	{"splitters", "ablation — splitter strategies: histogram vs sampled vs selection", Splitters},
	{"split", "ablation — k-ary splitter probing: rounds and Splitting time vs probes per boundary", SplitStudy},
	{"skew", "extension — PGX.D-style duplicate floods: imbalance vs flood fraction by splitter strategy", SkewStudy},
	{"fault", "extension — resilience degradation under seeded fault schedules (drop rate × crashes)", FaultStudy},
	{"shrink", "extension — graceful degradation: crash-respawn vs die-shrink recovery", ShrinkStudy},
	{"ooc", "extension — out-of-core spill: merge fan-in ablation under a 1/8 memory budget", OOCStudy},
	{"elastic", "extension — elastic worlds: mid-stream grow vs static provisioning", ElasticStudy},
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// sorter adapts one distributed sorting algorithm to the shared runner.
type sorter struct {
	name string
	run  func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, seed uint64) ([]uint64, error)
}

// The dhsort/hss factories take the intra-rank thread budget explicitly:
// Threads == 0 would fall back to GOMAXPROCS inside core, making modelled
// times machine-dependent.
func dhsortSorter(threads int) sorter {
	return sorter{"dhsort", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		return core.Sort(c, local, keys.Uint64{}, core.Config{VirtualScale: scale, Threads: threads, Recorder: rec})
	}}
}

// dhsortFusedSorter selects the fused exchange+merge: two-sided 1-factor
// sendrecv rounds with merging overlapped behind later transfers (§VI-E1).
func dhsortFusedSorter(threads int) sorter {
	return sorter{"dhsort-fused", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		return core.Sort(c, local, keys.Uint64{}, core.Config{Merge: core.MergeOverlap, VirtualScale: scale, Threads: threads, Recorder: rec})
	}}
}

// dhsortRMASorter selects the one-sided put+notify exchange over rma
// windows (the paper's DART/DASH substrate).
func dhsortRMASorter(threads int) sorter {
	return sorter{"dhsort-rma", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		return core.Sort(c, local, keys.Uint64{}, core.Config{Exchange: comm.ExchangeRMAPut, VirtualScale: scale, Threads: threads, Recorder: rec})
	}}
}

func hssSorter(threads int) sorter {
	return sorter{"hss", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, seed uint64) ([]uint64, error) {
		return hss.Sort(c, local, keys.Uint64{}, hss.Config{VirtualScale: scale, Threads: threads, Recorder: rec, Seed: seed})
	}}
}

func samplesortSorter() sorter {
	return sorter{"samplesort", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, seed uint64) ([]uint64, error) {
		return samplesort.Sort(c, local, keys.Uint64{}, samplesort.Config{
			Variant: samplesort.RegularSampling, VirtualScale: scale, Recorder: rec, Seed: seed})
	}}
}

func hyksortSorter() sorter {
	return sorter{"hyksort", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		return hyksort.Sort(c, local, keys.Uint64{}, hyksort.Config{VirtualScale: scale, Recorder: rec})
	}}
}

func bitonicSorter() sorter {
	return sorter{"bitonic", func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		return bitonic.Sort(c, local, keys.Uint64{}, bitonic.Config{VirtualScale: scale, Recorder: rec})
	}}
}

// point is one measured configuration.
type point struct {
	Makespan time.Duration
	Phases   metrics.Summary
}

// runOnce executes one distributed sort under the model and verifies the
// output invariant.
func runOnce(s sorter, p, perRank int, model *simnet.CostModel, scale float64, spec workload.Spec) (point, error) {
	return runOnceFaults(s, p, perRank, model, scale, spec, fault.Plan{})
}

// runOnceFaults is runOnce under a seeded fault schedule: the sort must
// survive the injected failures and still satisfy the output invariant.
func runOnceFaults(s sorter, p, perRank int, model *simnet.CostModel, scale float64, spec workload.Spec, plan fault.Plan) (point, error) {
	w, err := comm.NewWorldWithFaults(p, model, plan)
	if err != nil {
		return point{}, err
	}
	recs := make([]*metrics.Recorder, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		out, err := s.run(c, local, scale, rec, spec.Seed)
		if err != nil {
			return err
		}
		rec.Finish()
		rec.SetElements(len(local), len(out))
		if !core.IsGloballySorted(c, out, keys.Uint64{}) {
			return fmt.Errorf("%s produced an unsorted result", s.name)
		}
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		return nil
	})
	if err != nil {
		return point{}, err
	}
	return point{Makespan: w.Makespan(), Phases: metrics.Summarize(recs)}, nil
}

// series runs reps repetitions with distinct seeds and summarizes them.
func series(s sorter, p, perRank int, model *simnet.CostModel, scale float64, spec workload.Spec, reps int) (stats.Summary, metrics.Summary, error) {
	runs := make([]time.Duration, 0, reps)
	var phases metrics.Summary
	for rep := 0; rep < reps; rep++ {
		sp := spec
		sp.Seed = spec.Seed + uint64(rep)*1000003
		pt, err := runOnce(s, p, perRank, model, scale, sp)
		if err != nil {
			return stats.Summary{}, metrics.Summary{}, err
		}
		runs = append(runs, pt.Makespan)
		if rep == 0 {
			phases = pt.Phases
		}
	}
	return stats.Summarize(runs), phases, nil
}

// seconds renders a duration in seconds with 3 decimals.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
