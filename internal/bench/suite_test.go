package bench

import (
	"bytes"
	"testing"

	"dhsort/internal/metrics"
)

// TestSuiteSmokeCoversAllAlgorithms runs the CI smoke grid and checks the
// acceptance contract of the metrics subsystem: every algorithm emits a
// record with per-superstep times and per-link-class message/byte
// breakdowns, and the document round-trips through the versioned codec.
func TestSuiteSmokeCoversAllAlgorithms(t *testing.T) {
	doc, err := RunSuite(SuiteOptions{Smoke: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"dhsort": false, "dhsort-fused": false, "dhsort-rma": false, "dhsort-p8": false,
		"dhsort-spill": false,
		"hss":          false, "samplesort": false, "hyksort": false, "bitonic": false,
	}
	byAlg := make(map[string]metrics.Record)
	for _, r := range doc.Records {
		byAlg[r.Algorithm] = r
	}
	for _, r := range doc.Records {
		if _, ok := want[r.Algorithm]; !ok {
			t.Errorf("unexpected algorithm %q", r.Algorithm)
			continue
		}
		want[r.Algorithm] = true
		if r.Makespan.MeanNS <= 0 {
			t.Errorf("%s: non-positive makespan %d", r.Key(), r.Makespan.MeanNS)
		}
		if len(r.Phases) == 0 {
			t.Errorf("%s: no phase breakdown", r.Key())
		}
		var phaseTime, linkMsgs int64
		for name, ph := range r.Phases {
			phaseTime += ph.MeanNS
			for _, l := range ph.Links {
				linkMsgs += l.Messages
				if l.Bytes < 0 || l.Messages < 0 {
					t.Errorf("%s: negative link tally in phase %s", r.Key(), name)
				}
			}
		}
		if phaseTime <= 0 {
			t.Errorf("%s: phase times sum to %d", r.Key(), phaseTime)
		}
		if linkMsgs <= 0 {
			t.Errorf("%s: no per-phase link traffic recorded", r.Key())
		}
		if len(r.Totals.Links) == 0 {
			t.Errorf("%s: no link totals", r.Key())
		}
		if r.Imbalance.Time < 1 {
			t.Errorf("%s: time imbalance %v < 1", r.Key(), r.Imbalance.Time)
		}
		// dhsort variants and hss guarantee perfect partitioning here.
		perfect := r.Algorithm == "dhsort" || r.Algorithm == "dhsort-fused" ||
			r.Algorithm == "dhsort-rma" || r.Algorithm == "dhsort-spill" ||
			r.Algorithm == "hss"
		if perfect && r.Imbalance.Output != 1 {
			t.Errorf("%s: output imbalance %v, want 1.0 (perfect partitioning)", r.Key(), r.Imbalance.Output)
		}
		if r.Algorithm == "dhsort" && r.Iterations == 0 {
			t.Errorf("%s: histogramming iterations not recorded", r.Key())
		}
	}
	for alg, seen := range want {
		if !seen {
			t.Errorf("algorithm %s missing from suite", alg)
		}
	}

	// The exchange-backend contract on the smoke grid (one node, PGAS
	// pricing): records name the exchange that actually ran, the one-sided
	// record carries put/notify traffic, and the RMA-put exchange's
	// virtual makespan does not exceed the two-sided ALLTOALLV dhsort's.
	if r, ok := byAlg["dhsort-rma"]; ok {
		if r.Exchange != "rma-put" {
			t.Errorf("dhsort-rma records exchange %q, want rma-put", r.Exchange)
		}
		var puts, notifies int64
		for _, l := range r.Totals.Links {
			puts += l.Puts
			notifies += l.Notifies
		}
		if puts == 0 || notifies == 0 {
			t.Errorf("dhsort-rma recorded %d puts, %d notifies; want both > 0", puts, notifies)
		}
		if base, ok := byAlg["dhsort"]; ok && r.Makespan.MeanNS > base.Makespan.MeanNS {
			t.Errorf("rma-put makespan %dns exceeds two-sided dhsort %dns on the intra-node smoke grid",
				r.Makespan.MeanNS, base.Makespan.MeanNS)
		}
	}
	if r, ok := byAlg["dhsort-fused"]; ok && r.Exchange != "fused-1factor" {
		t.Errorf("dhsort-fused records exchange %q, want fused-1factor", r.Exchange)
	}

	// The out-of-core record must carry its budget and spill counters and
	// use the fused 1-factor exchange the spilled path pins.
	if r, ok := byAlg["dhsort-spill"]; ok {
		if r.Exchange != "fused-1factor" {
			t.Errorf("dhsort-spill records exchange %q, want fused-1factor", r.Exchange)
		}
		if r.MemBudget == 0 || r.SpilledRuns == 0 || r.SpillBytes == 0 {
			t.Errorf("dhsort-spill record missing spill fields: budget=%d runs=%d bytes=%d",
				r.MemBudget, r.SpilledRuns, r.SpillBytes)
		}
	}

	// The emitted document must round-trip and self-compare clean.
	var buf bytes.Buffer
	if err := metrics.Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := metrics.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := metrics.Compare(back, back, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed() {
		t.Error("self-comparison must not regress")
	}
}

// TestSuiteDeterministic pins the property the regression gate relies on:
// two suite runs with the same seed produce identical documents.
func TestSuiteDeterministic(t *testing.T) {
	a, err := RunSuite(SuiteOptions{Smoke: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(SuiteOptions{Smoke: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := metrics.Encode(&ab, a); err != nil {
		t.Fatal(err)
	}
	if err := metrics.Encode(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("suite output is not deterministic for a fixed seed")
	}
}
