package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment drivers are exercised with minimal options so the full
// reporting paths stay correct; cmd/bench runs the real sweeps.

func TestFindExperiments(t *testing.T) {
	for _, e := range Experiments {
		got, ok := Find(e.Name)
		if !ok || got.Name != e.Name {
			t.Errorf("Find(%q) failed", e.Name)
		}
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("unknown experiment must not resolve")
	}
}

func TestMachineReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Machine(Options{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E5-2697v3", "FDR14", "PGAS", "ns/compare"} {
		if !strings.Contains(out, want) {
			t.Errorf("machine report missing %q", want)
		}
	}
}

func TestItersReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Iters(Options{Out: &buf, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "uint64 full range") || !strings.Contains(out, "float32") {
		t.Errorf("iters report incomplete:\n%s", out)
	}
}

func TestPGASReport(t *testing.T) {
	var buf bytes.Buffer
	if err := PGAS(Options{Out: &buf, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PGAS gain") {
		t.Errorf("pgas report incomplete:\n%s", buf.String())
	}
}

func TestFig4Report(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(Options{Out: &buf, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "domains") || !strings.Contains(out, "winner") {
		t.Errorf("fig4 report incomplete:\n%s", out)
	}
	// The paper's crossover (judged on the paper-faithful comparison-kernel
	// column): PSTL must win the 1-domain row, dhsort the 4-domain row.
	// The +radix column is informational — the fast path this reproduction
	// adds on top of the paper's std::sort local phase.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 7 && fields[0] == "1" && fields[6] != "PSTL" {
			t.Errorf("1-domain winner = %s, want PSTL", fields[6])
		}
		if len(fields) >= 7 && fields[0] == "4" && fields[6] != "dhsort" {
			t.Errorf("4-domain winner = %s, want dhsort", fields[6])
		}
	}
}

func TestNormalStudyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := NormalStudy(Options{Out: &buf, Reps: 2, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "iteration spread") {
		t.Errorf("normal study incomplete:\n%s", buf.String())
	}
}

func TestSharedMergeSortModelShape(t *testing.T) {
	m := machineModel()
	// More domains must not speed up the memory-bound sort by more than
	// the compute share; one domain must be the compute/memory blend.
	d1 := sharedMergeSortTime(1<<29, 14, 1, m, 1.0)
	d4 := sharedMergeSortTime(1<<29, 56, 4, m, 1.0)
	if d1 <= 0 || d4 <= 0 {
		t.Fatal("model must price positive times")
	}
	// Task overhead must cost something.
	omp := sharedMergeSortTime(1<<29, 14, 1, m, 1.3)
	if omp <= d1 {
		t.Error("task overhead must increase the modelled time")
	}
	if sharedMergeSortTime(1, 8, 2, m, 1.0) != 0 {
		t.Error("degenerate input must be free")
	}
}
