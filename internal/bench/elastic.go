package bench

import (
	"fmt"
	"sync"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/stats"
	"dhsort/internal/workload"
)

// elasticRun sorts two consecutive streams of total keys each and returns
// the world makespan.  With grow == 0 both streams run at p ranks; with
// grow > 0 the world admits that many joiner ranks between the streams —
// spawn, grow collective, rebalance of the first stream's order onto the
// joiners — so the second stream runs at p+grow.  Every rank verifies the
// sorted-output invariant on the communicator its result lives on.
func elasticRun(p, grow, total int, model *simnet.CostModel, spec workload.Spec, threads int) (time.Duration, error) {
	w, err := comm.NewWorld(p, model)
	if err != nil {
		return 0, err
	}
	cfg := core.Config{Threads: threads}
	spec2 := spec
	spec2.Seed = spec.Seed + 7777777

	sortStream := func(c *comm.Comm, sp workload.Spec, width int) ([]uint64, error) {
		local, err := sp.Rank(c.Rank(), workload.LocalSize(total, width, c.Rank()))
		if err != nil {
			return nil, err
		}
		out, err := core.Sort(c, local, keys.Uint64{}, cfg)
		if err != nil {
			return nil, err
		}
		if !core.IsGloballySorted(c, out, keys.Uint64{}) {
			return nil, fmt.Errorf("rank %d: stream not globally sorted", c.Rank())
		}
		return out, nil
	}

	var (
		mu      sync.Mutex
		spawned *comm.Spawned
	)
	joiners := make([]int, grow)
	for i := range joiners {
		joiners[i] = p + i
	}
	joinFn := func(jc *comm.Comm) error {
		nc := comm.AwaitGrow(jc, 0)
		core.GrowRebalance(nc, nil, keys.Uint64{}, cfg)
		_, err := sortStream(nc, spec2, p+grow)
		return err
	}
	err = w.Run(func(c *comm.Comm) error {
		out, err := sortStream(c, spec, p)
		if err != nil {
			return err
		}
		if grow == 0 {
			_, err := sortStream(c, spec2, p)
			return err
		}
		if c.Rank() == 0 {
			s, serr := w.Spawn(grow, joinFn)
			if serr != nil {
				return serr
			}
			mu.Lock()
			spawned = s
			mu.Unlock()
		}
		nc := c.Grow(joiners)
		core.GrowRebalance(nc, out, keys.Uint64{}, cfg)
		_, err = sortStream(nc, spec2, p+grow)
		return err
	})
	if err != nil {
		return 0, err
	}
	if spawned != nil {
		if werr := spawned.Wait(); werr != nil {
			return 0, fmt.Errorf("joiners: %w", werr)
		}
	}
	return w.Makespan(), nil
}

// ElasticStudy is an EXTENSION, not a paper figure: the autoscaler's
// makespan-vs-static-P ablation.  Two back-to-back streams model a load
// step: a world provisioned at the low watermark sorts both (cheap, slow
// second stream), a world provisioned at the high watermark sorts both
// (fast, pays for idle capacity the whole time), and the elastic world
// grows between the streams — paying the rank-join, grow-collective and
// rebalance cost once to run the second stream at full width.
func ElasticStudy(o Options) error {
	p, step, perRank := 8, 4, 4096
	if o.Full {
		p, step, perRank = 16, 8, 16384
	}
	total := p * perRank
	model := simnet.SuperMUC(suiteRanksPerNode, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed, Span: 1e9}

	rows := []struct {
		label   string
		p, grow int
	}{
		{fmt.Sprintf("static p=%d", p), p, 0},
		{fmt.Sprintf("static p=%d", p+step), p + step, 0},
		{fmt.Sprintf("grow %d->%d mid-stream", p, p+step), p, step},
	}

	fmt.Fprintf(o.Out, "elastic worlds — two %d-key streams, uniform (modelled SuperMUC time; extension, no paper figure)\n", total)
	fmt.Fprintf(o.Out, "%-24s %7s %12s %12s\n", "provisioning", "ranks", "makespan", "vs static-hi")

	var hi time.Duration
	for _, r := range rows {
		runs := make([]time.Duration, 0, o.reps())
		for rep := 0; rep < o.reps(); rep++ {
			sp := spec
			sp.Seed = spec.Seed + uint64(rep)*1000003
			mk, err := elasticRun(r.p, r.grow, total, model, sp, o.threads())
			if err != nil {
				return fmt.Errorf("%s: %w", r.label, err)
			}
			runs = append(runs, mk)
		}
		m := stats.Summarize(runs)
		if r.p == p+step && r.grow == 0 {
			hi = m.Median
		}
		overhead := "—"
		if hi > 0 {
			overhead = fmt.Sprintf("%+.1f%%", 100*(float64(m.Median)/float64(hi)-1))
		}
		fmt.Fprintf(o.Out, "%-24s %7d %12v %12s\n",
			r.label, r.p+r.grow, m.Median.Round(time.Microsecond), overhead)
	}
	return nil
}
