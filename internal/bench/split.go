package bench

import (
	"fmt"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// dhsortProbesSorter is dhsort with k-ary splitter probing: k probes per
// unfinished boundary per refinement round instead of the bisection
// midpoint, trading a k·(P-1)-sized ALLREDUCE payload for log_{k+1} rounds.
func dhsortProbesSorter(threads, probes int) sorter {
	name := "dhsort"
	if probes > 1 {
		name = fmt.Sprintf("dhsort-p%d", probes)
	}
	return sorter{name, func(c *comm.Comm, local []uint64, scale float64, rec *metrics.Recorder, _ uint64) ([]uint64, error) {
		return core.Sort(c, local, keys.Uint64{}, core.Config{
			Probes: probes, VirtualScale: scale, Threads: threads, Recorder: rec})
	}}
}

// SplitStudy is the k-ary probing ablation: refinement rounds and modelled
// Splitting time against the probe count, on full-range 64-bit keys (the
// paper's histogramming-dominates regime: 60-64 bisection rounds, §V-A).
// Rounds drop from log2(range) to log_{k+1}(range) while each round's
// ALLREDUCE carries k counters per boundary — the table shows where the
// latency saved on rounds outweighs the fatter payload.
func SplitStudy(o Options) error {
	const perRank = 4096
	model := simnet.SuperMUC(suiteRanksPerNode, true)
	probeCounts := []int{1, 2, 4, 8, 16}

	for _, p := range []int{16, 64} {
		// Full-range keys (span 0): the widest refinement intervals and the
		// clearest round-count contrast.
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed, Span: 0}
		fmt.Fprintf(o.Out, "splitter refinement vs probes per boundary, p=%d n/p=%d full-range uint64\n", p, perRank)
		fmt.Fprintf(o.Out, "%-8s %8s %14s %14s\n", "probes", "rounds", "splitting", "makespan")
		var base time.Duration
		for _, k := range probeCounts {
			pt, err := runOnce(dhsortProbesSorter(o.threads(), k), p, perRank, model, 1, spec)
			if err != nil {
				return fmt.Errorf("split p=%d probes=%d: %w", p, k, err)
			}
			split := pt.Phases.Times[metrics.Histogram]
			if k == 1 {
				base = split
			}
			fmt.Fprintf(o.Out, "%-8d %8d %12dns %12dns  (%.2fx splitting vs bisection)\n",
				k, pt.Phases.MaxIterations, split.Nanoseconds(), pt.Makespan.Nanoseconds(),
				float64(split)/float64(base))
		}
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintf(o.Out, "expected shape: rounds fall ~log_{k+1}(2^64) (64, 40, 27, 20, 16);\n")
	fmt.Fprintf(o.Out, "splitting time falls until the k-wide ALLREDUCE payload and the extra\n")
	fmt.Fprintf(o.Out, "local binary searches eat the round savings.\n")
	return nil
}
