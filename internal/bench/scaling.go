package bench

import (
	"fmt"
	"text/tabwriter"

	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/stats"
	"dhsort/internal/workload"
)

// Strong scaling (Fig. 2): fixed total volume, growing rank count.  The
// paper schedules 16 ranks per node (the Charm++ power-of-two constraint)
// and generates 64-bit unsigned integers uniformly in [0, 1e9]; ε = 0.
const (
	strongVirtualTotal = int64(1) << 31 // ~2^31 keys = 16 GiB of uint64
	weakVirtualPerRank = int64(1) << 24 // 128 MiB per rank (§VI-C)
	ranksPerNodeFig23  = 16
)

func strongPoints(full bool) []int {
	if full {
		return []int{16, 32, 64, 128, 256, 512, 1024, 2048, 3584}
	}
	return []int{16, 32, 64, 128, 256}
}

func strongRealTotal(full bool) int {
	if full {
		return 1 << 21
	}
	return 1 << 19
}

// Fig2a prints the strong-scaling comparison of Fig. 2(a): median execution
// time (95% CI) of dhsort (DASH) and HSS (the Charm++ comparator), with
// speedup and parallel efficiency relative to the smallest configuration.
func Fig2a(o Options) error {
	model := simnet.SuperMUC(ranksPerNodeFig23, true)
	realTotal := strongRealTotal(o.Full)
	scale := float64(strongVirtualTotal) / float64(realTotal)
	points := strongPoints(o.Full)

	fmt.Fprintf(o.Out, "Fig. 2(a) — strong scaling, uniform uint64 in [0,1e9], N = 2^31 keys (virtual), eps = 0\n")
	fmt.Fprintf(o.Out, "model: SuperMUC Phase 2, %d ranks/node, PGAS intra-node; %d reps (median + 95%% CI)\n\n",
		ranksPerNodeFig23, o.reps())
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cores\tnodes\tdhsort s\t[CI]\thss s\t[CI]\tdhsort speedup\tefficiency\n")

	var base stats.Summary
	baseP := points[0]
	for _, p := range points {
		perRank := realTotal / p
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + uint64(p), Span: 1e9}
		dh, _, err := series(dhsortSorter(o.threads()), p, perRank, model, scale, spec, o.reps())
		if err != nil {
			return err
		}
		hs, _, err := series(hssSorter(o.threads()), p, perRank, model, scale, spec, o.reps())
		if err != nil {
			return err
		}
		if p == baseP {
			base = dh
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t[%s,%s]\t%s\t[%s,%s]\t%.1f\t%.2f\n",
			p, model.Topo.Nodes(p),
			seconds(dh.Median), seconds(dh.CILow), seconds(dh.CIHigh),
			seconds(hs.Median), seconds(hs.CILow), seconds(hs.CIHigh),
			stats.Speedup(base.Median, dh.Median),
			stats.Efficiency(base.Median, baseP, dh.Median, p))
	}
	return tw.Flush()
}

// Fig2b prints the per-phase fractions of Fig. 2(b) for dhsort under strong
// scaling: histogramming grows to dominate beyond ~2000 ranks while the
// exchange share stays roughly stable.
func Fig2b(o Options) error {
	model := simnet.SuperMUC(ranksPerNodeFig23, true)
	realTotal := strongRealTotal(o.Full)
	scale := float64(strongVirtualTotal) / float64(realTotal)

	fmt.Fprintf(o.Out, "Fig. 2(b) — strong-scaling phase fractions (dhsort), N = 2^31 keys (virtual)\n\n")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "cores\tnodes\tLocalSort\tHistogram\tExchange\tMerge\tOther\titers\n")
	for _, p := range strongPoints(o.Full) {
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + uint64(p), Span: 1e9}
		pt, err := runOnce(dhsortSorter(o.threads()), p, realTotal/p, model, scale, spec)
		if err != nil {
			return err
		}
		s := pt.Phases
		fmt.Fprintf(tw, "%d\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%d\n",
			p, model.Topo.Nodes(p),
			100*s.Fraction(metrics.LocalSort), 100*s.Fraction(metrics.Histogram),
			100*s.Fraction(metrics.Exchange), 100*s.Fraction(metrics.Merge),
			100*s.Fraction(metrics.Other), s.MaxIterations)
	}
	return tw.Flush()
}

func weakNodes(full bool) []int {
	if full {
		return []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	return []int{1, 2, 4, 8, 16}
}

func weakRealPerRank(full bool) int {
	if full {
		return 4096
	}
	return 2048
}

// Fig3a prints the weak-scaling study of Fig. 3(a): 128 MiB of uint64 keys
// per rank (virtual), 16 ranks per node, 1..128 nodes.  The paper reports
// 2.3 s on one node rising to 4.6 s at 128 nodes for DASH, with HSS
// (Charm++) volatile and slower.
func Fig3a(o Options) error {
	model := simnet.SuperMUC(ranksPerNodeFig23, true)
	perRankReal := weakRealPerRank(o.Full)
	scale := float64(weakVirtualPerRank) / float64(perRankReal)

	fmt.Fprintf(o.Out, "Fig. 3(a) — weak scaling, 128 MiB/rank (virtual), uniform uint64 in [0,1e9], eps = 0\n")
	fmt.Fprintf(o.Out, "model: SuperMUC Phase 2, %d ranks/node, PGAS intra-node; %d reps\n\n", ranksPerNodeFig23, o.reps())
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "nodes\tcores\tdhsort s\t[CI]\tweak eff\thss s\t[CI]\tweak eff\n")

	var dhBase, hsBase stats.Summary
	for i, nodes := range weakNodes(o.Full) {
		p := nodes * ranksPerNodeFig23
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + uint64(nodes), Span: 1e9}
		dh, _, err := series(dhsortSorter(o.threads()), p, perRankReal, model, scale, spec, o.reps())
		if err != nil {
			return err
		}
		hs, _, err := series(hssSorter(o.threads()), p, perRankReal, model, scale, spec, o.reps())
		if err != nil {
			return err
		}
		if i == 0 {
			dhBase, hsBase = dh, hs
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t[%s,%s]\t%.2f\t%s\t[%s,%s]\t%.2f\n",
			nodes, p,
			seconds(dh.Median), seconds(dh.CILow), seconds(dh.CIHigh),
			stats.WeakEfficiency(dhBase.Median, dh.Median),
			seconds(hs.Median), seconds(hs.CILow), seconds(hs.CIHigh),
			stats.WeakEfficiency(hsBase.Median, hs.Median))
	}
	return tw.Flush()
}

// Fig3b prints the weak-scaling phase fractions of Fig. 3(b): local sort
// and the ALLTOALLV exchange dominate; histogramming stays amortized.
func Fig3b(o Options) error {
	model := simnet.SuperMUC(ranksPerNodeFig23, true)
	perRankReal := weakRealPerRank(o.Full)
	scale := float64(weakVirtualPerRank) / float64(perRankReal)

	fmt.Fprintf(o.Out, "Fig. 3(b) — weak-scaling phase fractions (dhsort), 128 MiB/rank (virtual)\n\n")
	tw := tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "nodes\tcores\tLocalSort\tHistogram\tExchange\tMerge\tOther\titers\texchanged GiB\n")
	for _, nodes := range weakNodes(o.Full) {
		p := nodes * ranksPerNodeFig23
		spec := workload.Spec{Dist: workload.Uniform, Seed: o.Seed + uint64(nodes), Span: 1e9}
		pt, err := runOnce(dhsortSorter(o.threads()), p, perRankReal, model, scale, spec)
		if err != nil {
			return err
		}
		s := pt.Phases
		fmt.Fprintf(tw, "%d\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%d\t%.1f\n",
			nodes, p,
			100*s.Fraction(metrics.LocalSort), 100*s.Fraction(metrics.Histogram),
			100*s.Fraction(metrics.Exchange), 100*s.Fraction(metrics.Merge),
			100*s.Fraction(metrics.Other), s.MaxIterations,
			float64(s.ExchangedBytes)/(1<<30))
	}
	return tw.Flush()
}
