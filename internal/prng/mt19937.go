package prng

// MT19937_64 is the 64-bit Mersenne Twister of Matsumoto and Nishimura,
// bit-compatible with C++ std::mt19937_64 — the engine the paper's benchmark
// driver uses to generate keys.
type MT19937_64 struct {
	mt  [nn]uint64
	mti int
}

const (
	nn        = 312
	mm        = 156
	matrixA   = 0xB5026F5AA96619E9
	upperMask = 0xFFFFFFFF80000000
	lowerMask = 0x7FFFFFFF
)

// NewMT19937_64 returns a generator seeded with seed, using the reference
// initialization (identical to std::mt19937_64{seed}).
func NewMT19937_64(seed uint64) *MT19937_64 {
	m := &MT19937_64{}
	m.Seed(seed)
	return m
}

// Seed reinitializes the state from seed.
func (m *MT19937_64) Seed(seed uint64) {
	m.mt[0] = seed
	for i := 1; i < nn; i++ {
		m.mt[i] = 6364136223846793005*(m.mt[i-1]^(m.mt[i-1]>>62)) + uint64(i)
	}
	m.mti = nn
}

// Uint64 returns the next value of the stream.
func (m *MT19937_64) Uint64() uint64 {
	if m.mti >= nn {
		var i int
		mag01 := [2]uint64{0, matrixA}
		for i = 0; i < nn-mm; i++ {
			x := (m.mt[i] & upperMask) | (m.mt[i+1] & lowerMask)
			m.mt[i] = m.mt[i+mm] ^ (x >> 1) ^ mag01[x&1]
		}
		for ; i < nn-1; i++ {
			x := (m.mt[i] & upperMask) | (m.mt[i+1] & lowerMask)
			m.mt[i] = m.mt[i+mm-nn] ^ (x >> 1) ^ mag01[x&1]
		}
		x := (m.mt[nn-1] & upperMask) | (m.mt[0] & lowerMask)
		m.mt[nn-1] = m.mt[mm-1] ^ (x >> 1) ^ mag01[x&1]
		m.mti = 0
	}
	x := m.mt[m.mti]
	m.mti++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}
