// Package prng implements the pseudo-random generators used by the
// benchmark workloads.
//
// The paper generates keys with a Mersenne Twister engine from the C++ STL
// (std::mt19937_64); MT19937-64 is reproduced here bit-exactly.  splitmix64
// is provided for seeding and cheap per-rank streams, and xoshiro256** as a
// fast general-purpose engine.  All generators are deterministic given their
// seed, so every experiment in this repository is reproducible.
package prng

import "math"

// Source is a stream of uniform 64-bit values.
type Source interface {
	Uint64() uint64
}

// Float64 derives a uniform float64 in [0,1) from src (53 significant bits).
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0,n) using Lemire's multiply-shift
// rejection method.  n must be > 0.
func Uint64n(src Source, n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return src.Uint64() & (n - 1)
	}
	// Classic modulo rejection; threshold avoids bias.
	threshold := -n % n
	for {
		v := src.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1 using the Box–Muller transform (polar form).
type boxMullerState struct {
	cached bool
	value  float64
}

// Normal wraps a Source with Box–Muller normal deviates.
type Normal struct {
	Src Source
	bm  boxMullerState
}

// Next returns the next standard normal deviate.
func (n *Normal) Next() float64 {
	if n.bm.cached {
		n.bm.cached = false
		return n.bm.value
	}
	for {
		u := 2*Float64(n.Src) - 1
		v := 2*Float64(n.Src) - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		n.bm.cached = true
		n.bm.value = v * f
		return u * f
	}
}

// SplitMix64 is Vigna's splitmix64: a tiny, high-quality generator that is
// ideal for seeding other generators and for independent per-rank streams.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** 1.0 generator.
type Xoshiro256 struct{ s [4]uint64 }

// NewXoshiro256 returns a Xoshiro256 seeded from seed via splitmix64, as the
// reference implementation recommends.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}
