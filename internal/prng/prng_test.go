package prng

import (
	"math"
	"testing"
)

// Reference values for MT19937-64 seeded with 5489 (the std::mt19937_64
// default seed), from the Matsumoto/Nishimura reference implementation.
func TestMT19937_64Reference(t *testing.T) {
	m := NewMT19937_64(5489)
	want := []uint64{
		14514284786278117030,
		4620546740167642908,
		13109570281517897720,
		17462938647148434322,
		355488278567739596,
		7469126240319926998,
		4635995468481642529,
		418970542659199878,
		9604170989252516556,
		6358044926049913402,
	}
	for i, w := range want {
		if got := m.Uint64(); got != w {
			t.Fatalf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937_64TenThousandth(t *testing.T) {
	// The reference implementation's mt19937-64.out lists the 10000th
	// output (seeded via init_genrand64(5489) equivalently to seed 5489)
	// — we verify against a locally computed invariant instead: the
	// stream must be reproducible and differ across seeds.
	a := NewMT19937_64(5489)
	b := NewMT19937_64(5489)
	c := NewMT19937_64(12345)
	var va, vb, vc uint64
	for i := 0; i < 10000; i++ {
		va, vb, vc = a.Uint64(), b.Uint64(), c.Uint64()
	}
	if va != vb {
		t.Fatal("same seed must give same stream")
	}
	if va == vc {
		t.Fatal("different seeds should give different streams")
	}
}

func TestSplitMix64Reference(t *testing.T) {
	// Reference values for splitmix64 with seed 1234567 (from the public
	// reference implementation test vectors).
	s := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := NewXoshiro256(99), NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("xoshiro not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSplitMix64(1)
	for i := 0; i < 10000; i++ {
		f := Float64(s)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUint64nUniformAndInRange(t *testing.T) {
	s := NewXoshiro256(7)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := Uint64n(s, n)
		if v >= n {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from uniform", i, c)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := NewSplitMix64(3)
	for i := 0; i < 1000; i++ {
		if v := Uint64n(s, 64); v >= 64 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Uint64n(NewSplitMix64(0), 0)
}

func TestNormalMoments(t *testing.T) {
	n := &Normal{Src: NewMT19937_64(42)}
	const draws = 200000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		v := n.Next()
		sum += v
		sumsq += v * v
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}
