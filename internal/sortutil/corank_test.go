package sortutil

import (
	"testing"
	"testing/quick"

	"dhsort/internal/prng"
)

// checkCoRank verifies the merge-path invariant for one (a, b, k): the split
// consumes exactly k elements and every element left of the diagonal orders
// no later than every element right of it, with ties taken from a (the
// stability MergeInto implements).
func checkCoRank(t *testing.T, a, b []uint64, k int) {
	t.Helper()
	less := func(x, y uint64) bool { return x < y }
	i, j := CoRank(a, b, k, less)
	if i+j != k {
		t.Fatalf("CoRank(%d): i+j = %d+%d != k", k, i, j)
	}
	if i < 0 || i > len(a) || j < 0 || j > len(b) {
		t.Fatalf("CoRank(%d): split (%d,%d) out of range", k, i, j)
	}
	// a[i-1] must be allowed before b[j:], b[j-1] strictly before a[i:].
	if i > 0 && j < len(b) && less(b[j], a[i-1]) {
		t.Fatalf("CoRank(%d): a[%d]=%d belongs after b[%d]=%d", k, i-1, a[i-1], j, b[j])
	}
	if j > 0 && i < len(a) && !less(b[j-1], a[i]) {
		t.Fatalf("CoRank(%d): b[%d]=%d must come strictly before a[%d]=%d", k, j-1, b[j-1], i, a[i])
	}
}

func TestCoRankExhaustiveSmall(t *testing.T) {
	cases := [][2][]uint64{
		{{}, {}},
		{{1}, {}},
		{{}, {1}},
		{{1, 3, 5}, {2, 4, 6}},
		{{1, 1, 1}, {1, 1}},
		{{1, 2, 3}, {4, 5, 6}},
		{{4, 5, 6}, {1, 2, 3}},
		{{5}, {1, 2, 3, 4, 6, 7}},
	}
	for _, c := range cases {
		a, b := c[0], c[1]
		for k := 0; k <= len(a)+len(b); k++ {
			checkCoRank(t, a, b, k)
		}
	}
}

func TestCoRankRandom(t *testing.T) {
	src := prng.NewXoshiro256(99)
	for iter := 0; iter < 200; iter++ {
		na := int(prng.Uint64n(src, 50))
		nb := int(prng.Uint64n(src, 50))
		a := make([]uint64, na)
		b := make([]uint64, nb)
		for i := range a {
			a[i] = prng.Uint64n(src, 30) // heavy duplicates across both runs
		}
		for i := range b {
			b[i] = prng.Uint64n(src, 30)
		}
		less := func(x, y uint64) bool { return x < y }
		Sort(a, less)
		Sort(b, less)
		for k := 0; k <= na+nb; k++ {
			checkCoRank(t, a, b, k)
		}
	}
}

// TestCoRankSegmentsComposeToMerge: merging the CoRank segments of any
// diagonal decomposition must reproduce the sequential two-way merge —
// the property the psort parallel merge is built on.
func TestCoRankSegmentsComposeToMerge(t *testing.T) {
	check := func(rawA, rawB []uint64, parts uint8) bool {
		less := func(x, y uint64) bool { return x < y }
		a := append([]uint64(nil), rawA...)
		b := append([]uint64(nil), rawB...)
		for i := range a {
			a[i] %= 16
		}
		for i := range b {
			b[i] %= 16
		}
		Sort(a, less)
		Sort(b, less)
		n := len(a) + len(b)
		want := make([]uint64, n)
		MergeInto(want, a, b, less)
		got := make([]uint64, n)
		p := int(parts%7) + 1
		pi, pj := 0, 0
		for s := 1; s <= p; s++ {
			k := s * n / p
			i, j := CoRank(a, b, k, less)
			MergeInto(got[pi+pj:i+j], a[pi:i], b[pj:j], less)
			pi, pj = i, j
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
