package sortutil

import (
	"sort"
	"testing"
	"testing/quick"

	"dhsort/internal/prng"
)

func TestRadixSortUint64(t *testing.T) {
	for _, n := range []int{0, 1, 2, 255, 256, 1000, 100000} {
		for _, span := range []uint64{0, 1, 256, 1 << 20} {
			a := randomSlice(uint64(n)+span, n, span)
			want := append([]uint64(nil), a...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			RadixSortUint64(a)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("n=%d span=%d: mismatch at %d", n, span, i)
				}
			}
		}
	}
}

func TestRadixSortUint32(t *testing.T) {
	src := prng.NewXoshiro256(5)
	a := make([]uint32, 50000)
	for i := range a {
		a[i] = uint32(src.Uint64())
	}
	want := append([]uint32(nil), a...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	RadixSortUint32(a)
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRadixSortFuncStable(t *testing.T) {
	src := prng.NewSplitMix64(9)
	a := make([]pair, 20000)
	for i := range a {
		a[i] = pair{k: int(prng.Uint64n(src, 64)), tag: i}
	}
	RadixSortFunc(a, func(p pair) uint64 { return uint64(p.k) }, 1)
	for i := 1; i < len(a); i++ {
		if a[i-1].k > a[i].k || (a[i-1].k == a[i].k && a[i-1].tag > a[i].tag) {
			t.Fatal("radix sort must be stable")
		}
	}
}

func TestRadixSortFuncWidthClamp(t *testing.T) {
	a := []uint64{3, 1, 2}
	RadixSortFunc(a, func(v uint64) uint64 { return v }, 0) // clamps to 1
	if !IsSorted(a, lessU64) {
		t.Fatal("width clamp broke sorting")
	}
	b := []uint64{1 << 60, 1, 1 << 40}
	RadixSortFunc(b, func(v uint64) uint64 { return v }, 99) // clamps to 8
	if !IsSorted(b, lessU64) {
		t.Fatal("width clamp broke sorting")
	}
}

func TestRadixMatchesIntrosortQuick(t *testing.T) {
	f := func(a []uint64) bool {
		b := append([]uint64(nil), a...)
		Sort(b, lessU64)
		RadixSortUint64(a)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixAllEqual(t *testing.T) {
	a := make([]uint64, 1000)
	for i := range a {
		a[i] = 42
	}
	RadixSortUint64(a)
	for _, v := range a {
		if v != 42 {
			t.Fatal("constant input corrupted")
		}
	}
}
