package sortutil

// LowerBound returns the smallest index i in sorted slice a such that
// !less(a[i], x), i.e. the position of the first element >= x.
// This is the binary search used to build local histograms over locally
// sorted partitions (Algorithm 3, line 7).
func LowerBound[T any](a []T, x T, less func(a, b T) bool) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(a[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the smallest index i in sorted slice a such that
// less(x, a[i]), i.e. one past the last element <= x.
func UpperBound[T any](a []T, x T, less func(a, b T) bool) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(x, a[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
