package sortutil

import (
	"testing"

	"dhsort/internal/prng"
)

func TestArenaNilReceiverAllocates(t *testing.T) {
	var ar *Arena[uint64]
	v := ar.Vals(10)
	k := ar.Keys(10)
	if len(v) != 10 || len(k) != 10 {
		t.Fatalf("nil arena returned lengths %d/%d, want 10/10", len(v), len(k))
	}
}

func TestArenaReusesBacking(t *testing.T) {
	ar := &Arena[uint64]{}
	v1 := ar.Vals(1000)
	k1 := ar.Keys(2000)
	v2 := ar.Vals(500)
	k2 := ar.Keys(100)
	if &v1[0] != &v2[0] {
		t.Error("smaller Vals request must reuse the backing store")
	}
	if &k1[0] != &k2[0] {
		t.Error("smaller Keys request must reuse the backing store")
	}
	if len(v2) != 500 || len(k2) != 100 {
		t.Errorf("lengths %d/%d, want 500/100", len(v2), len(k2))
	}
	v3 := ar.Vals(4000)
	if len(v3) != 4000 {
		t.Errorf("grown Vals length %d, want 4000", len(v3))
	}
}

// TestRadixSortScratchReuse: repeated radix sorts through one arena must
// produce the same results as fresh-allocation sorts, with any arena
// garbage from previous calls ignored.
func TestRadixSortScratchReuse(t *testing.T) {
	ar := &Arena[uint64]{}
	src := prng.NewXoshiro256(12345)
	for round := 0; round < 8; round++ {
		n := 100 + round*377
		a := make([]uint64, n)
		for i := range a {
			a[i] = src.Uint64()
		}
		want := append([]uint64(nil), a...)
		RadixSortUint64(want)
		passes := RadixSortFuncScratch(a, func(v uint64) uint64 { return v }, 8, ar)
		if passes < 1 || passes > 8 {
			t.Fatalf("round %d: executed passes = %d, want 1..8", round, passes)
		}
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("round %d: mismatch at %d with reused arena", round, i)
			}
		}
	}
}

// TestRadixSkipsConstantDigits: keys confined to a narrow span must execute
// fewer scatter passes than the full key width.
func TestRadixSkipsConstantDigits(t *testing.T) {
	src := prng.NewXoshiro256(7)
	a := make([]uint64, 5000)
	for i := range a {
		a[i] = prng.Uint64n(src, 1<<16) // only low 2 bytes vary
	}
	passes := RadixSortFuncScratch(a, func(v uint64) uint64 { return v }, 8, nil)
	if passes > 2 {
		t.Errorf("16-bit span executed %d passes, want <= 2", passes)
	}
	if !IsSorted(a, func(x, y uint64) bool { return x < y }) {
		t.Error("result not sorted")
	}
}
