package sortutil

// Merge returns a new sorted slice containing all elements of sorted a and b.
func Merge[T any](a, b []T, less func(a, b T) bool) []T {
	out := make([]T, len(a)+len(b))
	MergeInto(out, a, b, less)
	return out
}

// CoRank returns the split (i, j) with i+j == k such that the first k
// elements of the stable merge of sorted a and b (ties taken from a, as
// MergeInto produces) are exactly the merge of a[:i] and b[:j].  It is the
// merge-path binary search that lets a pairwise merge be cut into
// independent equal-size output segments (§V-C "all pairwise merges can be
// performed in parallel").  O(log min(k, len(a))) comparisons.
func CoRank[T any](a, b []T, k int, less func(a, b T) bool) (int, int) {
	lo, hi := k-len(b), k
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	for {
		i := int(uint(lo+hi) >> 1)
		j := k - i
		switch {
		case i > 0 && j < len(b) && less(b[j], a[i-1]):
			// a[i-1] would be emitted after b[j]: i is too large.
			hi = i - 1
		case j > 0 && i < len(a) && !less(b[j-1], a[i]):
			// b[j-1] would be emitted after a[i] (ties go to a): i too small.
			lo = i + 1
		default:
			return i, j
		}
	}
}

// MergeKBinary merges k sorted chunks with a binary merge tree: pairwise
// merges over ceil(log2 k) rounds, each element moving O(log k) times
// (§V-C).  Merging can start as soon as two chunks are available, which is
// why the paper considers it for communication overlap.  chunks may be
// empty; the input slices are not modified.
func MergeKBinary[T any](chunks [][]T, less func(a, b T) bool) []T {
	switch len(chunks) {
	case 0:
		return nil
	case 1:
		out := make([]T, len(chunks[0]))
		copy(out, chunks[0])
		return out
	}
	cur := make([][]T, len(chunks))
	copy(cur, chunks)
	for len(cur) > 1 {
		nxt := make([][]T, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			nxt = append(nxt, Merge(cur[i], cur[i+1], less))
		}
		if len(cur)%2 == 1 {
			nxt = append(nxt, cur[len(cur)-1])
		}
		cur = nxt
	}
	return cur[0]
}

// LoserTree is a tournament tree over k sorted runs (§V-C; Knuth's
// replacement-selection structure).  Each Next pops the global minimum in
// O(log k) comparisons.  Unlike the binary merge tree it needs all runs up
// front, but touches each element only once.
type LoserTree[T any] struct {
	less  func(a, b T) bool
	runs  [][]T // remaining suffix of each run
	tree  []int // internal nodes: index of the loser run
	top   int   // current overall winner run
	k     int
	count int // total remaining elements
}

// NewLoserTree builds a tournament tree over the given sorted runs.
func NewLoserTree[T any](runs [][]T, less func(a, b T) bool) *LoserTree[T] {
	k := len(runs)
	lt := &LoserTree[T]{less: less, runs: make([][]T, k), tree: make([]int, k), k: k}
	for i, r := range runs {
		lt.runs[i] = r
		lt.count += len(r)
	}
	lt.build()
	return lt
}

// exhausted reports whether run i is empty.
func (lt *LoserTree[T]) exhausted(i int) bool { return len(lt.runs[i]) == 0 }

// beats reports whether run a's head should win against run b's head
// (exhausted runs always lose; ties break towards the lower run index,
// making the merge stable).
func (lt *LoserTree[T]) beats(a, b int) bool {
	switch {
	case lt.exhausted(a):
		return false
	case lt.exhausted(b):
		return true
	case lt.less(lt.runs[a][0], lt.runs[b][0]):
		return true
	case lt.less(lt.runs[b][0], lt.runs[a][0]):
		return false
	}
	return a < b
}

// build plays the initial tournament.
func (lt *LoserTree[T]) build() {
	if lt.k == 0 {
		lt.top = -1
		return
	}
	// Play every leaf up the tree; standard loser-tree initialization.
	for i := range lt.tree {
		lt.tree[i] = -1
	}
	for i := 0; i < lt.k; i++ {
		lt.replay(i)
	}
}

// replay pushes run w from its leaf towards the root, recording losers.
func (lt *LoserTree[T]) replay(w int) {
	node := (w + lt.k) / 2
	for node > 0 {
		if lt.tree[node] == -1 {
			lt.tree[node] = w
			return // first arrival waits for its sibling
		}
		if lt.beats(lt.tree[node], w) {
			w, lt.tree[node] = lt.tree[node], w
		}
		node /= 2
	}
	lt.top = w
}

// Len returns the number of elements remaining.
func (lt *LoserTree[T]) Len() int { return lt.count }

// Next removes and returns the smallest remaining element.  It must not be
// called when Len() == 0.
func (lt *LoserTree[T]) Next() T {
	w := lt.top
	v := lt.runs[w][0]
	lt.runs[w] = lt.runs[w][1:]
	lt.count--
	// Replay from the winner's leaf to the root.
	node := (w + lt.k) / 2
	for node > 0 {
		if lt.beats(lt.tree[node], w) {
			w, lt.tree[node] = lt.tree[node], w
		}
		node /= 2
	}
	lt.top = w
	return v
}

// MergeKLoser merges k sorted chunks using a tournament (loser) tree.
func MergeKLoser[T any](chunks [][]T, less func(a, b T) bool) []T {
	lt := NewLoserTree(chunks, less)
	out := make([]T, 0, lt.Len())
	for lt.Len() > 0 {
		out = append(out, lt.Next())
	}
	return out
}

// MergeKResort concatenates the chunks and re-sorts them with a full
// shared-memory sort — the strategy the paper's evaluated implementation
// uses for the Local Merge superstep ("we rely on another shared memory
// sort to 'merge' all sequences", §V-C).
func MergeKResort[T any](chunks [][]T, less func(a, b T) bool) []T {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	out := make([]T, 0, n)
	for _, c := range chunks {
		out = append(out, c...)
	}
	Sort(out, less)
	return out
}
