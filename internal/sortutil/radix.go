package sortutil

// LSD radix sorts — the "fast shared memory algorithm" alternative for the
// Local Sort superstep when keys are fixed-width integers.  8-bit digits,
// one counting pass per non-constant digit, stable.
//
// The key function is evaluated exactly once per element: images are cached
// in a uint64 side array that moves with the elements through the scatter
// passes, so even expensive order-preserving embeddings (e.g. the IEEE-754
// total-order transform) are paid O(n), not O(n·width).

// RadixSortUint64 sorts a in ascending order in O(8·n) time and n extra
// space.
func RadixSortUint64(a []uint64) {
	RadixSortFuncScratch(a, func(v uint64) uint64 { return v }, 8, nil)
}

// RadixSortUint32 sorts a in ascending order in O(4·n) time and n extra
// space.
func RadixSortUint32(a []uint32) {
	RadixSortFuncScratch(a, func(v uint32) uint64 { return uint64(v) }, 4, nil)
}

// RadixSortFunc stably sorts a by the uint64 image of key, which must be
// order-preserving for the intended ordering.  width is the number of
// significant key bytes (1-8); use 8 when unsure.
func RadixSortFunc[T any](a []T, key func(T) uint64, width int) {
	RadixSortFuncScratch(a, key, width, nil)
}

// RadixSortFuncScratch is RadixSortFunc drawing its element and key-cache
// scratch from ar (nil means allocate).  It returns the number of scatter
// passes actually executed — constant digits are skipped — which the
// virtual-clock cost model uses to price the sort honestly.
func RadixSortFuncScratch[T any](a []T, key func(T) uint64, width int, ar *Arena[T]) int {
	if width < 1 {
		width = 1
	}
	if width > 8 {
		width = 8
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	return radixSortKeyed(a, key, width, ar.Vals(n), ar.Keys(2*n))
}

// radixSortKeyed runs the LSD passes over a with cached key images.  buf
// must have length n; keyScratch length 2n (ping-pong halves).
func radixSortKeyed[T any](a []T, key func(T) uint64, width int, buf []T, keyScratch []uint64) int {
	n := len(a)
	ks, kbuf := keyScratch[:n], keyScratch[n:2*n]
	for i, v := range a {
		ks[i] = key(v)
	}
	src, dst := a, buf
	ksrc, kdst := ks, kbuf
	passes := 0
	for d := 0; d < width; d++ {
		shift := uint(8 * d)
		var counts [256]int
		for _, k := range ksrc {
			counts[(k>>shift)&0xff]++
		}
		// Skip digits on which all keys agree.
		if counts[(ksrc[0]>>shift)&0xff] == n {
			continue
		}
		pos := 0
		for i := range counts {
			counts[i], pos = pos, pos+counts[i]
		}
		for i, k := range ksrc {
			b := (k >> shift) & 0xff
			dst[counts[b]] = src[i]
			kdst[counts[b]] = k
			counts[b]++
		}
		src, dst = dst, src
		ksrc, kdst = kdst, ksrc
		passes++
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
	return passes
}
