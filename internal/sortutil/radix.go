package sortutil

// LSD radix sorts — the "fast shared memory algorithm" alternative for the
// Local Sort superstep when keys are fixed-width integers.  8-bit digits,
// one counting pass per non-constant digit, stable.

// RadixSortUint64 sorts a in ascending order in O(8·n) time and n extra
// space.
func RadixSortUint64(a []uint64) {
	radixSortKeyed(a, func(v uint64) uint64 { return v }, 8)
}

// RadixSortUint32 sorts a in ascending order in O(4·n) time and n extra
// space.
func RadixSortUint32(a []uint32) {
	radixSortKeyed(a, func(v uint32) uint64 { return uint64(v) }, 4)
}

// RadixSortFunc stably sorts a by the uint64 image of key, which must be
// order-preserving for the intended ordering.  width is the number of
// significant key bytes (1-8); use 8 when unsure.
func RadixSortFunc[T any](a []T, key func(T) uint64, width int) {
	if width < 1 {
		width = 1
	}
	if width > 8 {
		width = 8
	}
	radixSortKeyed(a, key, width)
}

func radixSortKeyed[T any](a []T, key func(T) uint64, width int) {
	n := len(a)
	if n < 2 {
		return
	}
	buf := make([]T, n)
	src, dst := a, buf
	swapped := false
	for d := 0; d < width; d++ {
		shift := uint(8 * d)
		var counts [256]int
		for _, v := range src {
			counts[(key(v)>>shift)&0xff]++
		}
		// Skip digits on which all keys agree.
		if counts[(key(src[0])>>shift)&0xff] == n {
			continue
		}
		pos := 0
		for i := range counts {
			counts[i], pos = pos, pos+counts[i]
		}
		for _, v := range src {
			b := (key(v) >> shift) & 0xff
			dst[counts[b]] = v
			counts[b]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(a, src)
	}
}
