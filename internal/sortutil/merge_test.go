package sortutil

import (
	"sort"
	"testing"
	"testing/quick"

	"dhsort/internal/prng"
)

// randomRuns builds k sorted runs with the given total size.
func randomRuns(seed uint64, k, total int) [][]uint64 {
	src := prng.NewXoshiro256(seed)
	runs := make([][]uint64, k)
	for i := range runs {
		n := total / k
		if i < total%k {
			n++
		}
		r := make([]uint64, n)
		for j := range r {
			r[j] = prng.Uint64n(src, 1000)
		}
		Sort(r, lessU64)
		runs[i] = r
	}
	return runs
}

func flatSorted(runs [][]uint64) []uint64 {
	var all []uint64
	for _, r := range runs {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func checkMerge(t *testing.T, name string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: mismatch at %d: %d vs %d", name, i, got[i], want[i])
		}
	}
}

func TestMergeTwo(t *testing.T) {
	a := []uint64{1, 3, 5}
	b := []uint64{2, 3, 4, 9}
	got := Merge(a, b, lessU64)
	checkMerge(t, "merge", got, []uint64{1, 2, 3, 3, 4, 5, 9})
}

func TestMergeEmpty(t *testing.T) {
	if got := Merge(nil, []uint64{1}, lessU64); len(got) != 1 || got[0] != 1 {
		t.Fatal("merge with empty left failed")
	}
	if got := Merge([]uint64{2}, nil, lessU64); len(got) != 1 || got[0] != 2 {
		t.Fatal("merge with empty right failed")
	}
	if got := Merge[uint64](nil, nil, lessU64); len(got) != 0 {
		t.Fatal("merge of empties failed")
	}
}

func TestMergeKVariants(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3, 7, 16, 33} {
		for _, total := range []int{0, 1, 10, 1000} {
			if k == 0 && total > 0 {
				continue
			}
			var runs [][]uint64
			if k > 0 {
				runs = randomRuns(uint64(k*1000+total), k, total)
			}
			want := flatSorted(runs)
			checkMerge(t, "binary", MergeKBinary(runs, lessU64), want)
			checkMerge(t, "loser", MergeKLoser(runs, lessU64), want)
			checkMerge(t, "resort", MergeKResort(runs, lessU64), want)
		}
	}
}

func TestMergeKWithEmptyRuns(t *testing.T) {
	runs := [][]uint64{{}, {5, 6}, {}, {1}, {}, {}, {2, 7}, {}}
	want := []uint64{1, 2, 5, 6, 7}
	checkMerge(t, "binary", MergeKBinary(runs, lessU64), want)
	checkMerge(t, "loser", MergeKLoser(runs, lessU64), want)
	checkMerge(t, "resort", MergeKResort(runs, lessU64), want)
}

func TestLoserTreeIncremental(t *testing.T) {
	runs := randomRuns(3, 5, 500)
	want := flatSorted(runs)
	lt := NewLoserTree(runs, lessU64)
	if lt.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", lt.Len(), len(want))
	}
	for i, w := range want {
		if got := lt.Next(); got != w {
			t.Fatalf("element %d = %d, want %d", i, got, w)
		}
	}
	if lt.Len() != 0 {
		t.Fatal("tree not drained")
	}
}

func TestLoserTreeStable(t *testing.T) {
	// Ties must resolve to the lower run index.
	runs := [][]pair{
		{{1, 100}, {2, 101}},
		{{1, 200}, {2, 201}},
	}
	lt := NewLoserTree(runs, func(a, b pair) bool { return a.k < b.k })
	order := []int{100, 200, 101, 201}
	for i, w := range order {
		if got := lt.Next(); got.tag != w {
			t.Fatalf("tie-break order wrong at %d: got tag %d, want %d", i, got.tag, w)
		}
	}
}

func TestMergeKQuick(t *testing.T) {
	f := func(seed uint64, kRaw, totalRaw uint16) bool {
		k := int(kRaw%12) + 1
		total := int(totalRaw % 2000)
		runs := randomRuns(seed, k, total)
		want := flatSorted(runs)
		for _, got := range [][]uint64{
			MergeKBinary(runs, lessU64),
			MergeKLoser(runs, lessU64),
			MergeKResort(runs, lessU64),
		} {
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDoesNotModifyInputs(t *testing.T) {
	runs := randomRuns(9, 4, 100)
	snapshot := make([][]uint64, len(runs))
	for i, r := range runs {
		snapshot[i] = append([]uint64(nil), r...)
	}
	MergeKBinary(runs, lessU64)
	MergeKLoser(runs, lessU64)
	MergeKResort(runs, lessU64)
	for i, r := range runs {
		for j := range r {
			if r[j] != snapshot[i][j] {
				t.Fatalf("input run %d modified at %d", i, j)
			}
		}
	}
}
