package sortutil

import (
	"sort"
	"testing"
	"testing/quick"

	"dhsort/internal/prng"
)

func lessU64(a, b uint64) bool { return a < b }
func lessInt(a, b int) bool    { return a < b }

func randomSlice(seed uint64, n int, dup uint64) []uint64 {
	src := prng.NewXoshiro256(seed)
	a := make([]uint64, n)
	for i := range a {
		if dup > 0 {
			a[i] = prng.Uint64n(src, dup)
		} else {
			a[i] = src.Uint64()
		}
	}
	return a
}

func TestSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 100, 1000, 10000} {
		for _, dup := range []uint64{0, 1, 2, 10} {
			a := randomSlice(uint64(n)+dup, n, dup)
			want := append([]uint64(nil), a...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			Sort(a, lessU64)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("n=%d dup=%d: mismatch at %d", n, dup, i)
				}
			}
		}
	}
}

func TestSortAdversarialPatterns(t *testing.T) {
	patterns := map[string]func(n int) []int{
		"sorted": func(n int) []int {
			a := make([]int, n)
			for i := range a {
				a[i] = i
			}
			return a
		},
		"reversed": func(n int) []int {
			a := make([]int, n)
			for i := range a {
				a[i] = n - i
			}
			return a
		},
		"allequal": func(n int) []int { return make([]int, n) },
		"sawtooth": func(n int) []int {
			a := make([]int, n)
			for i := range a {
				a[i] = i % 7
			}
			return a
		},
		"organpipe": func(n int) []int {
			a := make([]int, n)
			for i := range a {
				if i < n/2 {
					a[i] = i
				} else {
					a[i] = n - i
				}
			}
			return a
		},
	}
	for name, gen := range patterns {
		for _, n := range []int{10, 100, 4096} {
			a := gen(n)
			Sort(a, lessInt)
			if !IsSorted(a, lessInt) {
				t.Errorf("%s n=%d: not sorted", name, n)
			}
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(a []int) bool {
		b := append([]int(nil), a...)
		Sort(a, lessInt)
		if !IsSorted(a, lessInt) {
			return false
		}
		// Permutation check via counting.
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

type pair struct{ k, tag int }

func TestStableSortStability(t *testing.T) {
	src := prng.NewSplitMix64(11)
	a := make([]pair, 5000)
	for i := range a {
		a[i] = pair{k: int(prng.Uint64n(src, 20)), tag: i}
	}
	StableSort(a, func(x, y pair) bool { return x.k < y.k })
	for i := 1; i < len(a); i++ {
		if a[i-1].k > a[i].k {
			t.Fatal("not sorted")
		}
		if a[i-1].k == a[i].k && a[i-1].tag > a[i].tag {
			t.Fatal("stability violated")
		}
	}
}

func TestStableSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 1000} {
		a := randomSlice(uint64(n), n, 5)
		want := append([]uint64(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		StableSort(a, lessU64)
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{}, lessInt) || !IsSorted([]int{1}, lessInt) || !IsSorted([]int{1, 1, 2}, lessInt) {
		t.Error("sorted slices misreported")
	}
	if IsSorted([]int{2, 1}, lessInt) {
		t.Error("unsorted slice misreported")
	}
}

func TestLowerUpperBound(t *testing.T) {
	a := []int{1, 3, 3, 3, 7, 9}
	cases := []struct{ x, lo, hi int }{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 1}, {3, 1, 4}, {4, 4, 4}, {7, 4, 5}, {9, 5, 6}, {10, 6, 6},
	}
	for _, c := range cases {
		if got := LowerBound(a, c.x, lessInt); got != c.lo {
			t.Errorf("LowerBound(%d) = %d, want %d", c.x, got, c.lo)
		}
		if got := UpperBound(a, c.x, lessInt); got != c.hi {
			t.Errorf("UpperBound(%d) = %d, want %d", c.x, got, c.hi)
		}
	}
}

func TestBoundsQuick(t *testing.T) {
	f := func(a []uint8, x uint8) bool {
		b := make([]int, len(a))
		for i, v := range a {
			b[i] = int(v)
		}
		sort.Ints(b)
		lo := LowerBound(b, int(x), lessInt)
		hi := UpperBound(b, int(x), lessInt)
		// All elements before lo are < x, all in [lo,hi) are == x,
		// all from hi on are > x.
		for i, v := range b {
			switch {
			case i < lo && v >= int(x):
				return false
			case i >= lo && i < hi && v != int(x):
				return false
			case i >= hi && v <= int(x):
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
