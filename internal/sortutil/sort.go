// Package sortutil provides the sequential sorting, searching and merging
// kernels the distributed algorithms are built from: an introsort used for
// the Local Sort superstep, binary searches used to histogram locally sorted
// partitions, and the k-way merge algorithms of §V-C (binary merge tree and
// tournament / loser tree) used for the Local Merge superstep.
package sortutil

import "math/bits"

// insertionCutoff is the subarray size below which insertion sort wins.
const insertionCutoff = 16

// Sort sorts a in ascending order according to less.  It is an introsort:
// quicksort with median-of-three (ninther on large ranges) pivot selection,
// an insertion-sort cutoff, and a heapsort fallback at depth 2·log2(n) that
// bounds the worst case to O(n log n).  The sort is not stable.
func Sort[T any](a []T, less func(a, b T) bool) {
	if len(a) < 2 {
		return
	}
	limit := 2 * bits.Len(uint(len(a)))
	introsort(a, less, limit)
}

func introsort[T any](a []T, less func(a, b T) bool, depth int) {
	for len(a) > insertionCutoff {
		if depth == 0 {
			heapSort(a, less)
			return
		}
		depth--
		p := partition(a, less)
		// Recurse on the smaller side, loop on the larger: O(log n) stack.
		if p < len(a)-p-1 {
			introsort(a[:p], less, depth)
			a = a[p+1:]
		} else {
			introsort(a[p+1:], less, depth)
			a = a[:p]
		}
	}
	insertionSort(a, less)
}

// medianOfThree orders a[i], a[j], a[k] so that a[j] holds the median.
func medianOfThree[T any](a []T, less func(a, b T) bool, i, j, k int) {
	if less(a[j], a[i]) {
		a[i], a[j] = a[j], a[i]
	}
	if less(a[k], a[j]) {
		a[j], a[k] = a[k], a[j]
		if less(a[j], a[i]) {
			a[i], a[j] = a[j], a[i]
		}
	}
}

// partition picks a pivot, partitions a around it and returns the pivot's
// final index (Hoare-style with the pivot parked at a[0]).
func partition[T any](a []T, less func(a, b T) bool) int {
	n := len(a)
	m := n / 2
	if n > 128 {
		// Ninther: median of three medians-of-three.
		s := n / 8
		medianOfThree(a, less, 0, s, 2*s)
		medianOfThree(a, less, m-s, m, m+s)
		medianOfThree(a, less, n-1-2*s, n-1-s, n-1)
		medianOfThree(a, less, s, m, n-1-s)
	} else {
		medianOfThree(a, less, 0, m, n-1)
	}
	// The median is at a[m]; park it at a[0].
	a[0], a[m] = a[m], a[0]
	pivot := a[0]
	i, j := 1, n-1
	for {
		for i <= j && less(a[i], pivot) {
			i++
		}
		for i <= j && less(pivot, a[j]) {
			j--
		}
		if i > j {
			break
		}
		a[i], a[j] = a[j], a[i]
		i++
		j--
	}
	a[0], a[j] = a[j], a[0]
	return j
}

func insertionSort[T any](a []T, less func(a, b T) bool) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func heapSort[T any](a []T, less func(a, b T) bool) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, less, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDown(a, less, 0, i)
	}
}

func siftDown[T any](a []T, less func(a, b T) bool, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && less(a[child], a[child+1]) {
			child++
		}
		if !less(a[root], a[child]) {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// IsSorted reports whether a is in ascending order according to less.
func IsSorted[T any](a []T, less func(a, b T) bool) bool {
	for i := 1; i < len(a); i++ {
		if less(a[i], a[i-1]) {
			return false
		}
	}
	return true
}

// StableSort sorts a in ascending order preserving the relative order of
// equal elements, using a bottom-up merge sort with one n/2 scratch buffer.
func StableSort[T any](a []T, less func(a, b T) bool) {
	n := len(a)
	if n < 2 {
		return
	}
	// Sort small runs with insertion sort, then merge bottom-up.
	const run = insertionCutoff
	for lo := 0; lo < n; lo += run {
		hi := lo + run
		if hi > n {
			hi = n
		}
		insertionSort(a[lo:hi], less)
	}
	buf := make([]T, 0, n)
	for width := run; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			if less(a[mid], a[mid-1]) {
				buf = append(buf[:0], a[lo:mid]...)
				MergeInto(a[lo:hi], buf, a[mid:hi], less)
			}
		}
	}
}

// MergeInto merges sorted left and right into dst (len(dst) ==
// len(left)+len(right)), stably: ties are taken from left.  right may alias
// the tail of dst.  This is the single two-way merge kernel shared by
// StableSort, Merge, and the psort fork-join merges.
func MergeInto[T any](dst, left, right []T, less func(a, b T) bool) {
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			dst[k] = right[j]
			j++
		} else {
			dst[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		dst[k] = left[i]
		i++
		k++
	}
	// Any remaining right elements are already in place when right
	// aliases dst's tail; copy handles the general case.
	if j < len(right) {
		copy(dst[k:], right[j:])
	}
}
