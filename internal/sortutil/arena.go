package sortutil

// Arena is a reusable per-rank scratch allocation for the hot sort path.
// The compute supersteps (Local Sort, Local Merge) each need an n-element
// element buffer and, for radix dispatch, an n-element cached-key buffer;
// an Arena lets one rank pay those allocations once per run instead of
// once per kernel call.  The zero value is ready to use.  An Arena is not
// safe for concurrent use; each rank goroutine owns its own.
type Arena[T any] struct {
	vals []T
	keys []uint64
}

// Vals returns a scratch element buffer of length n, growing the backing
// store when needed.  The contents are unspecified.  Nil receivers get a
// fresh allocation, so callers can thread an optional arena without
// nil-checking.
func (ar *Arena[T]) Vals(n int) []T {
	if ar == nil {
		return make([]T, n)
	}
	if cap(ar.vals) < n {
		ar.vals = make([]T, n)
	}
	ar.vals = ar.vals[:n]
	return ar.vals
}

// Keys returns a scratch uint64 buffer of length n for cached radix key
// images, growing the backing store when needed.  Nil receivers get a
// fresh allocation.
func (ar *Arena[T]) Keys(n int) []uint64 {
	if ar == nil {
		return make([]uint64, n)
	}
	if cap(ar.keys) < n {
		ar.keys = make([]uint64, n)
	}
	ar.keys = ar.keys[:n]
	return ar.keys
}
