package bitonic

import (
	"sort"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

var u64 = keys.Uint64{}

func runIt(t *testing.T, p, perRank int, spec workload.Spec, model *simnet.CostModel) (ins, outs [][]uint64) {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		out, err := Sort(c, local, u64, Config{})
		if err != nil {
			return err
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins, outs
}

func checkOutput(t *testing.T, ins, outs [][]uint64) {
	t.Helper()
	var all, got []uint64
	for _, in := range ins {
		all = append(all, in...)
	}
	var prev uint64
	first := true
	for r, out := range outs {
		if len(out) != len(ins[r]) {
			t.Fatalf("bitonic must preserve local sizes: rank %d has %d", r, len(out))
		}
		for i, v := range out {
			if !first && v < prev {
				t.Fatalf("order violated at rank %d index %d", r, i)
			}
			prev, first = v, false
		}
		got = append(got, out...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
}

func TestBitonicPowerOfTwo(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		for _, d := range []workload.Distribution{workload.Uniform, workload.Normal, workload.DuplicateHeavy} {
			spec := workload.Spec{Dist: d, Seed: uint64(p) + 60, Span: 1e9}
			ins, outs := runIt(t, p, 256, spec, nil)
			checkOutput(t, ins, outs)
		}
	}
}

func TestBitonicRejectsNonPowerOfTwo(t *testing.T) {
	w, _ := comm.NewWorld(6, nil)
	err := w.Run(func(c *comm.Comm) error {
		_, err := Sort(c, []uint64{1}, u64, Config{})
		if err == nil {
			t.Error("expected rejection of p=6")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitonicRejectsUnequalSizes(t *testing.T) {
	w, _ := comm.NewWorld(4, nil)
	err := w.Run(func(c *comm.Comm) error {
		local := make([]uint64, 10+c.Rank())
		_, err := Sort(c, local, u64, Config{})
		if err == nil {
			t.Error("expected rejection of unequal sizes")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitonicEmpty(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 1, Span: 100}
	ins, outs := runIt(t, 4, 0, spec, nil)
	checkOutput(t, ins, outs)
}

func TestBitonicUnderCostModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 61, Span: 1e9}
	ins, outs := runIt(t, 8, 300, spec, model)
	checkOutput(t, ins, outs)
}

func TestBitonicMovesDataLogPTimes(t *testing.T) {
	// §III-C: bitonic transfers each element log P times; the histogram
	// sort moves it once.  Check the communication volume ratio.
	model := simnet.SuperMUC(4, true)
	w, _ := comm.NewWorld(8, model)
	perRank := 512
	err := w.Run(func(c *comm.Comm) error {
		spec := workload.Spec{Dist: workload.Uniform, Seed: 62, Span: 1e9}
		local, _ := spec.Rank(c.Rank(), perRank)
		_, err := Sort(c, local, u64, Config{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := w.TotalStats()
	// log2(8) = 3 stages, 6 total rounds (3+2+1), full array each round:
	// volume = 6 * P * perRank * 8 bytes (plus small control traffic).
	wantData := int64(6 * 8 * perRank * 8)
	if stats.TotalBytes() < wantData {
		t.Errorf("bitonic volume %d below the log-P floor %d", stats.TotalBytes(), wantData)
	}
}
