// Package bitonic implements Batcher's bitonic sorting network generalized
// to n/p > 1 (§III-C, references [17][18]): after a local sort, log2(P)
// bitonic merge stages exchange full partitions with hypercube partners and
// keep the lower or upper half.
//
// The network's constraints are exactly the ones the paper criticizes in
// related work: the rank count must be a power of two, all local partitions
// must have equal size, and every element is transferred log(P) times
// rather than once.  It serves as the "data moves log P times" baseline.
package bitonic

import (
	"fmt"
	"math/bits"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/sortutil"
)

// Config tunes a bitonic sort.
type Config struct {
	// VirtualScale prices bulk data at a multiple of its real size.
	VirtualScale float64
	// Recorder receives phase timings.
	Recorder *metrics.Recorder
}

func (cfg Config) scale() float64 {
	if cfg.VirtualScale < 1 {
		return 1
	}
	return cfg.VirtualScale
}

// Sort sorts the distributed sequence collectively and returns this rank's
// partition (always exactly len(local) elements).  It requires a
// power-of-two rank count and equal local sizes on every rank, and returns
// an error otherwise — the constraints inherent to sorting networks.
func Sort[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	p := c.Size()
	if p&(p-1) != 0 {
		return nil, fmt.Errorf("bitonic: rank count %d is not a power of two", p)
	}
	sizes := comm.AllgatherOne(c, len(local))
	for r, n := range sizes {
		if n != len(local) {
			return nil, fmt.Errorf("bitonic: unequal local sizes (rank %d has %d, rank %d has %d)",
				c.Rank(), len(local), r, n)
		}
	}
	model := c.Model()
	rec := cfg.Recorder
	scale := cfg.scale()

	rec.Enter(metrics.LocalSort)
	cur := make([]K, len(local))
	copy(cur, local)
	sortutil.Sort(cur, ops.Less)
	if model != nil {
		c.Clock().Advance(model.SortCost(int(float64(len(cur)) * scale)))
	}
	if p == 1 || len(cur) == 0 {
		rec.Finish()
		return cur, nil
	}

	// Bitonic merge stages: after stage k, blocks of k consecutive ranks
	// hold globally sorted data, alternating ascending/descending so the
	// next stage sees bitonic sequences.
	rec.Enter(metrics.Exchange)
	stages := bits.Len(uint(p)) - 1
	const tag = 0
	for s := 1; s <= stages; s++ {
		k := 1 << s
		for j := s - 1; j >= 0; j-- {
			partner := c.Rank() ^ (1 << j)
			// Ascending block if the s-th bit of rank is 0.
			ascending := c.Rank()&k == 0
			keepLow := ascending == (c.Rank() < partner)
			comm.SendScaled(c, partner, tag, cur, scale)
			other := comm.Recv[K](c, partner, tag)
			rec.Enter(metrics.Merge)
			cur = compareSplit(cur, other, keepLow, ops.Less)
			if model != nil {
				c.Clock().Advance(model.MergeCost(2*len(cur), 2))
			}
			rec.Enter(metrics.Exchange)
		}
	}
	rec.Finish()
	return cur, nil
}

// compareSplit merges two sorted runs of equal length and returns the lower
// or upper half — the compare-exchange of the network, lifted to blocks.
func compareSplit[K any](mine, other []K, keepLow bool, less func(a, b K) bool) []K {
	n := len(mine)
	out := make([]K, n)
	if keepLow {
		i, j := 0, 0
		for k := 0; k < n; k++ {
			if j >= len(other) || (i < n && !less(other[j], mine[i])) {
				out[k] = mine[i]
				i++
			} else {
				out[k] = other[j]
				j++
			}
		}
		return out
	}
	i, j := n-1, len(other)-1
	for k := n - 1; k >= 0; k-- {
		if j < 0 || (i >= 0 && !less(mine[i], other[j])) {
			out[k] = mine[i]
			i--
		} else {
			out[k] = other[j]
			j--
		}
	}
	return out
}
