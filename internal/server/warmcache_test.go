package server

import (
	"testing"
)

// ringIterations returns the retained metrics ring's iteration count for id.
func ringIterations(t *testing.T, s *Server, id string) int {
	t.Helper()
	for _, e := range s.MetricsSnapshot().Jobs {
		if e.ID != id {
			continue
		}
		if len(e.Doc.Records) != 1 {
			t.Fatalf("job %s retained %d records, want 1", id, len(e.Doc.Records))
		}
		return e.Doc.Records[0].Iterations
	}
	t.Fatalf("job %s not in the metrics ring", id)
	return 0
}

func TestWarmStartHitOnRepeatDistribution(t *testing.T) {
	s := newTestServer(Config{P: 4})
	defer s.Close()
	spec := JobSpec{N: 4096, Dist: "uniform", Seed: 5, P: 4, NoBatch: true}

	cold := mkJob(t, s, "wc-1", spec)
	s.runBatch([]*job{cold})
	warm := mkJob(t, s, "wc-2", spec)
	s.runBatch([]*job{warm})

	st1, _ := s.Status("wc-1")
	st2, _ := s.Status("wc-2")
	if st1.WarmStart {
		t.Error("first job of a distribution reported a warm start")
	}
	if !st2.WarmStart {
		t.Error("repeat job missed the warm-start cache")
	}
	if !st1.Verified || !st2.Verified {
		t.Fatalf("jobs not verified: %+v / %+v", st1, st2)
	}

	// The acceptance criterion: the warm-started repeat records strictly
	// fewer refinement iterations than its cold first run.
	coldIters := ringIterations(t, s, "wc-1")
	warmIters := ringIterations(t, s, "wc-2")
	if warmIters >= coldIters {
		t.Errorf("warm repeat took %d iterations, cold run %d — no savings", warmIters, coldIters)
	}

	m := s.MetricsSnapshot()
	if m.Warm.Hits != 1 || m.Warm.Misses != 1 {
		t.Errorf("warm stats = %+v, want 1 hit / 1 miss", m.Warm)
	}
	if m.Warm.RoundsSaved <= 0 {
		t.Errorf("rounds_saved = %d, want > 0", m.Warm.RoundsSaved)
	}
}

func TestWarmStartMissOnDistributionChange(t *testing.T) {
	s := newTestServer(Config{P: 4})
	defer s.Close()
	a := mkJob(t, s, "wm-1", JobSpec{N: 4096, Dist: "uniform", Seed: 5, P: 4, NoBatch: true})
	s.runBatch([]*job{a})

	// A different key model (distribution) or span must not hit.
	b := mkJob(t, s, "wm-2", JobSpec{N: 4096, Dist: "zipf", Seed: 5, P: 4, NoBatch: true})
	s.runBatch([]*job{b})
	c := mkJob(t, s, "wm-3", JobSpec{N: 4096, Dist: "uniform", Seed: 5, Span: 1 << 40, P: 4, NoBatch: true})
	s.runBatch([]*job{c})

	for _, id := range []string{"wm-2", "wm-3"} {
		if st, _ := s.Status(id); st.WarmStart {
			t.Errorf("job %s warm-started across a key-model change", id)
		}
	}
	if m := s.MetricsSnapshot(); m.Warm.Hits != 0 || m.Warm.Misses != 3 {
		t.Errorf("warm stats = %+v, want 0 hits / 3 misses", m.Warm)
	}

	// Inline-key and opted-out jobs are ineligible: no miss is counted.
	d := mkJob(t, s, "wm-4", JobSpec{Keys: []uint64{4, 2, 9, 1}, P: 4, NoBatch: true})
	s.runBatch([]*job{d})
	e := mkJob(t, s, "wm-5", JobSpec{N: 4096, Dist: "uniform", Seed: 5, P: 4, NoBatch: true, NoWarm: true})
	s.runBatch([]*job{e})
	if st, _ := s.Status("wm-5"); st.WarmStart {
		t.Error("NoWarm job warm-started")
	}
	if m := s.MetricsSnapshot(); m.Warm.Hits+m.Warm.Misses != 3 {
		t.Errorf("ineligible jobs touched the warm counters: %+v", m.Warm)
	}
}

func TestWarmCacheEvictionBound(t *testing.T) {
	s := newTestServer(Config{P: 4, WarmCap: 2})
	defer s.Close()
	for i, dist := range []string{"uniform", "normal", "zipf"} {
		j := mkJob(t, s, ids(i), JobSpec{N: 4096, Dist: dist, Seed: 3, P: 4, NoBatch: true})
		s.runBatch([]*job{j})
	}
	if m := s.MetricsSnapshot(); m.Warm.Entries != 2 {
		t.Fatalf("cache holds %d entries, want the cap of 2", m.Warm.Entries)
	}
	// FIFO: the oldest key (uniform) was evicted, the newest survive.
	rerun := mkJob(t, s, "we-1", JobSpec{N: 4096, Dist: "uniform", Seed: 3, P: 4, NoBatch: true})
	s.runBatch([]*job{rerun})
	if st, _ := s.Status("we-1"); st.WarmStart {
		t.Error("evicted entry produced a warm start")
	}
	keep := mkJob(t, s, "we-2", JobSpec{N: 4096, Dist: "zipf", Seed: 3, P: 4, NoBatch: true})
	s.runBatch([]*job{keep})
	if st, _ := s.Status("we-2"); !st.WarmStart {
		t.Error("retained entry missed")
	}
}

func TestWarmStartAdversarialDriftStaysCorrect(t *testing.T) {
	// A cached distribution that has drifted arbitrarily far must cost at
	// most extra rounds, never correctness: poison the cache with splitters
	// wildly above the job's actual key span.
	s := newTestServer(Config{P: 4})
	defer s.Close()
	spec := JobSpec{N: 4096, Dist: "uniform", Seed: 11, P: 4, NoBatch: true}
	if err := s.normalize(&spec); err != nil {
		t.Fatal(err)
	}
	key, ok := warmKeyOf("t", spec)
	if !ok {
		t.Fatal("spec unexpectedly ineligible for warm start")
	}
	s.warm.store(key, []uint64{1 << 50, 1 << 55, 1 << 60}, 60)

	j := mkJob(t, s, "wd-1", spec)
	s.runBatch([]*job{j})
	st, _ := s.Status("wd-1")
	if !st.WarmStart {
		t.Error("poisoned entry did not register as a hit")
	}
	if st.State != StateDone || !st.Verified {
		t.Fatalf("drifted warm start broke the sort: %+v", st)
	}
	out, _, err := s.Result("wd-1")
	if err != nil {
		t.Fatal(err)
	}
	var all []uint64
	for r := 0; r < 4; r++ {
		ks, err := localInput(spec, r)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ks...)
	}
	if !equalU64(out, sortedCopy(all)) {
		t.Error("output is not the sorted workload")
	}
}
