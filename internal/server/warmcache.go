package server

import (
	"sync"

	"dhsort"
)

// warmKey identifies jobs whose key distributions are expected to match:
// same tenant, world size and generated-workload shape.  Inline-key jobs
// are never cached — their distribution is opaque — and neither are
// fault-injecting jobs, whose worlds may shrink mid-run.
type warmKey struct {
	Tenant string
	P      int
	Dist   string
	Span   uint64
}

// warmKeyOf derives the cache key of a normalized spec, or reports the job
// ineligible for warm starting.
func warmKeyOf(tenant string, sp JobSpec) (warmKey, bool) {
	if sp.NoWarm || sp.Fault != "" || sp.N <= 0 || sp.P < 2 {
		return warmKey{}, false
	}
	return warmKey{Tenant: tenant, P: sp.P, Dist: sp.Dist, Span: sp.Span}, true
}

// warmEntry is one cached set of converged splitters.  coldIters is the
// round count of the run that first populated the entry — the baseline the
// rounds-saved counter is measured against; splitters track the latest
// completed run so the seed follows slow distribution drift.
type warmEntry struct {
	splitters []uint64
	coldIters int
}

// warmCache keeps the converged splitters of completed fault-free jobs and
// seeds compatible follow-up jobs with tight refinement intervals.  FIFO
// eviction bounds the footprint.  A stale entry can never corrupt a result:
// core restarts a collapsed warm interval from the cold bounds.  All methods
// are nil-safe, like Recorder: tests that assemble a Server by hand get a
// disabled cache for free.
type warmCache struct {
	mu      sync.Mutex
	cap     int
	entries map[warmKey]*warmEntry
	order   []warmKey

	hits, misses, roundsSaved int64
}

func newWarmCache(cap int) *warmCache {
	return &warmCache{cap: cap, entries: make(map[warmKey]*warmEntry)}
}

// lookup returns the seed intervals and the cold-round baseline for key,
// counting the hit or miss.
func (w *warmCache) lookup(key warmKey) ([]dhsort.WarmInterval, int, bool) {
	if w == nil {
		return nil, 0, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[key]
	if !ok || len(e.splitters) != key.P-1 {
		w.misses++
		return nil, 0, false
	}
	w.hits++
	return dhsort.Uint64WarmIntervals(e.splitters), e.coldIters, true
}

// store records a completed run's converged splitters.  An existing entry
// keeps its cold-round baseline (a warm run's tiny count would otherwise
// make future savings invisible); a new entry evicts FIFO past the cap.
func (w *warmCache) store(key warmKey, splitters []uint64, iters int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.entries[key]; ok {
		e.splitters = splitters
		return
	}
	if len(w.order) >= w.cap {
		delete(w.entries, w.order[0])
		w.order = w.order[1:]
	}
	w.entries[key] = &warmEntry{splitters: splitters, coldIters: iters}
	w.order = append(w.order, key)
}

func (w *warmCache) addSaved(n int64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.roundsSaved += n
	w.mu.Unlock()
}

// WarmStats is the warm-start block of /v1/metrics.
type WarmStats struct {
	Hits        int64 `json:"warm_hits"`
	Misses      int64 `json:"warm_misses"`
	RoundsSaved int64 `json:"rounds_saved"`
	Entries     int   `json:"entries"`
}

func (w *warmCache) stats() WarmStats {
	if w == nil {
		return WarmStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return WarmStats{Hits: w.hits, Misses: w.misses, RoundsSaved: w.roundsSaved, Entries: len(w.entries)}
}
