package server

import (
	"dhsort/internal/keys"
	"dhsort/internal/xmath"
)

// batchItem tags a key with the index of the job it belongs to, so several
// small jobs can ride one shared world run: a single distributed sort of
// the union, ordered by (Job, Key), leaves every job's keys contiguous and
// globally sorted within its group.  Splitting the per-rank outputs by Job
// in rank order then yields each job's sorted sequence — the amortized
// superstep trick of the batching layer.
type batchItem struct {
	Job uint16
	Key uint64
}

// batchOps orders batchItems lexicographically by (Job, Key) and embeds
// them monotonically into the splitter bit space with Job in the most
// significant bits, so histogram partitioning respects the grouping.  The
// 16-bit job index and 64-bit key pack exactly into the top 80 bits of the
// 128-bit splitter space.
type batchOps struct{}

func (batchOps) Less(a, b batchItem) bool {
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	return a.Key < b.Key
}

func (batchOps) ToBits(v batchItem) xmath.U128 {
	return xmath.U128{
		Hi: uint64(v.Job)<<48 | v.Key>>16,
		Lo: (v.Key & 0xffff) << 48,
	}
}

func (batchOps) FromBits(u xmath.U128) batchItem {
	return batchItem{
		Job: uint16(u.Hi >> 48),
		Key: u.Hi<<16 | u.Lo>>48,
	}
}

func (batchOps) Bytes() int { return 10 }

var _ keys.Ops[batchItem] = batchOps{}

// splitByJob partitions one rank's sorted batch output into per-job key
// slices (indexed by batch job index).  The input is (Job, Key)-sorted, so
// each job's run is contiguous.
func splitByJob(out []batchItem, jobs int) [][]uint64 {
	per := make([][]uint64, jobs)
	for i := 0; i < len(out); {
		j := i
		id := out[i].Job
		for j < len(out) && out[j].Job == id {
			j++
		}
		ks := make([]uint64, 0, j-i)
		for _, it := range out[i:j] {
			ks = append(ks, it.Key)
		}
		per[id] = append(per[id], ks...)
		i = j
	}
	return per
}
