package server

import "sync"

// jobQueue is the bounded admission queue.  tryPush fails (rather than
// blocks) when the queue is full — the server turns that into a 429 with
// Retry-After, the backpressure contract of the service.  Workers block in
// pop; popCompatible additionally lets a worker that just claimed a small
// job drain every queued job sharing its batch key, which is how compatible
// jobs end up in one shared world run.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*job
	depth  int
	closed bool
}

func newJobQueue(depth int) *jobQueue {
	q := &jobQueue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tryPush enqueues j, reporting false when the queue is full or closed.
func (q *jobQueue) tryPush(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.depth {
		return false
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return true
}

// pop blocks until a job is available (FIFO) or the queue closes.
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j := q.items[0]
	q.items = q.items[1:]
	return j, true
}

// popCompatible removes and returns up to max queued jobs for which match
// reports true, preserving FIFO order among them.
func (q *jobQueue) popCompatible(match func(*job) bool, max int) []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if max <= 0 {
		return nil
	}
	var got []*job
	rest := q.items[:0]
	for _, j := range q.items {
		if len(got) < max && match(j) {
			got = append(got, j)
		} else {
			rest = append(rest, j)
		}
	}
	// Clear the tail so dequeued jobs don't linger in the backing array.
	for i := len(rest); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = rest
	return got
}

func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close wakes every blocked worker; pending jobs are discarded by pop's
// caller noticing the false return.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
