package server

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"dhsort"
	"dhsort/internal/metrics"
	"dhsort/internal/workload"
	"dhsort/internal/xmath"
)

// Reject is the typed admission/lookup error of the engine; the API layer
// maps it onto an HTTP status and a JSON error body.
type Reject struct {
	HTTPStatus int    `json:"-"`
	Reason     string `json:"reason"`
	Detail     string `json:"detail"`
	// RetryAfter is the suggested client backoff in seconds (0 = none).
	RetryAfter int `json:"retry_after,omitempty"`
}

func (r *Reject) Error() string { return r.Reason + ": " + r.Detail }

func badRequest(msg string) *Reject {
	return &Reject{HTTPStatus: 400, Reason: "bad_request", Detail: msg}
}

// Config tunes a Server.  Zero values pick the defaults in parentheses.
type Config struct {
	P            int           // default world size for jobs that don't ask (8)
	MaxP         int           // largest accepted world size (64)
	Workers      int           // concurrent job executors (2)
	QueueDepth   int           // bounded admission queue (64)
	PoolIdle     int           // warm worlds kept idle per shape (2)
	QuotaRate    float64       // per-tenant refill, jobs/second (5)
	QuotaBurst   float64       // per-tenant burst (10)
	MaxN         int           // largest accepted job, keys (1<<22)
	BatchMaxKeys int           // batch-eligibility size threshold (4096)
	BatchMax     int           // most jobs per shared world run (8)
	BatchWait    time.Duration // linger for stragglers before running a partial batch (2ms)
	MetricsRing  int           // per-job metrics documents retained (64)
	WarmCap      int           // cached warm-start splitter sets (64)
	ScratchDir   string        // root for spilled jobs' per-job run stores (os.TempDir())
	// Autoscale enables the load-driven world-size autoscaler (off).
	Autoscale AutoscaleConfig
}

func (c Config) withDefaults() Config {
	if c.P <= 0 {
		c.P = 8
	}
	if c.MaxP <= 0 {
		c.MaxP = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PoolIdle <= 0 {
		c.PoolIdle = 2
	}
	if c.QuotaRate <= 0 {
		c.QuotaRate = 5
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 10
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 22
	}
	if c.BatchMaxKeys <= 0 {
		c.BatchMaxKeys = 4096
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.BatchMax > 1024 {
		c.BatchMax = 1024 // batchItem.Job is 16-bit; keep far below it
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.MetricsRing <= 0 {
		c.MetricsRing = 64
	}
	if c.WarmCap <= 0 {
		c.WarmCap = 64
	}
	c.Autoscale = c.Autoscale.withDefaults(c)
	return c
}

// Job lifecycle states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the wire view of a job.
type JobStatus struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"`
	N         int    `json:"n"`
	P         int    `json:"p"`
	Algorithm string `json:"algorithm,omitempty"`
	// Batched marks a job that shared a world run with others.
	Batched   bool `json:"batched,omitempty"`
	BatchSize int  `json:"batch_size,omitempty"`
	// PoolHit marks a job served by a warm pooled world (no world
	// construction on its critical path).
	PoolHit bool `json:"pool_hit,omitempty"`
	// WarmStart marks a job whose splitter refinement was seeded from a
	// compatible earlier job's converged splitters.
	WarmStart bool `json:"warm_start,omitempty"`
	// Spilled marks a job that ran out-of-core; SpilledRuns counts the disk
	// runs its ranks sealed.
	Spilled     bool  `json:"spilled,omitempty"`
	SpilledRuns int64 `json:"spilled_runs,omitempty"`
	// Verified is the collective IsGloballySorted verdict plus an element
	// conservation check.
	Verified bool `json:"verified,omitempty"`
	// Survivors is the effective world size the result lives on (smaller
	// than P only after a shrink recovery).
	Survivors   int    `json:"survivors,omitempty"`
	Error       string `json:"error,omitempty"`
	SubmittedAt int64  `json:"submitted_unix_ns,omitempty"`
	StartedAt   int64  `json:"started_unix_ns,omitempty"`
	FinishedAt  int64  `json:"finished_unix_ns,omitempty"`
	MakespanNS  int64  `json:"makespan_ns,omitempty"`
}

// job is the engine-side record.  Mutable fields are guarded by Server.mu.
type job struct {
	id     string
	tenant string
	spec   JobSpec

	state     string
	errMsg    string
	alg       string
	batched   bool
	batchSize int
	poolHit   bool
	warmStart bool
	verified  bool
	survivors int
	spilled   int64
	submitted time.Time
	started   time.Time
	finished  time.Time
	makespan  time.Duration
	output    []uint64
}

// RingEntry is one retained per-job metrics document.
type RingEntry struct {
	ID     string           `json:"id"`
	Tenant string           `json:"tenant"`
	Doc    metrics.Document `json:"doc"`
}

// Metrics is the server-wide counter snapshot served on /v1/metrics.
type Metrics struct {
	UptimeNS          int64            `json:"uptime_ns"`
	JobsSubmitted     int64            `json:"jobs_submitted"`
	JobsDone          int64            `json:"jobs_done"`
	JobsFailed        int64            `json:"jobs_failed"`
	RejectedQuota     int64            `json:"rejected_quota"`
	RejectedQueueFull int64            `json:"rejected_queue_full"`
	Batches           int64            `json:"batches"`
	BatchedJobs       int64            `json:"batched_jobs"`
	SpilledJobs       int64            `json:"spilled_jobs"`
	SpilledRuns       int64            `json:"spilled_runs"`
	SpillBytes        int64            `json:"spill_bytes"`
	RejectedDraining  int64            `json:"rejected_draining,omitempty"`
	Draining          bool             `json:"draining,omitempty"`
	QueueLen          int              `json:"queue_len"`
	QueueDepth        int              `json:"queue_depth"`
	Inflight          int              `json:"inflight"`
	Pool              PoolStats        `json:"pool"`
	Warm              WarmStats        `json:"warm"`
	Autoscale         AutoscaleStats   `json:"autoscale"`
	Tenants           map[string]int64 `json:"tenants"`
	Jobs              []RingEntry      `json:"jobs"`
}

// Server is the sort service engine.  It owns the admission queue, the
// tenant quotas, the warm world pool, the worker goroutines and the job
// table; internal/api puts HTTP in front of it.
type Server struct {
	cfg    Config
	queue  *jobQueue
	pool   *worldPool
	warm   *warmCache
	quotas *quotaTable
	scale  *autoscaler // nil unless Config.Autoscale.Enabled
	wg     sync.WaitGroup

	mu          sync.Mutex
	closed      bool
	draining    bool
	inflight    int
	lastImb     float64 // latest completed job's time-imbalance factor
	rejDrain    int64
	seq         int
	jobs        map[string]*job
	ring        []RingEntry
	tenants     map[string]int64
	started     time.Time
	submitted   int64
	done        int64
	failed      int64
	rejQuota    int64
	rejQueue    int64
	batches     int64
	batchedJobs int64
	spilledJobs int64
	spilledRuns int64
	spillBytes  int64
}

// New starts a server with cfg.Workers executor goroutines.  Close releases
// them and the pooled worlds.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   newJobQueue(cfg.QueueDepth),
		pool:    newWorldPool(cfg.PoolIdle),
		warm:    newWarmCache(cfg.WarmCap),
		quotas:  newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst),
		jobs:    make(map[string]*job),
		tenants: make(map[string]int64),
		started: timeNow(),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.Autoscale.Enabled {
		s.scale = newAutoscaler(s, cfg.Autoscale)
		go s.scale.loop()
	}
	return s
}

// targetP is the world size given to jobs that don't request one: the
// autoscaler's moving target when enabled, the static default otherwise.
func (s *Server) targetP() int {
	if s.scale != nil {
		return s.scale.targetP()
	}
	return s.cfg.P
}

// Drain flips the server into draining: new submissions are rejected with
// 503 + Retry-After while queued and in-flight jobs keep running, so a
// SIGTERM'd instance can finish the work it admitted.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether Drain was called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Quiesce blocks until the queue is empty and no job is in flight, or the
// timeout passes; it reports whether the server fully drained.
func (s *Server) Quiesce(timeout time.Duration) bool {
	deadline := timeNow().Add(timeout)
	for {
		s.mu.Lock()
		idle := s.inflight == 0
		s.mu.Unlock()
		if idle && s.queue.len() == 0 {
			return true
		}
		if !timeNow().Before(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sample observes the engine for the autoscaler policy.
func (s *Server) sample() scaleSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return scaleSample{
		QueueLen:   s.queue.len(),
		Inflight:   s.inflight,
		Imbalance:  s.lastImb,
		PoolMisses: s.pool.stats().Misses,
	}
}

// Close drains the workers and shuts down every pooled world.  Queued jobs
// that never ran stay in state "queued".
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if s.scale != nil {
		s.scale.close() // stop reshaping before the pool shuts down
	}
	s.queue.close()
	s.wg.Wait()
	s.pool.closeAll()
}

// Submit admits one job for tenant: quota check, registration, queue push.
// The error, if any, is a *Reject.
func (s *Server) Submit(tenant string, spec JobSpec) (JobStatus, error) {
	tenant = strings.TrimSpace(tenant)
	if tenant == "" {
		tenant = "default"
	}
	if len(tenant) > 64 {
		return JobStatus{}, badRequest("tenant name longer than 64 bytes")
	}
	if err := s.normalize(&spec); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.rejDrain++
		s.mu.Unlock()
		return JobStatus{}, &Reject{HTTPStatus: 503, Reason: "draining",
			Detail:     "server is draining; resubmit elsewhere or after it restarts",
			RetryAfter: 5}
	}
	s.mu.Unlock()
	if ok, wait := s.quotas.allow(tenant); !ok {
		s.mu.Lock()
		s.rejQuota++
		s.mu.Unlock()
		return JobStatus{}, &Reject{HTTPStatus: 429, Reason: "quota_exceeded",
			Detail:     fmt.Sprintf("tenant %q is over its job quota", tenant),
			RetryAfter: retryAfterSeconds(wait)}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, &Reject{HTTPStatus: 503, Reason: "shutting_down", Detail: "server is closing"}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.seq),
		tenant:    tenant,
		spec:      spec,
		state:     StateQueued,
		submitted: timeNow(),
	}
	s.jobs[j.id] = j
	s.submitted++
	s.tenants[tenant]++
	st := j.statusLocked()
	s.mu.Unlock()

	if !s.queue.tryPush(j) {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.submitted--
		s.tenants[tenant]--
		s.rejQueue++
		s.mu.Unlock()
		return JobStatus{}, &Reject{HTTPStatus: 429, Reason: "queue_full",
			Detail:     fmt.Sprintf("admission queue of %d jobs is full", s.cfg.QueueDepth),
			RetryAfter: 1}
	}
	return st, nil
}

// Status returns the wire view of job id.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// Result returns the sorted output of a completed job.  The error, if any,
// is a *Reject (not_found / not_ready / job_failed).
func (s *Server) Result(id string) ([]uint64, JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, &Reject{HTTPStatus: 404, Reason: "not_found",
			Detail: fmt.Sprintf("no job %q", id)}
	}
	st := j.statusLocked()
	switch j.state {
	case StateDone:
		return j.output, st, nil
	case StateFailed:
		return nil, st, &Reject{HTTPStatus: 409, Reason: "job_failed", Detail: j.errMsg}
	default:
		return nil, st, &Reject{HTTPStatus: 409, Reason: "not_ready",
			Detail: fmt.Sprintf("job %s is %s", id, j.state), RetryAfter: 1}
	}
}

// MetricsSnapshot returns the server-wide counters, pool statistics, and
// the retained per-job metrics ring (oldest first).
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		UptimeNS:          int64(timeNow().Sub(s.started)),
		JobsSubmitted:     s.submitted,
		JobsDone:          s.done,
		JobsFailed:        s.failed,
		RejectedQuota:     s.rejQuota,
		RejectedQueueFull: s.rejQueue,
		Batches:           s.batches,
		BatchedJobs:       s.batchedJobs,
		SpilledJobs:       s.spilledJobs,
		SpilledRuns:       s.spilledRuns,
		SpillBytes:        s.spillBytes,
		RejectedDraining:  s.rejDrain,
		Draining:          s.draining,
		QueueLen:          s.queue.len(),
		QueueDepth:        s.cfg.QueueDepth,
		Inflight:          s.inflight,
		Pool:              s.pool.stats(),
		Warm:              s.warm.stats(),
		Autoscale:         s.autoscaleStats(),
		Tenants:           make(map[string]int64, len(s.tenants)),
		Jobs:              append([]RingEntry(nil), s.ring...),
	}
	for t, n := range s.tenants {
		m.Tenants[t] = n
	}
	return m
}

func (s *Server) autoscaleStats() AutoscaleStats {
	if s.scale == nil {
		return AutoscaleStats{TargetP: s.cfg.P}
	}
	return s.scale.statsLocked()
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:          j.id,
		Tenant:      j.tenant,
		State:       j.state,
		N:           j.spec.n(),
		P:           j.spec.P,
		Algorithm:   j.alg,
		Batched:     j.batched,
		BatchSize:   j.batchSize,
		PoolHit:     j.poolHit,
		WarmStart:   j.warmStart,
		Spilled:     j.spec.Spill,
		SpilledRuns: j.spilled,
		Verified:    j.verified,
		Survivors:   j.survivors,
		Error:       j.errMsg,
		SubmittedAt: j.submitted.UnixNano(),
		MakespanNS:  int64(j.makespan),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UnixNano()
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UnixNano()
	}
	return st
}

func retryAfterSeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// worker is one executor: claim a job, opportunistically drain compatible
// small jobs into a shared batch, run, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		batch := []*job{j}
		if s.cfg.BatchMax > 1 && s.batchEligible(j.spec) {
			key := batchKeyOf(j.spec)
			match := func(o *job) bool {
				return s.batchEligible(o.spec) && batchKeyOf(o.spec) == key
			}
			batch = append(batch, s.queue.popCompatible(match, s.cfg.BatchMax-len(batch))...)
			if len(batch) < s.cfg.BatchMax && s.cfg.BatchWait > 0 {
				// Brief linger: submissions racing the drain join this run
				// instead of paying for their own.
				time.Sleep(s.cfg.BatchWait)
				batch = append(batch, s.queue.popCompatible(match, s.cfg.BatchMax-len(batch))...)
			}
		}
		s.runBatch(batch)
	}
}

// outcome carries one finished job's results to the bookkeeper.
type outcome struct {
	output      []uint64
	alg         string
	batched     bool
	batchSize   int
	poolHit     bool
	warmStart   bool
	verified    bool
	survivors   int
	spilledRuns int64
	spillBytes  int64
	makespan    time.Duration
	timeImb     float64
	doc         metrics.Document
	hasDoc      bool
}

func (s *Server) markRunning(batch []*job) {
	now := timeNow()
	s.mu.Lock()
	for _, j := range batch {
		j.state = StateRunning
		j.started = now
	}
	s.inflight += len(batch)
	s.mu.Unlock()
}

func (s *Server) complete(j *job, oc outcome) {
	s.mu.Lock()
	j.state = StateDone
	j.finished = timeNow()
	j.output = oc.output
	j.alg = oc.alg
	j.batched = oc.batched
	j.batchSize = oc.batchSize
	j.poolHit = oc.poolHit
	j.warmStart = oc.warmStart
	j.verified = oc.verified
	j.survivors = oc.survivors
	j.spilled = oc.spilledRuns
	j.makespan = oc.makespan
	s.done++
	s.inflight--
	if oc.hasDoc {
		s.lastImb = oc.timeImb
	}
	if j.spec.Spill {
		s.spilledJobs++
	}
	s.spilledRuns += oc.spilledRuns
	s.spillBytes += oc.spillBytes
	if oc.hasDoc {
		s.ring = append(s.ring, RingEntry{ID: j.id, Tenant: j.tenant, Doc: oc.doc})
		if over := len(s.ring) - s.cfg.MetricsRing; over > 0 {
			s.ring = append([]RingEntry(nil), s.ring[over:]...)
		}
	}
	s.mu.Unlock()
}

func (s *Server) failJob(j *job, poolHit bool, err error) {
	s.mu.Lock()
	j.state = StateFailed
	j.finished = timeNow()
	j.errMsg = err.Error()
	j.poolHit = poolHit
	s.failed++
	s.inflight--
	s.mu.Unlock()
}

// runBatch executes one claimed batch (size 1 = a lone job).
func (s *Server) runBatch(batch []*job) {
	s.markRunning(batch)
	if len(batch) == 1 {
		s.runSingle(batch[0])
		return
	}
	s.mu.Lock()
	s.batches++
	s.batchedJobs += int64(len(batch))
	s.mu.Unlock()
	s.runShared(batch)
}

// localInput materializes rank's share of the job input: a contiguous slice
// of the inline keys, or the rank's generated workload partition.
func localInput(sp JobSpec, rank int) ([]uint64, error) {
	if len(sp.Keys) > 0 {
		lo, hi := rankShare(len(sp.Keys), sp.P, rank)
		return append([]uint64(nil), sp.Keys[lo:hi]...), nil
	}
	n := workload.LocalSize(sp.N, sp.P, rank)
	return workload.Spec{Dist: workload.Distribution(sp.Dist), Seed: sp.Seed, Span: sp.Span}.Rank(rank, n)
}

func workloadName(sp JobSpec) string {
	if len(sp.Keys) > 0 {
		return "inline"
	}
	return sp.Dist
}

// runSingle executes one job: on a pooled warm world when fault-free, on a
// dedicated single-shot world when the job injects faults (fault plans can
// permanently kill ranks, which would poison a shared world).
func (s *Server) runSingle(j *job) {
	sp := j.spec
	p := sp.P

	// Spilled jobs get a private scratch directory for their run store:
	// local sort runs, exchange spill files and durable checkpoint shards
	// all live under it, and it is reclaimed when the job finishes.
	var scratch string
	if sp.Spill {
		dir, err := os.MkdirTemp(s.cfg.ScratchDir, "dhsort-scratch-")
		if err != nil {
			s.failJob(j, false, err)
			return
		}
		scratch = dir
		defer os.RemoveAll(dir)
	}

	recs := make([]*metrics.Recorder, p)
	outs := make([][]uint64, p)
	verified := make([]bool, p)
	survivors := make([]int, p)
	finished := make([]bool, p)

	// Warm start: seed splitter refinement from a compatible completed
	// job's converged splitters, and capture this run's own splitters
	// through the sink for the next job.  The sink fires on every rank;
	// the first one wins (the values are identical across ranks).
	wkey, warmOK := warmKeyOf(j.tenant, sp)
	var (
		warmIvs   []dhsort.WarmInterval
		prevIters int
		warmHit   bool
	)
	if warmOK {
		warmIvs, prevIters, warmHit = s.warm.lookup(wkey)
	}
	var (
		sinkMu    sync.Mutex
		splitters []uint64
		sinkIters = -1
	)
	sink := func(bits []xmath.U128, iters int) {
		sinkMu.Lock()
		if sinkIters == -1 {
			sinkIters = iters
			splitters = make([]uint64, len(bits))
			for i, b := range bits {
				splitters[i] = b.Hi // Uint64Ops embeds the key in the high word
			}
		}
		sinkMu.Unlock()
	}

	fn := func(c *dhsort.Comm) error {
		rank := c.Rank()
		local, err := localInput(sp, rank)
		if err != nil {
			return err
		}
		rec := metrics.ForComm(c)
		recs[rank] = rec
		cfg := sp.config(rec)
		if sp.Spill {
			cfg.MemBudget = sp.MemBudget
			cfg.SpillDir = scratch
		}
		if warmOK {
			cfg.Warm = warmIvs // nil on a cache miss
			cfg.SplitterSink = sink
		}
		out, eff, err := dhsort.SortResilient(c, local, dhsort.Uint64Ops, cfg)
		if err != nil {
			rec.Finish()
			return err
		}
		ok := dhsort.IsGloballySorted(eff, out, dhsort.Uint64Ops)
		rec.Finish()
		rec.SetElements(len(local), len(out))
		outs[rank] = out
		verified[rank] = ok
		survivors[rank] = eff.Size()
		finished[rank] = true
		return nil
	}

	var (
		execErr  error
		makespan time.Duration
		hit      bool
		elastic  *metrics.ElasticStat
	)
	if sp.Fault != "" {
		plan, err := dhsort.ParseFaultPlan(sp.Fault)
		if err != nil {
			s.failJob(j, false, err)
			return
		}
		makespan, execErr = dhsort.RunTimedWithFaults(p, costModel(sp.Model), plan, fn)
	} else {
		key := poolKey{P: p, Model: sp.Model}
		pw, gotHit, err := s.pool.checkout(key)
		if err != nil {
			s.failJob(j, false, err)
			return
		}
		hit = gotHit
		execErr = pw.Execute(fn)
		makespan = pw.Makespan()
		elastic = elasticStatOf(pw)
		s.pool.checkin(key, pw)
	}
	if execErr != nil {
		s.failJob(j, hit, execErr)
		return
	}

	var output []uint64
	total, okAll, surv := 0, true, 0
	for r := 0; r < p; r++ {
		if !finished[r] {
			continue // a rank that died under the fault plan
		}
		output = append(output, outs[r]...)
		total += len(outs[r])
		okAll = okAll && verified[r]
		surv = survivors[r]
	}
	okAll = okAll && total == sp.n()

	if warmOK && okAll && sinkIters >= 0 && len(splitters) == p-1 {
		s.warm.store(wkey, splitters, sinkIters)
		if warmHit && prevIters > sinkIters {
			s.warm.addSaved(int64(prevIters - sinkIters))
		}
	}

	oc := outcome{
		output:    output,
		alg:       "dhsort",
		poolHit:   hit,
		warmStart: warmHit,
		verified:  okAll,
		survivors: surv,
		makespan:  makespan,
	}
	var live []*metrics.Recorder
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) > 0 {
		summary := metrics.Summarize(live)
		oc.spilledRuns = summary.SpilledRuns
		oc.spillBytes = summary.SpillBytes
		oc.timeImb = summary.TimeImbalance
		rec := metrics.NewRecord("dhsort", p, workload.LocalSize(sp.n(), p, 0),
			workloadName(sp), []time.Duration{makespan}, summary)
		rec.MemBudget = sp.MemBudget
		rec.Elastic = elastic
		oc.doc = metrics.JobDocument(sp.Model, 16, sp.Seed, sp.Fault, rec)
		oc.hasDoc = true
	}
	s.complete(j, oc)
}

// elasticStatOf captures a pooled world's elasticity history for the job's
// metrics record: nil for worlds that never changed size, so pre-existing
// documents stay byte-identical.
func elasticStatOf(pw *dhsort.PersistentWorld) *metrics.ElasticStat {
	joined, removed := pw.Joined(), pw.Removed()
	if joined == 0 && removed == 0 {
		return nil
	}
	return &metrics.ElasticStat{BaseP: pw.BaseSize(), JoinedRanks: joined, RemovedRanks: removed}
}

// runShared executes several compatible small jobs as ONE world run: every
// key is tagged with its job index and the union is sorted once by
// (Job, Key), amortizing the world's supersteps over the whole batch.
func (s *Server) runShared(batch []*job) {
	sp := batch[0].spec // execution config is identical across the batch
	p := sp.P
	recs := make([]*metrics.Recorder, p)
	outs := make([][]batchItem, p)
	verified := make([]bool, p)

	fn := func(c *dhsort.Comm) error {
		rank := c.Rank()
		var local []batchItem
		for bi, bj := range batch {
			ks, err := localInput(bj.spec, rank)
			if err != nil {
				return err
			}
			for _, k := range ks {
				local = append(local, batchItem{Job: uint16(bi), Key: k})
			}
		}
		rec := metrics.ForComm(c)
		recs[rank] = rec
		out, err := dhsort.Sort(c, local, batchOps{}, sp.config(rec))
		if err != nil {
			rec.Finish()
			return err
		}
		ok := dhsort.IsGloballySorted(c, out, batchOps{})
		rec.Finish()
		rec.SetElements(len(local), len(out))
		outs[rank] = out
		verified[rank] = ok
		return nil
	}

	key := poolKey{P: p, Model: sp.Model}
	pw, hit, err := s.pool.checkout(key)
	if err != nil {
		for _, j := range batch {
			s.failJob(j, false, err)
		}
		return
	}
	execErr := pw.Execute(fn)
	makespan := pw.Makespan()
	elastic := elasticStatOf(pw)
	s.pool.checkin(key, pw)
	if execErr != nil {
		for _, j := range batch {
			s.failJob(j, hit, execErr)
		}
		return
	}

	okAll := true
	perJob := make([][]uint64, len(batch))
	for r := 0; r < p; r++ {
		okAll = okAll && verified[r]
		for bi, ks := range splitByJob(outs[r], len(batch)) {
			perJob[bi] = append(perJob[bi], ks...)
		}
	}

	var live []*metrics.Recorder
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	summary := metrics.Summarize(live)
	for bi, j := range batch {
		jobOK := okAll && len(perJob[bi]) == j.spec.n()
		oc := outcome{
			output:    perJob[bi],
			alg:       "dhsort-batch",
			batched:   true,
			batchSize: len(batch),
			poolHit:   hit,
			verified:  jobOK,
			survivors: p,
			makespan:  makespan,
		}
		if len(live) > 0 {
			oc.timeImb = summary.TimeImbalance
			rec := metrics.NewRecord("dhsort-batch", p, workload.LocalSize(j.spec.n(), p, 0),
				workloadName(j.spec), []time.Duration{makespan}, summary)
			rec.Elastic = elastic
			oc.doc = metrics.JobDocument(j.spec.Model, 16, j.spec.Seed, "", rec)
			oc.hasDoc = true
		}
		s.complete(j, oc)
	}
}
