package server

import (
	"math"
	"sync"
	"time"
)

// quotaTable is the per-tenant admission quota: a classic token bucket per
// tenant, refilled at rate jobs/second up to burst tokens.  A submit that
// finds an empty bucket is rejected with a Retry-After derived from the
// refill rate — tenants cannot starve each other through the shared queue.
type quotaTable struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate, burst float64) *quotaTable {
	return &quotaTable{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// allow consumes one token from tenant's bucket.  On rejection it returns
// the suggested Retry-After duration until a token will be available.
func (t *quotaTable) allow(tenant string) (bool, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := timeNow()
	b, ok := t.buckets[tenant]
	if !ok {
		b = &bucket{tokens: t.burst, last: now}
		t.buckets[tenant] = b
	}
	b.tokens = math.Min(t.burst, b.tokens+now.Sub(b.last).Seconds()*t.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if t.rate <= 0 {
		return false, time.Hour
	}
	wait := time.Duration((1 - b.tokens) / t.rate * float64(time.Second))
	return false, wait
}
