// Package server is the engine of the sort service: a bounded job queue
// with admission control, per-tenant token-bucket quotas, a pool of warm
// persistent worlds reused across jobs, batching of small compatible jobs
// into one shared world run, and an in-memory ring of per-job
// dhsort-bench/v1 metrics documents.  It knows nothing about HTTP; the
// internal/api package is the transport on top (the serverdb/api layering
// of the exemplar repo).
package server

import (
	"fmt"
	"time"

	"dhsort"
	"dhsort/internal/fault"
	"dhsort/internal/workload"
)

// JobSpec is one sort job as submitted by a client.  Exactly one of Keys
// (inline data) or N (a generated workload) must be set.  The zero values
// of the remaining fields pick the server defaults.
type JobSpec struct {
	// Keys is the inline input (small jobs, exact data).
	Keys []uint64 `json:"keys,omitempty"`
	// N requests a generated workload of this many keys.
	N int `json:"n,omitempty"`
	// Dist is the workload distribution (default "uniform").
	Dist string `json:"dist,omitempty"`
	// Seed is the workload seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Span bounds the workload key range (default 1e9; 0 means default).
	Span uint64 `json:"span,omitempty"`
	// P is the world size (default the server's).
	P int `json:"p,omitempty"`
	// Exchange selects the data-exchange backend (default "auto").
	Exchange string `json:"exchange,omitempty"`
	// Merge selects the local merge strategy (default "resort").
	Merge string `json:"merge,omitempty"`
	// Model prices the run on a cost model: "none" (real time, default),
	// "pgas" or "mpi" (SuperMUC, 16 ranks/node).
	Model string `json:"model,omitempty"`
	// Threads is the intra-rank worker budget (0 = GOMAXPROCS in real
	// time; forced to 1 under a cost model for reproducible clocks).
	Threads int `json:"threads,omitempty"`
	// Kernel forces the Local Sort kernel ("radix", "task-merge",
	// "introsort"; empty = dispatch).
	Kernel string `json:"kernel,omitempty"`
	// Epsilon is the load-balance threshold (0 = perfect partitioning).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Fault is a seeded fault schedule in fault.Parse syntax — chaos in
	// prod.  Fault-injecting jobs run on dedicated single-shot worlds,
	// never pooled or batched.
	Fault string `json:"fault,omitempty"`
	// Recovery selects permanent-death recovery ("respawn" or "shrink").
	Recovery string `json:"recovery,omitempty"`
	// Probes is the number of histogram probes per unfinished splitter per
	// refinement round (0/1 = classic bisection; up to dhsort.MaxProbes).
	Probes int `json:"probes,omitempty"`
	// NoBatch opts the job out of batching.
	NoBatch bool `json:"no_batch,omitempty"`
	// NoWarm opts the job out of the warm-start splitter cache.
	NoWarm bool `json:"no_warm,omitempty"`
	// Spill runs the job out-of-core: local sort runs, exchange segments
	// and checkpoint shards go through a per-job scratch store on disk.
	Spill bool `json:"spill,omitempty"`
	// MemBudget is the per-rank in-memory budget in bytes for spilled jobs.
	// Setting it implies Spill; Spill with a zero budget defaults to one
	// eighth of the per-rank input (the spill ablation point).
	MemBudget int64 `json:"mem_budget,omitempty"`
}

// parseExchange maps the wire name to the facade constant.
func parseExchange(name string) (dhsort.ExchangeAlgorithm, error) {
	switch name {
	case "", "auto":
		return dhsort.ExchangeAuto, nil
	case "pairwise":
		return dhsort.ExchangePairwise, nil
	case "one-factor":
		return dhsort.ExchangeOneFactor, nil
	case "bruck":
		return dhsort.ExchangeBruck, nil
	case "hierarchical":
		return dhsort.ExchangeHierarchical, nil
	case "rma-put":
		return dhsort.ExchangeRMAPut, nil
	}
	return 0, fmt.Errorf("unknown exchange algorithm %q", name)
}

// parseMerge maps the wire name to the facade constant.
func parseMerge(name string) (dhsort.MergeStrategy, error) {
	switch name {
	case "", "resort":
		return dhsort.MergeResort, nil
	case "binary-tree":
		return dhsort.MergeBinaryTree, nil
	case "loser-tree":
		return dhsort.MergeLoserTree, nil
	case "overlap":
		return dhsort.MergeOverlap, nil
	}
	return 0, fmt.Errorf("unknown merge strategy %q", name)
}

// costModel maps the wire model name to a cost model ("" and "none" are
// real time).  The service pins the paper's 16-ranks-per-node pricing.
func costModel(name string) *dhsort.CostModel {
	switch name {
	case "pgas":
		return dhsort.SuperMUCModel(16, true)
	case "mpi":
		return dhsort.SuperMUCModel(16, false)
	}
	return nil
}

// normalize validates sp against the server limits and fills defaults
// in place.  Returns a *Reject (bad_request / too_large) on invalid specs.
func (s *Server) normalize(sp *JobSpec) error {
	if len(sp.Keys) > 0 && sp.N > 0 {
		return badRequest("exactly one of keys and n must be set, got both")
	}
	if len(sp.Keys) == 0 && sp.N <= 0 {
		return badRequest("one of keys (inline data) or n (generated workload) is required")
	}
	n := sp.N
	if len(sp.Keys) > 0 {
		n = len(sp.Keys)
	}
	if n > s.cfg.MaxN {
		return &Reject{HTTPStatus: 413, Reason: "too_large",
			Detail: fmt.Sprintf("job of %d keys exceeds the server limit of %d", n, s.cfg.MaxN)}
	}
	if sp.P == 0 {
		// The autoscaler's moving target when enabled, the static default
		// otherwise: this is where a grow decision starts steering new jobs
		// onto the larger worlds.
		sp.P = s.targetP()
	}
	if sp.P < 1 || sp.P > s.cfg.MaxP {
		return badRequest(fmt.Sprintf("p=%d outside the accepted range [1, %d]", sp.P, s.cfg.MaxP))
	}
	if sp.N > 0 {
		if sp.Dist == "" {
			sp.Dist = string(workload.Uniform)
		}
		ok := false
		for _, d := range workload.Distributions {
			if string(d) == sp.Dist {
				ok = true
				break
			}
		}
		if !ok {
			return badRequest(fmt.Sprintf("unknown workload distribution %q", sp.Dist))
		}
		if sp.Seed == 0 {
			sp.Seed = 1
		}
		if sp.Span == 0 {
			sp.Span = 1e9
		}
	}
	if _, err := parseExchange(sp.Exchange); err != nil {
		return badRequest(err.Error())
	}
	if sp.Exchange == "" {
		sp.Exchange = "auto"
	}
	if _, err := parseMerge(sp.Merge); err != nil {
		return badRequest(err.Error())
	}
	if sp.Merge == "" {
		sp.Merge = "resort"
	}
	switch sp.Model {
	case "":
		sp.Model = "none"
	case "none", "pgas", "mpi":
	default:
		return badRequest(fmt.Sprintf("unknown cost model %q (want none|pgas|mpi)", sp.Model))
	}
	if sp.Threads < 0 {
		return badRequest("threads must be non-negative")
	}
	if sp.Model != "none" && sp.Threads == 0 {
		// Reproducible virtual clocks need a pinned thread budget.
		sp.Threads = 1
	}
	switch sp.Kernel {
	case "", "radix", "task-merge", "introsort":
	default:
		return badRequest(fmt.Sprintf("unknown local sort kernel %q", sp.Kernel))
	}
	if sp.Epsilon < 0 {
		return badRequest("epsilon must be non-negative")
	}
	if sp.Probes < 0 || sp.Probes > dhsort.MaxProbes {
		return badRequest(fmt.Sprintf("probes=%d outside the accepted range [0, %d]", sp.Probes, dhsort.MaxProbes))
	}
	if sp.Fault != "" {
		if _, err := fault.Parse(sp.Fault); err != nil {
			return badRequest(err.Error())
		}
	}
	if sp.MemBudget < 0 {
		return badRequest("mem_budget must be non-negative")
	}
	if sp.MemBudget > 0 {
		sp.Spill = true
	}
	if sp.Spill && sp.MemBudget == 0 {
		// One eighth of the per-rank input: per-rank keys × 8 bytes / 8.
		per := (n + sp.P - 1) / sp.P
		sp.MemBudget = int64(per)
		if sp.MemBudget < 16 {
			sp.MemBudget = 16
		}
	}
	switch sp.Recovery {
	case "":
		sp.Recovery = dhsort.RecoveryRespawn
	case dhsort.RecoveryRespawn, dhsort.RecoveryShrink:
	default:
		return badRequest(fmt.Sprintf("unknown recovery mode %q (want respawn|shrink)", sp.Recovery))
	}
	return nil
}

// n returns the job's total key count.
func (sp JobSpec) n() int {
	if len(sp.Keys) > 0 {
		return len(sp.Keys)
	}
	return sp.N
}

// config converts the normalized spec to a facade sort configuration.
func (sp JobSpec) config(rec *dhsort.Recorder) dhsort.Config {
	ex, _ := parseExchange(sp.Exchange)
	mg, _ := parseMerge(sp.Merge)
	return dhsort.Config{
		Epsilon:  sp.Epsilon,
		Probes:   sp.Probes,
		Merge:    mg,
		Exchange: ex,
		Threads:  sp.Threads,
		Kernel:   sp.Kernel,
		Recovery: sp.Recovery,
		Recorder: rec,
	}
}

// batchKey groups jobs that may share one world run: identical execution
// configuration, differing only in data.
type batchKey struct {
	P        int
	Model    string
	Exchange string
	Merge    string
	Threads  int
	Kernel   string
	Epsilon  float64
	Probes   int
}

// batchKeyOf derives the compatibility key of a normalized spec.
func batchKeyOf(sp JobSpec) batchKey {
	return batchKey{
		P: sp.P, Model: sp.Model, Exchange: sp.Exchange, Merge: sp.Merge,
		Threads: sp.Threads, Kernel: sp.Kernel, Epsilon: sp.Epsilon,
		Probes: sp.Probes,
	}
}

// batchEligible reports whether a normalized spec may join a shared world
// run: fault-free, small, resident, and not opted out.  Spilled jobs are
// excluded because the batch embedding (batchOps) is not registered
// lossless, so a shared run would silently ignore the mem_budget; they run
// alone against their own scratch store instead.  Warm splitter starts stay
// available to spilled jobs — the spilled path refines splitters over the
// identical histogram protocol.
func (s *Server) batchEligible(sp JobSpec) bool {
	return !sp.NoBatch && sp.Fault == "" && !sp.Spill && sp.n() <= s.cfg.BatchMaxKeys
}

// rankShare returns the [lo, hi) slice bounds of rank r in a contiguous
// split of n keys over p ranks (the same fair split workload.LocalSize
// uses: the first n%p ranks get one extra).
func rankShare(n, p, r int) (int, int) {
	base, rem := n/p, n%p
	lo := r*base + min(r, rem)
	hi := lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

// timeNow is stubbed in tests that need deterministic quota refill.
var timeNow = time.Now
