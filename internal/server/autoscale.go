package server

import (
	"sort"
	"sync"
	"time"
)

// AutoscaleConfig tunes the load-driven autoscaler.  The policy samples the
// engine every Interval and steers the default world size ("the target")
// between MinP and MaxP: sustained admission pressure grows it, a queue
// idle past IdleTTL shrinks it back.  Warm pooled worlds are reshaped in
// place with the Grow/Shrink collectives, so scaling never cold-starts the
// pool.  Zero values pick the defaults in parentheses.
type AutoscaleConfig struct {
	Enabled       bool
	MinP          int           // smallest target (the server's default P)
	MaxP          int           // largest target (2 x MinP, capped at Config.MaxP)
	Step          int           // ranks joined/removed per scale action (4)
	GrowQueue     int           // queued jobs counted as pressure (2)
	GrowImbalance float64       // time-imbalance factor counted as pressure (1.5)
	Sustain       int           // consecutive pressured samples before a grow (3)
	IdleTTL       time.Duration // continuous idle before a shrink (30s)
	Cooldown      time.Duration // minimum spacing between scale actions (10s)
	Interval      time.Duration // sampling period (500ms)
}

func (c AutoscaleConfig) withDefaults(base Config) AutoscaleConfig {
	if c.MinP <= 0 {
		c.MinP = base.P
	}
	if c.MaxP <= 0 {
		c.MaxP = 2 * c.MinP
	}
	if c.MaxP > base.MaxP {
		c.MaxP = base.MaxP
	}
	if c.MaxP < c.MinP {
		c.MaxP = c.MinP
	}
	if c.Step <= 0 {
		c.Step = 4
	}
	if c.GrowQueue <= 0 {
		c.GrowQueue = 2
	}
	if c.GrowImbalance <= 0 {
		c.GrowImbalance = 1.5
	}
	if c.Sustain <= 0 {
		c.Sustain = 3
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = 30 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	return c
}

// AutoscaleStats is the autoscaler's counter snapshot on /v1/metrics.
// Grows/Shrinks count policy decisions (target changes); JoinedRanks,
// RemovedRanks and the *NS totals count the collective reshape work those
// decisions caused on warm pooled worlds.
type AutoscaleStats struct {
	Enabled        bool  `json:"enabled"`
	TargetP        int   `json:"target_p"`
	Grows          int64 `json:"grows"`
	Shrinks        int64 `json:"shrinks"`
	GrowNS         int64 `json:"grow_ns"`
	ShrinkNS       int64 `json:"shrink_ns"`
	JoinedRanks    int64 `json:"joined_ranks"`
	RemovedRanks   int64 `json:"removed_ranks"`
	ScaleDecisions int64 `json:"scale_decisions"`
}

// scaleSample is one observation of the engine, the policy's sole input.
type scaleSample struct {
	QueueLen   int     // admission queue length
	Inflight   int     // jobs currently running
	Imbalance  float64 // latest completed job's time-imbalance factor (0 = none yet)
	PoolMisses int64   // cumulative pool misses (cold world builds)
	TargetP    int     // current target world size
}

// scalePolicy turns a sample stream into scale deltas.  It is a pure state
// machine — no clocks, no randomness — so a fixed sample sequence always
// yields the same decision sequence, which is what makes the autoscaler
// testable and its behavior explainable from the metrics alone.  Durations
// are counted in samples (one per Interval).
type scalePolicy struct {
	cfg        AutoscaleConfig
	pressured  int   // consecutive pressured samples
	idleTicks  int   // consecutive fully-idle samples
	coolTicks  int   // samples left in the post-action cooldown
	lastMisses int64 // previous sample's cumulative miss count
	primed     bool  // lastMisses holds a real baseline
}

// decide consumes one sample and returns the rank delta to apply to the
// target: positive = grow, negative = shrink, zero = hold.
func (p *scalePolicy) decide(s scaleSample) int {
	missDelta := s.PoolMisses - p.lastMisses
	if !p.primed {
		missDelta, p.primed = 0, true
	}
	p.lastMisses = s.PoolMisses

	// Pressure: a backed-up queue, skewed completions with more work
	// waiting, or cold world builds while work is waiting.
	pressure := s.QueueLen >= p.cfg.GrowQueue ||
		(s.Imbalance >= p.cfg.GrowImbalance && s.QueueLen > 0) ||
		(missDelta > 0 && s.QueueLen > 0)
	idle := s.QueueLen == 0 && s.Inflight == 0
	switch {
	case pressure:
		p.pressured++
		p.idleTicks = 0
	case idle:
		p.pressured = 0
		p.idleTicks++
	default:
		p.pressured = 0
		p.idleTicks = 0
	}
	if p.coolTicks > 0 {
		p.coolTicks--
		return 0
	}
	if p.pressured >= p.cfg.Sustain && s.TargetP < p.cfg.MaxP {
		p.pressured = 0
		p.coolTicks = p.ticksOf(p.cfg.Cooldown)
		if d := p.cfg.MaxP - s.TargetP; d < p.cfg.Step {
			return d
		}
		return p.cfg.Step
	}
	if p.idleTicks >= p.ticksOf(p.cfg.IdleTTL) && s.TargetP > p.cfg.MinP {
		p.idleTicks = 0
		p.coolTicks = p.ticksOf(p.cfg.Cooldown)
		if d := s.TargetP - p.cfg.MinP; d < p.cfg.Step {
			return -d
		}
		return -p.cfg.Step
	}
	return 0
}

func (p *scalePolicy) ticksOf(d time.Duration) int {
	n := int(d / p.cfg.Interval)
	if n < 1 {
		n = 1
	}
	return n
}

// autoscaler runs the policy loop for a server: sample, decide, retarget,
// and reconcile the warm pool onto the target shape.
type autoscaler struct {
	s    *Server
	cfg  AutoscaleConfig
	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	target   int
	managed  map[int]bool // every P the target has ever held
	policy   scalePolicy
	grows    int64
	shrinks  int64
	growNS   int64
	shrinkNS int64
	joined   int64
	removed  int64
	samples  int64
}

func newAutoscaler(s *Server, cfg AutoscaleConfig) *autoscaler {
	return &autoscaler{
		s: s, cfg: cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		target:  cfg.MinP,
		managed: map[int]bool{cfg.MinP: true},
		policy:  scalePolicy{cfg: cfg},
	}
}

func (a *autoscaler) loop() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
		}
		a.tick()
	}
}

// tick is one policy iteration: observe, decide, then reshape idle worlds.
func (a *autoscaler) tick() {
	sm := a.s.sample()
	a.mu.Lock()
	sm.TargetP = a.target
	delta := a.policy.decide(sm)
	a.samples++
	if delta > 0 {
		a.grows++
		a.target += delta
		a.managed[a.target] = true
	} else if delta < 0 {
		a.shrinks++
		a.target += delta
		a.managed[a.target] = true
	}
	a.mu.Unlock()
	a.reconcile()
}

// reconcile brings idle managed worlds to the target shape with the elastic
// collectives: worlds below the target admit joiner ranks (Grow), worlds
// above it shed ranks through the ULFM revoke/agree/shrink path.  Only
// shapes the target has held are touched, so explicitly-requested per-job
// shapes keep their warm worlds.  Busy worlds are reshaped on a later tick,
// once they come back to the shelf.
func (a *autoscaler) reconcile() {
	a.mu.Lock()
	target := a.target
	a.mu.Unlock()
	shapes := a.s.pool.idleShapes()
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].P != shapes[j].P {
			return shapes[i].P < shapes[j].P
		}
		return shapes[i].Model < shapes[j].Model
	})
	for _, k := range shapes {
		a.mu.Lock()
		managed := a.managed[k.P]
		a.mu.Unlock()
		if k.P == target || !managed {
			continue
		}
		for _, pw := range a.s.pool.takeIdle(k) {
			start := time.Now()
			var err error
			if k.P < target {
				err = pw.Grow(target - k.P)
			} else {
				err = pw.Shrink(k.P - target)
			}
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				// A failed reshape either broke the world (checkin retires
				// it) or left it intact at its old shape (re-shelved there).
				a.s.pool.checkin(k, pw)
				continue
			}
			a.mu.Lock()
			if k.P < target {
				a.joined += int64(target - k.P)
				a.growNS += ns
			} else {
				a.removed += int64(k.P - target)
				a.shrinkNS += ns
			}
			a.mu.Unlock()
			a.s.pool.checkin(poolKey{P: target, Model: k.Model}, pw)
		}
	}
}

func (a *autoscaler) targetP() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.target
}

func (a *autoscaler) statsLocked() AutoscaleStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AutoscaleStats{
		Enabled: true, TargetP: a.target,
		Grows: a.grows, Shrinks: a.shrinks,
		GrowNS: a.growNS, ShrinkNS: a.shrinkNS,
		JoinedRanks: a.joined, RemovedRanks: a.removed,
		ScaleDecisions: a.samples,
	}
}

func (a *autoscaler) close() {
	close(a.stop)
	<-a.done
}
