package server

import (
	"errors"
	"testing"
	"time"

	"dhsort"
)

// TestScalePolicyDeterministic pins the autoscaler's contract: the policy
// is a pure state machine, so a fixed sample sequence always yields the
// same decision sequence — grow after Sustain pressured ticks, silence
// through the cooldown, shrink after IdleTTL of continuous idle.
func TestScalePolicyDeterministic(t *testing.T) {
	cfg := AutoscaleConfig{
		Enabled: true, MinP: 4, MaxP: 12, Step: 4,
		GrowQueue: 2, GrowImbalance: 1.5, Sustain: 3,
		IdleTTL: 4 * time.Second, Cooldown: 2 * time.Second, Interval: time.Second,
	}
	// One pressured burst, continued pressure through the cooldown, then a
	// long idle stretch.  TargetP tracks the policy's own decisions, as the
	// autoscaler does.  Pressure keeps accruing during the cooldown, so the
	// second grow fires on the first tick after it expires.
	samples := []scaleSample{
		{QueueLen: 0},                // 0: idle
		{QueueLen: 3},                // 1: pressure 1
		{QueueLen: 4},                // 2: pressure 2
		{QueueLen: 5},                // 3: pressure 3 -> grow (4 -> 8)
		{QueueLen: 5},                // 4: cooldown tick 1: held
		{QueueLen: 5},                // 5: cooldown tick 2: held
		{QueueLen: 5},                // 6: cooldown over, pressure sustained -> grow (8 -> 12)
		{QueueLen: 0}, {QueueLen: 0}, // 7, 8: cooldown; idle starts accruing
		{QueueLen: 0}, {QueueLen: 0}, // 9, 10: idle reaches IdleTTL -> shrink (12 -> 8)
		{QueueLen: 0}, {QueueLen: 0}, // 11, 12: cooldown, idle re-accrues
		{QueueLen: 0}, {QueueLen: 0}, // 13, 14: second shrink (8 -> 4)
		{QueueLen: 0}, {QueueLen: 0}, // 15, 16: already at the floor: hold
	}
	run := func() []int {
		p := scalePolicy{cfg: cfg}
		target := cfg.MinP
		var ds []int
		for _, sm := range samples {
			sm.TargetP = target
			d := p.decide(sm)
			target += d
			ds = append(ds, d)
		}
		return ds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
	// Grows land exactly where the schedule says: the third pressured tick,
	// and the first post-cooldown tick of sustained pressure.
	if a[3] != 4 || a[6] != 4 {
		t.Fatalf("grow decisions = %v, want +4 at indices 3 and 6", a)
	}
	for _, i := range []int{4, 5} {
		if a[i] != 0 {
			t.Fatalf("decision %d = %d inside cooldown, want 0", i, a[i])
		}
	}
	// Shrinks fire each time idleTicks reaches IdleTTL/Interval = 4: at
	// sample 10 and, after the post-shrink cooldown, at sample 14.
	shrinks := 0
	for i, d := range a {
		if d < 0 {
			shrinks++
			if i != 10 && i != 14 {
				t.Fatalf("shrink at sample %d, want only at 10 and 14: %v", i, a)
			}
		}
	}
	if shrinks != 2 {
		t.Fatalf("got %d shrinks, want 2: %v", shrinks, a)
	}
	// The target never leaves [MinP, MaxP].
	target := cfg.MinP
	for i, d := range a {
		target += d
		if target < cfg.MinP || target > cfg.MaxP {
			t.Fatalf("target %d out of [%d, %d] after sample %d", target, cfg.MinP, cfg.MaxP, i)
		}
	}
}

// TestScalePolicyImbalanceAndMissPressure: skewed completions or cold pool
// builds only count as pressure while work is actually waiting.
func TestScalePolicyImbalanceAndMissPressure(t *testing.T) {
	cfg := AutoscaleConfig{MinP: 4, MaxP: 8, Step: 4, GrowQueue: 4,
		GrowImbalance: 1.5, Sustain: 2, IdleTTL: time.Hour,
		Cooldown: time.Second, Interval: time.Second}
	p := scalePolicy{cfg: cfg}
	// High imbalance with an empty queue is not pressure.
	for i := 0; i < 4; i++ {
		if d := p.decide(scaleSample{Imbalance: 3.0, TargetP: 4}); d != 0 {
			t.Fatalf("idle-queue imbalance triggered a grow at tick %d", i)
		}
	}
	// With one queued job it is.
	if d := p.decide(scaleSample{Imbalance: 3.0, QueueLen: 1, TargetP: 4}); d != 0 {
		t.Fatal("grew before Sustain")
	}
	if d := p.decide(scaleSample{Imbalance: 3.0, QueueLen: 1, TargetP: 4}); d != 4 {
		t.Fatalf("second pressured tick = %d, want +4", d)
	}

	// Pool misses: only the delta since the last sample counts, and again
	// only with a queue.
	p2 := scalePolicy{cfg: cfg}
	if d := p2.decide(scaleSample{PoolMisses: 50, TargetP: 4}); d != 0 {
		t.Fatal("priming sample counted historical misses as pressure")
	}
	p2.decide(scaleSample{PoolMisses: 51, QueueLen: 1, TargetP: 4})
	if d := p2.decide(scaleSample{PoolMisses: 52, QueueLen: 1, TargetP: 4}); d != 4 {
		t.Fatalf("sustained miss pressure = %d, want +4", d)
	}
}

// TestAutoscalerReshapesIdleWorlds: the reconcile loop grows an idle warm
// world to the target shape in place, re-shelves it under the new key, and
// shrinks it back when the target drops — counting joined and removed
// ranks.  Only managed shapes are touched: a world of a shape the target
// never held keeps its size.
func TestAutoscalerReshapesIdleWorlds(t *testing.T) {
	s := newTestServer(Config{P: 4})
	defer s.Close()
	a := newAutoscaler(s, AutoscaleConfig{
		Enabled: true, MinP: 4, MaxP: 8, Step: 4,
		Interval: time.Second, IdleTTL: time.Hour, Cooldown: time.Second,
		Sustain: 2, GrowQueue: 2, GrowImbalance: 1.5,
	}.withDefaults(s.cfg))

	// Warm a P=4 world through a real job, and shelve a P=6 world the
	// autoscaler must not touch.
	j := mkJob(t, s, "e-1", JobSpec{Keys: []uint64{4, 2, 9, 1}, P: 4, NoBatch: true})
	s.runBatch([]*job{j})
	pinned, _ := dhsort.NewPersistentWorld(6, nil)
	s.pool.checkin(poolKey{P: 6, Model: "none"}, pinned)

	// Grow: retarget to 8 and reconcile.
	a.mu.Lock()
	a.target = 8
	a.managed[8] = true
	a.mu.Unlock()
	a.reconcile()

	pw, hit, err := s.pool.checkout(poolKey{P: 8, Model: "none"})
	if err != nil || !hit {
		t.Fatalf("checkout at target shape: hit=%v err=%v", hit, err)
	}
	if pw.Size() != 8 || pw.BaseSize() != 4 || pw.Joined() != 4 {
		t.Fatalf("grown world: size=%d base=%d joined=%d, want 8/4/4", pw.Size(), pw.BaseSize(), pw.Joined())
	}
	// The grown world still sorts.
	s.pool.checkin(poolKey{P: 8, Model: "none"}, pw)
	j2 := mkJob(t, s, "e-2", JobSpec{Keys: []uint64{7, 3, 8, 5, 6, 1, 2, 4}, P: 8, NoBatch: true})
	s.runBatch([]*job{j2})
	out, st, err := s.Result("e-2")
	if err != nil || !st.Verified || !st.PoolHit {
		t.Fatalf("job on grown world: err=%v verified=%v pool_hit=%v", err, st.Verified, st.PoolHit)
	}
	if !equalU64(out, []uint64{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("grown world mis-sorted: %v", out)
	}

	// Shrink: retarget back to 4.
	a.mu.Lock()
	a.target = 4
	a.mu.Unlock()
	a.reconcile()
	pw2, hit2, err := s.pool.checkout(poolKey{P: 4, Model: "none"})
	if err != nil || !hit2 {
		t.Fatalf("checkout after shrink: hit=%v err=%v", hit2, err)
	}
	if pw2.Size() != 4 || pw2.Removed() != 4 {
		t.Fatalf("shrunk world: size=%d removed=%d, want 4/4", pw2.Size(), pw2.Removed())
	}
	s.pool.checkin(poolKey{P: 4, Model: "none"}, pw2)

	// The unmanaged P=6 world was left alone.
	pw6, hit6, err := s.pool.checkout(poolKey{P: 6, Model: "none"})
	if err != nil || !hit6 || pw6.Size() != 6 {
		t.Fatalf("unmanaged world touched: hit=%v size=%d err=%v", hit6, pw6.Size(), err)
	}
	s.pool.checkin(poolKey{P: 6, Model: "none"}, pw6)

	st8 := a.statsLocked()
	if st8.JoinedRanks != 4 || st8.RemovedRanks != 4 {
		t.Fatalf("autoscale stats = %+v, want joined=4 removed=4", st8)
	}
	if st8.GrowNS <= 0 || st8.ShrinkNS <= 0 {
		t.Fatalf("autoscale stats did not time the collectives: %+v", st8)
	}
}

// TestPoolChurnRetireRebuild: a job that breaks its world gets the world
// retired on checkin, and the next checkout of that shape rebuilds cold.
func TestPoolChurnRetireRebuild(t *testing.T) {
	s := newTestServer(Config{P: 3})
	defer s.Close()
	key := poolKey{P: 3, Model: "none"}
	pw, hit, err := s.pool.checkout(key)
	if err != nil || hit {
		t.Fatalf("first checkout: hit=%v err=%v", hit, err)
	}
	execErr := pw.Execute(func(c *dhsort.Comm) error {
		if c.Rank() == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if execErr == nil {
		t.Fatal("failing job reported no error")
	}
	if pw.Healthy() {
		t.Fatal("world healthy after a rank died")
	}
	s.pool.checkin(key, pw)
	if m := s.pool.stats(); m.Retired != 1 || m.Idle != 0 {
		t.Fatalf("broken world not retired: %+v", m)
	}

	// Demand rebuilds: the next checkout is a miss that builds a fresh,
	// healthy world.
	pw2, hit2, err := s.pool.checkout(key)
	if err != nil || hit2 {
		t.Fatalf("rebuild checkout: hit=%v err=%v", hit2, err)
	}
	if !pw2.Healthy() || pw2.Size() != 3 {
		t.Fatalf("rebuilt world unhealthy or wrong size %d", pw2.Size())
	}
	s.pool.checkin(key, pw2)
	if m := s.pool.stats(); m.Built != 2 || m.Misses != 2 || m.Idle != 1 {
		t.Fatalf("rebuild accounting = %+v, want built=2 misses=2 idle=1", m)
	}
}

// TestBrokenWorldFailsOnlyItsBatch: a world broken before a shared batch
// fails exactly that batch's jobs with the typed ErrWorldBroken, and the
// next batch runs clean on a rebuilt world.
func TestBrokenWorldFailsOnlyItsBatch(t *testing.T) {
	s := newTestServer(Config{P: 3})
	defer s.Close()
	key := poolKey{P: 3, Model: "none"}

	// Break a world and plant it on the shelf, bypassing checkin's health
	// screen — modelling a world whose poisoning the pool hasn't seen yet.
	pw, _, err := s.pool.checkout(key)
	if err != nil {
		t.Fatal(err)
	}
	_ = pw.Execute(func(c *dhsort.Comm) error {
		if c.Rank() == 0 {
			return errors.New("boom")
		}
		return nil
	})
	s.pool.mu.Lock()
	s.pool.idle[key] = append(s.pool.idle[key], pw)
	s.pool.mu.Unlock()

	batch := []*job{
		mkJob(t, s, "b-1", JobSpec{Keys: []uint64{3, 1, 2}, P: 3}),
		mkJob(t, s, "b-2", JobSpec{Keys: []uint64{9, 7, 8}, P: 3}),
	}
	s.runBatch(batch)
	for _, j := range batch {
		st, _ := s.Status(j.id)
		if st.State != StateFailed {
			t.Fatalf("job %s on broken world: state=%s, want failed", j.id, st.State)
		}
		if _, _, err := s.Result(j.id); err == nil {
			t.Fatalf("job %s returned a result off a broken world", j.id)
		}
	}
	// The failure is the typed world-broken error, surfaced verbatim.
	if st, _ := s.Status("b-1"); st.Error != dhsort.ErrWorldBroken.Error() {
		t.Fatalf("error = %q, want %q", st.Error, dhsort.ErrWorldBroken)
	}

	// Only that batch: the same jobs resubmitted run clean on a rebuilt
	// world.
	batch2 := []*job{
		mkJob(t, s, "b-3", JobSpec{Keys: []uint64{3, 1, 2}, P: 3}),
		mkJob(t, s, "b-4", JobSpec{Keys: []uint64{9, 7, 8}, P: 3}),
	}
	s.runBatch(batch2)
	for i, want := range [][]uint64{{1, 2, 3}, {7, 8, 9}} {
		out, st, err := s.Result(batch2[i].id)
		if err != nil || !st.Verified {
			t.Fatalf("job %s after rebuild: err=%v verified=%v", batch2[i].id, err, st.Verified)
		}
		if !equalU64(out, want) {
			t.Fatalf("job %s output = %v, want %v", batch2[i].id, out, want)
		}
	}
}

// TestDrainRejectsAndQuiesces: after Drain, submissions bounce with a typed
// 503 + Retry-After while status stays queryable, and Quiesce reports the
// engine idle.
func TestDrainRejectsAndQuiesces(t *testing.T) {
	s := newTestServer(Config{P: 2})
	defer s.Close()
	j := mkJob(t, s, "d-1", JobSpec{Keys: []uint64{2, 1}, P: 2, NoBatch: true})
	s.runBatch([]*job{j})

	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	_, err := s.Submit("t", JobSpec{Keys: []uint64{5, 4}})
	var rej *Reject
	if !errors.As(err, &rej) || rej.HTTPStatus != 503 || rej.Reason != "draining" {
		t.Fatalf("submit while draining = %v, want 503 draining", err)
	}
	if rej.RetryAfter < 1 {
		t.Error("draining rejection carries no Retry-After")
	}
	// Admitted work stays visible.
	if st, ok := s.Status("d-1"); !ok || st.State != StateDone {
		t.Fatalf("status lost while draining: %+v ok=%v", st, ok)
	}
	if !s.Quiesce(time.Second) {
		t.Fatal("Quiesce timed out on an idle engine")
	}
	m := s.MetricsSnapshot()
	if !m.Draining || m.RejectedDraining != 1 {
		t.Fatalf("metrics = draining=%v rejected_draining=%d, want true/1", m.Draining, m.RejectedDraining)
	}
}

// TestAutoscaleEndToEnd drives the real sampling loop with hot thresholds:
// queued work grows the target (and the counters), idleness shrinks it back
// to the floor.
func TestAutoscaleEndToEnd(t *testing.T) {
	cfg := Config{P: 2, Workers: 1, QueueDepth: 64,
		QuotaRate: 1000, QuotaBurst: 1000,
		Autoscale: AutoscaleConfig{
			Enabled: true, MinP: 2, MaxP: 4, Step: 2,
			GrowQueue: 1, Sustain: 2,
			IdleTTL: 40 * time.Millisecond, Cooldown: 10 * time.Millisecond,
			Interval: 5 * time.Millisecond,
		}}
	s := New(cfg)
	defer s.Close()

	// Flood: enough queued jobs that the sampler sees sustained pressure.
	for i := 0; i < 24; i++ {
		if _, err := s.Submit("t", JobSpec{N: 20000, Dist: "zipf", Seed: uint64(i)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.MetricsSnapshot().Autoscale; st.Grows >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s.MetricsSnapshot().Autoscale
	if st.Grows < 1 || st.TargetP <= 2 {
		t.Fatalf("no grow under flood: %+v", st)
	}

	// Idle: the queue empties, IdleTTL elapses, the target returns to MinP.
	for time.Now().Before(deadline) {
		st = s.MetricsSnapshot().Autoscale
		if st.Shrinks >= 1 && st.TargetP == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Shrinks < 1 || st.TargetP != 2 {
		t.Fatalf("no shrink back to the floor when idle: %+v", st)
	}
	if st.ScaleDecisions == 0 || !st.Enabled {
		t.Fatalf("autoscale stats incomplete: %+v", st)
	}
}
