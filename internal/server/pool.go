package server

import (
	"sync"

	"dhsort"
)

// poolKey identifies a class of interchangeable worlds: same rank count,
// same cost model.
type poolKey struct {
	P     int
	Model string
}

// worldPool keeps warm persistent worlds between jobs.  A checkout either
// reuses an idle world of the right shape (a pool hit — the job skips rank
// goroutine and communicator construction) or builds a fresh one.  Checkin
// retires unhealthy worlds (a failed job permanently breaks its world) and
// caps idle inventory per shape.  Fault-injecting jobs never touch the
// pool: they run on dedicated single-shot worlds.
type worldPool struct {
	mu      sync.Mutex
	maxIdle int
	idle    map[poolKey][]*dhsort.PersistentWorld
	closed  bool

	hits    int64
	misses  int64
	built   int64
	retired int64
}

// PoolStats is the pool's counter snapshot, exported on /v1/metrics.  Hits
// count checkouts served by a warm world; Misses count checkouts that had
// to build one.
type PoolStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Built   int64 `json:"built"`
	Retired int64 `json:"retired"`
	Idle    int   `json:"idle"`
}

func newWorldPool(maxIdle int) *worldPool {
	return &worldPool{maxIdle: maxIdle, idle: make(map[poolKey][]*dhsort.PersistentWorld)}
}

// checkout returns a world for key, reporting whether it was a pool hit.
func (wp *worldPool) checkout(key poolKey) (*dhsort.PersistentWorld, bool, error) {
	wp.mu.Lock()
	if list := wp.idle[key]; len(list) > 0 {
		pw := list[len(list)-1]
		list[len(list)-1] = nil
		wp.idle[key] = list[:len(list)-1]
		wp.hits++
		wp.mu.Unlock()
		return pw, true, nil
	}
	wp.misses++
	wp.built++
	wp.mu.Unlock()
	pw, err := dhsort.NewPersistentWorld(key.P, costModel(key.Model))
	if err != nil {
		return nil, false, err
	}
	return pw, false, nil
}

// checkin returns a world after a job.  Broken worlds are closed and
// counted as retired; healthy ones go back on the shelf unless the shape's
// idle cap is reached.
func (wp *worldPool) checkin(key poolKey, pw *dhsort.PersistentWorld) {
	if !pw.Healthy() {
		pw.Close()
		wp.mu.Lock()
		wp.retired++
		wp.mu.Unlock()
		return
	}
	wp.mu.Lock()
	if wp.closed || len(wp.idle[key]) >= wp.maxIdle {
		wp.retired++
		wp.mu.Unlock()
		pw.Close()
		return
	}
	wp.idle[key] = append(wp.idle[key], pw)
	wp.mu.Unlock()
}

// takeIdle removes and returns every idle world shelved under key.  The
// hit/miss counters are untouched: the autoscaler uses this to reshape warm
// inventory, which is neither a checkout hit nor a cold build.
func (wp *worldPool) takeIdle(key poolKey) []*dhsort.PersistentWorld {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if wp.closed {
		return nil
	}
	list := wp.idle[key]
	delete(wp.idle, key)
	return list
}

// idleShapes lists the shapes currently holding at least one idle world.
func (wp *worldPool) idleShapes() []poolKey {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	ks := make([]poolKey, 0, len(wp.idle))
	for k, list := range wp.idle {
		if len(list) > 0 {
			ks = append(ks, k)
		}
	}
	return ks
}

func (wp *worldPool) stats() PoolStats {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	idle := 0
	for _, list := range wp.idle {
		idle += len(list)
	}
	return PoolStats{Hits: wp.hits, Misses: wp.misses, Built: wp.built, Retired: wp.retired, Idle: idle}
}

// closeAll shuts down every idle world and refuses future checkins.
func (wp *worldPool) closeAll() {
	wp.mu.Lock()
	wp.closed = true
	var all []*dhsort.PersistentWorld
	for _, list := range wp.idle {
		all = append(all, list...)
	}
	wp.idle = make(map[poolKey][]*dhsort.PersistentWorld)
	wp.mu.Unlock()
	for _, pw := range all {
		pw.Close()
	}
}
