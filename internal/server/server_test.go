package server

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"dhsort/internal/xmath"
)

// newTestServer builds a server with no background workers, so tests drive
// runBatch deterministically.
func newTestServer(cfg Config) *Server {
	cfg.Workers = 1
	s := New(cfg)
	return s
}

// mkJob registers a job directly in the table, bypassing the queue, so the
// test can hand it to runBatch itself and the background worker never races
// for it.
func mkJob(t *testing.T, s *Server, id string, spec JobSpec) *job {
	t.Helper()
	if err := s.normalize(&spec); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	j := &job{id: id, tenant: "t", spec: spec, state: StateQueued, submitted: timeNow()}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	return j
}

func sortedCopy(ks []uint64) []uint64 {
	out := append([]uint64(nil), ks...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBatchOpsRoundtripAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := batchOps{}
	prev := batchItem{}
	first := true
	for i := 0; i < 2000; i++ {
		it := batchItem{Job: uint16(rng.Intn(1 << 16)), Key: rng.Uint64()}
		if got := ops.FromBits(ops.ToBits(it)); got != it {
			t.Fatalf("roundtrip: %+v -> %+v", it, got)
		}
		if !first {
			lessKeys := ops.Less(prev, it)
			a, b := ops.ToBits(prev), ops.ToBits(it)
			lessBits := a.Hi < b.Hi || (a.Hi == b.Hi && a.Lo < b.Lo)
			if lessKeys != lessBits {
				t.Fatalf("embedding not monotone for %+v vs %+v", prev, it)
			}
		}
		prev, first = it, false
	}
	if xmath.U128FromParts(1, 0) != (xmath.U128{Hi: 1}) {
		t.Fatal("U128 layout assumption broken")
	}
}

// TestRunSharedBatchesJobs drives the shared-world path directly: several
// compatible jobs, one world run, every job's output sorted and
// multiset-identical to its own input.
func TestRunSharedBatchesJobs(t *testing.T) {
	s := newTestServer(Config{P: 4, QuotaRate: 1000, QuotaBurst: 1000})
	defer s.Close()

	rng := rand.New(rand.NewSource(42))
	var batch []*job
	var want [][]uint64
	for i := 0; i < 5; i++ {
		n := 50 + rng.Intn(200)
		ks := make([]uint64, n)
		for k := range ks {
			ks[k] = rng.Uint64()
		}
		batch = append(batch, mkJob(t, s, ids(i), JobSpec{Keys: ks, P: 4}))
		want = append(want, sortedCopy(ks))
	}
	s.runBatch(batch)

	for i, j := range batch {
		out, st, err := s.Result(j.id)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !st.Batched || st.BatchSize != len(batch) {
			t.Errorf("job %d: batched=%v size=%d, want true/%d", i, st.Batched, st.BatchSize, len(batch))
		}
		if !st.Verified {
			t.Errorf("job %d not verified", i)
		}
		if !equalU64(out, want[i]) {
			t.Errorf("job %d: output differs from sorted input (len %d vs %d)", i, len(out), len(want[i]))
		}
	}
	if m := s.MetricsSnapshot(); m.Batches != 1 || m.BatchedJobs != int64(len(batch)) {
		t.Errorf("batch counters = %d/%d, want 1/%d", m.Batches, m.BatchedJobs, len(batch))
	}
}

func ids(i int) string { return string(rune('a'+i)) + "-job" }

// TestRunSingleWorkloadJob runs a generated-workload job through the pooled
// path and checks the output is a sorted permutation of the workload.
func TestRunSingleWorkloadJob(t *testing.T) {
	s := newTestServer(Config{P: 4})
	defer s.Close()
	j := mkJob(t, s, "w-1", JobSpec{N: 3000, Dist: "zipf", Seed: 9, P: 4})
	s.runBatch([]*job{j})
	out, st, err := s.Result("w-1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Verified || st.State != StateDone {
		t.Fatalf("status = %+v, want verified done", st)
	}
	if len(out) != 3000 {
		t.Fatalf("output has %d keys, want 3000", len(out))
	}
	var all []uint64
	for r := 0; r < 4; r++ {
		ks, err := localInput(j.spec, r)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, ks...)
	}
	if !equalU64(out, sortedCopy(all)) {
		t.Error("output is not the sorted workload")
	}
}

// TestPoolHitOnWarmWorld pins the pool contract: the second job of the same
// shape reuses the first job's world.
func TestPoolHitOnWarmWorld(t *testing.T) {
	s := newTestServer(Config{P: 3})
	defer s.Close()
	j1 := mkJob(t, s, "p-1", JobSpec{Keys: []uint64{5, 1, 9, 2}, P: 3, NoBatch: true})
	s.runBatch([]*job{j1})
	j2 := mkJob(t, s, "p-2", JobSpec{Keys: []uint64{8, 3, 7}, P: 3, NoBatch: true})
	s.runBatch([]*job{j2})

	st1, _ := s.Status("p-1")
	st2, _ := s.Status("p-2")
	if st1.PoolHit {
		t.Error("first job of a shape reported a pool hit")
	}
	if !st2.PoolHit {
		t.Error("second job of the same shape missed the warm world")
	}
	m := s.MetricsSnapshot()
	if m.Pool.Hits != 1 || m.Pool.Misses != 1 || m.Pool.Built != 1 {
		t.Errorf("pool stats = %+v, want hits=1 misses=1 built=1", m.Pool)
	}
}

// TestFaultJobRunsDedicated: a fault-injecting job completes correctly and
// never touches the pool.
func TestFaultJobRunsDedicated(t *testing.T) {
	s := newTestServer(Config{P: 4})
	defer s.Close()
	j := mkJob(t, s, "f-1", JobSpec{N: 800, P: 4, Model: "pgas", Fault: "drop=0.02,seed=3"})
	s.runBatch([]*job{j})
	out, st, err := s.Result("f-1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Verified {
		t.Error("fault job not verified")
	}
	if len(out) != 800 {
		t.Errorf("fault job output has %d keys, want 800", len(out))
	}
	if m := s.MetricsSnapshot(); m.Pool.Hits+m.Pool.Misses != 0 {
		t.Errorf("fault job touched the pool: %+v", m.Pool)
	}
	if len(s.MetricsSnapshot().Jobs) != 1 {
		t.Error("fault job left no metrics document")
	}
}

func TestQuotaRejectsOverLimitTenant(t *testing.T) {
	old := timeNow
	defer func() { timeNow = old }()
	now := time.Unix(1000, 0)
	timeNow = func() time.Time { return now }

	q := newQuotaTable(1, 3) // 1 job/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := q.allow("acme"); !ok {
			t.Fatalf("submit %d rejected inside burst", i)
		}
	}
	ok, wait := q.allow("acme")
	if ok {
		t.Fatal("4th submit allowed over burst")
	}
	if wait <= 0 {
		t.Error("no Retry-After hint on rejection")
	}
	if ok, _ := q.allow("other"); !ok {
		t.Error("unrelated tenant rejected")
	}
	now = now.Add(2 * time.Second) // refill 2 tokens
	if ok, _ := q.allow("acme"); !ok {
		t.Error("submit rejected after refill")
	}
}

func TestQueueFullAndPopCompatible(t *testing.T) {
	q := newJobQueue(3)
	a := &job{id: "a", spec: JobSpec{P: 2}}
	b := &job{id: "b", spec: JobSpec{P: 4}}
	c := &job{id: "c", spec: JobSpec{P: 2}}
	for _, j := range []*job{a, b, c} {
		if !q.tryPush(j) {
			t.Fatalf("push %s failed below depth", j.id)
		}
	}
	if q.tryPush(&job{id: "d"}) {
		t.Fatal("push beyond depth succeeded")
	}
	got := q.popCompatible(func(j *job) bool { return j.spec.P == 2 }, 8)
	if len(got) != 2 || got[0].id != "a" || got[1].id != "c" {
		t.Fatalf("popCompatible = %v, want [a c]", jobIDs(got))
	}
	if q.len() != 1 {
		t.Fatalf("queue len = %d, want 1", q.len())
	}
	j, ok := q.pop()
	if !ok || j.id != "b" {
		t.Fatalf("pop = %v/%v, want b", j, ok)
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue returned a job")
	}
}

func jobIDs(js []*job) []string {
	var out []string
	for _, j := range js {
		out = append(out, j.id)
	}
	return out
}

func TestSubmitQueueFullReject(t *testing.T) {
	// Server whose worker pool is saturated: depth-1 queue, a worker wedged
	// on a slow job is simulated by not starting workers at all — construct
	// the pieces directly instead.
	s := &Server{
		cfg:     Config{}.withDefaults(),
		queue:   newJobQueue(1),
		pool:    newWorldPool(1),
		quotas:  newQuotaTable(1000, 1000),
		jobs:    make(map[string]*job),
		tenants: make(map[string]int64),
		started: timeNow(),
	}
	s.cfg.QueueDepth = 1
	if _, err := s.Submit("t1", JobSpec{Keys: []uint64{3, 1}}); err != nil {
		t.Fatalf("first submit rejected: %v", err)
	}
	_, err := s.Submit("t1", JobSpec{Keys: []uint64{2}})
	var rej *Reject
	if !errors.As(err, &rej) || rej.Reason != "queue_full" || rej.HTTPStatus != 429 {
		t.Fatalf("second submit = %v, want queue_full 429", err)
	}
	if rej.RetryAfter < 1 {
		t.Error("queue_full rejection carries no Retry-After")
	}
	if m := s.MetricsSnapshot(); m.RejectedQueueFull != 1 || m.JobsSubmitted != 1 {
		t.Errorf("counters = %+v", m)
	}
	s.queue.close()
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	s := newTestServer(Config{MaxN: 100})
	defer s.Close()
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"empty", JobSpec{}, "bad_request"},
		{"both", JobSpec{Keys: []uint64{1}, N: 5}, "bad_request"},
		{"too-large", JobSpec{N: 101}, "too_large"},
		{"bad-dist", JobSpec{N: 5, Dist: "nope"}, "bad_request"},
		{"bad-exchange", JobSpec{N: 5, Exchange: "nope"}, "bad_request"},
		{"bad-model", JobSpec{N: 5, Model: "nope"}, "bad_request"},
		{"bad-fault", JobSpec{N: 5, Fault: "nope"}, "bad_request"},
		{"bad-p", JobSpec{N: 5, P: 9999}, "bad_request"},
		{"neg-budget", JobSpec{N: 5, MemBudget: -1}, "bad_request"},
	}
	for _, tc := range cases {
		sp := tc.spec
		err := s.normalize(&sp)
		var rej *Reject
		if !errors.As(err, &rej) || rej.Reason != tc.want {
			t.Errorf("%s: normalize = %v, want %s", tc.name, err, tc.want)
		}
	}
	good := JobSpec{N: 50, Model: "pgas"}
	if err := s.normalize(&good); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	if good.Threads != 1 {
		t.Error("virtual-time job not pinned to threads=1")
	}
	if good.Dist != "uniform" || good.Seed != 1 || good.P != s.cfg.P {
		t.Errorf("defaults not filled: %+v", good)
	}
}

// TestSpilledJobNeverBatches pins the batching decision for out-of-core
// jobs: the batch embedding (batchOps) is not registered lossless, so a
// shared batch run would silently ignore the mem_budget — spilled jobs
// must run alone against their own scratch store.  Warm splitter starts
// stay available: spilling leaves the refinement protocol untouched.
func TestSpilledJobNeverBatches(t *testing.T) {
	s := newTestServer(Config{P: 4})
	defer s.Close()

	spill := JobSpec{N: 512, P: 4, Spill: true}
	if err := s.normalize(&spill); err != nil {
		t.Fatal(err)
	}
	if spill.MemBudget != 128 {
		t.Errorf("default mem_budget = %d, want 128 (an eighth of the per-rank input bytes)", spill.MemBudget)
	}
	if s.batchEligible(spill) {
		t.Error("spilled job is batch-eligible; out-of-core jobs must run alone")
	}
	budget := JobSpec{N: 512, P: 4, MemBudget: 256}
	if err := s.normalize(&budget); err != nil {
		t.Fatal(err)
	}
	if !budget.Spill {
		t.Error("mem_budget alone did not imply spill")
	}
	if s.batchEligible(budget) {
		t.Error("mem_budget job is batch-eligible")
	}
	resident := JobSpec{N: 512, P: 4}
	if err := s.normalize(&resident); err != nil {
		t.Fatal(err)
	}
	if !s.batchEligible(resident) {
		t.Error("identical resident job lost batch eligibility")
	}
	if _, ok := warmKeyOf("t", spill); !ok {
		t.Error("spilled job lost warm-start eligibility")
	}
}

// TestSpilledJobEndToEnd runs the same workload resident and spilled and
// requires bit-identical output, a populated per-job scratch path, and the
// spill counters on the metrics snapshot.
func TestSpilledJobEndToEnd(t *testing.T) {
	s := newTestServer(Config{P: 4, ScratchDir: t.TempDir()})
	defer s.Close()

	res := mkJob(t, s, "r-1", JobSpec{N: 4096, Dist: "zipf", Seed: 11, P: 4, Model: "pgas", NoWarm: true})
	s.runBatch([]*job{res})
	want, stRes, err := s.Result("r-1")
	if err != nil {
		t.Fatal(err)
	}
	if stRes.Spilled || stRes.SpilledRuns != 0 {
		t.Errorf("resident job reported spilling: %+v", stRes)
	}

	sp := mkJob(t, s, "s-1", JobSpec{N: 4096, Dist: "zipf", Seed: 11, P: 4, Model: "pgas", Spill: true, NoWarm: true})
	s.runBatch([]*job{sp})
	got, st, err := s.Result("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Verified || !st.Spilled || st.SpilledRuns == 0 {
		t.Fatalf("spilled status = %+v, want verified with spilled runs", st)
	}
	if !equalU64(got, want) {
		t.Error("spilled output differs from the resident run")
	}
	m := s.MetricsSnapshot()
	if m.SpilledJobs != 1 || m.SpilledRuns != st.SpilledRuns || m.SpillBytes <= 0 {
		t.Errorf("spill counters = jobs=%d runs=%d bytes=%d, want 1/%d/>0",
			m.SpilledJobs, m.SpilledRuns, m.SpillBytes, st.SpilledRuns)
	}
}
