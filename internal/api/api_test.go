package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"dhsort/internal/server"
)

// client is a minimal test-side wrapper over the wire protocol.
type client struct {
	t    *testing.T
	base string
	hc   *http.Client
}

func newClient(t *testing.T, base string) *client {
	return &client{t: t, base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

// submitReply is one submission's fully-read response.
type submitReply struct {
	code       int
	retryAfter string
	st         server.JobStatus // valid on 202
	rej        server.Reject    // valid on errors with a JSON body
}

func (c *client) submit(tenant string, spec server.JobSpec) submitReply {
	c.t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		c.t.Fatal(err)
	}
	req, err := http.NewRequest("POST", c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := c.hc.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitReply
	out.code = resp.StatusCode
	out.retryAfter = resp.Header.Get("Retry-After")
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out.st); err != nil {
			c.t.Fatalf("decode submit response: %v", err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&out.rej)
	}
	return out
}

// waitRunning polls until the job leaves the queue (any state but
// "queued"), so tests can deterministically wedge a lone worker.
func (c *client) waitRunning(id string, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, code := c.status(id)
		if code != http.StatusOK {
			c.t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State != server.StateQueued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	c.t.Fatalf("job %s still queued after %v", id, timeout)
}

func (c *client) status(id string) (server.JobStatus, int) {
	c.t.Helper()
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			c.t.Fatalf("decode status: %v", err)
		}
	}
	return st, resp.StatusCode
}

func (c *client) waitDone(id string, timeout time.Duration) server.JobStatus {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, code := c.status(id)
		if code != http.StatusOK {
			c.t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("job %s did not finish within %v", id, timeout)
	return server.JobStatus{}
}

func (c *client) result(id string) ([]uint64, *http.Response) {
	c.t.Helper()
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var keys []uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		k, err := strconv.ParseUint(sc.Text(), 10, 64)
		if err != nil {
			c.t.Fatalf("result line %q: %v", sc.Text(), err)
		}
		keys = append(keys, k)
	}
	if err := sc.Err(); err != nil {
		c.t.Fatal(err)
	}
	return keys, resp
}

func (c *client) metrics() server.Metrics {
	c.t.Helper()
	resp, err := c.hc.Get(c.base + "/v1/metrics")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		c.t.Fatal(err)
	}
	return m
}

func sortedCopy(ks []uint64) []uint64 {
	out := append([]uint64(nil), ks...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServiceMultiTenantEndToEnd is the acceptance test of the service: 8
// concurrent tenants push mixed-size jobs through one pooled-world server
// over real HTTP; every result must come back sorted and multiset-identical
// to its input, the over-limit ninth tenant must be quota-rejected, and the
// pool counters on /v1/metrics must show warm jobs skipping world
// construction.
func TestServiceMultiTenantEndToEnd(t *testing.T) {
	eng := server.New(server.Config{
		P:            4,
		Workers:      2,
		QueueDepth:   128,
		QuotaRate:    0.0001, // effectively no refill within the test
		QuotaBurst:   4,
		BatchMaxKeys: 256, // small jobs batch, larger ones run solo
		BatchWait:    time.Millisecond,
	})
	defer eng.Close()
	ts := httptest.NewServer(Handler(eng))
	defer ts.Close()

	const tenants = 8
	sizes := []int{80, 120, 2000} // two batchable, one solo per tenant

	type submitted struct {
		id    string
		input []uint64
	}
	var (
		mu   sync.Mutex
		jobs []submitted
		wg   sync.WaitGroup
	)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			c := newClient(t, ts.URL)
			rng := rand.New(rand.NewSource(int64(1000 + ti)))
			for _, n := range sizes {
				keys := make([]uint64, n)
				for i := range keys {
					keys[i] = rng.Uint64()
				}
				rep := c.submit(fmt.Sprintf("tenant-%d", ti), server.JobSpec{Keys: keys})
				if rep.code != http.StatusAccepted {
					t.Errorf("tenant %d: submit = HTTP %d", ti, rep.code)
					return
				}
				mu.Lock()
				jobs = append(jobs, submitted{id: rep.st.ID, input: keys})
				mu.Unlock()
			}
		}(ti)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(jobs) != tenants*len(sizes) {
		t.Fatalf("submitted %d jobs, want %d", len(jobs), tenants*len(sizes))
	}

	// The ninth tenant blows through its burst: 4 accepted, then 429s with
	// a Retry-After hint.
	c := newClient(t, ts.URL)
	var accepted, rejected int
	for i := 0; i < 6; i++ {
		rep := c.submit("greedy", server.JobSpec{Keys: []uint64{9, 4, 7, 1}})
		switch rep.code {
		case http.StatusAccepted:
			accepted++
			jobs = append(jobs, submitted{id: rep.st.ID, input: []uint64{9, 4, 7, 1}})
		case http.StatusTooManyRequests:
			rejected++
			if rep.retryAfter == "" {
				t.Error("quota 429 without Retry-After header")
			}
			if rep.rej.Reason != "quota_exceeded" {
				t.Errorf("quota rejection body = %+v", rep.rej)
			}
		default:
			t.Errorf("greedy submit %d = HTTP %d", i, rep.code)
		}
	}
	if accepted != 4 || rejected != 2 {
		t.Errorf("greedy tenant: %d accepted, %d rejected, want 4/2", accepted, rejected)
	}

	// Every accepted job completes, verifies, and returns its own keys in
	// sorted order — tenants never see each other's data, batched or not.
	poolHits := 0
	for _, job := range jobs {
		st := c.waitDone(job.id, 60*time.Second)
		if st.State != server.StateDone {
			t.Fatalf("job %s: state %s (%s)", job.id, st.State, st.Error)
		}
		if !st.Verified {
			t.Errorf("job %s not verified", job.id)
		}
		if st.PoolHit {
			poolHits++
		}
		keys, resp := c.result(job.id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: HTTP %d", job.id, resp.StatusCode)
		}
		if !equalU64(keys, sortedCopy(job.input)) {
			t.Errorf("job %s: result is not the sorted input (%d vs %d keys)",
				job.id, len(keys), len(job.input))
		}
	}
	if poolHits == 0 {
		t.Error("no job reported a pool hit: warm worlds never reused")
	}

	m := c.metrics()
	want := int64(len(jobs))
	if m.JobsSubmitted != want || m.JobsDone != want || m.JobsFailed != 0 {
		t.Errorf("metrics: submitted=%d done=%d failed=%d, want %d/%d/0",
			m.JobsSubmitted, m.JobsDone, m.JobsFailed, want, want)
	}
	if m.RejectedQuota != 2 {
		t.Errorf("metrics: rejected_quota=%d, want 2", m.RejectedQuota)
	}
	if m.Pool.Hits == 0 {
		t.Error("metrics: pool reports zero hits — every job built a fresh world")
	}
	if m.Pool.Built == 0 || m.Pool.Built >= want {
		t.Errorf("metrics: pool built %d worlds for %d jobs", m.Pool.Built, want)
	}
	if len(m.Tenants) != tenants+1 {
		t.Errorf("metrics: %d tenants recorded, want %d", len(m.Tenants), tenants+1)
	}
	if len(m.Jobs) == 0 {
		t.Fatal("metrics: no per-job documents retained")
	}
	for _, e := range m.Jobs {
		if e.Doc.Schema != "dhsort-bench/v1" {
			t.Fatalf("ring document schema = %q", e.Doc.Schema)
		}
		if e.Doc.Config.Suite != "serve" {
			t.Fatalf("ring document suite = %q", e.Doc.Config.Suite)
		}
	}
}

// TestQueueFullBackpressure saturates a 1-deep queue behind a single busy
// worker and checks the 429 queue_full path, Retry-After included.
func TestQueueFullBackpressure(t *testing.T) {
	eng := server.New(server.Config{
		P:          4,
		Workers:    1,
		QueueDepth: 1,
		QuotaRate:  100000,
		QuotaBurst: 100000,
	})
	defer eng.Close()
	ts := httptest.NewServer(Handler(eng))
	defer ts.Close()
	c := newClient(t, ts.URL)

	// The wedge job is pure CPU; on a small GOMAXPROCS (a 1-core CI box) it
	// starves the probe HTTP round trips below until it has already
	// finished, and the queue then drains as fast as serial submits can
	// fill it — the 429 would never be observable.  Give the scheduler
	// room for the duration.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.GOMAXPROCS(0))))

	// Wedge the lone worker on a fat job, confirmed running before probing.
	wedge := c.submit("burst", server.JobSpec{N: 1 << 21, Threads: 1, NoBatch: true})
	if wedge.code != http.StatusAccepted {
		t.Fatalf("wedge submit = HTTP %d", wedge.code)
	}
	c.waitRunning(wedge.st.ID, 30*time.Second)

	// Probe with a concurrent burst: the requests all reach admission while
	// the worker is still wedged, so the 1-deep queue must turn at least
	// one away.  (Serial probes would race each round trip against the
	// wedge's remaining runtime.)
	replies := make([]submitReply, 20)
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(server.JobSpec{Keys: []uint64{2, 1}, NoBatch: true})
			req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				replies[i].code = -1
				return
			}
			req.Header.Set("X-Tenant", "burst")
			resp, err := c.hc.Do(req)
			if err != nil {
				replies[i].code = -1
				return
			}
			defer resp.Body.Close()
			replies[i].code = resp.StatusCode
			replies[i].retryAfter = resp.Header.Get("Retry-After")
			if resp.StatusCode == http.StatusAccepted {
				_ = json.NewDecoder(resp.Body).Decode(&replies[i].st)
			} else {
				_ = json.NewDecoder(resp.Body).Decode(&replies[i].rej)
			}
		}(i)
	}
	wg.Wait()

	ids := []string{wedge.st.ID}
	sawFull := false
	for i, rep := range replies {
		switch rep.code {
		case http.StatusAccepted:
			ids = append(ids, rep.st.ID)
		case http.StatusTooManyRequests:
			sawFull = true
			if rep.retryAfter == "" {
				t.Error("queue_full 429 without Retry-After header")
			}
			if rep.rej.Reason != "queue_full" {
				t.Errorf("queue_full body = %+v", rep.rej)
			}
		default:
			t.Fatalf("submit %d = HTTP %d", i, rep.code)
		}
	}
	if !sawFull {
		t.Fatal("never saw a queue_full 429 despite a 1-deep queue behind a wedged worker")
	}
	for _, id := range ids {
		if st := c.waitDone(id, 60*time.Second); st.State != server.StateDone {
			t.Errorf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	if m := c.metrics(); m.RejectedQueueFull == 0 {
		t.Error("metrics: rejected_queue_full is zero")
	}
}

// TestResultNotReadyAndErrors covers the error surface: result before
// completion, unknown job, malformed and unknown-field bodies.
func TestResultNotReadyAndErrors(t *testing.T) {
	eng := server.New(server.Config{P: 4, Workers: 1, QuotaRate: 1000, QuotaBurst: 1000})
	defer eng.Close()
	ts := httptest.NewServer(Handler(eng))
	defer ts.Close()
	c := newClient(t, ts.URL)

	// A fat job wedges the lone worker — confirmed running before the next
	// submit — so the queued job cannot be done when its result is asked
	// for.  GOMAXPROCS headroom so the CPU-bound wedge cannot starve those
	// HTTP round trips past its own runtime on a 1-core box (see
	// TestQueueFullBackpressure).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.GOMAXPROCS(0))))
	wedge := c.submit("t", server.JobSpec{N: 1 << 21, Threads: 1, NoBatch: true})
	if wedge.code != http.StatusAccepted {
		t.Fatalf("wedge submit = HTTP %d", wedge.code)
	}
	c.waitRunning(wedge.st.ID, 30*time.Second)
	queued := c.submit("t", server.JobSpec{Keys: []uint64{3, 1, 2}, NoBatch: true})
	if queued.code != http.StatusAccepted {
		t.Fatalf("second submit = HTTP %d", queued.code)
	}
	if _, rr := c.result(queued.st.ID); rr.StatusCode != http.StatusConflict {
		t.Errorf("result of queued job = HTTP %d, want 409", rr.StatusCode)
	}

	if _, code := c.status("j-999999"); code != http.StatusNotFound {
		t.Errorf("status of unknown job = HTTP %d, want 404", code)
	}
	if _, rr := c.result("j-999999"); rr.StatusCode != http.StatusNotFound {
		t.Errorf("result of unknown job = HTTP %d, want 404", rr.StatusCode)
	}

	for _, body := range []string{"{not json", `{"keys":[1],"bogus_field":true}`, `{}`} {
		rr, err := c.hc.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		rr.Body.Close()
		if rr.StatusCode != http.StatusBadRequest {
			t.Errorf("submit body %q = HTTP %d, want 400", body, rr.StatusCode)
		}
	}

	c.waitDone(wedge.st.ID, 120*time.Second)
	c.waitDone(queued.st.ID, 120*time.Second)
}

// TestHealthz pins the liveness endpoint.
func TestHealthz(t *testing.T) {
	eng := server.New(server.Config{P: 2})
	defer eng.Close()
	ts := httptest.NewServer(Handler(eng))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
}
