// Package api is the HTTP transport of the sort service: a stdlib
// net/http handler over the internal/server engine.  Routes:
//
//	POST /v1/jobs             submit a JobSpec (tenant from X-Tenant)
//	GET  /v1/jobs/{id}        job status
//	GET  /v1/jobs/{id}/result sorted keys, streamed one per line
//	GET  /v1/metrics          server counters, pool stats, per-job documents
//	GET  /healthz             liveness
//
// Errors are JSON bodies shaped like server.Reject; 429 responses carry a
// Retry-After header.  The package holds no state of its own — everything
// lives in the engine — so handlers are thin and the whole cycle is
// testable with net/http/httptest.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dhsort/internal/server"
)

// maxBodyBytes bounds a submission body; 64 MiB comfortably fits the
// engine's MaxN inline keys as JSON.
const maxBodyBytes = 64 << 20

// Handler returns the service's HTTP handler over engine s.
func Handler(s *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(s, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		status(s, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		result(s, w, r)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// A draining instance stays live (it is finishing admitted work)
		// but reports the state so balancers stop routing submissions at it.
		if s.Draining() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func submit(s *server.Server, w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, &server.Reject{HTTPStatus: http.StatusBadRequest,
			Reason: "bad_request", Detail: "invalid job body: " + err.Error()})
		return
	}
	st, err := s.Submit(r.Header.Get("X-Tenant"), spec)
	if err != nil {
		writeReject(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func status(s *server.Server, w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, &server.Reject{HTTPStatus: http.StatusNotFound,
			Reason: "not_found", Detail: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// result streams the sorted keys as text, one decimal key per line, so a
// client never has to hold a giant JSON array; the job metadata rides in
// X-Job-* headers.
func result(s *server.Server, w http.ResponseWriter, r *http.Request) {
	keys, st, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeReject(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-Job-Id", st.ID)
	h.Set("X-Job-N", strconv.Itoa(st.N))
	h.Set("X-Job-Verified", strconv.FormatBool(st.Verified))
	w.WriteHeader(http.StatusOK)
	buf := make([]byte, 0, 24)
	for _, k := range keys {
		buf = strconv.AppendUint(buf[:0], k, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return // client went away mid-stream
		}
	}
}

// writeReject maps an engine error onto the wire: *Reject verbatim,
// anything else a 500.
func writeReject(w http.ResponseWriter, err error) {
	var rej *server.Reject
	if !errors.As(err, &rej) {
		rej = &server.Reject{HTTPStatus: http.StatusInternalServerError,
			Reason: "internal", Detail: err.Error()}
	}
	writeErr(w, rej)
}

func writeErr(w http.ResponseWriter, rej *server.Reject) {
	if rej.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(rej.RetryAfter))
	}
	writeJSON(w, rej.HTTPStatus, rej)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
