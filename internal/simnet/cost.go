package simnet

import (
	"math"
	"time"
)

// CostModel prices communication and computation on the modelled machine.
// A nil *CostModel means "real time": clocks read the wall clock and all
// cost functions are ignored.
type CostModel struct {
	Topo Topology
	// PGAS selects the intra-node transport pricing.  True models DASH on
	// MPI-3 shared-memory windows (intra-node traffic is a memcpy); false
	// models a conventional MPI stack where intra-node messages still pay
	// protocol latency and an extra copy (§VI-A1, §VI-D).
	PGAS bool

	// Alpha is the per-message latency per link class.
	Alpha [NumLinkClasses]time.Duration
	// GBps is the per-flow bandwidth per link class, in bytes/ns
	// (i.e. GB/s ≈ value × 1e9 bytes/s when expressed per nanosecond).
	GBps [NumLinkClasses]float64

	// CompareNs is the cost of one compare-and-move step of a local sort;
	// sorting n keys is priced CompareNs · n · log2(n).
	CompareNs float64
	// MergeNs is the per-element per-level cost of multiway merging.
	MergeNs float64
	// ScanNs is the per-element cost of linear passes (partitioning,
	// histogram counting, permutation application).
	ScanNs float64
	// RadixNs is the per-element per-executed-pass cost of the LSD radix
	// kernel (fused counting + scatter pipeline); zero falls back to
	// comparison-sort pricing so hand-built models stay valid.
	RadixNs float64
	// ThreadEff is the marginal efficiency of each additional fork-join
	// worker in the shared-memory kernels (1 = perfect scaling, 0 = no
	// speedup from threads) — the imperfect intra-node scaling of Fig. 4.
	ThreadEff float64
	// MemGBps is local memory copy bandwidth in bytes/ns.
	MemGBps float64
	// SendOverhead is the sender-side CPU cost per message (the "o" of
	// the LogP family); the receiver-side path is folded into Alpha.
	SendOverhead time.Duration

	// Resilience pricing (internal/fault).  Zero values fall back to
	// conservative derivations so hand-built models stay valid — see
	// RetryTimeout, CheckpointCost and RespawnCost in fault.go.

	// CkptGBps is the bandwidth of the checkpoint store in bytes/ns (a
	// per-rank share of a node-local burst buffer); zero falls back to
	// MemGBps.
	CkptGBps float64
	// CkptAlpha is the fixed per-checkpoint latency (metadata commit).
	CkptAlpha time.Duration
	// RespawnDelay is the time to restart a crashed rank's process before
	// it can restore its checkpoint.
	RespawnDelay time.Duration
}

// SuperMUC returns the cost model calibrated to Table I of the paper:
// 2 × Xeon E5-2697v3 (4 NUMA domains of 7 cores), Infiniband FDR14
// non-blocking fat tree, Intel MPI 2018.2.  ranksPerNode is 16 for the
// Charm++-comparison runs and 28 for full-node DASH runs.  pgas selects the
// shared-memory-window pricing for intra-node traffic.
func SuperMUC(ranksPerNode int, pgas bool) *CostModel {
	m := &CostModel{
		Topo:         Topology{RanksPerNode: ranksPerNode, NUMADomains: 4},
		PGAS:         pgas,
		CompareNs:    3.0,
		MergeNs:      1.6,
		ScanNs:       0.8,
		RadixNs:      1.5,
		ThreadEff:    0.85,
		MemGBps:      8.0,
		SendOverhead: 500 * time.Nanosecond,
		// Resilience calibration (extension, not from Table I): checkpoints
		// go to a node-local burst-buffer share, respawn covers process
		// restart + job-manager handshake.
		CkptGBps:     1.2,
		CkptAlpha:    25 * time.Microsecond,
		RespawnDelay: 2 * time.Millisecond,
	}
	// Network: FDR14 ≈ 56 Gbit/s per node shared by all ranks of the
	// node, so the per-flow share of a busy exchange is NIC/ranksPerNode
	// with ~protocol efficiency; α covers wire + MPI software path.
	m.Alpha[Network] = 5 * time.Microsecond
	m.GBps[Network] = 6.8 / float64(ranksPerNode)
	if pgas {
		// MPI-3 shared-memory windows: intra-node traffic is a memcpy
		// plus a cheap synchronization; per-rank share of the node's
		// memory bandwidth.
		m.Alpha[SameNUMA] = 300 * time.Nanosecond
		m.GBps[SameNUMA] = 4.0
		m.Alpha[CrossNUMA] = 600 * time.Nanosecond
		m.GBps[CrossNUMA] = 2.5
	} else {
		// Conventional MPI: protocol latency and double-copy through a
		// shared heap regardless of NUMA placement.
		m.Alpha[SameNUMA] = 1200 * time.Nanosecond
		m.GBps[SameNUMA] = 2.0
		m.Alpha[CrossNUMA] = 1500 * time.Nanosecond
		m.GBps[CrossNUMA] = 1.6
	}
	m.Alpha[SelfLink] = 50 * time.Nanosecond
	m.GBps[SelfLink] = 12.0
	return m
}

// InjectCost is the time the sender's CPU/NIC is busy pushing the message
// out (bytes over the per-flow bandwidth).  Successive sends from one rank
// serialize on this cost, which is what makes a P-message exchange cost the
// rank its full outgoing volume rather than a single transfer.
func (m *CostModel) InjectCost(src, dst, bytes int) time.Duration {
	lc := m.Topo.Link(src, dst)
	return time.Duration(float64(bytes) / m.GBps[lc])
}

// Latency is the in-flight time after injection until the message is
// available at the receiver.
func (m *CostModel) Latency(src, dst int) time.Duration {
	return m.Alpha[m.Topo.Link(src, dst)]
}

// MsgCost returns the virtual transfer time of a message of the given size
// from rank src to rank dst: α(link) + bytes/β(link).
func (m *CostModel) MsgCost(src, dst, bytes int) time.Duration {
	lc := m.Topo.Link(src, dst)
	return m.Alpha[lc] + time.Duration(float64(bytes)/m.GBps[lc])
}

// One-sided (RMA) pricing, used by internal/rma.  The model distinguishes
// the two transports of §VI-A1/§VI-D: under PGAS, intra-node windows are
// MPI-3 shared memory, so a put is a single memcpy at full memory bandwidth
// with no rendezvous, no send overhead and no protocol latency, and a
// notification is a flag store that is visible as soon as the data is;
// under a conventional MPI stack a put is emulated by an internal send and
// a notification needs a flush round trip followed by a small message —
// DART-MPI's exact overhead on clusters without native put+notify.

// RMAPutCost prices a one-sided put of bytes from world rank src into
// dst's window.  busy is the time the origin CPU/NIC is occupied (successive
// puts serialize on it); completion is the additional in-flight time until
// the data is remotely visible at the target.
func (m *CostModel) RMAPutCost(src, dst, bytes int) (busy, completion time.Duration) {
	lc := m.Topo.Link(src, dst)
	if m.PGAS && lc != Network {
		// Shared-memory window: the put IS the memcpy.  Unlike a
		// two-sided send (copy into a shared heap, copy out at the
		// receiver — the halved effective GBps of the link class), the
		// origin writes the target's window directly at full memory
		// bandwidth, and the data is visible the moment the copy ends.
		return time.Duration(float64(bytes) / m.MemGBps), 0
	}
	// RDMA put over the network, or a put emulated over conventional MPI
	// intra-node: the same injection pipeline as a two-sided eager send.
	return m.SendOverhead + time.Duration(float64(bytes)/m.GBps[lc]), m.Alpha[lc]
}

// RMANotifyCost prices the put-notification signalling remote completion to
// the target (DART's put+notify).  busy is origin CPU time; delay is the
// in-flight time until the target can consume the notification, counted
// after the notified put has remotely completed.
func (m *CostModel) RMANotifyCost(src, dst int) (busy, delay time.Duration) {
	lc := m.Topo.Link(src, dst)
	if m.PGAS && lc != Network {
		// A flag store in the shared window, ordered after the memcpy.
		return 0, 0
	}
	if m.PGAS {
		// RDMA write-with-immediate: one extra small NIC message.
		return m.SendOverhead, m.Alpha[lc]
	}
	// Conventional MPI has no native notify: emulate with a flush (round
	// trip, 2α) to guarantee remote completion, then a small send.
	return 2*m.Alpha[lc] + m.SendOverhead, m.Alpha[lc]
}

// RMAGetCost prices a blocking one-sided get: the rank at world rank origin
// reads bytes out of target's window.
func (m *CostModel) RMAGetCost(origin, target, bytes int) time.Duration {
	lc := m.Topo.Link(origin, target)
	if m.PGAS && lc != Network {
		return time.Duration(float64(bytes) / m.MemGBps)
	}
	// Request plus data return: a full round trip around the transfer.
	return m.SendOverhead + 2*m.Alpha[lc] + time.Duration(float64(bytes)/m.GBps[lc])
}

// RMAFlushCost prices Flush's completion guarantee towards one target,
// beyond waiting out the pending puts' completion times.
func (m *CostModel) RMAFlushCost(src, dst int) time.Duration {
	lc := m.Topo.Link(src, dst)
	if m.PGAS && lc != Network {
		return 0
	}
	return 2 * m.Alpha[lc] // round trip to the target's MPI progress engine
}

// SortCost prices a local comparison sort of n keys.
func (m *CostModel) SortCost(n int) time.Duration {
	if n < 2 {
		return 0
	}
	return time.Duration(m.CompareNs * float64(n) * math.Log2(float64(n)))
}

// RadixSortCost prices an LSD radix sort of n keys that executed the given
// number of scatter passes (constant digits are skipped, so the pass count
// is data-dependent but deterministic).  Models without a calibrated
// RadixNs price it as the comparison sort they were built for.
func (m *CostModel) RadixSortCost(n, passes int) time.Duration {
	if n < 2 {
		return 0
	}
	if m.RadixNs == 0 {
		return m.SortCost(n)
	}
	if passes < 1 {
		passes = 1
	}
	return time.Duration(m.RadixNs * float64(n) * float64(passes))
}

// Threaded scales a compute cost by the fork-join speedup of `threads`
// workers, 1 + ThreadEff·(threads−1).  With ThreadEff zero (uncalibrated
// models) or a single thread the cost is unchanged.
func (m *CostModel) Threaded(d time.Duration, threads int) time.Duration {
	if threads <= 1 || m.ThreadEff == 0 {
		return d
	}
	return time.Duration(float64(d) / (1 + m.ThreadEff*float64(threads-1)))
}

// MergeCost prices merging n keys from k sorted runs (n · log2 k element
// steps; k ≤ 1 degenerates to a copy).
func (m *CostModel) MergeCost(n, k int) time.Duration {
	if n == 0 {
		return 0
	}
	levels := math.Log2(float64(k))
	if levels < 1 {
		levels = 1
	}
	return time.Duration(m.MergeNs * float64(n) * levels)
}

// SearchCost prices s binary searches over n sorted keys.
func (m *CostModel) SearchCost(n, s int) time.Duration {
	if n < 2 || s == 0 {
		return 0
	}
	return time.Duration(m.CompareNs * float64(s) * math.Log2(float64(n)))
}

// ScanCost prices a linear pass over n keys.
func (m *CostModel) ScanCost(n int) time.Duration {
	return time.Duration(m.ScanNs * float64(n))
}

// CopyCost prices a local copy of the given volume.
func (m *CostModel) CopyCost(bytes int) time.Duration {
	return time.Duration(float64(bytes) / m.MemGBps)
}

// SelectCost prices an expected-linear selection over n keys.
func (m *CostModel) SelectCost(n int) time.Duration {
	return time.Duration(m.CompareNs * 2 * float64(n))
}
