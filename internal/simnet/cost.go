package simnet

import (
	"math"
	"time"
)

// CostModel prices communication and computation on the modelled machine.
// A nil *CostModel means "real time": clocks read the wall clock and all
// cost functions are ignored.
type CostModel struct {
	Topo Topology
	// PGAS selects the intra-node transport pricing.  True models DASH on
	// MPI-3 shared-memory windows (intra-node traffic is a memcpy); false
	// models a conventional MPI stack where intra-node messages still pay
	// protocol latency and an extra copy (§VI-A1, §VI-D).
	PGAS bool

	// Alpha is the per-message latency per link class.
	Alpha [NumLinkClasses]time.Duration
	// GBps is the per-flow bandwidth per link class, in bytes/ns
	// (i.e. GB/s ≈ value × 1e9 bytes/s when expressed per nanosecond).
	GBps [NumLinkClasses]float64

	// CompareNs is the cost of one compare-and-move step of a local sort;
	// sorting n keys is priced CompareNs · n · log2(n).
	CompareNs float64
	// MergeNs is the per-element per-level cost of multiway merging.
	MergeNs float64
	// ScanNs is the per-element cost of linear passes (partitioning,
	// histogram counting, permutation application).
	ScanNs float64
	// MemGBps is local memory copy bandwidth in bytes/ns.
	MemGBps float64
	// SendOverhead is the sender-side CPU cost per message (the "o" of
	// the LogP family); the receiver-side path is folded into Alpha.
	SendOverhead time.Duration
}

// SuperMUC returns the cost model calibrated to Table I of the paper:
// 2 × Xeon E5-2697v3 (4 NUMA domains of 7 cores), Infiniband FDR14
// non-blocking fat tree, Intel MPI 2018.2.  ranksPerNode is 16 for the
// Charm++-comparison runs and 28 for full-node DASH runs.  pgas selects the
// shared-memory-window pricing for intra-node traffic.
func SuperMUC(ranksPerNode int, pgas bool) *CostModel {
	m := &CostModel{
		Topo:         Topology{RanksPerNode: ranksPerNode, NUMADomains: 4},
		PGAS:         pgas,
		CompareNs:    3.0,
		MergeNs:      1.6,
		ScanNs:       0.8,
		MemGBps:      8.0,
		SendOverhead: 500 * time.Nanosecond,
	}
	// Network: FDR14 ≈ 56 Gbit/s per node shared by all ranks of the
	// node, so the per-flow share of a busy exchange is NIC/ranksPerNode
	// with ~protocol efficiency; α covers wire + MPI software path.
	m.Alpha[Network] = 5 * time.Microsecond
	m.GBps[Network] = 6.8 / float64(ranksPerNode)
	if pgas {
		// MPI-3 shared-memory windows: intra-node traffic is a memcpy
		// plus a cheap synchronization; per-rank share of the node's
		// memory bandwidth.
		m.Alpha[SameNUMA] = 300 * time.Nanosecond
		m.GBps[SameNUMA] = 4.0
		m.Alpha[CrossNUMA] = 600 * time.Nanosecond
		m.GBps[CrossNUMA] = 2.5
	} else {
		// Conventional MPI: protocol latency and double-copy through a
		// shared heap regardless of NUMA placement.
		m.Alpha[SameNUMA] = 1200 * time.Nanosecond
		m.GBps[SameNUMA] = 2.0
		m.Alpha[CrossNUMA] = 1500 * time.Nanosecond
		m.GBps[CrossNUMA] = 1.6
	}
	m.Alpha[SelfLink] = 50 * time.Nanosecond
	m.GBps[SelfLink] = 12.0
	return m
}

// InjectCost is the time the sender's CPU/NIC is busy pushing the message
// out (bytes over the per-flow bandwidth).  Successive sends from one rank
// serialize on this cost, which is what makes a P-message exchange cost the
// rank its full outgoing volume rather than a single transfer.
func (m *CostModel) InjectCost(src, dst, bytes int) time.Duration {
	lc := m.Topo.Link(src, dst)
	return time.Duration(float64(bytes) / m.GBps[lc])
}

// Latency is the in-flight time after injection until the message is
// available at the receiver.
func (m *CostModel) Latency(src, dst int) time.Duration {
	return m.Alpha[m.Topo.Link(src, dst)]
}

// MsgCost returns the virtual transfer time of a message of the given size
// from rank src to rank dst: α(link) + bytes/β(link).
func (m *CostModel) MsgCost(src, dst, bytes int) time.Duration {
	lc := m.Topo.Link(src, dst)
	return m.Alpha[lc] + time.Duration(float64(bytes)/m.GBps[lc])
}

// SortCost prices a local comparison sort of n keys.
func (m *CostModel) SortCost(n int) time.Duration {
	if n < 2 {
		return 0
	}
	return time.Duration(m.CompareNs * float64(n) * math.Log2(float64(n)))
}

// MergeCost prices merging n keys from k sorted runs (n · log2 k element
// steps; k ≤ 1 degenerates to a copy).
func (m *CostModel) MergeCost(n, k int) time.Duration {
	if n == 0 {
		return 0
	}
	levels := math.Log2(float64(k))
	if levels < 1 {
		levels = 1
	}
	return time.Duration(m.MergeNs * float64(n) * levels)
}

// SearchCost prices s binary searches over n sorted keys.
func (m *CostModel) SearchCost(n, s int) time.Duration {
	if n < 2 || s == 0 {
		return 0
	}
	return time.Duration(m.CompareNs * float64(s) * math.Log2(float64(n)))
}

// ScanCost prices a linear pass over n keys.
func (m *CostModel) ScanCost(n int) time.Duration {
	return time.Duration(m.ScanNs * float64(n))
}

// CopyCost prices a local copy of the given volume.
func (m *CostModel) CopyCost(bytes int) time.Duration {
	return time.Duration(float64(bytes) / m.MemGBps)
}

// SelectCost prices an expected-linear selection over n keys.
func (m *CostModel) SelectCost(n int) time.Duration {
	return time.Duration(m.CompareNs * 2 * float64(n))
}
