// Package simnet models the machine the paper ran on: SuperMUC Phase 2
// (Table I) — dual-socket Haswell nodes with four NUMA domains, connected by
// a non-blocking Infiniband FDR14 fat tree — as a LogGP-style communication
// cost model over a virtual clock.
//
// The distributed algorithms in this repository execute for real (every rank
// is a goroutine, every byte of payload actually moves), but *time* is
// virtual: each rank carries a clock, compute phases advance it through the
// CostModel's calibrated constants, and a received message advances the
// receiver to max(local, send + α(link) + bytes·β(link)).  This makes
// 3584-rank scaling experiments reproducible on a laptop: the figures'
// shapes are driven by communication rounds × per-link costs and by the
// compute/communication balance, both of which the model preserves.
package simnet

import "fmt"

// LinkClass categorizes the path between two ranks.
type LinkClass int

const (
	// SelfLink is a rank talking to itself (local copy).
	SelfLink LinkClass = iota
	// SameNUMA connects two ranks on one NUMA domain.
	SameNUMA
	// CrossNUMA connects two ranks on one node but different NUMA domains.
	CrossNUMA
	// Network connects ranks on different nodes.
	Network
	// NumLinkClasses is the number of link classes.
	NumLinkClasses
)

// LinkClasses lists every link class, in enum order.
var LinkClasses = [NumLinkClasses]LinkClass{SelfLink, SameNUMA, CrossNUMA, Network}

// String returns the link class name.
func (lc LinkClass) String() string {
	switch lc {
	case SelfLink:
		return "self"
	case SameNUMA:
		return "same-numa"
	case CrossNUMA:
		return "cross-numa"
	case Network:
		return "network"
	}
	return fmt.Sprintf("LinkClass(%d)", int(lc))
}

// Topology maps ranks onto nodes and NUMA domains, block-wise: ranks
// [0, RanksPerNode) on node 0, and within a node consecutive ranks fill NUMA
// domains in blocks — the standard block pinning the paper uses (numactl).
type Topology struct {
	// RanksPerNode is the number of ranks scheduled per node (the paper
	// uses 16 for the Charm++ comparison and 28 for DASH-only runs).
	RanksPerNode int
	// NUMADomains is the number of NUMA domains per node (4 on SuperMUC
	// Phase 2: 2 sockets × 2 cluster-on-die domains).
	NUMADomains int
}

// Validate reports a descriptive error for nonsensical topologies.
func (t Topology) Validate() error {
	if t.RanksPerNode <= 0 {
		return fmt.Errorf("simnet: RanksPerNode must be positive, got %d", t.RanksPerNode)
	}
	if t.NUMADomains <= 0 {
		return fmt.Errorf("simnet: NUMADomains must be positive, got %d", t.NUMADomains)
	}
	return nil
}

// Node returns the node index of rank r.
func (t Topology) Node(r int) int { return r / t.RanksPerNode }

// NUMA returns the NUMA domain index of rank r within its node.
func (t Topology) NUMA(r int) int {
	onNode := r % t.RanksPerNode
	perDomain := (t.RanksPerNode + t.NUMADomains - 1) / t.NUMADomains
	return onNode / perDomain
}

// Link classifies the path from rank a to rank b.
func (t Topology) Link(a, b int) LinkClass {
	if a == b {
		return SelfLink
	}
	if t.Node(a) != t.Node(b) {
		return Network
	}
	if t.NUMA(a) != t.NUMA(b) {
		return CrossNUMA
	}
	return SameNUMA
}

// Nodes returns the number of nodes needed for p ranks.
func (t Topology) Nodes(p int) int {
	return (p + t.RanksPerNode - 1) / t.RanksPerNode
}
