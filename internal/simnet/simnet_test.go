package simnet

import (
	"testing"
	"time"
)

func TestTopologyMapping(t *testing.T) {
	topo := Topology{RanksPerNode: 28, NUMADomains: 4}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// 7 ranks per NUMA domain.
	cases := []struct{ rank, node, numa int }{
		{0, 0, 0}, {6, 0, 0}, {7, 0, 1}, {13, 0, 1}, {14, 0, 2}, {27, 0, 3},
		{28, 1, 0}, {55, 1, 3}, {56, 2, 0},
	}
	for _, c := range cases {
		if got := topo.Node(c.rank); got != c.node {
			t.Errorf("Node(%d) = %d, want %d", c.rank, got, c.node)
		}
		if got := topo.NUMA(c.rank); got != c.numa {
			t.Errorf("NUMA(%d) = %d, want %d", c.rank, got, c.numa)
		}
	}
}

func TestTopologyLinkClasses(t *testing.T) {
	topo := Topology{RanksPerNode: 8, NUMADomains: 2}
	cases := []struct {
		a, b int
		want LinkClass
	}{
		{3, 3, SelfLink},
		{0, 1, SameNUMA},
		{0, 4, CrossNUMA},
		{0, 8, Network},
		{5, 13, Network},
		{4, 7, SameNUMA},
	}
	for _, c := range cases {
		if got := topo.Link(c.a, c.b); got != c.want {
			t.Errorf("Link(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := topo.Link(c.b, c.a); got != c.want {
			t.Errorf("Link(%d,%d) = %v, want %v (asymmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{RanksPerNode: 0, NUMADomains: 4}).Validate(); err == nil {
		t.Error("expected error for zero RanksPerNode")
	}
	if err := (Topology{RanksPerNode: 4, NUMADomains: 0}).Validate(); err == nil {
		t.Error("expected error for zero NUMADomains")
	}
}

func TestTopologyNodes(t *testing.T) {
	topo := Topology{RanksPerNode: 16, NUMADomains: 4}
	for _, c := range []struct{ p, nodes int }{{1, 1}, {16, 1}, {17, 2}, {2048, 128}} {
		if got := topo.Nodes(c.p); got != c.nodes {
			t.Errorf("Nodes(%d) = %d, want %d", c.p, got, c.nodes)
		}
	}
}

func TestMsgCostMonotoneInBytes(t *testing.T) {
	m := SuperMUC(16, true)
	small := m.MsgCost(0, 20, 64)
	large := m.MsgCost(0, 20, 1<<20)
	if small >= large {
		t.Errorf("cost must grow with size: %v vs %v", small, large)
	}
}

func TestMsgCostLinkOrdering(t *testing.T) {
	m := SuperMUC(28, true)
	// With equal payload: same-NUMA <= cross-NUMA <= network.
	const bytes = 4096
	sn := m.MsgCost(0, 1, bytes)   // same NUMA
	cn := m.MsgCost(0, 14, bytes)  // cross NUMA
	net := m.MsgCost(0, 30, bytes) // other node
	if !(sn <= cn && cn <= net) {
		t.Errorf("link cost ordering violated: %v, %v, %v", sn, cn, net)
	}
}

func TestPGASCheaperIntraNode(t *testing.T) {
	pgas := SuperMUC(28, true)
	mpi := SuperMUC(28, false)
	const bytes = 1 << 16
	if pgas.MsgCost(0, 1, bytes) >= mpi.MsgCost(0, 1, bytes) {
		t.Error("PGAS same-NUMA transfers must be cheaper than MPI")
	}
	if pgas.MsgCost(0, 14, bytes) >= mpi.MsgCost(0, 14, bytes) {
		t.Error("PGAS cross-NUMA transfers must be cheaper than MPI")
	}
	// Network pricing is identical in both modes.
	if pgas.MsgCost(0, 100, bytes) != mpi.MsgCost(0, 100, bytes) {
		t.Error("network pricing should not depend on the intra-node mode")
	}
}

func TestComputeCosts(t *testing.T) {
	m := SuperMUC(16, true)
	if m.SortCost(0) != 0 || m.SortCost(1) != 0 {
		t.Error("sorting <2 keys must be free")
	}
	if m.SortCost(1000) <= m.SortCost(100) {
		t.Error("sort cost must grow")
	}
	// Sort must be superlinear, merge ~linear in n.
	if m.SortCost(1<<20) <= 20*m.SortCost(1<<15) {
		t.Error("sort cost should be superlinear enough")
	}
	if m.MergeCost(0, 4) != 0 {
		t.Error("empty merge must be free")
	}
	if m.MergeCost(1000, 16) <= m.MergeCost(1000, 2) {
		t.Error("merge cost must grow with k")
	}
	if m.SearchCost(1, 10) != 0 || m.SearchCost(1024, 0) != 0 {
		t.Error("degenerate searches must be free")
	}
	if m.ScanCost(1000) <= 0 || m.CopyCost(1<<20) <= 0 || m.SelectCost(100) <= 0 {
		t.Error("linear costs must be positive")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewClock(SuperMUC(16, true))
	if !c.Virtual() {
		t.Fatal("clock with model must be virtual")
	}
	if c.Now() != 0 {
		t.Fatal("virtual clock must start at zero")
	}
	c.Advance(5 * time.Millisecond)
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Arrive(3 * time.Millisecond) // in the past: no-op
	if c.Now() != 5*time.Millisecond {
		t.Fatal("Arrive must never move the clock backwards")
	}
	c.Arrive(9 * time.Millisecond)
	if c.Now() != 9*time.Millisecond {
		t.Fatalf("Now = %v after Arrive", c.Now())
	}
	c.Advance(-time.Second) // negative charges are ignored
	if c.Now() != 9*time.Millisecond {
		t.Fatal("negative Advance must be ignored")
	}
}

func TestRealClock(t *testing.T) {
	c := NewClock(nil)
	if c.Virtual() {
		t.Fatal("nil model must give a real clock")
	}
	before := c.Now()
	c.Advance(time.Hour) // no-op
	time.Sleep(time.Millisecond)
	after := c.Now()
	if after <= before {
		t.Fatal("real clock must move forward with wall time")
	}
	if after > time.Minute {
		t.Fatal("Advance must be a no-op on a real clock")
	}
}

func TestLinkClassString(t *testing.T) {
	for lc, want := range map[LinkClass]string{
		SelfLink: "self", SameNUMA: "same-numa", CrossNUMA: "cross-numa", Network: "network",
	} {
		if lc.String() != want {
			t.Errorf("String(%d) = %q", int(lc), lc.String())
		}
	}
	if LinkClass(99).String() != "LinkClass(99)" {
		t.Error("unknown class formatting")
	}
}
