package simnet

import "time"

// Clock is one rank's notion of time.  In virtual mode (model != nil) it is
// a plain accumulator advanced by cost-model charges and message arrivals;
// in real mode it reads the wall clock and charges are no-ops.
//
// A Clock is owned by a single rank goroutine and must not be shared.
type Clock struct {
	model *CostModel
	now   time.Duration
	start time.Time
}

// NewClock returns a clock for the given model (nil model = wall clock).
func NewClock(model *CostModel) *Clock {
	return &Clock{model: model, start: time.Now()}
}

// Virtual reports whether the clock runs on the cost model.
func (c *Clock) Virtual() bool { return c.model != nil }

// Model returns the cost model, or nil in real mode.
func (c *Clock) Model() *CostModel { return c.model }

// Now returns the rank's current time.
func (c *Clock) Now() time.Duration {
	if c.model == nil {
		return time.Since(c.start)
	}
	return c.now
}

// Advance charges d of local computation.  No-op in real mode (the wall
// clock advances by itself).
func (c *Clock) Advance(d time.Duration) {
	if c.model != nil && d > 0 {
		c.now += d
	}
}

// Arrive synchronizes the clock with an event that completes at time t
// (e.g. a message arrival): the clock moves forward to t if t is later.
func (c *Clock) Arrive(t time.Duration) {
	if c.model != nil && t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero: virtual clocks drop their accumulator,
// wall clocks restart their epoch.  Used by pooled persistent worlds between
// jobs so every job measures its own makespan.  Owner-only, like every other
// method.
func (c *Clock) Reset() {
	c.now = 0
	c.start = time.Now()
}
