package simnet

import "time"

// Resilience pricing for the fault-injection plane (internal/fault): the
// virtual cost of detecting a lost message, writing and restoring superstep
// checkpoints, and respawning a crashed rank.  All functions tolerate the
// zero value of their calibration fields so hand-built models keep working.

// RetryTimeout is the base retransmission timeout of the reliable transport
// on the given link class: the time a sender waits before concluding an
// unacknowledged message was lost.  Modelled as two round trips plus the
// send overheads of message and ack — deliberately pessimistic, as real
// RTO estimators are.  Exponential backoff (doubling per retry) is applied
// by the transport, not here.
func (m *CostModel) RetryTimeout(lc LinkClass) time.Duration {
	d := 4*m.Alpha[lc] + 2*m.SendOverhead
	if d < time.Microsecond {
		d = time.Microsecond // floor for uncalibrated models
	}
	return d
}

// CheckpointCost prices writing a superstep checkpoint of the given volume
// to the rank's checkpoint store.
func (m *CostModel) CheckpointCost(bytes int) time.Duration {
	g := m.CkptGBps
	if g == 0 {
		g = m.MemGBps
	}
	d := m.CkptAlpha
	if g > 0 {
		d += time.Duration(float64(bytes) / g)
	}
	return d
}

// RestoreCost prices reading a checkpoint back after a crash.  Symmetric
// with CheckpointCost: the store's bandwidth bounds both directions.
func (m *CostModel) RestoreCost(bytes int) time.Duration {
	return m.CheckpointCost(bytes)
}

// RespawnCost prices restarting a crashed rank's process up to the point
// where it can begin restoring its checkpoint.
func (m *CostModel) RespawnCost() time.Duration {
	return m.RespawnDelay
}
