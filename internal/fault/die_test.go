package fault

import (
	"reflect"
	"testing"
	"unicode/utf8"
)

// TestParseDieRoundTrip pins the die=RANK@STEP syntax through the
// Parse -> String -> Parse fixpoint, alone and mixed with every other field.
func TestParseDieRoundTrip(t *testing.T) {
	specs := []string{
		"die=5@1,seed=3",
		"die=5@1,die=3@1,die=0@2,seed=3",
		"drop=0.03,die=3@1,crash=7@2,stall=1@1:200us,watchdog=30s,seed=7",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", spec, p.String(), err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Errorf("round trip of %q: %+v != %+v", spec, p, q)
		}
	}
}

// TestParseDieCanonicalOrder pins that the death schedule is canonicalised
// (step-major, then rank) independent of the spelling order.
func TestParseDieCanonicalOrder(t *testing.T) {
	a, err := Parse("die=9@2,die=3@1,die=5@1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Death{{Rank: 3, Step: 1}, {Rank: 5, Step: 1}, {Rank: 9, Step: 2}}
	if !reflect.DeepEqual(a.Deaths, want) {
		t.Errorf("canonical order: %+v, want %+v", a.Deaths, want)
	}
}

// TestValidateDieErrors pins the death-schedule validation: negative rank,
// step below 1, and one rank dying twice are all rejected.
func TestValidateDieErrors(t *testing.T) {
	for _, spec := range []string{
		"die=3",                       // missing @STEP
		"die=3@0",                     // step below 1
		"die=-1@1",                    // negative rank
		"die=3@1,die=3@2" + ",seed=1", // rank 3 dies twice
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid death schedule", spec)
		}
	}
}

// TestDieSchedule pins the injector's death queries: DieAt answers exactly
// the scheduled (rank, step) pairs, and Deaths reports schedule presence.
func TestDieSchedule(t *testing.T) {
	in, err := New(Plan{Seed: 1, Deaths: []Death{{Rank: 3, Step: 1}, {Rank: 9, Step: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Deaths() {
		t.Error("Deaths() false with a scheduled death")
	}
	for rank := 0; rank < 12; rank++ {
		for step := 1; step <= 3; step++ {
			want := (rank == 3 && step == 1) || (rank == 9 && step == 2)
			if got := in.DieAt(rank, step); got != want {
				t.Errorf("DieAt(%d, %d) = %v, want %v", rank, step, got, want)
			}
		}
	}
	none, err := New(Plan{Seed: 1, DropRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if none.Deaths() {
		t.Error("Deaths() true without a death schedule")
	}
	var nilInj *Injector
	if nilInj.Deaths() || nilInj.DieAt(0, 1) {
		t.Error("nil injector must report no deaths")
	}
}

// FuzzParseRoundTrip fuzzes the CLI fault syntax: any spec Parse accepts
// must render (String) back to a spec that parses to the identical plan —
// the canonical-form fixpoint the -fault flag plumbing relies on.
func FuzzParseRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"",
		"drop=0.01,seed=7",
		"drop=0.01,dup=0.005,delay=0.02:50us,reorder=0.01,seed=7",
		"crash=3@2,stall=1@1:200us,die=5@1,watchdog=30s,seed=9",
		"die=5@1,die=3@1,seed=3",
		"die=0@1",
		"delay=0.5:1ms",
		"delay=00:1s", // zero-rate jitter bound: must normalize away
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if !utf8.ValidString(spec) {
			t.Skip()
		}
		p, err := Parse(spec)
		if err != nil {
			t.Skip() // rejected specs have no canonical form
		}
		canon := p.String()
		q, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse rejects its own rendering %q of %q: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Errorf("round trip of %q via %q: %+v != %+v", spec, canon, p, q)
		}
		if again := q.String(); again != canon {
			t.Errorf("String not a fixpoint: %q -> %q", canon, again)
		}
	})
}
