package fault

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"drop=0.01,seed=7",
		"drop=0.01,dup=0.005,delay=0.02:50us,reorder=0.01,seed=7",
		"crash=3@2,stall=1@1:200us,watchdog=30s,seed=9",
		"drop=0.05,crash=3@2,crash=5@1,stall=2@3:1ms,seed=1",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", spec, p.String(), err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Errorf("round trip of %q: %+v != %+v", spec, p, q)
		}
	}
}

func TestParseCanonicalizesScheduleOrder(t *testing.T) {
	a, err := Parse("crash=5@2,crash=3@1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("crash=3@1,crash=5@2,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("spelling order leaked into the plan: %+v != %+v", a, b)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",               // not key=value
		"drop=x",             // not a number
		"drop=0.9",           // above the retransmission-safe cap
		"drop=-0.1",          // negative
		"warble=1",           // unknown field
		"crash=3",            // missing @STEP
		"crash=3@0",          // step below 1
		"stall=1@1",          // missing duration
		"stall=1@1:-5us",     // non-positive duration
		"delay=0.1:notaspan", // bad jitter bound
		"seed=notanumber",    // bad seed
		"watchdog=notaspan",  // bad watchdog
		"crash=-1@2,seed=3",  // negative rank
		"drop=0.1,drop=junk", // second occurrence still validated
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
}

func TestZeroPlan(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Enabled() || p.MessageFaults() {
		t.Errorf("empty spec produced an enabled plan: %+v", p)
	}
	in, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("zero plan must yield a nil injector")
	}
	// The entire nil-injector method set is safe and inert.
	if in.MessageFaults() || in.Watchdog() != 0 || in.CrashAt(0, 1) || in.StallAt(0, 1) != 0 {
		t.Error("nil injector injected something")
	}
	if v := in.Verdict(1, 0, 1, 7, 1, 0); v.Faulty() {
		t.Errorf("nil injector verdict %+v", v)
	}
}

func TestVerdictDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.1, ReorderRate: 0.05}
	a, b := MustNew(plan), MustNew(plan)
	other := MustNew(Plan{Seed: 43, DropRate: 0.1, DupRate: 0.05, DelayRate: 0.1, ReorderRate: 0.05})
	differs := false
	for seq := uint64(1); seq <= 2000; seq++ {
		va := a.Verdict(1, 0, 1, 7, seq, 0)
		if vb := b.Verdict(1, 0, 1, 7, seq, 0); va != vb {
			t.Fatalf("seq %d: same plan disagreed: %+v vs %+v", seq, va, vb)
		}
		if other.Verdict(1, 0, 1, 7, seq, 0) != va {
			differs = true
		}
		// Drop is exclusive: a lost attempt cannot also be duplicated,
		// delayed or reordered.
		if va.Drop && (va.Dup || va.Reorder || va.Delay != 0) {
			t.Fatalf("seq %d: drop verdict carries delivery faults: %+v", seq, va)
		}
	}
	if !differs {
		t.Error("changing the seed never changed a verdict")
	}
}

func TestVerdictRates(t *testing.T) {
	const trials = 50_000
	plan := Plan{Seed: 7, DropRate: 0.2, DelayRate: 0.1, MaxDelay: 50 * time.Microsecond}
	in := MustNew(plan)
	var drops, delays int
	for seq := uint64(1); seq <= trials; seq++ {
		v := in.Verdict(3, 2, 5, 11, seq, 0)
		if v.Drop {
			drops++
		}
		if v.Delay > 0 {
			delays++
			if v.Delay > plan.MaxDelay {
				t.Fatalf("seq %d: delay %v exceeds bound %v", seq, v.Delay, plan.MaxDelay)
			}
		}
	}
	if got := float64(drops) / trials; got < 0.18 || got > 0.22 {
		t.Errorf("drop rate %.4f far from 0.2", got)
	}
	if got := float64(delays) / trials; got < 0.08 || got > 0.12 {
		t.Errorf("delay rate %.4f far from 0.1", got)
	}
}

func TestVerdictChannelsIndependent(t *testing.T) {
	// Different flows, attempts and communicators must decide independently;
	// a retransmission in particular must not inherit its first attempt's
	// drop fate, or a dropped message could never get through.
	in := MustNew(Plan{Seed: 1, DropRate: 0.5})
	same := 0
	const n = 1000
	for seq := uint64(1); seq <= n; seq++ {
		if in.Verdict(1, 0, 1, 7, seq, 0).Drop == in.Verdict(1, 0, 1, 7, seq, 1).Drop {
			same++
		}
	}
	if same == n {
		t.Error("attempt number never changed the drop fate")
	}
}

func TestCrashAndStallSchedule(t *testing.T) {
	in := MustNew(Plan{
		Crashes: []Crash{{Rank: 3, Step: 2}},
		Stalls:  []Stall{{Rank: 1, Step: 1, D: 100 * time.Microsecond}, {Rank: 1, Step: 1, D: 50 * time.Microsecond}},
	})
	if !in.CrashAt(3, 2) || in.CrashAt(3, 1) || in.CrashAt(2, 2) {
		t.Error("crash schedule misfired")
	}
	if got := in.StallAt(1, 1); got != 150*time.Microsecond {
		t.Errorf("stall durations on the same coordinate must sum: got %v", got)
	}
	if in.StallAt(1, 2) != 0 {
		t.Error("stall misfired at an unscheduled step")
	}
	if in.MessageFaults() {
		t.Error("a crash/stall-only plan must not force the sequenced transport")
	}
}

func TestValidateErrors(t *testing.T) {
	for name, p := range map[string]Plan{
		"drop above cap":    {DropRate: 0.6},
		"negative dup":      {DupRate: -0.1},
		"negative maxdelay": {DelayRate: 0.1, MaxDelay: -time.Second},
		"negative watchdog": {Watchdog: -time.Second},
		"crash step 0":      {Crashes: []Crash{{Rank: 1, Step: 0}}},
		"stall no duration": {Stalls: []Stall{{Rank: 1, Step: 1}}},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
		if _, err := New(p); err == nil {
			t.Errorf("%s: New accepted %+v", name, p)
		}
	}
}

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{EventInject: "inject", EventDetect: "detect", EventRetry: "retry", EventRecover: "recover"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Error("unknown EventKind should render its number")
	}
}
