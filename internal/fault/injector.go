package fault

import "time"

// Verdict is the injector's ruling on one transmission attempt of one
// message.  Drop excludes the rest: a dropped attempt never reaches the
// wire, so duplication, delay and reordering apply only to the attempt
// that is finally delivered.
type Verdict struct {
	Drop    bool
	Dup     bool
	Delay   time.Duration
	Reorder bool
}

// Faulty reports whether the verdict injects anything.
func (v Verdict) Faulty() bool {
	return v.Drop || v.Dup || v.Reorder || v.Delay > 0
}

// Injector adjudicates fault decisions for a Plan.  It is stateless after
// construction and safe for concurrent use from every rank goroutine: each
// decision hashes the schedule seed with the identity of the event, so the
// outcome is independent of call order.
type Injector struct {
	plan  Plan
	crash map[rankStep]struct{}
	stall map[rankStep]time.Duration
	die   map[rankStep]struct{}
}

type rankStep struct{ rank, step int }

// New validates the plan and builds its injector.  A plan that injects
// nothing yields a nil injector, so callers can gate the entire fault path
// on `inj != nil`.
func New(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	in := &Injector{plan: p}
	if len(p.Crashes) > 0 {
		in.crash = make(map[rankStep]struct{}, len(p.Crashes))
		for _, c := range p.Crashes {
			in.crash[rankStep{c.Rank, c.Step}] = struct{}{}
		}
	}
	if len(p.Stalls) > 0 {
		in.stall = make(map[rankStep]time.Duration, len(p.Stalls))
		for _, s := range p.Stalls {
			in.stall[rankStep{s.Rank, s.Step}] += s.D
		}
	}
	if len(p.Deaths) > 0 {
		in.die = make(map[rankStep]struct{}, len(p.Deaths))
		for _, d := range p.Deaths {
			in.die[rankStep{d.Rank, d.Step}] = struct{}{}
		}
	}
	return in, nil
}

// MustNew is New for known-good plans (tests, internal wiring).
func MustNew(p Plan) *Injector {
	in, err := New(p)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns the schedule the injector adjudicates.
func (in *Injector) Plan() Plan { return in.plan }

// MessageFaults reports whether the transport must run its sequenced,
// retransmitting delivery path.
func (in *Injector) MessageFaults() bool {
	return in != nil && in.plan.MessageFaults()
}

// Watchdog returns the receive watchdog bound (0 = disabled).
func (in *Injector) Watchdog() time.Duration {
	if in == nil {
		return 0
	}
	return in.plan.Watchdog
}

// Distinct hash salts keep the per-channel decisions independent even
// though every flow starts at sequence number 1.
const (
	saltDrop uint64 = 0xd509_0fb1_ca3d_11e9 + iota
	saltDup
	saltDelay
	saltJitter
	saltReorder
)

// Verdict adjudicates one transmission attempt.  commID, src, dst and tag
// identify the flow (src/dst are world ranks), seq the message within the
// flow, attempt the retransmission round (0 = first try).
func (in *Injector) Verdict(commID uint64, src, dst, tag int, seq uint64, attempt int) Verdict {
	var v Verdict
	if in == nil {
		return v
	}
	p := in.plan
	key := [6]uint64{commID, uint64(int64(src)), uint64(int64(dst)), uint64(int64(tag)), seq, uint64(int64(attempt))}
	if p.DropRate > 0 && in.uniform(saltDrop, key) < p.DropRate {
		v.Drop = true
		return v
	}
	if p.DupRate > 0 && in.uniform(saltDup, key) < p.DupRate {
		v.Dup = true
	}
	if p.DelayRate > 0 && in.uniform(saltDelay, key) < p.DelayRate {
		d := time.Duration(in.uniform(saltJitter, key) * float64(p.maxDelay()))
		if d <= 0 {
			d = 1
		}
		v.Delay = d
	}
	if p.ReorderRate > 0 && in.uniform(saltReorder, key) < p.ReorderRate {
		v.Reorder = true
	}
	return v
}

// CrashAt reports whether the rank is scheduled to crash right after
// completing the given superstep.
func (in *Injector) CrashAt(rank, step int) bool {
	if in == nil {
		return false
	}
	_, ok := in.crash[rankStep{rank, step}]
	return ok
}

// StallAt returns the scheduled stall duration for the rank at the given
// superstep boundary (0 = none).
func (in *Injector) StallAt(rank, step int) time.Duration {
	if in == nil {
		return 0
	}
	return in.stall[rankStep{rank, step}]
}

// DieAt reports whether the rank is scheduled to die permanently right
// after completing the given superstep.
func (in *Injector) DieAt(rank, step int) bool {
	if in == nil {
		return false
	}
	_, ok := in.die[rankStep{rank, step}]
	return ok
}

// Deaths reports whether the plan schedules any permanent rank deaths.
func (in *Injector) Deaths() bool {
	return in != nil && len(in.plan.Deaths) > 0
}

// uniform maps (seed, salt, key) to [0, 1) with 53 bits of precision.
func (in *Injector) uniform(salt uint64, key [6]uint64) float64 {
	h := mix64(in.plan.Seed ^ salt)
	for _, v := range key {
		h = mix64(h ^ v)
	}
	return float64(h>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer — a full-avalanche 64-bit mixer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
