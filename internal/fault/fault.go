// Package fault is the deterministic fault-injection plane of the runtime:
// a seeded schedule of message-level faults (drop, duplication, delay
// jitter, reordering) and rank-level faults (stall, crash-at-superstep)
// that the comm transport and the sorting supersteps consult while they
// run.
//
// Every decision is a pure function of the schedule seed and the identity
// of the event being adjudicated — (communicator, src, dst, tag, sequence
// number, attempt) for messages, (rank, superstep) for crashes and stalls —
// so a failure run is bit-reproducible no matter how the rank goroutines
// interleave.  The resilience mechanisms that survive the injected faults
// live elsewhere: retransmission with exponential backoff and
// sequence-number dedup in internal/comm, superstep checkpoint/recovery in
// internal/core and internal/hss.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultMaxDelay bounds injected arrival jitter when the schedule does not
// set one.
const DefaultMaxDelay = 100 * time.Microsecond

// Crash schedules one rank to fail immediately after completing the given
// superstep (1-based; see core.StepLocalSort and friends).  The rank
// respawns and re-enters from its last checkpoint instead of wedging the
// world.
type Crash struct {
	Rank int
	Step int
}

// Stall schedules one rank to freeze for D of virtual time at the given
// superstep boundary — a straggler, not a failure.
type Stall struct {
	Rank int
	Step int
	D    time.Duration
}

// Death schedules one rank to fail permanently immediately after completing
// the given superstep (1-based).  Unlike a Crash there is no respawn: the
// rank leaves the computation for good and the survivors must notice
// (ErrRankDead), agree, and continue on a shrunken communicator.
type Death struct {
	Rank int
	Step int
}

// Plan is a seeded fault schedule.  The zero value injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision; two runs with the same
	// plan produce the same faults.
	Seed uint64

	// DropRate is the probability that one transmission attempt of a
	// point-to-point message is lost (the sender times out and
	// retransmits).  Retransmission attempts are adjudicated
	// independently.
	DropRate float64
	// DupRate is the probability that a delivered message arrives twice
	// (e.g. a retransmission racing its own ack); the receiver's
	// sequence-number dedup discards the copy.
	DupRate float64
	// DelayRate is the probability that a delivered message picks up
	// extra arrival jitter, uniform in (0, MaxDelay].
	DelayRate float64
	// MaxDelay bounds the injected jitter (0 means DefaultMaxDelay).
	MaxDelay time.Duration
	// ReorderRate is the probability that a delivered message jumps ahead
	// of messages already queued at the receiver; per-flow sequence
	// numbers restore delivery order.
	ReorderRate float64

	// Crashes, Stalls and Deaths are the scheduled rank-level faults.
	Crashes []Crash
	Stalls  []Stall
	Deaths  []Death

	// Watchdog, when positive, bounds how long a receive may block on the
	// wall clock before the rank declares the sender dead and aborts the
	// world with a diagnostic — the detection path for faults the plan
	// did not schedule a recovery for.
	Watchdog time.Duration
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.MessageFaults() || len(p.Crashes) > 0 || len(p.Stalls) > 0 || len(p.Deaths) > 0
}

// MessageFaults reports whether any message-level fault rate is active —
// the condition under which the transport switches to sequenced,
// retransmitting delivery.
func (p Plan) MessageFaults() bool {
	return p.DropRate > 0 || p.DupRate > 0 || p.DelayRate > 0 || p.ReorderRate > 0
}

// maxDelay returns the effective jitter bound.
func (p Plan) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return DefaultMaxDelay
	}
	return p.MaxDelay
}

// Validate rejects schedules the resilience layer cannot guarantee to
// survive (rates out of range, negative coordinates).
func (p Plan) Validate() error {
	check := func(name string, r float64) error {
		if r < 0 || r > maxRate {
			return fmt.Errorf("fault: %s rate %v outside [0, %v]", name, r, maxRate)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		r    float64
	}{{"drop", p.DropRate}, {"dup", p.DupRate}, {"delay", p.DelayRate}, {"reorder", p.ReorderRate}} {
		if err := check(c.name, c.r); err != nil {
			return err
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("fault: negative MaxDelay %v", p.MaxDelay)
	}
	if p.Watchdog < 0 {
		return fmt.Errorf("fault: negative Watchdog %v", p.Watchdog)
	}
	for _, c := range p.Crashes {
		if c.Rank < 0 || c.Step < 1 {
			return fmt.Errorf("fault: crash %d@%d needs rank >= 0 and step >= 1", c.Rank, c.Step)
		}
	}
	for _, s := range p.Stalls {
		if s.Rank < 0 || s.Step < 1 || s.D <= 0 {
			return fmt.Errorf("fault: stall %d@%d:%v needs rank >= 0, step >= 1 and a positive duration", s.Rank, s.Step, s.D)
		}
	}
	seen := make(map[int]bool, len(p.Deaths))
	for _, d := range p.Deaths {
		if d.Rank < 0 || d.Step < 1 {
			return fmt.Errorf("fault: die %d@%d needs rank >= 0 and step >= 1", d.Rank, d.Step)
		}
		if seen[d.Rank] {
			return fmt.Errorf("fault: rank %d scheduled to die more than once", d.Rank)
		}
		seen[d.Rank] = true
	}
	return nil
}

// maxRate caps the per-attempt loss probability so that the retransmission
// protocol's attempt budget terminates with overwhelming probability.
const maxRate = 0.5

// String renders the plan in the Parse syntax (canonical field order).
func (p Plan) String() string {
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if p.DropRate > 0 {
		add(fmt.Sprintf("drop=%g", p.DropRate))
	}
	if p.DupRate > 0 {
		add(fmt.Sprintf("dup=%g", p.DupRate))
	}
	if p.DelayRate > 0 {
		if p.MaxDelay > 0 {
			add(fmt.Sprintf("delay=%g:%v", p.DelayRate, p.MaxDelay))
		} else {
			add(fmt.Sprintf("delay=%g", p.DelayRate))
		}
	}
	if p.ReorderRate > 0 {
		add(fmt.Sprintf("reorder=%g", p.ReorderRate))
	}
	for _, c := range p.Crashes {
		add(fmt.Sprintf("crash=%d@%d", c.Rank, c.Step))
	}
	for _, s := range p.Stalls {
		add(fmt.Sprintf("stall=%d@%d:%v", s.Rank, s.Step, s.D))
	}
	for _, d := range p.Deaths {
		add(fmt.Sprintf("die=%d@%d", d.Rank, d.Step))
	}
	if p.Watchdog > 0 {
		add(fmt.Sprintf("watchdog=%v", p.Watchdog))
	}
	add(fmt.Sprintf("seed=%d", p.Seed))
	return strings.Join(parts, ",")
}

// Parse builds a plan from the comma-separated CLI syntax used by the
// -fault flags:
//
//	drop=0.01,dup=0.005,delay=0.02:50us,reorder=0.01,seed=7
//	crash=3@2,stall=1@1:200us,die=5@1,watchdog=30s
//
// crash=RANK@STEP, stall=RANK@STEP:DUR and die=RANK@STEP may repeat; delay
// takes an optional :MAXJITTER suffix.  An empty string parses to the zero
// plan.
func Parse(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			p.DropRate, err = parseRate(key, val)
		case "dup":
			p.DupRate, err = parseRate(key, val)
		case "reorder":
			p.ReorderRate, err = parseRate(key, val)
		case "delay":
			rate, jitter, cutOK := strings.Cut(val, ":")
			p.DelayRate, err = parseRate(key, rate)
			if err == nil && cutOK {
				p.MaxDelay, err = time.ParseDuration(jitter)
			}
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "watchdog":
			p.Watchdog, err = time.ParseDuration(val)
		case "crash":
			var rank, step int
			rank, step, err = parseRankStep(key, val)
			p.Crashes = append(p.Crashes, Crash{Rank: rank, Step: step})
		case "stall":
			at, dur, cutOK := strings.Cut(val, ":")
			if !cutOK {
				return Plan{}, fmt.Errorf("fault: stall %q needs RANK@STEP:DURATION", val)
			}
			var rank, step int
			var d time.Duration
			rank, step, err = parseRankStep(key, at)
			if err == nil {
				d, err = time.ParseDuration(dur)
			}
			p.Stalls = append(p.Stalls, Stall{Rank: rank, Step: step, D: d})
		case "die":
			var rank, step int
			rank, step, err = parseRankStep(key, val)
			p.Deaths = append(p.Deaths, Death{Rank: rank, Step: step})
		default:
			return Plan{}, fmt.Errorf("fault: unknown field %q (want drop|dup|delay|reorder|crash|stall|die|seed|watchdog)", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: field %q: %w", field, err)
		}
	}
	// Canonical schedule order, so Plan.String round-trips regardless of
	// the spelling order.
	sort.SliceStable(p.Crashes, func(i, j int) bool {
		if p.Crashes[i].Step != p.Crashes[j].Step {
			return p.Crashes[i].Step < p.Crashes[j].Step
		}
		return p.Crashes[i].Rank < p.Crashes[j].Rank
	})
	sort.SliceStable(p.Stalls, func(i, j int) bool {
		if p.Stalls[i].Step != p.Stalls[j].Step {
			return p.Stalls[i].Step < p.Stalls[j].Step
		}
		return p.Stalls[i].Rank < p.Stalls[j].Rank
	})
	sort.SliceStable(p.Deaths, func(i, j int) bool {
		if p.Deaths[i].Step != p.Deaths[j].Step {
			return p.Deaths[i].Step < p.Deaths[j].Step
		}
		return p.Deaths[i].Rank < p.Deaths[j].Rank
	})
	// A jitter bound without a positive delay rate can never fire; drop it
	// so the canonical rendering (which omits the delay field entirely)
	// round-trips to the identical plan.
	if p.DelayRate == 0 {
		p.MaxDelay = 0
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func parseRate(key, val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > maxRate {
		return 0, fmt.Errorf("%s rate %v outside [0, %v]", key, r, maxRate)
	}
	return r, nil
}

func parseRankStep(key, val string) (rank, step int, err error) {
	r, s, ok := strings.Cut(val, "@")
	if !ok {
		return 0, 0, fmt.Errorf("%s %q needs RANK@STEP", key, val)
	}
	if rank, err = strconv.Atoi(r); err != nil {
		return 0, 0, err
	}
	if step, err = strconv.Atoi(s); err != nil {
		return 0, 0, err
	}
	return rank, step, nil
}
