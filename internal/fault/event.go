package fault

import (
	"fmt"
	"time"
)

// EventKind classifies one fault-plane occurrence for tracing: the
// injection itself, the moment a resilience mechanism notices it, the
// repair attempt, and the completed recovery.
type EventKind int

const (
	// EventInject marks a fault entering the system (drop, dup, delay,
	// reorder, stall, crash).
	EventInject EventKind = iota
	// EventDetect marks a resilience mechanism noticing a fault (send
	// timeout firing, duplicate discarded, checksum mismatch).
	EventDetect
	// EventRetry marks a repair attempt (a retransmission after backoff).
	EventRetry
	// EventRecover marks a completed recovery (message finally delivered
	// after retries, rank restored from checkpoint).
	EventRecover
)

// String returns the kind's trace label.
func (k EventKind) String() string {
	switch k {
	case EventInject:
		return "inject"
	case EventDetect:
		return "detect"
	case EventRetry:
		return "retry"
	case EventRecover:
		return "recover"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one fault-plane occurrence, reported by the transport and the
// checkpoint layer to whatever Observer is registered (the metrics recorder
// turns them into trace spans).
type Event struct {
	Kind   EventKind
	Detail string        // e.g. "drop net:3->7", "restore step 2"
	Dur    time.Duration // time the event cost (backoff wait, recovery)
}

// Observer receives fault events on the rank goroutine that produced them;
// implementations must be cheap and must not call back into comm.
type Observer func(Event)
