package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrderInt64(t *testing.T) {
	f := func(a, b int64) bool {
		if UnorderInt64(OrderInt64(a)) != a {
			return false
		}
		return (a < b) == (OrderInt64(a) < OrderInt64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderFloat64(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if UnorderFloat64(OrderFloat64(a)) != a && !(a == 0) { // ±0 collapse is fine order-wise
			return false
		}
		if a == b {
			return true
		}
		return (a < b) == (OrderFloat64(a) < OrderFloat64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderFloat64Specials(t *testing.T) {
	vals := []float64{math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, math.MaxFloat64, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		if OrderFloat64(a) > OrderFloat64(b) {
			t.Errorf("order violated: %v !<= %v", a, b)
		}
	}
	// -0 strictly below +0 in the embedding, as documented.
	if !(OrderFloat64(math.Copysign(0, -1)) < OrderFloat64(0)) {
		t.Error("-0 should map below +0")
	}
	// Roundtrip of ±0 preserves the bit pattern.
	if math.Signbit(UnorderFloat64(OrderFloat64(math.Copysign(0, -1)))) != true {
		t.Error("-0 roundtrip lost sign")
	}
}

func TestOrderFloat32(t *testing.T) {
	f := func(ab, bb uint32) bool {
		a, b := math.Float32frombits(ab), math.Float32frombits(bb)
		if a != a || b != b { // NaN
			return true
		}
		if UnorderFloat32(OrderFloat32(a)) != a && a != 0 {
			return false
		}
		if a == b {
			return true
		}
		return (a < b) == (OrderFloat32(a) < OrderFloat32(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderInt32(t *testing.T) {
	f := func(a, b int32) bool {
		if UnorderInt32(OrderInt32(a)) != a {
			return false
		}
		return (a < b) == (OrderInt32(a) < OrderInt32(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
