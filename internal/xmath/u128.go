// Package xmath provides the fixed-width integer arithmetic and
// order-preserving bit embeddings that back histogram bisection.
//
// Splitter refinement in the histogram sort repeatedly computes the midpoint
// of a key interval.  Doing that in an order-preserving integer embedding of
// the key space guarantees convergence in at most "key width" iterations,
// matching the behaviour reported in §V-A of the paper.  U128 is wide enough
// to hold a 64-bit key concatenated with a 64-bit uniqueness suffix
// (rank, index), the triple construction of §V-A.
package xmath

import (
	"fmt"
	"math/bits"
)

// U128 is an unsigned 128-bit integer.  The zero value is 0.
type U128 struct {
	Hi uint64
	Lo uint64
}

// U128From64 returns x as a U128.
func U128From64(x uint64) U128 { return U128{Lo: x} }

// U128FromParts assembles a U128 from high and low 64-bit halves.
func U128FromParts(hi, lo uint64) U128 { return U128{Hi: hi, Lo: lo} }

// MaxU128 is the largest representable U128.
var MaxU128 = U128{Hi: ^uint64(0), Lo: ^uint64(0)}

// Add returns a+b, wrapping on overflow.
func (a U128) Add(b U128) U128 {
	lo, carry := bits.Add64(a.Lo, b.Lo, 0)
	hi, _ := bits.Add64(a.Hi, b.Hi, carry)
	return U128{Hi: hi, Lo: lo}
}

// Sub returns a-b, wrapping on underflow.
func (a U128) Sub(b U128) U128 {
	lo, borrow := bits.Sub64(a.Lo, b.Lo, 0)
	hi, _ := bits.Sub64(a.Hi, b.Hi, borrow)
	return U128{Hi: hi, Lo: lo}
}

// Rsh1 returns a>>1.
func (a U128) Rsh1() U128 {
	return U128{Hi: a.Hi >> 1, Lo: a.Lo>>1 | a.Hi<<63}
}

// Cmp returns -1 if a<b, 0 if a==b, +1 if a>b.
func (a U128) Cmp(b U128) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// Less reports whether a < b.
func (a U128) Less(b U128) bool { return a.Cmp(b) < 0 }

// Eq reports whether a == b.
func (a U128) Eq(b U128) bool { return a == b }

// Avg returns the midpoint floor((a+b)/2) without overflow.  The result m
// satisfies a <= m < b whenever a < b, the property splitter bisection relies
// on for termination.
func (a U128) Avg(b U128) U128 {
	if b.Less(a) {
		a, b = b, a
	}
	return a.Add(b.Sub(a).Rsh1())
}

// Inc returns a+1, wrapping on overflow.
func (a U128) Inc() U128 { return a.Add(U128{Lo: 1}) }

// Dec returns a-1, wrapping on underflow.
func (a U128) Dec() U128 { return a.Sub(U128{Lo: 1}) }

// Div64 returns a/d (truncated).  d must be non-zero.  Splitter refinement
// uses it to place k evenly spaced probes across an interval: the step is
// width/(k+1), which a 128-bit ÷ 64-bit division computes exactly.
func (a U128) Div64(d uint64) U128 {
	if d == 0 {
		panic("xmath: division by zero")
	}
	hi := a.Hi / d
	rem := a.Hi % d
	lo, _ := bits.Div64(rem, a.Lo, d)
	return U128{Hi: hi, Lo: lo}
}

// BitLen returns the number of bits required to represent a.
func (a U128) BitLen() int {
	if a.Hi != 0 {
		return 64 + bits.Len64(a.Hi)
	}
	return bits.Len64(a.Lo)
}

// String renders a in hexadecimal, for diagnostics.
func (a U128) String() string {
	if a.Hi == 0 {
		return fmt.Sprintf("0x%x", a.Lo)
	}
	return fmt.Sprintf("0x%x%016x", a.Hi, a.Lo)
}
