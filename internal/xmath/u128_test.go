package xmath

import (
	"math/big"
	"testing"
	"testing/quick"
)

func big128(a U128) *big.Int {
	b := new(big.Int).SetUint64(a.Hi)
	b.Lsh(b, 64)
	return b.Add(b, new(big.Int).SetUint64(a.Lo))
}

var mod128 = new(big.Int).Lsh(big.NewInt(1), 128)

func TestU128AddSubAgainstBig(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := U128{ah, al}, U128{bh, bl}
		sum := big128(a)
		sum.Add(sum, big128(b)).Mod(sum, mod128)
		if big128(a.Add(b)).Cmp(sum) != 0 {
			return false
		}
		diff := big128(a)
		diff.Sub(diff, big128(b)).Mod(diff, mod128)
		return big128(a.Sub(b)).Cmp(diff) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU128CmpAgainstBig(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := U128{ah, al}, U128{bh, bl}
		return a.Cmp(b) == big128(a).Cmp(big128(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU128AvgBetween(t *testing.T) {
	f := func(ah, al, bh, bl uint64) bool {
		a, b := U128{ah, al}, U128{bh, bl}
		if b.Less(a) {
			a, b = b, a
		}
		m := a.Avg(b)
		if a.Eq(b) {
			return m.Eq(a)
		}
		// a <= m < b, and m is the exact floor midpoint.
		if m.Less(a) || !m.Less(b) {
			return false
		}
		want := big128(a)
		want.Add(want, big128(b)).Rsh(want, 1)
		return big128(m).Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU128Div64AgainstBig(t *testing.T) {
	f := func(ah, al, d uint64) bool {
		if d == 0 {
			d = 1
		}
		a := U128{ah, al}
		want := big128(a)
		want.Div(want, new(big.Int).SetUint64(d))
		return big128(a.Div64(d)).Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU128Div64PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div64(0) did not panic")
		}
	}()
	U128From64(1).Div64(0)
}

func TestU128Rsh1(t *testing.T) {
	cases := []struct{ in, want U128 }{
		{U128{0, 2}, U128{0, 1}},
		{U128{1, 0}, U128{0, 1 << 63}},
		{U128{3, 1}, U128{1, 1<<63 | 0}},
		{MaxU128, U128{^uint64(0) >> 1, ^uint64(0)}},
	}
	for _, c := range cases {
		if got := c.in.Rsh1(); got != c.want {
			t.Errorf("Rsh1(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestU128IncDec(t *testing.T) {
	if got := (U128{0, ^uint64(0)}).Inc(); got != (U128{1, 0}) {
		t.Errorf("Inc carry failed: %v", got)
	}
	if got := (U128{1, 0}).Dec(); got != (U128{0, ^uint64(0)}) {
		t.Errorf("Dec borrow failed: %v", got)
	}
	if got := MaxU128.Inc(); got != (U128{}) {
		t.Errorf("Inc wrap failed: %v", got)
	}
}

func TestU128BitLen(t *testing.T) {
	if got := (U128{}).BitLen(); got != 0 {
		t.Errorf("BitLen(0) = %d", got)
	}
	if got := (U128{0, 1}).BitLen(); got != 1 {
		t.Errorf("BitLen(1) = %d", got)
	}
	if got := (U128{1, 0}).BitLen(); got != 65 {
		t.Errorf("BitLen(2^64) = %d", got)
	}
	if got := MaxU128.BitLen(); got != 128 {
		t.Errorf("BitLen(max) = %d", got)
	}
}

func TestU128String(t *testing.T) {
	if got := (U128{0, 0xff}).String(); got != "0xff" {
		t.Errorf("String = %q", got)
	}
	if got := (U128{1, 2}).String(); got != "0x10000000000000002" {
		t.Errorf("String = %q", got)
	}
}
