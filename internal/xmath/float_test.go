package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64Roundtrip(t *testing.T) {
	cases := []U128{
		{}, {0, 1}, {0, 1 << 52}, {1, 0}, {1 << 40, 0}, MaxU128,
	}
	for _, c := range cases {
		f := c.Float64()
		back := U128FromFloat64(f)
		// Relative error within float64 precision.
		if f > 0 {
			rel := math.Abs(back.Float64()-f) / f
			if rel > 1e-9 {
				t.Errorf("roundtrip of %v drifted: %v", c, rel)
			}
		} else if back != (U128{}) {
			t.Errorf("zero roundtrip: %v", back)
		}
	}
}

func TestU128FromFloat64Edges(t *testing.T) {
	if U128FromFloat64(-5) != (U128{}) {
		t.Error("negative must clamp to zero")
	}
	if U128FromFloat64(math.NaN()) != (U128{}) {
		t.Error("NaN must map to zero")
	}
	if U128FromFloat64(math.Inf(1)) != MaxU128 {
		t.Error("+Inf must clamp to max")
	}
	if U128FromFloat64(1e40).Hi == 0 {
		t.Error("large values must populate the high half")
	}
	if got := U128FromFloat64(12345); got != (U128{0, 12345}) {
		t.Errorf("small integer: %v", got)
	}
}

func TestLerpBounds(t *testing.T) {
	a, b := U128{0, 100}, U128{5, 0}
	if Lerp(a, b, 0) != a {
		t.Error("t=0 must give a")
	}
	if Lerp(a, b, 1) != b {
		t.Error("t=1 must give b")
	}
	if Lerp(a, b, -3) != a || Lerp(a, b, 7) != b {
		t.Error("t outside [0,1] must clamp")
	}
	// Swapped arguments behave identically.
	if Lerp(b, a, 0) != a {
		t.Error("swapped bounds must normalize")
	}
}

func TestLerpWithinInterval(t *testing.T) {
	f := func(ah, al, bh, bl uint64, tRaw uint16) bool {
		a, b := U128{ah, al}, U128{bh, bl}
		if b.Less(a) {
			a, b = b, a
		}
		tt := float64(tRaw) / 65535
		m := Lerp(a, b, tt)
		return !m.Less(a) && !b.Less(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerpMidpointClose(t *testing.T) {
	a, b := U128{0, 0}, U128{0, 1000}
	m := Lerp(a, b, 0.5)
	if m.Lo < 499 || m.Lo > 501 {
		t.Errorf("midpoint = %v", m)
	}
}
