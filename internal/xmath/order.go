package xmath

import "math"

// The functions below are order-preserving bijections between native key
// types and unsigned integers: x < y (in the key order) iff f(x) < f(y)
// (as unsigned integers).  They let histogram bisection operate on any
// fixed-width key type with guaranteed convergence.

// OrderInt64 maps an int64 to a uint64 preserving order (offset binary).
func OrderInt64(x int64) uint64 { return uint64(x) ^ (1 << 63) }

// UnorderInt64 inverts OrderInt64.
func UnorderInt64(u uint64) int64 { return int64(u ^ (1 << 63)) }

// OrderFloat64 maps a float64 to a uint64 preserving the total order of
// IEEE-754 values (with -0 < +0 and NaNs mapped above +Inf by their payload).
func OrderFloat64(x float64) uint64 {
	u := math.Float64bits(x)
	if u&(1<<63) != 0 {
		return ^u // negative: flip all bits
	}
	return u | 1<<63 // non-negative: flip sign bit
}

// UnorderFloat64 inverts OrderFloat64.
func UnorderFloat64(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// OrderFloat32 maps a float32 to a uint32 preserving IEEE-754 total order.
func OrderFloat32(x float32) uint32 {
	u := math.Float32bits(x)
	if u&(1<<31) != 0 {
		return ^u
	}
	return u | 1<<31
}

// UnorderFloat32 inverts OrderFloat32.
func UnorderFloat32(u uint32) float32 {
	if u&(1<<31) != 0 {
		return math.Float32frombits(u &^ (1 << 31))
	}
	return math.Float32frombits(^u)
}

// OrderInt32 maps an int32 to a uint32 preserving order.
func OrderInt32(x int32) uint32 { return uint32(x) ^ (1 << 31) }

// UnorderInt32 inverts OrderInt32.
func UnorderInt32(u uint32) int32 { return int32(u ^ (1 << 31)) }
