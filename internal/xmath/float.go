package xmath

import "math"

// maxU128AsFloat is the smallest float64 not representable as a U128.
const maxU128AsFloat = 340282366920938463463374607431768211456.0 // 2^128

// Float64 returns the closest float64 to a (lossy above 2^53).
func (a U128) Float64() float64 {
	return math.Ldexp(float64(a.Hi), 64) + float64(a.Lo)
}

// U128FromFloat64 returns the U128 nearest to f, clamping negatives to 0
// and overflow to MaxU128.  NaN maps to 0.
func U128FromFloat64(f float64) U128 {
	if math.IsNaN(f) || f <= 0 {
		return U128{}
	}
	if f >= maxU128AsFloat {
		return MaxU128
	}
	hi := math.Floor(math.Ldexp(f, -64))
	lo := f - math.Ldexp(hi, 64)
	out := U128{Hi: uint64(hi)}
	switch {
	case lo < 0:
		// Rounding slop: borrow from the high half.
		if out.Hi > 0 {
			out.Hi--
			out.Lo = ^uint64(0)
		}
	case lo >= math.Ldexp(1, 64):
		if out.Hi < ^uint64(0) {
			out.Hi++
		} else {
			out.Lo = ^uint64(0)
		}
	default:
		out.Lo = uint64(lo)
	}
	return out
}

// Lerp returns the point a + t·(b-a) for t in [0,1], computed in floating
// point (used by interpolation-probing splitter searches; bisection should
// use Avg instead, which is exact).
func Lerp(a, b U128, t float64) U128 {
	if b.Less(a) {
		a, b = b, a
	}
	if t <= 0 {
		return a
	}
	if t >= 1 {
		return b
	}
	width := b.Sub(a).Float64()
	return a.Add(U128FromFloat64(width * t))
}
