package rma

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/simnet"
)

// runWorld executes fn on p ranks and fails the test on error.
func runWorld(t *testing.T, p int, model *simnet.CostModel, fn func(c *comm.Comm) error) *comm.World {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestConcurrentDisjointPuts is the subsystem's core contract under the race
// detector: 16 ranks concurrently put into disjoint regions of every peer's
// window, a fence closes the epoch, and every rank observes all 16
// contributions.  The put is a direct cross-goroutine memory write; the
// fence's barrier is the only ordering — any missing happens-before edge is
// a -race failure here.
func TestConcurrentDisjointPuts(t *testing.T) {
	const p = 16
	for _, model := range []*simnet.CostModel{nil, simnet.SuperMUC(4, true), simnet.SuperMUC(4, false)} {
		var mu sync.Mutex
		results := make([][]int, p)
		runWorld(t, p, model, func(c *comm.Comm) error {
			w := New[int](c, p)
			for i := 1; i < p; i++ {
				dst := (c.Rank() + i) % p
				w.Put(dst, c.Rank(), []int{c.Rank() + 1})
			}
			w.Local()[c.Rank()] = c.Rank() + 1
			w.Fence()
			got := make([]int, p)
			copy(got, w.Local())
			mu.Lock()
			results[c.Rank()] = got
			mu.Unlock()
			return nil
		})
		for r, got := range results {
			for i, v := range got {
				if v != i+1 {
					t.Fatalf("rank %d window[%d] = %d, want %d", r, i, v, i+1)
				}
			}
		}
	}
}

// TestPutNotify checks the put+notify round trip: payload visibility after
// consuming the notification, and the notification's origin/region/value
// metadata.
func TestPutNotify(t *testing.T) {
	const p = 8
	runWorld(t, p, simnet.SuperMUC(4, true), func(c *comm.Comm) error {
		w := New[uint64](c, 4)
		next := (c.Rank() + 1) % p
		w.PutNotify(next, 1, []uint64{uint64(100 + c.Rank()), uint64(200 + c.Rank())}, 7)
		n := w.WaitNotify((c.Rank() + p - 1) % p)
		if n.Origin != (c.Rank()+p-1)%p || n.Off != 1 || n.N != 2 || n.Value != 7 {
			t.Errorf("rank %d: notification %+v", c.Rank(), n)
		}
		if got := w.Local()[1]; got != uint64(100+n.Origin) {
			t.Errorf("rank %d: window[1] = %d, want %d", c.Rank(), got, 100+n.Origin)
		}
		w.Fence()
		return nil
	})
}

// TestFlushOrdering pins the one-sided completion semantics on the virtual
// clock: a put returns at local completion (origin clock advances by the
// injection cost only), and Flush waits out the remote completion plus the
// transport's flush cost.
func TestFlushOrdering(t *testing.T) {
	model := simnet.SuperMUC(4, false) // conventional MPI: flush is a round trip
	runWorld(t, 2, model, func(c *comm.Comm) error {
		w := New[byte](c, 1<<20)
		if c.Rank() == 0 {
			data := make([]byte, 1<<20)
			before := c.Clock().Now()
			w.Put(1, 0, data)
			afterPut := c.Clock().Now()
			busy, completion := model.RMAPutCost(0, 1, len(data))
			if afterPut-before != busy {
				t.Errorf("put advanced clock by %v, want injection cost %v", afterPut-before, busy)
			}
			if w.pending[1] != afterPut+completion {
				t.Errorf("pending completion %v, want %v", w.pending[1], afterPut+completion)
			}
			w.Flush(1)
			wantFlushed := afterPut + completion + model.RMAFlushCost(0, 1)
			if c.Clock().Now() != wantFlushed {
				t.Errorf("flush left clock at %v, want %v", c.Clock().Now(), wantFlushed)
			}
			if w.pending[1] != 0 {
				t.Errorf("flush left pending %v", w.pending[1])
			}
		}
		w.Fence()
		if w.Fences() != 1 {
			t.Errorf("fence count %d, want 1", w.Fences())
		}
		return nil
	})
}

// TestFlushFreeOnSharedMemory: under PGAS pricing an intra-node put is a
// memcpy with zero remote-completion lag, so Flush costs nothing.
func TestFlushFreeOnSharedMemory(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	runWorld(t, 2, model, func(c *comm.Comm) error {
		w := New[byte](c, 4096)
		if c.Rank() == 0 {
			w.Put(1, 0, make([]byte, 4096))
			before := c.Clock().Now()
			w.FlushLocal(1)
			w.Flush(1)
			if d := c.Clock().Now() - before; d != 0 {
				t.Errorf("intra-node flush cost %v under PGAS pricing, want 0", d)
			}
		}
		w.Fence()
		return nil
	})
}

// TestAccumulate: concurrent same-region accumulates from every rank are
// atomic (the window lock serializes them), so the fenced result is the full
// sum regardless of arrival order.
func TestAccumulate(t *testing.T) {
	const p = 16
	var mu sync.Mutex
	sums := make([]int64, p)
	runWorld(t, p, nil, func(c *comm.Comm) error {
		w := New[int64](c, 8)
		add := func(a, b int64) int64 { return a + b }
		for dst := 0; dst < p; dst++ {
			w.Accumulate(dst, 0, []int64{int64(c.Rank() + 1), 1}, add)
		}
		w.Fence()
		mu.Lock()
		sums[c.Rank()] = w.Local()[0]*1000 + w.Local()[1]
		mu.Unlock()
		return nil
	})
	want := int64(p*(p+1)/2)*1000 + int64(p)
	for r, got := range sums {
		if got != want {
			t.Fatalf("rank %d accumulated %d, want %d", r, got, want)
		}
	}
}

// TestGet reads back a fenced region, including from windows of differing
// per-rank lengths (MPI_Win_allocate allows asymmetric sizes).
func TestGet(t *testing.T) {
	const p = 4
	runWorld(t, p, simnet.SuperMUC(2, true), func(c *comm.Comm) error {
		w := New[int](c, c.Rank()+1) // rank r exposes r+1 elements
		for i := range w.Local() {
			w.Local()[i] = c.Rank()*10 + i
		}
		w.Fence()
		for src := 0; src < p; src++ {
			if w.LocalLen(src) != src+1 {
				t.Errorf("LocalLen(%d) = %d, want %d", src, w.LocalLen(src), src+1)
			}
			got := w.Get(src, src, 1)
			if got[0] != src*10+src {
				t.Errorf("Get(%d) = %d, want %d", src, got[0], src*10+src)
			}
		}
		w.Fence()
		return nil
	})
}

// TestMultipleWindows: each New reserves fresh protocol tags, so traffic on
// two live windows cannot cross-match.
func TestMultipleWindows(t *testing.T) {
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		a := New[int](c, 4)
		b := New[int](c, 4)
		next := (c.Rank() + 1) % 4
		prev := (c.Rank() + 3) % 4
		a.PutNotify(next, 0, []int{1}, 10)
		b.PutNotify(next, 0, []int{2}, 20)
		if n := b.WaitNotify(prev); n.Value != 20 {
			t.Errorf("window b got notification value %d, want 20", n.Value)
		}
		if n := a.WaitNotify(prev); n.Value != 10 {
			t.Errorf("window a got notification value %d, want 10", n.Value)
		}
		a.Fence()
		b.Fence()
		return nil
	})
}

// TestRegionBoundsPanic: out-of-window accesses panic with a diagnostic
// rather than corrupting a neighbour region.
func TestRegionBoundsPanic(t *testing.T) {
	runWorld(t, 2, nil, func(c *comm.Comm) error {
		w := New[int](c, 4)
		if c.Rank() == 0 {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Error("out-of-bounds put did not panic")
						return
					}
					if !strings.Contains(r.(string), "outside rank") {
						t.Errorf("unhelpful panic message: %v", r)
					}
				}()
				w.Put(1, 3, []int{1, 2})
			}()
		}
		w.Fence()
		return nil
	})
}

// TestVirtualClockNoRendezvous: the target's clock is not charged by an
// incoming put — only consuming the notification synchronizes it.  This is
// the property that makes the one-sided exchange cheaper than a two-sided
// rendezvous.
func TestVirtualClockNoRendezvous(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	runWorld(t, 2, model, func(c *comm.Comm) error {
		w := New[byte](c, 1<<16)
		base := c.Clock().Now()
		if c.Rank() == 0 {
			w.PutNotify(1, 0, make([]byte, 1<<16), 0)
		} else {
			// Simulate local work far past the put's arrival, then consume.
			c.Clock().Advance(time.Millisecond)
			w.WaitNotify(0)
			if got := c.Clock().Now() - base; got != time.Millisecond {
				t.Errorf("late notify consumption cost %v beyond local work, want 0", got-time.Millisecond)
			}
		}
		w.Fence()
		return nil
	})
}
