// Package rma is the one-sided communication subsystem: MPI-3 RMA windows
// with put/get/accumulate, flush and fence synchronization, and DART-style
// put-with-notification — the substrate the paper's DASH implementation
// runs on (§VI-A1).
//
// A Window is a symmetric allocation collective over a communicator: every
// rank contributes a local region and receives direct addressability of all
// peers' regions (the simulator's analogue of MPI_Win_allocate /
// MPI_Win_allocate_shared — rank goroutines share an address space, so a
// put is a real memcpy into the target's backing array).  Synchronization
// and pricing follow the one-sided model:
//
//   - The origin pays the put's injection cost on its virtual clock
//     (simnet.CostModel.RMAPutCost); the target pays nothing until it
//     consumes a notification or passes a fence.  There is no rendezvous.
//   - Under PGAS pricing, intra-node puts are single memcpys into the
//     shared window at full memory bandwidth; under conventional-MPI
//     pricing they are emulated sends and notifications cost a flush round
//     trip (the DART-MPI overhead).
//   - Happens-before for the race detector: a put writes the target's
//     memory directly on the origin goroutine, and the subsequent
//     notification (or fence) travels through the mailbox mutex, so the
//     target's reads after WaitNotify/Fence are ordered after the writes.
//     Accessing a window region that has not been synchronized is a data
//     race, exactly as in MPI.
package rma

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"dhsort/internal/comm"
	"dhsort/internal/simnet"
)

// handle is one rank's published window descriptor: the backing array
// (slice headers share the array across goroutines) and the lock guarding
// atomic accumulates into it.
type handle[T any] struct {
	base []T
	lock *sync.Mutex
}

// notifyMsg is the payload of a put-notification.
type notifyMsg struct {
	Off, N int // window region the notified put covered
	Value  int // caller-chosen notification value (e.g. a round number)
}

// Notification reports one consumed put-notification.
type Notification struct {
	Origin int // rank that issued PutNotify
	Off    int // target-window offset of the notified put
	N      int // element count of the notified put
	Value  int // caller-chosen value passed to PutNotify
}

// Window is one rank's handle on a symmetric RMA window.  Like *comm.Comm
// it is confined to its rank goroutine; the peers' values share the
// published regions but no mutable bookkeeping.
type Window[T any] struct {
	c     *comm.Comm
	peers []handle[T] // indexed by communicator rank
	mine  []T         // peers[rank].base

	handleTag int // protocol tag of the creation handshake
	notifyTag int // protocol tag of the notification queue

	// pending[d] is the latest remote-completion time among unflushed puts
	// to rank d (virtual mode only).
	pending []time.Duration
	fences  int
}

// New collectively allocates a window with localLen elements at every rank
// (lengths may differ per rank, MPI_Win_allocate style).  All ranks of c
// must call it in the same collective order; it returns once every peer's
// region is addressable, which orders any subsequent Put after all
// allocations.
func New[T any](c *comm.Comm, localLen int) *Window[T] {
	if localLen < 0 {
		panic("rma: negative window length")
	}
	w := &Window[T]{
		c:       c,
		peers:   make([]handle[T], c.Size()),
		pending: make([]time.Duration, c.Size()),
	}
	// Window creation keeps its panic-on-misuse contract; tag exhaustion is
	// only reachable after a million windows on one communicator, which is a
	// leak, not a recoverable condition.
	for _, tag := range []*int{&w.handleTag, &w.notifyTag} {
		t, err := c.ReserveProtocolTag()
		if err != nil {
			panic(fmt.Sprintf("rma: %v", err))
		}
		*tag = t
	}
	w.mine = make([]T, localLen)
	own := handle[T]{base: w.mine, lock: &sync.Mutex{}}
	w.peers[c.Rank()] = own

	// Publish the descriptor to every peer and collect theirs.  The
	// exchange is priced as the shared-memory mapping it models: one small
	// control message per peer (α of the link class), no bulk volume.
	model := c.Model()
	for i := 1; i < c.Size(); i++ {
		dst := (c.Rank() + i) % c.Size()
		var arrival time.Duration
		if model != nil {
			arrival = c.Clock().Now() + model.Latency(c.WorldRank(), c.WorldRankOf(dst))
		}
		c.PostReliable(dst, w.handleTag, own, arrival)
	}
	for src := 0; src < c.Size(); src++ {
		if src == c.Rank() {
			continue
		}
		payload, _ := c.RecvRaw(src, w.handleTag)
		w.peers[src] = payload.(handle[T])
	}
	return w
}

// Local returns this rank's window region.  Reading a sub-region that a
// peer has put into is only defined after consuming the matching
// notification or passing a Fence.
func (w *Window[T]) Local() []T { return w.mine }

// LocalLen returns the length of rank's window region without exposing it.
func (w *Window[T]) LocalLen(rank int) int { return len(w.peers[rank].base) }

func (w *Window[T]) checkRegion(rank, off, n int) {
	if rank < 0 || rank >= len(w.peers) {
		panic(fmt.Sprintf("rma: rank %d outside communicator of size %d", rank, len(w.peers)))
	}
	if off < 0 || n < 0 || off+n > len(w.peers[rank].base) {
		panic(fmt.Sprintf("rma: region [%d,%d) outside rank %d's window of %d elements",
			off, off+n, rank, len(w.peers[rank].base)))
	}
}

// elemBytes is the in-memory size of one window element, for volume
// accounting.
func elemBytes[T any]() int {
	var z T
	return int(reflect.TypeOf(&z).Elem().Size())
}

// put copies data into dst's window and returns the link class and priced
// volume (virtual-mode bookkeeping is done by the callers).
func (w *Window[T]) put(dst, off int, data []T, byteScale float64) (simnet.LinkClass, int) {
	w.c.CheckRevoked()
	w.checkRegion(dst, off, len(data))
	if byteScale <= 0 {
		byteScale = 1
	}
	vbytes := int(float64(len(data)*elemBytes[T]()) * byteScale)
	lc := simnet.SelfLink
	if m := w.c.Model(); m != nil {
		lc = m.Topo.Link(w.c.WorldRank(), w.c.WorldRankOf(dst))
		busy, completion := m.RMAPutCost(w.c.WorldRank(), w.c.WorldRankOf(dst), vbytes)
		w.c.Clock().Advance(busy)
		if done := w.c.Clock().Now() + completion; done > w.pending[dst] {
			w.pending[dst] = done
		}
	}
	copy(w.peers[dst].base[off:off+len(data)], data)
	w.c.Stats().RecordPut(lc, vbytes)
	return lc, vbytes
}

// Put copies data into dst's window starting at element off.  It returns
// when the transfer is locally complete (data is reusable); remote
// completion needs Flush, Fence, or a notification.  Concurrent puts into
// overlapping regions are undefined, as in MPI.
func (w *Window[T]) Put(dst, off int, data []T) {
	w.put(dst, off, data, 1)
}

// PutScaled is Put with the payload priced at byteScale times its real size
// (bulk-data pricing for reduced-scale experiments; see Config.VirtualScale
// in the core package).
func (w *Window[T]) PutScaled(dst, off int, data []T, byteScale float64) {
	w.put(dst, off, data, byteScale)
}

// PutNotify is Put followed by a notification that dst can consume with
// WaitNotify once the data is remotely visible: the paper's put+notify
// primitive.  value travels with the notification (round numbers, record
// counts — any small tag the receiver wants back).
func (w *Window[T]) PutNotify(dst, off int, data []T, value int) {
	w.PutNotifyScaled(dst, off, data, value, 1)
}

// PutNotifyScaled is PutNotify with bulk-data byte pricing.
func (w *Window[T]) PutNotifyScaled(dst, off int, data []T, value int, byteScale float64) {
	lc, _ := w.put(dst, off, data, byteScale)
	var arrival time.Duration
	if m := w.c.Model(); m != nil {
		busy, delay := m.RMANotifyCost(w.c.WorldRank(), w.c.WorldRankOf(dst))
		w.c.Clock().Advance(busy)
		// The notification is consumable only after the put it flags has
		// remotely completed.
		arrival = w.c.Clock().Now()
		if w.pending[dst] > arrival {
			arrival = w.pending[dst]
		}
		arrival += delay
	}
	// The notification rides the reliable transport: under drop injection it
	// is sequenced, retransmitted and deduplicated like a two-sided message,
	// so the put-based exchange survives lossy links.
	w.c.PostReliable(dst, w.notifyTag, notifyMsg{Off: off, N: len(data), Value: value}, arrival)
	w.c.Stats().RecordNotify(lc)
}

// WaitNotify blocks until a notification from src (or comm.AnySource)
// arrives on this window's queue and returns it.  Consuming the
// notification synchronizes the local clock with the notified put's remote
// completion and orders subsequent reads of the flagged region after the
// origin's writes.
func (w *Window[T]) WaitNotify(src int) Notification {
	w.c.CheckRevoked()
	payload, origin := w.c.RecvRaw(src, w.notifyTag)
	n := payload.(notifyMsg)
	return Notification{Origin: origin, Off: n.Off, N: n.N, Value: n.Value}
}

// Get reads n elements starting at off out of src's window into a fresh
// slice, blocking the origin for the round trip.  The read region must have
// been synchronized (fence or consumed notification) with any concurrent
// writer, as in MPI.
func (w *Window[T]) Get(src, off, n int) []T {
	w.checkRegion(src, off, n)
	if m := w.c.Model(); m != nil {
		w.c.Clock().Advance(m.RMAGetCost(w.c.WorldRank(), w.c.WorldRankOf(src), n*elemBytes[T]()))
	}
	out := make([]T, n)
	copy(out, w.peers[src].base[off:off+n])
	return out
}

// Accumulate combines data into dst's window elementwise with op
// (MPI_Accumulate): dst.base[off+i] = op(dst.base[off+i], data[i]).
// Concurrent accumulates into the same region from different origins are
// atomic per element group (the target's window lock serializes them), so
// op must be associative and commutative for a deterministic result.
// Accumulate does not synchronize readers: consuming the result still needs
// a fence or notification.
func (w *Window[T]) Accumulate(dst, off int, data []T, op func(a, b T) T) {
	w.checkRegion(dst, off, len(data))
	vbytes := len(data) * elemBytes[T]()
	lc := simnet.SelfLink
	if m := w.c.Model(); m != nil {
		lc = m.Topo.Link(w.c.WorldRank(), w.c.WorldRankOf(dst))
		busy, completion := m.RMAPutCost(w.c.WorldRank(), w.c.WorldRankOf(dst), vbytes)
		w.c.Clock().Advance(busy)
		if done := w.c.Clock().Now() + completion; done > w.pending[dst] {
			w.pending[dst] = done
		}
	}
	h := w.peers[dst]
	h.lock.Lock()
	for i, v := range data {
		h.base[off+i] = op(h.base[off+i], v)
	}
	h.lock.Unlock()
	w.c.Stats().RecordPut(lc, vbytes)
}

// FlushLocal completes all outstanding puts to dst at the origin: the
// source buffers are reusable.  The simulator copies synchronously, so this
// is free — it exists so call sites read like the MPI they model.
func (w *Window[T]) FlushLocal(dst int) {
	w.checkRegion(dst, 0, 0)
}

// Flush blocks until every put this rank issued to dst is remotely
// complete: the origin's clock waits out the pending completion times and
// pays the transport's flush cost (a round trip under conventional MPI,
// free on a shared-memory window).
func (w *Window[T]) Flush(dst int) {
	w.checkRegion(dst, 0, 0)
	m := w.c.Model()
	if m == nil {
		return
	}
	w.c.Clock().Arrive(w.pending[dst])
	w.pending[dst] = 0
	w.c.Clock().Advance(m.RMAFlushCost(w.c.WorldRank(), w.c.WorldRankOf(dst)))
}

// FlushAll is Flush towards every rank.
func (w *Window[T]) FlushAll() {
	for dst := range w.peers {
		w.Flush(dst)
	}
}

// Fence ends an access epoch (MPI_Win_fence): a collective that completes
// every put issued by any rank before it and orders every rank's subsequent
// window accesses after them.  All ranks of the window's communicator must
// call it in the same collective order.
func (w *Window[T]) Fence() {
	w.FlushAll()
	comm.Barrier(w.c)
	w.fences++
}

// Fences returns how many fence epochs have closed (for tests asserting
// epoch discipline).
func (w *Window[T]) Fences() int { return w.fences }
