package workload

import (
	"math"
	"testing"
)

func TestRankDeterministic(t *testing.T) {
	for _, d := range Distributions {
		spec := Spec{Dist: d, Seed: 42, Span: 1e9}
		a, err := spec.Rank(3, 1000)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		b, _ := spec.Rank(3, 1000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", d, i)
			}
		}
	}
}

func TestRankStreamsIndependent(t *testing.T) {
	spec := Spec{Dist: Uniform, Seed: 1, Span: 1e9}
	a, _ := spec.Rank(0, 1000)
	b, _ := spec.Rank(1, 1000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("rank streams overlap: %d identical positions", same)
	}
}

func TestUniformInRange(t *testing.T) {
	spec := Spec{Dist: Uniform, Seed: 7, Span: 1e9}
	keys, _ := spec.Rank(0, 100000)
	var min, max uint64 = math.MaxUint64, 0
	for _, k := range keys {
		if k > 1e9 {
			t.Fatalf("key %d out of span", k)
		}
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	// The sample should span most of the interval.
	if min > 1e7 || max < 9e8 {
		t.Errorf("uniform sample looks wrong: min=%d max=%d", min, max)
	}
}

func TestNormalShape(t *testing.T) {
	spec := Spec{Dist: Normal, Seed: 7, Span: 1e9}
	keys, _ := spec.Rank(0, 100000)
	var sum float64
	inner := 0
	for _, k := range keys {
		if k > 1e9 {
			t.Fatalf("key %d out of span", k)
		}
		sum += float64(k)
		if k > 375e6 && k < 625e6 { // within ±1 sigma of the mean
			inner++
		}
	}
	mean := sum / float64(len(keys))
	if mean < 4.5e8 || mean > 5.5e8 {
		t.Errorf("normal mean = %v", mean)
	}
	frac := float64(inner) / float64(len(keys))
	if frac < 0.6 || frac > 0.75 { // ~68% expected
		t.Errorf("±1σ mass = %v, want ≈0.68", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	spec := Spec{Dist: Zipf, Seed: 9, Span: 1e9}
	keys, _ := spec.Rank(0, 100000)
	small := 0
	for _, k := range keys {
		if k > 1e9 {
			t.Fatalf("key %d out of span", k)
		}
		if k < 1000 {
			small++
		}
	}
	// A Zipf-ish law concentrates mass at small values.
	if float64(small)/float64(len(keys)) < 0.5 {
		t.Errorf("zipf not skewed: only %d/%d small keys", small, len(keys))
	}
}

func TestNearlySortedMostlyAscending(t *testing.T) {
	spec := Spec{Dist: NearlySorted, Seed: 5, Span: 1e9}
	keys, _ := spec.Rank(0, 10000)
	inversions := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			inversions++
		}
	}
	if frac := float64(inversions) / float64(len(keys)); frac > 0.05 {
		t.Errorf("nearly-sorted has %v inversion rate", frac)
	}
}

func TestDuplicateHeavyCardinality(t *testing.T) {
	spec := Spec{Dist: DuplicateHeavy, Seed: 3, Span: 1e9}
	keys, _ := spec.Rank(0, 10000)
	distinct := map[uint64]bool{}
	for _, k := range keys {
		distinct[k] = true
	}
	if len(distinct) > 16 {
		t.Errorf("expected at most 16 distinct keys, got %d", len(distinct))
	}
}

func TestAllEqual(t *testing.T) {
	spec := Spec{Dist: AllEqual, Seed: 3, Span: 1e9}
	keys, _ := spec.Rank(2, 100)
	for _, k := range keys {
		if k != keys[0] {
			t.Fatal("all-equal must emit one value")
		}
	}
}

func TestSparseRanks(t *testing.T) {
	spec := Spec{Dist: Uniform, Seed: 3, Span: 1e9, Sparse: 3}
	for r := 0; r < 9; r++ {
		keys, _ := spec.Rank(r, 50)
		if r%3 == 2 && len(keys) != 0 {
			t.Errorf("rank %d should be empty", r)
		}
		if r%3 != 2 && len(keys) != 50 {
			t.Errorf("rank %d should have 50 keys", r)
		}
	}
}

func TestShiftedTargetsSuccessor(t *testing.T) {
	spec := Spec{Dist: Shifted, Seed: 3, Span: 1e9, Ranks: 4}
	for r := 0; r < 4; r++ {
		keys, err := spec.Rank(r, 1000)
		if err != nil {
			t.Fatal(err)
		}
		width := uint64(1e9)/4 + 1
		lo := uint64((r+1)%4) * width
		for _, k := range keys {
			if k < lo || k > lo+width {
				t.Fatalf("rank %d key %d outside successor bucket [%d,%d]", r, k, lo, lo+width)
			}
		}
	}
}

func TestShiftedWithoutRanksFallsBack(t *testing.T) {
	keys, err := (Spec{Dist: Shifted, Seed: 3, Span: 1e9}).Rank(0, 100)
	if err != nil || len(keys) != 100 {
		t.Fatalf("fallback failed: %v", err)
	}
}

func TestReverseSortedDescending(t *testing.T) {
	spec := Spec{Dist: ReverseSorted, Seed: 1, Span: 1e9}
	keys, _ := spec.Rank(0, 1000)
	for i := 1; i < len(keys); i++ {
		if keys[i] > keys[i-1] {
			t.Fatalf("not descending at %d", i)
		}
	}
	k0, _ := spec.Rank(0, 10)
	k1, _ := spec.Rank(1, 10)
	if k1[0] > k0[len(k0)-1] {
		t.Fatal("rank-major descent violated across ranks")
	}
}

// Golden histogram for the duplicate-flood adversary: the exact per-bucket
// counts for a pinned seed.  Any change to the generator (or the prng
// stream it consumes) shows up here before it silently reshapes the chaos
// corpus and the skew experiment.
func TestDuplicateFloodGolden(t *testing.T) {
	const n, span = 100000, uint64(1e9)
	spec := Spec{Dist: DuplicateFlood, Seed: 42, Span: span, FloodFrac: 0.5}
	keys, err := spec.Rank(0, n)
	if err != nil {
		t.Fatal(err)
	}
	var hist [8]int
	flood := 0
	width := span/8 + 1
	for _, k := range keys {
		if k > span {
			t.Fatalf("key %d out of span", k)
		}
		if k == FloodValue(span) {
			flood++
		}
		hist[k/width]++
	}
	// The flood mass must track FloodFrac (binomial, n=1e5, p=0.5).
	if flood < 49000 || flood > 51000 {
		t.Errorf("flood mass %d, want ≈50000", flood)
	}
	golden := [8]int{6295, 6197, 56312, 6187, 6279, 6209, 6280, 6241}
	if hist != golden {
		t.Errorf("histogram drifted:\n got %v\nwant %v", hist, golden)
	}
}

// Golden outlier counts for the sorted-with-outliers adversary: displaced
// positions (ramp value replaced by an extreme-tail outlier) and their
// split across the bottom/top bands, pinned for a fixed seed.
func TestSortedOutliersGolden(t *testing.T) {
	const n = 100000
	const span = uint64(1e9)
	spec := Spec{Dist: SortedOutliers, Seed: 42, Span: span}
	keys, err := spec.Rank(0, n)
	if err != nil {
		t.Fatal(err)
	}
	tail := span / 1024
	displaced, low, high := 0, 0, 0
	for i, k := range keys {
		if k > span {
			t.Fatalf("key %d out of span", k)
		}
		want := uint64(i) // rank 0: the ramp is the global index
		if want > span-tail-1 {
			want = span - tail - 1
		}
		if k == want {
			continue
		}
		displaced++
		switch {
		case k <= tail:
			low++
		case k >= span-tail:
			high++
		default:
			t.Fatalf("displaced key %d at %d is outside both outlier bands", k, i)
		}
	}
	// Tail mass must track the default OutlierFrac of 5%, split evenly.
	if displaced < 4500 || displaced > 5500 {
		t.Errorf("displaced %d, want ≈5000", displaced)
	}
	if displaced != 5056 || low != 2563 || high != 2493 {
		t.Errorf("outlier counts drifted: displaced=%d low=%d high=%d, want 5056/2563/2493",
			displaced, low, high)
	}
}

func TestUnknownDistribution(t *testing.T) {
	if _, err := (Spec{Dist: "bogus"}).Rank(0, 10); err == nil {
		t.Fatal("expected error")
	}
}

func TestNegativeSize(t *testing.T) {
	if _, err := (Spec{Dist: Uniform}).Rank(0, -1); err == nil {
		t.Fatal("expected error")
	}
}

func TestEmptyDistributionDefaultsToUniform(t *testing.T) {
	keys, err := (Spec{Seed: 1, Span: 100}).Rank(0, 10)
	if err != nil || len(keys) != 10 {
		t.Fatalf("default distribution failed: %v", err)
	}
}

func TestFullSpan(t *testing.T) {
	keys, err := (Spec{Dist: Uniform, Seed: 1}).Rank(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	for _, k := range keys {
		if k > math.MaxUint64/2 {
			big++
		}
	}
	if big < 400 || big > 600 {
		t.Errorf("full-span draw skewed: %d/1000 in upper half", big)
	}
}

func TestFloats(t *testing.T) {
	f := Floats([]uint64{0, math.MaxUint64 / 2, math.MaxUint64})
	if f[0] != -1e6 {
		t.Errorf("f[0] = %v", f[0])
	}
	if math.Abs(f[1]) > 1 {
		t.Errorf("f[1] = %v", f[1])
	}
	if math.Abs(f[2]-1e6) > 1 {
		t.Errorf("f[2] = %v", f[2])
	}
}

func TestLocalSize(t *testing.T) {
	total := 0
	for r := 0; r < 7; r++ {
		total += LocalSize(100, 7, r)
	}
	if total != 100 {
		t.Fatalf("local sizes sum to %d", total)
	}
	if LocalSize(100, 7, 0) != 15 || LocalSize(100, 7, 6) != 14 {
		t.Fatal("front-loading wrong")
	}
}
