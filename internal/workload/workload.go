// Package workload generates the benchmark inputs of the paper's
// evaluation: uniformly distributed 64-bit unsigned integers in [0, 1e9]
// (§VI-B), normally distributed doubles (§VI-D), plus the adversarial
// distributions the paper claims robustness against — skewed, nearly
// sorted, duplicate-heavy and sparse partitionings (§V-A, §VII).
//
// Generation is deterministic: rank r of a run seeded with s draws from an
// independent stream derived from (s, r), so any experiment reproduces
// bit-identically at any process count.
package workload

import (
	"fmt"
	"math"

	"dhsort/internal/prng"
)

// Distribution names a key distribution.
type Distribution string

// The distributions used across the experiments.
const (
	// Uniform draws uint64 keys uniformly from [0, Span] (the paper's
	// strong/weak-scaling workload with Span = 1e9).
	Uniform Distribution = "uniform"
	// Normal draws keys from a normal distribution scaled into the uint64
	// range (mean Span/2, sigma Span/8, clamped) — the distribution on
	// which the Charm++ implementation failed to terminate (§VI-B).
	Normal Distribution = "normal"
	// Zipf draws heavily skewed keys (many small values, a long tail).
	Zipf Distribution = "zipf"
	// NearlySorted emits an almost-ascending global sequence with 1% of
	// keys displaced — "nearly sorted data distributions ... not uncommon
	// in real world problems" (§II).
	NearlySorted Distribution = "nearly-sorted"
	// DuplicateHeavy draws from only 16 distinct values, stressing the
	// unique-key transformation of §V-A.
	DuplicateHeavy Distribution = "duplicate-heavy"
	// AllEqual emits a single repeated key, the extreme duplicate case.
	AllEqual Distribution = "all-equal"
	// Shifted concentrates rank r's keys in the value range owned by rank
	// (r+1) mod P after sorting — the exchange worst case: every element
	// must cross the network.
	Shifted Distribution = "shifted"
	// ReverseSorted emits a globally descending sequence (rank-major),
	// the adversarial input for adaptive algorithms.
	ReverseSorted Distribution = "reverse-sorted"
	// DuplicateFlood is the PGX.D heavy-hitter adversary: a FloodFrac
	// fraction of all keys is one single repeated value (the flood), the
	// rest uniform.  Value-based splitters land the whole flood on one
	// rank; tie-broken splitters split it across ranks.
	DuplicateFlood Distribution = "duplicate-flood"
	// SortedOutliers emits an almost-perfectly ascending global ramp with
	// an OutlierFrac fraction of keys replaced by extreme-tail outliers
	// (half at the bottom, half at the top of the key range) — the
	// sorted-with-outliers adversary for sampled splitter guesses.
	SortedOutliers Distribution = "sorted-with-outliers"
)

// Distributions lists every supported distribution.
var Distributions = []Distribution{Uniform, Normal, Zipf, NearlySorted, DuplicateHeavy, AllEqual, Shifted, ReverseSorted, DuplicateFlood, SortedOutliers}

// Spec describes one rank's share of a generated workload.
type Spec struct {
	// Dist is the key distribution.
	Dist Distribution
	// Seed is the run seed; each rank derives an independent stream.
	Seed uint64
	// Span bounds the key range for Uniform/Normal/NearlySorted
	// (0 means the full uint64 range).  The paper uses 1e9.
	Span uint64
	// Sparse, if positive, empties every Sparse-th rank (sparse input
	// partitions, §VII: "a fraction of all processors do not contribute
	// local elements").
	Sparse int
	// Ranks is the total rank count, needed by the Shifted distribution
	// to aim each rank's keys at its successor's range (0 disables the
	// shift and falls back to Uniform).
	Ranks int
	// FloodFrac is the DuplicateFlood heavy-hitter mass: the probability
	// that a key is the single flooded value (0 means 0.5).  Ignored by
	// the other distributions.
	FloodFrac float64
	// OutlierFrac is the SortedOutliers tail mass: the probability that a
	// position of the ascending ramp is replaced by an extreme-tail
	// outlier (0 means 0.05).  Ignored by the other distributions.
	OutlierFrac float64
}

// floodFrac returns the effective DuplicateFlood heavy-hitter mass.
func (s Spec) floodFrac() float64 {
	if s.FloodFrac <= 0 {
		return 0.5
	}
	if s.FloodFrac > 1 {
		return 1
	}
	return s.FloodFrac
}

// outlierFrac returns the effective SortedOutliers tail mass.
func (s Spec) outlierFrac() float64 {
	if s.OutlierFrac <= 0 {
		return 0.05
	}
	if s.OutlierFrac > 1 {
		return 1
	}
	return s.OutlierFrac
}

// FloodValue returns the key value DuplicateFlood floods for the given span
// (exported so oracles can count the flood run in generated data).
func FloodValue(span uint64) uint64 {
	if span == 0 {
		span = math.MaxUint64
	}
	return span / 3
}

// Rank generates rank r's n keys under the spec.  The same (spec, r, n)
// always yields the same keys.
func (s Spec) Rank(r, n int) ([]uint64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative local size %d", n)
	}
	if s.Sparse > 0 && r%s.Sparse == s.Sparse-1 {
		return []uint64{}, nil
	}
	// Per-rank stream: hash (seed, rank) through splitmix, then drive the
	// paper's generator (MT19937-64) from it.
	seeder := prng.NewSplitMix64(s.Seed ^ (0x9e3779b97f4a7c15 * uint64(r+1)))
	src := prng.NewMT19937_64(seeder.Uint64())
	span := s.Span
	if span == 0 {
		span = math.MaxUint64
	}
	out := make([]uint64, n)
	switch s.Dist {
	case Uniform, "":
		for i := range out {
			out[i] = boundedDraw(src, span)
		}
	case Normal:
		norm := &prng.Normal{Src: src}
		mean := float64(span) / 2
		sigma := float64(span) / 8
		for i := range out {
			v := mean + sigma*norm.Next()
			switch {
			case v < 0:
				out[i] = 0
			case v > float64(span):
				out[i] = span
			default:
				out[i] = uint64(v)
			}
		}
	case Zipf:
		for i := range out {
			out[i] = zipfDraw(src, span)
		}
	case NearlySorted:
		// A globally ascending rank-major ramp (rank r owns [r·n, r·n+n))
		// with 1% random keys displaced anywhere.
		lo := uint64(r) * uint64(n)
		for i := range out {
			if prng.Uint64n(src, 100) == 0 {
				out[i] = boundedDraw(src, span)
			} else {
				v := lo + uint64(i)
				if v > span {
					v = span
				}
				out[i] = v
			}
		}
	case DuplicateHeavy:
		for i := range out {
			out[i] = (span / 16) * prng.Uint64n(src, 16)
		}
	case AllEqual:
		for i := range out {
			out[i] = span / 2
		}
	case Shifted:
		if s.Ranks <= 1 {
			for i := range out {
				out[i] = boundedDraw(src, span)
			}
			break
		}
		// Keys uniform within the bucket of the successor rank.
		width := span/uint64(s.Ranks) + 1
		lo := uint64((r+1)%s.Ranks) * width
		for i := range out {
			v := lo + prng.Uint64n(src, width)
			if v > span {
				v = span
			}
			out[i] = v
		}
	case ReverseSorted:
		// Globally descending rank-major ramp.
		base := span - uint64(r)*(span/1e6)
		for i := range out {
			v := base - uint64(i)
			if v > span { // underflow wrap
				v = 0
			}
			out[i] = v
		}
	case DuplicateFlood:
		// Heavy-hitter duplicate flood: with probability floodFrac the key
		// is the single flooded value, otherwise uniform.  The flood value
		// sits strictly inside the span so splitters on either side exist.
		frac := s.floodFrac()
		flood := FloodValue(span)
		// Adjudicate in integer space to keep the draw exact and cheap.
		cut := uint64(frac * float64(1<<32))
		for i := range out {
			if prng.Uint64n(src, 1<<32) < cut {
				out[i] = flood
			} else {
				out[i] = boundedDraw(src, span)
			}
		}
	case SortedOutliers:
		// Ascending rank-major ramp with an outlierFrac tail mass of
		// extreme outliers: half at the very bottom, half at the very top
		// of the range — sampled splitter guesses chase the tails while
		// the body stays sorted.
		frac := s.outlierFrac()
		cut := uint64(frac * float64(1<<32))
		lo := uint64(r) * uint64(n)
		tail := span / 1024 // the outlier bands: [0, tail] and [span-tail, span]
		for i := range out {
			if prng.Uint64n(src, 1<<32) < cut {
				if prng.Uint64n(src, 2) == 0 {
					out[i] = prng.Uint64n(src, tail+1)
				} else {
					out[i] = span - prng.Uint64n(src, tail+1)
				}
				continue
			}
			v := lo + uint64(i)
			if v > span-tail-1 {
				v = span - tail - 1 // keep the body out of the top outlier band
			}
			out[i] = v
		}
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", s.Dist)
	}
	return out, nil
}

// boundedDraw returns a uniform value in [0, span] (inclusive, matching the
// paper's [0, 1e9] interval).
func boundedDraw(src prng.Source, span uint64) uint64 {
	if span == math.MaxUint64 {
		return src.Uint64()
	}
	return prng.Uint64n(src, span+1)
}

// zipfDraw approximates a Zipf(s≈1.2) draw over [0, span] via inverse
// transform on a truncated power law.
func zipfDraw(src prng.Source, span uint64) uint64 {
	u := prng.Float64(src)
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	// x ~ u^(-1/(s-1)) - 1, heavy-tailed; fold into the span.
	x := math.Pow(u, -5) - 1 // s = 1.2 -> exponent -1/(s-1) = -5
	v := uint64(x)
	if float64(span) < x {
		v = span
	}
	return v
}

// Floats converts uint64 keys into floats in [-1e6, 1e6], the shared-memory
// benchmark's value domain (§VI-D).
func Floats(keys []uint64) []float64 {
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = (float64(k)/float64(math.MaxUint64) - 0.5) * 2e6
	}
	return out
}

// LocalSize returns rank's share of totalN elements over p ranks,
// front-loaded like the paper's partitioning: every rank gets N/p and the
// first N%p ranks one extra.
func LocalSize(totalN, p, rank int) int {
	base := totalN / p
	if rank < totalN%p {
		return base + 1
	}
	return base
}
