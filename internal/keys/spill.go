package keys

// LosslessOps is an optional capability on an Ops instance: keys whose
// ToBits embedding is exact — FromBits(ToBits(k)) reconstructs k itself, not
// merely an order-equivalent surrogate — can round-trip through the 128-bit
// run records of the out-of-core store.  The external-memory sort spills key
// images to disk runs and decodes them back through FromBits, so it is only
// available for lossless key types; keys with satellite data outside the
// embedding (pairs) or unbounded width (strings) stay resident.
type LosslessOps interface {
	// LosslessBits reports whether the embedding reconstructs keys exactly.
	LosslessBits() bool
}

// Lossless reports whether ops' keys survive a ToBits/FromBits round trip
// exactly, making them eligible for the spill path.  Wrappers over lossy
// bases advertise the interface but decline here, mirroring Radix dispatch.
func Lossless[K any](ops Ops[K]) bool {
	c, ok := any(ops).(LosslessOps)
	return ok && c.LosslessBits()
}

// All scalar embeddings are bijections onto their image: the key occupies
// the high bits exactly.
func (Uint64) LosslessBits() bool  { return true }
func (Int64) LosslessBits() bool   { return true }
func (Float64) LosslessBits() bool { return true }
func (Uint32) LosslessBits() bool  { return true }
func (Int32) LosslessBits() bool   { return true }
func (Float32) LosslessBits() bool { return true }

// LosslessBits delegates to the base key: the (rank, index) suffix is
// preserved exactly in the low 64 bits, so a triple round-trips whenever its
// key does.
func (t TripleOps[K]) LosslessBits() bool { return Lossless(t.Base) }
