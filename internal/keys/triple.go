package keys

import "dhsort/internal/xmath"

// Triple makes duplicate keys globally unique, the transformation of §V-A:
// each key x becomes (x, processor id, local index).  The suffix occupies the
// low 64 bits of the embedding, so bisection still converges in at most 128
// iterations even when every key is equal.
type Triple[K any] struct {
	Key   K
	Rank  uint32 // originating processor
	Index uint32 // position in the originating local sequence
}

// TripleOps lifts a scalar Ops to Triple keys.  The base Ops must embed into
// the high 64 bits only (all scalar instances in this package do).
type TripleOps[K any] struct {
	Base Ops[K]
}

// NewTripleOps returns Ops for Triple[K] on top of base.
func NewTripleOps[K any](base Ops[K]) TripleOps[K] { return TripleOps[K]{Base: base} }

func (t TripleOps[K]) suffix(k Triple[K]) uint64 {
	return uint64(k.Rank)<<32 | uint64(k.Index)
}

// Less orders by key, then rank, then index.
func (t TripleOps[K]) Less(a, b Triple[K]) bool {
	if t.Base.Less(a.Key, b.Key) {
		return true
	}
	if t.Base.Less(b.Key, a.Key) {
		return false
	}
	return t.suffix(a) < t.suffix(b)
}

// ToBits concatenates the key embedding (high) and the uniqueness suffix (low).
func (t TripleOps[K]) ToBits(k Triple[K]) xmath.U128 {
	return xmath.U128FromParts(t.Base.ToBits(k.Key).Hi, t.suffix(k))
}

// FromBits reconstructs a triple; the key part is mapped through the base
// inverse and the suffix is preserved exactly.
func (t TripleOps[K]) FromBits(b xmath.U128) Triple[K] {
	return Triple[K]{
		Key:   t.Base.FromBits(xmath.U128FromParts(b.Hi, 0)),
		Rank:  uint32(b.Lo >> 32),
		Index: uint32(b.Lo),
	}
}

// Bytes adds the 8-byte suffix the paper notes must be communicated during
// histogramming when the transformation is applied.
func (t TripleOps[K]) Bytes() int { return t.Base.Bytes() + 8 }

// MakeUnique wraps the elements of local into triples tagged with this
// rank and their local index.
func MakeUnique[K any](local []K, rank int) []Triple[K] {
	out := make([]Triple[K], len(local))
	for i, k := range local {
		out[i] = Triple[K]{Key: k, Rank: uint32(rank), Index: uint32(i)}
	}
	return out
}

// StripUnique projects triples back to their keys, reusing no storage.
func StripUnique[K any](in []Triple[K]) []K {
	out := make([]K, len(in))
	for i, t := range in {
		out[i] = t.Key
	}
	return out
}
