// Package keys defines the key abstraction used by the distributed sorting
// algorithms.
//
// The histogram sort needs two capabilities from a key type: an ordering
// (Less) and a way to bisect a key interval (the splitter refinement
// S_i <- (S_il + S_iu)/2 of Algorithm 3 in the paper).  Bisection is
// performed in an order-preserving fixed-width integer embedding of the key
// space (ToBits/FromBits), which bounds the number of histogramming
// iterations by the key width — the behaviour reported in §V-A: ~60-64
// iterations for 64-bit keys, ~25-35 for 32-bit floats, independent of the
// number of processors.
package keys

import "dhsort/internal/xmath"

// Ops supplies the operations the sorting algorithms need for key type K.
// Implementations must be stateless (safe for concurrent use by all ranks).
type Ops[K any] interface {
	// Less reports whether a orders strictly before b.
	Less(a, b K) bool
	// ToBits embeds a key into the unsigned 128-bit space such that
	// Less(a, b) == ToBits(a) < ToBits(b).
	ToBits(K) xmath.U128
	// FromBits maps a point of the embedded space back to a key.  The
	// result need not be an input element (splitters are arbitrary pivot
	// values), but the mapping must be monotone and must satisfy
	// ToBits(FromBits(ToBits(k))) == ToBits(k) for all keys k.
	FromBits(xmath.U128) K
	// Bytes is the wire size of one key, used for communication-volume
	// accounting in the network cost model.
	Bytes() int
}

// Scalar keys embed into the high 64 bits of the 128-bit space so that a
// uniqueness suffix (see Triple) can occupy the low 64 bits.

// Uint64 is the Ops instance for uint64 keys.
type Uint64 struct{}

func (Uint64) Less(a, b uint64) bool        { return a < b }
func (Uint64) ToBits(k uint64) xmath.U128   { return xmath.U128FromParts(k, 0) }
func (Uint64) FromBits(b xmath.U128) uint64 { return b.Hi }
func (Uint64) Bytes() int                   { return 8 }

// Int64 is the Ops instance for int64 keys.
type Int64 struct{}

func (Int64) Less(a, b int64) bool        { return a < b }
func (Int64) ToBits(k int64) xmath.U128   { return xmath.U128FromParts(xmath.OrderInt64(k), 0) }
func (Int64) FromBits(b xmath.U128) int64 { return xmath.UnorderInt64(b.Hi) }
func (Int64) Bytes() int                  { return 8 }

// Float64 is the Ops instance for float64 keys (IEEE-754 total order; NaNs
// sort above +Inf and -0 below +0).
type Float64 struct{}

func (Float64) Less(a, b float64) bool {
	return xmath.OrderFloat64(a) < xmath.OrderFloat64(b)
}
func (Float64) ToBits(k float64) xmath.U128 {
	return xmath.U128FromParts(xmath.OrderFloat64(k), 0)
}
func (Float64) FromBits(b xmath.U128) float64 { return xmath.UnorderFloat64(b.Hi) }
func (Float64) Bytes() int                    { return 8 }

// Uint32 is the Ops instance for uint32 keys.  The 32-bit embedding gives
// the reduced iteration bound of §V-A for narrow keys.
type Uint32 struct{}

func (Uint32) Less(a, b uint32) bool { return a < b }
func (Uint32) ToBits(k uint32) xmath.U128 {
	return xmath.U128FromParts(uint64(k)<<32, 0)
}
func (Uint32) FromBits(b xmath.U128) uint32 { return uint32(b.Hi >> 32) }
func (Uint32) Bytes() int                   { return 4 }

// Int32 is the Ops instance for int32 keys.
type Int32 struct{}

func (Int32) Less(a, b int32) bool { return a < b }
func (Int32) ToBits(k int32) xmath.U128 {
	return xmath.U128FromParts(uint64(xmath.OrderInt32(k))<<32, 0)
}
func (Int32) FromBits(b xmath.U128) int32 { return xmath.UnorderInt32(uint32(b.Hi >> 32)) }
func (Int32) Bytes() int                  { return 4 }

// Float32 is the Ops instance for float32 keys.
type Float32 struct{}

func (Float32) Less(a, b float32) bool {
	return xmath.OrderFloat32(a) < xmath.OrderFloat32(b)
}
func (Float32) ToBits(k float32) xmath.U128 {
	return xmath.U128FromParts(uint64(xmath.OrderFloat32(k))<<32, 0)
}
func (Float32) FromBits(b xmath.U128) float32 { return xmath.UnorderFloat32(uint32(b.Hi >> 32)) }
func (Float32) Bytes() int                    { return 4 }
