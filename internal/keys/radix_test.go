package keys

import (
	"math"
	"testing"
	"testing/quick"
)

// TestRadixCapability pins the dispatch table: every fixed-width scalar
// advertises a radix image with the right width, variable-width keys do
// not, and the wrappers inherit exactly their base's capability.
func TestRadixCapability(t *testing.T) {
	if r, ok := Radix[uint64](Uint64{}); !ok {
		t.Fatal("Uint64 must be radix-capable")
	} else if _, w := r.RadixKey(0); w != 8 {
		t.Fatalf("Uint64 width = %d, want 8", w)
	}
	if r, ok := Radix[int64](Int64{}); !ok {
		t.Fatal("Int64 must be radix-capable")
	} else if _, w := r.RadixKey(0); w != 8 {
		t.Fatalf("Int64 width = %d, want 8", w)
	}
	if r, ok := Radix[float64](Float64{}); !ok {
		t.Fatal("Float64 must be radix-capable")
	} else if _, w := r.RadixKey(0); w != 8 {
		t.Fatalf("Float64 width = %d, want 8", w)
	}
	if r, ok := Radix[uint32](Uint32{}); !ok {
		t.Fatal("Uint32 must be radix-capable")
	} else if _, w := r.RadixKey(0); w != 4 {
		t.Fatalf("Uint32 width = %d, want 4", w)
	}
	if r, ok := Radix[int32](Int32{}); !ok {
		t.Fatal("Int32 must be radix-capable")
	} else if _, w := r.RadixKey(0); w != 4 {
		t.Fatalf("Int32 width = %d, want 4", w)
	}
	if r, ok := Radix[float32](Float32{}); !ok {
		t.Fatal("Float32 must be radix-capable")
	} else if _, w := r.RadixKey(0); w != 4 {
		t.Fatalf("Float32 width = %d, want 4", w)
	}

	if _, ok := Radix[string](String{}); ok {
		t.Fatal("String must not be radix-capable (variable width)")
	}
}

// TestRadixWrapperCapability: Pair and Triple ops are radix-capable iff the
// base key is — the bare type assertion would say yes unconditionally, which
// is exactly the bug the Radix dispatcher exists to prevent.
func TestRadixWrapperCapability(t *testing.T) {
	if _, ok := Radix[Pair[uint64, string]](NewPairOps[uint64, string](Uint64{})); !ok {
		t.Fatal("Pair over Uint64 must be radix-capable")
	}
	if _, ok := Radix[Pair[string, int]](NewPairOps[string, int](String{})); ok {
		t.Fatal("Pair over String must not be radix-capable")
	}
	tr, ok := Radix[Triple[uint64]](NewTripleOps[uint64](Uint64{}))
	if !ok {
		t.Fatal("Triple over Uint64 must be radix-capable")
	}
	if _, w := tr.RadixKey(Triple[uint64]{}); w != 8 {
		t.Fatalf("Triple radix width = %d, want base's 8", w)
	}
	if _, ok := Radix[Triple[string]](NewTripleOps[string](String{})); ok {
		t.Fatal("Triple over String must not be radix-capable")
	}

	// The suffix stage must exist for triples and carry the full 8-byte
	// (rank, index) discriminator.
	sfx, ok := any(NewTripleOps[uint64](Uint64{})).(RadixSuffixOps[Triple[uint64]])
	if !ok {
		t.Fatal("TripleOps must advertise a radix suffix")
	}
	if _, w := sfx.RadixSuffix(Triple[uint64]{}); w != 8 {
		t.Fatalf("Triple suffix width = %d, want 8", w)
	}
}

// TestRadixKeyOrderIsomorphism: RadixKey must be a strict order isomorphism
// — a < b under Less exactly when image(a) < image(b) — including the
// floating-point edge cases (NaN, ±0, ±Inf) under the total order the Ops
// define.
func TestRadixKeyOrderIsomorphism(t *testing.T) {
	checkI64 := func(a, b int64) bool {
		ia, _ := Int64{}.RadixKey(a)
		ib, _ := Int64{}.RadixKey(b)
		return Int64{}.Less(a, b) == (ia < ib)
	}
	if err := quick.Check(checkI64, nil); err != nil {
		t.Error(err)
	}
	checkF64 := func(a, b float64) bool {
		ia, _ := Float64{}.RadixKey(a)
		ib, _ := Float64{}.RadixKey(b)
		return Float64{}.Less(a, b) == (ia < ib)
	}
	if err := quick.Check(checkF64, nil); err != nil {
		t.Error(err)
	}

	edge := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0.0, math.Copysign(0, -1),
		1.5, -1.5, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, a := range edge {
		for _, b := range edge {
			ia, _ := Float64{}.RadixKey(a)
			ib, _ := Float64{}.RadixKey(b)
			if (Float64{}).Less(a, b) != (ia < ib) {
				t.Errorf("Float64 image order disagrees with Less for (%v, %v)", a, b)
			}
		}
	}

	// Narrow keys must land their image in the low `width` bytes so the
	// radix kernel can skip the constant high passes.
	iv, w := Uint32{}.RadixKey(math.MaxUint32)
	if w != 4 || iv>>32 != 0 {
		t.Errorf("Uint32 image %#x exceeds its %d-byte width", iv, w)
	}
}

// TestTripleRadixDecomposition: sorting by (suffix image, then key image)
// with stable passes must reproduce the TripleOps comparison — the
// invariant the two-stage LSD kernel in core relies on.
func TestTripleRadixDecomposition(t *testing.T) {
	ops := NewTripleOps[uint64](Uint64{})
	mk := func(k uint64, rank, idx int) Triple[uint64] {
		return Triple[uint64]{Key: k, Rank: uint32(rank), Index: uint32(idx)}
	}
	vals := []Triple[uint64]{
		mk(5, 0, 0), mk(5, 0, 1), mk(5, 1, 0), mk(3, 2, 7), mk(9, 0, 0),
	}
	for _, a := range vals {
		for _, b := range vals {
			ka, _ := ops.RadixKey(a)
			kb, _ := ops.RadixKey(b)
			sa, _ := ops.RadixSuffix(a)
			sb, _ := ops.RadixSuffix(b)
			want := ops.Less(a, b)
			got := ka < kb || (ka == kb && sa < sb)
			if want != got {
				t.Errorf("(key, suffix) image order disagrees with TripleOps.Less for %+v vs %+v", a, b)
			}
		}
	}
}
