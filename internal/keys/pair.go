package keys

import (
	"reflect"

	"dhsort/internal/xmath"
)

// Pair carries a sortable key together with opaque satellite data, so
// records can be sorted by key (the std::sort-with-struct use case the
// paper's STL-like interface targets).
type Pair[K, V any] struct {
	Key K
	Val V
}

// PairOps lifts a key Ops to Pair records.  Ordering and splitter bisection
// use only the key; splitter values materialize with a zero Val (they are
// pivot values, never data).  Records with equal keys are split across
// ranks by the exchange refinement exactly like duplicate plain keys.
type PairOps[K, V any] struct {
	Base Ops[K]
}

// NewPairOps returns Ops for Pair[K, V] on top of base.
func NewPairOps[K, V any](base Ops[K]) PairOps[K, V] { return PairOps[K, V]{Base: base} }

// Less orders by key only.
func (p PairOps[K, V]) Less(a, b Pair[K, V]) bool { return p.Base.Less(a.Key, b.Key) }

// ToBits embeds the key only; satellite data does not affect splitters.
func (p PairOps[K, V]) ToBits(k Pair[K, V]) xmath.U128 { return p.Base.ToBits(k.Key) }

// FromBits materializes a pivot record with zero satellite data.
func (p PairOps[K, V]) FromBits(b xmath.U128) Pair[K, V] {
	return Pair[K, V]{Key: p.Base.FromBits(b)}
}

// Bytes is the wire size of one record: key plus satellite payload.
func (p PairOps[K, V]) Bytes() int {
	var v V
	return p.Base.Bytes() + int(reflect.TypeOf(&v).Elem().Size())
}
