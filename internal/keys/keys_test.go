package keys

import (
	"math"
	"testing"
	"testing/quick"

	"dhsort/internal/xmath"
)

// checkOps verifies the Ops contract on a set of sample keys: order
// preservation of the embedding, idempotent roundtrip, and midpoint
// containment.
func checkOps[K any](t *testing.T, ops Ops[K], samples []K) {
	t.Helper()
	for _, a := range samples {
		ba := ops.ToBits(a)
		if got := ops.ToBits(ops.FromBits(ba)); got != ba {
			t.Errorf("roundtrip not idempotent for %v: %v -> %v", a, ba, got)
		}
		for _, b := range samples {
			bb := ops.ToBits(b)
			if ops.Less(a, b) != ba.Less(bb) {
				t.Errorf("order not preserved: Less(%v,%v)=%v but bits %v vs %v", a, b, ops.Less(a, b), ba, bb)
			}
			if ops.Less(a, b) {
				mid := ba.Avg(bb)
				k := ops.FromBits(mid)
				if ops.Less(k, a) || ops.Less(b, k) {
					t.Errorf("midpoint %v of (%v,%v) escapes interval", k, a, b)
				}
			}
		}
	}
}

func TestUint64Ops(t *testing.T) {
	checkOps[uint64](t, Uint64{}, []uint64{0, 1, 2, 1 << 32, 1<<63 - 1, 1 << 63, ^uint64(0)})
}

func TestInt64Ops(t *testing.T) {
	checkOps[int64](t, Int64{}, []int64{math.MinInt64, -5, -1, 0, 1, 7, math.MaxInt64})
}

func TestFloat64Ops(t *testing.T) {
	checkOps[float64](t, Float64{}, []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)})
}

func TestUint32Ops(t *testing.T) {
	checkOps[uint32](t, Uint32{}, []uint32{0, 1, 1 << 16, 1<<31 - 1, 1 << 31, ^uint32(0)})
}

func TestInt32Ops(t *testing.T) {
	checkOps[int32](t, Int32{}, []int32{math.MinInt32, -3, 0, 3, math.MaxInt32})
}

func TestFloat32Ops(t *testing.T) {
	checkOps[float32](t, Float32{}, []float32{float32(math.Inf(-1)), -1e30, -1, 0, 1, 1e30, float32(math.Inf(1))})
}

func TestOpsOrderQuick(t *testing.T) {
	u := Uint64{}
	f := func(a, b uint64) bool {
		return (a < b) == u.ToBits(a).Less(u.ToBits(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	fo := Float64{}
	g := func(ab, bb uint64) bool {
		a, b := math.Float64frombits(ab), math.Float64frombits(bb)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a == b {
			return true
		}
		return (a < b) == fo.ToBits(a).Less(fo.ToBits(b))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTripleOpsOrder(t *testing.T) {
	ops := NewTripleOps[uint64](Uint64{})
	samples := []Triple[uint64]{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {5, 0, 0}, {5, 0, 2}, {5, 3, 1},
		{^uint64(0), 0, 0}, {^uint64(0), ^uint32(0), ^uint32(0)},
	}
	checkOps[Triple[uint64]](t, ops, samples)
}

func TestTripleOpsEqualKeysDistinct(t *testing.T) {
	ops := NewTripleOps[uint64](Uint64{})
	a := Triple[uint64]{Key: 42, Rank: 1, Index: 9}
	b := Triple[uint64]{Key: 42, Rank: 2, Index: 0}
	if !ops.Less(a, b) || ops.Less(b, a) {
		t.Fatal("equal keys must be totally ordered by (rank,index)")
	}
	if ops.ToBits(a) == ops.ToBits(b) {
		t.Fatal("distinct triples must have distinct embeddings")
	}
}

func TestTripleBisectionTerminates(t *testing.T) {
	// With every key equal, repeated bisection of the triple space must
	// still strictly narrow: at most 128 iterations to collapse.
	ops := NewTripleOps[uint64](Uint64{})
	lo := ops.ToBits(Triple[uint64]{Key: 7, Rank: 0, Index: 0})
	hi := ops.ToBits(Triple[uint64]{Key: 7, Rank: 1000, Index: 55})
	n := 0
	for lo.Less(hi) {
		mid := lo.Avg(hi)
		if mid == lo {
			break
		}
		hi = mid
		n++
		if n > 128 {
			t.Fatal("bisection did not terminate in 128 steps")
		}
	}
}

func TestMakeStripUnique(t *testing.T) {
	in := []uint64{9, 9, 3, 9}
	tr := MakeUnique(in, 4)
	for i, x := range tr {
		if x.Rank != 4 || x.Index != uint32(i) || x.Key != in[i] {
			t.Fatalf("triple %d = %+v", i, x)
		}
	}
	out := StripUnique(tr)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("strip mismatch at %d", i)
		}
	}
}

func TestBytes(t *testing.T) {
	if (Uint64{}).Bytes() != 8 || (Uint32{}).Bytes() != 4 || (Float32{}).Bytes() != 4 {
		t.Error("scalar Bytes wrong")
	}
	if NewTripleOps[uint32](Uint32{}).Bytes() != 12 {
		t.Error("triple Bytes must add the 8-byte suffix")
	}
}

var _ = []Ops[uint64]{Uint64{}} // interface conformance
var _ Ops[Triple[float64]] = TripleOps[float64]{Base: Float64{}}
var _ = xmath.U128{}
