package keys

import "dhsort/internal/xmath"

// RadixOps is an optional capability on an Ops instance: keys that embed
// into a fixed-width uint64 image can be sorted by the LSD radix kernel
// instead of the comparison introsort — the key-specialized fast path of
// the Local Sort superstep (§VI-B).
type RadixOps[K any] interface {
	// RadixKey returns an order-preserving uint64 image of k and the
	// number of significant low-order bytes in that image (the LSD pass
	// bound, 1-8).  The image must be a strict order isomorphism of Less:
	// RadixKey(a) < RadixKey(b) exactly when Less(a, b) for key types
	// whose Less ignores satellite data, and the width must not depend
	// on k.
	RadixKey(k K) (uint64, int)
}

// RadixSuffixOps is a second optional capability for key types whose Less
// breaks ties on a secondary fixed-width component (the §V-A uniqueness
// suffix).  The radix kernel sorts by the suffix first and the primary
// image second; because LSD passes are stable, the composition orders by
// (primary, suffix).
type RadixSuffixOps[K any] interface {
	// RadixSuffix returns the secondary image and its byte width.
	RadixSuffix(k K) (uint64, int)
}

// radixCapable is implemented by wrapper Ops (pairs, triples) whose
// RadixKey delegates to a base that may or may not be radix-capable; the
// method reports whether the delegation is safe to call.
type radixCapable interface{ radixCapable() bool }

// Radix reports whether ops can drive the radix kernel for its key type,
// returning the capability when so.  Wrappers over non-radix bases (e.g. a
// Pair over String keys) advertise the interface but decline here, so
// callers must dispatch through Radix rather than a bare type assertion.
func Radix[K any](ops Ops[K]) (RadixOps[K], bool) {
	r, ok := any(ops).(RadixOps[K])
	if !ok {
		return nil, false
	}
	if c, wrapped := any(ops).(radixCapable); wrapped && !c.radixCapable() {
		return nil, false
	}
	return r, true
}

// Scalar instances: the radix image is the high-64 half of the ToBits
// embedding (shifted down for 32-bit keys so the significant bytes are the
// low ones, giving the reduced pass bound).

// RadixKey returns the identity image of a uint64 key.
func (Uint64) RadixKey(k uint64) (uint64, int) { return k, 8 }

// RadixKey returns the sign-flipped image of an int64 key.
func (Int64) RadixKey(k int64) (uint64, int) { return xmath.OrderInt64(k), 8 }

// RadixKey returns the IEEE-754 total-order image of a float64 key.
func (Float64) RadixKey(k float64) (uint64, int) { return xmath.OrderFloat64(k), 8 }

// RadixKey returns the widened image of a uint32 key.
func (Uint32) RadixKey(k uint32) (uint64, int) { return uint64(k), 4 }

// RadixKey returns the sign-flipped image of an int32 key.
func (Int32) RadixKey(k int32) (uint64, int) { return uint64(xmath.OrderInt32(k)), 4 }

// RadixKey returns the IEEE-754 total-order image of a float32 key.
func (Float32) RadixKey(k float32) (uint64, int) { return uint64(xmath.OrderFloat32(k)), 4 }

// RadixKey delegates to the base key; satellite data does not participate
// in the ordering, and radix stability keeps equal-key records in input
// order.  Call only when Radix reports the wrapper capable.
func (p PairOps[K, V]) RadixKey(a Pair[K, V]) (uint64, int) {
	return any(p.Base).(RadixOps[K]).RadixKey(a.Key)
}

func (p PairOps[K, V]) radixCapable() bool {
	_, ok := Radix(p.Base)
	return ok
}

// RadixKey delegates to the base key.  Call only when Radix reports the
// wrapper capable.
func (t TripleOps[K]) RadixKey(a Triple[K]) (uint64, int) {
	return any(t.Base).(RadixOps[K]).RadixKey(a.Key)
}

// RadixSuffix returns the (rank, index) uniqueness suffix, the secondary
// sort component of the §V-A transformation.
func (t TripleOps[K]) RadixSuffix(a Triple[K]) (uint64, int) {
	return t.suffix(a), 8
}

func (t TripleOps[K]) radixCapable() bool {
	_, ok := Radix(t.Base)
	return ok
}
