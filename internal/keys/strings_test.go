package keys

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStringOpsOrderMonotone(t *testing.T) {
	ops := String{}
	f := func(a, b string) bool {
		ba, bb := ops.ToBits(a), ops.ToBits(b)
		if a < b {
			// Monotone (non-strict: shared 16-byte prefixes collide).
			return !bb.Less(ba)
		}
		if b < a {
			return !ba.Less(bb)
		}
		return ba == bb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringOpsRoundtripIdempotent(t *testing.T) {
	ops := String{}
	for _, s := range []string{"", "a", "hello", strings.Repeat("x", 16), strings.Repeat("y", 40), "abc\x00def"} {
		b := ops.ToBits(s)
		if got := ops.ToBits(ops.FromBits(b)); got != b {
			t.Errorf("roundtrip of %q not idempotent", s)
		}
	}
}

func TestStringOpsPrefixCollision(t *testing.T) {
	ops := String{}
	long1 := strings.Repeat("p", 16) + "aaa"
	long2 := strings.Repeat("p", 16) + "zzz"
	if ops.ToBits(long1) != ops.ToBits(long2) {
		t.Error("16-byte-prefix sharers must collide in the embedding")
	}
	if !ops.Less(long1, long2) {
		t.Error("full comparison must still distinguish them")
	}
}

func TestStringOpsMidpoint(t *testing.T) {
	ops := String{}
	lo, hi := "apple", "banana"
	mid := ops.FromBits(ops.ToBits(lo).Avg(ops.ToBits(hi)))
	if mid < lo || mid > hi {
		t.Errorf("midpoint %q escapes [%q, %q]", mid, lo, hi)
	}
}
