package keys

import "dhsort/internal/xmath"

// String is the Ops instance for string keys, ordered lexicographically by
// bytes.
//
// The embedding uses the first 16 bytes of the string (zero-padded,
// big-endian), which is monotone but not injective: distinct strings
// sharing a 16-byte prefix map to the same bit point and are therefore
// *indivisible* for splitter purposes — they always land on one rank
// together.  Global order is exact for arbitrary strings; perfect
// partitioning is exact up to the largest such indivisible run (zero for
// inputs whose distinct keys differ within their first 16 bytes; exact
// duplicates are always split perfectly by the boundary refinement).
// Strings with trailing NUL bytes additionally collapse onto their
// NUL-trimmed form.
type String struct{}

// Less orders lexicographically by bytes.
func (String) Less(a, b string) bool { return a < b }

// ToBits embeds the zero-padded 16-byte prefix, preserving order.
func (String) ToBits(k string) xmath.U128 {
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi <<= 8
		if i < len(k) {
			hi |= uint64(k[i])
		}
	}
	for i := 8; i < 16; i++ {
		lo <<= 8
		if i < len(k) {
			lo |= uint64(k[i])
		}
	}
	return xmath.U128FromParts(hi, lo)
}

// FromBits materializes the shortest string of the bit point: the 16 bytes
// big-endian with trailing NULs trimmed, so pivot values compare equal to
// the short strings they represent.
func (String) FromBits(b xmath.U128) string {
	var buf [16]byte
	for i := 7; i >= 0; i-- {
		buf[i] = byte(b.Hi)
		b.Hi >>= 8
	}
	for i := 15; i >= 8; i-- {
		buf[i] = byte(b.Lo)
		b.Lo >>= 8
	}
	end := 16
	for end > 0 && buf[end-1] == 0 {
		end--
	}
	return string(buf[:end])
}

// Bytes is the assumed average wire size of a string key (header + short
// payload); exact volumes depend on the data and are approximated for cost
// accounting.
func (String) Bytes() int { return 24 }
