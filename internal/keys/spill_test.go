package keys

import "testing"

func TestLosslessDispatch(t *testing.T) {
	if !Lossless[uint64](Uint64{}) || !Lossless[int64](Int64{}) || !Lossless[float64](Float64{}) {
		t.Fatal("64-bit scalar embeddings must be lossless")
	}
	if !Lossless[uint32](Uint32{}) || !Lossless[int32](Int32{}) || !Lossless[float32](Float32{}) {
		t.Fatal("32-bit scalar embeddings must be lossless")
	}
	if !Lossless[Triple[uint64]](NewTripleOps[uint64](Uint64{})) {
		t.Fatal("triples over lossless scalars must be lossless")
	}
	if Lossless[Triple[string]](NewTripleOps[string](String{})) {
		t.Fatal("triples over string keys must not be lossless")
	}
	if Lossless[string](String{}) {
		t.Fatal("string keys must not be lossless")
	}
	if Lossless[Pair[uint64, uint64]](PairOps[uint64, uint64]{Base: Uint64{}}) {
		t.Fatal("pairs carry satellite data outside the embedding; must not be lossless")
	}
}
