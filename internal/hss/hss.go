// Package hss implements Histogram Sort with Sampling — the Charm++
// algorithm of Harsh, Kale and Solomonik (SPAA'19, reference [1]) that the
// paper benchmarks against in its strong- and weak-scaling studies.
//
// Like the paper's algorithm, HSS refines splitter probes with iterative
// histogramming; unlike it, the probes come from *sampling*: an initial
// oversample seeds the splitter guesses, and subsequent probes interpolate
// the target rank inside the current histogram bounds, assuming ranks vary
// linearly with key values.  On uniform keys this converges in very few
// iterations; on skewed distributions the interpolation assumption breaks
// and convergence turns volatile — the behaviour the paper observed on
// SuperMUC ("their histogramming algorithm again shows high volatility with
// running times from 5-25s", §VI-C; on a normal distribution it failed to
// terminate, §VI-B).
package hss

import (
	"errors"
	"runtime"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/prng"
	"dhsort/internal/psort"
	"dhsort/internal/sortutil"
	"dhsort/internal/store"
	"dhsort/internal/xmath"
)

// Config tunes an HSS run.
type Config struct {
	// Oversampling is the number of sample keys per rank seeding the
	// initial probes (0 means 16, roughly the constant-per-processor
	// sample of [1]).
	Oversampling int
	// Seed drives sampling.
	Seed uint64
	// Probes is the number of histogram probes per unfinished splitter per
	// round (see core.Config.Probes).  The primary probe stays the
	// interpolated guess of [1]; k > 1 adds up to k-1 evenly spaced
	// auxiliary probes across the current interval, which keeps bracketing
	// progress even when the linear-interpolation assumption breaks on
	// skewed keys.  0 or 1 keeps the original single-probe refinement.
	Probes int
	// Epsilon is the load-balance threshold of Definition 1; zero demands
	// perfect partitioning, as in all the paper's benchmarks.
	Epsilon float64
	// MaxIterations caps histogram refinement (0 means 512).  When the
	// cap is hit the current bounds are accepted; balance may then
	// exceed Epsilon, mirroring the non-termination the paper observed.
	MaxIterations int
	// ForceUnique applies the duplicate-key transformation (see
	// core.Config.ForceUnique); off by default.
	ForceUnique bool
	// Exchange selects the data-exchange backend (see core.Config.Exchange):
	// an ALLTOALLV schedule or comm.ExchangeRMAPut for the one-sided
	// put+notify exchange.
	Exchange comm.AlltoallAlgorithm
	// VirtualScale prices bulk data at a multiple of its real size.
	VirtualScale float64
	// Threads is the intra-rank worker budget of the compute supersteps
	// (see core.Config.Threads).  Zero means runtime.GOMAXPROCS(0); set 1
	// for reproducible virtual clocks.
	Threads int
	// Recovery selects how the sort survives a permanent rank death (see
	// core.Config.Recovery): core.RecoveryRespawn (or "") aborts on death;
	// core.RecoveryShrink continues on the survivors.
	Recovery string
	// Rebalance enables the bounded post-merge rebalance (see
	// core.Config.Rebalance).  HSS accepts the current bounds when the
	// iteration cap is hit, so a skewed run can exceed Epsilon — the
	// rebalance sheds the surplus to neighbors afterwards.
	Rebalance bool
	// MemBudget bounds the exchange's resident buffering (see
	// core.Config.MemBudget): budgeted runs take the fused 1-factor
	// exchange with received chunks spilled to store runs.  HSS keeps the
	// local sort resident (sampling needs the keys in memory), so only the
	// exchange path spills.
	MemBudget int64
	// SpillDir roots a filesystem store for spilled exchange runs and
	// durable checkpoint shards (see core.Config.SpillDir).
	SpillDir string
	// SpillFanIn caps the k-way merge fan-in (see core.Config.SpillFanIn).
	SpillFanIn int
	// Store overrides SpillDir with an explicit store (see
	// core.Config.Store).
	Store store.Store
	// Recorder receives phase timings and iteration counts.
	Recorder *metrics.Recorder
}

func (cfg Config) oversampling() int {
	if cfg.Oversampling <= 0 {
		return 16
	}
	return cfg.Oversampling
}

func (cfg Config) probes() int {
	k := cfg.Probes
	switch {
	case k <= 1:
		return 1
	case k > core.MaxProbes:
		return core.MaxProbes
	}
	return k
}

func (cfg Config) maxIters() int {
	if cfg.MaxIterations <= 0 {
		return 512
	}
	return cfg.MaxIterations
}

func (cfg Config) coreCfg() core.Config {
	return core.Config{
		Epsilon:      cfg.Epsilon,
		Exchange:     cfg.Exchange,
		VirtualScale: cfg.VirtualScale,
		Threads:      cfg.Threads,
		Recovery:     cfg.Recovery,
		Rebalance:    cfg.Rebalance,
		MemBudget:    cfg.MemBudget,
		SpillDir:     cfg.SpillDir,
		SpillFanIn:   cfg.SpillFanIn,
		Store:        cfg.Store,
		Recorder:     cfg.Recorder,
	}
}

// threads returns the effective intra-rank worker budget.
func (cfg Config) threads() int {
	if cfg.Threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return cfg.Threads
}

// Sort sorts the distributed sequence collectively and returns this rank's
// partition.  The supersteps match §III-B: sample, iteratively histogram
// the probe vector, then one ALLTOALLV exchange and a local merge.
func Sort[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	out, _, err := SortResilient(c, local, ops, cfg)
	return out, err
}

// SortResilient is Sort returning the effective communicator the result
// lives on — c itself, or the shrunken survivor communicator after a
// permanent rank death under Config.Recovery == core.RecoveryShrink (see
// core.SortResilient; the semantics are identical).
func SortResilient[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, *comm.Comm, error) {
	if !cfg.ForceUnique {
		return sortResilient[K](c, local, ops, cfg)
	}
	triples := keys.MakeUnique(local, c.Rank())
	out, eff, err := sortResilient[keys.Triple[K]](c, triples, keys.NewTripleOps(ops), cfg)
	if err != nil {
		return nil, eff, err
	}
	return keys.StripUnique(out), eff, nil
}

// sortResilient mirrors core's dispatch between the plain run and the
// ULFM-style shrink-recovery loop (revoke → agree → shrink → adopt → redo).
func sortResilient[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, *comm.Comm, error) {
	if c.FaultInjector() == nil || cfg.Recovery != core.RecoveryShrink {
		out, err := sortImpl[K](c, local, ops, cfg)
		return out, c, err
	}
	eff := c
	work := local
	for {
		var (
			out     []K
			sortErr error
			ck      *core.Checkpoint[K]
		)
		err := comm.Try(func() {
			ck = &core.Checkpoint[K]{}
			out, sortErr = sortSteps[K](eff, work, ops, cfg, ck)
		})
		if err == nil {
			err = sortErr
		}
		if err == nil {
			return out, eff, nil
		}
		var fe *comm.FailureError
		if !errors.As(err, &fe) {
			return nil, eff, err
		}
		next, adopted, rerr := core.ShrinkRecover[K](eff, ck, fe, cfg.Recorder)
		if rerr != nil {
			return nil, eff, rerr
		}
		if len(adopted) > 0 {
			merged := make([]K, 0, len(work)+len(adopted))
			merged = append(merged, work...)
			merged = append(merged, adopted...)
			work = merged
		}
		eff = next
	}
}

func sortImpl[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config) ([]K, error) {
	// Fault-injecting worlds checkpoint at every superstep boundary, as in
	// core; ck stays nil (no-op boundaries) on the fault-free fast path.
	var ck *core.Checkpoint[K]
	if c.FaultInjector() != nil {
		ck = &core.Checkpoint[K]{}
	}
	return sortSteps[K](c, local, ops, cfg, ck)
}

func sortSteps[K any](c *comm.Comm, local []K, ops keys.Ops[K], cfg Config, ck *core.Checkpoint[K]) ([]K, error) {
	p := c.Size()
	model := c.Model()
	rec := cfg.Recorder
	scale := 1.0
	if cfg.VirtualScale > 1 {
		scale = cfg.VirtualScale
	}

	// Local Sort runs through the same kernel dispatch as core (radix for
	// fixed-width keys, fork-join merge sort for comparison keys with a
	// thread budget, introsort otherwise).
	rec.Enter(metrics.LocalSort)
	threads := cfg.threads()
	ar := &sortutil.Arena[K]{}
	sorted := make([]K, len(local))
	copy(sorted, local)
	kernel, passes := core.LocalSort(sorted, ops, threads, ar)
	rec.SetLocalSort(kernel, threads)
	if model != nil {
		c.Clock().Advance(core.LocalSortCost(model, kernel, int(float64(len(sorted))*scale), passes, threads))
	}
	if p == 1 {
		rec.Finish()
		return sorted, nil
	}
	if err := ck.Boundary(c, ops, cfg.coreCfg(), core.StepLocalSort, &sorted, nil, nil); err != nil {
		return nil, err
	}

	rec.Enter(metrics.Other)
	capacities := comm.AllgatherOne(c, int64(len(local)))
	targets := make([]int64, p-1)
	var totalN, acc int64
	for _, n := range capacities {
		totalN += n
	}
	for i := 0; i < p-1; i++ {
		acc += capacities[i]
		targets[i] = acc
	}
	tol := int64(cfg.Epsilon * float64(totalN) / (2 * float64(p)))

	rec.Enter(metrics.Histogram)
	splitters := FindSplittersSampled(c, sorted, ops, targets, tol, cfg)
	if err := ck.Boundary(c, ops, cfg.coreCfg(), core.StepSplitting, &sorted, &splitters, nil); err != nil {
		return nil, err
	}

	rec.Enter(metrics.Other)
	cuts := core.ComputeCuts(c, sorted, ops, splitters, targets, cfg.coreCfg())
	if err := ck.Boundary(c, ops, cfg.coreCfg(), core.StepCuts, &sorted, &splitters, &cuts); err != nil {
		return nil, err
	}
	rec.Enter(metrics.Exchange)
	out := core.ExchangeAndMergeArena(c, sorted, ops, cuts, cfg.coreCfg(), ar)
	if cfg.Rebalance {
		rec.Enter(metrics.Other)
		out = core.RebalanceOutput(c, out, ops, cfg.coreCfg())
	}
	rec.Finish()
	return out, nil
}

// FindSplittersSampled is the sampled probe refinement of [1]: quantiles of
// a gathered sample seed the probes, and failed probes are re-aimed by
// linear interpolation of the target rank between the current histogram
// bounds.
func FindSplittersSampled[K any](c *comm.Comm, sorted []K, ops keys.Ops[K], targets []int64, tol int64, cfg Config) []K {
	nsplit := len(targets)
	model := c.Model()

	// Sample: each rank contributes s random local keys.
	s := cfg.oversampling()
	var sample []K
	if len(sorted) > 0 {
		src := prng.NewXoshiro256(cfg.Seed ^ uint64(c.Rank()+1)*0x9e3779b97f4a7c15)
		sample = make([]K, s)
		for i := range sample {
			sample[i] = sorted[prng.Uint64n(src, uint64(len(sorted)))]
		}
	}
	gathered := comm.Allgather(c, sample)
	var pool []K
	for _, b := range gathered {
		pool = append(pool, b...)
	}
	sortutil.Sort(pool, ops.Less)
	if len(pool) == 0 {
		return make([]K, nsplit) // globally empty
	}

	type state struct {
		lo, hi       K     // current bound values: the answer lies in (lo, hi]
		cntLo, cntHi int64 // ranks known at the bounds: L(lo), U(hi)
		probe        K
		loProbed     bool // adjacency protocol: lo itself has been probed
		done         bool
		value        K
	}
	// Global extrema and total: one reduction, as in core.
	type mm struct {
		Has      bool
		Min, Max xmath.U128
	}
	localMM := mm{}
	if len(sorted) > 0 {
		localMM = mm{true, ops.ToBits(sorted[0]), ops.ToBits(sorted[len(sorted)-1])}
	}
	ext := comm.AllreduceOne(c, localMM, func(a, b mm) mm {
		switch {
		case !a.Has:
			return b
		case !b.Has:
			return a
		}
		out := mm{Has: true, Min: a.Min, Max: a.Max}
		if b.Min.Less(out.Min) {
			out.Min = b.Min
		}
		if out.Max.Less(b.Max) {
			out.Max = b.Max
		}
		return out
	})
	grandTotal := comm.AllreduceOne(c, int64(len(sorted)), func(a, b int64) int64 { return a + b })

	states := make([]state, nsplit)
	for i := range states {
		st := &states[i]
		st.lo, st.hi = ops.FromBits(ext.Min), ops.FromBits(ext.Max)
		st.cntLo, st.cntHi = 0, grandTotal
		// Initial probe: the matching sample quantile.
		idx := int(int64(len(pool)) * targets[i] / maxInt64(grandTotal, 1))
		if idx >= len(pool) {
			idx = len(pool) - 1
		}
		st.probe = pool[idx]
		if !ops.Less(st.lo, st.probe) || !ops.Less(st.probe, st.hi) {
			// Quantile outside the open interval: start at the middle.
			st.probe = ops.FromBits(ext.Min.Avg(ext.Max))
		}
		switch {
		case targets[i] <= 0:
			st.done, st.value = true, st.lo
		case targets[i] >= grandTotal:
			st.done, st.value = true, st.hi
		case !ops.Less(st.lo, st.hi):
			// Single distinct value: it is every splitter.
			st.done, st.value = true, st.hi
		case !ops.Less(st.lo, st.probe) || !ops.Less(st.probe, st.hi):
			// Adjacent extrema: probe the lower bound directly.
			st.probe, st.loProbed = st.lo, true
		}
	}

	k := cfg.probes()
	if k > 1 {
		cfg.Recorder.SetProbes(k)
	}
	hist := make([]int64, 0, 2*k*nsplit)
	probeVals := make([]K, 0, k*nsplit)
	offs := make([]int, 0, nsplit+1)
	for iter := 0; iter < cfg.maxIters(); iter++ {
		var active []int
		for i := range states {
			if !states[i].done {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		cfg.Recorder.AddIteration()

		// Probe vector: the interpolated primary probe of [1], plus up to
		// k-1 evenly spaced auxiliary probes across the interval when
		// cfg.Probes asks for them and the interval is wide enough.  Each
		// boundary's probes are sorted ascending so the histogram counts
		// can bracket the answer in a single scan.
		probeVals = probeVals[:0]
		offs = append(offs[:0], 0)
		for _, i := range active {
			st := &states[i]
			start := len(probeVals)
			probeVals = append(probeVals, st.probe)
			if k > 1 && ops.Less(st.lo, st.probe) && ops.Less(st.probe, st.hi) {
				loB, hiB := ops.ToBits(st.lo), ops.ToBits(st.hi)
				pB := ops.ToBits(st.probe)
				if step := hiB.Sub(loB).Div64(uint64(k)); step != (xmath.U128{}) {
					b := loB
					for j := 1; j < k; j++ {
						b = b.Add(step)
						if b == pB {
							continue
						}
						if m := ops.FromBits(b); ops.Less(st.lo, m) && ops.Less(m, st.hi) {
							probeVals = append(probeVals, m)
						}
					}
				}
			}
			sortutil.Sort(probeVals[start:], ops.Less)
			offs = append(offs, len(probeVals))
		}
		np := len(probeVals)

		// The per-probe searches are independent reads of the sorted
		// partition; fork them across the thread budget like core does.
		hist = append(hist[:0], make([]int64, 2*np)...)
		workers := 1
		if t := cfg.threads(); t > 1 && np >= 2 && len(sorted) >= 4096 {
			workers = t
			if workers > np {
				workers = np
			}
		}
		psort.ParallelFor(np, workers, func(pi int) {
			hist[2*pi] = int64(sortutil.LowerBound(sorted, probeVals[pi], ops.Less))
			hist[2*pi+1] = int64(sortutil.UpperBound(sorted, probeVals[pi], ops.Less))
		})
		if model != nil {
			c.Clock().Advance(model.Threaded(model.SearchCost(len(sorted), 2*np), workers))
		}
		global := comm.Allreduce(c, hist, func(a, b int64) int64 { return a + b })

		for ai, i := range active {
			st := &states[i]
			T := targets[i]
		scan:
			for j := offs[ai]; j < offs[ai+1]; j++ {
				L, U := global[2*j], global[2*j+1]
				switch {
				case L-tol < T && T <= U+tol:
					st.done, st.value = true, probeVals[j]
					break scan
				case L >= T:
					// At or below this probe — and every later probe of
					// this boundary only counts more.
					st.hi, st.cntHi = probeVals[j], U
					break scan
				default: // U < T: strictly above; probes ascend, last wins.
					st.lo, st.cntLo = probeVals[j], L
				}
			}
			if st.done {
				continue
			}
			// Re-aim by interpolating the target rank between the bounds
			// — the sampling assumption of [1].
			frac := 0.5
			if st.cntHi > st.cntLo {
				frac = float64(T-st.cntLo) / float64(st.cntHi-st.cntLo)
			}
			next := ops.FromBits(xmath.Lerp(ops.ToBits(st.lo), ops.ToBits(st.hi), frac))
			if !ops.Less(st.lo, next) || !ops.Less(next, st.hi) {
				// Interpolation collapsed onto a bound; try bisection.
				next = ops.FromBits(ops.ToBits(st.lo).Avg(ops.ToBits(st.hi)))
			}
			switch {
			case ops.Less(st.lo, next) && ops.Less(next, st.hi):
				st.probe = next
			case !st.loProbed:
				// lo and hi are adjacent representable values: the split
				// point is lo or hi.  Probe lo once; if it fails, hi is
				// the answer.
				st.probe, st.loProbed = st.lo, true
			default:
				st.done, st.value = true, st.hi
			}
		}
	}
	out := make([]K, nsplit)
	for i := range states {
		st := &states[i]
		if !st.done {
			st.value = st.hi
		}
		out[i] = st.value
	}
	sortutil.Sort(out, ops.Less)
	return out
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
