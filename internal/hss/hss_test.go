package hss

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/keys"
	"dhsort/internal/metrics"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

var u64 = keys.Uint64{}

func runIt(t *testing.T, p, perRank int, spec workload.Spec, cfg Config, model *simnet.CostModel) (ins, outs [][]uint64) {
	t.Helper()
	w, err := comm.NewWorld(p, model)
	if err != nil {
		t.Fatal(err)
	}
	ins = make([][]uint64, p)
	outs = make([][]uint64, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		out, err := Sort(c, local, u64, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		ins[c.Rank()] = local
		outs[c.Rank()] = out
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ins, outs
}

func checkOutput(t *testing.T, ins, outs [][]uint64, perfect bool) {
	t.Helper()
	var all, got []uint64
	for _, in := range ins {
		all = append(all, in...)
	}
	var prev uint64
	first := true
	for r, out := range outs {
		for i, v := range out {
			if !first && v < prev {
				t.Fatalf("order violated at rank %d index %d", r, i)
			}
			prev, first = v, false
		}
		got = append(got, out...)
	}
	if len(got) != len(all) {
		t.Fatalf("count changed: %d -> %d", len(all), len(got))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("not a permutation at %d", i)
		}
	}
	if perfect {
		for r := range ins {
			if len(outs[r]) != len(ins[r]) {
				t.Fatalf("perfect partitioning violated on rank %d: %d vs %d", r, len(outs[r]), len(ins[r]))
			}
		}
	}
}

func TestHSSUniform(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13} {
		spec := workload.Spec{Dist: workload.Uniform, Seed: uint64(p), Span: 1e9}
		ins, outs := runIt(t, p, 400, spec, Config{Seed: 2}, nil)
		checkOutput(t, ins, outs, true)
	}
}

func TestHSSNormalAndSkewed(t *testing.T) {
	for _, d := range []workload.Distribution{workload.Normal, workload.Zipf, workload.NearlySorted} {
		spec := workload.Spec{Dist: d, Seed: 3, Span: 1e9}
		ins, outs := runIt(t, 8, 500, spec, Config{Seed: 4}, nil)
		checkOutput(t, ins, outs, true)
	}
}

func TestHSSDuplicates(t *testing.T) {
	for _, d := range []workload.Distribution{workload.DuplicateHeavy, workload.AllEqual} {
		spec := workload.Spec{Dist: d, Seed: 5, Span: 1e9}
		ins, outs := runIt(t, 6, 300, spec, Config{Seed: 6}, nil)
		checkOutput(t, ins, outs, true)
	}
}

func TestHSSMultiProbe(t *testing.T) {
	// k-ary probing must keep the perfect partition on both the friendly
	// (uniform) and hostile (zipf) distributions for the interpolation.
	for _, probes := range []int{2, 4, 8} {
		for _, d := range []workload.Distribution{workload.Uniform, workload.Zipf} {
			spec := workload.Spec{Dist: d, Seed: 21, Span: 1e9}
			ins, outs := runIt(t, 8, 400, spec, Config{Seed: 22, Probes: probes}, nil)
			checkOutput(t, ins, outs, true)
		}
	}
}

func TestHSSMultiProbeNoSlowerOnSkew(t *testing.T) {
	// Auxiliary probes bracket the answer even when interpolation misfires:
	// on zipf keys, 8 probes per boundary must not take more rounds than
	// the single interpolated probe.
	iterations := func(probes int) int {
		spec := workload.Spec{Dist: workload.Zipf, Seed: 31, Span: 1e9}
		p := 8
		w, _ := comm.NewWorld(p, nil)
		recs := make([]*metrics.Recorder, p)
		var mu sync.Mutex
		err := w.Run(func(c *comm.Comm) error {
			local, err := spec.Rank(c.Rank(), 500)
			if err != nil {
				return err
			}
			rec := metrics.ForComm(c)
			_, err = Sort(c, local, u64, Config{Seed: 32, Probes: probes, Recorder: rec})
			mu.Lock()
			recs[c.Rank()] = rec
			mu.Unlock()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(recs).MaxIterations
	}
	single, multi := iterations(1), iterations(8)
	if multi > single {
		t.Errorf("8-probe refinement took %d rounds, single-probe %d", multi, single)
	}
}

func TestHSSSparse(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 5, Span: 1e9, Sparse: 3}
	ins, outs := runIt(t, 9, 200, spec, Config{Seed: 6}, nil)
	checkOutput(t, ins, outs, true)
}

func TestHSSEpsilonRelaxed(t *testing.T) {
	spec := workload.Spec{Dist: workload.Uniform, Seed: 15, Span: 1e9}
	ins, outs := runIt(t, 8, 600, spec, Config{Seed: 6, Epsilon: 0.2}, nil)
	checkOutput(t, ins, outs, false)
	n := 0
	for _, in := range ins {
		n += len(in)
	}
	bound := int(float64(n)*1.2/8) + 1
	for r, out := range outs {
		if len(out) > bound {
			t.Errorf("rank %d exceeds epsilon bound: %d > %d", r, len(out), bound)
		}
	}
}

func TestHSSConvergesFasterOnUniformThanSkewed(t *testing.T) {
	// The sampling/interpolation assumption of [1]: uniform keys converge
	// in few iterations; skew slows convergence (the volatility the paper
	// observed, §VI-B/C).
	iters := func(d workload.Distribution) int {
		p := 8
		w, _ := comm.NewWorld(p, nil)
		recs := make([]*metrics.Recorder, p)
		var mu sync.Mutex
		err := w.Run(func(c *comm.Comm) error {
			spec := workload.Spec{Dist: d, Seed: 21, Span: 1e9}
			local, _ := spec.Rank(c.Rank(), 1000)
			rec := metrics.ForComm(c)
			_, err := Sort(c, local, u64, Config{Seed: 9, Recorder: rec})
			mu.Lock()
			recs[c.Rank()] = rec
			mu.Unlock()
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(recs).MaxIterations
	}
	uni := iters(workload.Uniform)
	zipf := iters(workload.Zipf)
	if uni == 0 {
		t.Fatal("no iterations recorded")
	}
	if zipf < uni {
		t.Logf("note: zipf converged faster than uniform (%d vs %d) on this seed", zipf, uni)
	}
	if uni > 60 {
		t.Errorf("uniform keys should converge quickly, took %d iterations", uni)
	}
}

func TestHSSUnderCostModel(t *testing.T) {
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 23, Span: 1e9}
	ins, outs := runIt(t, 12, 250, spec, Config{Seed: 3}, model)
	checkOutput(t, ins, outs, true)
}

func TestHSSForceUniqueStillSorts(t *testing.T) {
	spec := workload.Spec{Dist: workload.DuplicateHeavy, Seed: 25, Span: 1e9}
	ins, outs := runIt(t, 5, 300, spec, Config{Seed: 3, ForceUnique: true}, nil)
	checkOutput(t, ins, outs, true)
}

// TestHSSThreadsBitIdentical: raising the intra-rank thread budget must not
// change a single output element — parallel local kernels and splitter
// searches are exact, not approximate.
func TestHSSThreadsBitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	spec := workload.Spec{Dist: workload.Zipf, Seed: 41, Span: 1e6}
	_, base := runIt(t, 8, 1200, spec, Config{Seed: 7, Threads: 1}, nil)
	for _, threads := range []int{3, 8} {
		_, outs := runIt(t, 8, 1200, spec, Config{Seed: 7, Threads: threads}, nil)
		for r := range base {
			if len(outs[r]) != len(base[r]) {
				t.Fatalf("threads=%d: rank %d holds %d keys, want %d", threads, r, len(outs[r]), len(base[r]))
			}
			for i := range base[r] {
				if outs[r][i] != base[r][i] {
					t.Fatalf("threads=%d: rank %d diverges at index %d", threads, r, i)
				}
			}
		}
	}
}
