package hss

import (
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// TestHSSShrinkRecovery is the hss half of the shrink acceptance criterion:
// P=16, rank 3 dies permanently at the first superstep boundary, Recovery
// "shrink" — the sampled-splitter sort must complete loss-free on the 15
// survivors, globally sorted and multiset-identical to the input.  outs is
// indexed by original world rank (the victim's slot stays nil); shrink is
// order-preserving, so the world-rank order is still the global order.
func TestHSSShrinkRecovery(t *testing.T) {
	const p, perRank = 16, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 5, Span: 1e9}
	cfg := Config{Threads: 1, Seed: 21, Recovery: core.RecoveryShrink}
	plan := fault.Plan{Seed: 7, Deaths: []fault.Death{{Rank: 3, Step: core.StepLocalSort}}}

	w, err := comm.NewWorldWithFaults(p, model, plan)
	if err != nil {
		t.Fatal(err)
	}
	ins := make([][]uint64, p)
	outs := make([][]uint64, p)
	effSizes := make([]int, p)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		local, err := spec.Rank(c.Rank(), perRank)
		if err != nil {
			return err
		}
		mu.Lock()
		ins[c.Rank()] = local
		mu.Unlock()
		out, eff, err := SortResilient(c, local, u64, cfg)
		if err != nil {
			return err
		}
		if !core.IsGloballySorted(eff, out, u64) {
			t.Errorf("rank %d: survivor output not globally sorted", c.Rank())
		}
		mu.Lock()
		outs[c.Rank()] = out
		effSizes[c.Rank()] = eff.Size()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[3] != nil {
		t.Error("the dead rank returned an output")
	}
	for r, n := range effSizes {
		if r == 3 {
			continue
		}
		if n != p-1 {
			t.Errorf("rank %d finished on a communicator of size %d, want %d", r, n, p-1)
		}
	}
	// Adoption changes per-rank sizes, so the partitioning is no longer
	// perfect — but the multiset and the global order must be intact.
	checkOutput(t, ins, outs, false)
}
