package hss

import (
	"reflect"
	"sync"
	"testing"

	"dhsort/internal/comm"
	"dhsort/internal/core"
	"dhsort/internal/fault"
	"dhsort/internal/simnet"
	"dhsort/internal/workload"
)

// TestHSSSurvivesFaultSchedule mirrors core's acceptance test for the HSS
// supersteps: a seeded 5% drop schedule with two crashes at the splitting
// and cuts boundaries must leave the P=16 output bit-identical to the
// fault-free run — the sampled splitter path checkpoints exactly like the
// histogram path.
func TestHSSSurvivesFaultSchedule(t *testing.T) {
	const p, perRank = 16, 1024
	model := simnet.SuperMUC(4, true)
	spec := workload.Spec{Dist: workload.Uniform, Seed: 3, Span: 1e9}
	cfg := Config{Threads: 1, Seed: 21}
	plan := fault.Plan{
		Seed:     7,
		DropRate: 0.05,
		Crashes: []fault.Crash{
			{Rank: p / 3, Step: core.StepSplitting},
			{Rank: 2 * p / 3, Step: core.StepCuts},
		},
	}

	run := func(pl fault.Plan) [][]uint64 {
		w, err := comm.NewWorldWithFaults(p, model, pl)
		if err != nil {
			t.Fatal(err)
		}
		outs := make([][]uint64, p)
		var mu sync.Mutex
		err = w.Run(func(c *comm.Comm) error {
			local, err := spec.Rank(c.Rank(), perRank)
			if err != nil {
				return err
			}
			out, err := Sort(c, local, u64, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			outs[c.Rank()] = out
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}

	want := run(fault.Plan{})
	got := run(plan)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("HSS output under the fault schedule differs from the fault-free run")
	}
	ins := make([][]uint64, p)
	for r := range ins {
		local, err := spec.Rank(r, perRank)
		if err != nil {
			t.Fatal(err)
		}
		ins[r] = local
	}
	checkOutput(t, ins, got, true)
}
