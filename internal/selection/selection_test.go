package selection

import (
	"sort"
	"testing"
	"testing/quick"

	"dhsort/internal/prng"
)

func lessInt(a, b int) bool { return a < b }

func randInts(seed uint64, n int, span uint64) []int {
	src := prng.NewXoshiro256(seed)
	a := make([]int, n)
	for i := range a {
		if span == 0 {
			a[i] = int(src.Uint64() >> 1)
		} else {
			a[i] = int(prng.Uint64n(src, span))
		}
	}
	return a
}

// oracle returns the k-th smallest by sorting a copy.
func oracle(a []int, k int) int {
	b := append([]int(nil), a...)
	sort.Ints(b)
	return b[k]
}

func testSelector(t *testing.T, name string, sel func(a []int, k int) int) {
	t.Helper()
	for _, n := range []int{1, 2, 3, 7, 8, 9, 100, 1000, 5000} {
		for _, span := range []uint64{0, 1, 3, 50} {
			a := randInts(uint64(n)*31+span, n, span)
			for _, k := range []int{0, n / 4, n / 2, n - 1} {
				want := oracle(a, k)
				got := sel(append([]int(nil), a...), k)
				if got != want {
					t.Fatalf("%s: n=%d span=%d k=%d: got %d, want %d", name, n, span, k, got, want)
				}
			}
		}
	}
}

func TestSelect(t *testing.T) {
	testSelector(t, "Select", func(a []int, k int) int { return Select(a, k, lessInt) })
}

func TestMedianOfMedians(t *testing.T) {
	testSelector(t, "MedianOfMedians", func(a []int, k int) int { return MedianOfMedians(a, k, lessInt) })
}

func TestFloydRivest(t *testing.T) {
	testSelector(t, "FloydRivest", func(a []int, k int) int { return FloydRivest(a, k, lessInt) })
}

func TestRandomizedSelect(t *testing.T) {
	src := prng.NewSplitMix64(1)
	testSelector(t, "RandomizedSelect", func(a []int, k int) int {
		return RandomizedSelect(a, k, lessInt, src)
	})
}

func TestSelectPartitionsAroundK(t *testing.T) {
	a := randInts(5, 1000, 0)
	k := 400
	v := Select(a, k, lessInt)
	if a[k] != v {
		t.Fatal("a[k] must hold the selected element")
	}
	for i := 0; i < k; i++ {
		if a[i] > v {
			t.Fatalf("element %d (= %d) left of k exceeds a[k] = %d", i, a[i], v)
		}
	}
	for i := k + 1; i < len(a); i++ {
		if a[i] < v {
			t.Fatalf("element %d (= %d) right of k below a[k] = %d", i, a[i], v)
		}
	}
}

func TestSelectOutOfRangePanics(t *testing.T) {
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			Select([]int{1, 2, 3}, k, lessInt)
		}()
	}
}

func TestSelectAdversarial(t *testing.T) {
	// Sorted, reversed and all-equal inputs exercise the introspection
	// fallback and equal-key handling.
	n := 4000
	sorted := make([]int, n)
	rev := make([]int, n)
	eq := make([]int, n)
	for i := range sorted {
		sorted[i] = i
		rev[i] = n - i
	}
	for name, a := range map[string][]int{"sorted": sorted, "reversed": rev, "equal": eq} {
		b := append([]int(nil), a...)
		k := n / 3
		want := oracle(b, k)
		if got := Select(b, k, lessInt); got != want {
			t.Errorf("%s: got %d want %d", name, got, want)
		}
	}
}

func TestSelectQuick(t *testing.T) {
	f := func(a []int, kRaw uint16) bool {
		if len(a) == 0 {
			return true
		}
		k := int(kRaw) % len(a)
		want := oracle(a, k)
		return Select(append([]int(nil), a...), k, lessInt) == want &&
			MedianOfMedians(append([]int(nil), a...), k, lessInt) == want &&
			FloydRivest(append([]int(nil), a...), k, lessInt) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMedianBasic(t *testing.T) {
	items := []Weighted[int]{{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}}
	m := WeightedMedian(append([]Weighted[int](nil), items...), lessInt)
	if !CheckWeightedMedian(items, m, lessInt) {
		t.Fatalf("median %d violates Definition 2", m)
	}
	// below(3) = 0.3 < 0.5, above(3) = 0.4 <= 0.5 -> 3 is the weighted median.
	if m != 3 {
		t.Fatalf("got %d, want 3", m)
	}
}

func TestWeightedMedianUniformWeights(t *testing.T) {
	// With equal weights the weighted median is an ordinary median.
	for _, n := range []int{1, 2, 3, 10, 101, 1000} {
		vals := randInts(uint64(n), n, 0)
		items := make([]Weighted[int], n)
		for i, v := range vals {
			items[i] = Weighted[int]{v, 1}
		}
		snapshot := append([]Weighted[int](nil), items...)
		m := WeightedMedian(items, lessInt)
		if !CheckWeightedMedian(snapshot, m, lessInt) {
			t.Fatalf("n=%d: median %d violates Definition 2", n, m)
		}
	}
}

func TestWeightedMedianDominantWeight(t *testing.T) {
	items := []Weighted[int]{{5, 100}, {1, 1}, {9, 1}, {3, 1}}
	if m := WeightedMedian(append([]Weighted[int](nil), items...), lessInt); m != 5 {
		t.Fatalf("dominant-weight element must be the median, got %d", m)
	}
}

func TestWeightedMedianDuplicateValues(t *testing.T) {
	items := []Weighted[int]{{2, 0.25}, {2, 0.25}, {2, 0.25}, {1, 0.15}, {7, 0.10}}
	snapshot := append([]Weighted[int](nil), items...)
	m := WeightedMedian(items, lessInt)
	if m != 2 {
		t.Fatalf("got %d, want 2", m)
	}
	if !CheckWeightedMedian(snapshot, m, lessInt) {
		t.Fatal("Definition 2 violated")
	}
}

func TestWeightedMedianZeroWeightsAmongPositive(t *testing.T) {
	items := []Weighted[int]{{1, 0}, {2, 1}, {3, 0}}
	if m := WeightedMedian(items, lessInt); m != 2 {
		t.Fatalf("got %d, want 2", m)
	}
}

func TestWeightedMedianPanics(t *testing.T) {
	for name, items := range map[string][]Weighted[int]{
		"empty":    {},
		"allzero":  {{1, 0}, {2, 0}},
		"negative": {{1, -1}, {2, 3}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			WeightedMedian(items, lessInt)
		}()
	}
}

func TestWeightedMedianQuick(t *testing.T) {
	f := func(vals []int8, weights []uint8) bool {
		n := len(vals)
		if len(weights) < n {
			n = len(weights)
		}
		if n == 0 {
			return true
		}
		items := make([]Weighted[int], 0, n)
		var total float64
		for i := 0; i < n; i++ {
			w := float64(weights[i])
			items = append(items, Weighted[int]{int(vals[i]), w})
			total += w
		}
		if total == 0 {
			return true
		}
		snapshot := append([]Weighted[int](nil), items...)
		m := WeightedMedian(items, lessInt)
		return CheckWeightedMedian(snapshot, m, lessInt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
