package selection

// Weighted pairs a value with a positive weight.
type Weighted[T any] struct {
	Value  T
	Weight float64
}

// WeightedMedian returns an element m of items satisfying Definition 2 of
// the paper:
//
//	sum_{x_i < m} w_i < 1/2   and   sum_{x_i > m} w_i <= 1/2
//
// with weights normalized to sum to 1.  items is permuted.  It panics on an
// empty input or non-positive total weight.
//
// The implementation is the quickselect adaptation sketched in §IV-A:
// partition around a pivot and recurse on the side that carries too much
// weight, achieving expected O(n).
func WeightedMedian[T any](items []Weighted[T], less func(a, b T) bool) T {
	if len(items) == 0 {
		panic("selection: weighted median of empty set")
	}
	var total float64
	for _, it := range items {
		if it.Weight < 0 {
			panic("selection: negative weight")
		}
		total += it.Weight
	}
	if total <= 0 {
		panic("selection: total weight must be positive")
	}
	half := total / 2
	lo, hi := 0, len(items)
	wLeftOutside := 0.0 // weight strictly below items[lo:hi]
	lessW := func(a, b Weighted[T]) bool { return less(a.Value, b.Value) }
	for {
		if hi-lo == 1 {
			return items[lo].Value
		}
		p := medianOfThreeIndex(items, lessW, lo, lo+(hi-lo)/2, hi-1)
		pivot := items[p].Value
		// Three-way partition so duplicate values form one middle block;
		// their weight must count neither below nor above the pivot.
		lt, gt := threeWayPartition(items, lo, hi, pivot, less)
		wl, we := wLeftOutside, 0.0
		for i := lo; i < lt; i++ {
			wl += items[i].Weight
		}
		for i := lt; i < gt; i++ {
			we += items[i].Weight
		}
		wr := total - wl - we
		switch {
		case wl < half && wr <= half:
			return pivot
		case wl >= half:
			// Too much weight below: the weighted median is in the left part.
			hi = lt
		default:
			// Too much weight above: move right, absorbing left + equals.
			wLeftOutside = wl + we
			lo = gt
		}
	}
}

// threeWayPartition rearranges items[lo:hi) into [lo,lt) < pivot,
// [lt,gt) == pivot, [gt,hi) > pivot and returns (lt, gt).
func threeWayPartition[T any](items []Weighted[T], lo, hi int, pivot T, less func(a, b T) bool) (int, int) {
	lt, i, gt := lo, lo, hi
	for i < gt {
		switch {
		case less(items[i].Value, pivot):
			items[i], items[lt] = items[lt], items[i]
			lt++
			i++
		case less(pivot, items[i].Value):
			gt--
			items[i], items[gt] = items[gt], items[i]
		default:
			i++
		}
	}
	return lt, gt
}

// CheckWeightedMedian reports whether m satisfies Definition 2 over items
// (with weights normalized internally).  Used by tests and by the
// distributed-selection invariant checks.
func CheckWeightedMedian[T any](items []Weighted[T], m T, less func(a, b T) bool) bool {
	var total, below, above float64
	for _, it := range items {
		total += it.Weight
		switch {
		case less(it.Value, m):
			below += it.Weight
		case less(m, it.Value):
			above += it.Weight
		}
	}
	return below < total/2 && above <= total/2
}
