// Package selection implements the order-statistic kernels of §IV: the
// classic quickselect, the deterministic median-of-medians, the
// Floyd–Rivest SELECT algorithm, and the weighted median of Definition 2
// that drives the distributed selection (Algorithm 1).
package selection

import (
	"math"

	"dhsort/internal/prng"
)

// Select returns the k-th smallest element of a (0-based) in expected O(n)
// time.  a is permuted: on return a[k] holds the result with smaller
// elements before it and larger after it (as std::nth_element).
// It panics if k is out of range.
//
// This is an introselect: quickselect with median-of-three pivots that falls
// back to the deterministic median-of-medians pivot when progress degrades,
// so the worst case is O(n) as shown by Blum et al. [21].
func Select[T any](a []T, k int, less func(a, b T) bool) T {
	if k < 0 || k >= len(a) {
		panic("selection: k out of range")
	}
	lo, hi := 0, len(a) // half-open working range
	bad := 0            // consecutive unbalanced partitions
	for {
		n := hi - lo
		if n <= 8 {
			insertionSort(a[lo:hi], less)
			return a[k]
		}
		var p int
		if bad >= 2 {
			// Degenerating: pay for a guaranteed-good pivot.
			p = lo + medianOfMediansIndex(a[lo:hi], less)
			bad = 0
		} else {
			p = medianOfThreeIndex(a, less, lo, lo+n/2, hi-1)
		}
		lt, gt := partition3(a, lo, hi, p, less)
		if k >= lt && k < gt {
			return a[k] // within the equal-to-pivot block
		}
		// Track progress quality for the introspection fallback.
		if lt-lo < n/8 || hi-gt < n/8 {
			bad++
		} else {
			bad = 0
		}
		if k < lt {
			hi = lt
		} else {
			lo = gt
		}
	}
}

// partition3 rearranges a[lo:hi) around the pivot at index p into
// [< pivot | == pivot | > pivot] and returns the bounds (lt, gt) of the
// equal block.  The three-way split keeps selection linear on inputs with
// heavy duplication (all comparisons against the pivot — the dominant cost
// the paper's complexity analysis counts).
func partition3[T any](a []T, lo, hi, p int, less func(a, b T) bool) (int, int) {
	pivot := a[p]
	lt, i, gt := lo, lo, hi
	for i < gt {
		switch {
		case less(a[i], pivot):
			a[i], a[lt] = a[lt], a[i]
			lt++
			i++
		case less(pivot, a[i]):
			gt--
			a[i], a[gt] = a[gt], a[i]
		default:
			i++
		}
	}
	return lt, gt
}

func medianOfThreeIndex[T any](a []T, less func(a, b T) bool, i, j, k int) int {
	if less(a[j], a[i]) {
		i, j = j, i
	}
	if less(a[k], a[j]) {
		if less(a[k], a[i]) {
			return i
		}
		return k
	}
	return j
}

func insertionSort[T any](a []T, less func(a, b T) bool) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && less(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MedianOfMedians returns the k-th smallest element of a with a worst-case
// O(n) bound (Blum–Floyd–Pratt–Rivest–Tarjan [21]).  a is permuted.
func MedianOfMedians[T any](a []T, k int, less func(a, b T) bool) T {
	if k < 0 || k >= len(a) {
		panic("selection: k out of range")
	}
	lo, hi := 0, len(a)
	for {
		if hi-lo <= 8 {
			insertionSort(a[lo:hi], less)
			return a[k]
		}
		p := lo + medianOfMediansIndex(a[lo:hi], less)
		lt, gt := partition3(a, lo, hi, p, less)
		switch {
		case k >= lt && k < gt:
			return a[k]
		case k < lt:
			hi = lt
		default:
			lo = gt
		}
	}
}

// medianOfMediansIndex returns the index (relative to a) of a pivot
// guaranteed to have rank between 30% and 70% of len(a): the median of the
// medians of groups of five.
func medianOfMediansIndex[T any](a []T, less func(a, b T) bool) int {
	n := len(a)
	// Compute each group-of-5 median and swap it to the slice prefix.
	m := 0
	for i := 0; i < n; i += 5 {
		end := i + 5
		if end > n {
			end = n
		}
		insertionSort(a[i:end], less)
		mid := i + (end-i)/2
		a[m], a[mid] = a[mid], a[m]
		m++
	}
	// Recursively select the median of the m group medians.
	MedianOfMedians(a[:m], m/2, less)
	return m / 2
}

// FloydRivest returns the k-th smallest element of a using the Floyd–Rivest
// SELECT algorithm [22], which beats plain quickselect by recursively
// narrowing to a sampled confidence interval around the target rank.
// a is permuted.
func FloydRivest[T any](a []T, k int, less func(a, b T) bool) T {
	if k < 0 || k >= len(a) {
		panic("selection: k out of range")
	}
	floydRivest(a, 0, len(a)-1, k, less)
	return a[k]
}

func floydRivest[T any](a []T, left, right, k int, less func(a, b T) bool) {
	for right > left {
		if right-left > 600 {
			// Sample-based narrowing: select within a subrange that
			// contains the k-th element with high probability.
			n := float64(right - left + 1)
			i := float64(k - left + 1)
			z := math.Log(n)
			s := 0.5 * math.Exp(2*z/3)
			sd := 0.5 * math.Sqrt(z*s*(n-s)/n)
			if i < n/2 {
				sd = -sd
			}
			newLeft := maxInt(left, int(float64(k)-i*s/n+sd))
			newRight := minInt(right, int(float64(k)+(n-i)*s/n+sd))
			floydRivest(a, newLeft, newRight, k, less)
		}
		t := a[k]
		i, j := left, right
		a[left], a[k] = a[k], a[left]
		if less(t, a[right]) {
			a[right], a[left] = a[left], a[right]
		}
		for i < j {
			a[i], a[j] = a[j], a[i]
			i++
			j--
			for less(a[i], t) {
				i++
			}
			for less(t, a[j]) {
				j--
			}
		}
		if !less(a[left], t) && !less(t, a[left]) {
			a[left], a[j] = a[j], a[left]
		} else {
			j++
			a[j], a[right] = a[right], a[j]
		}
		if j <= k {
			left = j + 1
		}
		if k <= j {
			right = j - 1
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RandomizedSelect is plain quickselect with uniformly random pivots, the
// textbook variant; exposed for the ablation benchmarks comparing pivot
// strategies (§IV-A cites sampling strategies [22][23][24]).
func RandomizedSelect[T any](a []T, k int, less func(a, b T) bool, src prng.Source) T {
	if k < 0 || k >= len(a) {
		panic("selection: k out of range")
	}
	lo, hi := 0, len(a)
	for {
		if hi-lo <= 8 {
			insertionSort(a[lo:hi], less)
			return a[k]
		}
		p := lo + int(prng.Uint64n(src, uint64(hi-lo)))
		lt, gt := partition3(a, lo, hi, p, less)
		switch {
		case k >= lt && k < gt:
			return a[k]
		case k < lt:
			hi = lt
		default:
			lo = gt
		}
	}
}
