package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// PinnedSeed is the corpus ./ci.sh chaos runs; keep the small prefix green
// in tier 1 so the chaos tier never discovers a stale corpus.
const pinnedSeed = 20260807

// Scenario generation is a pure function of (seed, index).
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 64; i++ {
		a, b := Generate(pinnedSeed, i), Generate(pinnedSeed, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scenario %d not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
}

// Different indices must actually vary the composition.
func TestCorpusVaries(t *testing.T) {
	algs := map[string]bool{}
	dists := map[string]bool{}
	probes := map[int]bool{}
	deaths, crashes, msg := 0, 0, 0
	for _, sc := range Corpus(pinnedSeed, 64) {
		algs[sc.Algorithm] = true
		dists[string(sc.Dist)] = true
		probes[sc.Probes] = true
		if len(sc.Plan.Deaths) > 0 {
			deaths++
		}
		if len(sc.Plan.Crashes) > 0 {
			crashes++
		}
		if sc.Plan.MessageFaults() {
			msg++
		}
	}
	if len(algs) < 3 || len(dists) < 6 || deaths == 0 || crashes == 0 || msg == 0 {
		t.Fatalf("corpus lacks variety: algs=%d dists=%d deaths=%d crashes=%d msg=%d",
			len(algs), len(dists), deaths, crashes, msg)
	}
	// The k-ary refinement path must compose with faults in the corpus:
	// bisection plus at least one multi-probe count.
	if !probes[1] || len(probes) < 2 {
		t.Fatalf("corpus lacks probe variety: %v", probes)
	}
}

// A prefix of the pinned corpus passes the four-way oracle (the full ≥64
// run is the ./ci.sh chaos tier).
func TestPinnedCorpusPrefix(t *testing.T) {
	for _, sc := range Corpus(pinnedSeed, 8) {
		res := Run(sc)
		if !res.Pass() {
			t.Fatalf("%s failed: %s\nrepro: %s", sc, strings.Join(res.Failures, "; "), ReproCommand(sc))
		}
	}
}

// The repro path replays a scenario bit-identically: two Runs of the same
// (seed, index) agree on the output digest and the virtual makespan — the
// regression guard for `make chaos-repro`.
func TestReproReplaysBitIdentically(t *testing.T) {
	for i := 0; i < 4; i++ {
		sc := Generate(pinnedSeed, i)
		a, b := Run(sc), Run(sc)
		if !a.Pass() || !b.Pass() {
			t.Fatalf("%s failed: %v / %v", sc, a.Failures, b.Failures)
		}
		if a.Digest != b.Digest || a.Makespan != b.Makespan {
			t.Fatalf("%s replay diverged: digest %x/%x makespan %v/%v",
				sc, a.Digest, b.Digest, a.Makespan, b.Makespan)
		}
	}
}

// The oracle itself must catch corruption: a tampered execution fails
// verification.
func TestOracleCatchesCorruption(t *testing.T) {
	sc := Scenario{Index: 0, Seed: 7, Algorithm: "dhsort", P: 4, PerRank: 100,
		Threads: 1, Dist: "uniform", Recovery: "respawn"}
	ex, err := execute(sc)
	if err != nil {
		t.Fatal(err)
	}
	if fails := verify(sc, ex); len(fails) != 0 {
		t.Fatalf("clean run failed verification: %v", fails)
	}
	// Swap two elements across a rank boundary: breaks order.
	ex.outs[0][0], ex.outs[3][0] = ex.outs[3][0], ex.outs[0][0]
	if fails := verify(sc, ex); len(fails) == 0 {
		t.Fatal("oracle missed a corrupted output")
	}
	// Drop an element: breaks the multiset.
	ex2, _ := execute(sc)
	ex2.outs[1] = ex2.outs[1][:len(ex2.outs[1])-1]
	if fails := verify(sc, ex2); len(fails) == 0 {
		t.Fatal("oracle missed a lost element")
	}
}

// The repro command names the exact seed and index.
func TestReproCommand(t *testing.T) {
	got := ReproCommand(Scenario{Seed: 42, Index: 17})
	if got != "go run ./cmd/chaos -seed 42 -scenario 17 -v" {
		t.Fatalf("unexpected repro command %q", got)
	}
}

// Death scenarios must finish well under the watchdog (a wedged collective
// would otherwise stall the whole tier).
func TestDeathScenarioFinishesFast(t *testing.T) {
	var sc Scenario
	found := false
	for _, cand := range Corpus(pinnedSeed, 64) {
		if len(cand.Plan.Deaths) > 0 {
			sc, found = cand, true
			break
		}
	}
	if !found {
		t.Skip("no death scenario in prefix")
	}
	start := time.Now()
	if res := Run(sc); !res.Pass() {
		t.Fatalf("%s failed: %v", sc, res.Failures)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("death scenario took %v", d)
	}
}
