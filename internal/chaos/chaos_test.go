package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"dhsort/internal/core"
	"dhsort/internal/fault"
)

// PinnedSeed is the corpus ./ci.sh chaos runs; keep the small prefix green
// in tier 1 so the chaos tier never discovers a stale corpus.
const pinnedSeed = 20260807

// Scenario generation is a pure function of (seed, index).
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 64; i++ {
		a, b := Generate(pinnedSeed, i), Generate(pinnedSeed, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scenario %d not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
}

// Different indices must actually vary the composition.
func TestCorpusVaries(t *testing.T) {
	algs := map[string]bool{}
	dists := map[string]bool{}
	probes := map[int]bool{}
	deaths, crashes, msg, spills, grows, growDies := 0, 0, 0, 0, 0, 0
	for _, sc := range Corpus(pinnedSeed, 64) {
		algs[sc.Algorithm] = true
		dists[string(sc.Dist)] = true
		probes[sc.Probes] = true
		if len(sc.Plan.Deaths) > 0 {
			deaths++
		}
		if len(sc.Plan.Crashes) > 0 {
			crashes++
		}
		if sc.Plan.MessageFaults() {
			msg++
		}
		if sc.MemBudget > 0 {
			spills++
		}
		if sc.GrowRanks > 0 {
			grows++
		}
		if sc.GrowDie {
			growDies++
		}
	}
	if len(algs) < 3 || len(dists) < 6 || deaths == 0 || crashes == 0 || msg == 0 {
		t.Fatalf("corpus lacks variety: algs=%d dists=%d deaths=%d crashes=%d msg=%d",
			len(algs), len(dists), deaths, crashes, msg)
	}
	// The storage axis must show up: a fair fraction of the corpus spills.
	if spills == 0 {
		t.Fatal("corpus has no out-of-core scenario")
	}
	// The elasticity axis too: mid-stream grows, including at least one
	// joiner dying inside the grow collective.
	if grows == 0 || growDies == 0 {
		t.Fatalf("corpus lacks elasticity: grows=%d grow-dies=%d", grows, growDies)
	}
	// The k-ary refinement path must compose with faults in the corpus:
	// bisection plus at least one multi-probe count.
	if !probes[1] || len(probes) < 2 {
		t.Fatalf("corpus lacks probe variety: %v", probes)
	}
}

// A prefix of the pinned corpus passes the four-way oracle (the full ≥64
// run is the ./ci.sh chaos tier).
func TestPinnedCorpusPrefix(t *testing.T) {
	for _, sc := range Corpus(pinnedSeed, 8) {
		res := Run(sc)
		if !res.Pass() {
			t.Fatalf("%s failed: %s\nrepro: %s", sc, strings.Join(res.Failures, "; "), ReproCommand(sc))
		}
	}
}

// The repro path replays a scenario bit-identically: two Runs of the same
// (seed, index) agree on the output digest and the virtual makespan — the
// regression guard for `make chaos-repro`.
func TestReproReplaysBitIdentically(t *testing.T) {
	for i := 0; i < 4; i++ {
		sc := Generate(pinnedSeed, i)
		a, b := Run(sc), Run(sc)
		if !a.Pass() || !b.Pass() {
			t.Fatalf("%s failed: %v / %v", sc, a.Failures, b.Failures)
		}
		if a.Digest != b.Digest || a.Makespan != b.Makespan {
			t.Fatalf("%s replay diverged: digest %x/%x makespan %v/%v",
				sc, a.Digest, b.Digest, a.Makespan, b.Makespan)
		}
	}
}

// The oracle itself must catch corruption: a tampered execution fails
// verification.
func TestOracleCatchesCorruption(t *testing.T) {
	sc := Scenario{Index: 0, Seed: 7, Algorithm: "dhsort", P: 4, PerRank: 100,
		Threads: 1, Dist: "uniform", Recovery: "respawn"}
	ex, err := execute(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fails := verify(sc, ex); len(fails) != 0 {
		t.Fatalf("clean run failed verification: %v", fails)
	}
	// Swap two elements across a rank boundary: breaks order.
	ex.outs[0][0], ex.outs[3][0] = ex.outs[3][0], ex.outs[0][0]
	if fails := verify(sc, ex); len(fails) == 0 {
		t.Fatal("oracle missed a corrupted output")
	}
	// Drop an element: breaks the multiset.
	ex2, _ := execute(sc, nil)
	ex2.outs[1] = ex2.outs[1][:len(ex2.outs[1])-1]
	if fails := verify(sc, ex2); len(fails) == 0 {
		t.Fatal("oracle missed a lost element")
	}
}

// TestStorageAxis pins the fifth oracle on hand-built out-of-core
// scenarios: a spilled run passes the full Run — including the third,
// filesystem-backed execution that must reproduce the in-memory digest and
// virtual makespan bit-for-bit — composed with a crash respawn (durable
// checkpoint shards read back from the shared store) and with a permanent
// death (a survivor adopts the victim's shards under shrink recovery).
func TestStorageAxis(t *testing.T) {
	cases := []Scenario{
		{Index: 900, Seed: 3, Algorithm: "dhsort", P: 5, PerRank: 256,
			Threads: 1, Dist: "zipf", Recovery: core.RecoveryRespawn,
			MemBudget: 256, SpillFanIn: 2,
			Plan: fault.Plan{Seed: 9, Watchdog: watchdog}},
		{Index: 901, Seed: 3, Algorithm: "dhsort-rma", P: 4, PerRank: 512,
			Threads: 2, Dist: "duplicate-heavy", Recovery: core.RecoveryRespawn,
			MemBudget: 512,
			Plan: fault.Plan{Seed: 9, Watchdog: watchdog,
				Crashes: []fault.Crash{{Rank: 2, Step: core.StepSplitting}}}},
		{Index: 902, Seed: 3, Algorithm: "dhsort-fused", P: 5, PerRank: 256,
			Threads: 1, Dist: "uniform", Recovery: core.RecoveryShrink,
			MemBudget: 256, SpillFanIn: 4,
			Plan: fault.Plan{Seed: 9, Watchdog: watchdog,
				Deaths: []fault.Death{{Rank: 1, Step: core.StepCuts}}}},
		{Index: 903, Seed: 3, Algorithm: "hss", P: 4, PerRank: 256,
			Threads: 1, Dist: "zipf", Recovery: core.RecoveryRespawn,
			Rebalance: true, MemBudget: 256,
			Plan: fault.Plan{Seed: 9, Watchdog: watchdog}},
	}
	for _, sc := range cases {
		if res := Run(sc); !res.Pass() {
			t.Errorf("%s failed: %s", sc, strings.Join(res.Failures, "; "))
		}
	}
}

// TestElasticityAxis pins the grow oracle on hand-built scenarios: a
// fault-free mid-stream grow must land the exact front-loaded rebalance
// shares on every rank including the joiners; a grow under message faults
// must survive retransmit/dedup inside the join barrier; and a joiner dying
// mid-grow must resolve typed — incumbents revoke, agree, shrink back, and
// keep their pre-grow output while every joiner tail stays empty.
func TestElasticityAxis(t *testing.T) {
	cases := []Scenario{
		{Index: 910, Seed: 5, Algorithm: "dhsort", P: 4, PerRank: 256,
			Threads: 1, Dist: "zipf", Recovery: core.RecoveryRespawn,
			GrowRanks: 2},
		{Index: 911, Seed: 5, Algorithm: "hss", P: 4, PerRank: 256,
			Threads: 1, Dist: "duplicate-heavy", Recovery: core.RecoveryRespawn,
			Rebalance: true, GrowRanks: 4},
		{Index: 912, Seed: 5, Algorithm: "dhsort-rma", P: 5, PerRank: 256,
			Threads: 2, Dist: "uniform", Recovery: core.RecoveryRespawn,
			GrowRanks: 2,
			Plan: fault.Plan{Seed: 9, Watchdog: watchdog,
				DropRate: 0.02, DupRate: 0.02}},
		{Index: 913, Seed: 5, Algorithm: "dhsort-fused", P: 4, PerRank: 256,
			Threads: 1, Dist: "nearly-sorted", Recovery: core.RecoveryRespawn,
			GrowRanks: 2, GrowDie: true,
			Plan: fault.Plan{Seed: 9, Watchdog: watchdog, DropRate: 0.02}},
		// Grow composed with the storage axis: the pre-grow sort spills,
		// then the resident outputs rebalance onto the joiners.
		{Index: 914, Seed: 5, Algorithm: "dhsort", P: 4, PerRank: 512,
			Threads: 1, Dist: "zipf", Recovery: core.RecoveryRespawn,
			MemBudget: 512, SpillFanIn: 2, GrowRanks: 2,
			Plan: fault.Plan{Seed: 9, Watchdog: watchdog}},
	}
	for _, sc := range cases {
		if res := Run(sc); !res.Pass() {
			t.Errorf("%s failed: %s", sc, strings.Join(res.Failures, "; "))
		}
	}
}

// A grow scenario replays bit-identically — same digest, same makespan —
// so elasticity keeps the corpus's deterministic-replay guarantee.
func TestGrowReplaysBitIdentically(t *testing.T) {
	sc := Scenario{Index: 915, Seed: 5, Algorithm: "dhsort", P: 4, PerRank: 256,
		Threads: 1, Dist: "zipf", Recovery: core.RecoveryRespawn, GrowRanks: 2}
	a, b := Run(sc), Run(sc)
	if !a.Pass() || !b.Pass() {
		t.Fatalf("%s failed: %v / %v", sc, a.Failures, b.Failures)
	}
	if a.Digest != b.Digest || a.Makespan != b.Makespan {
		t.Fatalf("%s replay diverged: digest %x/%x makespan %v/%v",
			sc, a.Digest, b.Digest, a.Makespan, b.Makespan)
	}
}

// The repro command names the exact seed and index.
func TestReproCommand(t *testing.T) {
	got := ReproCommand(Scenario{Seed: 42, Index: 17})
	if got != "go run ./cmd/chaos -seed 42 -scenario 17 -v" {
		t.Fatalf("unexpected repro command %q", got)
	}
}

// Death scenarios must finish well under the watchdog (a wedged collective
// would otherwise stall the whole tier).
func TestDeathScenarioFinishesFast(t *testing.T) {
	var sc Scenario
	found := false
	for _, cand := range Corpus(pinnedSeed, 64) {
		if len(cand.Plan.Deaths) > 0 {
			sc, found = cand, true
			break
		}
	}
	if !found {
		t.Skip("no death scenario in prefix")
	}
	start := time.Now()
	if res := Run(sc); !res.Pass() {
		t.Fatalf("%s failed: %v", sc, res.Failures)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("death scenario took %v", d)
	}
}
